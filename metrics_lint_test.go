package aero_test

import (
	"strings"
	"testing"

	"aero"
	"aero/internal/metrics"
)

// lintBackend is a trivial backend so the lint test can wire an engine
// tenant without training anything.
type lintBackend struct{}

func (lintBackend) Kind() string                             { return "lint" }
func (lintBackend) Variates() int                            { return 1 }
func (lintBackend) Ready() bool                              { return true }
func (lintBackend) Threshold() float64                       { return 1 }
func (lintBackend) LastTime() (float64, bool)                { return 0, false }
func (lintBackend) PushScores(aero.Frame) ([]float64, error) { return nil, nil }
func (lintBackend) Push(aero.Frame) ([]aero.Alarm, error)    { return nil, nil }
func (lintBackend) SwapArtifact([]byte) error                { return nil }
func (lintBackend) SnapshotState() ([]byte, error)           { return []byte{1}, nil }
func (lintBackend) RestoreState([]byte) error                { return nil }

// TestMetricNameLint wires every instrumented layer — engine, triage,
// ingest server, retrainer — onto one registry and lints the resulting
// series names: each base name must be aero_-prefixed snake case (no
// doubled or trailing underscores), and no full series key may repeat.
// A new metric with a bad name fails here before it ever reaches a
// scrape; an invalid name would additionally panic at registration.
func TestMetricNameLint(t *testing.T) {
	reg := aero.NewMetricsRegistry()
	e := aero.NewEngine(aero.EngineConfig{
		Shards: 2, Workers: 1, Metrics: reg,
		Trace: aero.TraceConfig{Depth: 8},
	})
	defer e.Close()
	if _, err := aero.AttachTriageObserved(e, aero.DefaultTriageConfig(), 0, reg); err != nil {
		t.Fatal(err)
	}
	sub, err := e.SubscribeBackend("lint", lintBackend{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aero.NewIngestServer(aero.IngestServerConfig{
		Engine:  e,
		Metrics: reg,
		Lookup:  func(string) (*aero.Subscription, error) { return sub, nil },
	}); err != nil {
		t.Fatal(err)
	}
	mreg, err := aero.OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aero.NewRetrainer(aero.RetrainerConfig{
		Registry: mreg,
		Metrics:  reg,
		Source:   func(string) (*aero.Series, error) { return nil, nil },
		Train: func(string, int, *aero.Series) (string, []byte, error) {
			return "lint", []byte{1}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}

	names := reg.SeriesNames()
	if len(names) < 30 {
		t.Fatalf("only %d series registered; the full stack should register far more", len(names))
	}
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		if seen[name] {
			t.Errorf("duplicate series %q", name)
		}
		seen[name] = true
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if !metrics.ValidName(base) {
			t.Errorf("series %q: base name %q is not aero_-prefixed snake case", name, base)
		}
	}
}
