// Benchmarks regenerating every table and figure of the paper at
// ScaleTiny (shape-preserving smoke profile; run cmd/aerobench with
// -scale small or -scale paper for meaningful numbers), plus targeted
// benchmarks for AERO's training/inference cost and the EvalStride
// approximation called out in DESIGN.md.
package aero_test

import (
	"fmt"
	"io"
	"math"
	"testing"

	"aero"
	"aero/internal/core"
	"aero/internal/dataset"
	"aero/internal/experiments"
)

func tinyOpts() experiments.Options {
	return experiments.Options{Scale: experiments.ScaleTiny}
}

// BenchmarkTable1DatasetStats regenerates Table I (dataset statistics).
func BenchmarkTable1DatasetStats(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunTable1(io.Discard, tinyOpts())
	}
}

// BenchmarkTable2Synthetic regenerates Table II (12 methods × 3 synthetic
// datasets).
func BenchmarkTable2Synthetic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunTable2(io.Discard, tinyOpts())
	}
}

// BenchmarkTable3Astrosets regenerates Table III (12 methods × 3 simulated
// GWAC Astrosets).
func BenchmarkTable3Astrosets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunTable3(io.Discard, tinyOpts())
	}
}

// BenchmarkTable4Ablation regenerates Table IV (8 AERO variants × 3
// datasets).
func BenchmarkTable4Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunTable4(io.Discard, tinyOpts())
	}
}

// BenchmarkFig5AnomalyShapes regenerates Fig. 5 (injected anomaly shapes).
func BenchmarkFig5AnomalyShapes(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunFig5(io.Discard, tinyOpts())
	}
}

// BenchmarkFig6Efficiency regenerates Fig. 6 (train/inference time per
// method).
func BenchmarkFig6Efficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFig6(io.Discard, tinyOpts())
	}
}

// BenchmarkFig7Scalability regenerates Fig. 7 (memory + inference time vs
// number of stars).
func BenchmarkFig7Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFig7(io.Discard, tinyOpts())
	}
}

// BenchmarkFig8GraphStructure regenerates Fig. 8 (window-wise graphs vs
// ground truth).
func BenchmarkFig8GraphStructure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFig8(io.Discard, tinyOpts())
	}
}

// BenchmarkFig9StageErrors regenerates Fig. 9 (stage-1 vs final errors).
func BenchmarkFig9StageErrors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFig9(io.Discard, tinyOpts())
	}
}

// BenchmarkFig10Sensitivity regenerates Fig. 10 (hyperparameter sweeps).
func BenchmarkFig10Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFig10(io.Discard, tinyOpts())
	}
}

// benchDataset builds the small field reused by the targeted benchmarks.
func benchDataset() *dataset.Dataset {
	return dataset.SyntheticConfig{
		Name: "bench", N: 6, TrainLen: 350, TestLen: 300,
		NoiseVariates: 4, AnomalySegments: 1, NoisePct: 2,
		VariableFrac: 0.5, Seed: 3,
	}.Generate()
}

func benchConfig() aero.Config {
	c := aero.SmallConfig()
	c.LongWindow = 48
	c.ShortWindow = 16
	c.MaxEpochs = 3
	c.TrainStride = 24
	c.EvalStride = 16
	return c
}

// BenchmarkAEROTraining measures two-stage training cost (stage 1 + stage
// 2 at the ScaleTiny profile): one op is a full Fit — both training stages
// plus threshold calibration. The training path reuses per-worker grad
// tapes, arena-backed gradients and fused Adam moment slices, so allocs/op
// here is the regression signal for the allocation-free training path
// (DESIGN.md "Training path"); TestStage1StepSteadyStateAllocs and
// TestStage2StepSteadyStateAllocs in internal/core pin the per-step budget
// at zero.
func BenchmarkAEROTraining(b *testing.B) {
	d := benchDataset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := aero.New(benchConfig(), d.Train.N())
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Fit(d.Train); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAEROInference measures online scoring cost over a test split.
func BenchmarkAEROInference(b *testing.B) {
	d := benchDataset()
	m, err := aero.New(benchConfig(), d.Train.N())
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Fit(d.Train); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Scores(d.Test); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEvalStride quantifies the cost of the stride-k online
// scoring approximation vs the paper-exact stride 1 (DESIGN.md deviation).
func BenchmarkAblationEvalStride(b *testing.B) {
	d := benchDataset()
	for _, stride := range []int{1, 8, 16} {
		stride := stride
		b.Run(map[int]string{1: "stride1-paper-exact", 8: "stride8", 16: "stride16"}[stride], func(b *testing.B) {
			cfg := benchConfig()
			cfg.EvalStride = stride
			m, err := aero.New(cfg, d.Train.N())
			if err != nil {
				b.Fatal(err)
			}
			if err := m.Fit(d.Train); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Scores(d.Test); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamPush measures the steady-state cost of one online frame
// through StreamDetector.Push — the per-frame hot path of §III-F. The
// detector is warmed past one full long window before timing so the
// numbers reflect the scoring path, not the warmup appends.
func BenchmarkStreamPush(b *testing.B) {
	d := benchDataset()
	m, err := aero.New(benchConfig(), d.Train.N())
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Fit(d.Train); err != nil {
		b.Fatal(err)
	}
	s, err := aero.NewStreamDetector(m)
	if err != nil {
		b.Fatal(err)
	}
	frame := aero.Frame{Magnitudes: make([]float64, d.Test.N())}
	t := 0
	push := func() {
		idx := t % d.Test.Len()
		frame.Time = float64(t)
		for v := 0; v < d.Test.N(); v++ {
			frame.Magnitudes[v] = d.Test.Data[v][idx]
		}
		if _, err := s.Push(frame); err != nil {
			b.Fatal(err)
		}
		t++
	}
	for i := 0; i < m.Config().LongWindow+8; i++ {
		push()
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		push()
	}
}

// BenchmarkBackendStreamPush measures the steady-state per-frame cost of
// every registered backend kind behind the StreamBackend contract —
// static fitted threshold and DSPOT-wrapped — on the same field the AERO
// benchmarks use. The streaming baseline adapters are the rows that
// justify multi-backend serving: their pushes cost microseconds against
// AERO's milliseconds, and all of them hold the same zero-alloc budget
// (pinned in internal/baselines and internal/backend).
func BenchmarkBackendStreamPush(b *testing.B) {
	d := benchDataset()
	aeroModel, err := aero.New(benchConfig(), d.Train.N())
	if err != nil {
		b.Fatal(err)
	}
	if err := aeroModel.Fit(d.Train); err != nil {
		b.Fatal(err)
	}
	aeroArtifact, err := aeroModel.MarshalBytes()
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range aero.BackendKinds() {
		spec, ok := aero.LookupBackend(kind)
		if !ok {
			b.Fatalf("kind %s not registered", kind)
		}
		artifact := aeroArtifact
		if kind != "aero" {
			if artifact, err = spec.Train(d.Train, aero.SmallBackendOptions()); err != nil {
				b.Fatal(err)
			}
		}
		for _, adaptive := range []bool{false, true} {
			var det aero.StreamBackend
			if adaptive {
				det, err = aero.OpenAdaptiveBackend(spec, artifact, aero.DefaultDSPOTConfig(), d.Train)
			} else {
				det, err = spec.Open(artifact)
			}
			if err != nil {
				b.Fatal(err)
			}
			// The time cursor and warm-up live outside the closure: the
			// framework re-invokes it with growing b.N against the same
			// warm backend, and a reset cursor would violate the
			// monotonic frame-time check.
			frame := aero.Frame{Magnitudes: make([]float64, d.Test.N())}
			t := 0
			push := func(b *testing.B) {
				idx := t % d.Test.Len()
				frame.Time = float64(t)
				for v := 0; v < d.Test.N(); v++ {
					frame.Magnitudes[v] = d.Test.Data[v][idx]
				}
				if _, err := det.Push(frame); err != nil {
					b.Fatal(err)
				}
				t++
			}
			b.Run(det.Kind(), func(b *testing.B) {
				for t < 2*128 { // past the largest adapter window, once
					push(b)
				}
				b.ResetTimer()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					push(b)
				}
			})
		}
	}
}

// BenchmarkTriagePush measures the benign-path cost of one alarm
// through the four-stage triage pipeline — dedup probe, episode
// extension, watermark bookkeeping — across 8 tenants with open
// episodes. This is the per-alarm overhead -triage adds on top of the
// engine's fan-in channel, and it must hold the same steady-state
// budget as every other hot path: zero allocations
// (TestTriagePushAllocs in internal/alerts pins it).
func BenchmarkTriagePush(b *testing.B) {
	cfg := aero.TriageConfig{BucketWidth: 1, EpisodeGap: 4, MaxEpisodeLen: math.MaxFloat64 / 4, Window: 2}
	p := aero.NewTriagePipeline(cfg)
	const tenants = 8
	var ids [tenants]string
	for i := range ids {
		ids[i] = fmt.Sprintf("field-%d", i)
	}
	t, i := 0, 0
	push := func() {
		a := aero.EngineAlarm{Sub: ids[i%tenants], Alarm: aero.Alarm{Variate: 0, Time: float64(t), Score: 1}}
		if len(p.Push(a)) != 0 {
			b.Fatal("benign push emitted incidents")
		}
		if i++; i%tenants == 0 {
			t++ // one dedup bucket per round: every push survives and extends
		}
	}
	for k := 0; k < 8*tenants; k++ {
		push()
	}
	b.ResetTimer()
	b.ReportAllocs()
	for k := 0; k < b.N; k++ {
		push()
	}
}

// warmBenchDetector trains the bench model and pushes one full window plus
// a margin, returning the warm detector ready for lifecycle benchmarks.
func warmBenchDetector(b *testing.B) (*aero.StreamDetector, *aero.Model, *dataset.Dataset) {
	b.Helper()
	d := benchDataset()
	m, err := aero.New(benchConfig(), d.Train.N())
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Fit(d.Train); err != nil {
		b.Fatal(err)
	}
	s, err := aero.NewStreamDetector(m)
	if err != nil {
		b.Fatal(err)
	}
	frame := aero.Frame{Magnitudes: make([]float64, d.Test.N())}
	for t := 0; t < m.Config().LongWindow+8; t++ {
		frame.Time = float64(t)
		for v := 0; v < d.Test.N(); v++ {
			frame.Magnitudes[v] = d.Test.Data[v][t%d.Test.Len()]
		}
		if _, err := s.Push(frame); err != nil {
			b.Fatal(err)
		}
	}
	return s, m, d
}

// BenchmarkDetectorSnapshot measures serializing one warm detector state —
// the per-tenant cost of a lifecycle checkpoint. The snapshot size is
// reported as the snapshot-bytes metric.
func BenchmarkDetectorSnapshot(b *testing.B) {
	s, _, _ := warmBenchDetector(b)
	b.ResetTimer()
	b.ReportAllocs()
	var blob []byte
	for i := 0; i < b.N; i++ {
		var err error
		if blob, err = s.SnapshotState(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(blob)), "snapshot-bytes")
}

// BenchmarkDetectorRestore measures installing a warm snapshot into a
// detector — the per-tenant cost of a zero-warmup restart.
func BenchmarkDetectorRestore(b *testing.B) {
	s, m, _ := warmBenchDetector(b)
	blob, err := s.SnapshotState()
	if err != nil {
		b.Fatal(err)
	}
	fresh, err := aero.NewStreamDetector(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := fresh.RestoreState(blob); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(blob)), "snapshot-bytes")
}

// BenchmarkSubscriptionSwap measures engine-level hot-swap latency: the
// frame-boundary installation of a new model into a warm serving tenant,
// including the scratch rebuild and window re-normalization.
func BenchmarkSubscriptionSwap(b *testing.B) {
	d := benchDataset()
	m, err := aero.New(benchConfig(), d.Train.N())
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Fit(d.Train); err != nil {
		b.Fatal(err)
	}
	path := b.TempDir() + "/twin.json"
	if err := m.Save(path); err != nil {
		b.Fatal(err)
	}
	twin, err := aero.Load(path)
	if err != nil {
		b.Fatal(err)
	}
	e := aero.NewEngine(aero.EngineConfig{Shards: 1, Workers: 1})
	defer e.Close()
	go func() {
		for range e.Alarms() {
		}
	}()
	sub, err := e.Subscribe("swap-bench", m)
	if err != nil {
		b.Fatal(err)
	}
	frame := aero.Frame{Magnitudes: make([]float64, d.Test.N())}
	for t := 0; t < m.Config().LongWindow+8; t++ {
		frame.Time = float64(t)
		for v := 0; v < d.Test.N(); v++ {
			frame.Magnitudes[v] = d.Test.Data[v][t%d.Test.Len()]
		}
		if err := e.Ingest("swap-bench", frame); err != nil {
			b.Fatal(err)
		}
	}
	e.Flush()
	models := [2]*aero.Model{twin, m}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := sub.Swap(models[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineThroughput measures multi-tenant engine throughput: one
// op is one frame ingested, routed through a shard queue, and scored by
// the worker pool. Tenants share one trained model; alarms are drained
// concurrently as a real deployment would.
func BenchmarkEngineThroughput(b *testing.B) {
	d := benchDataset()
	m, err := aero.New(benchConfig(), d.Train.N())
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Fit(d.Train); err != nil {
		b.Fatal(err)
	}
	e := aero.NewEngine(aero.EngineConfig{})
	const tenants = 4
	ids := make([]string, tenants)
	next := make([]int, tenants)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench-%d", i)
		if _, err := e.Subscribe(ids[i], m); err != nil {
			b.Fatal(err)
		}
	}
	go func() {
		for range e.Alarms() {
		}
	}()
	frame := aero.Frame{Magnitudes: make([]float64, d.Test.N())}
	push := func(tenant int) {
		idx := next[tenant] % d.Test.Len()
		frame.Time = float64(next[tenant])
		for v := 0; v < d.Test.N(); v++ {
			frame.Magnitudes[v] = d.Test.Data[v][idx]
		}
		if err := e.Ingest(ids[tenant], frame); err != nil {
			b.Fatal(err)
		}
		next[tenant]++
	}
	for i := 0; i < tenants*(m.Config().LongWindow+4); i++ {
		push(i % tenants)
	}
	e.Flush()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		push(i % tenants)
	}
	e.Flush()
	b.StopTimer()
	e.Close()
}

// BenchmarkAblationGraphVariants compares the window-wise graph against
// the static and dynamic graph ablations at equal budget.
func BenchmarkAblationGraphVariants(b *testing.B) {
	d := benchDataset()
	for _, v := range []core.Variant{core.VariantFull, core.VariantStaticGraph, core.VariantDynamicGraph} {
		v := v
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Variant = v
				m, err := aero.New(cfg, d.Train.N())
				if err != nil {
					b.Fatal(err)
				}
				if err := m.Fit(d.Train); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
