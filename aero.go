// Package aero is the public API of this repository: a from-scratch Go
// reproduction of AERO, the two-stage anomaly detection framework for
// astronomical observations from "From Chaos to Clarity: Time Series
// Anomaly Detection in Astronomical Observations" (Hao et al., ICDE 2024).
//
// # Overview
//
// Astronomical survey telescopes produce one magnitude (brightness) series
// per star. Two properties make the resulting multivariate time series
// unusual: variates are physically independent (stars do not influence one
// another), yet environmental interference — clouds, dawn sky background,
// atmospheric drift — hits many stars *simultaneously*, producing
// "concurrent noise" that is spatially and temporally random. Standard
// detectors either ignore cross-star structure (univariate methods: every
// cloud becomes a false alarm) or assume stable inter-variate correlations
// (multivariate methods: wrong during the noise-free majority of time).
//
// AERO resolves the tension with two stages: a Transformer encoder–decoder
// models each star independently and flags anomaly candidates by
// reconstruction error, then a graph convolution over a *window-wise
// learned graph* (re-derived from the stage-1 error patterns at every
// sliding window) reconstructs exactly the errors shared by several stars,
// cancelling concurrent noise while leaving genuine single-star events —
// flares, novae, occultations — prominent.
//
// # Quick start
//
//	d := aero.SyntheticMiddle().Generate()
//	det, _ := aero.New(aero.SmallConfig(), d.Train.N())
//	_ = det.Fit(d.Train)
//	labels, _ := det.Detect(d.Test)
//
// See examples/ for runnable programs and internal/experiments for the
// harness regenerating every table and figure of the paper.
package aero

import (
	"net"
	"os"

	"aero/internal/alerts"
	"aero/internal/anomaly"
	"aero/internal/backend"
	"aero/internal/baselines"
	"aero/internal/core"
	"aero/internal/dataset"
	"aero/internal/engine"
	"aero/internal/evt"
	"aero/internal/faultinject"
	"aero/internal/ingest"
	"aero/internal/lifecycle"
	"aero/internal/metrics"
)

// Model is a trainable/trained AERO detector. See core.Model.
type Model = core.Model

// Config holds AERO hyperparameters.
type Config = core.Config

// Variant selects a model ablation (Table IV); VariantFull is normal AERO.
type Variant = core.Variant

// Ablation variants of the AERO model.
const (
	VariantFull                = core.VariantFull
	VariantNoTemporal          = core.VariantNoTemporal
	VariantMultivariateInput   = core.VariantMultivariateInput
	VariantNoShortWindow       = core.VariantNoShortWindow
	VariantNoNoise             = core.VariantNoNoise
	VariantNoNoiseMultivariate = core.VariantNoNoiseMultivariate
	VariantStaticGraph         = core.VariantStaticGraph
	VariantDynamicGraph        = core.VariantDynamicGraph
)

// New constructs an untrained AERO model for n variates (stars).
func New(cfg Config, n int) (*Model, error) { return core.New(cfg, n) }

// Load restores a model previously persisted with Model.Save; it is ready
// for Scores/Detect without retraining.
func Load(path string) (*Model, error) { return core.Load(path) }

// StreamDetector performs frame-at-a-time online detection (§III-F).
type StreamDetector = core.StreamDetector

// Frame is one observation instant for streaming detection.
type Frame = core.Frame

// Alarm is one threshold crossing reported by the stream detector.
type Alarm = core.Alarm

// NewStreamDetector wraps a fitted model for online, frame-at-a-time
// detection with bounded memory. The steady-state scoring path is
// allocation-free: the window lives in a fixed circular buffer and all
// tensors/tapes are reused from a per-detector scratch.
func NewStreamDetector(m *Model) (*StreamDetector, error) {
	return core.NewStreamDetector(m)
}

// NewStreamDetectorWorkers is NewStreamDetector with an explicit bound
// on the per-frame scoring fan-out; multi-detector hosts (the engine,
// DSPOT-wrapped tenants) pass 1 so cross-tenant parallelism alone
// saturates the cores.
func NewStreamDetectorWorkers(m *Model, workers int) (*StreamDetector, error) {
	return core.NewStreamDetectorWorkers(m, workers)
}

// StreamBackend is the pluggable contract of the streaming pipeline:
// any frame-at-a-time detector the engine can serve — the AERO
// StreamDetector, the streaming baseline adapters (SR, Template
// Matching, FluxEV), or a DSPOT-wrapped composition of either.
type StreamBackend = core.StreamBackend

// GraphSnapshotter is the optional monitoring capability of backends
// that learn an inter-variate graph (AERO): a live window-wise
// adjacency.
type GraphSnapshotter = core.GraphSnapshotter

// BackendSpec describes one registered backend kind: its tag, a trainer
// producing a published artifact, and an opener constructing a serving
// StreamBackend from one.
type BackendSpec = backend.Spec

// BackendOptions carries the per-kind training/calibration knobs.
type BackendOptions = backend.Options

// StreamBaselineConfig parameterizes the streaming baseline adapters.
type StreamBaselineConfig = baselines.StreamConfig

// DefaultStreamBaselineConfig mirrors the batch baselines' settings.
func DefaultStreamBaselineConfig() StreamBaselineConfig { return baselines.DefaultStreamConfig() }

// DefaultBackendOptions pairs the paper's AERO hyperparameters with the
// reference streaming-adapter settings; SmallBackendOptions is the
// CPU-friendly profile.
func DefaultBackendOptions() BackendOptions { return backend.DefaultOptions() }

// SmallBackendOptions is the CPU-friendly backend-training profile.
func SmallBackendOptions() BackendOptions { return backend.SmallOptions() }

// BackendKinds lists every registered backend kind, sorted.
func BackendKinds() []string { return backend.Kinds() }

// LookupBackend returns the spec registered for a backend kind.
func LookupBackend(kind string) (BackendSpec, bool) { return backend.Get(kind) }

// TrainBackend fits the named backend kind on a training series and
// returns its published artifact.
func TrainBackend(kind string, train *Series, opts BackendOptions) ([]byte, error) {
	return backend.Train(kind, train, opts)
}

// OpenBackend constructs a cold serving backend of the named kind from
// its artifact; pair with Engine.SubscribeBackend.
func OpenBackend(kind string, artifact []byte) (StreamBackend, error) {
	return backend.Open(kind, artifact)
}

// DSPOTStage wraps any StreamBackend with per-variate streaming DSPOT
// (Siffer et al., KDD 2017 §4.4): raw scores are re-thresholded by a
// drift-corrected EVT tail model that adapts online, instead of the
// backend's static train-time threshold.
type DSPOTStage = backend.DSPOTStage

// DSPOTConfig parameterizes the adaptive-alarming stage.
type DSPOTConfig = backend.DSPOTConfig

// DefaultDSPOTConfig mirrors the paper's POT protocol (level 0.99,
// q 1e-3) with a 20-frame drift window and the amortized tail-refit
// schedule (DefaultRefitPolicy).
func DefaultDSPOTConfig() DSPOTConfig { return backend.DefaultDSPOTConfig() }

// RefitPolicy schedules the DSPOT tail model's Grimshaw refits: refit
// every Every-th exceedance and on tail-mean drift, over a bounded
// excess ring. The zero value is the exact policy (refit on every
// exceedance, as in Siffer et al.'s original SPOT).
type RefitPolicy = evt.RefitPolicy

// RefitStats are a tail model's cumulative maintenance counters — how
// many exceedances fed the ring and how many paid for a Grimshaw fit
// (warm-started vs full grid scan).
type RefitStats = evt.RefitStats

// DefaultRefitPolicy amortizes the tail maintenance: warm refits every
// 128 exceedances or on a 20% tail-mean drift, over a 256-excess ring.
func DefaultRefitPolicy() RefitPolicy { return evt.DefaultRefitPolicy() }

// ExactRefitPolicy refits on every exceedance over a bounded ring —
// bit-identical to the original SPOT until the ring first overflows.
func ExactRefitPolicy() RefitPolicy { return evt.ExactRefitPolicy() }

// IncrementalPolicy controls the AERO StreamDetector's incremental
// streaming forward: sliding-window activation reuse on benign frames,
// with scheduled/drift/invalidation full recomputes and an exact
// alarm-boundary guard that keeps replay alarm sequences identical to the
// always-exact path. The zero value disables the incremental path.
type IncrementalPolicy = core.IncrementalPolicy

// IncrementalStats counts how a detector's scored frames were served
// (incremental vs each class of full recompute).
type IncrementalStats = core.IncrementalStats

// IncrementalInvalidator is the optional StreamBackend capability of
// dropping cached cross-frame activations; hosts call it after mutating
// window contents outside the ingest path.
type IncrementalInvalidator = core.IncrementalInvalidator

// DefaultIncrementalPolicy is the production default incremental schedule
// (refresh every 64 frames, two-row cone, 25% boundary guard).
func DefaultIncrementalPolicy() IncrementalPolicy { return core.DefaultIncrementalPolicy() }

// ExactIncrementalPolicy recomputes every frame — scores stay
// bit-identical to the non-incremental detector while caches are still
// maintained.
func ExactIncrementalPolicy() IncrementalPolicy { return core.ExactIncrementalPolicy() }

// NewDSPOTStage wraps a backend with DSPOT alarmers calibrated on
// per-variate score sequences (see StreamBackendScores).
func NewDSPOTStage(inner StreamBackend, cfg DSPOTConfig, calib [][]float64) (*DSPOTStage, error) {
	return backend.NewDSPOTStage(inner, cfg, calib)
}

// OpenAdaptiveBackend opens a serving backend of the given kind wrapped
// in a freshly calibrated DSPOT stage (the calibration series is
// replayed through a scratch instance; the serving instance starts
// cold).
func OpenAdaptiveBackend(spec BackendSpec, artifact []byte, cfg DSPOTConfig, calib *Series) (*DSPOTStage, error) {
	return backend.OpenAdaptive(spec, artifact, cfg, calib)
}

// StreamBackendScores replays a series through a stream backend and
// returns the per-variate post-warm score sequences — the raw material
// for POT/DSPOT calibration.
func StreamBackendScores(b StreamBackend, s *Series) ([][]float64, error) {
	return baselines.StreamScores(b, s)
}

// Engine is a sharded, multi-tenant streaming detection engine: many
// StreamDetector-backed tenants scored by a fixed worker pool, with
// backpressure-aware ingest and a fan-in alarm channel. See
// internal/engine for the full semantics.
type Engine = engine.Engine

// EngineConfig parameterizes NewEngine; the zero value uses production
// defaults (2×GOMAXPROCS shards, GOMAXPROCS workers).
type EngineConfig = engine.Config

// Subscription is the handle on one engine tenant: per-tenant stats and
// live graph snapshots.
type Subscription = engine.Subscription

// SubscriptionStats snapshots one tenant's counters.
type SubscriptionStats = engine.SubscriptionStats

// ShardStats snapshots one engine shard (frames/s, alarms, queue depth).
type ShardStats = engine.ShardStats

// EngineAlarm is an alarm attributed to the tenant that raised it.
type EngineAlarm = engine.Alarm

// EngineSample is one frame addressed to a tenant, the unit of the
// engine's channel ingest path.
type EngineSample = engine.Sample

// FrameError reports a frame the engine could not score.
type FrameError = engine.FrameError

// NewEngine starts a multi-tenant streaming engine. Register tenants with
// Subscribe, feed frames with Ingest or the Samples channel, and consume
// Alarms continuously until Close.
func NewEngine(cfg EngineConfig) *Engine { return engine.New(cfg) }

// HealthConfig parameterizes per-tenant fault supervision: consecutive
// faults degrade then quarantine a tenant onto its warm fallback, a
// frame-counted jittered backoff schedules probation probes, and clean
// probes recover it. The zero value enables supervision with production
// defaults; set Disable to turn the state machine off.
type HealthConfig = engine.HealthConfig

// HealthState is a tenant's fault-containment state.
type HealthState = engine.HealthState

// Tenant fault-containment states.
const (
	HealthHealthy     = engine.HealthHealthy
	HealthDegraded    = engine.HealthDegraded
	HealthQuarantined = engine.HealthQuarantined
	HealthProbation   = engine.HealthProbation
)

// HygieneConfig parameterizes the frame-validation stage ahead of every
// backend push; the zero value is off.
type HygieneConfig = engine.HygieneConfig

// HygienePolicy selects how frames carrying NaN/Inf magnitudes are
// treated: rejected, or repaired by holding the last finite value.
type HygienePolicy = engine.HygienePolicy

// Frame-hygiene policies.
const (
	HygieneOff      = engine.HygieneOff
	HygieneDrop     = engine.HygieneDrop
	HygieneHoldLast = engine.HygieneHoldLast
	HygieneGapMark  = engine.HygieneGapMark
)

// ParseHygienePolicy parses the flag spellings "off", "drop", "hold",
// "gap".
func ParseHygienePolicy(s string) (HygienePolicy, error) { return engine.ParseHygienePolicy(s) }

// PanicError is the error a contained backend panic is converted into:
// the panic value plus the goroutine stack at recovery.
type PanicError = engine.PanicError

// ErrQuarantined marks frames rejected because their tenant is
// quarantined and has no fallback backend to serve them.
var ErrQuarantined = engine.ErrQuarantined

// ErrNotReady is the typed error SPOT/DSPOT tail models return from Step
// before Fit has calibrated them.
var ErrNotReady = evt.ErrNotReady

// GuardPush pushes one frame into a backend with panic containment: a
// panicking backend yields a *PanicError instead of killing the calling
// goroutine. The benign path adds zero allocations. The engine applies
// this guard to every tenant push; GuardPush is the same protection for
// callers driving a StreamBackend directly.
func GuardPush(det StreamBackend, f Frame) ([]Alarm, error) { return engine.GuardPush(det, f) }

// ChaosPlan is a deterministic fault schedule for the fault-injection
// harness: panics, errors, NaN-scored alarms, and latency spikes keyed
// purely by (seed, frame index). See internal/faultinject.
type ChaosPlan = faultinject.Plan

// ChaosBackend wraps a StreamBackend with a ChaosPlan's fault schedule —
// the deterministic chaos harness behind aeroserve -chaos and the
// containment golden tests.
type ChaosBackend = faultinject.Backend

// ErrInjected is the error injected by ChaosBackend on error frames.
var ErrInjected = faultinject.ErrInjected

// NewChaosBackend wraps inner under the plan's fault schedule.
func NewChaosBackend(inner StreamBackend, plan ChaosPlan) *ChaosBackend {
	return faultinject.New(inner, plan)
}

// TriagePipeline is the streaming alert-triage subsystem: the engine's
// raw cross-tenant alarm flood reduced to a short, ranked incident feed
// through four stages — stable-Bloom dedup, per-source episode
// coalescing, cross-tenant onset correlation (with lead-lag histograms
// per tenant pair), and breadth-weighted severity ranking. Deterministic
// for a fixed alarm sequence, allocation-free on the benign path, and
// checkpointable mid-episode. See internal/alerts.
type TriagePipeline = alerts.Pipeline

// TriageConfig parameterizes the triage pipeline; the zero value uses
// production defaults.
type TriageConfig = alerts.Config

// TriageStream is a triage pipeline attached to a live engine via its
// alarm tap, emitting ranked incidents on a channel.
type TriageStream = alerts.Stream

// Incident is one ranked triage output: a cluster of alarm episodes
// whose onsets coincide across tenants.
type Incident = alerts.Incident

// IncidentEpisode is one coalesced run of alarms from a single
// (tenant, variate) source inside an incident.
type IncidentEpisode = alerts.Episode

// TriageStats snapshots the triage pipeline's counters, including the
// alarm→incident reduction ratio.
type TriageStats = alerts.Stats

// LeadLagStat summarizes one ordered tenant pair's onset-offset
// histogram: "Lead's episodes start ~Offset before Lag's".
type LeadLagStat = alerts.LeadLagStat

// DefaultTriageConfig returns the production triage defaults.
func DefaultTriageConfig() TriageConfig { return alerts.DefaultConfig() }

// NewTriagePipeline returns an empty triage pipeline; feed it alarms in
// stream order with Push.
func NewTriagePipeline(cfg TriageConfig) *TriagePipeline { return alerts.NewPipeline(cfg) }

// AttachTriage installs a triage pipeline as the engine's alarm consumer
// (taking ownership of the Alarms channel) and returns its ranked
// incident feed. buffer sizes the incident channel (≤0 = default).
func AttachTriage(e *Engine, cfg TriageConfig, buffer int) (*TriageStream, error) {
	return alerts.Attach(e, cfg, buffer)
}

// AttachTriageObserved is AttachTriage with an optional metrics registry:
// each alarm's triage push is timed into aero_triage_push_seconds and
// finalized incidents are counted. Pass a nil registry for plain Attach.
func AttachTriageObserved(e *Engine, cfg TriageConfig, buffer int, reg *MetricsRegistry) (*TriageStream, error) {
	return alerts.AttachObserved(e, cfg, buffer, reg)
}

// MetricsRegistry is the dependency-free metrics registry shared by every
// layer: counters, gauges and log-linear latency histograms, scraped as
// Prometheus text by IngestServer's GET /metrics (or WritePrometheus
// directly). Pass one registry through EngineConfig.Metrics,
// IngestServerConfig.Metrics, RetrainerConfig.Metrics and
// AttachTriageObserved so every series lands in one scrape. A nil
// registry disables instrumentation everywhere at the cost of a
// nil-check. See internal/metrics and the Observability section of
// DESIGN.md.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// MetricsHistogram is a lock-free log-linear latency histogram
// (nanosecond samples, ≤6.25% relative bucket error); Record is three
// atomic adds and allocation-free. Used standalone by aeroload for
// client-side send→ack latency.
type MetricsHistogram = metrics.Histogram

// NewMetricsHistogram returns an unregistered histogram, for callers that
// want percentiles without a registry (e.g. load generators).
func NewMetricsHistogram() *MetricsHistogram { return metrics.NewHistogram() }

// MetricsNow returns the shared monotonic clock reading (nanoseconds
// since process start) every instrument stamps with.
func MetricsNow() int64 { return metrics.Now() }

// TraceConfig sizes the per-tenant flight recorder (EngineConfig.Trace):
// ring depth and the slow-frame pin threshold.
type TraceConfig = engine.TraceConfig

// TraceSnapshot is a point-in-time copy of one tenant's flight-recorder
// ring, from Subscription.Trace; its JSON method renders the wire form
// served at GET /trace/{tenant}.
type TraceSnapshot = metrics.TraceSnapshot

// IngestServer is the network front door: it terminates the compact
// length-prefixed binary frame protocol over TCP (versioned magic,
// per-tenant handshake, CRC-guarded frames, credit-based flow control
// sized to engine queue headroom) plus a JSON-lines HTTP interop
// endpoint, and drains losslessly for zero-downtime restarts (every
// accepted frame scored and checkpointed before clients are told which
// prefix to release). See internal/ingest.
type IngestServer = ingest.Server

// IngestServerConfig wires an IngestServer to its engine, tenant lookup
// and drain-time checkpoint hook.
type IngestServerConfig = ingest.ServerConfig

// IngestServerStats snapshots the ingest front end's counters.
type IngestServerStats = ingest.ServerStats

// IngestClient is the protocol client: sequenced frames, a bounded
// resend buffer, credit-window flow control (Send blocks when the
// server's shard is saturated — the engine's lossless backpressure,
// felt end-to-end), and automatic reconnect-with-resend across a
// server's drain/restart handoff.
type IngestClient = ingest.Client

// IngestClientConfig parameterizes DialIngest.
type IngestClientConfig = ingest.ClientConfig

// IngestClientStats snapshots a client's delivery counters.
type IngestClientStats = ingest.ClientStats

// FrameSource replays a variate-major series as a paced frame stream —
// the one feeder shared by aeroserve's file replay and the aeroload
// network client.
type FrameSource = ingest.FrameSource

// ErrFeedStopped is returned by FrameSource.Feed when its Stop channel
// closes before the series is exhausted.
var ErrFeedStopped = ingest.ErrStopped

// ResumeOffset computes the timestamp shift for a tenant restored from
// a checkpoint, so a resumed replay continues strictly after the
// checkpointed cursor instead of rewinding.
func ResumeOffset(last float64, haveLast bool, seriesStart, step float64) float64 {
	return ingest.ResumeOffset(last, haveLast, seriesStart, step)
}

// NewIngestServer validates cfg and returns an idle ingest server; call
// Serve with a listener (see ListenInherited) to start accepting.
func NewIngestServer(cfg IngestServerConfig) (*IngestServer, error) { return ingest.NewServer(cfg) }

// DialIngest connects a protocol client to an ingest server and
// performs the tenant handshake.
func DialIngest(cfg IngestClientConfig) (*IngestClient, error) { return ingest.Dial(cfg) }

// IngestDataWireSize reports the encoded on-the-wire size in bytes of
// one n-variate data frame (framing, header and CRC included).
func IngestDataWireSize(n int) int { return ingest.DataWireSize(n) }

// ListenInherited returns a TCP listener for addr, preferring one
// inherited from a parent process mid zero-downtime restart; the bool
// reports whether the socket was inherited.
func ListenInherited(addr string) (ln net.Listener, inherited bool, err error) {
	return ingest.Listen(addr)
}

// IngestListenerFile duplicates a TCP listener's descriptor so it can
// be handed to a successor process across a zero-downtime restart.
func IngestListenerFile(l net.Listener) (*os.File, error) { return ingest.ListenerFile(l) }

// IngestRelaunch re-execs the current binary with the duplicated
// listener descriptor; the child resumes accepting on the same socket
// (see ListenInherited). Returns the child's pid.
func IngestRelaunch(f *os.File) (int, error) { return ingest.Relaunch(f) }

// ModelRegistry is a versioned on-disk model store: atomic publishes,
// monotonically increasing per-tenant versions, quarantine of corrupt
// entries, and warm detector-state checkpoints. See internal/lifecycle.
type ModelRegistry = lifecycle.Registry

// ModelVersion identifies one published model of one registry tenant.
type ModelVersion = lifecycle.Version

// ErrNoVersions is returned by ModelRegistry.Latest for a tenant with no
// loadable published model.
var ErrNoVersions = lifecycle.ErrNoVersions

// OpenRegistry opens (creating if needed) a model registry rooted at dir.
func OpenRegistry(dir string) (*ModelRegistry, error) { return lifecycle.OpenRegistry(dir) }

// Retrainer refits tenant models in the background — on a schedule or on
// demand — on a bounded worker pool, publishing every result to the
// registry. Pair its OnResult callback with Subscription.Swap for
// zero-downtime nightly retrains.
type Retrainer = lifecycle.Retrainer

// RetrainerConfig wires a Retrainer to its training data, registry and
// result consumer.
type RetrainerConfig = lifecycle.RetrainerConfig

// RetrainResult reports one finished background retrain (the seed it is
// reproducible from, the version it published, the model to swap in).
type RetrainResult = lifecycle.Result

// NewRetrainer validates cfg and returns an idle retrainer; call Start to
// launch its workers and Close to stop them.
func NewRetrainer(cfg RetrainerConfig) (*Retrainer, error) { return lifecycle.NewRetrainer(cfg) }

// DefaultConfig returns the paper's hyperparameters (W=200, ω=60, d_m=64,
// 4 heads, 1 encoder layer, Adam 1e-3, POT level 0.99 / q 1e-3).
func DefaultConfig() Config { return core.DefaultConfig() }

// SmallConfig returns a CPU-friendly profile with the same architecture at
// reduced size, suitable for laptops and CI.
func SmallConfig() Config { return core.SmallConfig() }

// Series is a multivariate magnitude series with ground-truth annotations.
type Series = dataset.Series

// Dataset couples an unlabelled training split with a labelled test split.
type Dataset = dataset.Dataset

// Stats summarizes a dataset as in the paper's Table I.
type Stats = dataset.Stats

// SyntheticConfig parameterizes the paper's synthetic benchmark generator.
type SyntheticConfig = dataset.SyntheticConfig

// GWACConfig parameterizes the simulated GWAC Astroset generator.
type GWACConfig = dataset.GWACConfig

// Preset dataset configurations matching the paper's Table I.
var (
	SyntheticMiddle = dataset.SyntheticMiddle
	SyntheticHigh   = dataset.SyntheticHigh
	SyntheticLow    = dataset.SyntheticLow
	AstrosetMiddle  = dataset.AstrosetMiddle
	AstrosetHigh    = dataset.AstrosetHigh
	AstrosetLow     = dataset.AstrosetLow
)

// ComputeStats derives Table I statistics from a dataset.
func ComputeStats(d *Dataset) Stats { return dataset.ComputeStats(d) }

// WriteDataset / ReadDataset persist datasets as CSV files.
var (
	WriteDataset = dataset.WriteDataset
	ReadDataset  = dataset.ReadDataset
)

// Confusion aggregates detection counts and derives precision/recall/F1.
type Confusion = anomaly.Confusion

// EvaluateAdjusted applies the point-adjust protocol and evaluates
// predictions against ground truth for one variate.
func EvaluateAdjusted(pred, truth []bool) Confusion {
	return anomaly.EvaluateAdjusted(pred, truth)
}

// PointAdjust applies the point-adjust protocol used by the paper's
// evaluation (§IV-C).
func PointAdjust(pred, truth []bool) []bool { return anomaly.PointAdjust(pred, truth) }

// POTThreshold calibrates an anomaly threshold from scores with
// Peaks-Over-Threshold extreme value theory (level/q as in §IV-B).
func POTThreshold(scores []float64, level, q float64) (float64, error) {
	th, err := evt.POT(scores, level, q)
	return th.Z, err
}

// BaselineDetector is the contract implemented by all eleven baselines.
type BaselineDetector = baselines.Detector

// BaselineConfig carries hyperparameters shared by the learned baselines.
type BaselineConfig = baselines.Config

// Baselines returns fresh instances of all eleven comparison methods from
// the paper's evaluation, in table order.
func Baselines(cfg BaselineConfig) []BaselineDetector {
	return []BaselineDetector{
		baselines.NewTemplateMatching(),
		baselines.NewSR(),
		baselines.NewSPOT(),
		baselines.NewFluxEV(),
		baselines.NewDonut(cfg),
		baselines.NewOmniAnomaly(cfg),
		baselines.NewAnomalyTransformer(cfg),
		baselines.NewTranAD(cfg),
		baselines.NewGDN(cfg),
		baselines.NewESG(cfg),
		baselines.NewTimesNet(cfg),
	}
}

// DefaultBaselineConfig mirrors the paper's baseline setup.
func DefaultBaselineConfig() BaselineConfig { return baselines.DefaultConfig() }

// SmallBaselineConfig is the CPU-friendly baseline profile.
func SmallBaselineConfig() BaselineConfig { return baselines.SmallConfig() }
