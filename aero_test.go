package aero_test

import (
	"testing"

	"aero"
)

// TestPublicAPIEndToEnd exercises the documented quickstart flow.
func TestPublicAPIEndToEnd(t *testing.T) {
	gen := aero.SyntheticConfig{
		Name: "api", N: 6, TrainLen: 400, TestLen: 400,
		NoiseVariates: 4, AnomalySegments: 2, NoisePct: 2.5,
		VariableFrac: 0.5, Seed: 12,
	}
	d := gen.Generate()

	cfg := aero.SmallConfig()
	cfg.MaxEpochs = 4
	model, err := aero.New(cfg, d.Train.N())
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Fit(d.Train); err != nil {
		t.Fatal(err)
	}
	pred, err := model.Detect(d.Test)
	if err != nil {
		t.Fatal(err)
	}
	var c aero.Confusion
	for v := range pred {
		c.Add(aero.EvaluateAdjusted(pred[v], d.Test.Labels[v]))
	}
	// The trained detector must produce a valid confusion matrix spanning
	// the full test split.
	if got := c.TP + c.FP + c.TN + c.FN; got != d.Test.N()*d.Test.Len() {
		t.Fatalf("confusion covers %d points, want %d", got, d.Test.N()*d.Test.Len())
	}
}

func TestPresetDatasetsMatchTableI(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size dataset generation")
	}
	for _, tc := range []struct {
		name     string
		stats    aero.Stats
		variates int
	}{
		{"SyntheticMiddle", aero.ComputeStats(aero.SyntheticMiddle().Generate()), 24},
		{"AstrosetHigh", aero.ComputeStats(aero.AstrosetHigh().Generate()), 38},
	} {
		if tc.stats.Variates != tc.variates {
			t.Fatalf("%s: %d variates, want %d", tc.name, tc.stats.Variates, tc.variates)
		}
	}
}

func TestBaselinesRoster(t *testing.T) {
	bs := aero.Baselines(aero.SmallBaselineConfig())
	if len(bs) != 11 {
		t.Fatalf("got %d baselines, want 11", len(bs))
	}
	names := map[string]bool{}
	for _, b := range bs {
		names[b.Name()] = true
	}
	for _, want := range []string{"TM", "SR", "SPOT", "FluxEV", "Donut", "OA", "AT", "TranAD", "GDN", "ESG", "TimesNet"} {
		if !names[want] {
			t.Fatalf("missing baseline %s", want)
		}
	}
}

func TestPOTThresholdPublic(t *testing.T) {
	scores := make([]float64, 2000)
	for i := range scores {
		scores[i] = float64(i%100) / 100
	}
	thr, err := aero.POTThreshold(scores, 0.99, 0.001)
	if err != nil {
		t.Logf("POT fallback: %v", err)
	}
	if thr <= 0 {
		t.Fatalf("threshold %v", thr)
	}
}

func TestPointAdjustPublic(t *testing.T) {
	truth := []bool{false, true, true, false}
	pred := []bool{false, true, false, false}
	adj := aero.PointAdjust(pred, truth)
	if !adj[2] {
		t.Fatal("point adjust must credit the full segment")
	}
}

func TestDatasetRoundtripPublic(t *testing.T) {
	dir := t.TempDir()
	gen := aero.SyntheticConfig{
		Name: "rt", N: 3, TrainLen: 80, TestLen: 60, NoiseVariates: 2,
		AnomalySegments: 1, NoisePct: 2, VariableFrac: 0.5, Seed: 4,
	}
	d := gen.Generate()
	if err := aero.WriteDataset(dir, d); err != nil {
		t.Fatal(err)
	}
	got, err := aero.ReadDataset(dir, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if got.Test.N() != 3 || got.Test.Len() != 60 {
		t.Fatal("roundtrip shape mismatch")
	}
}
