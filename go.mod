module aero

go 1.24
