package experiments

import (
	"bytes"
	"strings"
	"testing"

	"aero/internal/baselines"
)

func tinyOptions() Options { return Options{Scale: ScaleTiny} }

func TestScaleString(t *testing.T) {
	if ScaleSmall.String() != "small" || ScalePaper.String() != "paper" || ScaleTiny.String() != "tiny" {
		t.Fatal("scale names wrong")
	}
}

func TestDatasetsComeInTableOrder(t *testing.T) {
	ds := tinyOptions().datasets()
	want := []string{"SyntheticMiddle", "SyntheticHigh", "SyntheticLow",
		"AstrosetMiddle", "AstrosetHigh", "AstrosetLow"}
	if len(ds) != len(want) {
		t.Fatalf("got %d datasets", len(ds))
	}
	for i, d := range ds {
		if d.Name != want[i] {
			t.Fatalf("dataset %d = %s, want %s", i, d.Name, want[i])
		}
		if d.Test.AnomalyPoints() == 0 {
			t.Fatalf("%s has no anomalies", d.Name)
		}
	}
}

func TestMethodsRosterMatchesPaper(t *testing.T) {
	ms := tinyOptions().methods()
	if len(ms) != 12 {
		t.Fatalf("got %d methods, want 12 (11 baselines + AERO)", len(ms))
	}
	if ms[len(ms)-1].Name() != "AERO" {
		t.Fatalf("last method is %s, want AERO", ms[len(ms)-1].Name())
	}
}

func TestEvaluateMethodProducesValidMetrics(t *testing.T) {
	o := tinyOptions()
	d := o.datasets()[0]
	res := EvaluateMethod(baselines.NewSPOT(), d)
	if res.Err != nil {
		t.Fatalf("evaluate: %v", res.Err)
	}
	for _, v := range []float64{res.Precision, res.Recall, res.F1} {
		if v < 0 || v > 100 {
			t.Fatalf("metric out of range: %+v", res)
		}
	}
}

func TestEvaluateMethodAERO(t *testing.T) {
	o := tinyOptions()
	d := o.datasets()[0]
	res := EvaluateMethod(NewAERODetector(o.coreConfig()), d)
	if res.Err != nil {
		t.Fatalf("evaluate: %v", res.Err)
	}
	if res.Method != "AERO" {
		t.Fatalf("name %q", res.Method)
	}
}

func TestAERODetectorVariantNames(t *testing.T) {
	cfg := tinyOptions().coreConfig()
	cfg.Variant = 3 // VariantNoShortWindow
	det := NewAERODetector(cfg)
	if det.Name() == "AERO" {
		t.Fatal("ablation variants must carry their variant name")
	}
}

func TestAERODetectorScoresBeforeFit(t *testing.T) {
	det := NewAERODetector(tinyOptions().coreConfig())
	o := tinyOptions()
	if _, err := det.Scores(o.datasets()[0].Test); err == nil {
		t.Fatal("expected not-fitted error")
	}
}

func TestRunTable1Output(t *testing.T) {
	var buf bytes.Buffer
	RunTable1(&buf, tinyOptions())
	out := buf.String()
	for _, want := range []string{"Table I", "SyntheticMiddle", "AstrosetLow", "A/N"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestRunFig5Output(t *testing.T) {
	var buf bytes.Buffer
	RunFig5(&buf, tinyOptions())
	out := buf.String()
	for _, want := range []string{"flare", "nova", "eclipse", "burst"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestRunFig8Output(t *testing.T) {
	var buf bytes.Buffer
	RunFig8(&buf, tinyOptions())
	out := buf.String()
	if !strings.Contains(out, "learned graph") && !strings.Contains(out, "no concurrent-noise") {
		t.Fatalf("unexpected fig8 output:\n%s", out)
	}
	if !strings.Contains(out, "ground-truth") && !strings.Contains(out, "no concurrent-noise") {
		t.Fatalf("fig8 must include the ground-truth matrix:\n%s", out)
	}
}

func TestRunFig9Output(t *testing.T) {
	var buf bytes.Buffer
	RunFig9(&buf, tinyOptions())
	if !strings.Contains(buf.String(), "POT threshold") {
		t.Fatalf("fig9 output missing threshold:\n%s", buf.String())
	}
}

func TestSparkline(t *testing.T) {
	s := sparkline([]float64{0, 0.5, 1})
	if len([]rune(s)) != 3 {
		t.Fatalf("sparkline length %d", len([]rune(s)))
	}
	flat := sparkline([]float64{2, 2, 2})
	if len([]rune(flat)) != 3 {
		t.Fatal("flat sparkline must not panic")
	}
}

func TestNoisyWindowEndsSpread(t *testing.T) {
	o := tinyOptions()
	d := o.datasets()[0]
	ends := noisyWindowEnds(d.Test, 48, 3)
	for i := 1; i < len(ends); i++ {
		if ends[i] <= ends[i-1] {
			t.Fatal("window ends must increase")
		}
	}
}
