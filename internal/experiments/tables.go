package experiments

import (
	"fmt"
	"io"

	"aero/internal/core"
	"aero/internal/dataset"
)

// RunTable1 regenerates Table I (dataset statistics) for the six benchmark
// datasets at the given scale.
func RunTable1(w io.Writer, o Options) {
	printHeader(w, fmt.Sprintf("Table I — Dataset statistics (scale=%s)", o.Scale))
	fmt.Fprintf(w, "%-16s %7s %7s %5s %9s %8s %7s %6s %7s\n",
		"Dataset", "#train", "#test", "#var", "Anom(%)", "Noise(%)", "A/N", "#Segs", "#NoiseV")
	for _, d := range o.datasets() {
		st := dataset.ComputeStats(d)
		fmt.Fprintf(w, "%-16s %7d %7d %5d %9.3f %8.3f %7.3f %6d %7d\n",
			st.Name, st.TrainLen, st.TestLen, st.Variates,
			st.AnomalyPct, st.NoisePct, st.AnomToNoise, st.AnomSegs, st.NoiseVars)
	}
}

// runComparison evaluates all twelve methods on the given datasets and
// renders the table.
func runComparison(w io.Writer, o Options, sets []*dataset.Dataset) {
	names := make([]string, len(sets))
	for i, d := range sets {
		names[i] = d.Name
	}
	rows := map[string][]MethodResult{}
	var order []string
	for _, det := range o.methods() {
		order = append(order, det.Name())
		results := make([]MethodResult, len(sets))
		for i, d := range sets {
			results[i] = EvaluateMethod(det, d)
			if results[i].Err != nil {
				fmt.Fprintf(w, "! %s on %s: %v\n", det.Name(), d.Name, results[i].Err)
			}
		}
		rows[det.Name()] = results
	}
	printResultTable(w, names, rows, order)
}

// RunTable2 regenerates Table II (synthetic datasets comparison).
func RunTable2(w io.Writer, o Options) {
	printHeader(w, fmt.Sprintf("Table II — Synthetic datasets (scale=%s)", o.Scale))
	runComparison(w, o, o.datasets()[:3])
}

// RunTable3 regenerates Table III (real-world style Astrosets comparison).
func RunTable3(w io.Writer, o Options) {
	printHeader(w, fmt.Sprintf("Table III — Astrosets (scale=%s)", o.Scale))
	runComparison(w, o, o.datasets()[3:])
}

// ablationVariants lists the Table IV rows in paper order.
var ablationVariants = []core.Variant{
	core.VariantFull,
	core.VariantNoTemporal,          // 1) i
	core.VariantMultivariateInput,   // 1) ii
	core.VariantNoShortWindow,       // 1) iii
	core.VariantNoNoise,             // 2) i
	core.VariantNoNoiseMultivariate, // 2) ii
	core.VariantStaticGraph,         // 2) iii
	core.VariantDynamicGraph,        // 2) iv
}

// RunTable4 regenerates Table IV (ablation study) on SyntheticMiddle,
// AstrosetMiddle and AstrosetLow, matching the paper's dataset selection.
func RunTable4(w io.Writer, o Options) {
	printHeader(w, fmt.Sprintf("Table IV — Ablation study (scale=%s)", o.Scale))
	all := o.datasets()
	sets := []*dataset.Dataset{all[0], all[3], all[5]}
	names := make([]string, len(sets))
	for i, d := range sets {
		names[i] = d.Name
	}
	rows := map[string][]MethodResult{}
	var order []string
	for _, variant := range ablationVariants {
		cfg := o.coreConfig()
		cfg.Variant = variant
		det := NewAERODetector(cfg)
		order = append(order, det.Name())
		results := make([]MethodResult, len(sets))
		for i, d := range sets {
			results[i] = EvaluateMethod(det, d)
			if results[i].Err != nil {
				fmt.Fprintf(w, "! %s on %s: %v\n", det.Name(), d.Name, results[i].Err)
			}
		}
		rows[det.Name()] = results
	}
	printResultTable(w, names, rows, order)
}
