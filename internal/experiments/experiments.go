// Package experiments is the harness regenerating every table and figure
// of the paper's evaluation section (§IV): dataset statistics (Table I),
// headline precision/recall/F1 comparisons on synthetic and real-world
// style datasets (Tables II and III), the component ablation (Table IV),
// efficiency and scalability measurements (Figs. 6 and 7), the qualitative
// graph-structure and reconstruction-error visualizations (Figs. 8 and 9),
// and the hyperparameter sensitivity sweeps (Fig. 10).
//
// All experiments run at one of two scales: ScaleSmall shrinks datasets
// and training so the whole suite finishes in minutes on a laptop CPU,
// while ScalePaper uses the paper's dataset sizes and hyperparameters
// (hours of pure-Go CPU training). EXPERIMENTS.md records measured values
// against the paper's for the committed scale.
package experiments

import (
	"fmt"
	"io"

	"aero/internal/anomaly"
	"aero/internal/baselines"
	"aero/internal/core"
	"aero/internal/dataset"
	"aero/internal/evt"
)

// Scale selects the compute profile of an experiment run.
type Scale int

const (
	// ScaleSmall shrinks datasets and training to minutes of CPU time.
	ScaleSmall Scale = iota
	// ScalePaper uses the paper's dataset sizes and hyperparameters.
	ScalePaper
	// ScaleTiny is a seconds-scale smoke profile used by the benchmark
	// suite (bench_test.go): shapes are preserved, numbers are not
	// meaningful.
	ScaleTiny
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case ScalePaper:
		return "paper"
	case ScaleTiny:
		return "tiny"
	default:
		return "small"
	}
}

// Options configures an experiment run.
type Options struct {
	Scale   Scale
	Workers int
	// Seed offsets all dataset/model seeds, for variance studies.
	Seed int64
}

// POT protocol constants shared by every method (paper §IV-B).
const (
	potLevel = 0.99
	potQ     = 0.001
)

// coreConfig returns the AERO configuration for the scale.
func (o Options) coreConfig() core.Config {
	var c core.Config
	switch o.Scale {
	case ScalePaper:
		c = core.DefaultConfig()
	case ScaleTiny:
		c = core.SmallConfig()
		c.LongWindow = 48
		c.ShortWindow = 16
		c.MaxEpochs = 3
		c.TrainStride = 24
		c.EvalStride = 16
	default:
		c = core.SmallConfig()
	}
	c.Workers = o.Workers
	c.Seed += o.Seed
	return c
}

// baselineConfig returns the baseline configuration for the scale.
func (o Options) baselineConfig() baselines.Config {
	var c baselines.Config
	switch o.Scale {
	case ScalePaper:
		c = baselines.DefaultConfig()
	case ScaleTiny:
		c = baselines.SmallConfig()
		c.Window = 48
		c.Epochs = 2
		c.TrainStride = 24
		c.EvalStride = 16
	default:
		c = baselines.SmallConfig()
	}
	c.Workers = o.Workers
	c.Seed += o.Seed
	return c
}

// datasets returns the six benchmark datasets at the requested scale, in
// Table I order.
func (o Options) datasets() []*dataset.Dataset {
	if o.Scale == ScalePaper {
		return []*dataset.Dataset{
			seedShift(dataset.SyntheticMiddle(), o.Seed).Generate(),
			seedShift(dataset.SyntheticHigh(), o.Seed).Generate(),
			seedShift(dataset.SyntheticLow(), o.Seed).Generate(),
			gwacSeedShift(dataset.AstrosetMiddle(), o.Seed).Generate(),
			gwacSeedShift(dataset.AstrosetHigh(), o.Seed).Generate(),
			gwacSeedShift(dataset.AstrosetLow(), o.Seed).Generate(),
		}
	}
	return []*dataset.Dataset{
		o.smallSynthetic("SyntheticMiddle", 5, 1.7, 1),
		o.smallSynthetic("SyntheticHigh", 10, 1.7, 2),
		o.smallSynthetic("SyntheticLow", 5, 3.4, 3),
		o.smallAstroset("AstrosetMiddle", 3, 4.2, 11),
		o.smallAstroset("AstrosetHigh", 3, 2.4, 12),
		o.smallAstroset("AstrosetLow", 6, 8.4, 13),
	}
}

// dims returns the dataset dimensions for the scale.
func (o Options) dims() (n, trainLen, testLen int) {
	if o.Scale == ScaleTiny {
		return 6, 350, 300
	}
	return 10, 700, 700
}

func seedShift(c dataset.SyntheticConfig, d int64) dataset.SyntheticConfig {
	c.Seed += d
	return c
}

func gwacSeedShift(c dataset.GWACConfig, d int64) dataset.GWACConfig {
	c.Seed += d
	return c
}

func (o Options) smallSynthetic(name string, segs int, noisePct float64, seed int64) *dataset.Dataset {
	n, trainLen, testLen := o.dims()
	return dataset.SyntheticConfig{
		Name: name, N: n, TrainLen: trainLen, TestLen: testLen,
		NoiseVariates: (7 * n) / 10, AnomalySegments: segs, NoisePct: noisePct,
		VariableFrac: 0.5, Seed: seed + o.Seed,
	}.Generate()
}

func (o Options) smallAstroset(name string, segs int, noisePct float64, seed int64) *dataset.Dataset {
	n, trainLen, testLen := o.dims()
	return dataset.GWACConfig{
		Name: name, N: n + 2, TrainLen: trainLen + 200, TestLen: testLen,
		AnomalySegments: segs, AnomalyLen: 40, NoisePct: noisePct,
		CadenceSec: 15, JitterSec: 2, GapProb: 0.002, Seed: seed + o.Seed,
	}.Generate()
}

// aeroDetector adapts core.Model to the baselines.Detector contract so the
// harness can treat all twelve methods uniformly.
type aeroDetector struct {
	cfg core.Config
	m   *core.Model
}

// NewAERODetector wraps an AERO configuration as a Detector.
func NewAERODetector(cfg core.Config) baselines.Detector {
	return &aeroDetector{cfg: cfg}
}

func (a *aeroDetector) Name() string {
	if a.cfg.Variant != core.VariantFull {
		return a.cfg.Variant.String()
	}
	return "AERO"
}

func (a *aeroDetector) Fit(train *dataset.Series) error {
	m, err := core.New(a.cfg, train.N())
	if err != nil {
		return err
	}
	if err := m.Fit(train); err != nil {
		return err
	}
	a.m = m
	return nil
}

func (a *aeroDetector) Scores(s *dataset.Series) ([][]float64, error) {
	if a.m == nil {
		return nil, fmt.Errorf("experiments: AERO not fitted")
	}
	return a.m.Scores(s)
}

// univariateMethods marks the methods whose native deployment calibrates
// one threshold per stream (§II-A).
var univariateMethods = map[string]bool{
	"TM": true, "SR": true, "SPOT": true, "FluxEV": true, "Donut": true,
}

// MethodResult is one table cell triple.
type MethodResult struct {
	Method                string
	Precision, Recall, F1 float64
	Err                   error
}

// EvaluateMethod runs the full protocol for one method on one dataset:
// fit on train, calibrate a global POT threshold on pooled training
// scores, score the test split, point-adjust, and count.
func EvaluateMethod(det baselines.Detector, d *dataset.Dataset) MethodResult {
	res := MethodResult{Method: det.Name()}
	if err := det.Fit(d.Train); err != nil {
		res.Err = fmt.Errorf("fit: %w", err)
		return res
	}
	trainScores, err := det.Scores(d.Train)
	if err != nil {
		res.Err = fmt.Errorf("train scores: %w", err)
		return res
	}
	// Threshold at each method's native granularity, POT everywhere with
	// identical level/q (§IV-B): the univariate methods calibrate one
	// threshold per stream (the SPOT/FluxEV/Donut deployment mode), while
	// the multivariate methods — AERO included (Eq. 18) — pool all
	// training scores into one global threshold.
	pool := make([]float64, 0, len(trainScores)*len(trainScores[0]))
	for _, row := range trainScores {
		pool = append(pool, row...)
	}
	pooled, err := evt.POT(pool, potLevel, potQ)
	if err != nil && pooled.Z == 0 {
		res.Err = fmt.Errorf("pot: %w", err)
		return res
	}
	thr := make([]float64, len(trainScores))
	for v := range trainScores {
		thr[v] = pooled.Z
	}
	if univariateMethods[det.Name()] {
		for v := range trainScores {
			if tv, verr := evt.POT(trainScores[v], potLevel, potQ); verr == nil || tv.Peaks > 0 {
				thr[v] = tv.Z
			}
		}
	}
	testScores, err := det.Scores(d.Test)
	if err != nil {
		res.Err = fmt.Errorf("test scores: %w", err)
		return res
	}
	var c anomaly.Confusion
	for v := range testScores {
		pred := anomaly.Threshold(testScores[v], thr[v])
		c.Add(anomaly.EvaluateAdjusted(pred, d.Test.Labels[v]))
	}
	res.Precision = 100 * c.Precision()
	res.Recall = 100 * c.Recall()
	res.F1 = 100 * c.F1()
	return res
}

// methods returns the twelve evaluated methods (11 baselines + AERO) in
// table order.
func (o Options) methods() []baselines.Detector {
	bc := o.baselineConfig()
	return []baselines.Detector{
		baselines.NewTemplateMatching(),
		baselines.NewSR(),
		baselines.NewSPOT(),
		baselines.NewFluxEV(),
		baselines.NewDonut(bc),
		baselines.NewOmniAnomaly(bc),
		baselines.NewAnomalyTransformer(bc),
		baselines.NewTranAD(bc),
		baselines.NewGDN(bc),
		baselines.NewESG(bc),
		baselines.NewTimesNet(bc),
		NewAERODetector(o.coreConfig()),
	}
}

// printHeader writes a framed section header.
func printHeader(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

// printResultTable renders method rows × dataset columns of P/R/F1.
func printResultTable(w io.Writer, datasets []string, rows map[string][]MethodResult, order []string) {
	fmt.Fprintf(w, "%-14s", "Method")
	for _, d := range datasets {
		fmt.Fprintf(w, " | %-23s", d)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-14s", "")
	for range datasets {
		fmt.Fprintf(w, " | %7s %7s %7s", "Prec", "Recall", "F1")
	}
	fmt.Fprintln(w)
	for _, m := range order {
		fmt.Fprintf(w, "%-14s", m)
		for i := range datasets {
			r := rows[m][i]
			if r.Err != nil {
				fmt.Fprintf(w, " | %23s", "error")
				continue
			}
			fmt.Fprintf(w, " | %7.2f %7.2f %7.2f", r.Precision, r.Recall, r.F1)
		}
		fmt.Fprintln(w)
	}
}
