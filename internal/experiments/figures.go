package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"aero/internal/baselines"
	"aero/internal/core"
	"aero/internal/dataset"
	"aero/internal/stats"
)

// RunFig5 renders the injected true-anomaly shapes (paper Fig. 5) as ASCII
// sparklines plus sampled values, one block per anomaly class.
func RunFig5(w io.Writer, o Options) {
	printHeader(w, "Fig. 5 — Injected true-anomaly shapes")
	shapes := []struct {
		name string
		f    func(u float64) float64
	}{
		{"flare (Davenport 2014)", func(u float64) float64 { return dataset.FlareShape(u*7 - 1) }},
		{"nova", func(u float64) float64 { return dataset.NovaShape(u, 0.15) }},
		{"eclipse", dataset.EclipseShape},
		{"burst", dataset.BurstShape},
	}
	const cols = 64
	for _, s := range shapes {
		vals := make([]float64, cols)
		for i := range vals {
			vals[i] = s.f(float64(i) / float64(cols-1))
		}
		fmt.Fprintf(w, "%-24s %s\n", s.name, sparkline(vals))
	}
}

// sparkline renders values as a unicode block-height strip.
func sparkline(vals []float64) string {
	blocks := []rune(" ▁▂▃▄▅▆▇█")
	lo, hi := stats.Min(vals), stats.Max(vals)
	if hi <= lo {
		hi = lo + 1
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		idx := int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		out[i] = blocks[idx]
	}
	return string(out)
}

// RunFig6 measures training and inference time per method on the
// SyntheticMiddle dataset (paper Fig. 6).
func RunFig6(w io.Writer, o Options) {
	printHeader(w, fmt.Sprintf("Fig. 6 — Model efficiency on SyntheticMiddle (scale=%s)", o.Scale))
	d := o.datasets()[0]
	fmt.Fprintf(w, "%-14s %14s %14s\n", "Method", "Train(s)", "Inference(s)")
	for _, det := range o.methods() {
		t0 := time.Now()
		err := det.Fit(d.Train)
		trainT := time.Since(t0).Seconds()
		if err != nil {
			fmt.Fprintf(w, "%-14s %14s %14s  (%v)\n", det.Name(), "-", "-", err)
			continue
		}
		t1 := time.Now()
		_, err = det.Scores(d.Test)
		inferT := time.Since(t1).Seconds()
		if err != nil {
			fmt.Fprintf(w, "%-14s %14.3f %14s  (%v)\n", det.Name(), trainT, "-", err)
			continue
		}
		fmt.Fprintf(w, "%-14s %14.3f %14.3f\n", det.Name(), trainT, inferT)
	}
}

// RunFig7 measures memory footprint and inference time against the number
// of stars (paper Fig. 7). The paper reports GPU memory; the substituted
// metric is the Go heap allocation volume during scoring, which captures
// the same scaling shape.
func RunFig7(w io.Writer, o Options) {
	printHeader(w, fmt.Sprintf("Fig. 7 — Scalability vs number of stars (scale=%s)", o.Scale))
	var sizes []int
	trainLen, testLen := 400, 300
	if o.Scale == ScalePaper {
		sizes = []int{24, 96, 240, 480, 960}
		trainLen, testLen = 2000, 1000
	} else {
		sizes = []int{8, 16, 32, 64}
	}
	fmt.Fprintf(w, "%-8s %-12s %14s %16s\n", "#stars", "method", "Inference(s)", "AllocMB")
	for _, n := range sizes {
		d := dataset.ScalabilityDataset(n, trainLen, testLen, 21+o.Seed)
		// Quick-fit configurations: scalability measures inference cost.
		cc := o.coreConfig()
		cc.MaxEpochs = 1
		bc := o.baselineConfig()
		bc.Epochs = 1
		dets := []baselines.Detector{
			NewAERODetector(cc),
			baselines.NewAnomalyTransformer(bc),
			baselines.NewTranAD(bc),
			baselines.NewGDN(bc),
			baselines.NewESG(bc),
			baselines.NewTimesNet(bc),
			baselines.NewSR(),
		}
		for _, det := range dets {
			if err := det.Fit(d.Train); err != nil {
				fmt.Fprintf(w, "%-8d %-12s error: %v\n", n, det.Name(), err)
				continue
			}
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			t0 := time.Now()
			if _, err := det.Scores(d.Test); err != nil {
				fmt.Fprintf(w, "%-8d %-12s error: %v\n", n, det.Name(), err)
				continue
			}
			el := time.Since(t0).Seconds()
			runtime.ReadMemStats(&after)
			allocMB := float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20)
			fmt.Fprintf(w, "%-8d %-12s %14.3f %16.1f\n", n, det.Name(), el, allocMB)
		}
	}
}

// RunFig8 trains AERO on SyntheticMiddle and renders three window-wise
// learned graphs in temporal order next to the ground-truth concurrent
// noise co-occurrence matrix (paper Fig. 8).
func RunFig8(w io.Writer, o Options) {
	printHeader(w, fmt.Sprintf("Fig. 8 — Window-wise learned graph structure (scale=%s)", o.Scale))
	d := o.datasets()[0]
	det := NewAERODetector(o.coreConfig()).(*aeroDetector)
	if err := det.Fit(d.Train); err != nil {
		fmt.Fprintf(w, "fit error: %v\n", err)
		return
	}
	ends := noisyWindowEnds(d.Test, det.cfg.LongWindow, 3)
	if len(ends) == 0 {
		fmt.Fprintln(w, "no concurrent-noise windows found in the test split")
		return
	}
	for _, end := range ends {
		g, err := det.m.GraphAt(d.Test, end)
		if err != nil {
			fmt.Fprintf(w, "graph error at %d: %v\n", end, err)
			continue
		}
		fmt.Fprintf(w, "\nlearned graph at window end t=%d:\n", end)
		writeHeatmap(w, g.Rows, func(i, j int) float64 { return g.At(i, j) })
	}
	fmt.Fprintln(w, "\nground-truth concurrent-noise co-occurrence over the whole test split:")
	n := d.Test.N()
	writeHeatmap(w, n, func(i, j int) float64 {
		if i == j {
			return 1
		}
		for t := 0; t < d.Test.Len(); t++ {
			if d.Test.NoiseMask[i][t] && d.Test.NoiseMask[j][t] {
				return 1
			}
		}
		return 0
	})
}

// noisyWindowEnds picks up to k window ends whose final timestamps have
// concurrent noise, spread across the series.
func noisyWindowEnds(s *dataset.Series, minEnd, k int) []int {
	var ends []int
	lastPick := -1 << 30
	for t := minEnd; t < s.Len() && len(ends) < k; t++ {
		count := 0
		for v := 0; v < s.N(); v++ {
			if s.NoiseMask[v][t] {
				count++
			}
		}
		if count >= 2 && t-lastPick > s.Len()/8 {
			ends = append(ends, t)
			lastPick = t
		}
	}
	return ends
}

// writeHeatmap renders an n×n matrix of [0,1] values as ASCII shades.
func writeHeatmap(w io.Writer, n int, at func(i, j int) float64) {
	shades := []byte(" .:-=+*#%@")
	for i := 0; i < n; i++ {
		row := make([]byte, n)
		for j := 0; j < n; j++ {
			v := at(i, j)
			idx := int(v * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			row[j] = shades[idx]
		}
		fmt.Fprintf(w, "  %s\n", row)
	}
}

// RunFig9 visualizes stage-1 vs final reconstruction errors on stars with
// true anomalies and stars with concurrent noise (paper Fig. 9).
func RunFig9(w io.Writer, o Options) {
	printHeader(w, fmt.Sprintf("Fig. 9 — Reconstruction errors per stage (scale=%s)", o.Scale))
	d := o.datasets()[0]
	det := NewAERODetector(o.coreConfig()).(*aeroDetector)
	if err := det.Fit(d.Train); err != nil {
		fmt.Fprintf(w, "fit error: %v\n", err)
		return
	}
	stage1, final, err := det.m.StageErrors(d.Test)
	if err != nil {
		fmt.Fprintf(w, "errors: %v\n", err)
		return
	}
	thr := det.m.Threshold()
	fmt.Fprintf(w, "POT threshold: %.4f\n", thr)
	W := det.cfg.LongWindow
	for v := 0; v < d.Test.N(); v++ {
		anom := maskedVals(stage1[v], final[v], d.Test.Labels[v], W)
		noise := maskedVals(stage1[v], final[v], d.Test.NoiseMask[v], W)
		if anom.n == 0 && noise.n == 0 {
			continue
		}
		fmt.Fprintf(w, "star %2d:", v)
		if anom.n > 0 {
			fmt.Fprintf(w, "  true-anomaly pts=%3d  stage1 %.4f → final %.4f",
				anom.n, anom.m1, anom.m2)
		}
		if noise.n > 0 {
			fmt.Fprintf(w, "  concurrent-noise pts=%3d  stage1 %.4f → final %.4f",
				noise.n, noise.m1, noise.m2)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "expected shape: noise errors shrink from stage1 to final; anomaly errors persist or grow")
}

type maskStats struct {
	n      int
	m1, m2 float64
}

func maskedVals(e1, ef []float64, mask []bool, from int) maskStats {
	var s maskStats
	var sum1, sum2 float64
	for i := from; i < len(mask); i++ {
		if mask[i] {
			s.n++
			sum1 += e1[i]
			sum2 += ef[i]
		}
	}
	if s.n > 0 {
		s.m1 = sum1 / float64(s.n)
		s.m2 = sum2 / float64(s.n)
	}
	return s
}

// RunFig10 sweeps the four hyperparameters of the sensitivity analysis
// (paper Fig. 10): short window size, attention heads, encoder layers and
// long window size, reporting F1 plus train/test time on SyntheticMiddle.
func RunFig10(w io.Writer, o Options) {
	printHeader(w, fmt.Sprintf("Fig. 10 — Parameter sensitivity on SyntheticMiddle (scale=%s)", o.Scale))
	d := o.datasets()[0]
	base := o.coreConfig()

	var shortSizes, heads, layers, longSizes []int
	if o.Scale == ScalePaper {
		shortSizes = []int{20, 40, 60, 80, 100}
		heads = []int{1, 2, 4, 8}
		layers = []int{1, 2, 3, 4}
		longSizes = []int{100, 150, 200, 250, 300}
	} else {
		shortSizes = []int{8, 16, 24, 32}
		heads = []int{1, 2, 4}
		layers = []int{1, 2}
		longSizes = []int{48, 64, 96}
	}

	sweep := func(title string, vals []int, mut func(c *core.Config, v int)) {
		fmt.Fprintf(w, "\n%s:\n%-8s %8s %12s %12s\n", title, "value", "F1", "Train(s)", "Test(s)")
		for _, v := range vals {
			cfg := base
			mut(&cfg, v)
			det := NewAERODetector(cfg)
			t0 := time.Now()
			err := det.Fit(d.Train)
			trainT := time.Since(t0).Seconds()
			if err != nil {
				fmt.Fprintf(w, "%-8d error: %v\n", v, err)
				continue
			}
			t1 := time.Now()
			res := EvaluateMethod(det, d)
			testT := time.Since(t1).Seconds()
			if res.Err != nil {
				fmt.Fprintf(w, "%-8d error: %v\n", v, res.Err)
				continue
			}
			fmt.Fprintf(w, "%-8d %8.2f %12.2f %12.2f\n", v, res.F1, trainT, testT)
		}
	}

	sweep("short window size ω", shortSizes, func(c *core.Config, v int) { c.ShortWindow = v })
	sweep("attention heads", heads, func(c *core.Config, v int) { c.Heads = v })
	sweep("encoder layers", layers, func(c *core.Config, v int) { c.EncoderLayers = v })
	sweep("long window size W", longSizes, func(c *core.Config, v int) {
		c.LongWindow = v
		if c.ShortWindow > v {
			c.ShortWindow = v / 2
		}
	})
}
