package ag

import (
	"testing"

	"aero/internal/tensor"
)

// buildLoss builds the same composite graph as buildForward but returns
// the scalar loss node so the graph can be differentiated.
func buildLoss(t *Tape, x *tensor.Dense, w, gain, bias *Param) *Node {
	h := t.MatMul(t.Const(x), t.Param(w))
	h = t.AddRow(h, t.Param(bias))
	h = t.LayerNormRows(h, t.Param(gain), t.Param(bias), 1e-5)
	a := t.SliceCols(h, 0, 2)
	b := t.SliceCols(h, 2, 4)
	att := t.SoftmaxRows(t.Scale(t.MatMulT(a, b), 0.5))
	mix := t.MatMul(att, b)
	cat := t.ConcatCols(a, mix)
	y := t.Sigmoid(t.Add(cat, t.Tanh(h)))
	return t.MeanAll(t.Square(y))
}

// trainStep runs one forward+backward pass on tp (resetting it first) and
// returns the loss value; params receive accumulated gradients.
func trainStep(tp *Tape, x *tensor.Dense, w, gain, bias *Param) float64 {
	tp.Reset()
	loss := buildLoss(tp, x, w, gain, bias)
	tp.Backward(loss)
	return loss.Value.Data[0]
}

func zeroAll(ps ...*Param) {
	for _, p := range ps {
		p.ZeroGrad()
	}
}

// TestGradTapeReuseBitIdentical asserts that a Reset-reused gradient tape
// produces bit-identical losses and parameter gradients to a fresh tape:
// the arena-backed value/gradient buffers must not leak state between
// passes.
func TestGradTapeReuseBitIdentical(t *testing.T) {
	x, w, gain, bias := inferenceFixture()
	reused := NewTape()
	for pass := 0; pass < 3; pass++ {
		lossReused := trainStep(reused, x, w, gain, bias)
		gw := w.Grad.Clone()
		gg := gain.Grad.Clone()
		gb := bias.Grad.Clone()
		zeroAll(w, gain, bias)

		lossFresh := trainStep(NewTape(), x, w, gain, bias)
		if lossFresh != lossReused {
			t.Fatalf("pass %d: reused-tape loss %v != fresh-tape loss %v", pass, lossReused, lossFresh)
		}
		if !tensor.Equal(gw, w.Grad, 0) || !tensor.Equal(gg, gain.Grad, 0) || !tensor.Equal(gb, bias.Grad, 0) {
			t.Fatalf("pass %d: reused-tape gradients differ from fresh tape", pass)
		}
		zeroAll(w, gain, bias)
	}
}

// TestBackwardGradsFlushMatchesBackward asserts that the deterministic
// two-phase path (BackwardGrads + FlushParamGrads) accumulates exactly the
// same parameter gradients as the locking Backward path.
func TestBackwardGradsFlushMatchesBackward(t *testing.T) {
	x, w, gain, bias := inferenceFixture()
	trainStep(NewTape(), x, w, gain, bias)
	want := w.Grad.Clone()
	zeroAll(w, gain, bias)

	tp := NewTape()
	loss := buildLoss(tp, x, w, gain, bias)
	tp.BackwardGrads(loss)
	if w.Grad.Norm() != 0 {
		t.Fatal("BackwardGrads must not touch Param.Grad")
	}
	tp.FlushParamGrads()
	if !tensor.Equal(want, w.Grad, 0) {
		t.Fatal("FlushParamGrads accumulation differs from Backward")
	}
	zeroAll(w, gain, bias)
}

// TestGradTapeSteadyStateAllocs pins the training-tape allocation budget:
// once the arenas are warm, a same-shape forward+backward step must not
// allocate at all.
func TestGradTapeSteadyStateAllocs(t *testing.T) {
	x, w, gain, bias := inferenceFixture()
	tp := NewTape()
	trainStep(tp, x, w, gain, bias) // warm the arenas and node chunks
	allocs := testing.AllocsPerRun(32, func() {
		trainStep(tp, x, w, gain, bias)
	})
	if allocs > 0 {
		t.Fatalf("steady-state training pass allocates %.1f objects, want 0", allocs)
	}
	zeroAll(w, gain, bias)
}
