// Package ag implements reverse-mode automatic differentiation over dense
// matrices (a "tape" or Wengert list).
//
// A Tape records every operation applied to Nodes; Backward replays the
// tape in reverse, accumulating gradients. Parameters (Param) live outside
// any tape so that the same weights can be used across many forward passes
// and across goroutines: each Backward call accumulates into Param.Grad
// under the parameter's lock, which makes data-parallel training safe.
//
// Tapes come in two flavours. NewTape records backward closures and
// allocates a fresh output tensor per operation — the training mode.
// NewInferenceTape skips gradient bookkeeping entirely and draws every
// output from a positional tensor.Arena, so a fixed-shape forward pass
// re-run after Reset is allocation-free in steady state — the streaming
// hot path. Both flavours compute bit-identical values.
//
// The operator set is the minimum needed for the models in this repository:
// Transformer encoder–decoders, GRUs, VAEs, graph convolutions and
// inception-style convolutions. Every operator's gradient is validated
// against central finite differences in the package tests.
package ag

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"aero/internal/tensor"
)

// Param is a trainable parameter: a value matrix plus an accumulated
// gradient. Params are shared between tapes; gradient accumulation is
// guarded by mu so concurrent Backward calls are safe.
type Param struct {
	Name  string
	Value *tensor.Dense
	Grad  *tensor.Dense

	mu sync.Mutex
}

// NewParam creates a named parameter wrapping value.
func NewParam(name string, value *tensor.Dense) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Rows, value.Cols)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// addGrad accumulates g into p.Grad under the parameter lock.
func (p *Param) addGrad(g *tensor.Dense) {
	p.mu.Lock()
	p.Grad.AddInPlace(g)
	p.mu.Unlock()
}

// Node is one value in the computation graph. Value is set at construction;
// Grad is populated during Backward.
type Node struct {
	Value *tensor.Dense
	Grad  *tensor.Dense

	back  func() // propagates this node's Grad into its parents' Grads
	param *Param // non-nil when the node is a parameter leaf
}

func (n *Node) grad() *tensor.Dense {
	if n.Grad == nil {
		n.Grad = tensor.New(n.Value.Rows, n.Value.Cols)
	}
	return n.Grad
}

// Rows returns the row count of the node's value.
func (n *Node) Rows() int { return n.Value.Rows }

// Cols returns the column count of the node's value.
func (n *Node) Cols() int { return n.Value.Cols }

// nodeChunk is the granularity of the tape's node arena. Chunked storage
// keeps node pointers stable across appends while amortising allocation.
const nodeChunk = 128

// Tape records operations for reverse-mode differentiation. A Tape is not
// safe for concurrent use; build one tape per goroutine.
type Tape struct {
	nodes  []*Node
	chunks [][]Node
	nused  int

	arena *tensor.Arena // non-nil only for inference tapes
	grad  bool          // record backward closures
}

// NewTape returns an empty gradient-recording tape.
func NewTape() *Tape { return &Tape{grad: true} }

// NewInferenceTape returns a forward-only tape whose operation outputs are
// drawn from an internal arena: after Reset, re-running a forward pass of
// the same shape reuses every buffer instead of allocating. Backward must
// not be called on it, and values produced before a Reset are invalidated
// by the next pass.
func NewInferenceTape() *Tape {
	return &Tape{arena: tensor.NewArena()}
}

// Gradient reports whether the tape records backward closures (false for
// inference tapes).
func (t *Tape) Gradient() bool { return t.grad }

// alloc returns the output buffer for one operation: arena-backed for
// inference tapes, freshly allocated otherwise. Either way it is zeroed.
func (t *Tape) alloc(r, c int) *tensor.Dense {
	if t.arena != nil {
		return t.arena.Get(r, c)
	}
	return tensor.New(r, c)
}

// Buffer hands out a zeroed r×c scratch tensor with the same lifetime as
// the tape's operation outputs. Use it to stage constant inputs (time
// embeddings, masks) without allocating on every inference pass.
func (t *Tape) Buffer(r, c int) *tensor.Dense { return t.alloc(r, c) }

// newNode takes a node struct from the chunked arena.
func (t *Tape) newNode() *Node {
	if t.nused == len(t.chunks)*nodeChunk {
		t.chunks = append(t.chunks, make([]Node, nodeChunk))
	}
	n := &t.chunks[t.nused/nodeChunk][t.nused%nodeChunk]
	t.nused++
	*n = Node{}
	return n
}

// node registers a freshly computed value. Backward closures are attached
// by the caller only when t.grad is set.
func (t *Tape) node(v *tensor.Dense) *Node {
	n := t.newNode()
	n.Value = v
	if t.grad {
		t.nodes = append(t.nodes, n)
	}
	return n
}

// Const introduces a leaf whose gradient is tracked but not propagated
// anywhere (inputs, stop-gradient values).
func (t *Tape) Const(v *tensor.Dense) *Node {
	return t.node(v)
}

// Param introduces a parameter leaf. After Backward, the leaf's gradient is
// accumulated into p.Grad.
func (t *Tape) Param(p *Param) *Node {
	n := t.node(p.Value)
	if t.grad {
		n.param = p
	}
	return n
}

// Backward seeds loss (which must be 1×1) with gradient 1 and propagates
// gradients through the tape in reverse order, accumulating parameter
// gradients into their Params. It panics on inference tapes.
func (t *Tape) Backward(loss *Node) {
	if !t.grad {
		panic("ag: Backward on an inference tape")
	}
	if loss.Value.Rows != 1 || loss.Value.Cols != 1 {
		panic(fmt.Sprintf("ag: Backward expects scalar loss, got %dx%d", loss.Value.Rows, loss.Value.Cols))
	}
	loss.grad().Data[0] = 1
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.Grad == nil {
			continue // not on any path to the loss
		}
		if n.back != nil {
			n.back()
		}
		if n.param != nil {
			n.param.addGrad(n.Grad)
		}
	}
}

// Reset drops all recorded nodes so the tape can be reused, keeping the
// node chunks and (for inference tapes) every operation buffer for the
// next pass.
func (t *Tape) Reset() {
	t.nodes = t.nodes[:0]
	t.nused = 0
	if t.arena != nil {
		t.arena.Reset()
	}
}

// Len reports the number of operations recorded (useful in tests).
func (t *Tape) Len() int { return t.nused }

// --- elementwise binary ops -------------------------------------------------

// assertSameShape panics on elementwise operand shape mismatch, preserving
// the diagnostic the tensor-level kernels used to provide.
func assertSameShape(a, b *Node) {
	if a.Value.Rows != b.Value.Rows || a.Value.Cols != b.Value.Cols {
		panic(fmt.Sprintf("ag: shape mismatch %dx%d vs %dx%d",
			a.Value.Rows, a.Value.Cols, b.Value.Rows, b.Value.Cols))
	}
}

// Add returns a + b.
func (t *Tape) Add(a, b *Node) *Node {
	assertSameShape(a, b)
	av, bv := a.Value, b.Value
	v := t.alloc(av.Rows, av.Cols)
	for i := range v.Data {
		v.Data[i] = av.Data[i] + bv.Data[i]
	}
	n := t.node(v)
	if t.grad {
		n.back = func() {
			a.grad().AddInPlace(n.Grad)
			b.grad().AddInPlace(n.Grad)
		}
	}
	return n
}

// Sub returns a − b.
func (t *Tape) Sub(a, b *Node) *Node {
	assertSameShape(a, b)
	av, bv := a.Value, b.Value
	v := t.alloc(av.Rows, av.Cols)
	for i := range v.Data {
		v.Data[i] = av.Data[i] - bv.Data[i]
	}
	n := t.node(v)
	if t.grad {
		n.back = func() {
			a.grad().AddInPlace(n.Grad)
			b.grad().AddScaled(-1, n.Grad)
		}
	}
	return n
}

// Mul returns the Hadamard product a ⊙ b.
func (t *Tape) Mul(a, b *Node) *Node {
	assertSameShape(a, b)
	av, bv := a.Value, b.Value
	v := t.alloc(av.Rows, av.Cols)
	for i := range v.Data {
		v.Data[i] = av.Data[i] * bv.Data[i]
	}
	n := t.node(v)
	if t.grad {
		n.back = func() {
			ga, gb := a.grad(), b.grad()
			for i, g := range n.Grad.Data {
				ga.Data[i] += g * b.Value.Data[i]
				gb.Data[i] += g * a.Value.Data[i]
			}
		}
	}
	return n
}

// Div returns the elementwise quotient a / b.
func (t *Tape) Div(a, b *Node) *Node {
	assertSameShape(a, b)
	av, bv := a.Value, b.Value
	v := t.alloc(av.Rows, av.Cols)
	for i := range v.Data {
		v.Data[i] = av.Data[i] / bv.Data[i]
	}
	n := t.node(v)
	if t.grad {
		n.back = func() {
			ga, gb := a.grad(), b.grad()
			for i, g := range n.Grad.Data {
				bi := b.Value.Data[i]
				ga.Data[i] += g / bi
				gb.Data[i] -= g * a.Value.Data[i] / (bi * bi)
			}
		}
	}
	return n
}

// AddRow broadcasts the 1×C row vector v across the rows of a.
func (t *Tape) AddRow(a, v *Node) *Node {
	if v.Value.Rows != 1 || v.Value.Cols != a.Value.Cols {
		panic(fmt.Sprintf("ag: AddRow wants 1x%d, got %dx%d", a.Value.Cols, v.Value.Rows, v.Value.Cols))
	}
	out := t.alloc(a.Value.Rows, a.Value.Cols)
	for i := 0; i < a.Value.Rows; i++ {
		row := a.Value.Row(i)
		dst := out.Row(i)
		for j, x := range row {
			dst[j] = x + v.Value.Data[j]
		}
	}
	n := t.node(out)
	if t.grad {
		n.back = func() {
			a.grad().AddInPlace(n.Grad)
			gv := v.grad()
			for i := 0; i < n.Grad.Rows; i++ {
				row := n.Grad.Row(i)
				for j, g := range row {
					gv.Data[j] += g
				}
			}
		}
	}
	return n
}

// --- scalar ops --------------------------------------------------------------

// Scale returns s·a for a constant s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	av := a.Value
	v := t.alloc(av.Rows, av.Cols)
	for i := range v.Data {
		v.Data[i] = s * av.Data[i]
	}
	n := t.node(v)
	if t.grad {
		n.back = func() { a.grad().AddScaled(s, n.Grad) }
	}
	return n
}

// AddConst returns a + c for a constant c.
func (t *Tape) AddConst(a *Node, c float64) *Node {
	av := a.Value
	v := t.alloc(av.Rows, av.Cols)
	for i := range v.Data {
		v.Data[i] = av.Data[i] + c
	}
	n := t.node(v)
	if t.grad {
		n.back = func() { a.grad().AddInPlace(n.Grad) }
	}
	return n
}

// Neg returns −a.
func (t *Tape) Neg(a *Node) *Node { return t.Scale(a, -1) }

// --- matrix ops --------------------------------------------------------------

// MatMul returns a · b.
func (t *Tape) MatMul(a, b *Node) *Node {
	v := t.alloc(a.Value.Rows, b.Value.Cols)
	a.Value.MatMulInto(b.Value, v)
	n := t.node(v)
	if t.grad {
		n.back = func() {
			// dA += dC·Bᵀ ; dB += Aᵀ·dC
			a.grad().AddInPlace(n.Grad.MatMulT(b.Value))
			b.grad().AddInPlace(a.Value.TMatMul(n.Grad))
		}
	}
	return n
}

// MatMulT returns a · bᵀ.
func (t *Tape) MatMulT(a, b *Node) *Node {
	v := t.alloc(a.Value.Rows, b.Value.Rows)
	a.Value.MatMulTInto(b.Value, v)
	n := t.node(v)
	if t.grad {
		n.back = func() {
			// C = A·Bᵀ: dA += dC·B ; dB += dCᵀ·A
			a.grad().AddInPlace(n.Grad.MatMul(b.Value))
			b.grad().AddInPlace(n.Grad.TMatMul(a.Value))
		}
	}
	return n
}

// Transpose returns aᵀ.
func (t *Tape) Transpose(a *Node) *Node {
	av := a.Value
	v := t.alloc(av.Cols, av.Rows)
	for i := 0; i < av.Rows; i++ {
		for j := 0; j < av.Cols; j++ {
			v.Data[j*av.Rows+i] = av.Data[i*av.Cols+j]
		}
	}
	n := t.node(v)
	if t.grad {
		n.back = func() { a.grad().AddInPlace(n.Grad.T()) }
	}
	return n
}

// Reshape reinterprets a as r×c (row-major order preserved).
func (t *Tape) Reshape(a *Node, r, c int) *Node {
	if r*c != a.Value.Rows*a.Value.Cols {
		panic(fmt.Sprintf("ag: reshape %dx%d -> %dx%d", a.Value.Rows, a.Value.Cols, r, c))
	}
	v := t.alloc(r, c)
	copy(v.Data, a.Value.Data)
	n := t.node(v)
	if t.grad {
		n.back = func() {
			ga := a.grad()
			for i, g := range n.Grad.Data {
				ga.Data[i] += g
			}
		}
	}
	return n
}

// SliceCols returns columns [lo, hi) of a.
func (t *Tape) SliceCols(a *Node, lo, hi int) *Node {
	av := a.Value
	v := t.alloc(av.Rows, hi-lo)
	for i := 0; i < av.Rows; i++ {
		copy(v.Row(i), av.Row(i)[lo:hi])
	}
	n := t.node(v)
	if t.grad {
		n.back = func() {
			ga := a.grad()
			for i := 0; i < n.Grad.Rows; i++ {
				src := n.Grad.Row(i)
				dst := ga.Row(i)[lo:hi]
				for j, g := range src {
					dst[j] += g
				}
			}
		}
	}
	return n
}

// SliceRows returns rows [lo, hi) of a.
func (t *Tape) SliceRows(a *Node, lo, hi int) *Node {
	av := a.Value
	v := t.alloc(hi-lo, av.Cols)
	copy(v.Data, av.Data[lo*av.Cols:hi*av.Cols])
	n := t.node(v)
	if t.grad {
		n.back = func() {
			ga := a.grad()
			for i := 0; i < n.Grad.Rows; i++ {
				src := n.Grad.Row(i)
				dst := ga.Row(lo + i)
				for j, g := range src {
					dst[j] += g
				}
			}
		}
	}
	return n
}

// ConcatCols concatenates nodes horizontally.
func (t *Tape) ConcatCols(parts ...*Node) *Node {
	rows := parts[0].Value.Rows
	cols := 0
	for _, p := range parts {
		if p.Value.Rows != rows {
			panic("ag: concat cols row mismatch")
		}
		cols += p.Value.Cols
	}
	v := t.alloc(rows, cols)
	for i := 0; i < rows; i++ {
		dst := v.Row(i)
		at := 0
		for _, p := range parts {
			copy(dst[at:], p.Value.Row(i))
			at += p.Value.Cols
		}
	}
	n := t.node(v)
	if t.grad {
		// Copy the variadic slice so the closure does not capture it:
		// that keeps the call-site argument slice stack-allocated on the
		// (gradient-free) inference path.
		ps := append([]*Node(nil), parts...)
		n.back = func() {
			at := 0
			for _, p := range ps {
				g := p.grad()
				for i := 0; i < g.Rows; i++ {
					src := n.Grad.Row(i)[at : at+g.Cols]
					dst := g.Row(i)
					for j, gv := range src {
						dst[j] += gv
					}
				}
				at += p.Value.Cols
			}
		}
	}
	return n
}

// ConcatRows concatenates nodes vertically.
func (t *Tape) ConcatRows(parts ...*Node) *Node {
	cols := parts[0].Value.Cols
	rows := 0
	for _, p := range parts {
		if p.Value.Cols != cols {
			panic("ag: concat rows column mismatch")
		}
		rows += p.Value.Rows
	}
	v := t.alloc(rows, cols)
	at := 0
	for _, p := range parts {
		copy(v.Data[at:], p.Value.Data)
		at += len(p.Value.Data)
	}
	n := t.node(v)
	if t.grad {
		ps := append([]*Node(nil), parts...)
		n.back = func() {
			at := 0
			for _, p := range ps {
				g := p.grad()
				for i := 0; i < g.Rows; i++ {
					src := n.Grad.Row(at + i)
					dst := g.Row(i)
					for j, gv := range src {
						dst[j] += gv
					}
				}
				at += p.Value.Rows
			}
		}
	}
	return n
}

// --- elementwise nonlinearities ----------------------------------------------

func (t *Tape) unary(a *Node, f func(float64) float64, df func(x, y float64) float64) *Node {
	av := a.Value
	v := t.alloc(av.Rows, av.Cols)
	for i, x := range av.Data {
		v.Data[i] = f(x)
	}
	n := t.node(v)
	if t.grad {
		n.back = func() {
			ga := a.grad()
			for i, g := range n.Grad.Data {
				ga.Data[i] += g * df(a.Value.Data[i], v.Data[i])
			}
		}
	}
	return n
}

// Sigmoid returns 1/(1+e^{-a}) elementwise.
func (t *Tape) Sigmoid(a *Node) *Node {
	return t.unary(a,
		func(x float64) float64 { return 1 / (1 + math.Exp(-x)) },
		func(_, y float64) float64 { return y * (1 - y) })
}

// Tanh returns tanh(a) elementwise.
func (t *Tape) Tanh(a *Node) *Node {
	return t.unary(a, math.Tanh,
		func(_, y float64) float64 { return 1 - y*y })
}

// ReLU returns max(a, 0) elementwise.
func (t *Tape) ReLU(a *Node) *Node {
	return t.unary(a,
		func(x float64) float64 {
			if x > 0 {
				return x
			}
			return 0
		},
		func(x, _ float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		})
}

// GELU returns the Gaussian error linear unit (tanh approximation).
func (t *Tape) GELU(a *Node) *Node {
	const c = 0.7978845608028654 // sqrt(2/pi)
	f := func(x float64) float64 {
		return 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
	}
	df := func(x, _ float64) float64 {
		u := c * (x + 0.044715*x*x*x)
		th := math.Tanh(u)
		du := c * (1 + 3*0.044715*x*x)
		return 0.5*(1+th) + 0.5*x*(1-th*th)*du
	}
	return t.unary(a, f, df)
}

// Exp returns e^a elementwise.
func (t *Tape) Exp(a *Node) *Node {
	return t.unary(a, math.Exp, func(_, y float64) float64 { return y })
}

// Log returns ln(a) elementwise.
func (t *Tape) Log(a *Node) *Node {
	return t.unary(a, math.Log, func(x, _ float64) float64 { return 1 / x })
}

// Sqrt returns √a elementwise.
func (t *Tape) Sqrt(a *Node) *Node {
	return t.unary(a, math.Sqrt, func(_, y float64) float64 { return 0.5 / y })
}

// Square returns a² elementwise.
func (t *Tape) Square(a *Node) *Node {
	return t.unary(a, func(x float64) float64 { return x * x },
		func(x, _ float64) float64 { return 2 * x })
}

// Sin returns sin(a) elementwise.
func (t *Tape) Sin(a *Node) *Node {
	return t.unary(a, math.Sin, func(x, _ float64) float64 { return math.Cos(x) })
}

// Cos returns cos(a) elementwise.
func (t *Tape) Cos(a *Node) *Node {
	return t.unary(a, math.Cos, func(x, _ float64) float64 { return -math.Sin(x) })
}

// Abs returns |a| elementwise (subgradient 0 at 0).
func (t *Tape) Abs(a *Node) *Node {
	return t.unary(a, math.Abs, func(x, _ float64) float64 {
		switch {
		case x > 0:
			return 1
		case x < 0:
			return -1
		default:
			return 0
		}
	})
}

// Dropout zeroes each element with probability rate and scales survivors by
// 1/(1-rate) (inverted dropout). With train=false it is the identity.
func (t *Tape) Dropout(a *Node, rate float64, rng *rand.Rand, train bool) *Node {
	if !train || rate <= 0 {
		return a
	}
	keep := 1 - rate
	mask := tensor.New(a.Value.Rows, a.Value.Cols)
	v := t.alloc(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		if rng.Float64() < keep {
			mask.Data[i] = 1 / keep
			v.Data[i] = x / keep
		}
	}
	n := t.node(v)
	if t.grad {
		n.back = func() {
			ga := a.grad()
			for i, g := range n.Grad.Data {
				ga.Data[i] += g * mask.Data[i]
			}
		}
	}
	return n
}

// --- row-wise structured ops ---------------------------------------------------

// SoftmaxRows applies a numerically stable softmax to each row of a.
func (t *Tape) SoftmaxRows(a *Node) *Node {
	v := t.alloc(a.Value.Rows, a.Value.Cols)
	for i := 0; i < a.Value.Rows; i++ {
		src := a.Value.Row(i)
		dst := v.Row(i)
		mx := math.Inf(-1)
		for _, x := range src {
			if x > mx {
				mx = x
			}
		}
		var sum float64
		for j, x := range src {
			e := math.Exp(x - mx)
			dst[j] = e
			sum += e
		}
		for j := range dst {
			dst[j] /= sum
		}
	}
	n := t.node(v)
	if t.grad {
		n.back = func() {
			ga := a.grad()
			for i := 0; i < v.Rows; i++ {
				y := v.Row(i)
				gy := n.Grad.Row(i)
				var dot float64
				for j := range y {
					dot += y[j] * gy[j]
				}
				dst := ga.Row(i)
				for j := range y {
					dst[j] += y[j] * (gy[j] - dot)
				}
			}
		}
	}
	return n
}

// LayerNormRows normalizes each row of a to zero mean and unit variance,
// then applies the learnable 1×C gain and bias.
func (t *Tape) LayerNormRows(a, gain, bias *Node, eps float64) *Node {
	rows, cols := a.Value.Rows, a.Value.Cols
	if gain.Value.Cols != cols || bias.Value.Cols != cols {
		panic("ag: layernorm gain/bias width mismatch")
	}
	// xhat and invStd are only needed by the backward pass; inference
	// tapes skip them and fold the normalization into one loop.
	var xhat *tensor.Dense
	var invStd []float64
	if t.grad {
		xhat = tensor.New(rows, cols)
		invStd = make([]float64, rows)
	}
	v := t.alloc(rows, cols)
	for i := 0; i < rows; i++ {
		src := a.Value.Row(i)
		var mean float64
		for _, x := range src {
			mean += x
		}
		mean /= float64(cols)
		var va float64
		for _, x := range src {
			d := x - mean
			va += d * d
		}
		va /= float64(cols)
		is := 1 / math.Sqrt(va+eps)
		dst := v.Row(i)
		if t.grad {
			invStd[i] = is
			xh := xhat.Row(i)
			for j, x := range src {
				xh[j] = (x - mean) * is
				dst[j] = xh[j]*gain.Value.Data[j] + bias.Value.Data[j]
			}
		} else {
			for j, x := range src {
				xh := (x - mean) * is
				dst[j] = xh*gain.Value.Data[j] + bias.Value.Data[j]
			}
		}
	}
	n := t.node(v)
	if t.grad {
		n.back = func() {
			ga, gg, gb := a.grad(), gain.grad(), bias.grad()
			for i := 0; i < rows; i++ {
				gy := n.Grad.Row(i)
				xh := xhat.Row(i)
				// gain/bias grads
				for j := range gy {
					gg.Data[j] += gy[j] * xh[j]
					gb.Data[j] += gy[j]
				}
				// input grad: dx = invStd*(dxh - mean(dxh) - xh*mean(dxh*xh))
				var m1, m2 float64
				dxh := make([]float64, cols)
				for j := range gy {
					dxh[j] = gy[j] * gain.Value.Data[j]
					m1 += dxh[j]
					m2 += dxh[j] * xh[j]
				}
				m1 /= float64(cols)
				m2 /= float64(cols)
				dst := ga.Row(i)
				for j := range dxh {
					dst[j] += invStd[i] * (dxh[j] - m1 - xh[j]*m2)
				}
			}
		}
	}
	return n
}

// --- reductions and losses -----------------------------------------------------

// SumAll returns the 1×1 sum of all elements of a.
func (t *Tape) SumAll(a *Node) *Node {
	v := t.alloc(1, 1)
	v.Data[0] = a.Value.Sum()
	n := t.node(v)
	if t.grad {
		n.back = func() {
			g := n.Grad.Data[0]
			ga := a.grad()
			for i := range ga.Data {
				ga.Data[i] += g
			}
		}
	}
	return n
}

// MeanAll returns the 1×1 mean of all elements of a.
func (t *Tape) MeanAll(a *Node) *Node {
	return t.Scale(t.SumAll(a), 1/float64(len(a.Value.Data)))
}

// MSE returns the 1×1 mean squared error between a and b.
func (t *Tape) MSE(a, b *Node) *Node {
	d := t.Sub(a, b)
	return t.MeanAll(t.Square(d))
}

// RowSums returns an R×1 node whose entries are the row sums of a.
func (t *Tape) RowSums(a *Node) *Node {
	v := t.alloc(a.Value.Rows, 1)
	for i := 0; i < a.Value.Rows; i++ {
		var s float64
		for _, x := range a.Value.Row(i) {
			s += x
		}
		v.Data[i] = s
	}
	n := t.node(v)
	if t.grad {
		n.back = func() {
			ga := a.grad()
			for i := 0; i < a.Value.Rows; i++ {
				g := n.Grad.Data[i]
				dst := ga.Row(i)
				for j := range dst {
					dst[j] += g
				}
			}
		}
	}
	return n
}
