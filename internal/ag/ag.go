// Package ag implements reverse-mode automatic differentiation over dense
// matrices (a "tape" or Wengert list).
//
// A Tape records every operation applied to Nodes as a typed op record;
// Backward replays the records in reverse, accumulating gradients.
// Parameters (Param) live outside any tape so that the same weights can be
// used across many forward passes and across goroutines: each Backward call
// accumulates into Param.Grad under the parameter's lock, which makes
// data-parallel training safe. For deterministic parallel training, use
// BackwardGrads on each tape concurrently and then FlushParamGrads from a
// single goroutine in a fixed tape order — the flush applies the same
// additions in the same sequence as Backward would, without locking.
//
// Tapes come in two flavours, both arena-backed. NewTape records op
// metadata for differentiation: node values and gradients are drawn from
// positional tensor.Arenas, so after Reset a same-shape
// forward/backward step reuses every buffer — the training mode is
// allocation-free in steady state. NewInferenceTape skips gradient
// bookkeeping entirely — the streaming hot path. Both flavours compute
// bit-identical values.
//
// The operator set is the minimum needed for the models in this repository:
// Transformer encoder–decoders, GRUs, VAEs, graph convolutions and
// inception-style convolutions. Every operator's gradient is validated
// against central finite differences in the package tests.
package ag

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"aero/internal/tensor"
)

// Param is a trainable parameter: a value matrix plus an accumulated
// gradient. Params are shared between tapes; gradient accumulation is
// guarded by mu so concurrent Backward calls are safe.
type Param struct {
	Name  string
	Value *tensor.Dense
	Grad  *tensor.Dense

	mu sync.Mutex
}

// NewParam creates a named parameter wrapping value.
func NewParam(name string, value *tensor.Dense) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Rows, value.Cols)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// addGrad accumulates g into p.Grad under the parameter lock.
func (p *Param) addGrad(g *tensor.Dense) {
	p.mu.Lock()
	p.Grad.AddInPlace(g)
	p.mu.Unlock()
}

// opKind identifies the operation that produced a node. Backward replays
// these records in reverse instead of invoking per-node closures, which
// keeps the tape free of heap-allocated captures and lets node gradients
// live in a positional arena.
type opKind uint8

const (
	opLeaf opKind = iota // Const/Param: no backward step
	opAdd
	opSub
	opMul
	opDiv
	opAddRow
	opScale
	opAddConst
	opMatMul
	opMatMulT
	opTranspose
	opReshape
	opSliceCols
	opSliceRows
	opConcatCols
	opConcatRows
	opSigmoid
	opTanh
	opReLU
	opGELU
	opExp
	opLog
	opSqrt
	opSquare
	opSin
	opCos
	opAbs
	opDropout
	opSoftmaxRows
	opLayerNorm
	opSumAll
	opRowSums
)

// Node is one value in the computation graph. Value is set at construction;
// Grad is populated during Backward. The remaining fields are the op record
// replayed by Backward: the operands (a, b, c), saved forward intermediates
// (aux, aux2), a scalar operand s, and integer operands i0/i1 (slice bounds
// or an index range into the tape's parents list for concat ops).
type Node struct {
	Value *tensor.Dense
	Grad  *tensor.Dense

	a, b, c   *Node
	aux, aux2 *tensor.Dense
	param     *Param // non-nil when the node is a parameter leaf
	s         float64
	i0, i1    int
	op        opKind
}

// Rows returns the row count of the node's value.
func (n *Node) Rows() int { return n.Value.Rows }

// Cols returns the column count of the node's value.
func (n *Node) Cols() int { return n.Value.Cols }

// nodeChunk is the granularity of the tape's node arena. Chunked storage
// keeps node pointers stable across appends while amortising allocation.
const nodeChunk = 128

// Tape records operations for reverse-mode differentiation. A Tape is not
// safe for concurrent use; build one tape per goroutine.
type Tape struct {
	nodes   []*Node
	chunks  [][]Node
	nused   int
	parents []*Node // backing storage for concat-op operand lists

	arena *tensor.Arena // operation output values
	grads *tensor.Arena // node gradients (grad tapes only)
	grad  bool          // record op metadata for Backward
}

// NewTape returns an empty gradient-recording tape. Node values and
// gradients are drawn from positional arenas: after Reset, re-running a
// forward/backward pass of the same shape reuses every buffer, so
// steady-state training steps allocate nothing. Values and gradients
// produced before a Reset are invalidated by the next pass.
func NewTape() *Tape {
	return &Tape{arena: tensor.NewArena(), grads: tensor.NewArena(), grad: true}
}

// NewInferenceTape returns a forward-only tape whose operation outputs are
// drawn from an internal arena: after Reset, re-running a forward pass of
// the same shape reuses every buffer instead of allocating. Backward must
// not be called on it, and values produced before a Reset are invalidated
// by the next pass.
func NewInferenceTape() *Tape {
	return &Tape{arena: tensor.NewArena()}
}

// Gradient reports whether the tape records gradient metadata (false for
// inference tapes).
func (t *Tape) Gradient() bool { return t.grad }

// alloc returns the arena-backed, zeroed output buffer for one operation.
func (t *Tape) alloc(r, c int) *tensor.Dense {
	return t.arena.Get(r, c)
}

// Buffer hands out a zeroed r×c scratch tensor with the same lifetime as
// the tape's operation outputs. Use it to stage constant inputs (time
// embeddings, masks) without allocating on every pass.
func (t *Tape) Buffer(r, c int) *tensor.Dense { return t.alloc(r, c) }

// gradOf returns the node's gradient buffer, drawing it from the gradient
// arena on first touch. Backward visits nodes in a fixed reverse order, so
// the draw order — and therefore the positional reuse after Reset — is
// deterministic for a fixed graph shape.
func (t *Tape) gradOf(n *Node) *tensor.Dense {
	if n.Grad == nil {
		n.Grad = t.grads.Get(n.Value.Rows, n.Value.Cols)
	}
	return n.Grad
}

// newNode takes a node struct from the chunked arena.
func (t *Tape) newNode() *Node {
	if t.nused == len(t.chunks)*nodeChunk {
		t.chunks = append(t.chunks, make([]Node, nodeChunk))
	}
	n := &t.chunks[t.nused/nodeChunk][t.nused%nodeChunk]
	t.nused++
	*n = Node{}
	return n
}

// node registers a freshly computed value. Op metadata is attached by the
// caller only when t.grad is set.
func (t *Tape) node(v *tensor.Dense) *Node {
	n := t.newNode()
	n.Value = v
	if t.grad {
		t.nodes = append(t.nodes, n)
	}
	return n
}

// record attaches the op record to a node on gradient tapes. It returns
// the node for chaining.
func (t *Tape) record(n *Node, op opKind, a, b *Node) *Node {
	if t.grad {
		n.op = op
		n.a, n.b = a, b
	}
	return n
}

// Const introduces a leaf whose gradient is tracked but not propagated
// anywhere (inputs, stop-gradient values).
func (t *Tape) Const(v *tensor.Dense) *Node {
	return t.node(v)
}

// Param introduces a parameter leaf. After Backward, the leaf's gradient is
// accumulated into p.Grad.
func (t *Tape) Param(p *Param) *Node {
	n := t.node(p.Value)
	if t.grad {
		n.param = p
	}
	return n
}

// Backward seeds loss (which must be 1×1) with gradient 1, propagates
// gradients through the tape in reverse order, and accumulates parameter
// gradients into their Params under each parameter's lock. It panics on
// inference tapes.
func (t *Tape) Backward(loss *Node) {
	t.backward(loss, true)
}

// BackwardGrads computes node gradients exactly like Backward but does NOT
// touch any Param: pair it with FlushParamGrads to apply parameter-gradient
// accumulation from a single goroutine in a caller-chosen tape order, which
// makes data-parallel training deterministic (float accumulation order is
// fixed) while the backward passes themselves run concurrently.
func (t *Tape) BackwardGrads(loss *Node) {
	t.backward(loss, false)
}

func (t *Tape) backward(loss *Node, applyParams bool) {
	if !t.grad {
		panic("ag: Backward on an inference tape")
	}
	if loss.Value.Rows != 1 || loss.Value.Cols != 1 {
		panic(fmt.Sprintf("ag: Backward expects scalar loss, got %dx%d", loss.Value.Rows, loss.Value.Cols))
	}
	t.gradOf(loss).Data[0] = 1
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.Grad == nil {
			continue // not on any path to the loss
		}
		t.step(n)
		if applyParams && n.param != nil {
			n.param.addGrad(n.Grad)
		}
	}
}

// FlushParamGrads applies the parameter-gradient accumulation a Backward
// call would have performed, in the identical order (reverse tape order),
// without locking. Call it after BackwardGrads, from one goroutine at a
// time per parameter set.
func (t *Tape) FlushParamGrads() {
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.param != nil && n.Grad != nil {
			n.param.Grad.AddInPlace(n.Grad)
		}
	}
}

// step replays one op record, propagating n.Grad into its parents' Grads.
// Each case reproduces the float operation order of the original backward
// closures exactly, so gradients are bit-identical to the closure-based
// implementation this replaced.
func (t *Tape) step(n *Node) {
	G := n.Grad
	switch n.op {
	case opLeaf:
		// Leaves have no parents; parameter accumulation is handled by the
		// Backward/FlushParamGrads drivers.
	case opAdd:
		t.gradOf(n.a).AddInPlace(G)
		t.gradOf(n.b).AddInPlace(G)
	case opSub:
		t.gradOf(n.a).AddInPlace(G)
		t.gradOf(n.b).AddScaled(-1, G)
	case opMul:
		ga, gb := t.gradOf(n.a), t.gradOf(n.b)
		av, bv := n.a.Value, n.b.Value
		for i, g := range G.Data {
			ga.Data[i] += g * bv.Data[i]
			gb.Data[i] += g * av.Data[i]
		}
	case opDiv:
		ga, gb := t.gradOf(n.a), t.gradOf(n.b)
		av, bv := n.a.Value, n.b.Value
		for i, g := range G.Data {
			bi := bv.Data[i]
			ga.Data[i] += g / bi
			gb.Data[i] -= g * av.Data[i] / (bi * bi)
		}
	case opAddRow:
		t.gradOf(n.a).AddInPlace(G)
		gv := t.gradOf(n.b)
		for i := 0; i < G.Rows; i++ {
			row := G.Row(i)
			for j, g := range row {
				gv.Data[j] += g
			}
		}
	case opScale:
		t.gradOf(n.a).AddScaled(n.s, G)
	case opAddConst:
		t.gradOf(n.a).AddInPlace(G)
	case opMatMul:
		// dA += dC·Bᵀ ; dB += Aᵀ·dC
		G.MatMulTAddInto(n.b.Value, t.gradOf(n.a))
		n.a.Value.TMatMulAddInto(G, t.gradOf(n.b))
	case opMatMulT:
		// C = A·Bᵀ: dA += dC·B ; dB += dCᵀ·A
		G.MatMulAddInto(n.b.Value, t.gradOf(n.a))
		G.TMatMulAddInto(n.a.Value, t.gradOf(n.b))
	case opTranspose:
		t.gradOf(n.a).AddTransposed(G)
	case opReshape:
		ga := t.gradOf(n.a)
		for i, g := range G.Data {
			ga.Data[i] += g
		}
	case opSliceCols:
		ga := t.gradOf(n.a)
		lo := n.i0
		for i := 0; i < G.Rows; i++ {
			src := G.Row(i)
			dst := ga.Row(i)[lo : lo+G.Cols]
			for j, g := range src {
				dst[j] += g
			}
		}
	case opSliceRows:
		ga := t.gradOf(n.a)
		lo := n.i0
		for i := 0; i < G.Rows; i++ {
			src := G.Row(i)
			dst := ga.Row(lo + i)
			for j, g := range src {
				dst[j] += g
			}
		}
	case opConcatCols:
		at := 0
		for _, p := range t.parents[n.i0 : n.i0+n.i1] {
			g := t.gradOf(p)
			for i := 0; i < g.Rows; i++ {
				src := G.Row(i)[at : at+g.Cols]
				dst := g.Row(i)
				for j, gv := range src {
					dst[j] += gv
				}
			}
			at += p.Value.Cols
		}
	case opConcatRows:
		at := 0
		for _, p := range t.parents[n.i0 : n.i0+n.i1] {
			g := t.gradOf(p)
			for i := 0; i < g.Rows; i++ {
				src := G.Row(at + i)
				dst := g.Row(i)
				for j, gv := range src {
					dst[j] += gv
				}
			}
			at += p.Value.Rows
		}
	case opDropout:
		ga := t.gradOf(n.a)
		mask := n.aux
		for i, g := range G.Data {
			ga.Data[i] += g * mask.Data[i]
		}
	case opSoftmaxRows:
		ga := t.gradOf(n.a)
		v := n.Value
		for i := 0; i < v.Rows; i++ {
			y := v.Row(i)
			gy := G.Row(i)
			var dot float64
			for j := range y {
				dot += y[j] * gy[j]
			}
			dst := ga.Row(i)
			for j := range y {
				dst[j] += y[j] * (gy[j] - dot)
			}
		}
	case opLayerNorm:
		t.layerNormBackward(n)
	case opSumAll:
		g := G.Data[0]
		ga := t.gradOf(n.a)
		for i := range ga.Data {
			ga.Data[i] += g
		}
	case opRowSums:
		ga := t.gradOf(n.a)
		for i := 0; i < ga.Rows; i++ {
			g := G.Data[i]
			dst := ga.Row(i)
			for j := range dst {
				dst[j] += g
			}
		}
	default:
		t.unaryBackward(n)
	}
}

// unaryBackward handles the elementwise nonlinearities: ga[i] += g·f'(x, y)
// with the derivative expressed from the input x and/or output y.
func (t *Tape) unaryBackward(n *Node) {
	ga := t.gradOf(n.a)
	xs := n.a.Value.Data
	ys := n.Value.Data
	for i, g := range n.Grad.Data {
		var d float64
		switch n.op {
		case opSigmoid:
			y := ys[i]
			d = y * (1 - y)
		case opTanh:
			y := ys[i]
			d = 1 - y*y
		case opReLU:
			if xs[i] > 0 {
				d = 1
			}
		case opGELU:
			d = geluDeriv(xs[i])
		case opExp:
			d = ys[i]
		case opLog:
			d = 1 / xs[i]
		case opSqrt:
			d = 0.5 / ys[i]
		case opSquare:
			d = 2 * xs[i]
		case opSin:
			d = math.Cos(xs[i])
		case opCos:
			d = -math.Sin(xs[i])
		case opAbs:
			switch {
			case xs[i] > 0:
				d = 1
			case xs[i] < 0:
				d = -1
			}
		default:
			panic(fmt.Sprintf("ag: unknown op %d in backward", n.op))
		}
		ga.Data[i] += g * d
	}
}

// layerNormBackward replays LayerNormRows: n.a is the input, n.b the gain,
// n.c the bias; aux holds x̂ and aux2 the per-row inverse std.
func (t *Tape) layerNormBackward(n *Node) {
	ga, gg, gb := t.gradOf(n.a), t.gradOf(n.b), t.gradOf(n.c)
	xhat, invStd := n.aux, n.aux2
	gain := n.b.Value
	rows, cols := xhat.Rows, xhat.Cols
	// One scratch row reused across rows; drawn from the gradient arena so
	// steady-state backward passes stay allocation-free.
	dxh := t.grads.Get(1, cols).Data
	for i := 0; i < rows; i++ {
		gy := n.Grad.Row(i)
		xh := xhat.Row(i)
		// gain/bias grads
		for j := range gy {
			gg.Data[j] += gy[j] * xh[j]
			gb.Data[j] += gy[j]
		}
		// input grad: dx = invStd*(dxh - mean(dxh) - xh*mean(dxh*xh))
		var m1, m2 float64
		for j := range gy {
			dxh[j] = gy[j] * gain.Data[j]
			m1 += dxh[j]
			m2 += dxh[j] * xh[j]
		}
		m1 /= float64(cols)
		m2 /= float64(cols)
		dst := ga.Row(i)
		for j := range dxh {
			dst[j] += invStd.Data[i] * (dxh[j] - m1 - xh[j]*m2)
		}
	}
}

// Reset drops all recorded nodes so the tape can be reused, keeping the
// node chunks and every operation (and gradient) buffer for the next pass.
func (t *Tape) Reset() {
	t.nodes = t.nodes[:0]
	t.parents = t.parents[:0]
	t.nused = 0
	t.arena.Reset()
	if t.grads != nil {
		t.grads.Reset()
	}
}

// Len reports the number of operations recorded (useful in tests).
func (t *Tape) Len() int { return t.nused }

// --- elementwise binary ops -------------------------------------------------

// assertSameShape panics on elementwise operand shape mismatch, preserving
// the diagnostic the tensor-level kernels used to provide.
func assertSameShape(a, b *Node) {
	if a.Value.Rows != b.Value.Rows || a.Value.Cols != b.Value.Cols {
		panic(fmt.Sprintf("ag: shape mismatch %dx%d vs %dx%d",
			a.Value.Rows, a.Value.Cols, b.Value.Rows, b.Value.Cols))
	}
}

// Add returns a + b.
func (t *Tape) Add(a, b *Node) *Node {
	assertSameShape(a, b)
	av, bv := a.Value, b.Value
	v := t.alloc(av.Rows, av.Cols)
	for i := range v.Data {
		v.Data[i] = av.Data[i] + bv.Data[i]
	}
	return t.record(t.node(v), opAdd, a, b)
}

// Sub returns a − b.
func (t *Tape) Sub(a, b *Node) *Node {
	assertSameShape(a, b)
	av, bv := a.Value, b.Value
	v := t.alloc(av.Rows, av.Cols)
	for i := range v.Data {
		v.Data[i] = av.Data[i] - bv.Data[i]
	}
	return t.record(t.node(v), opSub, a, b)
}

// Mul returns the Hadamard product a ⊙ b.
func (t *Tape) Mul(a, b *Node) *Node {
	assertSameShape(a, b)
	av, bv := a.Value, b.Value
	v := t.alloc(av.Rows, av.Cols)
	for i := range v.Data {
		v.Data[i] = av.Data[i] * bv.Data[i]
	}
	return t.record(t.node(v), opMul, a, b)
}

// Div returns the elementwise quotient a / b.
func (t *Tape) Div(a, b *Node) *Node {
	assertSameShape(a, b)
	av, bv := a.Value, b.Value
	v := t.alloc(av.Rows, av.Cols)
	for i := range v.Data {
		v.Data[i] = av.Data[i] / bv.Data[i]
	}
	return t.record(t.node(v), opDiv, a, b)
}

// AddRow broadcasts the 1×C row vector v across the rows of a.
func (t *Tape) AddRow(a, v *Node) *Node {
	if v.Value.Rows != 1 || v.Value.Cols != a.Value.Cols {
		panic(fmt.Sprintf("ag: AddRow wants 1x%d, got %dx%d", a.Value.Cols, v.Value.Rows, v.Value.Cols))
	}
	out := t.alloc(a.Value.Rows, a.Value.Cols)
	for i := 0; i < a.Value.Rows; i++ {
		row := a.Value.Row(i)
		dst := out.Row(i)
		for j, x := range row {
			dst[j] = x + v.Value.Data[j]
		}
	}
	return t.record(t.node(out), opAddRow, a, v)
}

// --- scalar ops --------------------------------------------------------------

// Scale returns s·a for a constant s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	av := a.Value
	v := t.alloc(av.Rows, av.Cols)
	for i := range v.Data {
		v.Data[i] = s * av.Data[i]
	}
	n := t.record(t.node(v), opScale, a, nil)
	n.s = s
	return n
}

// AddConst returns a + c for a constant c.
func (t *Tape) AddConst(a *Node, c float64) *Node {
	av := a.Value
	v := t.alloc(av.Rows, av.Cols)
	for i := range v.Data {
		v.Data[i] = av.Data[i] + c
	}
	return t.record(t.node(v), opAddConst, a, nil)
}

// Neg returns −a.
func (t *Tape) Neg(a *Node) *Node { return t.Scale(a, -1) }

// --- matrix ops --------------------------------------------------------------

// MatMul returns a · b.
func (t *Tape) MatMul(a, b *Node) *Node {
	v := t.alloc(a.Value.Rows, b.Value.Cols)
	a.Value.MatMulInto(b.Value, v)
	return t.record(t.node(v), opMatMul, a, b)
}

// MatMulT returns a · bᵀ.
func (t *Tape) MatMulT(a, b *Node) *Node {
	v := t.alloc(a.Value.Rows, b.Value.Rows)
	a.Value.MatMulTInto(b.Value, v)
	return t.record(t.node(v), opMatMulT, a, b)
}

// Transpose returns aᵀ.
func (t *Tape) Transpose(a *Node) *Node {
	av := a.Value
	v := t.alloc(av.Cols, av.Rows)
	for i := 0; i < av.Rows; i++ {
		for j := 0; j < av.Cols; j++ {
			v.Data[j*av.Rows+i] = av.Data[i*av.Cols+j]
		}
	}
	return t.record(t.node(v), opTranspose, a, nil)
}

// Reshape reinterprets a as r×c (row-major order preserved).
func (t *Tape) Reshape(a *Node, r, c int) *Node {
	if r*c != a.Value.Rows*a.Value.Cols {
		panic(fmt.Sprintf("ag: reshape %dx%d -> %dx%d", a.Value.Rows, a.Value.Cols, r, c))
	}
	v := t.alloc(r, c)
	copy(v.Data, a.Value.Data)
	return t.record(t.node(v), opReshape, a, nil)
}

// SliceCols returns columns [lo, hi) of a.
func (t *Tape) SliceCols(a *Node, lo, hi int) *Node {
	av := a.Value
	v := t.alloc(av.Rows, hi-lo)
	for i := 0; i < av.Rows; i++ {
		copy(v.Row(i), av.Row(i)[lo:hi])
	}
	n := t.record(t.node(v), opSliceCols, a, nil)
	n.i0 = lo
	return n
}

// SliceRows returns rows [lo, hi) of a.
func (t *Tape) SliceRows(a *Node, lo, hi int) *Node {
	av := a.Value
	v := t.alloc(hi-lo, av.Cols)
	copy(v.Data, av.Data[lo*av.Cols:hi*av.Cols])
	n := t.record(t.node(v), opSliceRows, a, nil)
	n.i0 = lo
	return n
}

// recordParents stashes a variadic operand list in the tape-owned parents
// slice (reused across Resets) and stores its range on the node.
func (t *Tape) recordParents(n *Node, op opKind, parts []*Node) *Node {
	if t.grad {
		n.op = op
		n.i0 = len(t.parents)
		n.i1 = len(parts)
		t.parents = append(t.parents, parts...)
	}
	return n
}

// ConcatCols concatenates nodes horizontally.
func (t *Tape) ConcatCols(parts ...*Node) *Node {
	rows := parts[0].Value.Rows
	cols := 0
	for _, p := range parts {
		if p.Value.Rows != rows {
			panic("ag: concat cols row mismatch")
		}
		cols += p.Value.Cols
	}
	v := t.alloc(rows, cols)
	for i := 0; i < rows; i++ {
		dst := v.Row(i)
		at := 0
		for _, p := range parts {
			copy(dst[at:], p.Value.Row(i))
			at += p.Value.Cols
		}
	}
	return t.recordParents(t.node(v), opConcatCols, parts)
}

// ConcatRows concatenates nodes vertically.
func (t *Tape) ConcatRows(parts ...*Node) *Node {
	cols := parts[0].Value.Cols
	rows := 0
	for _, p := range parts {
		if p.Value.Cols != cols {
			panic("ag: concat rows column mismatch")
		}
		rows += p.Value.Rows
	}
	v := t.alloc(rows, cols)
	at := 0
	for _, p := range parts {
		copy(v.Data[at:], p.Value.Data)
		at += len(p.Value.Data)
	}
	return t.recordParents(t.node(v), opConcatRows, parts)
}

// --- elementwise nonlinearities ----------------------------------------------

func (t *Tape) unary(a *Node, op opKind, f func(float64) float64) *Node {
	av := a.Value
	v := t.alloc(av.Rows, av.Cols)
	for i, x := range av.Data {
		v.Data[i] = f(x)
	}
	return t.record(t.node(v), op, a, nil)
}

// Sigmoid returns 1/(1+e^{-a}) elementwise.
func (t *Tape) Sigmoid(a *Node) *Node {
	return t.unary(a, opSigmoid, func(x float64) float64 { return 1 / (1 + math.Exp(-x)) })
}

// Tanh returns tanh(a) elementwise.
func (t *Tape) Tanh(a *Node) *Node {
	return t.unary(a, opTanh, math.Tanh)
}

// ReLU returns max(a, 0) elementwise.
func (t *Tape) ReLU(a *Node) *Node {
	return t.unary(a, opReLU, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
}

const geluC = 0.7978845608028654 // sqrt(2/pi)

// geluDeriv is the derivative of the tanh-approximated GELU.
func geluDeriv(x float64) float64 {
	u := geluC * (x + 0.044715*x*x*x)
	th := math.Tanh(u)
	du := geluC * (1 + 3*0.044715*x*x)
	return 0.5*(1+th) + 0.5*x*(1-th*th)*du
}

// GELU returns the Gaussian error linear unit (tanh approximation).
func (t *Tape) GELU(a *Node) *Node {
	return t.unary(a, opGELU, func(x float64) float64 {
		return 0.5 * x * (1 + math.Tanh(geluC*(x+0.044715*x*x*x)))
	})
}

// Exp returns e^a elementwise.
func (t *Tape) Exp(a *Node) *Node {
	return t.unary(a, opExp, math.Exp)
}

// Log returns ln(a) elementwise.
func (t *Tape) Log(a *Node) *Node {
	return t.unary(a, opLog, math.Log)
}

// Sqrt returns √a elementwise.
func (t *Tape) Sqrt(a *Node) *Node {
	return t.unary(a, opSqrt, math.Sqrt)
}

// Square returns a² elementwise.
func (t *Tape) Square(a *Node) *Node {
	return t.unary(a, opSquare, func(x float64) float64 { return x * x })
}

// Sin returns sin(a) elementwise.
func (t *Tape) Sin(a *Node) *Node {
	return t.unary(a, opSin, math.Sin)
}

// Cos returns cos(a) elementwise.
func (t *Tape) Cos(a *Node) *Node {
	return t.unary(a, opCos, math.Cos)
}

// Abs returns |a| elementwise (subgradient 0 at 0).
func (t *Tape) Abs(a *Node) *Node {
	return t.unary(a, opAbs, math.Abs)
}

// Dropout zeroes each element with probability rate and scales survivors by
// 1/(1-rate) (inverted dropout). With train=false it is the identity.
func (t *Tape) Dropout(a *Node, rate float64, rng *rand.Rand, train bool) *Node {
	if !train || rate <= 0 {
		return a
	}
	keep := 1 - rate
	mask := t.alloc(a.Value.Rows, a.Value.Cols)
	v := t.alloc(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		if rng.Float64() < keep {
			mask.Data[i] = 1 / keep
			v.Data[i] = x / keep
		}
	}
	n := t.record(t.node(v), opDropout, a, nil)
	if t.grad {
		n.aux = mask
	}
	return n
}

// --- row-wise structured ops ---------------------------------------------------

// SoftmaxRows applies a numerically stable softmax to each row of a.
func (t *Tape) SoftmaxRows(a *Node) *Node {
	v := t.alloc(a.Value.Rows, a.Value.Cols)
	for i := 0; i < a.Value.Rows; i++ {
		src := a.Value.Row(i)
		dst := v.Row(i)
		mx := math.Inf(-1)
		for _, x := range src {
			if x > mx {
				mx = x
			}
		}
		var sum float64
		for j, x := range src {
			e := math.Exp(x - mx)
			dst[j] = e
			sum += e
		}
		for j := range dst {
			dst[j] /= sum
		}
	}
	return t.record(t.node(v), opSoftmaxRows, a, nil)
}

// LayerNormRows normalizes each row of a to zero mean and unit variance,
// then applies the learnable 1×C gain and bias.
func (t *Tape) LayerNormRows(a, gain, bias *Node, eps float64) *Node {
	rows, cols := a.Value.Rows, a.Value.Cols
	if gain.Value.Cols != cols || bias.Value.Cols != cols {
		panic("ag: layernorm gain/bias width mismatch")
	}
	// xhat and invStd are only needed by the backward pass; inference
	// tapes skip them and fold the normalization into one loop.
	var xhat, invStd *tensor.Dense
	if t.grad {
		xhat = t.alloc(rows, cols)
		invStd = t.alloc(rows, 1)
	}
	v := t.alloc(rows, cols)
	for i := 0; i < rows; i++ {
		src := a.Value.Row(i)
		var mean float64
		for _, x := range src {
			mean += x
		}
		mean /= float64(cols)
		var va float64
		for _, x := range src {
			d := x - mean
			va += d * d
		}
		va /= float64(cols)
		is := 1 / math.Sqrt(va+eps)
		dst := v.Row(i)
		if t.grad {
			invStd.Data[i] = is
			xh := xhat.Row(i)
			for j, x := range src {
				xh[j] = (x - mean) * is
				dst[j] = xh[j]*gain.Value.Data[j] + bias.Value.Data[j]
			}
		} else {
			for j, x := range src {
				xh := (x - mean) * is
				dst[j] = xh*gain.Value.Data[j] + bias.Value.Data[j]
			}
		}
	}
	n := t.node(v)
	if t.grad {
		n.op = opLayerNorm
		n.a, n.b, n.c = a, gain, bias
		n.aux, n.aux2 = xhat, invStd
	}
	return n
}

// --- reductions and losses -----------------------------------------------------

// SumAll returns the 1×1 sum of all elements of a.
func (t *Tape) SumAll(a *Node) *Node {
	v := t.alloc(1, 1)
	v.Data[0] = a.Value.Sum()
	return t.record(t.node(v), opSumAll, a, nil)
}

// MeanAll returns the 1×1 mean of all elements of a.
func (t *Tape) MeanAll(a *Node) *Node {
	return t.Scale(t.SumAll(a), 1/float64(len(a.Value.Data)))
}

// MSE returns the 1×1 mean squared error between a and b.
func (t *Tape) MSE(a, b *Node) *Node {
	d := t.Sub(a, b)
	return t.MeanAll(t.Square(d))
}

// RowSums returns an R×1 node whose entries are the row sums of a.
func (t *Tape) RowSums(a *Node) *Node {
	v := t.alloc(a.Value.Rows, 1)
	for i := 0; i < a.Value.Rows; i++ {
		var s float64
		for _, x := range a.Value.Row(i) {
			s += x
		}
		v.Data[i] = s
	}
	return t.record(t.node(v), opRowSums, a, nil)
}
