package ag

import (
	"math/rand"
	"testing"

	"aero/internal/tensor"
)

// buildForward exercises every operator family the streaming hot path
// relies on: matmuls, broadcasts, slices, concatenation, softmax,
// layernorm and pointwise nonlinearities.
func buildForward(t *Tape, x *tensor.Dense, w, gain, bias *Param) *tensor.Dense {
	h := t.MatMul(t.Const(x), t.Param(w))
	h = t.AddRow(h, t.Param(bias))
	h = t.LayerNormRows(h, t.Param(gain), t.Param(bias), 1e-5)
	a := t.SliceCols(h, 0, 2)
	b := t.SliceCols(h, 2, 4)
	att := t.SoftmaxRows(t.Scale(t.MatMulT(a, b), 0.5))
	mix := t.MatMul(att, b)
	cat := t.ConcatCols(a, mix)
	return t.Sigmoid(t.Add(cat, t.Tanh(h))).Value
}

func inferenceFixture() (*tensor.Dense, *Param, *Param, *Param) {
	rng := rand.New(rand.NewSource(11))
	x := tensor.Randn(5, 4, 1, rng)
	w := NewParam("w", tensor.Randn(4, 4, 0.5, rng))
	g := tensor.New(1, 4)
	g.Fill(1)
	gain := NewParam("gain", g)
	bias := NewParam("bias", tensor.Randn(1, 4, 0.1, rng))
	return x, w, gain, bias
}

// TestInferenceTapeMatchesGradTape asserts the arena-backed forward pass
// is bit-identical to the gradient-recording one.
func TestInferenceTapeMatchesGradTape(t *testing.T) {
	x, w, gain, bias := inferenceFixture()
	want := buildForward(NewTape(), x, w, gain, bias)
	inf := NewInferenceTape()
	for pass := 0; pass < 3; pass++ {
		inf.Reset()
		got := buildForward(inf, x, w, gain, bias)
		if !tensor.Equal(want, got, 0) {
			t.Fatalf("pass %d: inference tape diverges from grad tape", pass)
		}
	}
}

// TestInferenceTapeSteadyStateAllocs asserts that re-running a fixed-shape
// forward pass after Reset allocates nothing.
func TestInferenceTapeSteadyStateAllocs(t *testing.T) {
	x, w, gain, bias := inferenceFixture()
	inf := NewInferenceTape()
	buildForward(inf, x, w, gain, bias) // warm the arena and node chunks
	allocs := testing.AllocsPerRun(32, func() {
		inf.Reset()
		buildForward(inf, x, w, gain, bias)
	})
	if allocs > 0 {
		t.Fatalf("steady-state inference pass allocates %.1f objects, want 0", allocs)
	}
}

// TestInferenceTapeBackwardPanics pins the contract that inference tapes
// cannot be differentiated.
func TestInferenceTapeBackwardPanics(t *testing.T) {
	inf := NewInferenceTape()
	loss := inf.SumAll(inf.Const(tensor.New(2, 2)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from Backward on inference tape")
		}
	}()
	inf.Backward(loss)
}

// TestArenaReusesBuffers checks positional reuse and regrowth semantics.
func TestArenaReusesBuffers(t *testing.T) {
	a := tensor.NewArena()
	first := a.Get(3, 4)
	first.Fill(7)
	a.Reset()
	second := a.Get(3, 4)
	if &second.Data[0] != &first.Data[0] {
		t.Fatal("arena did not reuse the buffer at the same position")
	}
	for _, v := range second.Data {
		if v != 0 {
			t.Fatal("arena buffer not zeroed on reuse")
		}
	}
	a.Reset()
	bigger := a.Get(6, 6) // forces regrowth at position 0
	if len(bigger.Data) != 36 {
		t.Fatalf("regrown buffer has %d elements, want 36", len(bigger.Data))
	}
	a.Reset()
	smaller := a.Get(2, 2) // shrinks in place, reusing the regrown buffer
	if &smaller.Data[0] != &bigger.Data[0] {
		t.Fatal("arena did not reuse the regrown buffer for a smaller shape")
	}
	if a.Len() != 1 {
		t.Fatalf("arena owns %d buffers, want 1", a.Len())
	}
}
