package ag

import (
	"math"
	"math/rand"
	"testing"

	"aero/internal/tensor"
)

// numericGrad computes the central finite-difference gradient of
// f w.r.t. the parameter p, where f rebuilds the graph from scratch.
func numericGrad(p *Param, f func() float64) *tensor.Dense {
	const h = 1e-5
	g := tensor.New(p.Value.Rows, p.Value.Cols)
	for i := range p.Value.Data {
		orig := p.Value.Data[i]
		p.Value.Data[i] = orig + h
		fp := f()
		p.Value.Data[i] = orig - h
		fm := f()
		p.Value.Data[i] = orig
		g.Data[i] = (fp - fm) / (2 * h)
	}
	return g
}

// checkGrad builds the graph via build (returning a scalar loss node),
// runs Backward, and compares every parameter's accumulated gradient with
// finite differences.
func checkGrad(t *testing.T, params []*Param, build func(tp *Tape) *Node) {
	t.Helper()
	tape := NewTape()
	loss := build(tape)
	tape.Backward(loss)

	eval := func() float64 { return build(NewTape()).Value.Data[0] }
	for _, p := range params {
		want := numericGrad(p, eval)
		for i := range want.Data {
			got := p.Grad.Data[i]
			w := want.Data[i]
			scale := math.Max(1, math.Max(math.Abs(got), math.Abs(w)))
			if math.Abs(got-w)/scale > 1e-4 {
				t.Fatalf("param %s grad[%d]: got %.8f want %.8f", p.Name, i, got, w)
			}
		}
		p.ZeroGrad()
	}
}

func randParam(name string, r, c int, seed int64) *Param {
	rng := rand.New(rand.NewSource(seed))
	return NewParam(name, tensor.Randn(r, c, 0.5, rng))
}

func TestGradAddSubMul(t *testing.T) {
	a := randParam("a", 3, 4, 1)
	b := randParam("b", 3, 4, 2)
	checkGrad(t, []*Param{a, b}, func(tp *Tape) *Node {
		x, y := tp.Param(a), tp.Param(b)
		return tp.MeanAll(tp.Mul(tp.Add(x, y), tp.Sub(x, y)))
	})
}

func TestGradDiv(t *testing.T) {
	a := randParam("a", 2, 3, 3)
	b := randParam("b", 2, 3, 4)
	for i := range b.Value.Data {
		b.Value.Data[i] = 1 + math.Abs(b.Value.Data[i]) // keep away from 0
	}
	checkGrad(t, []*Param{a, b}, func(tp *Tape) *Node {
		return tp.MeanAll(tp.Div(tp.Param(a), tp.Param(b)))
	})
}

func TestGradMatMul(t *testing.T) {
	a := randParam("a", 3, 5, 5)
	b := randParam("b", 5, 2, 6)
	checkGrad(t, []*Param{a, b}, func(tp *Tape) *Node {
		return tp.MeanAll(tp.MatMul(tp.Param(a), tp.Param(b)))
	})
}

func TestGradMatMulT(t *testing.T) {
	a := randParam("a", 3, 5, 7)
	b := randParam("b", 4, 5, 8)
	checkGrad(t, []*Param{a, b}, func(tp *Tape) *Node {
		return tp.MeanAll(tp.Square(tp.MatMulT(tp.Param(a), tp.Param(b))))
	})
}

func TestGradTransposeReshape(t *testing.T) {
	a := randParam("a", 3, 4, 9)
	checkGrad(t, []*Param{a}, func(tp *Tape) *Node {
		x := tp.Transpose(tp.Param(a))
		x = tp.Reshape(x, 2, 6)
		return tp.MeanAll(tp.Square(x))
	})
}

func TestGradAddRow(t *testing.T) {
	a := randParam("a", 4, 3, 10)
	v := randParam("v", 1, 3, 11)
	checkGrad(t, []*Param{a, v}, func(tp *Tape) *Node {
		return tp.MeanAll(tp.Square(tp.AddRow(tp.Param(a), tp.Param(v))))
	})
}

func TestGradActivations(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    func(tp *Tape, x *Node) *Node
	}{
		{"sigmoid", func(tp *Tape, x *Node) *Node { return tp.Sigmoid(x) }},
		{"tanh", func(tp *Tape, x *Node) *Node { return tp.Tanh(x) }},
		{"relu", func(tp *Tape, x *Node) *Node { return tp.ReLU(x) }},
		{"gelu", func(tp *Tape, x *Node) *Node { return tp.GELU(x) }},
		{"exp", func(tp *Tape, x *Node) *Node { return tp.Exp(x) }},
		{"square", func(tp *Tape, x *Node) *Node { return tp.Square(x) }},
		{"abs", func(tp *Tape, x *Node) *Node { return tp.Abs(x) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := randParam("a", 3, 3, 20)
			// Nudge away from ReLU/Abs kinks.
			for i := range a.Value.Data {
				if math.Abs(a.Value.Data[i]) < 0.05 {
					a.Value.Data[i] = 0.1
				}
			}
			checkGrad(t, []*Param{a}, func(tp *Tape) *Node {
				return tp.MeanAll(tc.f(tp, tp.Param(a)))
			})
		})
	}
}

func TestGradLogSqrt(t *testing.T) {
	a := randParam("a", 2, 3, 21)
	for i := range a.Value.Data {
		a.Value.Data[i] = 0.5 + math.Abs(a.Value.Data[i])
	}
	checkGrad(t, []*Param{a}, func(tp *Tape) *Node {
		return tp.MeanAll(tp.Add(tp.Log(tp.Param(a)), tp.Sqrt(tp.Param(a))))
	})
}

func TestGradSoftmax(t *testing.T) {
	a := randParam("a", 3, 5, 22)
	w := randParam("w", 3, 5, 23)
	checkGrad(t, []*Param{a, w}, func(tp *Tape) *Node {
		// weighted sum so gradient is non-uniform across the row
		return tp.MeanAll(tp.Mul(tp.SoftmaxRows(tp.Param(a)), tp.Param(w)))
	})
}

func TestGradLayerNorm(t *testing.T) {
	a := randParam("a", 4, 6, 24)
	g := randParam("g", 1, 6, 25)
	b := randParam("b", 1, 6, 26)
	checkGrad(t, []*Param{a, g, b}, func(tp *Tape) *Node {
		out := tp.LayerNormRows(tp.Param(a), tp.Param(g), tp.Param(b), 1e-5)
		return tp.MeanAll(tp.Square(out))
	})
}

func TestGradSliceConcat(t *testing.T) {
	a := randParam("a", 3, 6, 27)
	checkGrad(t, []*Param{a}, func(tp *Tape) *Node {
		x := tp.Param(a)
		l := tp.SliceCols(x, 0, 2)
		r := tp.SliceCols(x, 2, 6)
		cat := tp.ConcatCols(r, l) // swap halves
		top := tp.SliceRows(cat, 0, 1)
		rest := tp.SliceRows(cat, 1, 3)
		return tp.MeanAll(tp.Square(tp.ConcatRows(rest, top)))
	})
}

func TestGradRowSums(t *testing.T) {
	a := randParam("a", 4, 3, 28)
	checkGrad(t, []*Param{a}, func(tp *Tape) *Node {
		return tp.MeanAll(tp.Square(tp.RowSums(tp.Param(a))))
	})
}

func TestGradMSE(t *testing.T) {
	a := randParam("a", 3, 4, 29)
	target := rand.New(rand.NewSource(30))
	tgt := tensor.Randn(3, 4, 1, target)
	checkGrad(t, []*Param{a}, func(tp *Tape) *Node {
		return tp.MSE(tp.Param(a), tp.Const(tgt))
	})
}

func TestGradCompositeAttention(t *testing.T) {
	// A miniature single-head attention block: checks that long chains of
	// ops propagate correctly end-to-end.
	wq := randParam("wq", 4, 4, 31)
	wk := randParam("wk", 4, 4, 32)
	wv := randParam("wv", 4, 4, 33)
	x := tensor.Randn(5, 4, 0.7, rand.New(rand.NewSource(34)))
	checkGrad(t, []*Param{wq, wk, wv}, func(tp *Tape) *Node {
		xn := tp.Const(x)
		q := tp.MatMul(xn, tp.Param(wq))
		k := tp.MatMul(xn, tp.Param(wk))
		v := tp.MatMul(xn, tp.Param(wv))
		att := tp.SoftmaxRows(tp.Scale(tp.MatMulT(q, k), 0.5))
		return tp.MSE(tp.MatMul(att, v), xn)
	})
}

func TestBackwardScalarOnly(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-scalar loss")
		}
	}()
	tp := NewTape()
	a := tp.Const(tensor.New(2, 2))
	tp.Backward(a)
}

func TestConstGetsNoParamGrad(t *testing.T) {
	tp := NewTape()
	c := tp.Const(tensor.FromSlice(1, 2, []float64{1, 2}))
	loss := tp.MeanAll(tp.Square(c))
	tp.Backward(loss)
	// Const nodes can carry grads but there is nothing to flush them into;
	// just assert the loss value is right and no panic occurred.
	if math.Abs(loss.Value.Data[0]-2.5) > 1e-12 {
		t.Fatalf("loss = %v, want 2.5", loss.Value.Data[0])
	}
}

func TestGradAccumulatesAcrossBackwardCalls(t *testing.T) {
	p := randParam("p", 2, 2, 40)
	for i := 0; i < 2; i++ {
		tp := NewTape()
		loss := tp.MeanAll(tp.Square(tp.Param(p)))
		tp.Backward(loss)
	}
	single := NewTape()
	q := NewParam("q", p.Value.Clone())
	loss := single.MeanAll(single.Square(single.Param(q)))
	single.Backward(loss)
	for i := range p.Grad.Data {
		if math.Abs(p.Grad.Data[i]-2*q.Grad.Data[i]) > 1e-12 {
			t.Fatal("gradients should accumulate additively across Backward calls")
		}
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	tp := NewTape()
	x := tp.Const(tensor.FromSlice(1, 4, []float64{1, 2, 3, 4}))
	y := tp.Dropout(x, 0.5, rand.New(rand.NewSource(1)), false)
	if y != x {
		t.Fatal("eval-mode dropout must be identity")
	}
}

func TestDropoutTrainPreservesExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tp := NewTape()
	big := tensor.New(1, 20000)
	big.Fill(1)
	x := tp.Const(big)
	y := tp.Dropout(x, 0.3, rng, true)
	if m := y.Value.Mean(); math.Abs(m-1) > 0.05 {
		t.Fatalf("inverted dropout mean = %v, want ~1", m)
	}
}

func TestTapeReset(t *testing.T) {
	tp := NewTape()
	tp.Const(tensor.New(1, 1))
	if tp.Len() != 1 {
		t.Fatal("node not recorded")
	}
	tp.Reset()
	if tp.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestGradSinCos(t *testing.T) {
	a := randParam("a", 2, 3, 50)
	checkGrad(t, []*Param{a}, func(tp *Tape) *Node {
		return tp.MeanAll(tp.Add(tp.Sin(tp.Param(a)), tp.Cos(tp.Param(a))))
	})
}

func TestGradTimeEmbeddingComposite(t *testing.T) {
	// The time-embedding pattern: theta = const + dt·alpha, out = sin+cos.
	alpha := randParam("alpha", 1, 4, 51)
	dt := tensor.FromSlice(3, 1, []float64{1, 0.5, 2})
	phase := tensor.Randn(3, 4, 1, rand.New(rand.NewSource(52)))
	checkGrad(t, []*Param{alpha}, func(tp *Tape) *Node {
		theta := tp.Add(tp.Const(phase), tp.MatMul(tp.Const(dt), tp.Param(alpha)))
		return tp.MeanAll(tp.Square(tp.Add(tp.Sin(theta), tp.Cos(theta))))
	})
}
