package fourier

import (
	"math"
	"testing"
)

// BenchmarkPeriodogram measures the per-series cost paid by the SR and
// FluxEV baselines, which call Periodogram once per light curve; together
// with BenchmarkFFT1024 and BenchmarkFFTBluestein1000 it pins the benefit
// of the per-length twiddle and Bluestein plan caches.
func BenchmarkPeriodogram(b *testing.B) {
	x := make([]float64, 700)
	for i := range x {
		x[i] = math.Sin(0.1*float64(i)) + 0.25*math.Sin(0.37*float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Periodogram(x)
	}
}
