// Package fourier implements the discrete Fourier transform for arbitrary
// lengths: an iterative radix-2 Cooley–Tukey kernel for powers of two and
// Bluestein's chirp-z algorithm for everything else. It backs the spectral
// residual baseline, TimesNet's period detection, and periodogram utilities.
package fourier

import "math"

// FFT returns the discrete Fourier transform of x. The input is not
// modified. Any length is supported (Bluestein for non powers of two).
func FFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	copy(out, x)
	if n <= 1 {
		return out
	}
	if isPow2(n) {
		radix2(out, false)
		return out
	}
	return bluestein(out, false)
}

// IFFT returns the inverse discrete Fourier transform of x (normalized by
// 1/n so that IFFT(FFT(x)) == x).
func IFFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	copy(out, x)
	if n <= 1 {
		return out
	}
	if isPow2(n) {
		radix2(out, true)
	} else {
		out = bluestein(out, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// FFTReal transforms a real-valued signal.
func FFTReal(x []float64) []complex128 {
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	return FFT(cx)
}

// Amplitudes returns |X_k| for every bin of the spectrum.
func Amplitudes(spec []complex128) []float64 {
	out := make([]float64, len(spec))
	for i, c := range spec {
		out[i] = math.Hypot(real(c), imag(c))
	}
	return out
}

// Periodogram returns the single-sided power spectrum of a real signal:
// bins 1..n/2 with power |X_k|²/n, along with the corresponding periods
// (n/k in samples). Bin 0 (the mean) is excluded.
func Periodogram(x []float64) (power []float64, period []float64) {
	n := len(x)
	if n < 2 {
		return nil, nil
	}
	spec := FFTReal(x)
	half := n / 2
	power = make([]float64, half)
	period = make([]float64, half)
	for k := 1; k <= half; k++ {
		c := spec[k]
		power[k-1] = (real(c)*real(c) + imag(c)*imag(c)) / float64(n)
		period[k-1] = float64(n) / float64(k)
	}
	return power, period
}

func isPow2(n int) bool { return n&(n-1) == 0 }

// radix2 performs an in-place iterative Cooley–Tukey FFT. inverse flips the
// twiddle sign (normalization is the caller's responsibility).
func radix2(a []complex128, inverse bool) {
	n := len(a)
	// bit-reversal permutation
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := complex(math.Cos(ang), math.Sin(ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length / 2
			for j := 0; j < half; j++ {
				u := a[i+j]
				v := a[i+j+half] * w
				a[i+j] = u + v
				a[i+j+half] = u - v
				w *= wl
			}
		}
	}
}

// bluestein computes the DFT of arbitrary length via the chirp-z transform,
// expressing it as a convolution evaluated with a padded radix-2 FFT.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// chirp[k] = exp(sign * i*pi*k^2/n); use k^2 mod 2n to avoid overflow.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		ang := sign * math.Pi * float64(kk) / float64(n)
		chirp[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		bc := complex(real(chirp[k]), -imag(chirp[k])) // conj
		b[k] = bc
		if k > 0 {
			b[m-k] = bc
		}
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	invM := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * invM * chirp[k]
	}
	return out
}
