// Package fourier implements the discrete Fourier transform for arbitrary
// lengths: an iterative radix-2 Cooley–Tukey kernel for powers of two and
// Bluestein's chirp-z algorithm for everything else. It backs the spectral
// residual baseline, TimesNet's period detection, and periodogram utilities.
//
// Twiddle factors and Bluestein plans (chirp sequence plus the
// pre-transformed chirp filter) are computed once per length and cached in
// concurrency-safe maps: Periodogram is called per-series by the SR and
// FluxEV baselines, and recomputing the trigonometry dominated small
// transforms.
package fourier

import (
	"math"
	"sync"
)

// twiddles holds the per-length radix-2 twiddle tables: fwd[j] = e^{-2πij/n}
// and inv[j] = e^{+2πij/n} for j < n/2. A stage of length L indexes the
// table with stride n/L. Tables are immutable once built.
type twiddles struct {
	fwd, inv []complex128
}

var twiddleCache sync.Map // int -> *twiddles

func twiddlesFor(n int) *twiddles {
	if cached, ok := twiddleCache.Load(n); ok {
		return cached.(*twiddles)
	}
	tw := &twiddles{fwd: make([]complex128, n/2), inv: make([]complex128, n/2)}
	for j := 0; j < n/2; j++ {
		ang := 2 * math.Pi * float64(j) / float64(n)
		s, c := math.Sincos(ang)
		tw.fwd[j] = complex(c, -s)
		tw.inv[j] = complex(c, s)
	}
	cached, _ := twiddleCache.LoadOrStore(n, tw)
	return cached.(*twiddles)
}

// bluesteinPlan holds the length-dependent, sign-dependent constants of the
// chirp-z transform: the chirp sequence and the radix-2 FFT of the chirp
// filter, both reused verbatim by every transform of the same length.
type bluesteinPlan struct {
	m     int          // padded power-of-two convolution length
	chirp []complex128 // chirp[k] = exp(sign·iπk²/n)
	bfft  []complex128 // FFT of the conjugate-chirp filter, length m
}

type bluesteinKey struct {
	n       int
	inverse bool
}

var bluesteinCache sync.Map // bluesteinKey -> *bluesteinPlan

func bluesteinPlanFor(n int, inverse bool) *bluesteinPlan {
	key := bluesteinKey{n, inverse}
	if cached, ok := bluesteinCache.Load(key); ok {
		return cached.(*bluesteinPlan)
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// chirp[k] = exp(sign * i*pi*k^2/n); use k^2 mod 2n to avoid overflow.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		ang := sign * math.Pi * float64(kk) / float64(n)
		chirp[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		bc := complex(real(chirp[k]), -imag(chirp[k])) // conj
		b[k] = bc
		if k > 0 {
			b[m-k] = bc
		}
	}
	radix2(b, false)
	plan := &bluesteinPlan{m: m, chirp: chirp, bfft: b}
	cached, _ := bluesteinCache.LoadOrStore(key, plan)
	return cached.(*bluesteinPlan)
}

// FFT returns the discrete Fourier transform of x. The input is not
// modified. Any length is supported (Bluestein for non powers of two).
func FFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	copy(out, x)
	if n <= 1 {
		return out
	}
	if isPow2(n) {
		radix2(out, false)
		return out
	}
	return bluestein(out, false)
}

// IFFT returns the inverse discrete Fourier transform of x (normalized by
// 1/n so that IFFT(FFT(x)) == x).
func IFFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	copy(out, x)
	if n <= 1 {
		return out
	}
	if isPow2(n) {
		radix2(out, true)
	} else {
		out = bluestein(out, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// FFTInPlace transforms x in place. The length must be a power of two
// (panics otherwise); once the per-length twiddle table is cached, the
// call performs no allocations, which is what the streaming spectral
// residual adapter's zero-alloc push budget relies on.
func FFTInPlace(x []complex128) {
	if len(x) <= 1 {
		return
	}
	if !isPow2(len(x)) {
		panic("fourier: FFTInPlace requires a power-of-two length")
	}
	radix2(x, false)
}

// IFFTInPlace inverse-transforms x in place, including the 1/n
// normalization. Power-of-two lengths only (panics otherwise);
// allocation-free once the twiddle table is cached.
func IFFTInPlace(x []complex128) {
	n := len(x)
	if n <= 1 {
		return
	}
	if !isPow2(n) {
		panic("fourier: IFFTInPlace requires a power-of-two length")
	}
	radix2(x, true)
	inv := complex(1/float64(n), 0)
	for i := range x {
		x[i] *= inv
	}
}

// FFTReal transforms a real-valued signal.
func FFTReal(x []float64) []complex128 {
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	return FFT(cx)
}

// Amplitudes returns |X_k| for every bin of the spectrum.
func Amplitudes(spec []complex128) []float64 {
	out := make([]float64, len(spec))
	for i, c := range spec {
		out[i] = math.Hypot(real(c), imag(c))
	}
	return out
}

// Periodogram returns the single-sided power spectrum of a real signal:
// bins 1..n/2 with power |X_k|²/n, along with the corresponding periods
// (n/k in samples). Bin 0 (the mean) is excluded.
func Periodogram(x []float64) (power []float64, period []float64) {
	n := len(x)
	if n < 2 {
		return nil, nil
	}
	spec := FFTReal(x)
	half := n / 2
	power = make([]float64, half)
	period = make([]float64, half)
	for k := 1; k <= half; k++ {
		c := spec[k]
		power[k-1] = (real(c)*real(c) + imag(c)*imag(c)) / float64(n)
		period[k-1] = float64(n) / float64(k)
	}
	return power, period
}

func isPow2(n int) bool { return n&(n-1) == 0 }

// radix2 performs an in-place iterative Cooley–Tukey FFT using the cached
// per-length twiddle table. inverse selects the conjugate table
// (normalization is the caller's responsibility). The direct table lookup
// is both faster and more accurate than the sequential w *= wl recurrence
// it replaced.
func radix2(a []complex128, inverse bool) {
	n := len(a)
	// bit-reversal permutation
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	tw := twiddlesFor(n).fwd
	if inverse {
		tw = twiddlesFor(n).inv
	}
	for length := 2; length <= n; length <<= 1 {
		half := length / 2
		stride := n / length
		for i := 0; i < n; i += length {
			for j := 0; j < half; j++ {
				u := a[i+j]
				v := a[i+j+half] * tw[j*stride]
				a[i+j] = u + v
				a[i+j+half] = u - v
			}
		}
	}
}

// bluestein computes the DFT of arbitrary length via the chirp-z transform,
// expressing it as a convolution evaluated with a padded radix-2 FFT. The
// chirp sequence and the transformed chirp filter come from the per-length
// plan cache, so each call performs two FFTs instead of three.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	plan := bluesteinPlanFor(n, inverse)
	a := make([]complex128, plan.m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * plan.chirp[k]
	}
	radix2(a, false)
	for i := range a {
		a[i] *= plan.bfft[i]
	}
	radix2(a, true)
	invM := complex(1/float64(plan.m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * invM * plan.chirp[k]
	}
	return out
}
