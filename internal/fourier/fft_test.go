package fourier

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n²) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			s += x[t] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

func randComplex(n int, rng *rand.Rand) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Powers of two and awkward sizes (prime, composite).
	for _, n := range []int{1, 2, 4, 8, 16, 64, 3, 5, 7, 12, 30, 97, 100} {
		x := randComplex(n, rng)
		if e := maxErr(FFT(x), naiveDFT(x)); e > 1e-8 {
			t.Fatalf("n=%d: max error %g vs naive DFT", n, e)
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(128)
		x := randComplex(n, rng)
		return maxErr(IFFT(FFT(x)), x) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 24
	x := randComplex(n, rng)
	y := randComplex(n, rng)
	sum := make([]complex128, n)
	for i := range sum {
		sum[i] = 2*x[i] + 3*y[i]
	}
	fx, fy, fs := FFT(x), FFT(y), FFT(sum)
	for i := range fs {
		if cmplx.Abs(fs[i]-(2*fx[i]+3*fy[i])) > 1e-9 {
			t.Fatal("FFT not linear")
		}
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{16, 33} {
		x := randComplex(n, rng)
		var et float64
		for _, v := range x {
			et += real(v)*real(v) + imag(v)*imag(v)
		}
		var ef float64
		for _, v := range FFT(x) {
			ef += real(v)*real(v) + imag(v)*imag(v)
		}
		if math.Abs(et-ef/float64(n)) > 1e-8*math.Max(1, et) {
			t.Fatalf("Parseval violated: time %g freq/n %g", et, ef/float64(n))
		}
	}
}

func TestFFTRealOfSinusoidPeaksAtFrequency(t *testing.T) {
	n := 256
	k := 17
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(k) * float64(i) / float64(n))
	}
	amps := Amplitudes(FFTReal(x))
	best := 0
	for i := 1; i < n/2; i++ {
		if amps[i] > amps[best] {
			best = i
		}
	}
	if best != k {
		t.Fatalf("dominant bin %d, want %d", best, k)
	}
}

func TestPeriodogramDetectsPeriod(t *testing.T) {
	n := 400
	period := 50.0
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi / period * float64(i))
	}
	power, periods := Periodogram(x)
	best := 0
	for i := range power {
		if power[i] > power[best] {
			best = i
		}
	}
	if math.Abs(periods[best]-period) > 1.0 {
		t.Fatalf("detected period %.1f, want %.1f", periods[best], period)
	}
}

func TestPeriodogramShortInput(t *testing.T) {
	if p, _ := Periodogram([]float64{1}); p != nil {
		t.Fatal("expected nil for too-short input")
	}
}

func TestFFTDoesNotModifyInput(t *testing.T) {
	x := []complex128{1, 2, 3, 4, 5}
	orig := append([]complex128(nil), x...)
	FFT(x)
	IFFT(x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatal("input modified")
		}
	}
}

// TestFFTConcurrentPlanCache exercises the twiddle/Bluestein plan caches
// from many goroutines hitting the same fresh lengths at once (run with
// -race): every transform must agree with a serially computed reference.
func TestFFTConcurrentPlanCache(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Lengths chosen to avoid the package's other tests so the caches are
	// cold: one power of two, one prime (Bluestein).
	inputs := [][]complex128{randComplex(512, rng), randComplex(509, rng)}
	want := [][]complex128{FFT(inputs[0]), FFT(inputs[1])}
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			x := inputs[g%2]
			got := FFT(x)
			for i := range got {
				if got[i] != want[g%2][i] {
					errs <- "concurrent FFT diverged from serial reference"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randComplex(1024, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFTBluestein1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randComplex(1000, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

// TestFFTInPlaceMatchesFFT pins the in-place power-of-two path against
// the allocating one, forward and inverse, and its zero-alloc budget
// once the twiddle table is warm.
func TestFFTInPlaceMatchesFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 8, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := FFT(x)
		got := append([]complex128(nil), x...)
		FFTInPlace(got)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d bin %d: in-place %v != FFT %v", n, i, got[i], want[i])
			}
		}
		back := append([]complex128(nil), got...)
		IFFTInPlace(back)
		wantBack := IFFT(want)
		for i := range back {
			if back[i] != wantBack[i] {
				t.Fatalf("n=%d bin %d: in-place inverse %v != IFFT %v", n, i, back[i], wantBack[i])
			}
		}
	}
	buf := make([]complex128, 64)
	FFTInPlace(buf) // warm the twiddle cache
	if allocs := testing.AllocsPerRun(32, func() {
		FFTInPlace(buf)
		IFFTInPlace(buf)
	}); allocs != 0 {
		t.Fatalf("warm in-place FFT allocates %.1f objects, want 0", allocs)
	}
	for _, f := range []func([]complex128){FFTInPlace, IFFTInPlace} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("non-power-of-two length accepted")
				}
			}()
			f(make([]complex128, 12))
		}()
	}
}
