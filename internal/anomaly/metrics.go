// Package anomaly provides evaluation machinery for time series anomaly
// detection: confusion counts, precision/recall/F1, the point-adjust
// protocol used throughout the TSAD literature (and by the paper, §IV-C),
// anomaly segment extraction, and a best-F1 threshold sweep.
package anomaly

import "sort"

// Confusion aggregates binary classification counts.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add accumulates another confusion matrix.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

// Precision returns TP/(TP+FP), or 0 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when undefined.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Segment is a half-open run [Start, End) of consecutive anomalous points.
type Segment struct {
	Start, End int
}

// Len returns the segment length.
func (s Segment) Len() int { return s.End - s.Start }

// Segments extracts maximal runs of true values.
func Segments(labels []bool) []Segment {
	var segs []Segment
	for i := 0; i < len(labels); {
		if !labels[i] {
			i++
			continue
		}
		j := i
		for j < len(labels) && labels[j] {
			j++
		}
		segs = append(segs, Segment{Start: i, End: j})
		i = j
	}
	return segs
}

// PointAdjust applies the standard point-adjust protocol: if any point
// inside a ground-truth anomaly segment is predicted anomalous, the entire
// segment is considered detected. It returns the adjusted predictions.
func PointAdjust(pred, truth []bool) []bool {
	adj := append([]bool(nil), pred...)
	for _, seg := range Segments(truth) {
		hit := false
		for i := seg.Start; i < seg.End; i++ {
			if pred[i] {
				hit = true
				break
			}
		}
		if hit {
			for i := seg.Start; i < seg.End; i++ {
				adj[i] = true
			}
		}
	}
	return adj
}

// Evaluate compares predictions against ground truth point-wise.
func Evaluate(pred, truth []bool) Confusion {
	if len(pred) != len(truth) {
		panic("anomaly: prediction/truth length mismatch")
	}
	var c Confusion
	for i := range pred {
		switch {
		case pred[i] && truth[i]:
			c.TP++
		case pred[i] && !truth[i]:
			c.FP++
		case !pred[i] && truth[i]:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// EvaluateAdjusted point-adjusts pred against truth and evaluates.
func EvaluateAdjusted(pred, truth []bool) Confusion {
	return Evaluate(PointAdjust(pred, truth), truth)
}

// EvaluateMultivariate point-adjusts and evaluates per variate, summing the
// confusion counts (scores[v][t] thresholded at thr[v]).
func EvaluateMultivariate(scores [][]float64, thr []float64, truth [][]bool) Confusion {
	var total Confusion
	for v := range scores {
		pred := Threshold(scores[v], thr[v])
		total.Add(EvaluateAdjusted(pred, truth[v]))
	}
	return total
}

// Threshold converts scores to binary predictions at ≥ thr.
func Threshold(scores []float64, thr float64) []bool {
	out := make([]bool, len(scores))
	for i, s := range scores {
		out[i] = s >= thr
	}
	return out
}

// BestF1 sweeps candidate thresholds over the observed score values and
// returns the best point-adjusted F1 along with the threshold achieving it.
// Used for analysis; headline results use POT thresholds.
func BestF1(scores []float64, truth []bool) (best Confusion, thr float64) {
	uniq := append([]float64(nil), scores...)
	sort.Float64s(uniq)
	// At most ~200 candidates for tractability on long series.
	step := len(uniq) / 200
	if step < 1 {
		step = 1
	}
	bestF1 := -1.0
	for i := 0; i < len(uniq); i += step {
		c := EvaluateAdjusted(Threshold(scores, uniq[i]), truth)
		if f := c.F1(); f > bestF1 {
			bestF1, best, thr = f, c, uniq[i]
		}
	}
	return best, thr
}
