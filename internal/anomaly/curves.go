package anomaly

import "sort"

// PRPoint is one operating point on a precision-recall curve.
type PRPoint struct {
	Threshold         float64
	Precision, Recall float64
}

// PRCurve sweeps thresholds over the observed scores (subsampled to at
// most ~maxPoints operating points) and returns the point-adjusted
// precision-recall curve in increasing-threshold order.
func PRCurve(scores []float64, truth []bool, maxPoints int) []PRPoint {
	if maxPoints < 2 {
		maxPoints = 2
	}
	uniq := append([]float64(nil), scores...)
	sort.Float64s(uniq)
	// Deduplicate before stepping: heavily tied scores (clamped-to-zero
	// baselines, quantized detectors) would otherwise burn most of the
	// sweep's operating points on one repeated threshold and skew the
	// subsampled curve toward the tie.
	k := 0
	for i, v := range uniq {
		if i == 0 || v != uniq[k-1] {
			uniq[k] = v
			k++
		}
	}
	uniq = uniq[:k]
	step := len(uniq) / maxPoints
	if step < 1 {
		step = 1
	}
	var curve []PRPoint
	for i := 0; i < len(uniq); i += step {
		thr := uniq[i]
		c := EvaluateAdjusted(Threshold(scores, thr), truth)
		curve = append(curve, PRPoint{Threshold: thr, Precision: c.Precision(), Recall: c.Recall()})
	}
	// Anchor the zero-recall end at precision 1 (the standard PR
	// convention for the threshold above every score).
	if len(curve) == 0 || curve[len(curve)-1].Recall > 0 {
		top := uniq[len(uniq)-1]
		curve = append(curve, PRPoint{Threshold: top + 1, Precision: 1, Recall: 0})
	}
	return curve
}

// AUPRC returns the area under the point-adjusted precision-recall curve
// by trapezoidal integration over recall.
func AUPRC(scores []float64, truth []bool) float64 {
	curve := PRCurve(scores, truth, 200)
	if len(curve) < 2 {
		return 0
	}
	// Collapse ties: at each achieved recall keep the best precision (the
	// interpolated PR curve), then integrate over recall.
	best := map[float64]float64{}
	for _, p := range curve {
		if p.Precision > best[p.Recall] {
			best[p.Recall] = p.Precision
		}
	}
	recalls := make([]float64, 0, len(best))
	for r := range best {
		recalls = append(recalls, r)
	}
	sort.Float64s(recalls)
	var area float64
	for i := 1; i < len(recalls); i++ {
		dr := recalls[i] - recalls[i-1]
		area += dr * 0.5 * (best[recalls[i]] + best[recalls[i-1]])
	}
	return area
}

// DetectionDelay reports, for each ground-truth anomaly segment, how many
// samples elapsed between the segment's start and the first predicted
// point inside it; missed segments report -1. Lower is better — telescope
// follow-up must be triggered while the transient is still active.
func DetectionDelay(pred, truth []bool) []int {
	segs := Segments(truth)
	delays := make([]int, len(segs))
	for i, seg := range segs {
		delays[i] = -1
		for t := seg.Start; t < seg.End; t++ {
			if pred[t] {
				delays[i] = t - seg.Start
				break
			}
		}
	}
	return delays
}

// MeanDetectionDelay averages the delays of detected segments and reports
// the number of missed segments separately.
func MeanDetectionDelay(pred, truth []bool) (mean float64, detected, missed int) {
	for _, d := range DetectionDelay(pred, truth) {
		if d < 0 {
			missed++
			continue
		}
		mean += float64(d)
		detected++
	}
	if detected > 0 {
		mean /= float64(detected)
	}
	return mean, detected, missed
}
