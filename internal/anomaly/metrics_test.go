package anomaly

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, FN: 8, TN: 82}
	if c.Precision() != 0.8 {
		t.Fatalf("precision %v", c.Precision())
	}
	if c.Recall() != 0.5 {
		t.Fatalf("recall %v", c.Recall())
	}
	wantF1 := 2 * 0.8 * 0.5 / 1.3
	if d := c.F1() - wantF1; d > 1e-12 || d < -1e-12 {
		t.Fatalf("f1 %v want %v", c.F1(), wantF1)
	}
}

func TestConfusionZeroSafe(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Fatal("empty confusion must yield zeros, not NaN")
	}
}

func TestSegments(t *testing.T) {
	labels := []bool{false, true, true, false, true, false, false, true}
	segs := Segments(labels)
	want := []Segment{{1, 3}, {4, 5}, {7, 8}}
	if len(segs) != len(want) {
		t.Fatalf("segments %v", segs)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segment %d = %v want %v", i, segs[i], want[i])
		}
	}
	if Segments([]bool{false, false}) != nil {
		t.Fatal("no segments expected")
	}
	if s := Segments([]bool{true, true}); len(s) != 1 || s[0].Len() != 2 {
		t.Fatal("full-width segment expected")
	}
}

func TestPointAdjustExpandsHits(t *testing.T) {
	truth := []bool{false, true, true, true, false}
	pred := []bool{false, false, true, false, false}
	adj := PointAdjust(pred, truth)
	for i := 1; i <= 3; i++ {
		if !adj[i] {
			t.Fatal("hit segment must be fully credited")
		}
	}
	if adj[0] || adj[4] {
		t.Fatal("points outside segments must be untouched")
	}
}

func TestPointAdjustMissedSegmentUnchanged(t *testing.T) {
	truth := []bool{true, true, false}
	pred := []bool{false, false, true}
	adj := PointAdjust(pred, truth)
	if adj[0] || adj[1] {
		t.Fatal("missed segment must not be credited")
	}
	if !adj[2] {
		t.Fatal("false positive must survive adjustment")
	}
}

func TestPointAdjustNeverReducesPredictions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		pred := make([]bool, n)
		truth := make([]bool, n)
		for i := 0; i < n; i++ {
			pred[i] = rng.Float64() < 0.3
			truth[i] = rng.Float64() < 0.3
		}
		adj := PointAdjust(pred, truth)
		for i := range pred {
			if pred[i] && !adj[i] {
				return false
			}
		}
		// Recall after adjustment >= before.
		return EvaluateAdjusted(pred, truth).Recall() >= Evaluate(pred, truth).Recall()-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateCounts(t *testing.T) {
	pred := []bool{true, true, false, false}
	truth := []bool{true, false, true, false}
	c := Evaluate(pred, truth)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion %+v", c)
	}
}

func TestEvaluateLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Evaluate([]bool{true}, []bool{true, false})
}

func TestThreshold(t *testing.T) {
	pred := Threshold([]float64{0.1, 0.5, 0.9}, 0.5)
	if pred[0] || !pred[1] || !pred[2] {
		t.Fatalf("threshold %v", pred)
	}
}

func TestEvaluateMultivariateSums(t *testing.T) {
	scores := [][]float64{{0, 1, 0}, {1, 0, 0}}
	truth := [][]bool{{false, true, false}, {false, false, false}}
	c := EvaluateMultivariate(scores, []float64{0.5, 0.5}, truth)
	if c.TP != 1 || c.FP != 1 {
		t.Fatalf("confusion %+v", c)
	}
}

func TestBestF1FindsPerfectThreshold(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.9, 0.95, 0.15}
	truth := []bool{false, false, true, true, false}
	best, thr := BestF1(scores, truth)
	if best.F1() != 1 {
		t.Fatalf("best F1 %v at %v", best.F1(), thr)
	}
	if thr <= 0.2 || thr > 0.9 {
		t.Fatalf("threshold %v outside separating gap", thr)
	}
}

func TestBestF1AtLeastPOTStyleThreshold(t *testing.T) {
	// BestF1 is an oracle: it must dominate any fixed threshold.
	rng := rand.New(rand.NewSource(9))
	n := 300
	scores := make([]float64, n)
	truth := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		if i%50 == 0 {
			scores[i] += 1
			truth[i] = true
		}
	}
	best, _ := BestF1(scores, truth)
	fixed := EvaluateAdjusted(Threshold(scores, 0.8), truth)
	if best.F1() < fixed.F1()-1e-12 {
		t.Fatalf("oracle %v below fixed %v", best.F1(), fixed.F1())
	}
}

func TestPRCurveMonotonicEndpoints(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.2, 0.8, 0.3}
	truth := []bool{false, true, false, true, false}
	curve := PRCurve(scores, truth, 10)
	if len(curve) < 2 {
		t.Fatal("curve too short")
	}
	// Lowest threshold predicts everything: recall 1.
	if curve[0].Recall != 1 {
		t.Fatalf("lowest threshold recall %v", curve[0].Recall)
	}
	for _, p := range curve {
		if p.Precision < 0 || p.Precision > 1 || p.Recall < 0 || p.Recall > 1 {
			t.Fatalf("point out of range %+v", p)
		}
	}
}

// TestPRCurveDedupesTiedScores is the regression test for the tied-score
// sweep bug: the threshold candidates were sorted but never
// deduplicated, so a heavily tied score distribution (here 97% exact
// zeros, the shape clamped baselines produce) burned nearly every
// subsampled operating point on the same threshold and collapsed the
// curve's resolution over the informative tail.
func TestPRCurveDedupesTiedScores(t *testing.T) {
	const n = 1000
	scores := make([]float64, n)
	truth := make([]bool, n)
	distinct := map[float64]bool{0: true}
	for i := 30; i < 60; i++ { // one anomalous plateau of distinct scores
		scores[i] = 1 + float64(i)/100
		truth[i] = true
		distinct[scores[i]] = true
	}
	curve := PRCurve(scores, truth, 10)
	seen := map[float64]int{}
	for _, p := range curve {
		seen[p.Threshold]++
		if seen[p.Threshold] > 1 {
			t.Fatalf("threshold %v swept twice", p.Threshold)
		}
	}
	// 31 distinct scores at maxPoints 10 → step 3 → ≥ 10 distinct
	// operating points (plus the zero-recall anchor). The broken sweep
	// stepped over 1000 tied values and spent 97% of its points below the
	// informative range, leaving at most one non-zero threshold.
	nonZero := 0
	for thr := range seen {
		if thr > 0 {
			nonZero++
		}
	}
	if nonZero < 5 {
		t.Fatalf("only %d non-zero thresholds swept; tied scores still burn sweep points", nonZero)
	}
}

func TestAUPRCPerfectSeparation(t *testing.T) {
	scores := []float64{0.1, 0.1, 0.9, 0.9, 0.1}
	truth := []bool{false, false, true, true, false}
	if auc := AUPRC(scores, truth); auc < 0.9 {
		t.Fatalf("perfect separation AUPRC %v", auc)
	}
}

func TestAUPRCRandomScoresLow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 600
	scores := make([]float64, n)
	truth := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		truth[i] = i%100 == 0 // rare anomalies, unrelated to scores
	}
	perfect := make([]float64, n)
	for i := range perfect {
		if truth[i] {
			perfect[i] = 1
		}
	}
	if AUPRC(scores, truth) >= AUPRC(perfect, truth) {
		t.Fatal("random scores should not beat perfect scores")
	}
}

func TestDetectionDelay(t *testing.T) {
	truth := []bool{false, true, true, true, false, true, true, false}
	pred := []bool{false, false, true, false, false, false, false, false}
	delays := DetectionDelay(pred, truth)
	if len(delays) != 2 {
		t.Fatalf("delays %v", delays)
	}
	if delays[0] != 1 {
		t.Fatalf("first segment delay %d, want 1", delays[0])
	}
	if delays[1] != -1 {
		t.Fatalf("missed segment should be -1, got %d", delays[1])
	}
	mean, detected, missed := MeanDetectionDelay(pred, truth)
	if mean != 1 || detected != 1 || missed != 1 {
		t.Fatalf("mean %v detected %d missed %d", mean, detected, missed)
	}
}

func TestMeanDetectionDelayAllMissed(t *testing.T) {
	truth := []bool{true, true}
	pred := []bool{false, false}
	mean, detected, missed := MeanDetectionDelay(pred, truth)
	if mean != 0 || detected != 0 || missed != 1 {
		t.Fatalf("mean %v detected %d missed %d", mean, detected, missed)
	}
}
