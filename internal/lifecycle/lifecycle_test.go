package lifecycle_test

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"aero/internal/core"
	"aero/internal/dataset"
	"aero/internal/engine"
	"aero/internal/lifecycle"
)

// fixtureConfig is a deliberately tiny training profile: lifecycle tests
// exercise storage and orchestration, not model quality.
func fixtureConfig(seed int64) core.Config {
	c := core.SmallConfig()
	c.LongWindow = 32
	c.ShortWindow = 12
	c.ModelDim = 8
	c.FFNHidden = 16
	c.MaxEpochs = 2
	c.TrainStride = 24
	c.EvalStride = 16
	c.Seed = seed
	return c
}

func fixtureData() *dataset.Dataset {
	return dataset.SyntheticConfig{
		Name: "lifecycle", N: 4, TrainLen: 220, TestLen: 200,
		NoiseVariates: 2, AnomalySegments: 1, NoisePct: 3,
		VariableFrac: 0.5, Seed: 41,
	}.Generate()
}

var (
	fixOnce sync.Once
	fixM    *core.Model
	fixD    *dataset.Dataset
	fixErr  error
)

func fixture(t *testing.T) (*core.Model, *dataset.Dataset) {
	t.Helper()
	fixOnce.Do(func() {
		fixD = fixtureData()
		fixM, fixErr = core.New(fixtureConfig(1), fixD.Train.N())
		if fixErr == nil {
			fixErr = fixM.Fit(fixD.Train)
		}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixM, fixD
}

func TestRegistryPublishLatestVersions(t *testing.T) {
	m, d := fixture(t)
	reg, err := lifecycle.OpenRegistry(filepath.Join(t.TempDir(), "registry"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Latest("field-1"); !errors.Is(err, lifecycle.ErrNoVersions) {
		t.Fatalf("empty tenant Latest: got %v, want ErrNoVersions", err)
	}
	v1, err := reg.Publish("field-1", m)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := reg.Publish("field-1", m)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 1 || v2 != 2 {
		t.Fatalf("versions %d, %d; want monotonically 1, 2", v1, v2)
	}
	if vs := reg.Versions("field-1"); len(vs) != 2 || vs[0] != 1 || vs[1] != 2 {
		t.Fatalf("manifest %v, want [1 2]", vs)
	}
	loaded, v, err := reg.Latest("field-1")
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 || loaded.Threshold() != m.Threshold() {
		t.Fatalf("Latest returned v%d thr %v, want v2 thr %v", v, loaded.Threshold(), m.Threshold())
	}
	// Specific-version load, and scoring equivalence of the stored model.
	old, err := reg.Load("field-1", v1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Scores(d.Test)
	if err != nil {
		t.Fatal(err)
	}
	got, err := old.Scores(d.Test)
	if err != nil {
		t.Fatal(err)
	}
	for vi := range want {
		for i := range want[vi] {
			if want[vi][i] != got[vi][i] {
				t.Fatalf("published model scores differ at %d,%d", vi, i)
			}
		}
	}
	if ts := reg.Tenants(); len(ts) != 1 || ts[0] != "field-1" {
		t.Fatalf("tenants %v, want [field-1]", ts)
	}
}

func TestRegistryReopenResumesVersioning(t *testing.T) {
	m, _ := fixture(t)
	dir := filepath.Join(t.TempDir(), "registry")
	reg, err := lifecycle.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("field-2", m); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("field-2", m); err != nil {
		t.Fatal(err)
	}

	reopened, err := lifecycle.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if vs := reopened.Versions("field-2"); len(vs) != 2 {
		t.Fatalf("reopened manifest %v, want 2 versions", vs)
	}
	v3, err := reopened.Publish("field-2", m)
	if err != nil {
		t.Fatal(err)
	}
	if v3 != 3 {
		t.Fatalf("post-reopen publish got v%d, want v3 (monotonic across restarts)", v3)
	}
}

// TestRegistryQuarantinesCorruptEntries plants garbage and truncated
// entries above a good version: Latest must quarantine them (rename aside,
// drop from the manifest) and fall back to the newest loadable model.
func TestRegistryQuarantinesCorruptEntries(t *testing.T) {
	m, _ := fixture(t)
	dir := filepath.Join(t.TempDir(), "registry")
	reg, err := lifecycle.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("field-3", m); err != nil {
		t.Fatal(err)
	}
	tdir := filepath.Join(dir, "field-3")
	if err := os.WriteFile(filepath.Join(tdir, "v00000002.json"), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(filepath.Join(tdir, "v00000001.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tdir, "v00000003.json"), good[:len(good)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	reopened, err := lifecycle.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if vs := reopened.Versions("field-3"); len(vs) != 3 {
		t.Fatalf("scan found %v, want the 3 on-disk entries", vs)
	}
	loaded, v, err := reopened.Latest("field-3")
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 || loaded.Threshold() != m.Threshold() {
		t.Fatalf("Latest fell back to v%d, want the loadable v1", v)
	}
	if vs := reopened.Versions("field-3"); len(vs) != 1 || vs[0] != 1 {
		t.Fatalf("manifest after quarantine %v, want [1]", vs)
	}
	for _, name := range []string{"v00000002.json", "v00000003.json"} {
		if _, err := os.Stat(filepath.Join(tdir, name+".corrupt")); err != nil {
			t.Fatalf("corrupt entry %s not quarantined: %v", name, err)
		}
	}
	// Ids are never reused: the next publish continues past the
	// quarantined ids, so "v2/v3 were bad" stays true forever and the
	// preserved .corrupt evidence can never be clobbered.
	v4, err := reopened.Publish("field-3", m)
	if err != nil {
		t.Fatal(err)
	}
	if v4 != 4 {
		t.Fatalf("post-quarantine publish got v%d, want v4 (no id reuse)", v4)
	}
	if _, v, err := reopened.Latest("field-3"); err != nil || v != 4 {
		t.Fatalf("Latest after republish: v%d, %v", v, err)
	}
	// And the guarantee survives a restart: the scan counts quarantined
	// names when resuming the id space.
	again, err := lifecycle.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if v5, err := again.Publish("field-3", m); err != nil || v5 != 5 {
		t.Fatalf("post-restart publish got v%d, %v; want v5", v5, err)
	}
}

func TestRegistryStateCheckpointRoundtrip(t *testing.T) {
	m, d := fixture(t)
	reg, err := lifecycle.OpenRegistry(filepath.Join(t.TempDir(), "registry"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.LoadState("field-4"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing state: got %v, want fs.ErrNotExist", err)
	}
	det, err := core.NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Replay(d.Test); err != nil {
		t.Fatal(err)
	}
	blob, err := det.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.SaveState("field-4", blob); err != nil {
		t.Fatal(err)
	}
	back, err := reg.LoadState("field-4")
	if err != nil {
		t.Fatal(err)
	}
	restored, err := core.NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreState(back); err != nil {
		t.Fatalf("checkpointed state failed to restore: %v", err)
	}
	if !restored.Ready() {
		t.Fatal("restored detector should be warm")
	}
}

func TestRegistryRejectsUnsafeTenantIDs(t *testing.T) {
	m, _ := fixture(t)
	reg, err := lifecycle.OpenRegistry(filepath.Join(t.TempDir(), "registry"))
	if err != nil {
		t.Fatal(err)
	}
	for _, tenant := range []string{"", ".", "..", "a/b", `a\b`, ".hidden"} {
		if _, err := reg.Publish(tenant, m); err == nil {
			t.Fatalf("Publish accepted unsafe tenant id %q", tenant)
		}
		if err := reg.SaveState(tenant, []byte("x")); err == nil {
			t.Fatalf("SaveState accepted unsafe tenant id %q", tenant)
		}
	}
}

func TestRetrainerOnDemandDeterministic(t *testing.T) {
	_, d := fixture(t)
	reg, err := lifecycle.OpenRegistry(filepath.Join(t.TempDir(), "registry"))
	if err != nil {
		t.Fatal(err)
	}
	results := make(chan lifecycle.Result, 4)
	rt, err := lifecycle.NewRetrainer(lifecycle.RetrainerConfig{
		Registry: reg,
		Source:   func(string) (*dataset.Series, error) { return d.Train, nil },
		Config:   func(_ string, round int) core.Config { return fixtureConfig(100 + int64(round)) },
		OnResult: func(r lifecycle.Result) { results <- r },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rt.Trigger("field-5") {
		t.Fatal("first trigger rejected")
	}
	if rt.Trigger("field-5") {
		t.Fatal("duplicate trigger not deduped while queued")
	}
	rt.Start()
	defer rt.Close()

	res := <-results
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Tenant != "field-5" || res.Round != 1 || res.Version != 1 || res.Seed != 101 {
		t.Fatalf("result %+v, want round 1 / v1 / seed 101", res)
	}
	if res.Model == nil || res.Epochs1 < 1 {
		t.Fatalf("result carries no trained model: %+v", res)
	}
	// Reproducible from the logged seed: an independent fit of the same
	// config must agree bit-for-bit on the calibrated threshold.
	manual, err := core.New(fixtureConfig(res.Seed), d.Train.N())
	if err != nil {
		t.Fatal(err)
	}
	if err := manual.Fit(d.Train); err != nil {
		t.Fatal(err)
	}
	if manual.Threshold() != res.Model.Threshold() {
		t.Fatalf("retrain not reproducible from seed: %v != %v", res.Model.Threshold(), manual.Threshold())
	}
	// The published artifact matches what the result reported.
	published, v, err := reg.Latest("field-5")
	if err != nil {
		t.Fatal(err)
	}
	if v != res.Version || published.Threshold() != res.Model.Threshold() {
		t.Fatalf("registry holds v%d thr %v, result says v%d thr %v",
			v, published.Threshold(), res.Version, res.Model.Threshold())
	}

	// A second round bumps version and seed.
	if !rt.Trigger("field-5") {
		t.Fatal("second trigger rejected")
	}
	res2 := <-results
	if res2.Err != nil {
		t.Fatal(res2.Err)
	}
	if res2.Round != 2 || res2.Version != 2 || res2.Seed != 102 {
		t.Fatalf("second result %+v, want round 2 / v2 / seed 102", res2)
	}
}

func TestRetrainerScheduleAndSourceErrors(t *testing.T) {
	_, d := fixture(t)
	reg, err := lifecycle.OpenRegistry(filepath.Join(t.TempDir(), "registry"))
	if err != nil {
		t.Fatal(err)
	}
	results := make(chan lifecycle.Result, 16)
	failing := true
	var mu sync.Mutex
	rt, err := lifecycle.NewRetrainer(lifecycle.RetrainerConfig{
		Registry: reg,
		Source: func(string) (*dataset.Series, error) {
			mu.Lock()
			defer mu.Unlock()
			if failing {
				failing = false
				return nil, errors.New("archive offline")
			}
			return d.Train, nil
		},
		Config:   func(_ string, round int) core.Config { return fixtureConfig(int64(round)) },
		Interval: 20 * time.Millisecond,
		OnResult: func(r lifecycle.Result) { results <- r },
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Register("field-6")
	rt.Register("field-6") // idempotent
	rt.Start()
	defer rt.Close()

	// First scheduled round hits the failing source; the failure must be
	// reported, not published.
	res := <-results
	if res.Err == nil || !strings.Contains(res.Err.Error(), "archive offline") {
		t.Fatalf("first result %+v, want the source failure", res)
	}
	if vs := reg.Versions("field-6"); len(vs) != 0 {
		t.Fatalf("failed retrain published %v", vs)
	}
	// The schedule keeps firing; a later round succeeds.
	deadline := time.After(30 * time.Second)
	for {
		select {
		case res = <-results:
		case <-deadline:
			t.Fatal("schedule never produced a successful retrain")
		}
		if res.Err == nil {
			if res.Version < 1 {
				t.Fatalf("successful result without a version: %+v", res)
			}
			return
		}
	}
}

// TestRetrainHotSwapLiveEngine is the end-to-end lifecycle flow the
// subsystem exists for: tenants serve a live feed while the retrainer
// refits their model in the background; on publish the new model is
// hot-swapped in mid-stream. Every frame must be scored (none dropped),
// in order, with a full warm window across the swap.
func TestRetrainHotSwapLiveEngine(t *testing.T) {
	m, d := fixture(t)
	reg, err := lifecycle.OpenRegistry(filepath.Join(t.TempDir(), "registry"))
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Shards: 2, Workers: 2})
	const tenants = 3
	subs := make([]*engine.Subscription, tenants)
	ids := []string{"live-0", "live-1", "live-2"}
	for i, id := range ids {
		if subs[i], err = eng.Subscribe(id, m); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range eng.Alarms() {
		}
	}()
	var frameErrs []engine.FrameError
	wg.Add(1)
	go func() {
		defer wg.Done()
		for fe := range eng.Errors() {
			frameErrs = append(frameErrs, fe)
		}
	}()

	swapped := make(chan lifecycle.Result, 1)
	rt, err := lifecycle.NewRetrainer(lifecycle.RetrainerConfig{
		Registry: reg,
		Source:   func(string) (*dataset.Series, error) { return d.Train, nil },
		Config:   func(_ string, round int) core.Config { return fixtureConfig(500 + int64(round)) },
		OnResult: func(r lifecycle.Result) {
			if r.Err == nil {
				for _, sub := range subs {
					if err := sub.Swap(r.Model); err != nil {
						r.Err = err
					}
				}
			}
			swapped <- r
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Close()

	// Feed frames while the retrain runs in the background.
	frame := core.Frame{Magnitudes: make([]float64, d.Test.N())}
	for ti := 0; ti < d.Test.Len(); ti++ {
		if ti == d.Test.Len()/4 {
			rt.Trigger("gwac") // retrain kicks off mid-feed
		}
		for _, id := range ids {
			frame.Time = d.Test.Time[ti]
			for v := 0; v < d.Test.N(); v++ {
				frame.Magnitudes[v] = d.Test.Data[v][ti]
			}
			if err := eng.Ingest(id, frame); err != nil {
				t.Fatal(err)
			}
		}
	}
	res := <-swapped // retrain + swap completed
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	eng.Flush()
	eng.Close()
	wg.Wait()

	if len(frameErrs) != 0 {
		t.Fatalf("live swap produced frame errors: %v", frameErrs)
	}
	for i, sub := range subs {
		st := sub.Stats()
		if st.Frames != uint64(d.Test.Len()) {
			t.Fatalf("tenant %d scored %d frames, want %d (zero dropped)", i, st.Frames, d.Test.Len())
		}
		if st.Swaps != 1 {
			t.Fatalf("tenant %d saw %d swaps, want 1", i, st.Swaps)
		}
		if !st.Ready {
			t.Fatalf("tenant %d lost its warm window across the swap", i)
		}
		if sub.Threshold() != res.Model.Threshold() {
			t.Fatalf("tenant %d still serves the old threshold after the swap", i)
		}
	}
	if v, _ := reg.Versions("gwac"), reg; len(v) != 1 {
		t.Fatalf("registry versions %v, want exactly the retrained v1", v)
	}
}
