package lifecycle

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// withIOHooks swaps the injectable IO for the test and restores it.
func withIOHooks(t *testing.T, read func(string) ([]byte, error), write func(string, []byte, os.FileMode) error) {
	t.Helper()
	prevR, prevW, prevB := readFile, writeFileAtomic, ioBackoff
	if read != nil {
		readFile = read
	}
	if write != nil {
		writeFileAtomic = write
	}
	ioBackoff = time.Microsecond
	t.Cleanup(func() { readFile, writeFileAtomic, ioBackoff = prevR, prevW, prevB })
}

var errBlip = errors.New("transient blip")

// TestRetryReadTransient: a read that fails transiently recovers within
// the attempt budget, and the registry call above it never notices.
func TestRetryReadTransient(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SaveState("tenant", []byte("warm")); err != nil {
		t.Fatal(err)
	}

	calls := 0
	withIOHooks(t, func(path string) ([]byte, error) {
		calls++
		if calls < ioAttempts {
			return nil, errBlip
		}
		return os.ReadFile(path)
	}, nil)

	blob, err := r.LoadState("tenant")
	if err != nil {
		t.Fatalf("transient failures were not retried: %v", err)
	}
	if string(blob) != "warm" || calls != ioAttempts {
		t.Fatalf("blob %q after %d calls, want \"warm\" after %d", blob, calls, ioAttempts)
	}
}

// TestRetryReadExhausted: a persistent failure surfaces after exactly
// ioAttempts tries — bounded, not forever.
func TestRetryReadExhausted(t *testing.T) {
	calls := 0
	withIOHooks(t, func(string) ([]byte, error) {
		calls++
		return nil, errBlip
	}, nil)
	if _, err := retryRead("whatever"); !errors.Is(err, errBlip) {
		t.Fatalf("err %v, want the underlying blip", err)
	}
	if calls != ioAttempts {
		t.Fatalf("%d attempts, want %d", calls, ioAttempts)
	}
}

// TestRetryReadNotExist: a missing file is permanent — no retries, the
// caller's fs.ErrNotExist semantics (quarantine, first-run) intact.
func TestRetryReadNotExist(t *testing.T) {
	calls := 0
	withIOHooks(t, func(string) ([]byte, error) {
		calls++
		return nil, fs.ErrNotExist
	}, nil)
	if _, err := retryRead("gone"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err %v", err)
	}
	if calls != 1 {
		t.Fatalf("%d attempts on ErrNotExist, want 1", calls)
	}
}

// TestRetryWriteTransient: a publish whose atomic write blips transiently
// still lands — same bytes, same path, one version id.
func TestRetryWriteTransient(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}

	calls := 0
	realWrite := writeFileAtomic
	withIOHooks(t, nil, func(path string, blob []byte, perm os.FileMode) error {
		calls++
		if calls < ioAttempts {
			return errBlip
		}
		return realWrite(path, blob, perm)
	})

	v, err := r.PublishArtifact("tenant", "fluxev", []byte(`{"cal":1}`))
	if err != nil {
		t.Fatalf("transient write failures were not retried: %v", err)
	}
	if calls != ioAttempts {
		t.Fatalf("%d write attempts, want %d", calls, ioAttempts)
	}
	if _, err := os.Stat(filepath.Join(dir, "tenant", v.String()+modelSuffix)); err != nil {
		t.Fatalf("published entry missing: %v", err)
	}
	if kind, artifact, _, err := r.LatestArtifact("tenant"); err != nil || kind != "fluxev" || string(artifact) != `{"cal":1}` {
		t.Fatalf("reload after retried publish: kind %q artifact %q err %v", kind, artifact, err)
	}
}

// TestRetryWriteExhausted: a persistently failing publish reports the
// failure after the attempt budget and burns its version id (gaps are
// fine, reuse is not).
func TestRetryWriteExhausted(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	withIOHooks(t, nil, func(string, []byte, os.FileMode) error {
		calls++
		return errBlip
	})
	if _, err := r.PublishArtifact("tenant", "fluxev", []byte(`{}`)); !errors.Is(err, errBlip) {
		t.Fatalf("err %v, want the underlying blip", err)
	}
	if calls != ioAttempts {
		t.Fatalf("%d write attempts, want %d", calls, ioAttempts)
	}
}
