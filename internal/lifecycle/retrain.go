package lifecycle

import (
	"fmt"
	"sync"
	"time"

	"aero/internal/core"
	"aero/internal/dataset"
	"aero/internal/metrics"
)

// RetrainerConfig wires a Retrainer to its data, its registry and its
// consumer.
type RetrainerConfig struct {
	// Registry receives every successfully trained model. Required.
	Registry *Registry
	// Source fetches the training series for a tenant — typically the
	// latest archived frames of its field. Required; called from worker
	// goroutines.
	Source func(tenant string) (*dataset.Series, error)
	// Config builds the training configuration for a tenant's round-th
	// retrain (rounds count from 1). Returning a config with a
	// round-derived Seed makes every retrain reproducible from the seed
	// logged in its Result — core training is bit-deterministic for a
	// fixed seed at any worker count. Required for the default AERO
	// path (i.e. when Train is nil); called from worker goroutines.
	Config func(tenant string, round int) core.Config
	// Train, when non-nil, replaces the default AERO fit with a
	// per-backend trainer: it produces the (kind, artifact) pair to
	// publish — typically a closure over a backend.Spec's Train. The
	// Result then carries Kind/Artifact but no Model; consumers hot-swap
	// via Subscription.SwapArtifact. Called from worker goroutines.
	Train func(tenant string, round int, train *dataset.Series) (kind string, artifact []byte, err error)
	// Workers bounds the concurrent retrains. Defaults to 1: background
	// retraining should sip cores that live scoring is using.
	Workers int
	// Interval, when positive, retrains every registered tenant on this
	// period. Zero means on-demand only (Trigger/TriggerAll).
	Interval time.Duration
	// OnResult, when non-nil, observes every finished retrain — failures
	// included — from the worker goroutine that ran it. This is where a
	// deployment hot-swaps the published model into its serving tenants.
	OnResult func(Result)
	// Logf, when non-nil, receives progress lines (seed, version, epochs).
	Logf func(format string, args ...any)
	// Metrics, when non-nil, times each retrain round (fetch + fit +
	// publish) into aero_lifecycle_retrain_seconds and counts completions,
	// failures and published versions. Retraining is a background path, so
	// this costs one histogram record per round, not per frame.
	Metrics *metrics.Registry
}

// Result reports one finished retrain.
type Result struct {
	// Tenant is the retrained tenant id.
	Tenant string
	// Round is the per-tenant retrain counter (1 for the first retrain).
	Round int
	// Seed is the training seed used; re-running the same round's config
	// with this seed reproduces Model bit-for-bit.
	Seed int64
	// Version is the registry version the artifact was published as.
	Version Version
	// Kind is the backend kind tag the artifact was published under.
	Kind string
	// Artifact is the published artifact bytes, ready for
	// Subscription.SwapArtifact on any backend kind. Nil when Err is
	// non-nil.
	Artifact []byte
	// Epochs1 and Epochs2 record the per-stage epochs actually run
	// (AERO retrains only).
	Epochs1, Epochs2 int
	// Duration is the wall time of fetch + fit + publish.
	Duration time.Duration
	// Model is the freshly trained model, ready to Swap into serving
	// detectors. Nil for non-AERO retrains and when Err is non-nil.
	Model *core.Model
	// Err is non-nil when the retrain failed; no version was published.
	Err error
}

// Retrainer refits tenant models in the background on a bounded worker
// pool, on a schedule or on demand, publishing each result to the
// registry. Create with NewRetrainer, call Start, and Close when done.
type Retrainer struct {
	cfg RetrainerConfig

	mu      sync.Mutex
	cond    *sync.Cond
	tenants []string        // scheduled set, in registration order
	queue   []job           // FIFO of pending retrains
	pending map[string]bool // dedupe: tenant already queued (not yet running)
	rounds  map[string]int
	closed  bool
	started bool

	wg       sync.WaitGroup
	stopTick chan struct{}

	obs *retrainObs
}

// retrainObs holds the retrainer's instruments; nil when unobserved.
type retrainObs struct {
	rounds    *metrics.Histogram // wall time of one fetch + fit + publish
	retrains  *metrics.Counter
	errors    *metrics.Counter
	publishes *metrics.Counter
}

func newRetrainObs(reg *metrics.Registry) *retrainObs {
	return &retrainObs{
		rounds:    reg.Histogram("aero_lifecycle_retrain_seconds", "Wall time of one retrain round: fetch, fit, publish."),
		retrains:  reg.Counter("aero_lifecycle_retrains_total", "Retrain rounds finished (failures included)."),
		errors:    reg.Counter("aero_lifecycle_retrain_errors_total", "Retrain rounds that failed."),
		publishes: reg.Counter("aero_lifecycle_publishes_total", "Model versions published to the registry."),
	}
}

// job is one queued retrain; the round is fixed at trigger time so results
// report trigger order even when workers finish out of order.
type job struct {
	tenant string
	round  int
}

// NewRetrainer validates cfg and returns an idle retrainer; no goroutines
// run until Start.
func NewRetrainer(cfg RetrainerConfig) (*Retrainer, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("lifecycle: retrainer needs a registry")
	}
	if cfg.Source == nil {
		return nil, fmt.Errorf("lifecycle: retrainer needs a training-data source")
	}
	if cfg.Config == nil && cfg.Train == nil {
		return nil, fmt.Errorf("lifecycle: retrainer needs a config builder or a backend trainer")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	rt := &Retrainer{
		cfg:      cfg,
		pending:  map[string]bool{},
		rounds:   map[string]int{},
		stopTick: make(chan struct{}),
	}
	rt.cond = sync.NewCond(&rt.mu)
	if cfg.Metrics != nil {
		rt.obs = newRetrainObs(cfg.Metrics)
	}
	return rt, nil
}

// Register adds a tenant to the scheduled set (the tenants TriggerAll and
// the interval timer retrain). Registering an already-registered tenant is
// a no-op.
func (rt *Retrainer) Register(tenant string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, have := range rt.tenants {
		if have == tenant {
			return
		}
	}
	rt.tenants = append(rt.tenants, tenant)
}

// Start launches the worker pool and, when Interval is set, the schedule.
func (rt *Retrainer) Start() {
	rt.mu.Lock()
	if rt.started || rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.started = true
	rt.mu.Unlock()
	for i := 0; i < rt.cfg.Workers; i++ {
		rt.wg.Add(1)
		go rt.worker()
	}
	if rt.cfg.Interval > 0 {
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			tick := time.NewTicker(rt.cfg.Interval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					rt.TriggerAll()
				case <-rt.stopTick:
					return
				}
			}
		}()
	}
}

// Trigger enqueues an on-demand retrain for the tenant. It reports false
// when the tenant is already queued or the retrainer is closed; a retrain
// currently *running* does not suppress a new trigger (the fresh data it
// would see justifies a back-to-back round).
func (rt *Retrainer) Trigger(tenant string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed || rt.pending[tenant] {
		return false
	}
	rt.pending[tenant] = true
	rt.rounds[tenant]++
	rt.queue = append(rt.queue, job{tenant: tenant, round: rt.rounds[tenant]})
	rt.cond.Signal()
	return true
}

// TriggerAll triggers every registered tenant, returning how many were
// newly enqueued.
func (rt *Retrainer) TriggerAll() int {
	rt.mu.Lock()
	tenants := append([]string(nil), rt.tenants...)
	rt.mu.Unlock()
	n := 0
	for _, tenant := range tenants {
		if rt.Trigger(tenant) {
			n++
		}
	}
	return n
}

// Close stops the schedule, abandons retrains still queued, waits for
// in-flight ones to finish (their results are still delivered), and
// returns. Close is idempotent.
func (rt *Retrainer) Close() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		rt.wg.Wait()
		return
	}
	rt.closed = true
	rt.queue = nil
	rt.pending = map[string]bool{}
	rt.cond.Broadcast()
	rt.mu.Unlock()
	close(rt.stopTick)
	rt.wg.Wait()
}

// worker pops jobs until Close.
func (rt *Retrainer) worker() {
	defer rt.wg.Done()
	for {
		rt.mu.Lock()
		for len(rt.queue) == 0 && !rt.closed {
			rt.cond.Wait()
		}
		if rt.closed {
			rt.mu.Unlock()
			return
		}
		j := rt.queue[0]
		rt.queue = rt.queue[1:]
		delete(rt.pending, j.tenant)
		rt.mu.Unlock()

		res := rt.retrain(j)
		if rt.obs != nil {
			rt.obs.rounds.Record(int64(res.Duration))
			rt.obs.retrains.Inc()
			if res.Err != nil {
				rt.obs.errors.Inc()
			} else {
				rt.obs.publishes.Inc()
			}
		}
		if res.Err != nil {
			rt.cfg.Logf("lifecycle: retrain %s round %d failed: %v", j.tenant, j.round, res.Err)
		} else {
			rt.cfg.Logf("lifecycle: retrained %s round %d → %s (seed %d, %d+%d epochs, %s)",
				j.tenant, j.round, res.Version, res.Seed, res.Epochs1, res.Epochs2,
				res.Duration.Round(time.Millisecond))
		}
		if rt.cfg.OnResult != nil {
			rt.cfg.OnResult(res)
		}
	}
}

// retrain runs one fetch + fit + publish: the default deterministic AERO
// path, or the caller's per-backend Trainer when one is configured.
func (rt *Retrainer) retrain(j job) Result {
	start := time.Now()
	res := Result{Tenant: j.tenant, Round: j.round}
	series, err := rt.cfg.Source(j.tenant)
	if err != nil {
		res.Err = fmt.Errorf("lifecycle: training data for %q: %w", j.tenant, err)
		res.Duration = time.Since(start)
		return res
	}
	if rt.cfg.Train != nil {
		kind, artifact, terr := rt.cfg.Train(j.tenant, j.round, series)
		if terr != nil {
			res.Err = fmt.Errorf("lifecycle: retrain %q: %w", j.tenant, terr)
			res.Duration = time.Since(start)
			return res
		}
		v, perr := rt.cfg.Registry.PublishArtifact(j.tenant, kind, artifact)
		if perr != nil {
			res.Err = perr
			res.Duration = time.Since(start)
			return res
		}
		res.Version, res.Kind, res.Artifact = v, kind, artifact
		res.Duration = time.Since(start)
		return res
	}
	cfg := rt.cfg.Config(j.tenant, j.round)
	res.Seed = cfg.Seed
	m, err := core.New(cfg, series.N())
	if err == nil {
		err = m.Fit(series)
	}
	if err != nil {
		res.Err = fmt.Errorf("lifecycle: retrain %q: %w", j.tenant, err)
		res.Duration = time.Since(start)
		return res
	}
	artifact, err := m.MarshalBytes()
	if err == nil {
		res.Version, err = rt.cfg.Registry.PublishArtifact(j.tenant, core.KindAERO, artifact)
	}
	if err != nil {
		res.Err = err
		res.Duration = time.Since(start)
		return res
	}
	res.Kind, res.Artifact = core.KindAERO, artifact
	res.Model = m
	res.Epochs1, res.Epochs2 = m.Epochs1, m.Epochs2
	res.Duration = time.Since(start)
	return res
}
