// Package lifecycle manages trained detectors as long-lived, versioned
// artifacts — the piece a catalog-scale deployment needs between "the
// trainer returns a fitted backend" and "thousands of tenants serve live
// frames with it". It provides:
//
//   - Registry: a versioned on-disk artifact store with atomic publishes
//     (temp-file + sync + rename), monotonically increasing version ids,
//     per-tenant listings, quarantine of corrupt entries, a backend-kind
//     tag on every entry (AERO models and streaming-baseline
//     calibrations share one registry), and warm backend-state
//     checkpoints alongside the artifacts;
//   - Retrainer: a bounded background worker pool that refits tenant
//     detectors on a schedule or on demand — through the deterministic
//     core training path (every AERO retrain is reproducible from its
//     logged seed) or a caller-supplied per-backend Trainer — and
//     publishes each result to the registry.
//
// The engine side of the lifecycle — installing a published artifact
// into a serving tenant without downtime — is engine.Subscription.Swap
// (AERO models) / SwapArtifact (any kind); wiring a Retrainer's OnResult
// callback to either is all a deployment needs for nightly retrains (see
// cmd/aeroserve).
package lifecycle

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"aero/internal/core"
)

// Version identifies one published model of one tenant. Versions increase
// monotonically per tenant, starting at 1.
type Version uint64

// String renders the version the way registry filenames spell it.
func (v Version) String() string { return fmt.Sprintf("v%08d", uint64(v)) }

const (
	modelSuffix   = ".json"
	corruptSuffix = ".corrupt"
	stateFile     = "state.bin"
	tmpPrefix     = ".aero-save-"
)

// ErrNoVersions is returned by Latest when a tenant has no loadable
// published model.
var ErrNoVersions = errors.New("lifecycle: no published versions")

// Registry is a versioned on-disk store of trained backend artifacts.
// Layout:
//
//	<dir>/<tenant>/v00000001.json        published artifacts (kind-tagged envelope)
//	<dir>/<tenant>/v00000002.json.corrupt  quarantined entries
//	<dir>/<tenant>/state.bin             warm backend-state checkpoint
//
// Each entry is a {"kind", "artifact"} envelope so one registry serves
// heterogeneous backends (AERO models next to streaming-baseline
// calibrations); entries written before the envelope existed are raw
// AERO model JSON and keep loading (their missing kind tag reads as
// "aero").
//
// Every write is atomic (temp file in the same directory, sync, rename),
// so a reader — or a crashed publisher restarting — never observes a
// partially written entry. Entries that nevertheless fail to load (e.g.
// external corruption) are quarantined: renamed aside with a .corrupt
// suffix and dropped from the listing, so Latest falls back to the newest
// loadable version instead of failing forever.
//
// Version ids are never reused: the next id continues from the highest
// ever observed for the tenant — quarantined entries and restarts
// included — so "v2 was bad" stays true forever and a quarantined file is
// never overwritten by a later quarantine of the same name.
//
// A Registry is safe for concurrent use, and model reads/writes happen
// outside its lock (only the in-memory index is guarded), so slow disks
// do not serialize tenants. On-disk it must not be shared by multiple
// processes at once.
type Registry struct {
	dir string

	mu       sync.Mutex
	versions map[string][]Version // per tenant, ascending, loadable entries
	maxSeen  map[string]Version   // highest id ever observed or issued
}

// OpenRegistry opens (creating if needed) a registry rooted at dir and
// scans the existing entries: leftover temp files from crashed publishes
// are removed, version files are indexed per tenant.
func OpenRegistry(dir string) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lifecycle: open registry: %w", err)
	}
	r := &Registry{dir: dir, versions: map[string][]Version{}, maxSeen: map[string]Version{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lifecycle: open registry: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		tenant := e.Name()
		tdir := filepath.Join(dir, tenant)
		files, err := os.ReadDir(tdir)
		if err != nil {
			return nil, fmt.Errorf("lifecycle: scan tenant %q: %w", tenant, err)
		}
		var vs []Version
		for _, f := range files {
			name := f.Name()
			if strings.HasPrefix(name, tmpPrefix) {
				os.Remove(filepath.Join(tdir, name)) // crashed publish
				continue
			}
			// Quarantined entries still pin the id space: their names
			// must never be reissued.
			if v, ok := parseVersionName(strings.TrimSuffix(name, corruptSuffix)); ok {
				if v > r.maxSeen[tenant] {
					r.maxSeen[tenant] = v
				}
				if !strings.HasSuffix(name, corruptSuffix) {
					vs = append(vs, v)
				}
			}
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		r.versions[tenant] = vs
	}
	return r, nil
}

// Dir returns the registry's root directory.
func (r *Registry) Dir() string { return r.dir }

// parseVersionName decodes "v00000012.json" into 12.
func parseVersionName(name string) (Version, bool) {
	if !strings.HasPrefix(name, "v") || !strings.HasSuffix(name, modelSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, "v"), modelSuffix)
	u, err := strconv.ParseUint(digits, 10, 64)
	if err != nil || u == 0 {
		return 0, false
	}
	return Version(u), true
}

// validTenant rejects ids that would escape the registry directory.
func validTenant(tenant string) error {
	if tenant == "" || tenant == "." || tenant == ".." ||
		strings.ContainsAny(tenant, `/\`) || strings.HasPrefix(tenant, ".") {
		return fmt.Errorf("lifecycle: invalid tenant id %q", tenant)
	}
	return nil
}

func (r *Registry) modelPath(tenant string, v Version) string {
	return filepath.Join(r.dir, tenant, v.String()+modelSuffix)
}

// registryEntry is the on-disk envelope of one published version: the
// backend kind tag plus the kind's artifact (AERO model JSON, adapter
// calibration, ...). Entries written before the envelope existed are raw
// AERO model JSON; decodeEntry recognizes them by the absent kind tag.
type registryEntry struct {
	Kind     string          `json:"kind"`
	Artifact json.RawMessage `json:"artifact"`
}

// decodeEntry splits a stored blob into its backend kind and artifact.
// Legacy entries (raw model JSON, no envelope) decode as KindAERO.
func decodeEntry(blob []byte) (kind string, artifact []byte, err error) {
	var e registryEntry
	if uerr := json.Unmarshal(blob, &e); uerr != nil {
		return "", nil, fmt.Errorf("parse registry entry: %w", uerr)
	}
	if e.Kind == "" {
		return core.KindAERO, blob, nil // legacy pre-envelope entry
	}
	if len(e.Artifact) == 0 {
		return "", nil, fmt.Errorf("registry entry of kind %q has no artifact", e.Kind)
	}
	return e.Kind, e.Artifact, nil
}

// Publish stores a fitted AERO model as the tenant's next version and
// returns the version id — PublishArtifact for the built-in kind.
func (r *Registry) Publish(tenant string, m *core.Model) (Version, error) {
	blob, err := m.MarshalBytes()
	if err != nil {
		return 0, fmt.Errorf("lifecycle: publish %q: %w", tenant, err)
	}
	return r.PublishArtifact(tenant, core.KindAERO, blob)
}

// PublishArtifact stores a trained backend artifact, tagged with its
// kind, as the tenant's next version and returns the version id. The
// on-disk write is atomic (the entry appears under its final name
// complete or not at all) and happens outside the registry lock: only
// the id reservation and the index update are serialized, so concurrent
// publishers for different tenants do not queue behind one fsync. A
// failed save burns its reserved id — gaps are fine, reuse is not.
func (r *Registry) PublishArtifact(tenant, kind string, artifact []byte) (Version, error) {
	if err := validTenant(tenant); err != nil {
		return 0, err
	}
	if kind == "" {
		return 0, fmt.Errorf("lifecycle: publish %q: empty backend kind", tenant)
	}
	if !json.Valid(artifact) {
		return 0, fmt.Errorf("lifecycle: publish %q: %s artifact is not valid JSON", tenant, kind)
	}
	blob, err := json.Marshal(registryEntry{Kind: kind, Artifact: artifact})
	if err != nil {
		return 0, fmt.Errorf("lifecycle: publish %q: %w", tenant, err)
	}
	if err := os.MkdirAll(filepath.Join(r.dir, tenant), 0o755); err != nil {
		return 0, fmt.Errorf("lifecycle: publish %q: %w", tenant, err)
	}
	r.mu.Lock()
	next := r.maxSeen[tenant] + 1
	r.maxSeen[tenant] = next
	r.mu.Unlock()
	if err := retryWrite(r.modelPath(tenant, next), blob, 0o644); err != nil {
		return 0, fmt.Errorf("lifecycle: publish %q %s: %w", tenant, next, err)
	}
	r.mu.Lock()
	r.versions[tenant] = insertVersion(r.versions[tenant], next)
	r.mu.Unlock()
	return next, nil
}

// insertVersion adds v to the ascending slice (concurrent publishers can
// finish their saves out of reservation order).
func insertVersion(vs []Version, v Version) []Version {
	i := sort.Search(len(vs), func(i int) bool { return vs[i] >= v })
	vs = append(vs, 0)
	copy(vs[i+1:], vs[i:])
	vs[i] = v
	return vs
}

// Latest loads the tenant's newest loadable AERO model. Corrupt entries
// are quarantined and skipped, falling back to older versions;
// ErrNoVersions is returned once none remain. A loadable newest entry of
// a different backend kind is an error (not corruption) — callers
// serving non-AERO tenants use LatestArtifact. The model parse runs
// outside the registry lock.
func (r *Registry) Latest(tenant string) (*core.Model, Version, error) {
	kind, artifact, v, err := r.LatestArtifact(tenant)
	if err != nil {
		return nil, 0, err
	}
	if kind != core.KindAERO {
		return nil, 0, fmt.Errorf("lifecycle: tenant %q serves backend kind %q; use LatestArtifact", tenant, kind)
	}
	m, err := core.LoadBytes(artifact)
	if err != nil {
		// The envelope decoded but the artifact inside is bad: quarantine
		// and fall back, exactly as a pre-envelope corrupt model would.
		r.quarantine(tenant, v)
		return r.Latest(tenant)
	}
	return m, v, nil
}

// LatestArtifact returns the tenant's newest loadable entry as its
// backend kind tag plus the raw artifact. Corrupt entries are
// quarantined and skipped, falling back to older versions; ErrNoVersions
// is returned once none remain.
func (r *Registry) LatestArtifact(tenant string) (kind string, artifact []byte, v Version, err error) {
	if terr := validTenant(tenant); terr != nil {
		return "", nil, 0, terr
	}
	for {
		r.mu.Lock()
		vs := r.versions[tenant]
		if len(vs) == 0 {
			r.mu.Unlock()
			return "", nil, 0, fmt.Errorf("%w for tenant %q", ErrNoVersions, tenant)
		}
		v = vs[len(vs)-1]
		r.mu.Unlock()
		kind, artifact, err = r.loadVersion(tenant, v)
		if err == nil {
			return kind, artifact, v, nil
		}
		if !errors.Is(err, errEntryCorrupt) {
			return "", nil, 0, err
		}
	}
}

// Load loads one specific published version of a tenant's AERO model. A
// corrupt entry is quarantined and reported as an error.
func (r *Registry) Load(tenant string, v Version) (*core.Model, error) {
	kind, artifact, err := r.LoadArtifact(tenant, v)
	if err != nil {
		return nil, err
	}
	if kind != core.KindAERO {
		return nil, fmt.Errorf("lifecycle: version %s of %q is backend kind %q; use LoadArtifact", v, tenant, kind)
	}
	m, err := core.LoadBytes(artifact)
	if err != nil {
		r.quarantine(tenant, v)
		return nil, fmt.Errorf("%w: version %s of %q: %v", errEntryCorrupt, v, tenant, err)
	}
	return m, nil
}

// LoadArtifact loads one specific published version as its backend kind
// tag plus the raw artifact. A corrupt entry is quarantined and reported
// as an error.
func (r *Registry) LoadArtifact(tenant string, v Version) (kind string, artifact []byte, err error) {
	if terr := validTenant(tenant); terr != nil {
		return "", nil, terr
	}
	r.mu.Lock()
	found := false
	for _, have := range r.versions[tenant] {
		if have == v {
			found = true
			break
		}
	}
	r.mu.Unlock()
	if !found {
		return "", nil, fmt.Errorf("lifecycle: tenant %q has no version %s", tenant, v)
	}
	return r.loadVersion(tenant, v)
}

// errEntryCorrupt marks load failures caused by the entry's content (the
// entry was quarantined), as opposed to transient I/O trouble.
var errEntryCorrupt = errors.New("lifecycle: corrupt registry entry")

// loadVersion reads and decodes one entry's envelope. The read and the
// parse fail differently on purpose: a read error (fd exhaustion,
// permissions, an NFS blip) is retried with backoff and then returned
// as-is — quarantining on it would permanently discard a healthy entry
// over a transient condition — while a decode error means the bytes
// themselves are bad, so the entry is quarantined.
func (r *Registry) loadVersion(tenant string, v Version) (kind string, artifact []byte, err error) {
	p := r.modelPath(tenant, v)
	blob, err := retryRead(p)
	if errors.Is(err, fs.ErrNotExist) {
		// Deleted behind the registry's back: gone is gone — drop the
		// entry so Latest falls back instead of failing forever.
		r.quarantine(tenant, v)
		return "", nil, fmt.Errorf("%w: version %s of %q vanished", errEntryCorrupt, v, tenant)
	}
	if err != nil {
		return "", nil, fmt.Errorf("lifecycle: read version %s of %q: %w", v, tenant, err)
	}
	kind, artifact, err = decodeEntry(blob)
	if err != nil {
		r.quarantine(tenant, v)
		return "", nil, fmt.Errorf("%w: version %s of %q: %v", errEntryCorrupt, v, tenant, err)
	}
	return kind, artifact, nil
}

// quarantine renames a version that failed to load aside (so it can be
// inspected) and drops it from the listing. Ids are never reissued, so
// the .corrupt name is unique and preserved evidence is never clobbered.
func (r *Registry) quarantine(tenant string, v Version) {
	p := r.modelPath(tenant, v)
	os.Rename(p, p+corruptSuffix) // best effort: dropping the entry is what matters
	r.mu.Lock()
	vs := r.versions[tenant]
	for i, have := range vs {
		if have == v {
			r.versions[tenant] = append(vs[:i], vs[i+1:]...)
			break
		}
	}
	r.mu.Unlock()
}

// Versions lists a tenant's published versions in ascending order (the
// per-tenant manifest). The slice is a copy owned by the caller.
func (r *Registry) Versions(tenant string) []Version {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Version(nil), r.versions[tenant]...)
}

// Tenants lists every tenant with at least one published version, sorted.
func (r *Registry) Tenants() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for tenant, vs := range r.versions {
		if len(vs) > 0 {
			out = append(out, tenant)
		}
	}
	sort.Strings(out)
	return out
}

// SaveState checkpoints a warm detector-state blob (see
// core.StreamDetector.SnapshotState) for the tenant, atomically replacing
// any previous checkpoint.
func (r *Registry) SaveState(tenant string, blob []byte) error {
	if err := validTenant(tenant); err != nil {
		return err
	}
	tdir := filepath.Join(r.dir, tenant)
	if err := os.MkdirAll(tdir, 0o755); err != nil {
		return fmt.Errorf("lifecycle: save state %q: %w", tenant, err)
	}
	if err := retryWrite(filepath.Join(tdir, stateFile), blob, 0o644); err != nil {
		return fmt.Errorf("lifecycle: save state %q: %w", tenant, err)
	}
	return nil
}

// LoadState returns the tenant's checkpointed detector state, or an error
// wrapping fs.ErrNotExist when none has been saved.
func (r *Registry) LoadState(tenant string) ([]byte, error) {
	if err := validTenant(tenant); err != nil {
		return nil, err
	}
	blob, err := retryRead(filepath.Join(r.dir, tenant, stateFile))
	if err != nil {
		return nil, fmt.Errorf("lifecycle: load state %q: %w", tenant, err)
	}
	return blob, nil
}
