package lifecycle_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aero/internal/backend"
	"aero/internal/core"
	"aero/internal/dataset"
	"aero/internal/lifecycle"
)

func artifactTestData() *dataset.Dataset {
	return dataset.SyntheticConfig{
		Name: "artifacts", N: 3, TrainLen: 400, TestLen: 200,
		NoiseVariates: 2, AnomalySegments: 1, NoisePct: 3,
		VariableFrac: 0.5, Seed: 23,
	}.Generate()
}

// TestRegistryTypedArtifacts publishes artifacts of several backend
// kinds into one registry and checks the kind tags round-trip through
// LatestArtifact/LoadArtifact, and that the model-typed accessors reject
// non-AERO entries instead of mis-parsing them.
func TestRegistryTypedArtifacts(t *testing.T) {
	d := artifactTestData()
	reg, err := lifecycle.OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"sr", "tm", "fluxev"} {
		artifact, err := backend.Train(kind, d.Train, backend.SmallOptions())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := reg.PublishArtifact("field", kind, artifact); err != nil {
			t.Fatal(err)
		}
		gotKind, gotArt, _, err := reg.LatestArtifact("field")
		if err != nil {
			t.Fatal(err)
		}
		if gotKind != kind || string(gotArt) != string(artifact) {
			t.Fatalf("round-trip changed entry: kind %q", gotKind)
		}
		// The artifact must open into a serving backend.
		if _, err := backend.Open(gotKind, gotArt); err != nil {
			t.Fatal(err)
		}
	}
	// Model-typed access to a non-AERO tenant names the actual kind.
	if _, _, err := reg.Latest("field"); err == nil || !strings.Contains(err.Error(), "fluxev") {
		t.Fatalf("Latest on a fluxev tenant: %v", err)
	}
	vs := reg.Versions("field")
	if len(vs) != 3 {
		t.Fatalf("expected 3 versions, have %v", vs)
	}
	if _, _, err := reg.LoadArtifact("field", vs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load("field", vs[0]); err == nil {
		t.Fatal("Load mis-parsed an sr artifact as a model")
	}
	// Bad publishes are rejected up front.
	if _, err := reg.PublishArtifact("field", "", []byte("{}")); err == nil {
		t.Fatal("empty kind accepted")
	}
	if _, err := reg.PublishArtifact("field", "sr", []byte("not json")); err == nil {
		t.Fatal("non-JSON artifact accepted")
	}
}

// TestRegistryLegacyEntries pins backward compatibility: raw model JSON
// written by the pre-envelope registry (no kind tag) still loads, both
// through Latest and through LatestArtifact (as kind "aero").
func TestRegistryLegacyEntries(t *testing.T) {
	d := artifactTestData()
	cfg := core.SmallConfig()
	cfg.LongWindow = 24
	cfg.ShortWindow = 8
	cfg.ModelDim = 8
	cfg.FFNHidden = 16
	cfg.MaxEpochs = 1
	cfg.TrainStride = 24
	m, err := core.New(cfg, d.Train.N())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(d.Train); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	// Write the entry the way the pre-envelope registry did: the model
	// JSON itself under the version filename.
	if err := os.MkdirAll(filepath.Join(dir, "old"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(filepath.Join(dir, "old", "v00000001.json")); err != nil {
		t.Fatal(err)
	}
	reg, err := lifecycle.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	kind, artifact, v, err := reg.LatestArtifact("old")
	if err != nil {
		t.Fatal(err)
	}
	if kind != core.KindAERO || v != 1 {
		t.Fatalf("legacy entry decoded as kind %q v%d", kind, v)
	}
	if _, err := core.LoadBytes(artifact); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Latest("old"); err != nil {
		t.Fatal(err)
	}
	// New publishes into the same tenant continue the version sequence.
	if _, err := reg.Publish("old", m); err != nil {
		t.Fatal(err)
	}
	if _, _, v, err = reg.LatestArtifact("old"); err != nil || v != 2 {
		t.Fatalf("post-legacy publish: v%d, %v", v, err)
	}
}

// TestRetrainerBackendTrainer runs the retrainer with a per-backend
// Trainer instead of the AERO path: results carry the kind + artifact,
// versions land in the registry, and the artifact swaps into a serving
// backend.
func TestRetrainerBackendTrainer(t *testing.T) {
	d := artifactTestData()
	reg, err := lifecycle.OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	results := make(chan lifecycle.Result, 4)
	rt, err := lifecycle.NewRetrainer(lifecycle.RetrainerConfig{
		Registry: reg,
		Source:   func(string) (*dataset.Series, error) { return d.Train, nil },
		Train: func(_ string, _ int, series *dataset.Series) (string, []byte, error) {
			artifact, terr := backend.Train("fluxev", series, backend.SmallOptions())
			return "fluxev", artifact, terr
		},
		OnResult: func(res lifecycle.Result) { results <- res },
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Register("field")
	rt.Start()
	if !rt.Trigger("field") {
		t.Fatal("trigger rejected")
	}
	res := <-results
	rt.Close()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Kind != "fluxev" || res.Model != nil || len(res.Artifact) == 0 {
		t.Fatalf("result %+v: want a fluxev artifact and no model", res)
	}
	kind, artifact, v, err := reg.LatestArtifact("field")
	if err != nil || kind != "fluxev" || v != res.Version {
		t.Fatalf("registry: kind %q v%d, %v", kind, v, err)
	}
	det, err := backend.Open("fluxev", artifact)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.SwapArtifact(res.Artifact); err != nil {
		t.Fatal(err)
	}
}

// TestRetrainerRequiresTrainerOrConfig pins the validation seam.
func TestRetrainerRequiresTrainerOrConfig(t *testing.T) {
	reg, err := lifecycle.OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, err = lifecycle.NewRetrainer(lifecycle.RetrainerConfig{
		Registry: reg,
		Source:   func(string) (*dataset.Series, error) { return nil, errors.New("unused") },
	})
	if err == nil {
		t.Fatal("retrainer accepted neither Config nor Train")
	}
}
