package lifecycle

import (
	"errors"
	"io/fs"
	"os"
	"time"

	"aero/internal/core"
)

// Registry IO runs under a bounded retry with linear backoff: a catalog
// deployment keeps its registry on shared storage, where a publish or a
// restore hitting one EIO/ENFILE blip should not burn a version id or
// abort a tenant restart. Only plausibly-transient failures are retried —
// a missing file is a fact, and a decode error is handled by the
// quarantine path, not here.
const ioAttempts = 3

// ioBackoff is the wait after the first failed attempt; attempt k waits
// k×ioBackoff. A variable so tests can shrink it.
var ioBackoff = 5 * time.Millisecond

// readFile and writeFileAtomic are the underlying IO, injectable so
// tests can script transient failures.
var (
	readFile        = os.ReadFile
	writeFileAtomic = core.WriteFileAtomic
)

// retriable reports whether an IO error is worth another attempt.
// fs.ErrNotExist is permanent: retrying cannot make a file appear, and
// callers fold "missing" into their own semantics (quarantine, first-run).
func retriable(err error) bool {
	return err != nil && !errors.Is(err, fs.ErrNotExist)
}

// retryRead reads path, retrying transient failures up to ioAttempts.
func retryRead(path string) ([]byte, error) {
	var blob []byte
	var err error
	for attempt := 1; ; attempt++ {
		blob, err = readFile(path)
		if err == nil || !retriable(err) || attempt == ioAttempts {
			return blob, err
		}
		time.Sleep(time.Duration(attempt) * ioBackoff)
	}
}

// retryWrite writes path atomically, retrying transient failures up to
// ioAttempts. WriteFileAtomic cleans up its temp file on failure, so a
// retry never observes a partial write.
func retryWrite(path string, blob []byte, perm os.FileMode) error {
	var err error
	for attempt := 1; ; attempt++ {
		err = writeFileAtomic(path, blob, perm)
		if err == nil || !retriable(err) || attempt == ioAttempts {
			return err
		}
		time.Sleep(time.Duration(attempt) * ioBackoff)
	}
}
