package engine_test

import (
	"testing"

	"aero/internal/backend"
	"aero/internal/core"
	"aero/internal/engine"
)

// openIdentityBackend opens one serving instance for the bit-identity
// test: the kind's cold backend, optionally DSPOT-wrapped (calibrated on
// the fixture's training split — the deterministic calibration makes
// twin instances exact clones).
func openIdentityBackend(t *testing.T, spec backend.Spec, artifact []byte, adaptive bool) core.StreamBackend {
	t.Helper()
	if adaptive {
		stage, err := backend.OpenAdaptive(spec, artifact, backend.DefaultDSPOTConfig(), fixD.Train)
		if err != nil {
			t.Fatal(err)
		}
		return stage
	}
	b, err := spec.Open(artifact)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestEngineBackendMatchesSequentialReplay extends the engine's
// equivalence contract to every registered backend kind, static and
// DSPOT-wrapped: the sharded worker-pool pipeline must produce exactly
// the alarms sequential pushes through a twin backend produce — same
// frames, same order, bit-identical scores. CI runs each kind's subtree
// in a -race matrix step.
func TestEngineBackendMatchesSequentialReplay(t *testing.T) {
	m, _ := fixture(t)
	series := tenantSeries(0).Test
	opts := backend.Options{AERO: fixtureConfig(), Stream: backend.SmallOptions().Stream}

	totalAlarms := 0
	for _, kind := range backend.Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			spec, ok := backend.Get(kind)
			if !ok {
				t.Fatalf("kind %s not registered", kind)
			}
			var artifact []byte
			var err error
			if kind == core.KindAERO {
				// Reuse the shared fixture model instead of re-training.
				if artifact, err = m.MarshalBytes(); err != nil {
					t.Fatal(err)
				}
			} else if artifact, err = spec.Train(fixD.Train, opts); err != nil {
				t.Fatal(err)
			}

			for _, mode := range []struct {
				name     string
				adaptive bool
			}{{"static", false}, {"dspot", true}} {
				mode := mode
				t.Run(mode.name, func(t *testing.T) {
					// Sequential reference.
					ref := openIdentityBackend(t, spec, artifact, mode.adaptive)
					var want []core.Alarm
					frame := core.Frame{Magnitudes: make([]float64, series.N())}
					for ti := 0; ti < series.Len(); ti++ {
						frame.Time = series.Time[ti]
						for v := 0; v < series.N(); v++ {
							frame.Magnitudes[v] = series.Data[v][ti]
						}
						alarms, err := ref.Push(frame)
						if err != nil {
							t.Fatal(err)
						}
						want = append(want, alarms...)
					}

					// Engine path with a twin instance.
					e := engine.New(engine.Config{Shards: 3, Workers: 4, QueueDepth: 16, BatchSize: 4})
					sub, err := e.SubscribeBackend("twin", openIdentityBackend(t, spec, artifact, mode.adaptive))
					if err != nil {
						t.Fatal(err)
					}
					got, wg := collectAlarms(e)
					for ti := 0; ti < series.Len(); ti++ {
						frame.Time = series.Time[ti]
						for v := 0; v < series.N(); v++ {
							frame.Magnitudes[v] = series.Data[v][ti]
						}
						if err := e.Ingest("twin", frame); err != nil {
							t.Fatal(err)
						}
					}
					e.Flush()
					if st := sub.Stats(); st.Frames != uint64(series.Len()) || !st.Ready {
						t.Fatalf("stats %+v, want %d frames and ready", st, series.Len())
					}
					e.Close()
					wg.Wait()

					g := got["twin"]
					if len(g) != len(want) {
						t.Fatalf("engine produced %d alarms, sequential replay %d", len(g), len(want))
					}
					for k := range g {
						if g[k] != want[k] {
							t.Fatalf("alarm %d: engine %+v != replay %+v", k, g[k], want[k])
						}
					}
					totalAlarms += len(want)
				})
			}
		})
	}
	// The contract is only meaningful if the feed alarms somewhere.
	if totalAlarms == 0 {
		t.Fatal("no backend raised any alarm; equivalence suite is vacuous")
	}
}

// TestSubscriptionBackendCapabilities covers the capability seams of a
// non-AERO tenant: model swaps and graph snapshots are cleanly rejected,
// artifact swaps land and count, and the kind tag is visible.
func TestSubscriptionBackendCapabilities(t *testing.T) {
	m, _ := fixture(t)
	artifact, err := backend.Train("fluxev", fixD.Train, backend.SmallOptions())
	if err != nil {
		t.Fatal(err)
	}
	det, err := backend.Open("fluxev", artifact)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(engine.Config{Shards: 1, Workers: 1})
	sub, err := e.SubscribeBackend("flux", det)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Kind() != "fluxev" {
		t.Fatalf("kind %q", sub.Kind())
	}
	if err := sub.Swap(m); err == nil {
		t.Fatal("model swap accepted by a fluxev tenant")
	}
	if _, err := sub.GraphSnapshot(); err == nil {
		t.Fatal("graph snapshot served by a fluxev tenant")
	}
	if st := sub.Stats(); st.Swaps != 0 {
		t.Fatalf("failed swap counted: %+v", st)
	}
	if err := sub.SwapArtifact(artifact); err != nil {
		t.Fatal(err)
	}
	if st := sub.Stats(); st.Swaps != 1 {
		t.Fatalf("artifact swap not counted: %+v", st)
	}

	// A DSPOT-wrapped AERO tenant keeps the shared-weights model-swap
	// fast path: the stage passes Swap through to the inner detector.
	aeroArtifact, err := m.MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	aeroSpec, _ := backend.Get(core.KindAERO)
	stage, err := backend.OpenAdaptive(aeroSpec, aeroArtifact, backend.DefaultDSPOTConfig(), fixD.Train)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := e.SubscribeBackend("aero-dspot", stage)
	if err != nil {
		t.Fatal(err)
	}
	if err := wrapped.Swap(m); err != nil {
		t.Fatal(err)
	}
	if st := wrapped.Stats(); st.Swaps != 1 {
		t.Fatalf("model swap through the stage not counted: %+v", st)
	}

	_, wg := collectAlarms(e)
	e.Close()
	wg.Wait()
}
