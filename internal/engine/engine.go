// Package engine provides a sharded, multi-tenant streaming detection
// front end over the core.StreamBackend contract — the production shape
// of the paper's §III-F online mode. A survey telescope like GWAC emits
// one frame across thousands of stars every ~15 s; one backend (an AERO
// StreamDetector, a streaming baseline adapter, or a DSPOT-wrapped
// composition) handles one field (tenant). The engine owns many such
// tenants at once:
//
//   - each subscription (tenant) is pinned to one of N shards, so its
//     frames are always scored in arrival order;
//   - a worker pool sized to GOMAXPROCS drains shards in batches, so
//     scoring work from many tenants keeps every core busy without
//     oversubscribing (per-backend scoring stays allocation-free on the
//     backend's own scratch);
//   - ingest is backpressure-aware: per-shard queues are bounded, and both
//     the Ingest call and the Samples channel block — rather than drop —
//     when a shard is saturated;
//   - Alarms is a single fan-in channel; a slow consumer backpressures the
//     workers and, transitively, the producers. A frame accepted by Ingest
//     is never silently lost; the asynchronous Samples path is best-effort
//     only across shutdown (see Samples).
//
// Per-shard statistics (frames/s, alarm and error counts, queue depth) and
// per-tenant graph snapshots are available at any time for monitoring.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aero/internal/core"
	"aero/internal/metrics"
)

// Config parameterizes an Engine. The zero value is usable: every field
// defaults to a sensible production setting.
type Config struct {
	// Shards is the number of independent frame queues; subscriptions are
	// balanced across them. Defaults to 2×GOMAXPROCS so the worker pool
	// rarely idles on an unlucky tenant distribution.
	Shards int
	// Workers is the scoring worker-pool size. Defaults to GOMAXPROCS.
	Workers int
	// QueueDepth bounds each shard's pending-frame queue; a full queue
	// blocks producers (backpressure). Defaults to 256.
	QueueDepth int
	// BatchSize caps how many frames a worker drains from one shard per
	// visit, bounding tenant-to-tenant latency skew. Defaults to 32.
	BatchSize int
	// AlarmBuffer is the capacity of the fan-in Alarms channel.
	// Defaults to 1024.
	AlarmBuffer int
	// IngestBuffer is the capacity of the Samples channel. Defaults to 1024.
	IngestBuffer int
	// ErrorBuffer is the capacity of the Errors channel. Frame errors
	// beyond it are dropped from the channel but always counted: scoring
	// errors in their shard's stats, routing errors in Totals, and the
	// drops themselves in ErrorsDropped. Defaults to 64.
	ErrorBuffer int
	// Hygiene configures the frame-validation stage ahead of every
	// backend push. The zero value is off (frames reach backends
	// verbatim).
	Hygiene HygieneConfig
	// Health configures per-subscription fault supervision (panic
	// counting, quarantine, fallback, probation). The zero value enables
	// supervision with defaults; set Health.Disable to turn the state
	// machine off.
	Health HealthConfig
	// Metrics, when non-nil, receives the engine's observability series:
	// frame/alarm/error counters, per-shard queue gauges, per-kind score
	// and tail latency histograms, incremental-path and refit counters —
	// and enables the per-tenant frame-trace ring (see Trace). Nil (the
	// default) disables observability entirely; the hot path then pays
	// only nil-checks.
	Metrics *metrics.Registry
	// Trace configures the per-tenant flight recorder; effective only
	// when Metrics is set.
	Trace TraceConfig
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 2 * runtime.GOMAXPROCS(0)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.BatchSize > c.QueueDepth {
		c.BatchSize = c.QueueDepth
	}
	if c.AlarmBuffer <= 0 {
		c.AlarmBuffer = 1024
	}
	if c.IngestBuffer <= 0 {
		c.IngestBuffer = 1024
	}
	if c.ErrorBuffer <= 0 {
		c.ErrorBuffer = 64
	}
	c.Health = c.Health.withDefaults()
	return c
}

// Sample is one frame addressed to a subscription, the unit of the
// channel-based ingest path.
type Sample struct {
	Sub   string
	Frame core.Frame
}

// Alarm is a threshold crossing attributed to its subscription.
type Alarm struct {
	Sub string
	core.Alarm
}

// FrameError reports a frame the engine could not score (unknown tenant,
// wrong width, non-monotonic time).
type FrameError struct {
	Sub  string
	Time float64
	Err  error
}

// Sentinel errors returned by Subscribe and Ingest.
var (
	ErrClosed                = errors.New("engine: closed")
	ErrUnknownSubscription   = errors.New("engine: unknown subscription")
	ErrDuplicateSubscription = errors.New("engine: duplicate subscription")
)

// item is one queued frame; Magnitudes live in a shard-owned buffer that
// is recycled after scoring.
type item struct {
	sub  *subscription
	time float64
	mags []float64
}

// subscription is the engine-internal state of one tenant. mu serializes
// backend access between the draining worker and snapshot readers; the
// fault-containment fields (health position, backoff ladder, hygiene
// cursors, fallback) are written only under mu by the draining worker —
// at most one worker drains a shard at a time, so there is exactly one
// writer.
type subscription struct {
	id    string
	shard *shard
	n     int

	mu       sync.Mutex
	det      core.StreamBackend
	fallback core.StreamBackend // warm standby; serves while det is quarantined

	hygiene HygieneConfig
	health  HealthConfig

	healthState  int32 // atomic HealthState: written under mu, read lock-free by stats
	faultsConsec int
	backoff      int     // frames left in the current quarantine
	backoffBase  int     // doubling backoff ladder position, in frames
	probeClean   int     // consecutive clean probes this probation
	jitter       float64 // deterministic per-tenant fraction in [0,1)

	lastTime float64 // hygiene time cursor (newest scored frame time)
	seenTime bool
	lastGood []float64 // per-variate last finite magnitude (NaN = never)
	repaired []bool    // per-frame scratch: variates rewritten by hygiene

	// Observability (nil / zero when Config.Metrics is unset): the trace
	// ring and kind-labeled latency series, plus cached backend
	// capability views. obs is written only at subscribe time; its seq
	// and the splitter stamp are touched only by the draining worker.
	obs      *subObs
	splitter stageSplitter
	incStats incrementalStatser

	frames  uint64 // atomic
	alarms  uint64 // atomic
	blocked uint64 // atomic: alarm emissions that found the fan-in channel full
	swaps   uint64 // atomic

	faultsTotal     uint64 // atomic: all faults (panics, errors, bad scores, latency)
	panics          uint64 // atomic: faults that were recovered panics
	degradations    uint64 // atomic: healthy → degraded transitions
	quarantines     uint64 // atomic: → quarantined transitions
	probations      uint64 // atomic: quarantined → probation transitions
	recoveries      uint64 // atomic: probation → healthy transitions
	hygieneDropped  uint64 // atomic: frames rejected by the hygiene stage
	hygieneRepaired uint64 // atomic: frames with variates repaired in place
	fallbackFrames  uint64 // atomic: frames served by the fallback backend
	fallbackAlarms  uint64 // atomic: alarms emitted by the fallback backend
	fallbackErrs    uint64 // atomic: fallback pushes that errored or panicked
}

// shard is one bounded FIFO of pending frames plus the tenants pinned to
// it. At most one worker drains a shard at a time (the scheduled flag),
// which is what guarantees per-tenant ordering.
type shard struct {
	id   int
	mu   sync.Mutex
	cond *sync.Cond // signalled when queue space frees up or the shard closes

	queue       []item // fixed-capacity ring
	head, count int
	scheduled   bool
	closed      bool

	free  [][]float64 // recycled magnitude buffers
	batch []item      // drain staging, owned by the active drainer

	subsN     int
	frames    uint64
	alarmsN   uint64
	blockedN  uint64 // alarm emissions that found the fan-in channel full
	errsN     uint64
	droppedN  uint64  // frame errors that found the Errors channel full
	rate      float64 // EWMA of frames/s, updated per drain
	lastDrain time.Time
}

func (sh *shard) getBuf(n int) []float64 {
	if len(sh.free) > 0 {
		b := sh.free[len(sh.free)-1]
		sh.free = sh.free[:len(sh.free)-1]
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]float64, n)
}

func (sh *shard) putBuf(b []float64) { sh.free = append(sh.free, b) }

// Engine routes frames from many tenants to shard queues and scores them
// on a fixed worker pool. Create one with New, register tenants with
// Subscribe, feed frames via Ingest or the Samples channel, and consume
// the Alarms channel continuously.
type Engine struct {
	cfg    Config
	shards []*shard
	ready  chan *shard
	alarms chan Alarm
	errs   chan FrameError
	in     chan Sample

	mu   sync.RWMutex // guards subs
	subs map[string]*subscription

	closed atomic.Bool
	done   chan struct{} // closed first on shutdown: stops the router
	stop   chan struct{} // closed after drain: stops idle workers

	pendMu   sync.Mutex
	pendCond *sync.Cond
	pending  int

	routerErrs    atomic.Uint64 // frames that failed routing (no shard saw them)
	routerDropped atomic.Uint64 // routing errors dropped from the Errors channel

	tapped   atomic.Bool // an alarm tap owns the Alarms channel
	tapWG    sync.WaitGroup
	workerWG sync.WaitGroup
	routerWG sync.WaitGroup
	start    time.Time

	obs *engineObs // nil when Config.Metrics is unset
}

// New starts an engine with cfg's worker pool and shard layout.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:    cfg,
		ready:  make(chan *shard, cfg.Shards),
		alarms: make(chan Alarm, cfg.AlarmBuffer),
		errs:   make(chan FrameError, cfg.ErrorBuffer),
		in:     make(chan Sample, cfg.IngestBuffer),
		subs:   make(map[string]*subscription),
		done:   make(chan struct{}),
		stop:   make(chan struct{}),
		start:  time.Now(),
	}
	e.pendCond = sync.NewCond(&e.pendMu)
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{
			id:    i,
			queue: make([]item, cfg.QueueDepth),
			batch: make([]item, 0, cfg.BatchSize),
		}
		sh.cond = sync.NewCond(&sh.mu)
		e.shards = append(e.shards, sh)
	}
	if cfg.Metrics != nil {
		e.obs = e.newEngineObs(cfg.Metrics, cfg.Trace)
	}
	for i := 0; i < cfg.Workers; i++ {
		e.workerWG.Add(1)
		go e.worker()
	}
	e.routerWG.Add(1)
	go e.router()
	return e
}

// Subscribe registers a tenant backed by the fitted AERO model and pins
// it to the least-loaded shard. Many subscriptions may share one model:
// scoring only reads the trained weights, while all mutable state lives
// in the per-tenant detector.
func (e *Engine) Subscribe(id string, m *core.Model) (*Subscription, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	// Single-slot detectors: the worker pool supplies cross-tenant
	// parallelism, so per-frame fan-out inside a detector would only
	// oversubscribe cores and allocate per-push goroutines.
	det, err := core.NewStreamDetectorWorkers(m, 1)
	if err != nil {
		return nil, err
	}
	return e.SubscribeBackend(id, det)
}

// SubscribeBackend registers a tenant served by any StreamBackend — an
// AERO detector, a streaming baseline adapter, or a DSPOT-wrapped
// composition — and pins it to the least-loaded shard. The engine takes
// ownership of the backend's mutable state: every later access goes
// through the subscription lock.
func (e *Engine) SubscribeBackend(id string, det core.StreamBackend) (*Subscription, error) {
	if det == nil {
		return nil, fmt.Errorf("engine: nil backend for %q", id)
	}
	if e.closed.Load() {
		return nil, ErrClosed
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// Re-check under the lock: Close flips the flag while holding e.mu,
	// so a subscription can no longer slip onto a closed engine.
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if _, ok := e.subs[id]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateSubscription, id)
	}
	sh := e.shards[0]
	for _, cand := range e.shards[1:] {
		if cand.subsCount() < sh.subsCount() {
			sh = cand
		}
	}
	sub := &subscription{
		id: id, shard: sh, n: det.Variates(), det: det,
		hygiene:     e.cfg.Hygiene,
		health:      e.cfg.Health,
		backoffBase: e.cfg.Health.BackoffFrames,
		jitter:      jitterFrac(id),
		lastGood:    make([]float64, det.Variates()),
		repaired:    make([]bool, det.Variates()),
	}
	for v := range sub.lastGood {
		sub.lastGood[v] = nan
	}
	e.attachObs(sub)
	e.subs[id] = sub
	sh.mu.Lock()
	sh.subsN++
	sh.mu.Unlock()
	return &Subscription{ID: id, sub: sub}, nil
}

func (sh *shard) subsCount() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.subsN
}

// Ingest routes one frame to its tenant's shard, blocking while the shard
// queue is full (backpressure). The magnitudes are copied, so the caller
// may reuse the slice immediately.
func (e *Engine) Ingest(id string, f core.Frame) error {
	if e.closed.Load() {
		return ErrClosed
	}
	e.mu.RLock()
	sub := e.subs[id]
	e.mu.RUnlock()
	if sub == nil {
		return fmt.Errorf("%w: %q", ErrUnknownSubscription, id)
	}
	if len(f.Magnitudes) != sub.n {
		return fmt.Errorf("engine: frame for %q has %d stars, detector expects %d", id, len(f.Magnitudes), sub.n)
	}
	return e.enqueue(sub, f)
}

func (e *Engine) enqueue(sub *subscription, f core.Frame) error {
	sh := sub.shard
	sh.mu.Lock()
	for sh.count == len(sh.queue) && !sh.closed {
		sh.cond.Wait()
	}
	if sh.closed {
		sh.mu.Unlock()
		return ErrClosed
	}
	// Count the frame as pending before it becomes visible to workers so
	// Flush/Close cannot observe an empty engine with this frame in flight.
	e.addPending(1)
	buf := sh.getBuf(len(f.Magnitudes))
	copy(buf, f.Magnitudes)
	slot := (sh.head + sh.count) % len(sh.queue)
	sh.queue[slot] = item{sub: sub, time: f.Time, mags: buf}
	sh.count++
	if !sh.scheduled {
		sh.scheduled = true
		e.ready <- sh // buffered to Shards; the scheduled flag caps it at one entry per shard
	}
	sh.mu.Unlock()
	return nil
}

// Samples returns the channel-based ingest path: a bounded channel whose
// sends park when the engine is saturated. Routing errors surface on
// Errors. Prefer closing the channel when the feed ends; samples still
// buffered when Close runs are reported on Errors as ErrClosed rather
// than scored, and sends after Close are not serviced.
func (e *Engine) Samples() chan<- Sample { return e.in }

// Alarms returns the fan-in alarm channel. It must be consumed
// continuously; it is closed by Close after all pending frames drain.
func (e *Engine) Alarms() <-chan Alarm { return e.alarms }

// ErrTapped is returned by Tap when an alarm tap is already installed.
var ErrTapped = errors.New("engine: alarm tap already installed")

// Tap installs fn as the engine's alarm consumer: a dedicated goroutine
// drains the fan-in Alarms channel and invokes fn once per alarm, in
// channel order. The tap takes ownership of the channel — do not also
// range over Alarms — and inherits its backpressure contract: a slow fn
// stalls the workers and, transitively, ingest. Alert-triage pipelines
// attach here (see internal/alerts.Attach).
//
// final, if non-nil, runs after the last alarm is delivered — i.e. once
// Close has drained the engine — so downstream stages can flush and
// close their own feeds. Close does not return until final has. At most
// one tap may be installed, before or while alarms flow.
func (e *Engine) Tap(fn func(Alarm), final func()) error {
	// Registration happens under e.mu — the lock Close holds while
	// flipping the closed flag — so a Tap racing Close either completes
	// its tapWG.Add before Close reaches tapWG.Wait, or observes closed
	// and is rejected; the WaitGroup never sees Add concurrent with Wait.
	e.mu.Lock()
	if e.closed.Load() {
		e.mu.Unlock()
		return ErrClosed
	}
	if !e.tapped.CompareAndSwap(false, true) {
		e.mu.Unlock()
		return ErrTapped
	}
	e.tapWG.Add(1)
	e.mu.Unlock()
	go func() {
		defer e.tapWG.Done()
		for a := range e.alarms {
			fn(a)
		}
		if final != nil {
			final()
		}
	}()
	return nil
}

// Errors returns the frame-error channel. Errors beyond its buffer are
// dropped from the channel (never from the counters: see Stats and
// Totals). Closed by Close.
func (e *Engine) Errors() <-chan FrameError { return e.errs }

// router services the Samples channel.
func (e *Engine) router() {
	defer e.routerWG.Done()
	for {
		select {
		case s, ok := <-e.in:
			if !ok {
				return
			}
			if err := e.Ingest(s.Sub, s.Frame); err != nil {
				e.routerErrs.Add(1)
				if !e.reportError(FrameError{Sub: s.Sub, Time: s.Frame.Time, Err: err}) {
					e.routerDropped.Add(1)
				}
			}
		case <-e.done:
			// Shutdown: samples still buffered in the channel can no
			// longer be scored; report them instead of dropping them
			// silently. Close keeps a counting receiver on the channel
			// afterwards, so late senders cannot deadlock.
			for {
				select {
				case s, ok := <-e.in:
					if !ok {
						return
					}
					e.routerErrs.Add(1)
					if !e.reportError(FrameError{Sub: s.Sub, Time: s.Frame.Time, Err: ErrClosed}) {
						e.routerDropped.Add(1)
					}
				default:
					return
				}
			}
		}
	}
}

// reportError offers fe to the Errors channel without blocking and
// reports whether it was delivered: scoring must never stall on a slow
// error consumer, but a dropped report is still counted (shard
// ErrorsDropped for scoring errors, the router's counter for routing
// errors) so saturation is visible instead of silent.
func (e *Engine) reportError(fe FrameError) bool {
	select {
	case e.errs <- fe:
		return true
	default: // never let a slow error consumer stall scoring
		return false
	}
}

// worker pulls scheduled shards and drains them until shutdown.
func (e *Engine) worker() {
	defer e.workerWG.Done()
	for {
		select {
		case sh := <-e.ready:
			e.drain(sh)
		case <-e.stop:
			return
		}
	}
}

// drain claims one batch from the shard, scores it outside the shard lock,
// emits alarms (blocking — alarm backpressure), then either reschedules
// the shard or parks it.
func (e *Engine) drain(sh *shard) {
	obsOn := e.obs != nil
	var drainStart int64
	if obsOn {
		drainStart = metrics.Now()
	}
	sh.mu.Lock()
	nb := sh.count
	if nb > cap(sh.batch) {
		nb = cap(sh.batch)
	}
	batch := sh.batch[:0]
	for i := 0; i < nb; i++ {
		batch = append(batch, sh.queue[sh.head])
		sh.queue[sh.head] = item{}
		sh.head = (sh.head + 1) % len(sh.queue)
	}
	sh.count -= nb
	sh.cond.Broadcast()
	sh.mu.Unlock()

	var alarmsN, blockedN, errsN, droppedN uint64
	for i := range batch {
		it := &batch[i]
		sub := it.sub
		// The frame's start stamp is taken BEFORE the subscription lock so
		// lock-wait contention shows up in the trace as its own stage
		// instead of silently inflating the score stage. t0 == 0 means the
		// frame is untimed (observability off and no latency watch).
		var t0 int64
		if obsOn || sub.health.LatencyThreshold > 0 {
			t0 = metrics.Now()
		}
		sub.mu.Lock()
		res := sub.score(it.time, it.mags, t0)
		sub.mu.Unlock()
		if res.err != nil {
			errsN++
			if !e.reportError(FrameError{Sub: sub.id, Time: it.time, Err: res.err}) {
				droppedN++
			}
		} else {
			atomic.AddUint64(&sub.frames, 1)
			for _, a := range res.alarms {
				atomic.AddUint64(&sub.alarms, 1)
				alarmsN++
				out := Alarm{Sub: sub.id, Alarm: a}
				select {
				case e.alarms <- out:
				default:
					// The fan-in channel is full: count the stall (the
					// consumer is the bottleneck, not scoring), then park on
					// the blocking send — backpressure, never loss.
					atomic.AddUint64(&sub.blocked, 1)
					blockedN++
					e.alarms <- out
				}
			}
		}
		if obsOn {
			// Histograms and the trace ring are fed after sub.mu is
			// released and after fan-in, outside every lock scoring holds.
			sub.recordFrame(it.time, &res, t0)
		}
	}
	if obsOn && len(batch) > 0 {
		e.obs.drain.Record(metrics.Now() - drainStart)
	}

	now := time.Now()
	sh.mu.Lock()
	for i := range batch {
		sh.putBuf(batch[i].mags)
	}
	sh.frames += uint64(len(batch))
	sh.alarmsN += alarmsN
	sh.blockedN += blockedN
	sh.errsN += errsN
	sh.droppedN += droppedN
	if !sh.lastDrain.IsZero() {
		if dt := now.Sub(sh.lastDrain).Seconds(); dt > 0 {
			inst := float64(len(batch)) / dt
			const alpha = 0.2
			if sh.rate == 0 {
				sh.rate = inst
			} else {
				sh.rate += alpha * (inst - sh.rate)
			}
		}
	}
	sh.lastDrain = now
	if sh.count > 0 {
		e.ready <- sh
	} else {
		sh.scheduled = false
	}
	sh.mu.Unlock()
	e.addPending(-len(batch))
}

func (e *Engine) addPending(d int) {
	e.pendMu.Lock()
	e.pending += d
	if e.pending == 0 {
		e.pendCond.Broadcast()
	}
	e.pendMu.Unlock()
}

// Flush blocks until every frame accepted so far by Ingest has been
// scored. Samples still in flight inside the Samples channel are not
// covered: they count only once the router hands them to a shard. The
// Alarms channel must be drained concurrently or Flush may never return.
func (e *Engine) Flush() {
	e.pendMu.Lock()
	for e.pending > 0 {
		e.pendCond.Wait()
	}
	e.pendMu.Unlock()
}

// Close shuts the engine down: new frames are rejected, queued frames are
// scored, then the worker pool stops and the Alarms/Errors channels close.
// Like Flush, it requires the Alarms consumer to keep draining until the
// channel closes. Close is idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	swapped := e.closed.CompareAndSwap(false, true)
	e.mu.Unlock()
	if !swapped {
		return
	}
	close(e.done)
	// Closing shards under their locks serializes against in-flight
	// enqueues: every accepted frame is already pending, every later one
	// is rejected. The broadcast also frees producers (the router
	// included) parked on a full queue, so it must precede the router
	// wait below.
	for _, sh := range e.shards {
		sh.mu.Lock()
		sh.closed = true
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}
	e.routerWG.Wait()
	// The router is gone; keep a receiver on the Samples channel so a
	// producer racing Close can never park forever on a send. Late
	// samples are counted as routing errors (the Errors channel is about
	// to close, so they cannot be reported there). The goroutine exits
	// when the producer closes the channel.
	go func() {
		for range e.in {
			e.routerErrs.Add(1)
		}
	}()
	e.Flush()
	close(e.stop)
	e.workerWG.Wait()
	close(e.alarms)
	close(e.errs)
	// With a tap installed, Close returning means the tap has consumed
	// every alarm and run its final hook — callers can read triage
	// results immediately.
	e.tapWG.Wait()
}
