package engine

import (
	"math"
	"testing"
)

// invalidatingBackend is a scriptBackend that records host-side cache
// invalidations, standing in for a backend with an incremental streaming
// path (AERO).
type invalidatingBackend struct {
	scriptBackend
	invalidations int
}

func (b *invalidatingBackend) InvalidateIncremental() { b.invalidations++ }

// TestHygieneRepairInvalidatesIncremental pins the hygiene→incremental
// wiring: a frame repaired in place (hold-last) must invalidate the
// backend's activation caches before it is scored, while clean and dropped
// frames must not.
func TestHygieneRepairInvalidatesIncremental(t *testing.T) {
	det := &invalidatingBackend{scriptBackend: scriptBackend{n: 2}}
	sub := mkSub("inv", det, HygieneConfig{Policy: HygieneHoldLast}, HealthConfig{Disable: true})

	if r := sub.score(1, []float64{0.5, 0.6}, 0); r.err != nil {
		t.Fatalf("clean frame: %v", r.err)
	}
	if det.invalidations != 0 {
		t.Fatalf("clean frame invalidated caches %d times", det.invalidations)
	}

	if r := sub.score(2, []float64{math.NaN(), 0.6}, 0); r.err != nil {
		t.Fatalf("repairable frame: %v", r.err)
	}
	if det.invalidations != 1 {
		t.Fatalf("repaired frame invalidated caches %d times, want 1", det.invalidations)
	}

	if r := sub.score(3, []float64{0.5, 0.6}, 0); r.err != nil {
		t.Fatalf("clean frame after repair: %v", r.err)
	}
	if det.invalidations != 1 {
		t.Fatalf("clean frame after repair invalidated caches; total %d", det.invalidations)
	}

	// A stale frame is dropped before reaching the backend: no repair, no
	// invalidation.
	if r := sub.score(3, []float64{0.5, 0.6}, 0); r.err == nil {
		t.Fatal("stale frame was not dropped")
	}
	if det.invalidations != 1 {
		t.Fatalf("dropped frame invalidated caches; total %d", det.invalidations)
	}
}
