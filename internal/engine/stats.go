package engine

import (
	"sync/atomic"
	"time"

	"aero/internal/tensor"
)

// ShardStats is a point-in-time snapshot of one shard's activity.
type ShardStats struct {
	// Shard is the shard index.
	Shard int
	// Subscriptions is the number of tenants pinned to the shard.
	Subscriptions int
	// Frames counts frames scored (including warmup frames).
	Frames uint64
	// Alarms counts alarms emitted.
	Alarms uint64
	// Errors counts frames rejected at scoring time.
	Errors uint64
	// QueueDepth is the number of frames currently waiting.
	QueueDepth int
	// FramesPerSec is an exponentially-weighted estimate of the shard's
	// recent processing rate (0 until two drains have happened).
	FramesPerSec float64
}

// Stats snapshots every shard.
func (e *Engine) Stats() []ShardStats {
	out := make([]ShardStats, len(e.shards))
	for i, sh := range e.shards {
		sh.mu.Lock()
		out[i] = ShardStats{
			Shard:         sh.id,
			Subscriptions: sh.subsN,
			Frames:        sh.frames,
			Alarms:        sh.alarmsN,
			Errors:        sh.errsN,
			QueueDepth:    sh.count,
			FramesPerSec:  sh.rate,
		}
		sh.mu.Unlock()
	}
	return out
}

// Totals aggregates all shards into one ShardStats (Shard is -1 and
// FramesPerSec is total frames over the engine's lifetime). Errors also
// includes frames that failed routing and so never reached a shard.
func (e *Engine) Totals() ShardStats {
	t := ShardStats{Shard: -1, Errors: e.routerErrs.Load()}
	for _, s := range e.Stats() {
		t.Subscriptions += s.Subscriptions
		t.Frames += s.Frames
		t.Alarms += s.Alarms
		t.Errors += s.Errors
		t.QueueDepth += s.QueueDepth
	}
	if el := time.Since(e.start).Seconds(); el > 0 {
		t.FramesPerSec = float64(t.Frames) / el
	}
	return t
}

// SubscriptionStats is a point-in-time snapshot of one tenant.
type SubscriptionStats struct {
	// Frames counts frames scored for this tenant.
	Frames uint64
	// Alarms counts alarms raised for this tenant.
	Alarms uint64
	// Ready reports whether the tenant's window is warm.
	Ready bool
	// Shard is the index of the shard the tenant is pinned to.
	Shard int
}

// Subscription is the caller's handle on one registered tenant.
type Subscription struct {
	// ID is the tenant identifier passed to Subscribe.
	ID  string
	sub *subscription
}

// Stats snapshots the tenant's counters.
func (s *Subscription) Stats() SubscriptionStats {
	s.sub.mu.Lock()
	ready := s.sub.det.Ready()
	s.sub.mu.Unlock()
	return SubscriptionStats{
		Frames: atomic.LoadUint64(&s.sub.frames),
		Alarms: atomic.LoadUint64(&s.sub.alarms),
		Ready:  ready,
		Shard:  s.sub.shard.id,
	}
}

// GraphSnapshot returns the tenant's current window-wise learned adjacency
// (live Fig. 8), serialized against scoring. It fails until the tenant's
// window is warm.
func (s *Subscription) GraphSnapshot() (*tensor.Dense, error) {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	return s.sub.det.GraphSnapshot()
}

// Threshold returns the tenant's calibrated alarm threshold.
func (s *Subscription) Threshold() float64 {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	return s.sub.det.Threshold()
}
