package engine

import (
	"fmt"
	"sync/atomic"
	"time"

	"aero/internal/core"
	"aero/internal/evt"
	"aero/internal/tensor"
)

// ShardStats is a point-in-time snapshot of one shard's activity.
type ShardStats struct {
	// Shard is the shard index.
	Shard int
	// Subscriptions is the number of tenants pinned to the shard.
	Subscriptions int
	// Frames counts frames scored (including warmup frames).
	Frames uint64
	// Alarms counts alarms emitted — the denominator of any downstream
	// triage reduction ratio.
	Alarms uint64
	// AlarmsBlocked counts alarm emissions that found the fan-in channel
	// full and had to park until the consumer caught up: a nonzero,
	// growing value means the alarm consumer — not scoring — is the
	// pipeline's bottleneck.
	AlarmsBlocked uint64
	// Errors counts frames rejected at scoring time (backend errors,
	// contained panics, hygiene drops, quarantine rejections).
	Errors uint64
	// ErrorsDropped counts frame-error reports that found the Errors
	// channel full and were dropped from it — the errors themselves are
	// still counted in Errors, but no FrameError was delivered. A growing
	// value means the error consumer is not keeping up.
	ErrorsDropped uint64
	// QueueDepth is the number of frames currently waiting.
	QueueDepth int
	// FramesPerSec is an exponentially-weighted estimate of the shard's
	// recent processing rate (0 until two drains have happened).
	FramesPerSec float64
}

// Stats snapshots every shard.
func (e *Engine) Stats() []ShardStats {
	out := make([]ShardStats, len(e.shards))
	for i, sh := range e.shards {
		sh.mu.Lock()
		out[i] = ShardStats{
			Shard:         sh.id,
			Subscriptions: sh.subsN,
			Frames:        sh.frames,
			Alarms:        sh.alarmsN,
			AlarmsBlocked: sh.blockedN,
			Errors:        sh.errsN,
			ErrorsDropped: sh.droppedN,
			QueueDepth:    sh.count,
			FramesPerSec:  sh.rate,
		}
		sh.mu.Unlock()
	}
	return out
}

// Totals aggregates all shards into one ShardStats (Shard is -1 and
// FramesPerSec is total frames over the engine's lifetime). Errors also
// includes frames that failed routing and so never reached a shard, and
// ErrorsDropped the routing-error reports dropped from the channel.
func (e *Engine) Totals() ShardStats {
	t := ShardStats{Shard: -1, Errors: e.routerErrs.Load(), ErrorsDropped: e.routerDropped.Load()}
	for _, s := range e.Stats() {
		t.Subscriptions += s.Subscriptions
		t.Frames += s.Frames
		t.Alarms += s.Alarms
		t.AlarmsBlocked += s.AlarmsBlocked
		t.Errors += s.Errors
		t.ErrorsDropped += s.ErrorsDropped
		t.QueueDepth += s.QueueDepth
	}
	if el := time.Since(e.start).Seconds(); el > 0 {
		t.FramesPerSec = float64(t.Frames) / el
	}
	return t
}

// SubscriptionStats is a point-in-time snapshot of one tenant.
type SubscriptionStats struct {
	// Frames counts frames scored for this tenant.
	Frames uint64
	// Alarms counts alarms raised for this tenant — the denominator of
	// any downstream triage reduction ratio.
	Alarms uint64
	// AlarmsBlocked counts this tenant's alarm emissions that found the
	// fan-in channel full and parked until the consumer caught up.
	AlarmsBlocked uint64
	// Swaps counts model hot-swaps applied to this tenant.
	Swaps uint64
	// Ready reports whether the tenant's window is warm.
	Ready bool
	// Shard is the index of the shard the tenant is pinned to.
	Shard int

	// Health is the tenant's current fault-containment state.
	Health HealthState
	// Faults counts every fault the supervisor charged to the tenant:
	// contained panics, backend errors, non-finite alarm scores, and
	// latency breaches.
	Faults uint64
	// Panics counts the subset of Faults that were recovered panics.
	Panics uint64
	// Degradations, Quarantines, Probations, Recoveries count health
	// state transitions: healthy→degraded, →quarantined, quarantined→
	// probation, and probation→healthy respectively.
	Degradations uint64
	Quarantines  uint64
	Probations   uint64
	Recoveries   uint64
	// HygieneDropped counts frames the hygiene stage rejected
	// (stale/duplicate time, unrepairable non-finite magnitudes);
	// HygieneRepaired counts frames scored after in-place repair.
	HygieneDropped  uint64
	HygieneRepaired uint64
	// FallbackFrames and FallbackAlarms count service delivered by the
	// warm fallback backend while the primary was distrusted;
	// FallbackErrors counts fallback pushes that errored or panicked
	// (including warm-feed pushes while the primary was serving).
	FallbackFrames uint64
	FallbackAlarms uint64
	FallbackErrors uint64
}

// Subscription is the caller's handle on one registered tenant.
type Subscription struct {
	// ID is the tenant identifier passed to Subscribe.
	ID  string
	sub *subscription
}

// Stats snapshots the tenant's counters.
func (s *Subscription) Stats() SubscriptionStats {
	s.sub.mu.Lock()
	ready := s.sub.det.Ready()
	s.sub.mu.Unlock()
	return SubscriptionStats{
		Frames:          atomic.LoadUint64(&s.sub.frames),
		Alarms:          atomic.LoadUint64(&s.sub.alarms),
		AlarmsBlocked:   atomic.LoadUint64(&s.sub.blocked),
		Swaps:           atomic.LoadUint64(&s.sub.swaps),
		Ready:           ready,
		Shard:           s.sub.shard.id,
		Health:          s.sub.state(),
		Faults:          atomic.LoadUint64(&s.sub.faultsTotal),
		Panics:          atomic.LoadUint64(&s.sub.panics),
		Degradations:    atomic.LoadUint64(&s.sub.degradations),
		Quarantines:     atomic.LoadUint64(&s.sub.quarantines),
		Probations:      atomic.LoadUint64(&s.sub.probations),
		Recoveries:      atomic.LoadUint64(&s.sub.recoveries),
		HygieneDropped:  atomic.LoadUint64(&s.sub.hygieneDropped),
		HygieneRepaired: atomic.LoadUint64(&s.sub.hygieneRepaired),
		FallbackFrames:  atomic.LoadUint64(&s.sub.fallbackFrames),
		FallbackAlarms:  atomic.LoadUint64(&s.sub.fallbackAlarms),
		FallbackErrors:  atomic.LoadUint64(&s.sub.fallbackErrs),
	}
}

// Health returns the tenant's current fault-containment state, readable
// lock-free at any time.
func (s *Subscription) Health() HealthState { return s.sub.state() }

// QueueHeadroom reports how many more frames the tenant's shard queue
// can accept before Ingest would block — the signal a network front end
// sizes its flow-control credit grants from, so a saturated shard slows
// remote producers at the protocol layer instead of parking their
// connection goroutines.
func (s *Subscription) QueueHeadroom() int {
	sh := s.sub.shard
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.queue) - sh.count
}

// SetFallback installs a warm standby backend for the tenant: while the
// primary is healthy the fallback is kept current from the same frames
// (scores discarded), and while the primary is quarantined or on
// probation the fallback serves the alarm stream. The intended shape is
// an expensive primary (aero, ~2.9 ms/frame) backed by a cheap streaming
// baseline (fluxev/tm, sub-µs) whose warm-feed cost is negligible next
// to the primary's push.
//
// The fallback's variate count must match the tenant's. Install it
// before frames flow (or accept that it warms from mid-stream); passing
// nil removes the fallback.
func (s *Subscription) SetFallback(det core.StreamBackend) error {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	if det != nil && det.Variates() != s.sub.n {
		return fmt.Errorf("engine: fallback has %d variates, subscription %q expects %d",
			det.Variates(), s.ID, s.sub.n)
	}
	s.sub.fallback = det
	return nil
}

// FallbackKind returns the installed fallback backend's kind tag, or ""
// when the tenant has none.
func (s *Subscription) FallbackKind() string {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	if s.sub.fallback == nil {
		return ""
	}
	return s.sub.fallback.Kind()
}

// modelSwapper is the AERO-specific capability behind Subscription.Swap:
// installing an in-memory *core.Model without a serialize/parse round
// trip. StreamDetector implements it; DSPOT-wrapped or baseline tenants
// swap through SwapArtifact instead.
type modelSwapper interface {
	Swap(m *core.Model) error
}

// Swap installs a freshly trained model into the tenant's detector with
// zero downtime. The subscription mutex serializes the swap against the
// draining worker's Push, so the swap always lands at a frame boundary:
// no frame is ever scored by a half-installed model, no queued frame is
// dropped or re-ordered — frames enqueued before the swap completes score
// under whichever model is installed when their turn comes, in strict
// arrival order. The warm window is preserved (core re-normalizes it
// under the new model's bounds), so a swapped tenant never re-warms.
//
// The new model must match the tenant's variate count and window length
// (see core.StreamDetector.Swap for the exact contract), and the tenant
// must be AERO-backed; other backends hot-swap via SwapArtifact.
func (s *Subscription) Swap(m *core.Model) error {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	sw, ok := s.sub.det.(modelSwapper)
	if !ok {
		return fmt.Errorf("engine: %s backend does not accept a model swap; use SwapArtifact", s.sub.det.Kind())
	}
	if err := sw.Swap(m); err != nil {
		return err
	}
	atomic.AddUint64(&s.sub.swaps, 1)
	return nil
}

// SwapArtifact installs a freshly trained artifact of the tenant's
// backend kind with zero downtime — the backend-agnostic form of Swap,
// with the same frame-boundary ordering guarantee (the subscription
// mutex serializes it against the draining worker's Push).
func (s *Subscription) SwapArtifact(artifact []byte) error {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	if err := s.sub.det.SwapArtifact(artifact); err != nil {
		return err
	}
	atomic.AddUint64(&s.sub.swaps, 1)
	return nil
}

// Kind returns the tenant's backend kind tag (e.g. "aero", "sr+dspot").
func (s *Subscription) Kind() string {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	return s.sub.det.Kind()
}

// GraphSnapshot returns the tenant's current window-wise learned adjacency
// (live Fig. 8), serialized against scoring. It fails until the tenant's
// window is warm, and for backends that do not learn a graph.
func (s *Subscription) GraphSnapshot() (*tensor.Dense, error) {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	g, ok := s.sub.det.(core.GraphSnapshotter)
	if !ok {
		return nil, fmt.Errorf("engine: %s backend does not expose a graph snapshot", s.sub.det.Kind())
	}
	return g.GraphSnapshot()
}

// LastTime returns the tenant's newest scored timestamp and whether any
// frame has arrived — after RestoreState, the restored cursor a resuming
// feed must continue strictly after.
func (s *Subscription) LastTime() (float64, bool) {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	return s.sub.det.LastTime()
}

// Threshold returns the tenant's calibrated alarm threshold.
func (s *Subscription) Threshold() float64 {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	return s.sub.det.Threshold()
}

// tailRefitter is the optional capability adaptive alarming stages expose:
// cumulative tail-model maintenance counters (backend.DSPOTStage
// implements it, summed across variates).
type tailRefitter interface {
	RefitStats() evt.RefitStats
}

// RefitStats returns the tenant's adaptive tail-model refit counters and
// whether the backend exposes them (false for static-threshold tenants).
// The read takes the subscription mutex, so it is safe against a
// concurrently draining worker — periodic stats loops can poll it live.
func (s *Subscription) RefitStats() (evt.RefitStats, bool) {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	r, ok := s.sub.det.(tailRefitter)
	if !ok {
		return evt.RefitStats{}, false
	}
	return r.RefitStats(), true
}
