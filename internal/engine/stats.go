package engine

import (
	"fmt"
	"sync/atomic"
	"time"

	"aero/internal/core"
	"aero/internal/evt"
	"aero/internal/tensor"
)

// ShardStats is a point-in-time snapshot of one shard's activity.
type ShardStats struct {
	// Shard is the shard index.
	Shard int
	// Subscriptions is the number of tenants pinned to the shard.
	Subscriptions int
	// Frames counts frames scored (including warmup frames).
	Frames uint64
	// Alarms counts alarms emitted — the denominator of any downstream
	// triage reduction ratio.
	Alarms uint64
	// AlarmsBlocked counts alarm emissions that found the fan-in channel
	// full and had to park until the consumer caught up: a nonzero,
	// growing value means the alarm consumer — not scoring — is the
	// pipeline's bottleneck.
	AlarmsBlocked uint64
	// Errors counts frames rejected at scoring time.
	Errors uint64
	// QueueDepth is the number of frames currently waiting.
	QueueDepth int
	// FramesPerSec is an exponentially-weighted estimate of the shard's
	// recent processing rate (0 until two drains have happened).
	FramesPerSec float64
}

// Stats snapshots every shard.
func (e *Engine) Stats() []ShardStats {
	out := make([]ShardStats, len(e.shards))
	for i, sh := range e.shards {
		sh.mu.Lock()
		out[i] = ShardStats{
			Shard:         sh.id,
			Subscriptions: sh.subsN,
			Frames:        sh.frames,
			Alarms:        sh.alarmsN,
			AlarmsBlocked: sh.blockedN,
			Errors:        sh.errsN,
			QueueDepth:    sh.count,
			FramesPerSec:  sh.rate,
		}
		sh.mu.Unlock()
	}
	return out
}

// Totals aggregates all shards into one ShardStats (Shard is -1 and
// FramesPerSec is total frames over the engine's lifetime). Errors also
// includes frames that failed routing and so never reached a shard.
func (e *Engine) Totals() ShardStats {
	t := ShardStats{Shard: -1, Errors: e.routerErrs.Load()}
	for _, s := range e.Stats() {
		t.Subscriptions += s.Subscriptions
		t.Frames += s.Frames
		t.Alarms += s.Alarms
		t.AlarmsBlocked += s.AlarmsBlocked
		t.Errors += s.Errors
		t.QueueDepth += s.QueueDepth
	}
	if el := time.Since(e.start).Seconds(); el > 0 {
		t.FramesPerSec = float64(t.Frames) / el
	}
	return t
}

// SubscriptionStats is a point-in-time snapshot of one tenant.
type SubscriptionStats struct {
	// Frames counts frames scored for this tenant.
	Frames uint64
	// Alarms counts alarms raised for this tenant — the denominator of
	// any downstream triage reduction ratio.
	Alarms uint64
	// AlarmsBlocked counts this tenant's alarm emissions that found the
	// fan-in channel full and parked until the consumer caught up.
	AlarmsBlocked uint64
	// Swaps counts model hot-swaps applied to this tenant.
	Swaps uint64
	// Ready reports whether the tenant's window is warm.
	Ready bool
	// Shard is the index of the shard the tenant is pinned to.
	Shard int
}

// Subscription is the caller's handle on one registered tenant.
type Subscription struct {
	// ID is the tenant identifier passed to Subscribe.
	ID  string
	sub *subscription
}

// Stats snapshots the tenant's counters.
func (s *Subscription) Stats() SubscriptionStats {
	s.sub.mu.Lock()
	ready := s.sub.det.Ready()
	s.sub.mu.Unlock()
	return SubscriptionStats{
		Frames:        atomic.LoadUint64(&s.sub.frames),
		Alarms:        atomic.LoadUint64(&s.sub.alarms),
		AlarmsBlocked: atomic.LoadUint64(&s.sub.blocked),
		Swaps:         atomic.LoadUint64(&s.sub.swaps),
		Ready:         ready,
		Shard:         s.sub.shard.id,
	}
}

// modelSwapper is the AERO-specific capability behind Subscription.Swap:
// installing an in-memory *core.Model without a serialize/parse round
// trip. StreamDetector implements it; DSPOT-wrapped or baseline tenants
// swap through SwapArtifact instead.
type modelSwapper interface {
	Swap(m *core.Model) error
}

// Swap installs a freshly trained model into the tenant's detector with
// zero downtime. The subscription mutex serializes the swap against the
// draining worker's Push, so the swap always lands at a frame boundary:
// no frame is ever scored by a half-installed model, no queued frame is
// dropped or re-ordered — frames enqueued before the swap completes score
// under whichever model is installed when their turn comes, in strict
// arrival order. The warm window is preserved (core re-normalizes it
// under the new model's bounds), so a swapped tenant never re-warms.
//
// The new model must match the tenant's variate count and window length
// (see core.StreamDetector.Swap for the exact contract), and the tenant
// must be AERO-backed; other backends hot-swap via SwapArtifact.
func (s *Subscription) Swap(m *core.Model) error {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	sw, ok := s.sub.det.(modelSwapper)
	if !ok {
		return fmt.Errorf("engine: %s backend does not accept a model swap; use SwapArtifact", s.sub.det.Kind())
	}
	if err := sw.Swap(m); err != nil {
		return err
	}
	atomic.AddUint64(&s.sub.swaps, 1)
	return nil
}

// SwapArtifact installs a freshly trained artifact of the tenant's
// backend kind with zero downtime — the backend-agnostic form of Swap,
// with the same frame-boundary ordering guarantee (the subscription
// mutex serializes it against the draining worker's Push).
func (s *Subscription) SwapArtifact(artifact []byte) error {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	if err := s.sub.det.SwapArtifact(artifact); err != nil {
		return err
	}
	atomic.AddUint64(&s.sub.swaps, 1)
	return nil
}

// Kind returns the tenant's backend kind tag (e.g. "aero", "sr+dspot").
func (s *Subscription) Kind() string {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	return s.sub.det.Kind()
}

// SnapshotState serializes the tenant's warm detector state (rings,
// cursors, warm-up counters), serialized against scoring. Pair with
// RestoreState for zero-warmup restarts; weights are persisted separately
// through the model registry.
func (s *Subscription) SnapshotState() ([]byte, error) {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	return s.sub.det.SnapshotState()
}

// RestoreState installs a previously snapshotted detector state into the
// tenant, so it resumes scoring with a full window instead of re-warming
// from a cold ring. Restore before feeding frames: a restored state's
// time cursor rejects frames older than the snapshot's newest.
func (s *Subscription) RestoreState(blob []byte) error {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	return s.sub.det.RestoreState(blob)
}

// GraphSnapshot returns the tenant's current window-wise learned adjacency
// (live Fig. 8), serialized against scoring. It fails until the tenant's
// window is warm, and for backends that do not learn a graph.
func (s *Subscription) GraphSnapshot() (*tensor.Dense, error) {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	g, ok := s.sub.det.(core.GraphSnapshotter)
	if !ok {
		return nil, fmt.Errorf("engine: %s backend does not expose a graph snapshot", s.sub.det.Kind())
	}
	return g.GraphSnapshot()
}

// LastTime returns the tenant's newest scored timestamp and whether any
// frame has arrived — after RestoreState, the restored cursor a resuming
// feed must continue strictly after.
func (s *Subscription) LastTime() (float64, bool) {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	return s.sub.det.LastTime()
}

// Threshold returns the tenant's calibrated alarm threshold.
func (s *Subscription) Threshold() float64 {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	return s.sub.det.Threshold()
}

// tailRefitter is the optional capability adaptive alarming stages expose:
// cumulative tail-model maintenance counters (backend.DSPOTStage
// implements it, summed across variates).
type tailRefitter interface {
	RefitStats() evt.RefitStats
}

// RefitStats returns the tenant's adaptive tail-model refit counters and
// whether the backend exposes them (false for static-threshold tenants).
// The read takes the subscription mutex, so it is safe against a
// concurrently draining worker — periodic stats loops can poll it live.
func (s *Subscription) RefitStats() (evt.RefitStats, bool) {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	r, ok := s.sub.det.(tailRefitter)
	if !ok {
		return evt.RefitStats{}, false
	}
	return r.RefitStats(), true
}
