package engine_test

import (
	"bytes"
	"math"
	"testing"
	"time"

	"aero/internal/backend"
	"aero/internal/core"
	"aero/internal/dataset"
	"aero/internal/engine"
	"aero/internal/faultinject"
)

// fluxevArtifact trains one fluxev artifact shared by the chaos tests
// (cheap streaming baseline — the chaos tests exercise the supervisor,
// not the detector).
func fluxevArtifact(t *testing.T) []byte {
	t.Helper()
	fixture(t)
	artifact, err := backend.Train("fluxev", fixD.Train, backend.SmallOptions())
	if err != nil {
		t.Fatal(err)
	}
	return artifact
}

func openFluxev(t *testing.T, artifact []byte) core.StreamBackend {
	t.Helper()
	b, err := backend.Open("fluxev", artifact)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// chaosHealth is the small-knob supervisor used by the chaos tests: the
// 260-frame test feed has to fit quarantine backoffs and a full recovery.
func chaosHealth() engine.HealthConfig {
	return engine.HealthConfig{
		DegradeAfter:    1,
		QuarantineAfter: 2,
		BackoffFrames:   8,
		BackoffMax:      2,
		ProbationFrames: 4,
	}
}

// chaosPlan is the golden test's fault schedule: a dense burst of panics,
// errors, NaN-scored alarms, and latency spikes over a narrow frame
// window. The window is narrow on purpose — the wrapper's frame index
// only advances when the primary is actually pushed, so quarantine
// freezes the chaotic window and probation probes burn it down one frame
// per probe; the feed must outlast that.
func chaosPlan() faultinject.Plan {
	return faultinject.Plan{
		Seed: 7, From: 40, Until: 48,
		PanicEvery: 2, ErrEvery: 3, NaNEvery: 4,
		DelayEvery: 5, Delay: 200 * time.Microsecond,
	}
}

// chaosRun drives 3 clean tenants — and optionally a chaotic fourth —
// through one engine and returns each tenant's alarm sequence plus the
// chaotic tenant's stats.
func chaosRun(t *testing.T, artifact []byte, withChaos bool) (map[string][]core.Alarm, engine.SubscriptionStats) {
	t.Helper()
	ids := []string{"clean-0", "clean-1", "clean-2"}
	series := make([]*dataset.Series, len(ids))
	for i := range ids {
		series[i] = tenantSeries(i).Test
	}

	e := engine.New(engine.Config{Shards: 2, Workers: 2, QueueDepth: 16, BatchSize: 4, Health: chaosHealth()})
	for _, id := range ids {
		if _, err := e.SubscribeBackend(id, openFluxev(t, artifact)); err != nil {
			t.Fatal(err)
		}
	}
	var chaosSub *engine.Subscription
	var chaosSeries *dataset.Series
	if withChaos {
		chaosSeries = tenantSeries(3).Test
		det := faultinject.New(openFluxev(t, artifact), chaosPlan())
		sub, err := e.SubscribeBackend("chaos", det)
		if err != nil {
			t.Fatal(err)
		}
		if err := sub.SetFallback(openFluxev(t, artifact)); err != nil {
			t.Fatal(err)
		}
		chaosSub = sub
	}

	got, wg := collectAlarms(e)
	frame := core.Frame{Magnitudes: make([]float64, series[0].N())}
	push := func(id string, s *dataset.Series, ti int) {
		frame.Time = s.Time[ti]
		for v := 0; v < s.N(); v++ {
			frame.Magnitudes[v] = s.Data[v][ti]
		}
		if err := e.Ingest(id, frame); err != nil {
			t.Fatal(err)
		}
	}
	for ti := 0; ti < series[0].Len(); ti++ {
		for i, id := range ids {
			push(id, series[i], ti)
		}
		if withChaos {
			push("chaos", chaosSeries, ti)
		}
	}
	e.Flush()
	var st engine.SubscriptionStats
	if withChaos {
		st = chaosSub.Stats()
	}
	e.Close()
	wg.Wait()
	return got, st
}

// TestChaosGoldenCleanTenants is the headline containment claim: with a
// seeded fault-injecting co-tenant throwing panics, errors, NaN-scored
// alarms, and latency spikes, (1) the clean tenants' alarm sequences are
// bit-identical to a fault-free replay, (2) no shard worker dies — every
// clean frame is scored, (3) the faulty tenant walks the full
// healthy → quarantined → probation → healthy cycle with each transition
// visible in its stats, and (4) the whole run is deterministic: a second
// run reproduces the chaotic tenant's counters and alarms exactly.
func TestChaosGoldenCleanTenants(t *testing.T) {
	artifact := fluxevArtifact(t)

	// Golden: sequential fault-free replays of the clean tenants.
	want := map[string][]core.Alarm{}
	for i, id := range []string{"clean-0", "clean-1", "clean-2"} {
		ref := openFluxev(t, artifact)
		s := tenantSeries(i).Test
		frame := core.Frame{Magnitudes: make([]float64, s.N())}
		for ti := 0; ti < s.Len(); ti++ {
			frame.Time = s.Time[ti]
			for v := 0; v < s.N(); v++ {
				frame.Magnitudes[v] = s.Data[v][ti]
			}
			alarms, err := ref.Push(frame)
			if err != nil {
				t.Fatal(err)
			}
			want[id] = append(want[id], alarms...)
		}
	}

	got, st := chaosRun(t, artifact, true)
	for id, w := range want {
		g := got[id]
		if len(g) != len(w) {
			t.Fatalf("%s: %d alarms beside chaos, %d in fault-free replay", id, len(g), len(w))
		}
		for k := range g {
			if g[k] != w[k] {
				t.Fatalf("%s alarm %d: %+v != golden %+v", id, k, g[k], w[k])
			}
		}
	}

	// The faulty tenant's full lifecycle, visible in stats.
	if st.Panics == 0 || st.Faults == 0 {
		t.Fatalf("chaos tenant recorded no faults: %+v", st)
	}
	if st.Degradations == 0 || st.Quarantines == 0 || st.Probations == 0 || st.Recoveries == 0 {
		t.Fatalf("chaos tenant did not walk healthy→degraded→quarantined→probation→healthy: %+v", st)
	}
	if st.Health != engine.HealthHealthy {
		t.Fatalf("chaos tenant ended %v, want healthy (feed must outlast the fault window)", st.Health)
	}
	if st.FallbackFrames == 0 {
		t.Fatalf("fallback never served during quarantine: %+v", st)
	}
	// Containment of corrupted output: no NaN-scored alarm may reach the
	// consumer from any tenant.
	for id, alarms := range got {
		for _, a := range alarms {
			if math.IsNaN(a.Score) || math.IsInf(a.Score, 0) {
				t.Fatalf("%s leaked a non-finite alarm score: %+v", id, a)
			}
		}
	}

	// Determinism: replay the identical chaotic run and compare.
	got2, st2 := chaosRun(t, artifact, true)
	for id := range got {
		g, g2 := got[id], got2[id]
		if len(g) != len(g2) {
			t.Fatalf("%s: run 1 %d alarms, run 2 %d", id, len(g), len(g2))
		}
		for k := range g {
			if g[k] != g2[k] {
				t.Fatalf("%s alarm %d differs across identical chaos runs", id, k)
			}
		}
	}
	if st.Faults != st2.Faults || st.Panics != st2.Panics ||
		st.Quarantines != st2.Quarantines || st.Probations != st2.Probations ||
		st.Recoveries != st2.Recoveries || st.FallbackFrames != st2.FallbackFrames ||
		st.Health != st2.Health {
		t.Fatalf("chaos tenant counters differ across identical runs:\n%+v\n%+v", st, st2)
	}

	// Cross-check against a chaos-free engine run: the clean tenants must
	// not even notice the co-tenant existed.
	got3, _ := chaosRun(t, artifact, false)
	for id := range want {
		g, g3 := got[id], got3[id]
		if len(g) != len(g3) {
			t.Fatalf("%s: %d alarms with chaos co-tenant, %d without", id, len(g), len(g3))
		}
		for k := range g {
			if g[k] != g3[k] {
				t.Fatalf("%s alarm %d differs with/without chaos co-tenant", id, k)
			}
		}
	}
}

// TestChaosLatencyFaults pins the latency-breach signal: with a
// LatencyThreshold configured and a co-tenant whose pushes stall past it,
// the supervisor charges latency faults and quarantines the tenant onto
// its fallback.
func TestChaosLatencyFaults(t *testing.T) {
	artifact := fluxevArtifact(t)
	h := chaosHealth()
	h.LatencyThreshold = 100 * time.Microsecond
	e := engine.New(engine.Config{Shards: 1, Workers: 1, QueueDepth: 16, Health: h})
	det := faultinject.New(openFluxev(t, artifact), faultinject.Plan{
		Seed: 3, From: 10, Until: 16, DelayEvery: 1, Delay: 2 * time.Millisecond,
	})
	sub, err := e.SubscribeBackend("slow", det)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.SetFallback(openFluxev(t, artifact)); err != nil {
		t.Fatal(err)
	}
	got, wg := collectAlarms(e)
	s := tenantSeries(0).Test
	frame := core.Frame{Magnitudes: make([]float64, s.N())}
	for ti := 0; ti < 120; ti++ {
		frame.Time = s.Time[ti]
		for v := 0; v < s.N(); v++ {
			frame.Magnitudes[v] = s.Data[v][ti]
		}
		if err := e.Ingest("slow", frame); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	st := sub.Stats()
	e.Close()
	wg.Wait()
	_ = got
	if st.Faults == 0 || st.Quarantines == 0 {
		t.Fatalf("latency spikes were not charged as faults: %+v", st)
	}
	if st.FallbackFrames == 0 {
		t.Fatalf("fallback never served through the latency quarantine: %+v", st)
	}
}

// TestErrorsDroppedCounter pins the error-channel accounting: when the
// Errors channel is full and nobody drains it, frame-error reports are
// dropped from the channel but every drop is counted — the errors
// themselves stay visible in Errors, the lost reports in ErrorsDropped.
func TestErrorsDroppedCounter(t *testing.T) {
	artifact := fluxevArtifact(t)
	e := engine.New(engine.Config{Shards: 1, Workers: 1, QueueDepth: 8, ErrorBuffer: 1})
	det := faultinject.New(openFluxev(t, artifact), faultinject.Plan{Seed: 2, ErrEvery: 1})
	if _, err := e.SubscribeBackend("noisy", det); err != nil {
		t.Fatal(err)
	}
	_, wg := collectAlarms(e)
	s := tenantSeries(0).Test
	const n = 50
	frame := core.Frame{Magnitudes: make([]float64, s.N())}
	for ti := 0; ti < n; ti++ {
		frame.Time = s.Time[ti]
		for v := 0; v < s.N(); v++ {
			frame.Magnitudes[v] = s.Data[v][ti]
		}
		if err := e.Ingest("noisy", frame); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	tot := e.Totals()
	e.Close()
	wg.Wait()
	if tot.Errors != n {
		t.Fatalf("Errors %d, want %d (every frame errored)", tot.Errors, n)
	}
	// One report fits the channel; every further one must be counted as
	// dropped, never silently discarded.
	if tot.ErrorsDropped != n-1 {
		t.Fatalf("ErrorsDropped %d, want %d", tot.ErrorsDropped, n-1)
	}
}

// dirtyFeed derives a corrupted copy of a series: periodic NaN and ±Inf
// magnitudes after warmup, plus duplicated (stale) frames. It returns the
// frame sequence and the expected repaired replay under hold-last —
// stale frames skipped, non-finite samples held at the last finite value.
func dirtyFeed(s *dataset.Series) (feed []core.Frame, repaired []core.Frame) {
	lastGood := make([]float64, s.N())
	seen := false
	for ti := 0; ti < s.Len(); ti++ {
		mags := make([]float64, s.N())
		for v := 0; v < s.N(); v++ {
			mags[v] = s.Data[v][ti]
		}
		if ti > 10 {
			switch {
			case ti%17 == 0:
				mags[ti%s.N()] = math.NaN()
			case ti%23 == 0:
				mags[ti%s.N()] = math.Inf(1)
				mags[(ti+1)%s.N()] = math.Inf(-1)
			}
		}
		f := core.Frame{Time: s.Time[ti], Magnitudes: mags}
		feed = append(feed, f)
		if ti > 10 && ti%31 == 0 {
			// Duplicate the frame — a stale timestamp hygiene must drop.
			dup := core.Frame{Time: f.Time, Magnitudes: append([]float64(nil), mags...)}
			feed = append(feed, dup)
		}

		// Expected repair.
		rep := append([]float64(nil), mags...)
		ok := true
		for v, x := range rep {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				if !seen {
					ok = false
					break
				}
				rep[v] = lastGood[v]
			}
		}
		if ok {
			copy(lastGood, rep)
			seen = true
			repaired = append(repaired, core.Frame{Time: f.Time, Magnitudes: rep})
		}
	}
	return feed, repaired
}

// TestHygieneAcrossBackendKinds pins the hygiene stage's contract on
// every registered backend kind: an engine fed NaN/Inf-corrupted and
// duplicated frames under hold-last produces exactly the alarms a
// sequential twin produces on the pre-repaired feed — and no frame error
// escalates into a health fault.
func TestHygieneAcrossBackendKinds(t *testing.T) {
	m, _ := fixture(t)
	opts := backend.Options{AERO: fixtureConfig(), Stream: backend.SmallOptions().Stream}
	series := tenantSeries(0).Test
	feed, repairedFeed := dirtyFeed(series)
	if len(repairedFeed) >= len(feed) {
		t.Fatalf("dirty feed degenerate: %d frames, %d survive repair", len(feed), len(repairedFeed))
	}

	for _, kind := range backend.Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			spec, ok := backend.Get(kind)
			if !ok {
				t.Fatalf("kind %s not registered", kind)
			}
			var artifact []byte
			var err error
			if kind == core.KindAERO {
				if artifact, err = m.MarshalBytes(); err != nil {
					t.Fatal(err)
				}
			} else if artifact, err = spec.Train(fixD.Train, opts); err != nil {
				t.Fatal(err)
			}

			// Sequential reference over the repaired feed.
			ref, err := spec.Open(artifact)
			if err != nil {
				t.Fatal(err)
			}
			var want []core.Alarm
			for _, f := range repairedFeed {
				alarms, err := ref.Push(f)
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, alarms...)
			}

			// Engine over the dirty feed, hygiene repairing in-line.
			e := engine.New(engine.Config{
				Shards: 2, Workers: 2, QueueDepth: 16, BatchSize: 4,
				Hygiene: engine.HygieneConfig{Policy: engine.HygieneHoldLast},
			})
			twin, err := spec.Open(artifact)
			if err != nil {
				t.Fatal(err)
			}
			sub, err := e.SubscribeBackend("dirty", twin)
			if err != nil {
				t.Fatal(err)
			}
			got, wg := collectAlarms(e)
			for _, f := range feed {
				if err := e.Ingest("dirty", f); err != nil {
					t.Fatal(err)
				}
			}
			e.Flush()
			st := sub.Stats()
			e.Close()
			wg.Wait()

			g := got["dirty"]
			if len(g) != len(want) {
				t.Fatalf("engine %d alarms on dirty feed, repaired replay %d", len(g), len(want))
			}
			for k := range g {
				if g[k] != want[k] {
					t.Fatalf("alarm %d: engine %+v != repaired replay %+v", k, g[k], want[k])
				}
			}
			wantDropped := uint64(len(feed) - len(repairedFeed))
			if st.HygieneDropped != wantDropped {
				t.Fatalf("HygieneDropped %d, want %d", st.HygieneDropped, wantDropped)
			}
			if st.HygieneRepaired == 0 {
				t.Fatalf("no repairs recorded on a dirty feed: %+v", st)
			}
			if st.Faults != 0 || st.Health != engine.HealthHealthy {
				t.Fatalf("hygiene drops escalated into health faults: %+v", st)
			}
			if st.Frames != uint64(len(repairedFeed)) {
				t.Fatalf("scored %d frames, want %d", st.Frames, len(repairedFeed))
			}
		})
	}
}

// TestSnapshotRestoreMidQuarantine pins the versioned subscription
// snapshot: a tenant checkpointed mid-quarantine restores mid-quarantine
// in a fresh engine (cursor, backoff, fallback state intact), finishes
// its backoff on clean frames, and recovers. Corrupt envelopes are
// rejected without touching state, and pre-envelope bare backend blobs
// still restore through the legacy path.
func TestSnapshotRestoreMidQuarantine(t *testing.T) {
	artifact := fluxevArtifact(t)
	s := tenantSeries(0).Test
	h := engine.HealthConfig{QuarantineAfter: 3, BackoffFrames: 16, BackoffMax: 4, BackoffJitter: -1, ProbationFrames: 4}

	push := func(t *testing.T, e *engine.Engine, id string, ti int) {
		t.Helper()
		frame := core.Frame{Time: s.Time[ti], Magnitudes: make([]float64, s.N())}
		for v := 0; v < s.N(); v++ {
			frame.Magnitudes[v] = s.Data[v][ti]
		}
		if err := e.Ingest(id, frame); err != nil {
			t.Fatal(err)
		}
	}

	// Engine A: errors on every frame from 20 on — quarantined and pinned
	// there (probation probes keep failing).
	eA := engine.New(engine.Config{Shards: 1, Workers: 1, QueueDepth: 8, Health: h})
	subA, err := eA.SubscribeBackend("tenant",
		faultinject.New(openFluxev(t, artifact), faultinject.Plan{Seed: 1, From: 20, ErrEvery: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := subA.SetFallback(openFluxev(t, artifact)); err != nil {
		t.Fatal(err)
	}
	gotA, wgA := collectAlarms(eA)
	const cut = 60
	for ti := 0; ti < cut; ti++ {
		push(t, eA, "tenant", ti)
	}
	eA.Flush()
	if subA.Health() != engine.HealthQuarantined {
		t.Fatalf("tenant is %v at the checkpoint, want quarantined", subA.Health())
	}
	blob, err := subA.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	lastA, okA := subA.LastTime()
	eA.Close()
	wgA.Wait()
	_ = gotA
	if !bytes.HasPrefix(blob, []byte("AEROHLTH")) {
		t.Fatalf("subscription snapshot missing envelope magic: % x", blob[:8])
	}

	// Engine B: a *healthy* twin (no chaos wrapper — the operator replaced
	// the faulty build) restored from the checkpoint must come back
	// mid-quarantine, not healthy.
	eB := engine.New(engine.Config{Shards: 1, Workers: 1, QueueDepth: 8, Health: h})
	subB, err := eB.SubscribeBackend("tenant", openFluxev(t, artifact))
	if err != nil {
		t.Fatal(err)
	}
	if err := subB.SetFallback(openFluxev(t, artifact)); err != nil {
		t.Fatal(err)
	}
	if err := subB.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if subB.Health() != engine.HealthQuarantined {
		t.Fatalf("restored tenant is %v, want quarantined", subB.Health())
	}
	if lastB, okB := subB.LastTime(); okB != okA || lastB != lastA {
		t.Fatalf("restored cursor (%v,%v), want (%v,%v)", lastB, okB, lastA, okA)
	}

	// A restore that carries a fallback into a subscription without one
	// must fail closed.
	eC := engine.New(engine.Config{Shards: 1, Workers: 1, Health: h})
	subC, err := eC.SubscribeBackend("tenant", openFluxev(t, artifact))
	if err != nil {
		t.Fatal(err)
	}
	if err := subC.RestoreState(blob); err == nil {
		t.Fatal("restore with a fallback payload succeeded into a fallback-less subscription")
	}
	eC.Close()

	// Clean frames finish the backoff, probation passes, tenant recovers.
	gotB, wgB := collectAlarms(eB)
	for ti := cut; ti < s.Len(); ti++ {
		push(t, eB, "tenant", ti)
	}
	eB.Flush()
	stB := subB.Stats()
	if stB.Health != engine.HealthHealthy || stB.Recoveries == 0 {
		t.Fatalf("restored tenant did not recover on clean frames: %+v", stB)
	}
	eB.Close()
	wgB.Wait()
	_ = gotB

	// Corrupt envelope: flip one byte mid-blob — rejected, state untouched.
	eD := engine.New(engine.Config{Shards: 1, Workers: 1, Health: h})
	subD, err := eD.SubscribeBackend("tenant", openFluxev(t, artifact))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), blob...)
	bad[len(bad)/2] ^= 0xff
	if err := subD.RestoreState(bad); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
	if subD.Health() != engine.HealthHealthy {
		t.Fatalf("failed restore mutated health state: %v", subD.Health())
	}

	// Legacy path: a bare backend blob (no envelope) restores the primary
	// and seeds the time cursor.
	warm := openFluxev(t, artifact)
	wf := core.Frame{Magnitudes: make([]float64, s.N())}
	for ti := 0; ti < 30; ti++ {
		wf.Time = s.Time[ti]
		for v := 0; v < s.N(); v++ {
			wf.Magnitudes[v] = s.Data[v][ti]
		}
		if _, err := warm.Push(wf); err != nil {
			t.Fatal(err)
		}
	}
	bare, err := warm.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if err := subD.RestoreState(bare); err != nil {
		t.Fatal(err)
	}
	if lt, ok := subD.LastTime(); !ok || lt != s.Time[29] {
		t.Fatalf("legacy restore cursor (%v,%v), want (%v,true)", lt, ok, s.Time[29])
	}
	eD.Close()
}
