package engine

import (
	"fmt"
	"runtime/debug"

	"aero/internal/core"
)

// PanicError is a backend panic converted into an ordinary error by the
// engine's push guard: the shard worker that hit it keeps draining, the
// panicking tenant takes the fault. Value is the recovered panic value
// and Stack the goroutine stack at recovery time — everything an operator
// needs to file the bug without the process having died.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (p *PanicError) Error() string {
	return fmt.Sprintf("engine: backend panic: %v", p.Value)
}

// GuardPush scores one frame through det with panic isolation: a panic
// inside the backend is recovered and returned as a *PanicError instead
// of unwinding into the caller. The benign path costs nothing beyond the
// call — the deferred recover is open-coded by the compiler, so the guard
// adds 0 allocs/op when the backend behaves (pinned by
// TestGuardedPushBenignAllocs and BenchmarkGuardedPush).
//
// After a panic the backend's internal state must be presumed corrupt
// mid-mutation; callers are expected to stop trusting it (the engine's
// health supervisor quarantines the subscription and fails over).
func GuardPush(det core.StreamBackend, f core.Frame) (alarms []core.Alarm, err error) {
	defer func() {
		if r := recover(); r != nil {
			alarms, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return det.Push(f)
}

// GuardPushScores is GuardPush for the score path — used to keep a warm
// fallback backend current from the live frames without trusting it not
// to panic either.
func GuardPushScores(det core.StreamBackend, f core.Frame) (scores []float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			scores, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return det.PushScores(f)
}
