package engine

import (
	"math"
	"strings"
	"testing"
	"time"

	"aero/internal/core"
	"aero/internal/metrics"
)

// instrumentedBackend is a scriptBackend that also exposes the two
// optional observability capabilities the engine wires up: the stage
// split clock (DSPOTStage's shape) and incremental-path counters
// (StreamDetector's shape). Each push is served "incrementally" so path
// classification exercises the benign branch.
type instrumentedBackend struct {
	scriptBackend
	clock   func() int64
	splitNs int64
	inc     core.IncrementalStats
}

func (b *instrumentedBackend) SetStageClock(now func() int64) { b.clock = now }
func (b *instrumentedBackend) LastSplitNanos() int64          { return b.splitNs }
func (b *instrumentedBackend) IncrementalStats() core.IncrementalStats {
	return b.inc
}

func (b *instrumentedBackend) Push(f core.Frame) ([]core.Alarm, error) {
	if b.clock != nil {
		b.splitNs = b.clock()
	}
	b.inc.Frames++
	b.inc.Incremental++
	return b.scriptBackend.Push(f)
}

// obsSub builds an engine with observability on, subscribes det, and
// hands back the internal subscription plus the engine for cleanup.
func obsSub(t testing.TB, reg *metrics.Registry, det core.StreamBackend, trace TraceConfig) (*Engine, *subscription) {
	t.Helper()
	e := New(Config{Shards: 1, Workers: 1, Metrics: reg, Trace: trace})
	if _, err := e.SubscribeBackend("tenant", det); err != nil {
		t.Fatal(err)
	}
	e.mu.RLock()
	sub := e.subs["tenant"]
	e.mu.RUnlock()
	return e, sub
}

// TestMetricsHotPathAllocs pins the tentpole acceptance criterion: the
// FULLY instrumented engine score path — pre-lock stamp, hygiene +
// push + split stamps, path classification, per-kind histogram records,
// and the trace-ring write — allocates nothing per frame.
func TestMetricsHotPathAllocs(t *testing.T) {
	reg := metrics.NewRegistry()
	det := &instrumentedBackend{scriptBackend: scriptBackend{n: 2}}
	e, sub := obsSub(t, reg, det, TraceConfig{Depth: 64, SlowThreshold: time.Second})
	defer e.Close()
	if sub.obs == nil || sub.splitter == nil || sub.incStats == nil {
		t.Fatalf("observability wiring incomplete: obs=%v splitter=%v incStats=%v",
			sub.obs != nil, sub.splitter != nil, sub.incStats != nil)
	}
	mags := []float64{0.1, 0.2}
	ti := 0.0
	if allocs := testing.AllocsPerRun(1000, func() {
		ti++
		t0 := metrics.Now()
		sub.mu.Lock()
		res := sub.score(ti, mags, t0)
		sub.mu.Unlock()
		sub.recordFrame(ti, &res, t0)
	}); allocs != 0 {
		t.Fatalf("instrumented score path allocates %.1f objects/frame, want 0", allocs)
	}
	// The instruments really did run.
	h := reg.FindHistogram("aero_engine_score_seconds", "kind", "script")
	if h.Count() == 0 {
		t.Fatalf("score histogram recorded nothing")
	}
	if th := reg.FindHistogram("aero_dspot_step_seconds", "kind", "script"); th == nil {
		t.Fatalf("tail histogram not registered for a split-capable backend")
	}
	snap := sub.obs.ring.Snapshot()
	if snap.Total == 0 || len(snap.Frames) == 0 {
		t.Fatalf("trace ring recorded nothing")
	}
	last := snap.Frames[len(snap.Frames)-1]
	if last.Path != metrics.PathBenign {
		t.Fatalf("path = %s, want benign", metrics.PathName(last.Path))
	}
}

// alarmScriptBackend alarms deterministically: every alarmEvery-th push
// raises one alarm whose score is a pure function of the frame time.
type alarmScriptBackend struct {
	scriptBackend
	alarmEvery int
}

func (b *alarmScriptBackend) Push(f core.Frame) ([]core.Alarm, error) {
	b.step(f.Time)
	if b.pushes%b.alarmEvery == 0 {
		b.alarms[0] = core.Alarm{Variate: 0, Time: f.Time, Score: math.Sin(f.Time) * 10}
		return b.alarms[:], nil
	}
	return nil, nil
}

// TestInstrumentedGoldenAlarmIdentity proves observability changes no
// verdict: the same frame sequence through an instrumented engine and an
// uninstrumented one yields bit-identical alarm streams.
func TestInstrumentedGoldenAlarmIdentity(t *testing.T) {
	run := func(reg *metrics.Registry) []Alarm {
		e := New(Config{Shards: 1, Workers: 1, Metrics: reg,
			Trace: TraceConfig{Depth: 16, SlowThreshold: time.Nanosecond}})
		if _, err := e.SubscribeBackend("gold", &alarmScriptBackend{
			scriptBackend: scriptBackend{n: 1}, alarmEvery: 7}); err != nil {
			t.Fatal(err)
		}
		var got []Alarm
		done := make(chan struct{})
		go func() {
			defer close(done)
			for a := range e.Alarms() {
				got = append(got, a)
			}
		}()
		for i := 0; i < 500; i++ {
			if err := e.Ingest("gold", core.Frame{Time: float64(i), Magnitudes: []float64{0.5}}); err != nil {
				t.Error(err)
				break
			}
		}
		e.Close()
		<-done
		return got
	}
	bare := run(nil)
	instr := run(metrics.NewRegistry())
	if len(bare) != len(instr) {
		t.Fatalf("alarm counts differ: bare %d, instrumented %d", len(bare), len(instr))
	}
	if len(bare) == 0 {
		t.Fatalf("golden run produced no alarms")
	}
	for i := range bare {
		a, b := bare[i], instr[i]
		if a.Sub != b.Sub || a.Variate != b.Variate ||
			math.Float64bits(a.Time) != math.Float64bits(b.Time) ||
			math.Float64bits(a.Score) != math.Float64bits(b.Score) {
			t.Fatalf("alarm %d differs: bare %+v, instrumented %+v", i, a, b)
		}
	}
}

// TestEngineMetricsExposition wires a full engine and checks the scrape
// surface end to end: series exist, names lint clean, histograms carry
// samples, and the trace snapshot classifies paths.
func TestEngineMetricsExposition(t *testing.T) {
	reg := metrics.NewRegistry()
	det := &instrumentedBackend{scriptBackend: scriptBackend{n: 1}}
	e := New(Config{Shards: 2, Workers: 1, Metrics: reg,
		Trace: TraceConfig{Depth: 8, SlowThreshold: time.Second}})
	defer e.Close()
	s, err := e.SubscribeBackend("t0", det)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range e.Alarms() {
		}
	}()
	for i := 0; i < 50; i++ {
		if err := e.Ingest("t0", core.Frame{Time: float64(i), Magnitudes: []float64{0.5}}); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"aero_engine_frames_total 50",
		`aero_engine_queue_depth{shard="0"}`,
		`aero_engine_queue_headroom{shard="1"}`,
		`aero_engine_score_seconds_count{kind="script"} 50`,
		`aero_engine_tenants{health="healthy"} 1`,
		"aero_incremental_served_total 50",
		"aero_engine_drain_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing %q in:\n%s", want, out)
		}
	}
	for _, name := range reg.SeriesNames() {
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if !metrics.ValidName(base) {
			t.Fatalf("registered series %q has invalid base name %q", name, base)
		}
	}
	snap, ok := s.Trace()
	if !ok || snap.Total != 50 {
		t.Fatalf("trace: ok=%v total=%d, want 50", ok, snap.Total)
	}
	for _, fr := range snap.Frames {
		if fr.Path != metrics.PathBenign {
			t.Fatalf("frame %d path %s, want benign", fr.Seq, metrics.PathName(fr.Path))
		}
	}
}

// TestTraceDisabledWithoutMetrics: no registry, no tracing, nil-check
// only.
func TestTraceDisabledWithoutMetrics(t *testing.T) {
	e := New(Config{Shards: 1, Workers: 1})
	defer e.Close()
	s, err := e.SubscribeBackend("t0", &scriptBackend{n: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Trace(); ok {
		t.Fatalf("trace reported available on an uninstrumented engine")
	}
}

// BenchmarkInstrumentedPush quantifies the observability tax on the
// engine score path: the bare supervised push vs the same push with the
// full instrument set (stamps, classification, histograms, trace ring).
// CI runs it at -benchtime=1x; the alloc budget is pinned by
// TestMetricsHotPathAllocs.
func BenchmarkInstrumentedPush(b *testing.B) {
	mags := []float64{0.1, 0.2}
	b.Run("bare", func(b *testing.B) {
		det := &scriptBackend{n: 2}
		sub := mkSub("bare", det, HygieneConfig{Policy: HygieneHoldLast}, HealthConfig{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sub.mu.Lock()
			sub.score(float64(i+1), mags, 0)
			sub.mu.Unlock()
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		reg := metrics.NewRegistry()
		det := &instrumentedBackend{scriptBackend: scriptBackend{n: 2}}
		e, sub := obsSub(b, reg, det, TraceConfig{})
		defer e.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := metrics.Now()
			sub.mu.Lock()
			res := sub.score(float64(i+1), mags, t0)
			sub.mu.Unlock()
			sub.recordFrame(float64(i+1), &res, t0)
		}
	})
}
