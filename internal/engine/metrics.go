package engine

import (
	"strconv"
	"sync/atomic"
	"time"

	"aero/internal/core"
	"aero/internal/evt"
	"aero/internal/metrics"
)

// TraceConfig parameterizes the per-subscription frame-trace flight
// recorder, active whenever Config.Metrics is set.
type TraceConfig struct {
	// Depth is how many recent frame traces each tenant retains
	// (Depth × ~80 B of fixed memory per tenant). Defaults to 64.
	Depth int
	// SlowThreshold pins the slowest frame at or above this end-to-end
	// latency for /trace inspection. Defaults to 250ms; negative
	// disables slow capture.
	SlowThreshold time.Duration
}

func (c TraceConfig) withDefaults() TraceConfig {
	if c.Depth <= 0 {
		c.Depth = 64
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = 250 * time.Millisecond
	}
	if c.SlowThreshold < 0 {
		c.SlowThreshold = 0
	}
	return c
}

// stageSplitter is the optional capability of staged backends
// (backend.DSPOTStage): a clock installed at subscribe time stamps the
// boundary between the inner score and the adaptive tail step, so the
// metrics layer can split "score" from "tail" latency without the
// engine reaching into backend internals.
type stageSplitter interface {
	SetStageClock(now func() int64)
	LastSplitNanos() int64
}

// incrementalStatser is the optional capability of backends that
// maintain incremental-forward counters (core.StreamDetector, and
// backend.DSPOTStage by delegation); the frame tracer diffs the
// counters across a push to classify which score path served it.
type incrementalStatser interface {
	IncrementalStats() core.IncrementalStats
}

// engineObs is the engine-wide observability state, nil when disabled.
type engineObs struct {
	reg   *metrics.Registry
	trace TraceConfig
	drain *metrics.Histogram
}

// subObs is one tenant's observability state: its trace ring and its
// kind-labeled latency series. Written only by the draining worker (one
// worker drains a shard at a time, a tenant is pinned to one shard), so
// seq needs no atomics.
type subObs struct {
	ring  *metrics.TraceRing
	score *metrics.Histogram // primary push, hygiene excluded
	tail  *metrics.Histogram // adaptive tail share of the push, staged backends only
	seq   uint64
}

// newEngineObs registers the engine-level series: shard queue gauges,
// scrape-time counter views over stats the hot path already maintains,
// and the drain-latency histogram. Everything here reads existing
// counters — the only new hot-path work observability adds lives in
// drain/score stamps.
func (e *Engine) newEngineObs(reg *metrics.Registry, trace TraceConfig) *engineObs {
	obs := &engineObs{
		reg:   reg,
		trace: trace.withDefaults(),
		drain: reg.Histogram("aero_engine_drain_seconds", "latency of one shard drain batch"),
	}
	reg.CounterFunc("aero_engine_frames_total", "frames scored", func() float64 {
		return float64(e.Totals().Frames)
	})
	reg.CounterFunc("aero_engine_alarms_total", "alarms emitted", func() float64 {
		return float64(e.Totals().Alarms)
	})
	reg.CounterFunc("aero_engine_alarms_blocked_total", "alarm emissions that parked on a full fan-in channel", func() float64 {
		return float64(e.Totals().AlarmsBlocked)
	})
	reg.CounterFunc("aero_engine_errors_total", "frames rejected at scoring or routing time", func() float64 {
		return float64(e.Totals().Errors)
	})
	reg.CounterFunc("aero_engine_errors_dropped_total", "frame-error reports dropped from the Errors channel", func() float64 {
		return float64(e.Totals().ErrorsDropped)
	})
	for _, sh := range e.shards {
		sh := sh
		label := strconv.Itoa(sh.id)
		reg.GaugeFunc("aero_engine_queue_depth", "frames waiting in the shard queue", func() float64 {
			sh.mu.Lock()
			defer sh.mu.Unlock()
			return float64(sh.count)
		}, "shard", label)
		reg.GaugeFunc("aero_engine_queue_headroom", "free slots in the shard queue", func() float64 {
			sh.mu.Lock()
			defer sh.mu.Unlock()
			return float64(len(sh.queue) - sh.count)
		}, "shard", label)
	}
	for _, st := range []HealthState{HealthHealthy, HealthDegraded, HealthQuarantined, HealthProbation} {
		st := st
		reg.GaugeFunc("aero_engine_tenants", "tenants by health state", func() float64 {
			n := 0
			e.mu.RLock()
			for _, sub := range e.subs {
				if sub.state() == st {
					n++
				}
			}
			e.mu.RUnlock()
			return float64(n)
		}, "health", st.String())
	}
	sumSubs := func(read func(*subscription) uint64) func() float64 {
		return func() float64 {
			var total uint64
			e.mu.RLock()
			for _, sub := range e.subs {
				total += read(sub)
			}
			e.mu.RUnlock()
			return float64(total)
		}
	}
	reg.CounterFunc("aero_engine_faults_total", "faults charged by health supervision",
		sumSubs(func(s *subscription) uint64 { return atomic.LoadUint64(&s.faultsTotal) }))
	reg.CounterFunc("aero_engine_panics_total", "contained backend panics",
		sumSubs(func(s *subscription) uint64 { return atomic.LoadUint64(&s.panics) }))
	reg.CounterFunc("aero_engine_hygiene_dropped_total", "frames rejected by the hygiene stage",
		sumSubs(func(s *subscription) uint64 { return atomic.LoadUint64(&s.hygieneDropped) }))
	reg.CounterFunc("aero_engine_hygiene_repaired_total", "frames repaired in place by the hygiene stage",
		sumSubs(func(s *subscription) uint64 { return atomic.LoadUint64(&s.hygieneRepaired) }))
	reg.CounterFunc("aero_engine_fallback_frames_total", "frames served by warm fallback backends",
		sumSubs(func(s *subscription) uint64 { return atomic.LoadUint64(&s.fallbackFrames) }))

	// Incremental-forward and tail-refit counters live inside backends
	// and are only coherent behind the subscription lock; the scrape
	// takes each tenant's lock briefly, exactly like /stats does.
	incSum := func(read func(core.IncrementalStats) uint64) func() float64 {
		return func() float64 {
			var total uint64
			e.mu.RLock()
			defer e.mu.RUnlock()
			for _, sub := range e.subs {
				if sub.incStats == nil {
					continue
				}
				sub.mu.Lock()
				total += read(sub.incStats.IncrementalStats())
				sub.mu.Unlock()
			}
			return float64(total)
		}
	}
	reg.CounterFunc("aero_incremental_frames_total", "frames scored by incremental-capable backends",
		incSum(func(st core.IncrementalStats) uint64 { return st.Frames }))
	reg.CounterFunc("aero_incremental_served_total", "frames served by the incremental O(1) path",
		incSum(func(st core.IncrementalStats) uint64 { return st.Incremental }))
	for _, c := range []struct {
		cause string
		read  func(core.IncrementalStats) uint64
	}{
		{"scheduled", func(st core.IncrementalStats) uint64 { return st.ScheduledRefreshes }},
		{"drift", func(st core.IncrementalStats) uint64 { return st.DriftRefreshes }},
		{"boundary", func(st core.IncrementalStats) uint64 { return st.BoundaryRefreshes }},
		{"invalidation", func(st core.IncrementalStats) uint64 { return st.InvalidationRefreshes }},
	} {
		reg.CounterFunc("aero_incremental_refreshes_total", "full exact refreshes by cause",
			incSum(c.read), "cause", c.cause)
	}
	refitSum := func(read func(evt.RefitStats) uint64) func() float64 {
		return func() float64 {
			var total uint64
			e.mu.RLock()
			defer e.mu.RUnlock()
			for _, sub := range e.subs {
				sub.mu.Lock()
				if r, ok := sub.det.(tailRefitter); ok {
					total += read(r.RefitStats())
				}
				sub.mu.Unlock()
			}
			return float64(total)
		}
	}
	reg.CounterFunc("aero_dspot_exceedances_total", "tail exceedances fed to excess rings",
		refitSum(func(r evt.RefitStats) uint64 { return r.Exceedances }))
	reg.CounterFunc("aero_dspot_refits_total", "tail-model fits (warm + grid)",
		refitSum(func(r evt.RefitStats) uint64 { return r.Refits }))
	reg.CounterFunc("aero_dspot_warm_refits_total", "refits settled by the warm Newton search",
		refitSum(func(r evt.RefitStats) uint64 { return r.WarmRefits }))
	reg.CounterFunc("aero_dspot_grid_refits_total", "refits that ran the full Grimshaw grid scan",
		refitSum(func(r evt.RefitStats) uint64 { return r.GridRefits }))
	reg.CounterFunc("aero_dspot_refit_seconds_total", "wall time spent inside tail refits", func() float64 {
		var total uint64
		e.mu.RLock()
		defer e.mu.RUnlock()
		for _, sub := range e.subs {
			sub.mu.Lock()
			if r, ok := sub.det.(tailRefitter); ok {
				total += r.RefitStats().RefitNanos
			}
			sub.mu.Unlock()
		}
		return float64(total) / 1e9
	})
	return obs
}

// attachObs wires one subscription's observability: its kind-labeled
// latency series, its trace ring, and the optional backend capabilities
// (stage split clock, incremental-path counters). Called under e.mu at
// subscribe time; sub is not yet visible to workers.
func (e *Engine) attachObs(sub *subscription) {
	if inc, ok := sub.det.(incrementalStatser); ok {
		sub.incStats = inc
	}
	if e.obs == nil {
		return
	}
	kind := sub.det.Kind()
	obs := &subObs{
		ring: metrics.NewTraceRing(e.obs.trace.Depth, e.obs.trace.SlowThreshold),
		score: e.obs.reg.Histogram("aero_engine_score_seconds",
			"primary backend push latency (hygiene excluded)", "kind", kind),
	}
	if sp, ok := sub.det.(stageSplitter); ok {
		sub.splitter = sp
		sp.SetStageClock(metrics.Now)
		obs.tail = e.obs.reg.Histogram("aero_dspot_step_seconds",
			"adaptive tail share of the push (post inner score)", "kind", kind)
	}
	sub.obs = obs
}

// classifyPath labels which score path served a push, from the
// incremental counter deltas across it.
func classifyPath(before, after core.IncrementalStats) uint8 {
	switch {
	case after.Incremental > before.Incremental:
		return metrics.PathBenign
	case after.BoundaryRefreshes > before.BoundaryRefreshes:
		return metrics.PathGuard
	case after.ScheduledRefreshes > before.ScheduledRefreshes,
		after.DriftRefreshes > before.DriftRefreshes,
		after.InvalidationRefreshes > before.InvalidationRefreshes:
		return metrics.PathRefresh
	}
	return metrics.PathFull
}

// recordFrame feeds one scored frame into the tenant's latency series
// and trace ring. It runs in the drain loop AFTER sub.mu is released
// and after alarm fan-in, so the ring's fan-in stage is real emission
// latency and the subscription's critical section is never lengthened
// by observability. Allocation-free (pinned by TestMetricsHotPathAllocs).
func (sub *subscription) recordFrame(t float64, res *scoreResult, t0 int64) {
	obs := sub.obs
	if obs == nil {
		return
	}
	end := metrics.Now()
	obs.seq++
	ft := metrics.FrameTrace{
		Seq:     obs.seq,
		Time:    t,
		StartNs: t0,
		Path:    res.path,
		Err:     res.err != nil,
	}
	if n := len(res.alarms); n > 255 {
		ft.Alarms = 255
	} else {
		ft.Alarms = uint8(n)
	}
	if res.lockNs >= t0 {
		ft.Stage[metrics.StageWait] = res.lockNs - t0
	}
	if res.pushNs >= res.lockNs {
		ft.Stage[metrics.StageHygiene] = res.pushNs - res.lockNs
	}
	if res.doneNs > res.pushNs {
		push := res.doneNs - res.pushNs
		if res.splitNs > res.pushNs && res.splitNs <= res.doneNs {
			ft.Stage[metrics.StageScore] = res.splitNs - res.pushNs
			ft.Stage[metrics.StageTail] = res.doneNs - res.splitNs
		} else {
			ft.Stage[metrics.StageScore] = push
		}
		if res.err == nil {
			obs.score.Record(push)
			if obs.tail != nil && ft.Stage[metrics.StageTail] > 0 {
				obs.tail.Record(ft.Stage[metrics.StageTail])
			}
		}
		ft.Stage[metrics.StageFanIn] = end - res.doneNs
	}
	obs.ring.Record(&ft)
}

// Trace snapshots the tenant's frame-trace ring; ok is false when the
// engine runs without observability.
func (s *Subscription) Trace() (metrics.TraceSnapshot, bool) {
	if s.sub.obs == nil {
		return metrics.TraceSnapshot{}, false
	}
	return s.sub.obs.ring.Snapshot(), true
}
