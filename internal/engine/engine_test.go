package engine_test

import (
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aero/internal/core"
	"aero/internal/dataset"
	"aero/internal/engine"
)

// fixture trains one small model shared by every test; engine scoring only
// reads the trained weights, so tenants and tests can share it freely.
var (
	fixOnce sync.Once
	fixM    *core.Model
	fixD    *dataset.Dataset
	fixErr  error
)

func fixtureConfig() core.Config {
	c := core.SmallConfig()
	c.LongWindow = 48
	c.ShortWindow = 16
	c.MaxEpochs = 3
	c.TrainStride = 24
	c.EvalStride = 16
	c.Seed = 9
	return c
}

func fixture(t *testing.T) (*core.Model, *dataset.Dataset) {
	t.Helper()
	fixOnce.Do(func() {
		fixD = tenantSeries(0)
		m, err := core.New(fixtureConfig(), fixD.Train.N())
		if err != nil {
			fixErr = err
			return
		}
		fixErr = m.Fit(fixD.Train)
		fixM = m
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixM, fixD
}

// tenantSeries generates the dataset observed by one tenant; each tenant
// watches a field with the same star count but different noise/anomalies.
func tenantSeries(tenant int) *dataset.Dataset {
	return dataset.SyntheticConfig{
		Name: "engine", N: 6, TrainLen: 350, TestLen: 260,
		NoiseVariates: 4, AnomalySegments: 1, NoisePct: 3,
		VariableFrac: 0.5, Seed: int64(100 + tenant),
	}.Generate()
}

func collectAlarms(e *engine.Engine) (map[string][]core.Alarm, *sync.WaitGroup) {
	got := map[string][]core.Alarm{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for a := range e.Alarms() {
			got[a.Sub] = append(got[a.Sub], a.Alarm)
		}
	}()
	return got, &wg
}

// TestEngineMatchesSequentialReplay is the equivalence contract of the
// batched engine: for every tenant, the sharded worker-pool pipeline must
// produce exactly the alarms a sequential StreamDetector.Replay produces —
// same frames, same order, bit-identical scores.
func TestEngineMatchesSequentialReplay(t *testing.T) {
	m, _ := fixture(t)
	const tenants = 4
	series := make([]*dataset.Series, tenants)
	want := make([][]core.Alarm, tenants)
	ids := []string{"gwac-f0", "gwac-f1", "gwac-f2", "gwac-f3"}
	for i := 0; i < tenants; i++ {
		series[i] = tenantSeries(i).Test
		det, err := core.NewStreamDetector(m)
		if err != nil {
			t.Fatal(err)
		}
		if want[i], err = det.Replay(series[i]); err != nil {
			t.Fatal(err)
		}
	}

	e := engine.New(engine.Config{Shards: 3, Workers: 4, QueueDepth: 16, BatchSize: 4})
	for _, id := range ids {
		if _, err := e.Subscribe(id, m); err != nil {
			t.Fatal(err)
		}
	}
	got, wg := collectAlarms(e)

	// Interleave tenants frame-by-frame, as a telescope camera would.
	frame := core.Frame{Magnitudes: make([]float64, series[0].N())}
	for ti := 0; ti < series[0].Len(); ti++ {
		for i, id := range ids {
			s := series[i]
			frame.Time = s.Time[ti]
			for v := 0; v < s.N(); v++ {
				frame.Magnitudes[v] = s.Data[v][ti]
			}
			if err := e.Ingest(id, frame); err != nil {
				t.Fatal(err)
			}
		}
	}
	e.Flush()
	e.Close()
	wg.Wait()

	totalWanted := 0
	for i, id := range ids {
		totalWanted += len(want[i])
		g := got[id]
		if len(g) != len(want[i]) {
			t.Fatalf("tenant %s: engine produced %d alarms, sequential replay %d", id, len(g), len(want[i]))
		}
		for k := range g {
			if g[k] != want[i][k] {
				t.Fatalf("tenant %s alarm %d: engine %+v != replay %+v", id, k, g[k], want[i][k])
			}
		}
	}
	if totalWanted == 0 {
		t.Fatal("fixture produced no alarms; equivalence test is vacuous")
	}
}

// TestSwapMatchesSequentialReplay is the hot-swap equivalence contract:
// replaying a feed with mid-stream Swaps to the *same* weights (Save/Load
// round-trips of the serving model) must be bit-identical to a sequential
// replay with no swap at all. One swap lands at a quiesced frame boundary
// (after Flush), one races live ingestion — since the engine serializes
// swaps with scoring on the subscription lock, even the racing swap lands
// between frames, and identical weights make its exact landing spot
// unobservable. Zero frames may be dropped or re-ordered.
func TestSwapMatchesSequentialReplay(t *testing.T) {
	m, _ := fixture(t)
	path := filepath.Join(t.TempDir(), "twin.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	twin, err := core.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	twin2, err := core.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	series := tenantSeries(0).Test
	det, err := core.NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	want, err := det.Replay(series)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture replay produced no alarms; swap equivalence is vacuous")
	}

	e := engine.New(engine.Config{Shards: 2, Workers: 2, QueueDepth: 8, BatchSize: 4})
	sub, err := e.Subscribe("swap", m)
	if err != nil {
		t.Fatal(err)
	}
	got, wg := collectAlarms(e)

	frame := core.Frame{Magnitudes: make([]float64, series.N())}
	ingest := func(ti int) {
		frame.Time = series.Time[ti]
		for v := 0; v < series.N(); v++ {
			frame.Magnitudes[v] = series.Data[v][ti]
		}
		if err := e.Ingest("swap", frame); err != nil {
			t.Fatal(err)
		}
	}
	third := series.Len() / 3
	for ti := 0; ti < third; ti++ {
		ingest(ti)
	}
	e.Flush()
	if err := sub.Swap(twin); err != nil { // quiesced swap at a frame boundary
		t.Fatalf("swap: %v", err)
	}
	swapped := make(chan error, 1)
	for ti := third; ti < 2*third; ti++ {
		if ti == third+third/2 {
			go func() { swapped <- sub.Swap(twin2) }() // racing live ingestion
		}
		ingest(ti)
	}
	if err := <-swapped; err != nil {
		t.Fatalf("concurrent swap: %v", err)
	}
	for ti := 2 * third; ti < series.Len(); ti++ {
		ingest(ti)
	}
	e.Flush()
	if st := sub.Stats(); st.Swaps != 2 || st.Frames != uint64(series.Len()) {
		t.Fatalf("stats %+v, want 2 swaps and %d frames", st, series.Len())
	}
	e.Close()
	wg.Wait()

	g := got["swap"]
	if len(g) != len(want) {
		t.Fatalf("engine produced %d alarms across swaps, sequential replay %d", len(g), len(want))
	}
	for k := range g {
		if g[k] != want[k] {
			t.Fatalf("alarm %d: engine %+v != replay %+v", k, g[k], want[k])
		}
	}
}

// TestSubscriptionSwapRejectsMismatch checks that a bad swap surfaces the
// core validation error and leaves the tenant serving the old model.
func TestSubscriptionSwapRejectsMismatch(t *testing.T) {
	m, d := fixture(t)
	e := engine.New(engine.Config{Shards: 1, Workers: 1})
	sub, err := e.Subscribe("strict", m)
	if err != nil {
		t.Fatal(err)
	}
	unfitted, err := core.New(fixtureConfig(), d.Test.N())
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Swap(unfitted); err == nil {
		t.Fatal("swap accepted an unfitted model")
	}
	if st := sub.Stats(); st.Swaps != 0 {
		t.Fatalf("failed swap counted: %+v", st)
	}
	_, wg := collectAlarms(e)
	e.Close()
	wg.Wait()
}

// TestSubscriptionSnapshotRestore round-trips warm detector state through
// the Subscription pass-throughs: a second engine restores the first's
// state and continues the feed with bit-identical alarms.
func TestSubscriptionSnapshotRestore(t *testing.T) {
	m, _ := fixture(t)
	series := tenantSeries(0).Test
	det, err := core.NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	want, err := det.Replay(series)
	if err != nil {
		t.Fatal(err)
	}

	cut := series.Len() / 2
	feed := func(e *engine.Engine, id string, lo, hi int) {
		frame := core.Frame{Magnitudes: make([]float64, series.N())}
		for ti := lo; ti < hi; ti++ {
			frame.Time = series.Time[ti]
			for v := 0; v < series.N(); v++ {
				frame.Magnitudes[v] = series.Data[v][ti]
			}
			if err := e.Ingest(id, frame); err != nil {
				t.Fatal(err)
			}
		}
		e.Flush()
	}

	e1 := engine.New(engine.Config{Shards: 1, Workers: 1})
	sub1, err := e1.Subscribe("gen1", m)
	if err != nil {
		t.Fatal(err)
	}
	got1, wg1 := collectAlarms(e1)
	feed(e1, "gen1", 0, cut)
	blob, err := sub1.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	e1.Close()
	wg1.Wait()

	e2 := engine.New(engine.Config{Shards: 1, Workers: 1})
	sub2, err := e2.Subscribe("gen2", m)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	got2, wg2 := collectAlarms(e2)
	feed(e2, "gen2", cut, series.Len())
	e2.Close()
	wg2.Wait()

	all := append(append([]core.Alarm(nil), got1["gen1"]...), got2["gen2"]...)
	if len(all) != len(want) {
		t.Fatalf("restart produced %d alarms, uninterrupted replay %d", len(all), len(want))
	}
	for k := range all {
		if all[k] != want[k] {
			t.Fatalf("alarm %d: restart %+v != replay %+v", k, all[k], want[k])
		}
	}
	if len(want) == 0 {
		t.Fatal("fixture replay produced no alarms; restore equivalence is vacuous")
	}
}

// TestEngineBackpressureLossless saturates a tiny queue and asserts the
// engine blocks producers instead of dropping frames.
func TestEngineBackpressureLossless(t *testing.T) {
	m, d := fixture(t)
	e := engine.New(engine.Config{Shards: 1, Workers: 1, QueueDepth: 2, BatchSize: 1})
	sub, err := e.Subscribe("solo", m)
	if err != nil {
		t.Fatal(err)
	}
	_, wg := collectAlarms(e)
	frames := 2 * m.Config().LongWindow
	frame := core.Frame{Magnitudes: make([]float64, d.Test.N())}
	for ti := 0; ti < frames; ti++ {
		idx := ti % d.Test.Len()
		frame.Time = float64(ti)
		for v := 0; v < d.Test.N(); v++ {
			frame.Magnitudes[v] = d.Test.Data[v][idx]
		}
		if err := e.Ingest("solo", frame); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	if got := sub.Stats().Frames; got != uint64(frames) {
		t.Fatalf("scored %d frames, want %d (lossless backpressure)", got, frames)
	}
	e.Close()
	wg.Wait()
}

// TestEngineSamplesChannel feeds frames through the channel ingest path
// and verifies routing errors surface on Errors.
func TestEngineSamplesChannel(t *testing.T) {
	m, d := fixture(t)
	e := engine.New(engine.Config{Shards: 2, Workers: 2})
	if _, err := e.Subscribe("chan", m); err != nil {
		t.Fatal(err)
	}
	_, wg := collectAlarms(e)
	var errCount atomic.Int32
	var ewg sync.WaitGroup
	ewg.Add(1)
	go func() {
		defer ewg.Done()
		for range e.Errors() {
			errCount.Add(1)
		}
	}()

	in := e.Samples()
	n := m.Config().LongWindow / 2
	for ti := 0; ti < n; ti++ {
		mags := make([]float64, d.Test.N())
		for v := range mags {
			mags[v] = d.Test.Data[v][ti]
		}
		in <- engine.Sample{Sub: "chan", Frame: core.Frame{Time: float64(ti), Magnitudes: mags}}
	}
	// Unroutable and malformed samples must not wedge the pipeline.
	in <- engine.Sample{Sub: "nobody", Frame: core.Frame{Time: 1, Magnitudes: make([]float64, d.Test.N())}}
	in <- engine.Sample{Sub: "chan", Frame: core.Frame{Time: 999, Magnitudes: make([]float64, 1)}}

	// Wait until the router has handed everything off: n scored frames and
	// two reported errors. Close may otherwise race the buffered channel.
	for e.Totals().Frames < uint64(n) || errCount.Load() < 2 {
		time.Sleep(time.Millisecond)
		e.Flush()
	}
	e.Close()
	wg.Wait()
	ewg.Wait()
	if got := errCount.Load(); got != 2 {
		t.Fatalf("expected 2 frame errors on the channel, got %d", got)
	}
}

// TestEngineCloseUnblocksProducers pins the shutdown contract: a producer
// parked on a saturated shard must be released with ErrClosed when the
// engine closes, not deadlock.
func TestEngineCloseUnblocksProducers(t *testing.T) {
	m, d := fixture(t)
	e := engine.New(engine.Config{Shards: 1, Workers: 1, QueueDepth: 1, BatchSize: 1})
	if _, err := e.Subscribe("p", m); err != nil {
		t.Fatal(err)
	}
	_, wg := collectAlarms(e)
	done := make(chan error, 1)
	go func() {
		frame := core.Frame{Magnitudes: make([]float64, d.Test.N())}
		for ti := 0; ; ti++ {
			idx := ti % d.Test.Len()
			frame.Time = float64(ti)
			for v := 0; v < d.Test.N(); v++ {
				frame.Magnitudes[v] = d.Test.Data[v][idx]
			}
			if err := e.Ingest("p", frame); err != nil {
				done <- err
				return
			}
		}
	}()
	time.Sleep(50 * time.Millisecond) // let the producer outrun the single worker
	e.Close()
	select {
	case err := <-done:
		if !errors.Is(err, engine.ErrClosed) {
			t.Fatalf("producer unblocked with %v, want ErrClosed", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("producer still blocked after Close")
	}
	wg.Wait()
}

// chattyBackend is a stub StreamBackend that raises exactly one alarm
// per frame (score = the frame's time), so alarm-channel backpressure
// tests control the alarm volume precisely.
type chattyBackend struct {
	n      int
	count  int
	last   float64
	alarms [1]core.Alarm
}

func (c *chattyBackend) Kind() string       { return "chatty" }
func (c *chattyBackend) Variates() int      { return c.n }
func (c *chattyBackend) Ready() bool        { return c.count > 0 }
func (c *chattyBackend) Threshold() float64 { return 0 }
func (c *chattyBackend) LastTime() (float64, bool) {
	return c.last, c.count > 0
}
func (c *chattyBackend) PushScores(f core.Frame) ([]float64, error) {
	c.count++
	c.last = f.Time
	return nil, nil
}
func (c *chattyBackend) Push(f core.Frame) ([]core.Alarm, error) {
	if _, err := c.PushScores(f); err != nil {
		return nil, err
	}
	c.alarms[0] = core.Alarm{Variate: 0, Time: f.Time, Score: f.Time}
	return c.alarms[:], nil
}
func (c *chattyBackend) SwapArtifact([]byte) error      { return errors.New("chatty: no artifacts") }
func (c *chattyBackend) SnapshotState() ([]byte, error) { return nil, errors.New("chatty: no state") }
func (c *chattyBackend) RestoreState([]byte) error      { return errors.New("chatty: no state") }

// TestEngineSlowAlarmConsumerBackpressure pins the fan-in contract under
// a slow Alarms consumer: with a one-slot alarm channel and a tiny shard
// queue, scoring must stall (backpressure reaching Ingest) rather than
// drop or reorder alarms, and the stall must be visible in the new
// AlarmsBlocked counters. Once the consumer drains, every alarm arrives
// exactly once, in per-tenant arrival order.
func TestEngineSlowAlarmConsumerBackpressure(t *testing.T) {
	e := engine.New(engine.Config{Shards: 1, Workers: 1, QueueDepth: 2, BatchSize: 1, AlarmBuffer: 1})
	sub, err := e.SubscribeBackend("slow", &chattyBackend{n: 1})
	if err != nil {
		t.Fatal(err)
	}
	const frames = 64
	fed := make(chan struct{})
	go func() {
		defer close(fed)
		f := core.Frame{Magnitudes: make([]float64, 1)}
		for ti := 0; ti < frames; ti++ {
			f.Time = float64(ti)
			if err := e.Ingest("slow", f); err != nil {
				t.Errorf("ingest: %v", err)
				return
			}
		}
	}()

	// Nobody consumes Alarms yet: scoring must wedge after the channel
	// slot plus in-flight frames, and the feeder must park on the full
	// shard queue instead of completing.
	deadline := time.Now().Add(5 * time.Second)
	for sub.Stats().AlarmsBlocked == 0 {
		if time.Now().After(deadline) {
			t.Fatal("scoring never reported a blocked alarm emission")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let any incorrect dropping/draining manifest
	select {
	case <-fed:
		t.Fatalf("feeder finished with no alarm consumer (scored %d frames): alarms were dropped", sub.Stats().Frames)
	default:
	}
	if got := sub.Stats().Frames; got >= frames {
		t.Fatalf("all %d frames scored against a stalled consumer", got)
	}

	// Drain: every alarm must appear exactly once, in arrival order.
	var alarms []core.Alarm
	done := make(chan struct{})
	go func() {
		defer close(done)
		for a := range e.Alarms() {
			alarms = append(alarms, a.Alarm)
		}
	}()
	<-fed
	e.Flush()
	e.Close()
	<-done
	if len(alarms) != frames {
		t.Fatalf("consumer received %d alarms, want %d", len(alarms), frames)
	}
	for i, a := range alarms {
		if a.Time != float64(i) || a.Score != float64(i) {
			t.Fatalf("alarm %d out of order: %+v", i, a)
		}
	}
	if tot := e.Totals(); tot.AlarmsBlocked == 0 || tot.Alarms != frames {
		t.Fatalf("totals %+v, want %d alarms and nonzero AlarmsBlocked", tot, frames)
	}
	if st := sub.Stats(); st.AlarmsBlocked == 0 {
		t.Fatalf("subscription stats %+v, want nonzero AlarmsBlocked", st)
	}
}

// TestEngineTap covers the alarm-tap contract: the tap consumes every
// alarm in channel order, its final hook runs before Close returns, and
// a second tap is rejected.
func TestEngineTap(t *testing.T) {
	e := engine.New(engine.Config{Shards: 1, Workers: 1})
	if _, err := e.SubscribeBackend("tap", &chattyBackend{n: 1}); err != nil {
		t.Fatal(err)
	}
	var got []engine.Alarm
	finalRan := false
	if err := e.Tap(func(a engine.Alarm) { got = append(got, a) }, func() { finalRan = true }); err != nil {
		t.Fatal(err)
	}
	if err := e.Tap(func(engine.Alarm) {}, nil); !errors.Is(err, engine.ErrTapped) {
		t.Fatalf("second tap: got %v, want ErrTapped", err)
	}
	const frames = 32
	f := core.Frame{Magnitudes: make([]float64, 1)}
	for ti := 0; ti < frames; ti++ {
		f.Time = float64(ti)
		if err := e.Ingest("tap", f); err != nil {
			t.Fatal(err)
		}
	}
	e.Close() // must wait for the tap's final hook
	if !finalRan {
		t.Fatal("tap final hook had not run when Close returned")
	}
	if len(got) != frames {
		t.Fatalf("tap saw %d alarms, want %d", len(got), frames)
	}
	for i, a := range got {
		if a.Sub != "tap" || a.Time != float64(i) {
			t.Fatalf("tap alarm %d out of order: %+v", i, a)
		}
	}
	if err := e.Tap(func(engine.Alarm) {}, nil); !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("tap after close: got %v, want ErrClosed", err)
	}
}

// TestEngineSubscribeAndIngestErrors covers the synchronous error paths.
func TestEngineSubscribeAndIngestErrors(t *testing.T) {
	m, d := fixture(t)
	e := engine.New(engine.Config{Shards: 1, Workers: 1})
	if _, err := e.Subscribe("a", m); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Subscribe("a", m); !errors.Is(err, engine.ErrDuplicateSubscription) {
		t.Fatalf("duplicate subscribe: got %v", err)
	}
	if err := e.Ingest("ghost", core.Frame{Magnitudes: make([]float64, d.Test.N())}); !errors.Is(err, engine.ErrUnknownSubscription) {
		t.Fatalf("unknown sub: got %v", err)
	}
	if err := e.Ingest("a", core.Frame{Magnitudes: make([]float64, 2)}); err == nil {
		t.Fatal("expected width error")
	}
	_, wg := collectAlarms(e)
	e.Close()
	wg.Wait()
	if err := e.Ingest("a", core.Frame{Magnitudes: make([]float64, d.Test.N())}); !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("ingest after close: got %v", err)
	}
	if _, err := e.Subscribe("b", m); !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("subscribe after close: got %v", err)
	}
	e.Close() // idempotent
}

// TestEngineStatsAndSnapshot warms one tenant and checks the monitoring
// surfaces: shard stats, per-tenant stats, and the live graph snapshot.
func TestEngineStatsAndSnapshot(t *testing.T) {
	m, d := fixture(t)
	e := engine.New(engine.Config{Shards: 2, Workers: 2})
	sub, err := e.Subscribe("mon", m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.GraphSnapshot(); err == nil {
		t.Fatal("snapshot before warmup must fail")
	}
	_, wg := collectAlarms(e)
	w := m.Config().LongWindow
	frame := core.Frame{Magnitudes: make([]float64, d.Test.N())}
	for ti := 0; ti < w; ti++ {
		frame.Time = d.Test.Time[ti]
		for v := 0; v < d.Test.N(); v++ {
			frame.Magnitudes[v] = d.Test.Data[v][ti]
		}
		if err := e.Ingest("mon", frame); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()

	st := sub.Stats()
	if st.Frames != uint64(w) || !st.Ready {
		t.Fatalf("tenant stats %+v, want %d frames and ready", st, w)
	}
	if sub.Threshold() != m.Threshold() {
		t.Fatal("threshold mismatch")
	}
	g, err := sub.GraphSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows != d.Test.N() || g.Cols != d.Test.N() {
		t.Fatalf("snapshot shape %dx%d, want %dx%d", g.Rows, g.Cols, d.Test.N(), d.Test.N())
	}
	tot := e.Totals()
	if tot.Frames != uint64(w) || tot.Subscriptions != 1 {
		t.Fatalf("totals %+v, want %d frames / 1 subscription", tot, w)
	}
	perShard := uint64(0)
	for _, s := range e.Stats() {
		perShard += s.Frames
	}
	if perShard != tot.Frames {
		t.Fatalf("shard frames sum %d != totals %d", perShard, tot.Frames)
	}
	e.Close()
	wg.Wait()
}
