package engine

import (
	"errors"
	"math"
)

// HygienePolicy selects how the engine's frame-hygiene stage treats a
// frame carrying NaN/Inf magnitudes. Duplicate or stale timestamps are
// always dropped when hygiene is on, whatever the policy — there is no
// repair for a frame that claims to precede one already scored.
type HygienePolicy int

const (
	// HygieneOff disables the stage: frames reach the backend verbatim,
	// as they did before the stage existed. Backends still reject
	// non-monotonic time themselves, but NaN samples flow into detector
	// rings and EVT sufficient statistics unchecked.
	HygieneOff HygienePolicy = iota
	// HygieneDrop rejects any frame carrying a non-finite magnitude; the
	// drop is counted and reported as a FrameError.
	HygieneDrop
	// HygieneHoldLast repairs non-finite samples by holding each broken
	// variate at its last finite value, so the detector window keeps
	// advancing through masked epochs. A variate that has never been seen
	// finite cannot be held; such frames are dropped.
	HygieneHoldLast
	// HygieneGapMark repairs like HygieneHoldLast but additionally
	// suppresses alarms raised on repaired variates for that frame — the
	// filled value is a placeholder, not evidence.
	HygieneGapMark
)

// String returns the policy's flag-value spelling.
func (p HygienePolicy) String() string {
	switch p {
	case HygieneOff:
		return "off"
	case HygieneDrop:
		return "drop"
	case HygieneHoldLast:
		return "hold"
	case HygieneGapMark:
		return "gap"
	}
	return "unknown"
}

// ParseHygienePolicy parses the -hygiene flag values: off, drop, hold,
// gap.
func ParseHygienePolicy(s string) (HygienePolicy, error) {
	switch s {
	case "off", "":
		return HygieneOff, nil
	case "drop":
		return HygieneDrop, nil
	case "hold":
		return HygieneHoldLast, nil
	case "gap":
		return HygieneGapMark, nil
	}
	return HygieneOff, errors.New("engine: unknown hygiene policy " + s)
}

// HygieneConfig parameterizes the frame-hygiene stage that runs ahead of
// every backend push. The zero value is HygieneOff.
type HygieneConfig struct {
	// Policy is the non-finite-sample handling; see HygienePolicy.
	Policy HygienePolicy
}

// nan seeds the lastGood buffer: a variate is repairable only once it
// has been seen finite.
var nan = math.NaN()

// Typed hygiene errors carried by the FrameErrors the stage reports.
var (
	// ErrStaleFrame marks a frame whose timestamp does not advance past
	// the tenant's newest scored time (duplicate or out-of-order).
	ErrStaleFrame = errors.New("engine: stale or duplicate frame time")
	// ErrDirtyFrame marks a frame dropped for carrying non-finite
	// magnitudes (under HygieneDrop, or under a repair policy with no
	// finite history to repair from).
	ErrDirtyFrame = errors.New("engine: non-finite magnitudes in frame")
)

// scrub applies the hygiene policy to one frame in place, under the
// subscription lock. It returns repair bookkeeping for the alarm stage:
// repairedAny reports whether any variate was rewritten this frame (the
// sub.repaired mask is only valid then). A non-nil error means the frame
// must not reach the backend. Zero allocations: the last-good and
// repaired-mask buffers are allocated once at subscribe time.
func (sub *subscription) scrub(t float64, mags []float64) (repairedAny bool, err error) {
	if sub.hygiene.Policy == HygieneOff {
		return false, nil
	}
	if sub.seenTime && t <= sub.lastTime {
		return false, ErrStaleFrame
	}
	dirty := false
	for _, x := range mags {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			dirty = true
			break
		}
	}
	if dirty {
		if sub.hygiene.Policy == HygieneDrop {
			return false, ErrDirtyFrame
		}
		// Repair: hold each broken variate at its last finite value. A
		// variate with no finite history yet leaves nothing to hold — the
		// frame drops rather than feeding an invented constant.
		for v, x := range mags {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				if math.IsNaN(sub.lastGood[v]) {
					return false, ErrDirtyFrame
				}
				mags[v] = sub.lastGood[v]
				sub.repaired[v] = true
				repairedAny = true
			} else {
				sub.repaired[v] = false
			}
		}
	}
	for v, x := range mags {
		sub.lastGood[v] = x
	}
	return repairedAny, nil
}

// noteScored records a successfully scored frame's timestamp for the
// stale-frame check.
func (sub *subscription) noteScored(t float64) {
	sub.lastTime, sub.seenTime = t, true
}
