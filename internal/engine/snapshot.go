package engine

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Subscription snapshots follow the repo's versioned binary convention
// (see core/snapshot.go): magic, version, little-endian fields, CRC-32
// trailer, full validation before any state is touched. The envelope
// wraps the primary backend's own opaque snapshot and adds the
// fault-containment state that must survive a restart — a tenant
// checkpointed mid-quarantine has to come back mid-quarantine, not
// healthy and pointed at a corrupt primary.
//
//	magic        [8]byte  "AEROHLTH"
//	version      uint32   currently 1
//	state        uint8    HealthState
//	faults       uint32   consecutive-fault counter
//	backoff      uint32   frames left in the current quarantine
//	backoffBase  uint32   current backoff ladder position
//	probeClean   uint32   clean probes so far in probation
//	lastTime     float64  hygiene time cursor
//	seenTime     uint8    1 iff lastTime is valid
//	nLastGood    uint32   │ hygiene hold-last values, NaN = never seen
//	lastGood     [n]float64 ┘
//	primaryLen   uint32   │ the primary backend's own snapshot
//	primary      [...]byte ┘
//	hasFallback  uint8    1 iff a fallback snapshot follows
//	  fbLen      uint32   │ only when hasFallback == 1
//	  fb         [...]byte ┘
//	crc          uint32   IEEE CRC-32 of every preceding byte
//
// The cumulative transition counters (quarantines, recoveries, ...) are
// observability, not state, and are deliberately not snapshotted — the
// same convention evt.RefitStats follows.
const (
	subSnapMagic   = "AEROHLTH"
	subSnapVersion = 1
)

// SnapshotState serializes the tenant's warm detector state (rings,
// cursors, warm-up counters) together with its fault-containment state —
// health position, backoff ladder, hygiene cursors, and the warm fallback
// backend when one is installed — serialized against scoring. Pair with
// RestoreState for zero-warmup restarts; weights are persisted separately
// through the model registry.
func (s *Subscription) SnapshotState() ([]byte, error) {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	primary, err := s.sub.det.SnapshotState()
	if err != nil {
		return nil, err
	}
	var fb []byte
	if s.sub.fallback != nil {
		if fb, err = s.sub.fallback.SnapshotState(); err != nil {
			return nil, fmt.Errorf("engine: fallback snapshot: %w", err)
		}
	}
	buf := make([]byte, 0, len(subSnapMagic)+4+1+4*4+8+1+4+8*len(s.sub.lastGood)+4+len(primary)+1+4+len(fb)+4)
	buf = append(buf, subSnapMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, subSnapVersion)
	buf = append(buf, uint8(s.sub.state()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.sub.faultsConsec))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.sub.backoff))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.sub.backoffBase))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.sub.probeClean))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.sub.lastTime))
	if s.sub.seenTime {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.sub.lastGood)))
	for _, x := range s.sub.lastGood {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(primary)))
	buf = append(buf, primary...)
	if fb != nil {
		buf = append(buf, 1)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fb)))
		buf = append(buf, fb...)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// RestoreState installs a previously snapshotted state into the tenant,
// so it resumes scoring — and, when checkpointed mid-quarantine, resumes
// its quarantine — instead of re-warming from a cold ring. Blobs from
// before the fault-containment envelope (bare backend snapshots) are
// detected by magic and restored directly into the primary backend.
//
// The blob is fully validated (magic, version, geometry, CRC) and both
// backend restores must succeed before any health state is committed: a
// corrupt snapshot leaves the tenant exactly as it was.
func (s *Subscription) RestoreState(blob []byte) error {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	if len(blob) < len(subSnapMagic) || string(blob[:len(subSnapMagic)]) != subSnapMagic {
		// Legacy blob: the primary backend's own snapshot, no envelope.
		if err := s.sub.det.RestoreState(blob); err != nil {
			return err
		}
		if t, ok := s.sub.det.LastTime(); ok {
			s.sub.lastTime, s.sub.seenTime = t, true
		}
		return nil
	}
	if len(blob) < len(subSnapMagic)+8 {
		return fmt.Errorf("engine: subscription state truncated (%d bytes)", len(blob))
	}
	body, tail := blob[:len(blob)-4], blob[len(blob)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return fmt.Errorf("engine: subscription state checksum mismatch (%08x != %08x)", got, want)
	}
	r := subSnapReader{buf: body, off: len(subSnapMagic)}
	if ver := r.u32(); r.err == nil && ver != subSnapVersion {
		return fmt.Errorf("engine: unsupported subscription state version %d", ver)
	}
	state := HealthState(r.u8())
	faults := int(r.u32())
	backoff := int(r.u32())
	backoffBase := int(r.u32())
	probeClean := int(r.u32())
	lastTime := math.Float64frombits(r.u64())
	seenTime := r.u8() == 1
	nGood := int(r.u32())
	if r.err != nil {
		return r.err
	}
	if state < HealthHealthy || state > HealthProbation {
		return fmt.Errorf("engine: subscription state has unknown health state %d", state)
	}
	if nGood != len(s.sub.lastGood) {
		return fmt.Errorf("engine: snapshot has %d variates, subscription %d", nGood, len(s.sub.lastGood))
	}
	lastGood := r.f64s(nGood)
	primary := r.bytes(int(r.u32()))
	hasFB := r.u8() == 1
	var fb []byte
	if hasFB {
		fb = r.bytes(int(r.u32()))
	}
	if r.err != nil {
		return r.err
	}
	if r.off != len(body) {
		return fmt.Errorf("engine: subscription state has %d trailing bytes", len(body)-r.off)
	}
	if hasFB && s.sub.fallback == nil {
		return fmt.Errorf("engine: snapshot carries a fallback state but the subscription has no fallback backend")
	}

	// Fallback first: if its restore fails the primary is still untouched,
	// and a primary-restore failure after a fallback restore leaves only
	// the (redundant, rewarmable) fallback changed.
	if hasFB {
		if err := s.sub.fallback.RestoreState(fb); err != nil {
			return fmt.Errorf("engine: fallback restore: %w", err)
		}
	}
	if err := s.sub.det.RestoreState(primary); err != nil {
		return err
	}
	s.sub.setState(state)
	s.sub.faultsConsec = faults
	s.sub.backoff = backoff
	s.sub.backoffBase = backoffBase
	if s.sub.backoffBase <= 0 {
		s.sub.backoffBase = s.sub.health.BackoffFrames
	}
	s.sub.probeClean = probeClean
	s.sub.lastTime, s.sub.seenTime = lastTime, seenTime
	copy(s.sub.lastGood, lastGood)
	return nil
}

// subSnapReader is a bounds-checked cursor over a snapshot body, after
// the pattern of core's stateReader: the first out-of-range read latches
// err and every later read returns zero values.
type subSnapReader struct {
	buf []byte
	off int
	err error
}

func (r *subSnapReader) take(k int) []byte {
	if r.err != nil {
		return nil
	}
	if k < 0 || r.off+k > len(r.buf) {
		r.err = fmt.Errorf("engine: subscription state truncated at byte %d", len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+k]
	r.off += k
	return b
}

func (r *subSnapReader) u8() uint8 {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (r *subSnapReader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *subSnapReader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (r *subSnapReader) bytes(k int) []byte { return r.take(k) }

func (r *subSnapReader) f64s(k int) []float64 {
	out := make([]float64, k)
	for i := range out {
		out[i] = math.Float64frombits(r.u64())
	}
	return out
}
