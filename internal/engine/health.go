package engine

import (
	"errors"
	"hash/fnv"
	"sync/atomic"
	"time"

	"aero/internal/core"
	"aero/internal/metrics"
)

// HealthState is one tenant's position in the fault-containment state
// machine:
//
//	healthy ──fault──▶ degraded ──faults──▶ quarantined
//	   ▲                  │                     │ backoff expires
//	   │ probes clean     ▼                     ▼
//	   └────────────── probation ◀──────────────┘
//	                      │ fault
//	                      └──▶ quarantined (backoff doubled, capped)
//
// Healthy and degraded tenants are served by their primary backend;
// quarantined tenants by the warm fallback when one is installed (frames
// are rejected otherwise); probation feeds the primary silently while the
// fallback keeps serving, and only hands the alarm stream back after
// ProbationFrames consecutive clean probes.
type HealthState int32

const (
	// HealthHealthy: the primary backend serves, no recent faults.
	HealthHealthy HealthState = iota
	// HealthDegraded: the primary still serves, but consecutive faults
	// have crossed DegradeAfter — the operator-visible early warning.
	HealthDegraded
	// HealthQuarantined: the primary is presumed corrupt and receives no
	// frames; the fallback serves (or frames are rejected) until the
	// frame-count backoff expires.
	HealthQuarantined
	// HealthProbation: the primary is probed with live frames but its
	// alarms are withheld while a fallback is present; clean probes
	// promote back to healthy, any fault re-quarantines with a doubled
	// backoff.
	HealthProbation
)

// String returns the state's stats spelling.
func (h HealthState) String() string {
	switch h {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthQuarantined:
		return "quarantined"
	case HealthProbation:
		return "probation"
	}
	return "unknown"
}

// ErrQuarantined is reported for frames addressed to a quarantined tenant
// that has no fallback backend to serve them.
var ErrQuarantined = errors.New("engine: subscription quarantined")

// HealthConfig parameterizes per-subscription health supervision. The
// zero value enables supervision with the defaults below; set Disable to
// restore the pre-supervision behavior (every backend error reported,
// nothing ever quarantined — panics are still contained and reported).
type HealthConfig struct {
	// Disable turns the state machine off. Panic isolation stays on:
	// a panicking backend can never take a shard worker down.
	Disable bool
	// DegradeAfter is the consecutive-fault count that marks a healthy
	// tenant degraded. Defaults to 2.
	DegradeAfter int
	// QuarantineAfter is the consecutive-fault count that quarantines a
	// tenant. Defaults to 5.
	QuarantineAfter int
	// BackoffFrames is the initial quarantine length, in frames addressed
	// to the tenant (frame counts, not wall-clock, keep recovery
	// deterministic under test and load-independent in production).
	// Defaults to 64.
	BackoffFrames int
	// BackoffMax caps the exponential backoff growth at
	// BackoffMax×BackoffFrames. Defaults to 16.
	BackoffMax int
	// BackoffJitter spreads quarantine expiries by up to this fraction of
	// the backoff, derived deterministically from the subscription id, so
	// co-quarantined tenants do not re-probe in lockstep. Defaults to
	// 0.25; negative disables.
	BackoffJitter float64
	// ProbationFrames is how many consecutive clean probes promote a
	// probing tenant back to healthy. Defaults to 16.
	ProbationFrames int
	// LatencyThreshold, when positive, treats any single primary push
	// slower than this duration as a fault (the latency signal of the
	// state machine). 0 disables latency faults — the default, since a
	// wall-clock signal is inherently machine-dependent.
	LatencyThreshold time.Duration
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.DegradeAfter <= 0 {
		c.DegradeAfter = 2
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 5
	}
	if c.DegradeAfter > c.QuarantineAfter {
		c.DegradeAfter = c.QuarantineAfter
	}
	if c.BackoffFrames <= 0 {
		c.BackoffFrames = 64
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 16
	}
	if c.BackoffJitter == 0 {
		c.BackoffJitter = 0.25
	}
	if c.ProbationFrames <= 0 {
		c.ProbationFrames = 16
	}
	return c
}

// jitterFrac derives a stable per-tenant fraction in [0, 1) from the
// subscription id — deterministic across runs and restarts, so chaos
// replays and golden tests reproduce exactly, yet distinct across
// tenants, so a cohort quarantined together does not probe in lockstep.
func jitterFrac(id string) float64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// quarantineLen is the current quarantine length in frames: the doubling
// base plus the tenant's deterministic jitter share.
func (sub *subscription) quarantineLen() int {
	n := sub.backoffBase
	if j := sub.health.BackoffJitter; j > 0 {
		n += int(j * sub.jitter * float64(n))
	}
	return n
}

// enterQuarantine moves the tenant into quarantine with the current
// backoff. Called under sub.mu.
func (sub *subscription) enterQuarantine() {
	sub.setState(HealthQuarantined)
	sub.backoff = sub.quarantineLen()
	atomic.AddUint64(&sub.quarantines, 1)
}

// recordFault advances the state machine over one fault (panic, backend
// error, non-finite score, or latency breach). Called under sub.mu.
func (sub *subscription) recordFault() {
	atomic.AddUint64(&sub.faultsTotal, 1)
	sub.faultsConsec++
	switch sub.state() {
	case HealthProbation:
		// A probe failed: the primary is still broken. Double the backoff
		// (capped) and go back to quarantine.
		sub.backoffBase *= 2
		if maxB := sub.health.BackoffFrames * sub.health.BackoffMax; sub.backoffBase > maxB {
			sub.backoffBase = maxB
		}
		sub.enterQuarantine()
	case HealthHealthy, HealthDegraded:
		if sub.faultsConsec >= sub.health.QuarantineAfter {
			sub.enterQuarantine()
		} else if sub.faultsConsec >= sub.health.DegradeAfter && sub.state() == HealthHealthy {
			sub.setState(HealthDegraded)
			atomic.AddUint64(&sub.degradations, 1)
		}
	}
}

// recordOK advances the state machine over one clean primary push.
// Called under sub.mu.
func (sub *subscription) recordOK() {
	sub.faultsConsec = 0
	switch sub.state() {
	case HealthDegraded:
		sub.setState(HealthHealthy)
	case HealthProbation:
		sub.probeClean++
		if sub.probeClean >= sub.health.ProbationFrames {
			// Recovered: the primary held up for a full probation. Reset
			// the backoff ladder so the next incident starts small again.
			sub.setState(HealthHealthy)
			sub.backoffBase = sub.health.BackoffFrames
			atomic.AddUint64(&sub.recoveries, 1)
		}
	}
}

// state/setState: the health state is written only under sub.mu but read
// lock-free by stats snapshots, hence the atomic.
func (sub *subscription) state() HealthState {
	return HealthState(atomic.LoadInt32((*int32)(&sub.healthState)))
}

func (sub *subscription) setState(s HealthState) {
	atomic.StoreInt32((*int32)(&sub.healthState), int32(s))
}

// scoreResult is what one guarded, supervised push hands back to the
// drain loop: the alarms to emit (already scrubbed), whether the frame
// counted as scored, the error to report, if any, and — on timed frames —
// the stage stamps the drain loop turns into histogram samples and a
// trace-ring entry after it releases the subscription lock.
type scoreResult struct {
	alarms []core.Alarm
	scored bool
	err    error

	// Stage stamps on the shared monotonic clock (metrics.Now), zero on
	// untimed frames. One reading serves every consumer: doneNs-pushNs
	// is at once the health latency-watch measurement, the score
	// histogram sample, and the trace ring's score+tail stages.
	lockNs  int64 // subscription lock acquired (score entry)
	pushNs  int64 // hygiene done, backend push starting
	splitNs int64 // inner-score → tail boundary (staged backends only)
	doneNs  int64 // backend push returned
	path    uint8 // metrics.Path* classification of the serving path
}

// score pushes one frame through the tenant's hygiene, guard, and health
// layers. Called under sub.mu from the draining worker; t0 is the
// drain's pre-lock stamp (0 = untimed frame: no metrics, no latency
// watch). The benign path — healthy tenant, clean frame, no fallback —
// is the old det.Push plus a recover guard and a handful of branch
// tests: 0 allocs/op, pinned by TestGuardedScoreBenignAllocs and
// TestMetricsHotPathAllocs.
func (sub *subscription) score(t float64, mags []float64, t0 int64) scoreResult {
	timed := t0 != 0
	var res scoreResult
	if timed {
		res.lockNs = metrics.Now()
	}
	repaired, err := sub.scrub(t, mags)
	if err != nil {
		// Hygiene drops are the *feed* misbehaving, not the backend: they
		// never count as backend faults.
		atomic.AddUint64(&sub.hygieneDropped, 1)
		res.err = err
		res.path = metrics.PathError
		if timed {
			res.pushNs = metrics.Now()
			res.doneNs = res.pushNs
		}
		return res
	}
	if repaired {
		atomic.AddUint64(&sub.hygieneRepaired, 1)
		// A repaired frame is synthetic data: force backends that reuse
		// cached activations across frames to score it with a full exact
		// pass rather than an incremental update seeded by fabricated
		// inputs.
		if inv, ok := sub.det.(core.IncrementalInvalidator); ok {
			inv.InvalidateIncremental()
		}
	}
	f := core.Frame{Time: t, Magnitudes: mags}

	// Path classification: diff the backend's incremental counters across
	// the push. Only paid for traced frames on capable backends — two
	// interface calls returning small structs, no allocation.
	classify := timed && sub.obs != nil && sub.incStats != nil
	var incBefore core.IncrementalStats
	if classify {
		incBefore = sub.incStats.IncrementalStats()
	}
	if timed {
		res.pushNs = metrics.Now()
	}
	finishPrimary := func() {
		if classify {
			res.path = classifyPath(incBefore, sub.incStats.IncrementalStats())
		}
	}

	if sub.health.Disable {
		alarms, perr := GuardPush(sub.det, f)
		sub.stampDone(&res, timed)
		if perr != nil {
			if _, isPanic := perr.(*PanicError); isPanic {
				atomic.AddUint64(&sub.panics, 1)
				atomic.AddUint64(&sub.faultsTotal, 1)
			}
			res.err = perr
			res.path = metrics.PathError
			return res
		}
		finishPrimary()
		sub.noteScored(t)
		res.alarms = sub.scrubAlarms(alarms, repaired)
		res.scored = true
		return res
	}

	switch sub.state() {
	case HealthQuarantined:
		sub.backoff--
		if sub.backoff <= 0 {
			sub.setState(HealthProbation)
			sub.probeClean = 0
			atomic.AddUint64(&sub.probations, 1)
		}
		if sub.fallback == nil {
			res.err = ErrQuarantined
			res.path = metrics.PathError
			if timed {
				res.doneNs = res.pushNs
			}
			return res
		}
		return sub.serveFallback(f, repaired, res, timed)

	case HealthProbation:
		// Probe the primary with the live frame. While a fallback exists
		// it keeps serving the alarm stream — a recovering primary's
		// verdicts are not trusted until probation completes; without one
		// the primary's alarms serve (degraded service beats none).
		alarms, perr := sub.guardedPush(f, &res, timed)
		if perr != nil {
			sub.fault(perr)
			if sub.fallback == nil {
				res.err = perr
				res.path = metrics.PathError
				return res
			}
			return sub.serveFallback(f, repaired, res, timed)
		}
		alarms, bad := splitFiniteAlarms(alarms)
		if bad > 0 {
			sub.fault(nil)
		} else {
			sub.recordOK()
		}
		if sub.fallback == nil {
			finishPrimary()
			sub.noteScored(t)
			res.alarms = sub.scrubAlarms(alarms, repaired)
			res.scored = true
			return res
		}
		return sub.serveFallback(f, repaired, res, timed)

	default: // HealthHealthy, HealthDegraded
		if sub.fallback != nil {
			// Keep the fallback warm from the same frames; its scores and
			// errors are ignored here — it only has to be current if the
			// primary is later quarantined.
			if _, ferr := GuardPushScores(sub.fallback, f); ferr != nil {
				atomic.AddUint64(&sub.fallbackErrs, 1)
			}
			if timed {
				// The warm feed is upkeep, not scoring: rebase the push
				// stamp so the primary's latency series stays pure.
				res.pushNs = metrics.Now()
			}
		}
		alarms, perr := sub.guardedPush(f, &res, timed)
		if perr != nil {
			sub.fault(perr)
			res.err = perr
			res.path = metrics.PathError
			return res
		}
		alarms, bad := splitFiniteAlarms(alarms)
		if bad > 0 {
			// A non-finite score is backend corruption leaking out — the
			// alarm is withheld and the tenant takes a fault, but the
			// frame itself was consumed.
			sub.fault(nil)
		} else {
			sub.recordOK()
		}
		finishPrimary()
		sub.noteScored(t)
		res.alarms = sub.scrubAlarms(alarms, repaired)
		res.scored = true
		return res
	}
}

// stampDone closes the push interval on a timed frame: one clock read
// that feeds the latency watch, the histograms and the trace ring alike
// (one clock, one reading), plus the staged backend's split stamp when
// the capability is present.
func (sub *subscription) stampDone(res *scoreResult, timed bool) {
	if !timed {
		return
	}
	res.doneNs = metrics.Now()
	if sub.splitter != nil {
		res.splitNs = sub.splitter.LastSplitNanos()
	}
}

// guardedPush runs the primary push under the panic guard and, when
// configured, the latency watch. The watch reuses the shared stage
// stamps — it takes no clock reading of its own.
func (sub *subscription) guardedPush(f core.Frame, res *scoreResult, timed bool) ([]core.Alarm, error) {
	alarms, err := GuardPush(sub.det, f)
	sub.stampDone(res, timed)
	if err == nil && sub.health.LatencyThreshold > 0 &&
		res.doneNs-res.pushNs > int64(sub.health.LatencyThreshold) {
		return alarms, errLatency
	}
	return alarms, err
}

// errLatency marks a primary push that exceeded HealthConfig.LatencyThreshold.
var errLatency = errors.New("engine: backend push exceeded latency threshold")

// fault counts one fault and advances the state machine; err carries the
// cause when there is one (nil for a bad-score fault).
func (sub *subscription) fault(err error) {
	if _, isPanic := err.(*PanicError); isPanic {
		atomic.AddUint64(&sub.panics, 1)
	}
	sub.recordFault()
}

// serveFallback pushes the frame through the warm fallback, which owns
// the alarm stream while the primary is distrusted. On timed frames the
// push interval is re-based around the fallback push (a probing
// primary's stamps are discarded — the fallback is what served), and
// the split stamp is cleared: fallback service has no tail stage.
func (sub *subscription) serveFallback(f core.Frame, repaired bool, res scoreResult, timed bool) scoreResult {
	if timed {
		res.pushNs = metrics.Now()
		res.splitNs = 0
	}
	alarms, err := GuardPush(sub.fallback, f)
	if timed {
		res.doneNs = metrics.Now()
	}
	if err != nil {
		atomic.AddUint64(&sub.fallbackErrs, 1)
		res.err = err
		res.path = metrics.PathError
		return res
	}
	atomic.AddUint64(&sub.fallbackFrames, 1)
	if n := len(alarms); n > 0 {
		atomic.AddUint64(&sub.fallbackAlarms, uint64(n))
	}
	sub.noteScored(f.Time)
	res.alarms = sub.scrubAlarms(alarms, repaired)
	res.scored = true
	res.path = metrics.PathFallback
	return res
}

// splitFiniteAlarms removes non-finite-scored alarms in place, returning
// the retained slice and how many were dropped.
func splitFiniteAlarms(alarms []core.Alarm) ([]core.Alarm, int) {
	bad := 0
	w := 0
	for _, a := range alarms {
		if isFinite(a.Score) {
			alarms[w] = a
			w++
		} else {
			bad++
		}
	}
	return alarms[:w], bad
}

func isFinite(x float64) bool {
	// NaN fails both comparisons; ±Inf fails one.
	return x == x && x-x == 0
}

// scrubAlarms drops alarms raised on gap-marked (repaired) variates —
// a held-last placeholder is not evidence of an anomaly.
func (sub *subscription) scrubAlarms(alarms []core.Alarm, repaired bool) []core.Alarm {
	if !repaired || sub.hygiene.Policy != HygieneGapMark || len(alarms) == 0 {
		return alarms
	}
	w := 0
	for _, a := range alarms {
		if a.Variate < 0 || a.Variate >= len(sub.repaired) || !sub.repaired[a.Variate] {
			alarms[w] = a
			w++
		}
	}
	return alarms[:w]
}
