package engine

import (
	"errors"
	"math"
	"testing"

	"aero/internal/core"
)

// scriptBackend is a scripted StreamBackend for white-box supervision
// tests: each push consults fail[pushIndex] — 0 = clean, 'p' = panic,
// 'e' = error, 'n' = NaN-scored alarm. Indices past the script are clean.
type scriptBackend struct {
	n      int
	fail   []byte
	pushes int
	last   float64
	seen   bool
	alarms [1]core.Alarm
}

var errScripted = errors.New("scripted backend error")

func (s *scriptBackend) Kind() string                   { return "script" }
func (s *scriptBackend) Variates() int                  { return s.n }
func (s *scriptBackend) Ready() bool                    { return true }
func (s *scriptBackend) Threshold() float64             { return 1 }
func (s *scriptBackend) LastTime() (float64, bool)      { return s.last, s.seen }
func (s *scriptBackend) SwapArtifact([]byte) error      { return nil }
func (s *scriptBackend) SnapshotState() ([]byte, error) { return []byte("script"), nil }
func (s *scriptBackend) RestoreState([]byte) error      { return nil }

func (s *scriptBackend) step(t float64) byte {
	i := s.pushes
	s.pushes++
	var op byte
	if i < len(s.fail) {
		op = s.fail[i]
	}
	switch op {
	case 'p':
		panic("scripted panic")
	case 'e':
		return 'e'
	}
	s.last, s.seen = t, true
	return op
}

func (s *scriptBackend) PushScores(f core.Frame) ([]float64, error) {
	if s.step(f.Time) == 'e' {
		return nil, errScripted
	}
	return nil, nil
}

func (s *scriptBackend) Push(f core.Frame) ([]core.Alarm, error) {
	switch s.step(f.Time) {
	case 'e':
		return nil, errScripted
	case 'n':
		s.alarms[0] = core.Alarm{Variate: 0, Time: f.Time, Score: math.NaN()}
		return s.alarms[:], nil
	}
	return nil, nil
}

// mkSub builds a standalone subscription around det (no engine), the way
// SubscribeBackend does, for direct score-path tests.
func mkSub(id string, det core.StreamBackend, hygiene HygieneConfig, health HealthConfig) *subscription {
	health = health.withDefaults()
	sub := &subscription{
		id: id, n: det.Variates(), det: det,
		hygiene:     hygiene,
		health:      health,
		backoffBase: health.BackoffFrames,
		jitter:      jitterFrac(id),
		lastGood:    make([]float64, det.Variates()),
		repaired:    make([]bool, det.Variates()),
	}
	for v := range sub.lastGood {
		sub.lastGood[v] = nan
	}
	return sub
}

// TestHealthStateMachine walks the full lifecycle on a scripted backend:
// consecutive faults degrade then quarantine, the frame-count backoff
// expires into probation, a probe fault re-quarantines with a doubled
// backoff, and a clean probation recovers — with every transition
// visible in the counters.
func TestHealthStateMachine(t *testing.T) {
	// Script (primary push indices): 1 clean, then p e p e (4 faults),
	// then clean forever — except push 5, which faults once in probation.
	det := &scriptBackend{n: 1, fail: []byte{0, 'p', 'e', 'p', 'e', 'e'}}
	cfg := HealthConfig{DegradeAfter: 2, QuarantineAfter: 4, BackoffFrames: 6, BackoffMax: 4, BackoffJitter: -1, ProbationFrames: 3}
	fb := &scriptBackend{n: 1}
	sub := mkSub("sm", det, HygieneConfig{}, cfg)
	sub.fallback = fb

	push := func(i int) scoreResult {
		return sub.score(float64(i), []float64{0.5}, 0)
	}

	next := 0
	step := func() scoreResult { r := push(next); next++; return r }

	if r := step(); r.err != nil || sub.state() != HealthHealthy {
		t.Fatalf("clean push: err %v state %v", r.err, sub.state())
	}
	// Fault 1 (panic): healthy, one fault.
	if r := step(); r.err == nil {
		t.Fatal("panic push returned no error")
	} else if _, ok := r.err.(*PanicError); !ok {
		t.Fatalf("panic push error %T, want *PanicError", r.err)
	}
	if sub.state() != HealthHealthy {
		t.Fatalf("after 1 fault: %v", sub.state())
	}
	// Fault 2 (error): degraded.
	if r := step(); !errors.Is(r.err, errScripted) {
		t.Fatalf("error push: %v", r.err)
	}
	if sub.state() != HealthDegraded {
		t.Fatalf("after 2 faults: %v, want degraded", sub.state())
	}
	// Faults 3-4: quarantined.
	step()
	step()
	if sub.state() != HealthQuarantined {
		t.Fatalf("after 4 faults: %v, want quarantined", sub.state())
	}
	if sub.backoff != 6 {
		t.Fatalf("backoff %d, want 6 (jitter disabled)", sub.backoff)
	}

	// Quarantine: 6 frames served by the fallback, primary untouched.
	primaryPushes := det.pushes
	for i := 0; i < 6; i++ {
		if r := step(); r.err != nil || !r.scored {
			t.Fatalf("quarantined frame %d: %+v", i, r)
		}
	}
	if det.pushes != primaryPushes {
		t.Fatal("primary was pushed during quarantine")
	}
	if sub.state() != HealthProbation {
		t.Fatalf("after backoff: %v, want probation", sub.state())
	}

	// Probation probe 1 (script index 5: 'e'): re-quarantine, doubled.
	if r := step(); r.err != nil || !r.scored {
		t.Fatalf("probation frame with fallback must still be served: %+v", r)
	}
	if sub.state() != HealthQuarantined {
		t.Fatalf("after probe fault: %v, want quarantined", sub.state())
	}
	if sub.backoff != 12 {
		t.Fatalf("re-quarantine backoff %d, want 12 (doubled)", sub.backoff)
	}

	// Sit out the doubled backoff, then three clean probes recover.
	for i := 0; i < 12; i++ {
		step()
	}
	if sub.state() != HealthProbation {
		t.Fatalf("after doubled backoff: %v", sub.state())
	}
	for i := 0; i < 3; i++ {
		if r := step(); r.err != nil || !r.scored {
			t.Fatalf("clean probe %d: %+v", i, r)
		}
	}
	if sub.state() != HealthHealthy {
		t.Fatalf("after clean probation: %v, want healthy", sub.state())
	}
	if sub.backoffBase != cfg.BackoffFrames {
		t.Fatalf("recovery did not reset the backoff ladder: %d", sub.backoffBase)
	}

	if q, p, r := sub.quarantines, sub.probations, sub.recoveries; q != 2 || p != 2 || r != 1 {
		t.Fatalf("transition counters q=%d p=%d r=%d, want 2/2/1", q, p, r)
	}
	if sub.panics != 2 {
		t.Fatalf("panics %d, want 2", sub.panics)
	}
	if sub.faultsTotal != 5 {
		t.Fatalf("faults %d, want 5", sub.faultsTotal)
	}
}

// TestHealthBackoffCap pins the exponential backoff ceiling: repeated
// probe faults double the base only up to BackoffFrames×BackoffMax.
func TestHealthBackoffCap(t *testing.T) {
	det := &scriptBackend{n: 1, fail: []byte("eeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeee")}
	cfg := HealthConfig{QuarantineAfter: 1, BackoffFrames: 2, BackoffMax: 4, BackoffJitter: -1, ProbationFrames: 2}
	fb := &scriptBackend{n: 1}
	sub := mkSub("cap", det, HygieneConfig{}, cfg)
	sub.fallback = fb
	for i := 0; i < 200; i++ {
		sub.score(float64(i), []float64{0}, 0)
		if sub.backoffBase > 8 {
			t.Fatalf("backoffBase %d exceeded cap 8 at frame %d", sub.backoffBase, i)
		}
	}
	if sub.backoffBase != 8 {
		t.Fatalf("backoffBase %d, want pinned at cap 8", sub.backoffBase)
	}
}

// TestQuarantineWithoutFallback: no fallback installed → quarantined
// frames are rejected with ErrQuarantined, and probation serves the
// primary's own alarms.
func TestQuarantineWithoutFallback(t *testing.T) {
	det := &scriptBackend{n: 1, fail: []byte("ee")}
	cfg := HealthConfig{QuarantineAfter: 2, BackoffFrames: 3, BackoffJitter: -1, ProbationFrames: 2}
	sub := mkSub("nofb", det, HygieneConfig{}, cfg)
	sub.score(0, []float64{0}, 0)
	sub.score(1, []float64{0}, 0)
	if sub.state() != HealthQuarantined {
		t.Fatalf("state %v", sub.state())
	}
	for i := 2; i < 5; i++ {
		if r := sub.score(float64(i), []float64{0}, 0); !errors.Is(r.err, ErrQuarantined) {
			t.Fatalf("frame %d: err %v, want ErrQuarantined", i, r.err)
		}
	}
	if sub.state() != HealthProbation {
		t.Fatalf("state %v, want probation", sub.state())
	}
	if r := sub.score(5, []float64{0}, 0); r.err != nil || !r.scored {
		t.Fatalf("probation without fallback must serve the primary: %+v", r)
	}
}

// TestNaNScoreIsFaulted: a backend leaking NaN-scored alarms has them
// scrubbed before the fan-in channel and takes a fault per occurrence.
func TestNaNScoreIsFaulted(t *testing.T) {
	det := &scriptBackend{n: 1, fail: []byte{'n'}}
	sub := mkSub("nan", det, HygieneConfig{}, HealthConfig{})
	r := sub.score(0, []float64{0}, 0)
	if r.err != nil || !r.scored {
		t.Fatalf("NaN-alarm frame: %+v", r)
	}
	if len(r.alarms) != 0 {
		t.Fatalf("NaN-scored alarm leaked: %+v", r.alarms)
	}
	if sub.faultsTotal != 1 {
		t.Fatalf("faults %d, want 1", sub.faultsTotal)
	}
}

// TestHealthDisable: with supervision off, panics are still contained
// (reported as *PanicError) but nothing is ever quarantined.
func TestHealthDisable(t *testing.T) {
	det := &scriptBackend{n: 1, fail: []byte("ppppppppppppppppp")}
	sub := mkSub("off", det, HygieneConfig{}, HealthConfig{Disable: true})
	for i := 0; i < len(det.fail); i++ {
		r := sub.score(float64(i), []float64{0}, 0)
		if _, ok := r.err.(*PanicError); !ok {
			t.Fatalf("frame %d: err %T %v, want *PanicError", i, r.err, r.err)
		}
	}
	if sub.state() != HealthHealthy {
		t.Fatalf("disabled supervision changed state to %v", sub.state())
	}
	if sub.panics != uint64(len(det.fail)) {
		t.Fatalf("panics %d, want %d", sub.panics, len(det.fail))
	}
}

// TestGuardedScoreBenignAllocs pins the acceptance criterion directly:
// the full supervised score path — hygiene check, panic guard, health
// bookkeeping — adds zero allocations per frame for a healthy tenant on
// clean frames.
func TestGuardedScoreBenignAllocs(t *testing.T) {
	det := &scriptBackend{n: 2}
	sub := mkSub("alloc", det, HygieneConfig{Policy: HygieneHoldLast}, HealthConfig{})
	mags := []float64{0.1, 0.2}
	ti := 0.0
	if allocs := testing.AllocsPerRun(1000, func() {
		ti++
		sub.score(ti, mags, 0)
	}); allocs != 0 {
		t.Fatalf("supervised benign score allocates %.1f objects/frame, want 0", allocs)
	}
	// The guard alone, too.
	f := core.Frame{Time: 1e9, Magnitudes: mags}
	if allocs := testing.AllocsPerRun(1000, func() {
		f.Time++
		GuardPush(det, f)
	}); allocs != 0 {
		t.Fatalf("GuardPush allocates %.1f objects/frame on the benign path, want 0", allocs)
	}
}

// TestGuardPushContainsPanic: the guard converts a panic into a
// *PanicError carrying the panic value and a stack.
func TestGuardPushContainsPanic(t *testing.T) {
	det := &scriptBackend{n: 1, fail: []byte{'p'}}
	alarms, err := GuardPush(det, core.Frame{Time: 1, Magnitudes: []float64{0}})
	if alarms != nil {
		t.Fatalf("alarms %+v after panic", alarms)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err %T, want *PanicError", err)
	}
	if pe.Value != "scripted panic" || len(pe.Stack) == 0 {
		t.Fatalf("panic error %q stack %d bytes", pe.Value, len(pe.Stack))
	}
	// The backend keeps working afterwards (the guard, not the backend,
	// is what the test pins — a real corrupted backend is quarantined by
	// the supervisor).
	if _, err := GuardPush(det, core.Frame{Time: 2, Magnitudes: []float64{0}}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkGuardedPush quantifies the containment tax on the hot path:
// a bare backend push, the same push under the panic guard, and the full
// supervised score path (hygiene + guard + health machine). CI runs it
// at -benchtime=1x; the alloc budget is pinned by
// TestGuardedScoreBenignAllocs.
func BenchmarkGuardedPush(b *testing.B) {
	mags := []float64{0.1, 0.2}
	b.Run("bare", func(b *testing.B) {
		det := &scriptBackend{n: 2}
		f := core.Frame{Magnitudes: mags}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.Time = float64(i)
			det.Push(f)
		}
	})
	b.Run("guarded", func(b *testing.B) {
		det := &scriptBackend{n: 2}
		f := core.Frame{Magnitudes: mags}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.Time = float64(i)
			GuardPush(det, f)
		}
	})
	b.Run("supervised", func(b *testing.B) {
		det := &scriptBackend{n: 2}
		sub := mkSub("bench", det, HygieneConfig{Policy: HygieneHoldLast}, HealthConfig{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sub.score(float64(i+1), mags, 0)
		}
	})
}
