package dataset

import (
	"math"
	"math/rand"
)

// NoiseKind enumerates the paper's three concurrent-noise mechanisms
// (§IV-A): mean drift, cloud-occlusion darkening with recovery, and
// sunrise brightening.
type NoiseKind int

const (
	// NoiseDrift shifts the mean level up or down for the duration.
	NoiseDrift NoiseKind = iota
	// NoiseCloud darkens then recovers: half a period of a trigonometric
	// function, as caused by passing cloud cover.
	NoiseCloud
	// NoiseSunrise brightens exponentially, as caused by dawn sky
	// background.
	NoiseSunrise
	numNoiseKinds
)

// String implements fmt.Stringer.
func (k NoiseKind) String() string {
	switch k {
	case NoiseDrift:
		return "drift"
	case NoiseCloud:
		return "cloud"
	case NoiseSunrise:
		return "sunrise"
	default:
		return "unknown"
	}
}

// NoiseEvent is one concurrent-noise occurrence: a contiguous time span
// affecting a subset of variates simultaneously — the spatial/temporal
// randomness the paper's stage-2 module is built for.
type NoiseEvent struct {
	Kind     NoiseKind
	Variates []int
	Start    int
	Length   int
	Amp      float64
}

// shape evaluates the additive deviation at offset u in [0, 1].
func (e NoiseEvent) shape(u float64) float64 {
	switch e.Kind {
	case NoiseDrift:
		// Quick ramp to a sustained shift, ramp back at the end.
		const edge = 0.15
		switch {
		case u < edge:
			return e.Amp * (u / edge)
		case u > 1-edge:
			return e.Amp * ((1 - u) / edge)
		default:
			return e.Amp
		}
	case NoiseCloud:
		// Half period of a sine: smooth darkening and recovery.
		return -e.Amp * math.Sin(math.Pi*u)
	case NoiseSunrise:
		// Exponential brightening ending abruptly (dataset cut at dawn).
		k := 4.0
		return e.Amp * (math.Exp(k*u) - 1) / (math.Exp(k) - 1)
	}
	return 0
}

// InjectNoise applies the event to the series, scaling the amplitude per
// variate by a factor in [0.7, 1.3] drawn from rng (clouds do not dim every
// star identically), and marks the noise mask.
func InjectNoise(s *Series, e NoiseEvent, rng *rand.Rand) {
	for _, v := range e.Variates {
		scale := 0.7 + 0.6*rng.Float64()
		for t := e.Start; t < e.Start+e.Length && t < s.Len(); t++ {
			u := float64(t-e.Start) / math.Max(1, float64(e.Length-1))
			dv := scale * e.shape(u)
			s.Data[v][t] += dv
			s.NoiseMask[v][t] = true
		}
	}
}

// RandomNoiseEvent draws a noise event of random kind covering a random
// subset of candidates (at least minVars of them) with the given length
// range.
func RandomNoiseEvent(rng *rand.Rand, candidates []int, T, minLen, maxLen int, amp float64, minVars int) NoiseEvent {
	kind := NoiseKind(rng.Intn(int(numNoiseKinds)))
	length := minLen
	if maxLen > minLen {
		length += rng.Intn(maxLen - minLen)
	}
	if length >= T {
		length = T / 2
	}
	start := rng.Intn(T - length)
	// Random subset: shuffle and take a random prefix of size >= minVars.
	shuffled := append([]int(nil), candidates...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	k := minVars
	if len(shuffled) > minVars {
		k += rng.Intn(len(shuffled) - minVars + 1)
	}
	if k > len(shuffled) {
		k = len(shuffled)
	}
	// Noise intensity is heavy-tailed: cloud opacity and sky background
	// vary enormously between nights, so test splits routinely contain
	// events stronger than anything in the training night. This is the
	// unpredictability that defeats purely threshold-based detectors.
	return NoiseEvent{
		Kind:     kind,
		Variates: shuffled[:k],
		Start:    start,
		Length:   length,
		Amp:      amp * (0.5 + 0.7*rng.ExpFloat64()),
	}
}
