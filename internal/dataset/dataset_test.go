package dataset

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"
)

func newTestRNG() *rand.Rand { return rand.New(rand.NewSource(42)) }

func TestSyntheticMiddleMatchesTableI(t *testing.T) {
	d := SyntheticMiddle().Generate()
	if err := d.Train.Validate(); err != nil {
		t.Fatalf("train invalid: %v", err)
	}
	if err := d.Test.Validate(); err != nil {
		t.Fatalf("test invalid: %v", err)
	}
	st := ComputeStats(d)
	if st.Variates != 24 || st.TrainLen != 4000 || st.TestLen != 4000 {
		t.Fatalf("shape: %+v", st)
	}
	if st.AnomSegs < 5 {
		t.Fatalf("anomaly segments %d, want >= 5", st.AnomSegs)
	}
	// Noise percentage should land near the 1.719% target.
	if st.NoisePct < 1.0 || st.NoisePct > 3.5 {
		t.Fatalf("noise%% = %v, want ≈1.7", st.NoisePct)
	}
	if st.NoiseVars > 17 {
		t.Fatalf("noise variates %d, want <= 17", st.NoiseVars)
	}
	if st.AnomalyPct <= 0 {
		t.Fatal("no anomalies injected")
	}
}

func TestSyntheticHighHasMoreAnomalies(t *testing.T) {
	mid := ComputeStats(SyntheticMiddle().Generate())
	high := ComputeStats(SyntheticHigh().Generate())
	if high.AnomSegs <= mid.AnomSegs {
		t.Fatalf("high segments %d should exceed middle %d", high.AnomSegs, mid.AnomSegs)
	}
	if high.AnomToNoise <= mid.AnomToNoise {
		t.Fatalf("A/N high %v should exceed middle %v", high.AnomToNoise, mid.AnomToNoise)
	}
}

func TestSyntheticLowHasMoreNoise(t *testing.T) {
	mid := ComputeStats(SyntheticMiddle().Generate())
	low := ComputeStats(SyntheticLow().Generate())
	if low.NoisePct <= mid.NoisePct {
		t.Fatalf("low noise%% %v should exceed middle %v", low.NoisePct, mid.NoisePct)
	}
	if low.AnomToNoise >= mid.AnomToNoise {
		t.Fatalf("A/N low %v should be below middle %v", low.AnomToNoise, mid.AnomToNoise)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := SyntheticMiddle().Generate()
	b := SyntheticMiddle().Generate()
	for v := range a.Test.Data {
		for i := range a.Test.Data[v] {
			if a.Test.Data[v][i] != b.Test.Data[v][i] {
				t.Fatal("generation must be deterministic for a fixed seed")
			}
		}
	}
}

func TestSyntheticTrainHasNoAnomalies(t *testing.T) {
	d := SyntheticMiddle().Generate()
	if d.Train.AnomalyPoints() != 0 {
		t.Fatal("training split must be anomaly-free (unsupervised protocol)")
	}
}

func TestSyntheticNoiseIsConcurrent(t *testing.T) {
	// At any noisy timestamp, at least two variates should be noisy
	// simultaneously — that is what makes it "concurrent".
	d := SyntheticMiddle().Generate()
	s := d.Test
	for tm := 0; tm < s.Len(); tm++ {
		count := 0
		for v := 0; v < s.N(); v++ {
			if s.NoiseMask[v][tm] {
				count++
			}
		}
		if count == 1 {
			t.Fatalf("timestamp %d has singleton noise", tm)
		}
	}
}

func TestAstrosetsMatchTableIShapes(t *testing.T) {
	for _, tc := range []struct {
		cfg        GWACConfig
		n, tr, te2 int
	}{
		{AstrosetMiddle(), 54, 5540, 5387},
		{AstrosetHigh(), 38, 8000, 6117},
		{AstrosetLow(), 40, 6255, 2950},
	} {
		d := tc.cfg.Generate()
		st := ComputeStats(d)
		if st.Variates != tc.n || st.TrainLen != tc.tr || st.TestLen != tc.te2 {
			t.Fatalf("%s: %+v", tc.cfg.Name, st)
		}
		if err := d.Test.Validate(); err != nil {
			t.Fatalf("%s: %v", tc.cfg.Name, err)
		}
		// All variates are noise-exposed in the Astrosets.
		if st.NoiseVars < tc.n*3/4 {
			t.Fatalf("%s: only %d/%d noise variates", tc.cfg.Name, st.NoiseVars, tc.n)
		}
		if st.AnomalyPct <= 0 {
			t.Fatalf("%s: no anomalies", tc.cfg.Name)
		}
	}
}

func TestAstrosetIrregularCadence(t *testing.T) {
	d := AstrosetMiddle().Generate()
	dts := make(map[int]bool)
	prev := d.Train.Time[0]
	for _, tm := range d.Train.Time[1:] {
		dt := tm - prev
		if dt <= 0 {
			t.Fatal("timestamps must increase")
		}
		dts[int(dt*10)] = true
		prev = tm
	}
	if len(dts) < 3 {
		t.Fatal("cadence should be irregular")
	}
}

func TestFlareShapeProperties(t *testing.T) {
	if FlareShape(-2) != 0 || FlareShape(7) != 0 {
		t.Fatal("flare must vanish outside support")
	}
	peak := FlareShape(0)
	if math.Abs(peak-1) > 0.02 {
		t.Fatalf("flare peak %v, want ~1", peak)
	}
	// Decay is monotone decreasing.
	prev := peak
	for tau := 0.2; tau < 6; tau += 0.2 {
		v := FlareShape(tau)
		if v > prev+1e-12 {
			t.Fatalf("flare decay not monotone at tau=%v", tau)
		}
		prev = v
	}
	// Rise is below peak.
	if FlareShape(-0.5) >= peak {
		t.Fatal("rise should be below the peak")
	}
}

func TestAnomalyShapesBounded(t *testing.T) {
	for u := 0.0; u <= 1.0; u += 0.01 {
		if v := NovaShape(u, 0.15); v < 0 || v > 1+1e-9 {
			t.Fatalf("nova out of range at %v: %v", u, v)
		}
		if v := EclipseShape(u); v > 0 || v < -1-1e-9 {
			t.Fatalf("eclipse out of range at %v: %v", u, v)
		}
		if v := BurstShape(u); v < 0 || v > 1+1e-9 {
			t.Fatalf("burst out of range at %v: %v", u, v)
		}
	}
}

func TestInjectAnomalyMarksLabels(t *testing.T) {
	s := NewSeries(2, 200)
	InjectAnomaly(s, AnomalyEvent{Kind: AnomalyBurst, Variate: 1, Start: 50, Length: 30, Amp: 2})
	if s.AnomalyPoints() == 0 {
		t.Fatal("labels not marked")
	}
	for tm := 0; tm < 50; tm++ {
		if s.Labels[1][tm] {
			t.Fatal("labels before the event")
		}
	}
	if s.Labels[0][60] {
		t.Fatal("wrong variate labelled")
	}
}

func TestInjectNoiseMarksMask(t *testing.T) {
	s := NewSeries(4, 100)
	rng := newTestRNG()
	InjectNoise(s, NoiseEvent{Kind: NoiseCloud, Variates: []int{0, 2}, Start: 10, Length: 20, Amp: 1}, rng)
	if !s.NoiseMask[0][15] || !s.NoiseMask[2][15] {
		t.Fatal("mask not set")
	}
	if s.NoiseMask[1][15] {
		t.Fatal("unaffected variate masked")
	}
	// Cloud noise darkens: mid-event value must be below baseline 0.
	if s.Data[0][20] >= 0 {
		t.Fatalf("cloud should darken, got %v", s.Data[0][20])
	}
}

func TestNoiseShapesReturnToZero(t *testing.T) {
	for _, kind := range []NoiseKind{NoiseDrift, NoiseCloud, NoiseSunrise} {
		e := NoiseEvent{Kind: kind, Amp: 1}
		if v := e.shape(0); math.Abs(v) > 0.02 {
			t.Fatalf("%v starts at %v, want ~0", kind, v)
		}
	}
}

func TestScalabilityDatasetSizes(t *testing.T) {
	d := ScalabilityDataset(48, 500, 300, 7)
	if d.Train.N() != 48 || d.Train.Len() != 500 || d.Test.Len() != 300 {
		t.Fatal("scalability dataset has wrong shape")
	}
}

func TestCSVRoundtrip(t *testing.T) {
	dir := t.TempDir()
	cfg := SyntheticConfig{
		Name: "tiny", N: 3, TrainLen: 60, TestLen: 50, NoiseVariates: 2,
		AnomalySegments: 1, NoisePct: 2, VariableFrac: 0.5, Seed: 5,
	}
	d := cfg.Generate()
	if err := WriteDataset(dir, d); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadDataset(dir, "tiny")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	for v := range d.Test.Data {
		for i := range d.Test.Data[v] {
			if math.Abs(got.Test.Data[v][i]-d.Test.Data[v][i]) > 1e-12 {
				t.Fatal("data roundtrip mismatch")
			}
			if got.Test.Labels[v][i] != d.Test.Labels[v][i] {
				t.Fatal("labels roundtrip mismatch")
			}
			if got.Test.NoiseMask[v][i] != d.Test.NoiseMask[v][i] {
				t.Fatal("noise roundtrip mismatch")
			}
		}
	}
}

func TestReadSeriesMissingFile(t *testing.T) {
	if _, err := ReadSeries(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s := NewSeries(2, 10)
	s.Data[0][3] = math.NaN()
	if s.Validate() == nil {
		t.Fatal("NaN must be rejected")
	}
	s = NewSeries(2, 10)
	s.Time[5] = s.Time[4]
	if s.Validate() == nil {
		t.Fatal("non-increasing time must be rejected")
	}
}
