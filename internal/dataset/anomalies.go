package dataset

import (
	"math"
	"math/rand"
)

// AnomalyKind enumerates the injected true-anomaly shapes (paper Fig. 5:
// flare-function events from Davenport et al. 2014 plus transient classes
// modelled on the PLAsTiCC astronomical classification challenge).
type AnomalyKind int

const (
	// AnomalyFlare is a stellar white-light flare: near-instant rise
	// followed by a double-exponential decay (Davenport et al., ApJ 2014).
	AnomalyFlare AnomalyKind = iota
	// AnomalyNova is a nova-like transient: fast rise, slow decay over a
	// longer span.
	AnomalyNova
	// AnomalyEclipse is an occultation-style dip with smooth ingress and
	// egress.
	AnomalyEclipse
	// AnomalyBurst is a symmetric brightening bump (microlensing-like).
	AnomalyBurst
	numAnomalyKinds
)

// String implements fmt.Stringer.
func (k AnomalyKind) String() string {
	switch k {
	case AnomalyFlare:
		return "flare"
	case AnomalyNova:
		return "nova"
	case AnomalyEclipse:
		return "eclipse"
	case AnomalyBurst:
		return "burst"
	default:
		return "unknown"
	}
}

// FlareShape evaluates the Davenport et al. (2014) empirical white-light
// flare template at phase tau, where tau is time in units of the flare's
// half-width t_1/2 relative to the peak (tau = 0 at peak). Amplitude is
// normalized to 1 at the peak.
func FlareShape(tau float64) float64 {
	switch {
	case tau < -1 || tau > 6:
		return 0
	case tau < 0:
		// Quartic rise fitted by Davenport et al.
		return 1 + 1.941*tau - 0.175*tau*tau - 2.246*tau*tau*tau - 1.125*tau*tau*tau*tau
	default:
		// Double-exponential decay.
		return 0.6890*math.Exp(-1.600*tau) + 0.3030*math.Exp(-0.2783*tau)
	}
}

// NovaShape is a fast-rise exponential-decay transient normalized to peak 1
// at u = riseFrac, for u in [0, 1].
func NovaShape(u, riseFrac float64) float64 {
	if u < 0 || u > 1 {
		return 0
	}
	if u < riseFrac {
		return u / riseFrac
	}
	// Exponential decay from peak to ~5% at u = 1.
	k := 3.0
	return math.Exp(-k * (u - riseFrac) / (1 - riseFrac))
}

// EclipseShape is a smooth occultation dip (negative) with cosine ingress
// and egress, for u in [0, 1]; returns values in [-1, 0].
func EclipseShape(u float64) float64 {
	if u < 0 || u > 1 {
		return 0
	}
	return -0.5 * (1 - math.Cos(2*math.Pi*u))
}

// BurstShape is a symmetric Paczynski-like bump peaking at u = 0.5 for u in
// [0, 1].
func BurstShape(u float64) float64 {
	if u < 0 || u > 1 {
		return 0
	}
	d := (u - 0.5) / 0.18
	return math.Exp(-0.5 * d * d)
}

// AnomalyEvent describes one injected event.
type AnomalyEvent struct {
	Kind     AnomalyKind
	Variate  int
	Start    int // first affected timestamp
	Length   int // number of affected timestamps
	Amp      float64
	HalfLife float64 // flare t_1/2 in samples (flares only)
}

// Shape evaluates the event's additive magnitude deviation at timestamp t.
func (e AnomalyEvent) Shape(t int) float64 {
	if t < e.Start || t >= e.Start+e.Length {
		return 0
	}
	switch e.Kind {
	case AnomalyFlare:
		peak := e.Start + int(math.Max(1, e.HalfLife)) // rise occupies one half-width
		tau := float64(t-peak) / math.Max(1, e.HalfLife)
		return e.Amp * FlareShape(tau)
	case AnomalyNova:
		u := float64(t-e.Start) / float64(e.Length-1)
		return e.Amp * NovaShape(u, 0.15)
	case AnomalyEclipse:
		u := float64(t-e.Start) / float64(e.Length-1)
		return e.Amp * EclipseShape(u)
	case AnomalyBurst:
		u := float64(t-e.Start) / float64(e.Length-1)
		return e.Amp * BurstShape(u)
	}
	return 0
}

// InjectAnomaly adds the event to the series and marks its labels. Points
// whose shape magnitude is below 5% of the amplitude are left unlabelled so
// that labels hug the visible deviation.
func InjectAnomaly(s *Series, e AnomalyEvent) {
	min := 0.05 * math.Abs(e.Amp)
	for t := e.Start; t < e.Start+e.Length && t < s.Len(); t++ {
		dv := e.Shape(t)
		s.Data[e.Variate][t] += dv
		if math.Abs(dv) >= min {
			s.Labels[e.Variate][t] = true
		}
	}
}

// RandomAnomaly draws a random event of the given kind for a series of
// length T on the given variate, with amplitude scaled by amp.
func RandomAnomaly(rng *rand.Rand, kind AnomalyKind, variate, T int, amp float64) AnomalyEvent {
	var length int
	switch kind {
	case AnomalyFlare:
		length = 20 + rng.Intn(30)
	case AnomalyNova:
		length = 60 + rng.Intn(120)
	case AnomalyEclipse:
		length = 30 + rng.Intn(50)
	default:
		length = 25 + rng.Intn(40)
	}
	if length >= T/4 {
		length = T / 4
	}
	start := rng.Intn(T - length - 1)
	return AnomalyEvent{
		Kind:     kind,
		Variate:  variate,
		Start:    start,
		Length:   length,
		Amp:      amp * (0.8 + 0.4*rng.Float64()),
		HalfLife: 3 + 4*rng.Float64(),
	}
}
