package dataset

import (
	"math"
	"math/rand"
)

// GWACConfig parameterizes the GWAC-like observation simulator that stands
// in for the paper's real Astrosets (Ground-based Wide Angle Cameras,
// National Astronomical Observatories of China). The simulator reproduces
// the statistical signature the paper relies on: irregular cadence,
// magnitude-dependent photometric scatter, telescope-wide concurrent noise
// (clouds, dawn brightening, extinction drift) affecting *all* stars, and
// rare long-lived celestial events.
type GWACConfig struct {
	Name     string
	N        int
	TrainLen int
	TestLen  int
	// AnomalySegments and AnomalyLen control the injected celestial
	// events in the test split (Astrosets have few, long segments).
	AnomalySegments int
	AnomalyLen      int
	// NoisePct is the target percentage of points affected by concurrent
	// noise.
	NoisePct float64
	// CadenceSec is the nominal sampling interval; JitterSec adds
	// per-sample randomness and GapProb occasionally drops into a larger
	// gap, yielding the irregular intervals AERO's time embedding handles.
	CadenceSec float64
	JitterSec  float64
	GapProb    float64
	Seed       int64
}

// AstrosetMiddle mirrors Table I row 4 (54 stars, 2 long anomaly segments).
func AstrosetMiddle() GWACConfig {
	return GWACConfig{
		Name: "AstrosetMiddle", N: 54, TrainLen: 5540, TestLen: 5387,
		AnomalySegments: 2, AnomalyLen: 220, NoisePct: 4.173,
		CadenceSec: 15, JitterSec: 2, GapProb: 0.002, Seed: 11,
	}
}

// AstrosetHigh mirrors Table I row 5 (38 stars).
func AstrosetHigh() GWACConfig {
	return GWACConfig{
		Name: "AstrosetHigh", N: 38, TrainLen: 8000, TestLen: 6117,
		AnomalySegments: 2, AnomalyLen: 135, NoisePct: 2.405,
		CadenceSec: 15, JitterSec: 2, GapProb: 0.002, Seed: 12,
	}
}

// AstrosetLow mirrors Table I row 6 (40 stars, heavy concurrent noise).
func AstrosetLow() GWACConfig {
	return GWACConfig{
		Name: "AstrosetLow", N: 40, TrainLen: 6255, TestLen: 2950,
		AnomalySegments: 6, AnomalyLen: 32, NoisePct: 8.419,
		CadenceSec: 15, JitterSec: 2, GapProb: 0.002, Seed: 13,
	}
}

// Generate builds the simulated Astroset. Generation is deterministic
// given cfg.Seed.
func (cfg GWACConfig) Generate() *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Star population: baseline magnitude, photometric scatter growing
	// with faintness, and a subset of genuinely variable stars.
	baseMag := make([]float64, cfg.N)
	scatter := make([]float64, cfg.N)
	variable := make([]bool, cfg.N)
	periods := make([]float64, cfg.N)
	amps := make([]float64, cfg.N)
	phases := make([]float64, cfg.N)
	for i := 0; i < cfg.N; i++ {
		baseMag[i] = 6 + 8*rng.Float64() // magnitudes ~ [6, 14]
		scatter[i] = 0.01 + 0.02*(baseMag[i]-6)/8 + 0.01*rng.Float64()
		variable[i] = rng.Float64() < 0.35
		periods[i] = 120 + 600*rng.Float64()
		amps[i] = 0.05 + 0.25*rng.Float64()
		phases[i] = 2 * math.Pi * rng.Float64()
	}

	irregularTime := func(T int, t0 float64) []float64 {
		ts := make([]float64, T)
		t := t0
		for i := 0; i < T; i++ {
			dt := cfg.CadenceSec + cfg.JitterSec*(rng.Float64()-0.5)*2
			if rng.Float64() < cfg.GapProb {
				dt += cfg.CadenceSec * (5 + 20*rng.Float64()) // re-pointing gap
			}
			if dt < 1 {
				dt = 1
			}
			t += dt
			ts[i] = t
		}
		return ts
	}

	build := func(T int, t0 float64, offset int) *Series {
		s := NewSeries(cfg.N, T)
		s.Time = irregularTime(T, t0)
		for i := 0; i < cfg.N; i++ {
			for t := 0; t < T; t++ {
				pos := float64(offset + t)
				v := baseMag[i] + rng.NormFloat64()*scatter[i]
				if variable[i] {
					v += amps[i] * math.Sin(2*math.Pi/periods[i]*pos+phases[i])
				}
				s.Data[i][t] = v
			}
		}
		return s
	}

	train := build(cfg.TrainLen, 0, 0)
	test := build(cfg.TestLen, train.Time[len(train.Time)-1]+cfg.CadenceSec, cfg.TrainLen)

	// Concurrent noise affects the whole field of view: every star is a
	// candidate (Table I: #Noise variates == N for all Astrosets).
	all := make([]int, cfg.N)
	for i := range all {
		all[i] = i
	}
	injectGWACNoise(train, all, cfg.NoisePct, rng)
	injectGWACNoise(test, all, cfg.NoisePct, rng)

	// Rare celestial events: few long segments, flare- or nova-shaped.
	for k := 0; k < cfg.AnomalySegments; k++ {
		variate := rng.Intn(cfg.N)
		kind := AnomalyFlare
		if k%2 == 1 {
			kind = AnomalyNova
		}
		length := cfg.AnomalyLen * (80 + rng.Intn(40)) / 100
		if length < 8 {
			length = 8
		}
		start := rng.Intn(cfg.TestLen - length - 1)
		InjectAnomaly(test, AnomalyEvent{
			Kind: kind, Variate: variate, Start: start, Length: length,
			Amp:      0.4 + 0.5*rng.Float64(), // magnitudes of brightening
			HalfLife: float64(length) / 8,
		})
	}

	return &Dataset{Name: cfg.Name, Train: train, Test: test}
}

// injectGWACNoise adds telescope-wide noise events until pct of points are
// affected. GWAC noise events are longer and involve most of the field.
func injectGWACNoise(s *Series, candidates []int, pct float64, rng *rand.Rand) {
	target := int(pct / 100 * float64(s.N()*s.Len()))
	minVars := (3 * len(candidates)) / 4
	if minVars < 2 {
		minVars = 2
	}
	for i := 0; i < 256 && s.NoisePoints() < target; i++ {
		ev := RandomNoiseEvent(rng, candidates, s.Len(), 60, 160, 0.6, minVars)
		InjectNoise(s, ev, rng)
	}
}

// ScalabilityDataset generates an n-star synthetic dataset of the given
// length for the Fig. 7 scalability sweep.
func ScalabilityDataset(n, trainLen, testLen int, seed int64) *Dataset {
	cfg := SyntheticConfig{
		Name: "Scale", N: n, TrainLen: trainLen, TestLen: testLen,
		NoiseVariates: (2 * n) / 3, AnomalySegments: 1 + n/50,
		NoisePct: 1.7, VariableFrac: 0.5, Seed: seed,
	}
	return cfg.Generate()
}
