package dataset

import (
	"math"
	"math/rand"
)

// SyntheticConfig parameterizes the paper's synthetic benchmark generator
// (§IV-A). Basic signals are either Gaussian (non-variable stars) or
// sinusoidal with Gaussian noise (variable stars); concurrent noise events
// and true anomalies are injected on top.
type SyntheticConfig struct {
	Name     string
	N        int // number of stars (variates)
	TrainLen int
	TestLen  int
	// NoiseVariates is the number of variates eligible for concurrent
	// noise (Table I: 17 of 24).
	NoiseVariates int
	// AnomalySegments is the number of true-anomaly segments injected into
	// the test split.
	AnomalySegments int
	// NoisePct is the target percentage of test points affected by
	// concurrent noise.
	NoisePct float64
	// VariableFrac is the fraction of stars behaving as variable stars.
	VariableFrac float64
	Seed         int64
}

// SyntheticMiddle returns the configuration for the SyntheticMiddle dataset
// (moderate anomaly-to-noise ratio, Table I row 1).
func SyntheticMiddle() SyntheticConfig {
	return SyntheticConfig{
		Name: "SyntheticMiddle", N: 24, TrainLen: 4000, TestLen: 4000,
		NoiseVariates: 17, AnomalySegments: 5, NoisePct: 1.719,
		VariableFrac: 0.5, Seed: 1,
	}
}

// SyntheticHigh doubles the number of anomalous segments (higher A/N,
// Table I row 2).
func SyntheticHigh() SyntheticConfig {
	c := SyntheticMiddle()
	c.Name = "SyntheticHigh"
	c.AnomalySegments = 10
	c.Seed = 2
	return c
}

// SyntheticLow doubles the amount of concurrent noise (lower A/N, Table I
// row 3).
func SyntheticLow() SyntheticConfig {
	c := SyntheticMiddle()
	c.Name = "SyntheticLow"
	c.NoisePct = 3.438
	c.Seed = 3
	return c
}

// Generate builds the synthetic dataset described by cfg. Generation is
// deterministic given cfg.Seed.
func (cfg SyntheticConfig) Generate() *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))

	kinds := make([]bool, cfg.N) // true = variable star
	periods := make([]float64, cfg.N)
	phases := make([]float64, cfg.N)
	for i := 0; i < cfg.N; i++ {
		kinds[i] = rng.Float64() < cfg.VariableFrac
		// Cycle value sampled from [100, 300] (paper §IV-A).
		periods[i] = 100 + 200*rng.Float64()
		phases[i] = 2 * math.Pi * rng.Float64()
	}

	base := func(T int, offset int) *Series {
		s := NewSeries(cfg.N, T)
		for i := 0; i < cfg.N; i++ {
			for t := 0; t < T; t++ {
				pos := float64(offset + t)
				v := rng.NormFloat64() * 0.2
				if kinds[i] {
					v += 2 * math.Sin(2*math.Pi/periods[i]*pos+phases[i])
				}
				s.Data[i][t] = v
			}
		}
		return s
	}

	train := base(cfg.TrainLen, 0)
	test := base(cfg.TestLen, cfg.TrainLen)

	noiseCandidates := make([]int, cfg.NoiseVariates)
	for i := range noiseCandidates {
		noiseCandidates[i] = i // first NoiseVariates stars are exposed
	}

	injectNoiseToTarget(train, noiseCandidates, cfg.NoisePct, rng)
	injectNoiseToTarget(test, noiseCandidates, cfg.NoisePct, rng)

	// True anomalies only appear in the (labelled) test split; training is
	// anomaly-free per the unsupervised protocol.
	for k := 0; k < cfg.AnomalySegments; k++ {
		kind := AnomalyKind(k % int(numAnomalyKinds))
		variate := rng.Intn(cfg.N)
		ev := RandomAnomaly(rng, kind, variate, cfg.TestLen, 2.2)
		InjectAnomaly(test, ev)
	}

	return &Dataset{Name: cfg.Name, Train: train, Test: test}
}

// injectNoiseToTarget keeps adding random concurrent-noise events until the
// fraction of noise-marked points reaches pct of the series (with a hard
// cap on event count as a safety net).
func injectNoiseToTarget(s *Series, candidates []int, pct float64, rng *rand.Rand) {
	target := int(pct / 100 * float64(s.N()*s.Len()))
	minVars := len(candidates) / 2
	if minVars < 2 {
		minVars = 2
	}
	for i := 0; i < 256 && s.NoisePoints() < target; i++ {
		ev := RandomNoiseEvent(rng, candidates, s.Len(), 40, 110, 1.8, minVars)
		InjectNoise(s, ev, rng)
	}
}
