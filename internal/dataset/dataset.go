// Package dataset provides the data substrate for the AERO reproduction:
// multivariate light-curve containers, the paper's synthetic benchmark
// generator (§IV-A: Gaussian / sinusoidal basic signals with drift,
// cloud-darkening and sunrise-brightening concurrent noise plus injected
// astrophysical anomalies), a GWAC-like simulator standing in for the
// unavailable real Astrosets, dataset statistics (Table I), and CSV
// persistence.
package dataset

import (
	"fmt"
	"math"
)

// Series is a multivariate time series of star magnitudes with ground
// truth annotations. Data is indexed [variate][time]; all variates share
// the Time axis.
type Series struct {
	// Data holds the magnitude of each star at each timestamp.
	Data [][]float64
	// Time holds the observation timestamps in seconds. Astronomical
	// cadences are irregular; synthetic sets use unit spacing.
	Time []float64
	// Labels marks true anomalies (celestial events) per variate.
	Labels [][]bool
	// NoiseMask marks points affected by concurrent noise per variate.
	NoiseMask [][]bool
}

// NewSeries allocates an n-variate series of length T with unit-spaced
// timestamps.
func NewSeries(n, T int) *Series {
	s := &Series{
		Data:      make([][]float64, n),
		Time:      make([]float64, T),
		Labels:    make([][]bool, n),
		NoiseMask: make([][]bool, n),
	}
	for i := 0; i < n; i++ {
		s.Data[i] = make([]float64, T)
		s.Labels[i] = make([]bool, T)
		s.NoiseMask[i] = make([]bool, T)
	}
	for t := 0; t < T; t++ {
		s.Time[t] = float64(t)
	}
	return s
}

// N returns the number of variates.
func (s *Series) N() int { return len(s.Data) }

// Len returns the number of timestamps.
func (s *Series) Len() int { return len(s.Time) }

// AnomalyPoints counts labelled anomalous points across all variates.
func (s *Series) AnomalyPoints() int {
	c := 0
	for _, lab := range s.Labels {
		for _, b := range lab {
			if b {
				c++
			}
		}
	}
	return c
}

// NoisePoints counts concurrent-noise points across all variates.
func (s *Series) NoisePoints() int {
	c := 0
	for _, m := range s.NoiseMask {
		for _, b := range m {
			if b {
				c++
			}
		}
	}
	return c
}

// Validate checks internal consistency and returns a descriptive error on
// the first violation.
func (s *Series) Validate() error {
	T := s.Len()
	if len(s.Data) != len(s.Labels) || len(s.Data) != len(s.NoiseMask) {
		return fmt.Errorf("dataset: variate count mismatch data=%d labels=%d noise=%d",
			len(s.Data), len(s.Labels), len(s.NoiseMask))
	}
	for i := range s.Data {
		if len(s.Data[i]) != T || len(s.Labels[i]) != T || len(s.NoiseMask[i]) != T {
			return fmt.Errorf("dataset: variate %d length mismatch", i)
		}
		for t, v := range s.Data[i] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("dataset: variate %d has non-finite value at t=%d", i, t)
			}
		}
	}
	for t := 1; t < T; t++ {
		if !(s.Time[t] > s.Time[t-1]) {
			return fmt.Errorf("dataset: timestamps not strictly increasing at %d", t)
		}
	}
	return nil
}

// Dataset couples a training split (unsupervised, anomaly-free) with a
// labelled test split.
type Dataset struct {
	Name  string
	Train *Series
	Test  *Series
}

// Stats summarizes a dataset in the shape of the paper's Table I.
type Stats struct {
	Name        string
	TrainLen    int
	TestLen     int
	Variates    int
	AnomalyPct  float64 // % of anomalous test points
	NoisePct    float64 // % of concurrent-noise test points
	AnomToNoise float64 // A/N ratio
	AnomSegs    int     // number of anomaly segments in the test split
	NoiseVars   int     // variates affected by concurrent noise (train+test)
}

// ComputeStats derives Table I statistics from a dataset.
func ComputeStats(d *Dataset) Stats {
	st := Stats{
		Name:     d.Name,
		TrainLen: d.Train.Len(),
		TestLen:  d.Test.Len(),
		Variates: d.Test.N(),
	}
	total := float64(d.Test.N() * d.Test.Len())
	if total > 0 {
		st.AnomalyPct = 100 * float64(d.Test.AnomalyPoints()) / total
		st.NoisePct = 100 * float64(d.Test.NoisePoints()) / total
	}
	if st.NoisePct > 0 {
		st.AnomToNoise = st.AnomalyPct / st.NoisePct
	}
	for v := 0; v < d.Test.N(); v++ {
		segs := countSegments(d.Test.Labels[v])
		st.AnomSegs += segs
		if anyTrue(d.Test.NoiseMask[v]) || (v < d.Train.N() && anyTrue(d.Train.NoiseMask[v])) {
			st.NoiseVars++
		}
	}
	return st
}

func countSegments(labels []bool) int {
	c := 0
	prev := false
	for _, b := range labels {
		if b && !prev {
			c++
		}
		prev = b
	}
	return c
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}
