package dataset

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// WriteSeries persists a series as three CSV files next to each other:
// <base>.data.csv (time + one column per star), <base>.labels.csv and
// <base>.noise.csv (0/1 masks with the same layout).
func WriteSeries(base string, s *Series) error {
	if err := writeCSV(base+".data.csv", s, func(v int, t int) string {
		return strconv.FormatFloat(s.Data[v][t], 'g', -1, 64)
	}); err != nil {
		return err
	}
	if err := writeCSV(base+".labels.csv", s, func(v, t int) string {
		return boolDigit(s.Labels[v][t])
	}); err != nil {
		return err
	}
	return writeCSV(base+".noise.csv", s, func(v, t int) string {
		return boolDigit(s.NoiseMask[v][t])
	})
}

func boolDigit(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

func writeCSV(path string, s *Series, cell func(v, t int) string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	w := csv.NewWriter(f)
	header := make([]string, s.N()+1)
	header[0] = "time"
	for v := 0; v < s.N(); v++ {
		header[v+1] = fmt.Sprintf("star_%d", v)
	}
	if err := w.Write(header); err != nil {
		f.Close()
		return fmt.Errorf("dataset: %w", err)
	}
	row := make([]string, s.N()+1)
	for t := 0; t < s.Len(); t++ {
		row[0] = strconv.FormatFloat(s.Time[t], 'g', -1, 64)
		for v := 0; v < s.N(); v++ {
			row[v+1] = cell(v, t)
		}
		if err := w.Write(row); err != nil {
			f.Close()
			return fmt.Errorf("dataset: %w", err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return fmt.Errorf("dataset: %w", err)
	}
	return f.Close()
}

// ReadSeries loads a series previously written by WriteSeries. The labels
// and noise files are optional; missing ones yield all-false masks.
func ReadSeries(base string) (*Series, error) {
	times, data, err := readCSVFloats(base + ".data.csv")
	if err != nil {
		return nil, err
	}
	n := len(data)
	T := len(times)
	s := &Series{Data: data, Time: times, Labels: make([][]bool, n), NoiseMask: make([][]bool, n)}
	for v := 0; v < n; v++ {
		s.Labels[v] = make([]bool, T)
		s.NoiseMask[v] = make([]bool, T)
	}
	if _, lab, err := readCSVFloats(base + ".labels.csv"); err == nil && len(lab) == n {
		for v := range lab {
			for t, x := range lab[v] {
				s.Labels[v][t] = x != 0
			}
		}
	}
	if _, noi, err := readCSVFloats(base + ".noise.csv"); err == nil && len(noi) == n {
		for v := range noi {
			for t, x := range noi[v] {
				s.NoiseMask[v][t] = x != 0
			}
		}
	}
	return s, s.Validate()
}

// readCSVFloats parses a data CSV into a time column and per-star series.
func readCSVFloats(path string) (times []float64, data [][]float64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	rows, err := r.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("dataset: %s: %w", path, err)
	}
	if len(rows) < 2 {
		return nil, nil, fmt.Errorf("dataset: %s: no data rows", path)
	}
	n := len(rows[0]) - 1
	if n < 1 {
		return nil, nil, fmt.Errorf("dataset: %s: need at least one star column", path)
	}
	data = make([][]float64, n)
	for v := range data {
		data[v] = make([]float64, 0, len(rows)-1)
	}
	for i, row := range rows[1:] {
		if len(row) != n+1 {
			return nil, nil, fmt.Errorf("dataset: %s: row %d has %d fields, want %d", path, i+2, len(row), n+1)
		}
		tv, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("dataset: %s row %d: %w", path, i+2, err)
		}
		times = append(times, tv)
		for v := 0; v < n; v++ {
			x, err := strconv.ParseFloat(row[v+1], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("dataset: %s row %d col %d: %w", path, i+2, v+1, err)
			}
			data[v] = append(data[v], x)
		}
	}
	return times, data, nil
}

// WriteDataset persists both splits of a dataset under dir using the
// dataset name as the file prefix.
func WriteDataset(dir string, d *Dataset) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := WriteSeries(filepath.Join(dir, d.Name+".train"), d.Train); err != nil {
		return err
	}
	return WriteSeries(filepath.Join(dir, d.Name+".test"), d.Test)
}

// ReadDataset loads a dataset previously written by WriteDataset.
func ReadDataset(dir, name string) (*Dataset, error) {
	train, err := ReadSeries(filepath.Join(dir, name+".train"))
	if err != nil {
		return nil, err
	}
	test, err := ReadSeries(filepath.Join(dir, name+".test"))
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: name, Train: train, Test: test}, nil
}
