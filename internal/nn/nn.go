// Package nn provides the neural-network building blocks used by AERO and
// the deep baselines: linear layers, layer normalization, multi-head
// attention, feed-forward blocks, GRU cells, im2col convolutions, parameter
// initialization, gradient clipping and the Adam optimizer.
//
// Layers own their ag.Params and expose a Forward method that records onto
// a caller-supplied tape, so one set of weights can serve many concurrent
// forward passes.
package nn

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"aero/internal/ag"
	"aero/internal/tensor"
)

// Module is anything owning trainable parameters.
type Module interface {
	Params() []*ag.Param
}

// CollectParams flattens the parameters of several modules.
func CollectParams(ms ...Module) []*ag.Param {
	var ps []*ag.Param
	for _, m := range ms {
		ps = append(ps, m.Params()...)
	}
	return ps
}

// xavier returns a Xavier/Glorot-uniform initialised in×out matrix.
func xavier(in, out int, rng *rand.Rand) *tensor.Dense {
	limit := math.Sqrt(6 / float64(in+out))
	return tensor.Uniform(in, out, -limit, limit, rng)
}

// Linear is a fully connected layer y = x·W + b for row-major batches.
type Linear struct {
	W *ag.Param // in×out
	B *ag.Param // 1×out
}

// NewLinear returns a Xavier-initialised in→out linear layer.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	return &Linear{
		W: ag.NewParam(name+".W", xavier(in, out, rng)),
		B: ag.NewParam(name+".B", tensor.New(1, out)),
	}
}

// Forward applies the layer to x (rows are batch items).
func (l *Linear) Forward(t *ag.Tape, x *ag.Node) *ag.Node {
	return t.AddRow(t.MatMul(x, t.Param(l.W)), t.Param(l.B))
}

// Params implements Module.
func (l *Linear) Params() []*ag.Param { return []*ag.Param{l.W, l.B} }

// LayerNorm normalizes rows and applies a learnable affine transform.
type LayerNorm struct {
	Gain *ag.Param // 1×dim
	Bias *ag.Param // 1×dim
	Eps  float64
}

// NewLayerNorm returns a LayerNorm over vectors of width dim.
func NewLayerNorm(name string, dim int) *LayerNorm {
	g := tensor.New(1, dim)
	g.Fill(1)
	return &LayerNorm{
		Gain: ag.NewParam(name+".gain", g),
		Bias: ag.NewParam(name+".bias", tensor.New(1, dim)),
		Eps:  1e-5,
	}
}

// Forward normalizes each row of x.
func (l *LayerNorm) Forward(t *ag.Tape, x *ag.Node) *ag.Node {
	return t.LayerNormRows(x, t.Param(l.Gain), t.Param(l.Bias), l.Eps)
}

// Params implements Module.
func (l *LayerNorm) Params() []*ag.Param { return []*ag.Param{l.Gain, l.Bias} }

// MultiHeadAttention implements standard scaled dot-product attention with
// h heads over dm-dimensional token rows.
//
// Band, when > 0, restricts each query to keys within Band positions
// (banded/local attention) — an O(T·band) variant of the O(T²) full
// attention, implementing the "more scalable Transformer variants" the
// paper lists as future work. Band only applies to square (self-)attention
// shapes; cross-attention with different query/key lengths ignores it.
type MultiHeadAttention struct {
	Wq, Wk, Wv, Wo *Linear
	Heads          int
	Dim            int
	Band           int

	masks sync.Map // length -> *tensor.Dense banded self-attention mask
}

// NewMultiHeadAttention returns an h-head attention block over width dm.
func NewMultiHeadAttention(name string, dm, heads int, rng *rand.Rand) *MultiHeadAttention {
	if dm%heads != 0 {
		panic(fmt.Sprintf("nn: model dim %d not divisible by %d heads", dm, heads))
	}
	return &MultiHeadAttention{
		Wq:    NewLinear(name+".q", dm, dm, rng),
		Wk:    NewLinear(name+".k", dm, dm, rng),
		Wv:    NewLinear(name+".v", dm, dm, rng),
		Wo:    NewLinear(name+".o", dm, dm, rng),
		Heads: heads,
		Dim:   dm,
	}
}

// Forward computes attention with separate query/key/value inputs
// (self-attention passes the same node three times). Rows are timesteps.
func (m *MultiHeadAttention) Forward(t *ag.Tape, query, key, value *ag.Node) *ag.Node {
	q := m.Wq.Forward(t, query)
	k := m.Wk.Forward(t, key)
	v := m.Wv.Forward(t, value)
	dk := m.Dim / m.Heads
	scale := 1 / math.Sqrt(float64(dk))
	var headsBuf [8]*ag.Node // avoids a per-forward slice alloc for typical head counts
	var heads []*ag.Node
	if m.Heads <= len(headsBuf) {
		heads = headsBuf[:m.Heads]
	} else {
		heads = make([]*ag.Node, m.Heads)
	}
	mask := m.bandMask(query.Rows(), key.Rows())
	for h := 0; h < m.Heads; h++ {
		lo, hi := h*dk, (h+1)*dk
		qh := t.SliceCols(q, lo, hi)
		kh := t.SliceCols(k, lo, hi)
		vh := t.SliceCols(v, lo, hi)
		scores := t.Scale(t.MatMulT(qh, kh), scale)
		if mask != nil {
			scores = t.Add(scores, t.Const(mask))
		}
		probs := t.SoftmaxRows(scores)
		heads[h] = t.MatMul(probs, vh)
	}
	var cat *ag.Node
	if len(heads) == 1 {
		cat = heads[0]
	} else {
		cat = t.ConcatCols(heads...)
	}
	return m.Wo.Forward(t, cat)
}

// AttentionWeights runs the forward pass and additionally returns the
// per-head softmax attention maps (used by AnomalyTransformer).
func (m *MultiHeadAttention) AttentionWeights(t *ag.Tape, query, key, value *ag.Node) (*ag.Node, []*ag.Node) {
	q := m.Wq.Forward(t, query)
	k := m.Wk.Forward(t, key)
	v := m.Wv.Forward(t, value)
	dk := m.Dim / m.Heads
	scale := 1 / math.Sqrt(float64(dk))
	heads := make([]*ag.Node, m.Heads)
	attns := make([]*ag.Node, m.Heads)
	mask := m.bandMask(query.Rows(), key.Rows())
	for h := 0; h < m.Heads; h++ {
		lo, hi := h*dk, (h+1)*dk
		qh := t.SliceCols(q, lo, hi)
		kh := t.SliceCols(k, lo, hi)
		vh := t.SliceCols(v, lo, hi)
		scores := t.Scale(t.MatMulT(qh, kh), scale)
		if mask != nil {
			scores = t.Add(scores, t.Const(mask))
		}
		probs := t.SoftmaxRows(scores)
		attns[h] = probs
		heads[h] = t.MatMul(probs, vh)
	}
	var cat *ag.Node
	if len(heads) == 1 {
		cat = heads[0]
	} else {
		cat = t.ConcatCols(heads...)
	}
	return m.Wo.Forward(t, cat), attns
}

// bandMask returns the additive −∞-style mask for banded self-attention,
// or nil when the band is disabled or the shape is not square. Masks are
// immutable once built and cached per length (lock-free reads, so many
// detectors sharing one model do not contend), so repeated forward passes
// do not re-allocate them.
func (m *MultiHeadAttention) bandMask(qLen, kLen int) *tensor.Dense {
	if m.Band <= 0 || qLen != kLen {
		return nil
	}
	if cached, ok := m.masks.Load(qLen); ok {
		return cached.(*tensor.Dense)
	}
	mask := tensor.New(qLen, kLen)
	for i := 0; i < qLen; i++ {
		row := mask.Row(i)
		for j := 0; j < kLen; j++ {
			if j < i-m.Band || j > i+m.Band {
				row[j] = -1e9
			}
		}
	}
	cached, _ := m.masks.LoadOrStore(qLen, mask)
	return cached.(*tensor.Dense)
}

// Params implements Module.
func (m *MultiHeadAttention) Params() []*ag.Param {
	return CollectParams(m.Wq, m.Wk, m.Wv, m.Wo)
}

// FFN is the Transformer position-wise feed-forward block with a ReLU.
type FFN struct {
	L1, L2 *Linear
}

// NewFFN returns a dm→hidden→out feed-forward block.
func NewFFN(name string, dm, hidden, out int, rng *rand.Rand) *FFN {
	return &FFN{
		L1: NewLinear(name+".1", dm, hidden, rng),
		L2: NewLinear(name+".2", hidden, out, rng),
	}
}

// Forward applies L2(ReLU(L1(x))).
func (f *FFN) Forward(t *ag.Tape, x *ag.Node) *ag.Node {
	return f.L2.Forward(t, t.ReLU(f.L1.Forward(t, x)))
}

// Params implements Module.
func (f *FFN) Params() []*ag.Param { return CollectParams(f.L1, f.L2) }

// GRUCell is a standard gated recurrent unit operating on 1×dim rows
// (or batched B×dim rows).
type GRUCell struct {
	Wz, Uz, Wr, Ur, Wh, Uh *ag.Param
	Bz, Br, Bh             *ag.Param
	In, Hidden             int
}

// NewGRUCell returns a GRU cell with the given input and hidden sizes.
func NewGRUCell(name string, in, hidden int, rng *rand.Rand) *GRUCell {
	p := func(suffix string, r, c int) *ag.Param {
		return ag.NewParam(name+suffix, xavier(r, c, rng))
	}
	b := func(suffix string, c int) *ag.Param {
		return ag.NewParam(name+suffix, tensor.New(1, c))
	}
	return &GRUCell{
		Wz: p(".Wz", in, hidden), Uz: p(".Uz", hidden, hidden), Bz: b(".bz", hidden),
		Wr: p(".Wr", in, hidden), Ur: p(".Ur", hidden, hidden), Br: b(".br", hidden),
		Wh: p(".Wh", in, hidden), Uh: p(".Uh", hidden, hidden), Bh: b(".bh", hidden),
		In: in, Hidden: hidden,
	}
}

// Step advances the cell: given input x (B×in) and state h (B×hidden),
// it returns the next state.
func (g *GRUCell) Step(t *ag.Tape, x, h *ag.Node) *ag.Node {
	z := t.Sigmoid(t.AddRow(t.Add(t.MatMul(x, t.Param(g.Wz)), t.MatMul(h, t.Param(g.Uz))), t.Param(g.Bz)))
	r := t.Sigmoid(t.AddRow(t.Add(t.MatMul(x, t.Param(g.Wr)), t.MatMul(h, t.Param(g.Ur))), t.Param(g.Br)))
	hr := t.Mul(r, h)
	hc := t.Tanh(t.AddRow(t.Add(t.MatMul(x, t.Param(g.Wh)), t.MatMul(hr, t.Param(g.Uh))), t.Param(g.Bh)))
	// h' = (1-z)·h + z·hc  ==  h + z·(hc - h)
	return t.Add(h, t.Mul(z, t.Sub(hc, h)))
}

// InitState returns a zero state for a batch of size b.
func (g *GRUCell) InitState(t *ag.Tape, b int) *ag.Node {
	return t.Const(tensor.New(b, g.Hidden))
}

// Params implements Module.
func (g *GRUCell) Params() []*ag.Param {
	return []*ag.Param{g.Wz, g.Uz, g.Bz, g.Wr, g.Ur, g.Br, g.Wh, g.Uh, g.Bh}
}
