// Package nn provides the neural-network building blocks used by AERO and
// the deep baselines: linear layers, layer normalization, multi-head
// attention, feed-forward blocks, GRU cells, im2col convolutions, parameter
// initialization, gradient clipping and the Adam optimizer.
//
// Layers own their ag.Params and expose a Forward method that records onto
// a caller-supplied tape, so one set of weights can serve many concurrent
// forward passes.
package nn

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"aero/internal/ag"
	"aero/internal/tensor"
)

// Module is anything owning trainable parameters.
type Module interface {
	Params() []*ag.Param
}

// CollectParams flattens the parameters of several modules.
func CollectParams(ms ...Module) []*ag.Param {
	var ps []*ag.Param
	for _, m := range ms {
		ps = append(ps, m.Params()...)
	}
	return ps
}

// xavier returns a Xavier/Glorot-uniform initialised in×out matrix.
func xavier(in, out int, rng *rand.Rand) *tensor.Dense {
	limit := math.Sqrt(6 / float64(in+out))
	return tensor.Uniform(in, out, -limit, limit, rng)
}

// Linear is a fully connected layer y = x·W + b for row-major batches.
type Linear struct {
	W *ag.Param // in×out
	B *ag.Param // 1×out
}

// NewLinear returns a Xavier-initialised in→out linear layer.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	return &Linear{
		W: ag.NewParam(name+".W", xavier(in, out, rng)),
		B: ag.NewParam(name+".B", tensor.New(1, out)),
	}
}

// Forward applies the layer to x (rows are batch items).
func (l *Linear) Forward(t *ag.Tape, x *ag.Node) *ag.Node {
	return t.AddRow(t.MatMul(x, t.Param(l.W)), t.Param(l.B))
}

// ApplyRow applies the layer to the single row x (length in), writing
// x·W + b into dst (length out) without recording onto a tape — the
// incremental streaming path's entry point for re-projecting only the
// rows that entered the window. The accumulation mirrors the tape MatMul
// kernel (input-major with zero-skip, bias added in a second pass), so
// the result is bit-identical to the matching row of Forward.
func (l *Linear) ApplyRow(dst, x []float64) {
	w := l.W.Value
	for j := range dst {
		dst[j] = 0
	}
	for k, xv := range x {
		if xv == 0 {
			continue
		}
		wrow := w.Row(k)
		for j, wv := range wrow {
			dst[j] += xv * wv
		}
	}
	for j, bv := range l.B.Value.Data {
		dst[j] += bv
	}
}

// Params implements Module.
func (l *Linear) Params() []*ag.Param { return []*ag.Param{l.W, l.B} }

// LayerNorm normalizes rows and applies a learnable affine transform.
type LayerNorm struct {
	Gain *ag.Param // 1×dim
	Bias *ag.Param // 1×dim
	Eps  float64
}

// NewLayerNorm returns a LayerNorm over vectors of width dim.
func NewLayerNorm(name string, dim int) *LayerNorm {
	g := tensor.New(1, dim)
	g.Fill(1)
	return &LayerNorm{
		Gain: ag.NewParam(name+".gain", g),
		Bias: ag.NewParam(name+".bias", tensor.New(1, dim)),
		Eps:  1e-5,
	}
}

// Forward normalizes each row of x.
func (l *LayerNorm) Forward(t *ag.Tape, x *ag.Node) *ag.Node {
	return t.LayerNormRows(x, t.Param(l.Gain), t.Param(l.Bias), l.Eps)
}

// ApplyRow normalizes the single row x into dst (dst may alias x),
// mirroring the tape's inference-mode LayerNormRows kernel bit for bit.
func (l *LayerNorm) ApplyRow(dst, x []float64) {
	gain, bias := l.Gain.Value.Data, l.Bias.Value.Data
	cols := float64(len(x))
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= cols
	var va float64
	for _, v := range x {
		d := v - mean
		va += d * d
	}
	va /= cols
	is := 1 / math.Sqrt(va+l.Eps)
	for j, v := range x {
		xh := (v - mean) * is
		dst[j] = xh*gain[j] + bias[j]
	}
}

// Params implements Module.
func (l *LayerNorm) Params() []*ag.Param { return []*ag.Param{l.Gain, l.Bias} }

// MultiHeadAttention implements standard scaled dot-product attention with
// h heads over dm-dimensional token rows.
//
// Band, when > 0, restricts each query to keys within Band positions
// (banded/local attention) — an O(T·band) variant of the O(T²) full
// attention, implementing the "more scalable Transformer variants" the
// paper lists as future work. Band only applies to square (self-)attention
// shapes; cross-attention with different query/key lengths ignores it.
type MultiHeadAttention struct {
	Wq, Wk, Wv, Wo *Linear
	Heads          int
	Dim            int
	Band           int

	masks sync.Map // length -> *tensor.Dense banded self-attention mask
}

// NewMultiHeadAttention returns an h-head attention block over width dm.
func NewMultiHeadAttention(name string, dm, heads int, rng *rand.Rand) *MultiHeadAttention {
	if dm%heads != 0 {
		panic(fmt.Sprintf("nn: model dim %d not divisible by %d heads", dm, heads))
	}
	return &MultiHeadAttention{
		Wq:    NewLinear(name+".q", dm, dm, rng),
		Wk:    NewLinear(name+".k", dm, dm, rng),
		Wv:    NewLinear(name+".v", dm, dm, rng),
		Wo:    NewLinear(name+".o", dm, dm, rng),
		Heads: heads,
		Dim:   dm,
	}
}

// Forward computes attention with separate query/key/value inputs
// (self-attention passes the same node three times). Rows are timesteps.
func (m *MultiHeadAttention) Forward(t *ag.Tape, query, key, value *ag.Node) *ag.Node {
	out, _, _ := m.ForwardKV(t, query, key, value)
	return out
}

// ForwardKV is Forward additionally returning the pre-head-split key and
// value projection nodes (T_k×dm). Streaming callers cache their values
// across pushes and re-project only the entering rows; Forward delegates
// here, so the two paths cannot diverge.
func (m *MultiHeadAttention) ForwardKV(t *ag.Tape, query, key, value *ag.Node) (out, k, v *ag.Node) {
	q := m.Wq.Forward(t, query)
	k = m.Wk.Forward(t, key)
	v = m.Wv.Forward(t, value)
	dk := m.Dim / m.Heads
	scale := 1 / math.Sqrt(float64(dk))
	var headsBuf [8]*ag.Node // avoids a per-forward slice alloc for typical head counts
	var heads []*ag.Node
	if m.Heads <= len(headsBuf) {
		heads = headsBuf[:m.Heads]
	} else {
		heads = make([]*ag.Node, m.Heads)
	}
	mask := m.bandMask(query.Rows(), key.Rows())
	for h := 0; h < m.Heads; h++ {
		lo, hi := h*dk, (h+1)*dk
		qh := t.SliceCols(q, lo, hi)
		kh := t.SliceCols(k, lo, hi)
		vh := t.SliceCols(v, lo, hi)
		scores := t.Scale(t.MatMulT(qh, kh), scale)
		if mask != nil {
			scores = t.Add(scores, t.Const(mask))
		}
		probs := t.SoftmaxRows(scores)
		heads[h] = t.MatMul(probs, vh)
	}
	var cat *ag.Node
	if len(heads) == 1 {
		cat = heads[0]
	} else {
		cat = t.ConcatCols(heads...)
	}
	return m.Wo.Forward(t, cat), k, v
}

// AttendRow computes one query row of scaled dot-product attention against
// full key/value matrices (rows are key positions, pre-head-split dm-wide),
// writing the concatenated per-head context — the input to Wo — into ctx
// (length Dim). scores is caller scratch of length ≥ k.Rows. qPos is the
// query's row position in the attended sequence; the band restriction
// applies only when square is true, mirroring Forward's bandMask rule
// (banded self-attention, unbanded cross-attention).
//
// The arithmetic mirrors the tape kernels op for op: per-cell dot products
// in ascending key-dimension order, the 1/√d_k scale applied after the
// dot, max-subtracted softmax, and zero-skip accumulation over value rows
// in ascending key order (out-of-band tape cells are exact zeros — their
// −1e9-masked exponentials underflow — so restricting the loops to the
// band is value-preserving). A row computed here from exact K/V is
// bit-identical to the corresponding row of Forward.
func (m *MultiHeadAttention) AttendRow(ctx, scores, q []float64, k, v *tensor.Dense, qPos int, square bool) {
	rows := k.Rows
	jlo, jhi := 0, rows
	if m.Band > 0 && square {
		if jlo = qPos - m.Band; jlo < 0 {
			jlo = 0
		}
		if jhi = qPos + m.Band + 1; jhi > rows {
			jhi = rows
		}
	}
	dk := m.Dim / m.Heads
	scale := 1 / math.Sqrt(float64(dk))
	for h := 0; h < m.Heads; h++ {
		lo := h * dk
		for j := jlo; j < jhi; j++ {
			krow := k.Row(j)
			var s float64
			for c := 0; c < dk; c++ {
				s += q[lo+c] * krow[lo+c]
			}
			scores[j] = s * scale
		}
		mx := math.Inf(-1)
		for j := jlo; j < jhi; j++ {
			if scores[j] > mx {
				mx = scores[j]
			}
		}
		var sum float64
		for j := jlo; j < jhi; j++ {
			e := math.Exp(scores[j] - mx)
			scores[j] = e
			sum += e
		}
		for c := 0; c < dk; c++ {
			ctx[lo+c] = 0
		}
		for j := jlo; j < jhi; j++ {
			p := scores[j] / sum
			if p == 0 {
				continue
			}
			vrow := v.Row(j)
			for c := 0; c < dk; c++ {
				ctx[lo+c] += p * vrow[lo+c]
			}
		}
	}
}

// AttentionWeights runs the forward pass and additionally returns the
// per-head softmax attention maps (used by AnomalyTransformer).
func (m *MultiHeadAttention) AttentionWeights(t *ag.Tape, query, key, value *ag.Node) (*ag.Node, []*ag.Node) {
	q := m.Wq.Forward(t, query)
	k := m.Wk.Forward(t, key)
	v := m.Wv.Forward(t, value)
	dk := m.Dim / m.Heads
	scale := 1 / math.Sqrt(float64(dk))
	heads := make([]*ag.Node, m.Heads)
	attns := make([]*ag.Node, m.Heads)
	mask := m.bandMask(query.Rows(), key.Rows())
	for h := 0; h < m.Heads; h++ {
		lo, hi := h*dk, (h+1)*dk
		qh := t.SliceCols(q, lo, hi)
		kh := t.SliceCols(k, lo, hi)
		vh := t.SliceCols(v, lo, hi)
		scores := t.Scale(t.MatMulT(qh, kh), scale)
		if mask != nil {
			scores = t.Add(scores, t.Const(mask))
		}
		probs := t.SoftmaxRows(scores)
		attns[h] = probs
		heads[h] = t.MatMul(probs, vh)
	}
	var cat *ag.Node
	if len(heads) == 1 {
		cat = heads[0]
	} else {
		cat = t.ConcatCols(heads...)
	}
	return m.Wo.Forward(t, cat), attns
}

// bandMask returns the additive −∞-style mask for banded self-attention,
// or nil when the band is disabled or the shape is not square. Masks are
// immutable once built and cached per length (lock-free reads, so many
// detectors sharing one model do not contend), so repeated forward passes
// do not re-allocate them.
func (m *MultiHeadAttention) bandMask(qLen, kLen int) *tensor.Dense {
	if m.Band <= 0 || qLen != kLen {
		return nil
	}
	if cached, ok := m.masks.Load(qLen); ok {
		return cached.(*tensor.Dense)
	}
	mask := tensor.New(qLen, kLen)
	for i := 0; i < qLen; i++ {
		row := mask.Row(i)
		for j := 0; j < kLen; j++ {
			if j < i-m.Band || j > i+m.Band {
				row[j] = -1e9
			}
		}
	}
	cached, _ := m.masks.LoadOrStore(qLen, mask)
	return cached.(*tensor.Dense)
}

// Params implements Module.
func (m *MultiHeadAttention) Params() []*ag.Param {
	return CollectParams(m.Wq, m.Wk, m.Wv, m.Wo)
}

// FFN is the Transformer position-wise feed-forward block with a ReLU.
type FFN struct {
	L1, L2 *Linear
}

// NewFFN returns a dm→hidden→out feed-forward block.
func NewFFN(name string, dm, hidden, out int, rng *rand.Rand) *FFN {
	return &FFN{
		L1: NewLinear(name+".1", dm, hidden, rng),
		L2: NewLinear(name+".2", hidden, out, rng),
	}
}

// Forward applies L2(ReLU(L1(x))).
func (f *FFN) Forward(t *ag.Tape, x *ag.Node) *ag.Node {
	return f.L2.Forward(t, t.ReLU(f.L1.Forward(t, x)))
}

// ApplyRow applies the block to the single row x into dst, using hidden
// (the L1 output width) as scratch; mirrors Forward row for row.
func (f *FFN) ApplyRow(dst, hidden, x []float64) {
	f.L1.ApplyRow(hidden, x)
	for j, v := range hidden {
		if !(v > 0) {
			hidden[j] = 0
		}
	}
	f.L2.ApplyRow(dst, hidden)
}

// Params implements Module.
func (f *FFN) Params() []*ag.Param { return CollectParams(f.L1, f.L2) }

// GRUCell is a standard gated recurrent unit operating on 1×dim rows
// (or batched B×dim rows).
type GRUCell struct {
	Wz, Uz, Wr, Ur, Wh, Uh *ag.Param
	Bz, Br, Bh             *ag.Param
	In, Hidden             int
}

// NewGRUCell returns a GRU cell with the given input and hidden sizes.
func NewGRUCell(name string, in, hidden int, rng *rand.Rand) *GRUCell {
	p := func(suffix string, r, c int) *ag.Param {
		return ag.NewParam(name+suffix, xavier(r, c, rng))
	}
	b := func(suffix string, c int) *ag.Param {
		return ag.NewParam(name+suffix, tensor.New(1, c))
	}
	return &GRUCell{
		Wz: p(".Wz", in, hidden), Uz: p(".Uz", hidden, hidden), Bz: b(".bz", hidden),
		Wr: p(".Wr", in, hidden), Ur: p(".Ur", hidden, hidden), Br: b(".br", hidden),
		Wh: p(".Wh", in, hidden), Uh: p(".Uh", hidden, hidden), Bh: b(".bh", hidden),
		In: in, Hidden: hidden,
	}
}

// Step advances the cell: given input x (B×in) and state h (B×hidden),
// it returns the next state.
func (g *GRUCell) Step(t *ag.Tape, x, h *ag.Node) *ag.Node {
	z := t.Sigmoid(t.AddRow(t.Add(t.MatMul(x, t.Param(g.Wz)), t.MatMul(h, t.Param(g.Uz))), t.Param(g.Bz)))
	r := t.Sigmoid(t.AddRow(t.Add(t.MatMul(x, t.Param(g.Wr)), t.MatMul(h, t.Param(g.Ur))), t.Param(g.Br)))
	hr := t.Mul(r, h)
	hc := t.Tanh(t.AddRow(t.Add(t.MatMul(x, t.Param(g.Wh)), t.MatMul(hr, t.Param(g.Uh))), t.Param(g.Bh)))
	// h' = (1-z)·h + z·hc  ==  h + z·(hc - h)
	return t.Add(h, t.Mul(z, t.Sub(hc, h)))
}

// InitState returns a zero state for a batch of size b.
func (g *GRUCell) InitState(t *ag.Tape, b int) *ag.Node {
	return t.Const(tensor.New(b, g.Hidden))
}

// Params implements Module.
func (g *GRUCell) Params() []*ag.Param {
	return []*ag.Param{g.Wz, g.Uz, g.Bz, g.Wr, g.Ur, g.Br, g.Wh, g.Uh, g.Bh}
}
