package nn

import (
	"math"
	"math/rand"
	"testing"

	"aero/internal/ag"
	"aero/internal/tensor"
)

// refAdam is the pre-refactor reference implementation: lazily-allocated
// map-backed moment buffers, with gradient clipping as a separate in-place
// rescaling pass before the update. The fused slice-backed Adam must
// reproduce it bit for bit.
type refAdam struct {
	lr, beta1, beta2, eps, maxNorm float64

	step int
	m, v map[*ag.Param]*tensor.Dense
}

func newRefAdam(lr, maxNorm float64) *refAdam {
	return &refAdam{
		lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, maxNorm: maxNorm,
		m: make(map[*ag.Param]*tensor.Dense),
		v: make(map[*ag.Param]*tensor.Dense),
	}
}

func (a *refAdam) Step(params []*ag.Param) {
	if a.maxNorm > 0 {
		clipGradNorm(params, a.maxNorm)
	}
	a.step++
	bc1 := 1 - math.Pow(a.beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.beta2, float64(a.step))
	for _, p := range params {
		m := a.m[p]
		if m == nil {
			m = tensor.New(p.Value.Rows, p.Value.Cols)
			a.m[p] = m
		}
		v := a.v[p]
		if v == nil {
			v = tensor.New(p.Value.Rows, p.Value.Cols)
			a.v[p] = v
		}
		for i, g := range p.Grad.Data {
			m.Data[i] = a.beta1*m.Data[i] + (1-a.beta1)*g
			v.Data[i] = a.beta2*v.Data[i] + (1-a.beta2)*g*g
			mh := m.Data[i] / bc1
			vh := v.Data[i] / bc2
			p.Value.Data[i] -= a.lr * mh / (math.Sqrt(vh) + a.eps)
		}
		p.ZeroGrad()
	}
}

func clonedParams(rng *rand.Rand) ([]*ag.Param, []*ag.Param) {
	var a, b []*ag.Param
	for i, shape := range [][2]int{{3, 4}, {1, 4}, {4, 4}} {
		v := tensor.Randn(shape[0], shape[1], 1, rng)
		a = append(a, ag.NewParam("a", v.Clone()))
		b = append(b, ag.NewParam("b", v.Clone()))
		_ = i
	}
	return a, b
}

// TestAdamMatchesReferenceImplementation pins the slice-backed fused Step
// against the map-backed clip-then-update reference: identical parameter
// values after every step, with and without clipping engaged, down to the
// last bit.
func TestAdamMatchesReferenceImplementation(t *testing.T) {
	for _, maxNorm := range []float64{0, 5, 1e-3} {
		rng := rand.New(rand.NewSource(42))
		got, want := clonedParams(rng)
		opt := NewAdam(0.01)
		opt.MaxGradNorm = maxNorm
		ref := newRefAdam(0.01, maxNorm)
		for step := 0; step < 25; step++ {
			// Same synthetic gradients on both sides; occasionally huge so
			// the clip path actually engages.
			scale := 1.0
			if step%5 == 0 {
				scale = 1e3
			}
			for i := range got {
				for j := range got[i].Grad.Data {
					g := scale * rng.NormFloat64()
					got[i].Grad.Data[j] = g
					want[i].Grad.Data[j] = g
				}
			}
			opt.Step(got)
			ref.Step(want)
			for i := range got {
				if !tensor.Equal(got[i].Value, want[i].Value, 0) {
					t.Fatalf("maxNorm=%v step %d: fused Adam diverges from reference", maxNorm, step)
				}
				if got[i].Grad.Norm() != 0 {
					t.Fatal("fused step must zero gradients")
				}
			}
		}
	}
}

// TestAdamStepAllocFree pins that a steady-state fused step allocates
// nothing once the moment slices are bound.
func TestAdamStepAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	params, _ := clonedParams(rng)
	opt := NewAdam(0.01)
	opt.MaxGradNorm = 5
	opt.Step(params) // bind moment buffers
	allocs := testing.AllocsPerRun(32, func() {
		for _, p := range params {
			for j := range p.Grad.Data {
				p.Grad.Data[j] = 0.1
			}
		}
		opt.Step(params)
	})
	if allocs > 0 {
		t.Fatalf("steady-state Adam step allocates %.1f objects, want 0", allocs)
	}
}

// TestAdamRejectsDifferentParamSet pins the bind contract: moment history
// is meaningless for another parameter set, so Step must refuse it.
func TestAdamRejectsDifferentParamSet(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := clonedParams(rng)
	opt := NewAdam(0.01)
	opt.Step(a)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for a different parameter set")
		}
	}()
	opt.Step(b)
}
