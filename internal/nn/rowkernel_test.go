package nn

import (
	"math/rand"
	"testing"

	"aero/internal/ag"
	"aero/internal/tensor"
)

// The streaming incremental path re-derives single rows with the ApplyRow/
// AttendRow kernels instead of tape forwards. These tests pin the contract
// those kernels advertise: fed the exact inputs, every row they produce is
// bit-identical to the corresponding row of the tape forward — no epsilon.

func TestLinearApplyRowMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := NewLinear("l", 7, 5, rng)
	x := tensor.Randn(9, 7, 1, rng)
	tp := ag.NewTape()
	out := l.Forward(tp, tp.Const(x))
	dst := make([]float64, 5)
	for r := 0; r < x.Rows; r++ {
		l.ApplyRow(dst, x.Row(r))
		for j, v := range dst {
			if v != out.Value.At(r, j) {
				t.Fatalf("row %d col %d: ApplyRow %v != Forward %v", r, j, v, out.Value.At(r, j))
			}
		}
	}
}

func TestLayerNormApplyRowMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ln := NewLayerNorm("ln", 8)
	// Perturb gain/bias away from identity so the test sees them applied.
	for j := range ln.Gain.Value.Data {
		ln.Gain.Value.Data[j] = 1 + 0.1*float64(j)
		ln.Bias.Value.Data[j] = 0.05 * float64(j)
	}
	x := tensor.Randn(6, 8, 2, rng)
	tp := ag.NewTape()
	out := ln.Forward(tp, tp.Const(x))
	dst := make([]float64, 8)
	for r := 0; r < x.Rows; r++ {
		ln.ApplyRow(dst, x.Row(r))
		for j, v := range dst {
			if v != out.Value.At(r, j) {
				t.Fatalf("row %d col %d: ApplyRow %v != Forward %v", r, j, v, out.Value.At(r, j))
			}
		}
	}
	// The kernel documents that dst may alias x; verify in-place use.
	row := append([]float64(nil), x.Row(2)...)
	ln.ApplyRow(row, row)
	for j, v := range row {
		if v != out.Value.At(2, j) {
			t.Fatalf("aliased col %d: %v != %v", j, v, out.Value.At(2, j))
		}
	}
}

func TestFFNApplyRowMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := NewFFN("f", 6, 10, 4, rng)
	x := tensor.Randn(5, 6, 1, rng)
	tp := ag.NewTape()
	out := f.Forward(tp, tp.Const(x))
	dst := make([]float64, 4)
	hidden := make([]float64, 10)
	for r := 0; r < x.Rows; r++ {
		f.ApplyRow(dst, hidden, x.Row(r))
		for j, v := range dst {
			if v != out.Value.At(r, j) {
				t.Fatalf("row %d col %d: ApplyRow %v != Forward %v", r, j, v, out.Value.At(r, j))
			}
		}
	}
}

// attendAllRows reconstructs every output row of an attention forward with
// the row kernels (Wq.ApplyRow → AttendRow → Wo.ApplyRow) and compares it
// bitwise against the tape forward's output.
func attendAllRows(t *testing.T, m *MultiHeadAttention, query, kv *tensor.Dense, square bool) {
	t.Helper()
	tp := ag.NewTape()
	var out, k, v *ag.Node
	if square {
		out, k, v = m.ForwardKV(tp, tp.Const(query), tp.Const(query), tp.Const(query))
	} else {
		out, k, v = m.ForwardKV(tp, tp.Const(query), tp.Const(kv), tp.Const(kv))
	}
	q := make([]float64, m.Dim)
	ctx := make([]float64, m.Dim)
	dst := make([]float64, m.Dim)
	scores := make([]float64, k.Value.Rows)
	for r := 0; r < query.Rows; r++ {
		m.Wq.ApplyRow(q, query.Row(r))
		m.AttendRow(ctx, scores, q, k.Value, v.Value, r, square)
		m.Wo.ApplyRow(dst, ctx)
		for j, got := range dst {
			if got != out.Value.At(r, j) {
				t.Fatalf("row %d col %d: AttendRow path %v != Forward %v (band %d, square %v)",
					r, j, got, out.Value.At(r, j), m.Band, square)
			}
		}
	}
}

func TestAttendRowMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x := tensor.Randn(12, 8, 1, rng)
	short := tensor.Randn(5, 8, 1, rng)
	for _, band := range []int{0, 3} {
		m := NewMultiHeadAttention("attn", 8, 2, rng)
		m.Band = band
		// Self-attention (square: the band applies when > 0).
		attendAllRows(t, m, x, nil, true)
		// Cross-attention (query and key lengths differ: band ignored).
		attendAllRows(t, m, short, x, false)
	}
}
