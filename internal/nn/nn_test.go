package nn

import (
	"math"
	"math/rand"
	"testing"

	"aero/internal/ag"
	"aero/internal/tensor"
)

func TestLinearShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("l", 4, 3, rng)
	tp := ag.NewTape()
	x := tp.Const(tensor.Randn(5, 4, 1, rng))
	y := l.Forward(tp, x)
	if y.Rows() != 5 || y.Cols() != 3 {
		t.Fatalf("shape %dx%d", y.Rows(), y.Cols())
	}
	if len(l.Params()) != 2 {
		t.Fatal("linear must expose W and B")
	}
}

func TestLinearLearnsLeastSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Ground truth mapping y = x·W* + b*
	wStar := tensor.Randn(3, 2, 1, rng)
	bStar := tensor.Randn(1, 2, 1, rng)
	x := tensor.Randn(64, 3, 1, rng)
	y := x.MatMul(wStar)
	for i := 0; i < y.Rows; i++ {
		for j := 0; j < y.Cols; j++ {
			y.Set(i, j, y.At(i, j)+bStar.At(0, j))
		}
	}
	l := NewLinear("l", 3, 2, rng)
	opt := NewAdam(0.05)
	var loss float64
	for epoch := 0; epoch < 300; epoch++ {
		tp := ag.NewTape()
		pred := l.Forward(tp, tp.Const(x))
		lossNode := tp.MSE(pred, tp.Const(y))
		loss = lossNode.Value.Data[0]
		tp.Backward(lossNode)
		opt.Step(l.Params())
	}
	if loss > 1e-3 {
		t.Fatalf("linear regression did not converge: loss %v", loss)
	}
}

func TestLayerNormNormalizesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ln := NewLayerNorm("ln", 8)
	tp := ag.NewTape()
	x := tp.Const(tensor.Randn(4, 8, 5, rng))
	y := ln.Forward(tp, x)
	for i := 0; i < y.Rows(); i++ {
		row := y.Value.Row(i)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= 8
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("row %d mean %v", i, mean)
		}
		var va float64
		for _, v := range row {
			va += (v - mean) * (v - mean)
		}
		va /= 8
		if math.Abs(va-1) > 1e-3 {
			t.Fatalf("row %d var %v", i, va)
		}
	}
}

func TestMultiHeadAttentionShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	mha := NewMultiHeadAttention("mha", 8, 4, rng)
	tp := ag.NewTape()
	q := tp.Const(tensor.Randn(6, 8, 1, rng))
	kv := tp.Const(tensor.Randn(10, 8, 1, rng))
	out := mha.Forward(tp, q, kv, kv)
	if out.Rows() != 6 || out.Cols() != 8 {
		t.Fatalf("cross-attention shape %dx%d", out.Rows(), out.Cols())
	}
	if len(mha.Params()) != 8 {
		t.Fatalf("mha params %d", len(mha.Params()))
	}
}

func TestMultiHeadAttentionHeadDivisibility(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for dm %% heads != 0")
		}
	}()
	NewMultiHeadAttention("bad", 10, 4, rand.New(rand.NewSource(1)))
}

func TestAttentionWeightsAreRowStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mha := NewMultiHeadAttention("mha", 8, 2, rng)
	tp := ag.NewTape()
	x := tp.Const(tensor.Randn(5, 8, 1, rng))
	_, attns := mha.AttentionWeights(tp, x, x, x)
	if len(attns) != 2 {
		t.Fatalf("expected 2 heads, got %d", len(attns))
	}
	for h, a := range attns {
		for i := 0; i < a.Rows(); i++ {
			var s float64
			for _, v := range a.Value.Row(i) {
				if v < 0 {
					t.Fatalf("negative attention weight head %d", h)
				}
				s += v
			}
			if math.Abs(s-1) > 1e-9 {
				t.Fatalf("head %d row %d sums to %v", h, i, s)
			}
		}
	}
}

func TestFFNShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := NewFFN("f", 8, 16, 4, rng)
	tp := ag.NewTape()
	out := f.Forward(tp, tp.Const(tensor.Randn(3, 8, 1, rng)))
	if out.Rows() != 3 || out.Cols() != 4 {
		t.Fatalf("ffn shape %dx%d", out.Rows(), out.Cols())
	}
}

func TestGRUCellStateEvolves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewGRUCell("gru", 3, 5, rng)
	tp := ag.NewTape()
	h := g.InitState(tp, 2)
	x := tp.Const(tensor.Randn(2, 3, 1, rng))
	h1 := g.Step(tp, x, h)
	if h1.Rows() != 2 || h1.Cols() != 5 {
		t.Fatalf("gru state shape %dx%d", h1.Rows(), h1.Cols())
	}
	if h1.Value.Norm() == 0 {
		t.Fatal("state did not change")
	}
	if len(g.Params()) != 9 {
		t.Fatalf("gru params %d", len(g.Params()))
	}
}

func TestGRULearnsToRememberSign(t *testing.T) {
	// Task: output the sign of the first input after a few steps.
	rng := rand.New(rand.NewSource(8))
	g := NewGRUCell("gru", 1, 8, rng)
	head := NewLinear("head", 8, 1, rng)
	params := append(g.Params(), head.Params()...)
	opt := NewAdam(0.02)
	var loss float64
	for epoch := 0; epoch < 200; epoch++ {
		tp := ag.NewTape()
		var total *ag.Node
		for b := 0; b < 8; b++ {
			sign := float64(1)
			if b%2 == 0 {
				sign = -1
			}
			h := g.InitState(tp, 1)
			for step := 0; step < 4; step++ {
				v := 0.1 * rng.NormFloat64()
				if step == 0 {
					v = sign
				}
				h = g.Step(tp, tp.Const(tensor.FromSlice(1, 1, []float64{v})), h)
			}
			pred := head.Forward(tp, h)
			target := tp.Const(tensor.FromSlice(1, 1, []float64{sign}))
			l := tp.MSE(pred, target)
			if total == nil {
				total = l
			} else {
				total = tp.Add(total, l)
			}
		}
		loss = total.Value.Data[0] / 8
		tp.Backward(total)
		opt.Step(params)
	}
	if loss > 0.1 {
		t.Fatalf("GRU failed to learn memory task: loss %v", loss)
	}
}

func TestAdamReducesQuadratic(t *testing.T) {
	p := ag.NewParam("p", tensor.FromSlice(1, 2, []float64{5, -3}))
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		tp := ag.NewTape()
		loss := tp.MeanAll(tp.Square(tp.Param(p)))
		tp.Backward(loss)
		opt.Step([]*ag.Param{p})
	}
	if math.Abs(p.Value.Data[0]) > 1e-2 || math.Abs(p.Value.Data[1]) > 1e-2 {
		t.Fatalf("Adam failed to minimize: %v", p.Value.Data)
	}
}

func TestAdamStepZeroesGrads(t *testing.T) {
	p := ag.NewParam("p", tensor.FromSlice(1, 1, []float64{1}))
	tp := ag.NewTape()
	loss := tp.MeanAll(tp.Square(tp.Param(p)))
	tp.Backward(loss)
	NewAdam(0.01).Step([]*ag.Param{p})
	if p.Grad.Data[0] != 0 {
		t.Fatal("grads must be zeroed after step")
	}
}

func TestGradClipping(t *testing.T) {
	p := ag.NewParam("p", tensor.FromSlice(1, 2, []float64{1, 1}))
	p.Grad.Data[0] = 300
	p.Grad.Data[1] = 400
	opt := NewAdam(0.01)
	opt.MaxGradNorm = 5
	before := p.Value.Clone()
	opt.Step([]*ag.Param{p})
	// Update magnitude bounded by lr regardless of giant gradient.
	for i := range p.Value.Data {
		if math.Abs(p.Value.Data[i]-before.Data[i]) > 0.02 {
			t.Fatalf("clipped update too large: %v -> %v", before.Data[i], p.Value.Data[i])
		}
	}
}

func TestGradNormAndZeroGrads(t *testing.T) {
	p := ag.NewParam("p", tensor.FromSlice(1, 2, []float64{0, 0}))
	p.Grad.Data[0] = 3
	p.Grad.Data[1] = 4
	if GradNorm([]*ag.Param{p}) != 5 {
		t.Fatal("grad norm wrong")
	}
	ZeroGrads([]*ag.Param{p})
	if GradNorm([]*ag.Param{p}) != 0 {
		t.Fatal("zero grads failed")
	}
}

func TestCollectParams(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l1 := NewLinear("a", 2, 2, rng)
	l2 := NewLinear("b", 2, 2, rng)
	if got := len(CollectParams(l1, l2)); got != 4 {
		t.Fatalf("collected %d params", got)
	}
}

func TestBandedAttentionMasksFarPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	mha := NewMultiHeadAttention("band", 8, 2, rng)
	mha.Band = 2
	tp := ag.NewTape()
	x := tp.Const(tensor.Randn(12, 8, 1, rng))
	_, attns := mha.AttentionWeights(tp, x, x, x)
	for _, a := range attns {
		for i := 0; i < a.Rows(); i++ {
			for j := 0; j < a.Cols(); j++ {
				w := a.Value.At(i, j)
				if j < i-2 || j > i+2 {
					if w > 1e-6 {
						t.Fatalf("attention leaked outside band at (%d,%d): %v", i, j, w)
					}
				}
			}
		}
	}
}

func TestBandedAttentionIgnoredForCrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	mha := NewMultiHeadAttention("band", 8, 2, rng)
	mha.Band = 1
	tp := ag.NewTape()
	q := tp.Const(tensor.Randn(4, 8, 1, rng))
	kv := tp.Const(tensor.Randn(9, 8, 1, rng))
	out := mha.Forward(tp, q, kv, kv) // must not panic, band ignored
	if out.Rows() != 4 || out.Cols() != 8 {
		t.Fatal("cross attention shape wrong")
	}
}

func TestBandedAttentionGradientsFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	mha := NewMultiHeadAttention("band", 4, 1, rng)
	mha.Band = 2
	tp := ag.NewTape()
	x := tp.Const(tensor.Randn(6, 4, 1, rng))
	out := mha.Forward(tp, x, x, x)
	loss := tp.MeanAll(tp.Square(out))
	tp.Backward(loss)
	if GradNorm(mha.Params()) == 0 {
		t.Fatal("no gradient reached banded attention weights")
	}
	ZeroGrads(mha.Params())
}
