package nn

import (
	"math"

	"aero/internal/ag"
	"aero/internal/tensor"
)

// Adam implements the Adam optimizer (Kingma & Ba, 2015) with optional
// gradient clipping. Moment buffers are index-aligned slices bound to the
// parameter list on the first Step, and the whole update — clipping,
// moment update, bias correction, parameter write and gradient zeroing —
// is fused into a single in-place pass over each parameter's data, so a
// steady-state step allocates nothing.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	// MaxGradNorm, when > 0, rescales the global gradient norm before each
	// step (gradient clipping).
	MaxGradNorm float64

	step  int
	bound []*ag.Param     // parameter list the moment slices are aligned to
	m, v  []*tensor.Dense // first/second moments, index-aligned with bound
}

// NewAdam returns an Adam optimizer with standard defaults
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// bind aligns the moment slices with params. The first call allocates; later
// calls only verify the parameter list has not changed, since the moment
// history is meaningless for a different set.
func (a *Adam) bind(params []*ag.Param) {
	if a.bound != nil {
		if len(a.bound) != len(params) {
			panic("nn: Adam.Step called with a different parameter set")
		}
		for i, p := range params {
			if a.bound[i] != p {
				panic("nn: Adam.Step called with a different parameter set")
			}
		}
		return
	}
	a.bound = append([]*ag.Param(nil), params...)
	a.m = make([]*tensor.Dense, len(params))
	a.v = make([]*tensor.Dense, len(params))
	for i, p := range params {
		a.m[i] = tensor.New(p.Value.Rows, p.Value.Cols)
		a.v[i] = tensor.New(p.Value.Rows, p.Value.Cols)
	}
}

// Step applies one Adam update to params using their accumulated gradients,
// then zeroes the gradients. The clip scale is folded into the moment
// update rather than rewriting the gradients first, which produces
// bit-identical results to clip-then-update in one fewer pass.
func (a *Adam) Step(params []*ag.Param) {
	a.bind(params)
	scale := 1.0
	if a.MaxGradNorm > 0 {
		if norm := math.Sqrt(sumSquaredGrads(params)); norm > a.MaxGradNorm && norm > 0 {
			scale = a.MaxGradNorm / norm
		}
	}
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range params {
		md, vd := a.m[i].Data, a.v[i].Data
		gd := p.Grad.Data
		pd := p.Value.Data
		for j, g := range gd {
			g *= scale
			md[j] = a.Beta1*md[j] + (1-a.Beta1)*g
			vd[j] = a.Beta2*vd[j] + (1-a.Beta2)*g*g
			mh := md[j] / bc1
			vh := vd[j] / bc2
			pd[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
			gd[j] = 0
		}
	}
}

// sumSquaredGrads walks the gradients once, in param order, and returns the
// sum of squares — the shared kernel behind clipping and GradNorm.
func sumSquaredGrads(params []*ag.Param) float64 {
	var total float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	return total
}

// clipGradNorm rescales all gradients so their global L2 norm is at most
// max. Adam folds the scale into its fused update instead; this standalone
// form is kept for callers that clip without stepping.
func clipGradNorm(params []*ag.Param, max float64) {
	norm := math.Sqrt(sumSquaredGrads(params))
	if norm <= max || norm == 0 {
		return
	}
	scale := max / norm
	for _, p := range params {
		p.Grad.ScaleInPlace(scale)
	}
}

// ZeroGrads clears the gradients of all params.
func ZeroGrads(params []*ag.Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// GradNorm returns the global L2 norm of the accumulated gradients
// (useful for tests and training diagnostics). It walks the gradients in
// param order in a single pass with no temporaries.
func GradNorm(params []*ag.Param) float64 {
	return math.Sqrt(sumSquaredGrads(params))
}
