package nn

import (
	"math"

	"aero/internal/ag"
	"aero/internal/tensor"
)

// Adam implements the Adam optimizer (Kingma & Ba, 2015) with optional
// gradient clipping. First and second moment buffers are allocated lazily
// per parameter.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	// MaxGradNorm, when > 0, rescales the global gradient norm before each
	// step (gradient clipping).
	MaxGradNorm float64

	step int
	m, v map[*ag.Param]*tensor.Dense
}

// NewAdam returns an Adam optimizer with standard defaults
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*ag.Param]*tensor.Dense),
		v: make(map[*ag.Param]*tensor.Dense),
	}
}

// Step applies one Adam update to params using their accumulated gradients,
// then zeroes the gradients.
func (a *Adam) Step(params []*ag.Param) {
	if a.MaxGradNorm > 0 {
		clipGradNorm(params, a.MaxGradNorm)
	}
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range params {
		m := a.m[p]
		if m == nil {
			m = tensor.New(p.Value.Rows, p.Value.Cols)
			a.m[p] = m
		}
		v := a.v[p]
		if v == nil {
			v = tensor.New(p.Value.Rows, p.Value.Cols)
			a.v[p] = v
		}
		for i, g := range p.Grad.Data {
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mh := m.Data[i] / bc1
			vh := v.Data[i] / bc2
			p.Value.Data[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// clipGradNorm rescales all gradients so their global L2 norm is at most max.
func clipGradNorm(params []*ag.Param, max float64) {
	var total float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm <= max || norm == 0 {
		return
	}
	scale := max / norm
	for _, p := range params {
		p.Grad.ScaleInPlace(scale)
	}
}

// ZeroGrads clears the gradients of all params.
func ZeroGrads(params []*ag.Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// GradNorm returns the global L2 norm of the accumulated gradients
// (useful for tests and training diagnostics).
func GradNorm(params []*ag.Param) float64 {
	var total float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	return math.Sqrt(total)
}
