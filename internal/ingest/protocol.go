// Package ingest is the engine's network front door: a TCP server
// speaking a compact length-prefixed binary frame protocol (plus a
// JSON-lines HTTP endpoint for interop), a client library, and the
// graceful drain/restart machinery that checkpoints every warm tenant
// through the snapshot registry and hands the listening socket to a
// re-exec'd child.
//
// The protocol surfaces the engine's lossless backpressure as
// credit-based flow control: the server grants frame credits sized to
// the tenant shard's queue headroom, so a stalled shard slows the
// client down instead of dropping frames or buffering them without
// bound. Acks are cumulative and batched; every accepted frame is
// either scored or — across a drain — checkpointed before the client is
// told to release it, so a reconnecting client resends exactly the
// unacknowledged suffix and nothing is lost or reordered.
package ingest

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Wire format. Every message is one length-prefixed frame:
//
//	length   uint32   payload length in bytes (type byte included)
//	payload  [...]    type byte followed by the type's body
//	crc      uint32   IEEE CRC-32 of the payload
//
// All integers are little-endian; float64s travel as IEEE-754 bits.
// Message bodies:
//
//	Hello     magic u32 | version u16 | variates u32 | tenantLen u16 | tenant
//	HelloAck  version u16 | credits u32
//	Data      seq u64 | time f64 | n u32 | mags [n]f64
//	Ack       upTo u64 | credits u32          (cumulative; credits are a delta grant)
//	Drain     upTo u64                        (≤ upTo is checkpointed; resend the rest)
//	Bye       lastSeq u64
//	ByeAck    upTo u64
//	Error     code u16 | msgLen u16 | msg
const (
	// WireMagic opens every Hello; a server reading anything else on a
	// fresh connection closes it immediately.
	WireMagic uint32 = 0x41455257 // "WREA" on the wire, little-endian
	// WireVersion is the protocol revision negotiated in Hello/HelloAck.
	WireVersion uint16 = 1
)

// Message types.
const (
	MsgHello    byte = 0x01 // client → server: tenant handshake
	MsgHelloAck byte = 0x02 // server → client: accept + initial credit grant
	MsgData     byte = 0x10 // client → server: one frame
	MsgAck      byte = 0x11 // server → client: cumulative ack + credit grant
	MsgDrain    byte = 0x12 // server → client: draining; reconnect and resend > upTo
	MsgBye      byte = 0x13 // client → server: end of stream after lastSeq
	MsgByeAck   byte = 0x14 // server → client: every frame ≤ upTo accepted
	MsgError    byte = 0x15 // server → client: terminal protocol error
)

// Hard wire limits: any message that exceeds them is rejected before a
// single body byte is interpreted, so a hostile or corrupt peer cannot
// make the reader allocate unboundedly.
const (
	// MaxPayload caps one message's payload (64k variates ≈ 512 KiB).
	MaxPayload = 1 << 20
	// MaxVariates caps a Data frame's width and Hello's declared width.
	MaxVariates = 1 << 16
	// MaxTenantLen caps the handshake's tenant-id length.
	MaxTenantLen = 255
)

// Decode errors. All malformed input yields a wrapped sentinel — never a
// panic (FuzzDecodeMsg holds the protocol to that).
var (
	ErrTruncated  = errors.New("ingest: truncated message")
	ErrTooLarge   = errors.New("ingest: message exceeds wire limits")
	ErrBadCRC     = errors.New("ingest: payload checksum mismatch")
	ErrBadMagic   = errors.New("ingest: bad handshake magic")
	ErrBadVersion = errors.New("ingest: unsupported protocol version")
	ErrBadMessage = errors.New("ingest: malformed message body")
)

// Msg is the decoded form of any wire message; which fields are
// meaningful depends on Type. One Msg is reused across decodes so the
// hot Data path does not allocate once Mags has reached capacity.
type Msg struct {
	Type byte

	// Hello
	Tenant   string
	Variates int

	// Data
	Seq  uint64
	Time float64
	Mags []float64

	// Ack / Drain / Bye / ByeAck
	UpTo    uint64
	Credits uint32

	// Error
	Code uint16
	Text string
}

// AppendMsg appends m's wire encoding (length prefix, payload, CRC) to
// dst and returns the extended slice.
func AppendMsg(dst []byte, m *Msg) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length, patched below
	p0 := len(dst)
	dst = append(dst, m.Type)
	switch m.Type {
	case MsgHello:
		if len(m.Tenant) > MaxTenantLen {
			return nil, fmt.Errorf("%w: tenant id %d bytes", ErrTooLarge, len(m.Tenant))
		}
		if m.Variates < 0 || m.Variates > MaxVariates {
			return nil, fmt.Errorf("%w: %d variates", ErrTooLarge, m.Variates)
		}
		dst = binary.LittleEndian.AppendUint32(dst, WireMagic)
		dst = binary.LittleEndian.AppendUint16(dst, WireVersion)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(m.Variates))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(m.Tenant)))
		dst = append(dst, m.Tenant...)
	case MsgHelloAck:
		dst = binary.LittleEndian.AppendUint16(dst, WireVersion)
		dst = binary.LittleEndian.AppendUint32(dst, m.Credits)
	case MsgData:
		if len(m.Mags) > MaxVariates {
			return nil, fmt.Errorf("%w: %d variates", ErrTooLarge, len(m.Mags))
		}
		dst = binary.LittleEndian.AppendUint64(dst, m.Seq)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.Time))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.Mags)))
		for _, x := range m.Mags {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
		}
	case MsgAck:
		dst = binary.LittleEndian.AppendUint64(dst, m.UpTo)
		dst = binary.LittleEndian.AppendUint32(dst, m.Credits)
	case MsgDrain, MsgBye, MsgByeAck:
		dst = binary.LittleEndian.AppendUint64(dst, m.UpTo)
	case MsgError:
		if len(m.Text) > math.MaxUint16 {
			return nil, fmt.Errorf("%w: error text %d bytes", ErrTooLarge, len(m.Text))
		}
		dst = binary.LittleEndian.AppendUint16(dst, m.Code)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(m.Text)))
		dst = append(dst, m.Text...)
	default:
		return nil, fmt.Errorf("%w: unknown type 0x%02x", ErrBadMessage, m.Type)
	}
	payload := dst[p0:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload)), nil
}

// DecodeMsg decodes one complete message from the front of buf into m,
// returning the number of bytes consumed. Incomplete input returns
// ErrTruncated; any other malformation returns a typed error. m.Mags is
// reused across calls.
func DecodeMsg(buf []byte, m *Msg) (int, error) {
	if len(buf) < 4 {
		return 0, ErrTruncated
	}
	n := binary.LittleEndian.Uint32(buf)
	if n < 1 || n > MaxPayload {
		return 0, fmt.Errorf("%w: payload length %d", ErrTooLarge, n)
	}
	total := 4 + int(n) + 4
	if len(buf) < total {
		return 0, ErrTruncated
	}
	payload := buf[4 : 4+n]
	want := binary.LittleEndian.Uint32(buf[4+n:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return 0, fmt.Errorf("%w (%08x != %08x)", ErrBadCRC, got, want)
	}
	if err := parsePayload(payload, m); err != nil {
		return 0, err
	}
	return total, nil
}

// ReadMsg reads exactly one message from br into m, using *scratch as
// the reusable payload buffer. The CRC is verified before any body byte
// is interpreted.
func ReadMsg(br *bufio.Reader, m *Msg, scratch *[]byte) error {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > MaxPayload {
		return fmt.Errorf("%w: payload length %d", ErrTooLarge, n)
	}
	need := int(n) + 4
	if cap(*scratch) < need {
		*scratch = make([]byte, need)
	}
	buf := (*scratch)[:need]
	if _, err := io.ReadFull(br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	payload, tail := buf[:n], buf[n:]
	want := binary.LittleEndian.Uint32(tail)
	if got := crc32.ChecksumIEEE(payload); got != want {
		return fmt.Errorf("%w (%08x != %08x)", ErrBadCRC, got, want)
	}
	return parsePayload(payload, m)
}

// parsePayload interprets one CRC-verified payload. Every length is
// bounds-checked against the actual payload size before use.
func parsePayload(p []byte, m *Msg) error {
	*m = Msg{Mags: m.Mags[:0]}
	m.Type = p[0]
	body := p[1:]
	switch m.Type {
	case MsgHello:
		if len(body) < 4+2+4+2 {
			return fmt.Errorf("%w: hello body %d bytes", ErrBadMessage, len(body))
		}
		if magic := binary.LittleEndian.Uint32(body); magic != WireMagic {
			return fmt.Errorf("%w: %08x", ErrBadMagic, magic)
		}
		if v := binary.LittleEndian.Uint16(body[4:]); v != WireVersion {
			return fmt.Errorf("%w: %d", ErrBadVersion, v)
		}
		nv := binary.LittleEndian.Uint32(body[6:])
		if nv > MaxVariates {
			return fmt.Errorf("%w: %d variates", ErrTooLarge, nv)
		}
		tl := int(binary.LittleEndian.Uint16(body[10:]))
		if tl > MaxTenantLen || len(body) != 12+tl {
			return fmt.Errorf("%w: hello tenant length %d in %d-byte body", ErrBadMessage, tl, len(body))
		}
		m.Variates = int(nv)
		m.Tenant = string(body[12 : 12+tl])
	case MsgHelloAck:
		if len(body) != 6 {
			return fmt.Errorf("%w: helloack body %d bytes", ErrBadMessage, len(body))
		}
		if v := binary.LittleEndian.Uint16(body); v != WireVersion {
			return fmt.Errorf("%w: %d", ErrBadVersion, v)
		}
		m.Credits = binary.LittleEndian.Uint32(body[2:])
	case MsgData:
		if len(body) < 8+8+4 {
			return fmt.Errorf("%w: data body %d bytes", ErrBadMessage, len(body))
		}
		m.Seq = binary.LittleEndian.Uint64(body)
		m.Time = math.Float64frombits(binary.LittleEndian.Uint64(body[8:]))
		nv := binary.LittleEndian.Uint32(body[16:])
		if nv > MaxVariates {
			return fmt.Errorf("%w: %d variates", ErrTooLarge, nv)
		}
		if len(body) != 20+8*int(nv) {
			return fmt.Errorf("%w: data body %d bytes for %d variates", ErrBadMessage, len(body), nv)
		}
		if cap(m.Mags) < int(nv) {
			m.Mags = make([]float64, 0, nv)
		}
		for i := 0; i < int(nv); i++ {
			m.Mags = append(m.Mags, math.Float64frombits(binary.LittleEndian.Uint64(body[20+8*i:])))
		}
	case MsgAck:
		if len(body) != 12 {
			return fmt.Errorf("%w: ack body %d bytes", ErrBadMessage, len(body))
		}
		m.UpTo = binary.LittleEndian.Uint64(body)
		m.Credits = binary.LittleEndian.Uint32(body[8:])
	case MsgDrain, MsgBye, MsgByeAck:
		if len(body) != 8 {
			return fmt.Errorf("%w: body %d bytes for type 0x%02x", ErrBadMessage, len(body), m.Type)
		}
		m.UpTo = binary.LittleEndian.Uint64(body)
	case MsgError:
		if len(body) < 4 {
			return fmt.Errorf("%w: error body %d bytes", ErrBadMessage, len(body))
		}
		m.Code = binary.LittleEndian.Uint16(body)
		tl := int(binary.LittleEndian.Uint16(body[2:]))
		if len(body) != 4+tl {
			return fmt.Errorf("%w: error text length %d in %d-byte body", ErrBadMessage, tl, len(body))
		}
		m.Text = string(body[4 : 4+tl])
	default:
		return fmt.Errorf("%w: unknown type 0x%02x", ErrBadMessage, m.Type)
	}
	return nil
}

// DataWireSize returns the on-wire size in bytes of one Data message
// carrying n variates — the per-frame cost reported by the ingest
// benchmarks.
func DataWireSize(n int) int { return 4 + 1 + 8 + 8 + 4 + 8*n + 4 }
