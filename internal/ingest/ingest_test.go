package ingest_test

import (
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"aero/internal/backend"
	"aero/internal/core"
	"aero/internal/dataset"
	"aero/internal/engine"
	"aero/internal/ingest"
)

// fixture shares one cheap fluxev artifact and dataset across the
// network tests: training is deterministic, so every backend opened
// from the artifact is an exact clone — the precondition for the
// bit-identity contracts below.
var (
	fixOnce sync.Once
	fixD    *dataset.Dataset
	fixArt  []byte
	fixErr  error
)

func fixture(t *testing.T) (*dataset.Dataset, []byte) {
	t.Helper()
	fixOnce.Do(func() {
		fixD = dataset.SyntheticConfig{
			Name: "ingest", N: 5, TrainLen: 300, TestLen: 240,
			NoiseVariates: 3, AnomalySegments: 1, NoisePct: 3,
			VariableFrac: 0.5, Seed: 17,
		}.Generate()
		fixArt, fixErr = backend.Train("fluxev", fixD.Train, backend.SmallOptions())
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixD, fixArt
}

func openFixtureBackend(t *testing.T) core.StreamBackend {
	t.Helper()
	_, art := fixture(t)
	b, err := backend.Open("fluxev", art)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func collectAlarms(e *engine.Engine) (map[string][]core.Alarm, *sync.WaitGroup) {
	got := map[string][]core.Alarm{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for a := range e.Alarms() {
			got[a.Sub] = append(got[a.Sub], a.Alarm)
		}
	}()
	return got, &wg
}

// newTestEngine subscribes one fixture-backend tenant per id.
func newTestEngine(t *testing.T, ids ...string) (*engine.Engine, map[string]*engine.Subscription) {
	t.Helper()
	e := engine.New(engine.Config{Shards: 2, Workers: 2, QueueDepth: 16, BatchSize: 4})
	subs := make(map[string]*engine.Subscription, len(ids))
	for _, id := range ids {
		sub, err := e.SubscribeBackend(id, openFixtureBackend(t))
		if err != nil {
			t.Fatal(err)
		}
		subs[id] = sub
	}
	return e, subs
}

func newTestServer(t *testing.T, e *engine.Engine, subs map[string]*engine.Subscription, cfg ingest.ServerConfig) *ingest.Server {
	t.Helper()
	cfg.Engine = e
	cfg.Lookup = func(tenant string) (*engine.Subscription, error) {
		return subs[tenant], nil
	}
	if cfg.Subscriptions == nil {
		cfg.Subscriptions = func() []*engine.Subscription {
			out := make([]*engine.Subscription, 0, len(subs))
			for _, s := range subs {
				out = append(out, s)
			}
			return out
		}
	}
	srv, err := ingest.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// replayDirect feeds the fixture's test split into a sequential twin
// backend and returns the reference alarm sequence.
func replayDirect(t *testing.T, nFrames int) []core.Alarm {
	t.Helper()
	d, _ := fixture(t)
	ref := openFixtureBackend(t)
	var want []core.Alarm
	frame := core.Frame{Magnitudes: make([]float64, d.Test.N())}
	for ti := 0; ti < nFrames; ti++ {
		frame.Time = d.Test.Time[ti]
		for v := 0; v < d.Test.N(); v++ {
			frame.Magnitudes[v] = d.Test.Data[v][ti]
		}
		alarms, err := ref.Push(frame)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, alarms...)
	}
	if len(want) == 0 {
		t.Fatal("fixture produced no alarms; identity tests are vacuous")
	}
	return want
}

func compareAlarms(t *testing.T, got, want []core.Alarm, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d alarms, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: alarm %d: %+v != %+v", label, i, got[i], want[i])
		}
	}
}

// TestSocketBitIdentity is the golden contract of the network front
// door: frames streamed over a real TCP socket — through the handshake,
// CRC framing, credit flow control and batched acks — must produce an
// alarm sequence bit-identical to pushing the same frames into a twin
// backend directly.
func TestSocketBitIdentity(t *testing.T) {
	d, _ := fixture(t)
	nFrames := d.Test.Len()
	want := replayDirect(t, nFrames)

	e, subs := newTestEngine(t, "field-000")
	got, wg := collectAlarms(e)
	srv := newTestServer(t, e, subs, ingest.ServerConfig{CreditWindow: 8, AckEvery: 3})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	c, err := ingest.Dial(ingest.ClientConfig{
		Addr: l.Addr().String(), Tenant: "field-000", Variates: d.Test.N(), Window: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := ingest.FrameSource{Time: d.Test.Time, Data: d.Test.Data}
	if n, ferr := src.Feed(c.Send); ferr != nil || n != nFrames {
		t.Fatalf("feed: %d frames, err %v", n, ferr)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	st := c.Stats()
	if st.Sent != uint64(nFrames) || st.Acked != uint64(nFrames) || st.Resent != 0 {
		t.Fatalf("client stats %+v, want %d sent and acked, 0 resent", st, nFrames)
	}

	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Frames; got != uint64(nFrames) {
		t.Fatalf("server ingested %d frames, want %d", got, nFrames)
	}
	e.Close()
	wg.Wait()
	l.Close()
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
	compareAlarms(t, got["field-000"], want, "socket path")
}

// TestDrainRestartBitIdentity is the zero-downtime restart contract: a
// drain mid-stream (flush, checkpoint through the snapshot blobs, drain
// notice, listener handoff to a successor server) must be invisible in
// the alarm sequence — the client reconnects, resends exactly its
// unacknowledged suffix, and the union of both servers' alarms is
// bit-identical to an uninterrupted replay, with zero dropped or
// reordered frames.
func TestDrainRestartBitIdentity(t *testing.T) {
	d, _ := fixture(t)
	nFrames := d.Test.Len()
	want := replayDirect(t, nFrames)

	// Shared listener: the in-process stand-in for the inherited fd.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// checkpoint blobs play the registry's role across the "restart".
	blobs := map[string][]byte{}
	var blobMu sync.Mutex

	e1, subs1 := newTestEngine(t, "field-000")
	got1, wg1 := collectAlarms(e1)
	srv1 := newTestServer(t, e1, subs1, ingest.ServerConfig{
		CreditWindow: 8, AckEvery: 3,
		Checkpoint: func() error {
			blobMu.Lock()
			defer blobMu.Unlock()
			for id, sub := range subs1 {
				blob, serr := sub.SnapshotState()
				if serr != nil {
					return serr
				}
				blobs[id] = blob
			}
			return nil
		},
	})
	serve1 := make(chan error, 1)
	go func() { serve1 <- srv1.Serve(l) }()

	c, err := ingest.Dial(ingest.ClientConfig{
		Addr: l.Addr().String(), Tenant: "field-000", Variates: d.Test.N(),
		Window: 8, RedialDelay: 5 * time.Millisecond, RedialAttempts: 200,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	send := func(ti int) {
		t.Helper()
		frame := core.Frame{Magnitudes: make([]float64, d.Test.N())}
		frame.Time = d.Test.Time[ti]
		for v := 0; v < d.Test.N(); v++ {
			frame.Magnitudes[v] = d.Test.Data[v][ti]
		}
		if serr := c.Send(frame); serr != nil {
			t.Fatalf("send frame %d: %v", ti, serr)
		}
	}

	// First half, then drain with the tail possibly still in flight
	// (sent but unread server-side): those frames are cut, set aside and
	// resent to the successor — the exactly-once boundary under test.
	half := nFrames / 2
	for ti := 0; ti < half; ti++ {
		send(ti)
	}
	if err := srv1.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-serve1; err != nil {
		t.Fatalf("serve1: %v", err)
	}
	e1.Close()
	wg1.Wait()

	// Successor: fresh engine, warm states restored from the checkpoint
	// blobs, same listener — the client's redial loop finds it.
	e2, subs2 := newTestEngine(t, "field-000")
	blobMu.Lock()
	for id, blob := range blobs {
		if rerr := subs2[id].RestoreState(blob); rerr != nil {
			t.Fatalf("restore %s: %v", id, rerr)
		}
	}
	blobMu.Unlock()
	got2, wg2 := collectAlarms(e2)
	srv2 := newTestServer(t, e2, subs2, ingest.ServerConfig{CreditWindow: 8, AckEvery: 3})
	serve2 := make(chan error, 1)
	go func() { serve2 <- srv2.Serve(l) }()

	// Second half: the first Send parks until the client's redial loop
	// reaches the successor and retransmits the unacknowledged suffix.
	for ti := half; ti < nFrames; ti++ {
		send(ti)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	st := c.Stats()
	if st.Drains < 1 || st.Reconnects < 1 {
		t.Fatalf("client stats %+v, want at least one drain notice and reconnect", st)
	}
	if st.Sent != uint64(nFrames) || st.Acked != uint64(nFrames) {
		t.Fatalf("client stats %+v, want %d sent and acked", st, nFrames)
	}

	if err := srv2.Drain(); err != nil {
		t.Fatal(err)
	}
	e2.Close()
	wg2.Wait()
	if err := <-serve2; err != nil {
		t.Fatalf("serve2: %v", err)
	}

	// Exactly-once across the boundary: the two servers' frame counts
	// partition the feed, and the concatenated alarms match the
	// uninterrupted reference bit for bit.
	f1, f2 := srv1.Stats().Frames, srv2.Stats().Frames
	if f1+f2 != uint64(nFrames) {
		t.Fatalf("servers scored %d + %d frames, want exactly %d", f1, f2, nFrames)
	}
	if f1 == 0 || f2 == 0 {
		t.Fatalf("drain split %d/%d: boundary not exercised", f1, f2)
	}
	all := append(append([]core.Alarm(nil), got1["field-000"]...), got2["field-000"]...)
	compareAlarms(t, all, want, "drain/restart path")
}

// gateBackend is a minimal StreamBackend whose pushes park until its
// gate opens — the controllable stall behind the backpressure test. A
// nil gate never blocks (benchmark mode).
type gateBackend struct {
	n      int
	gate   chan struct{}
	mu     sync.Mutex
	times  []float64
	frames int
}

func (g *gateBackend) Kind() string       { return "gate" }
func (g *gateBackend) Variates() int      { return g.n }
func (g *gateBackend) Ready() bool        { return true }
func (g *gateBackend) Threshold() float64 { return math.Inf(1) }
func (g *gateBackend) LastTime() (float64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.times) == 0 {
		return 0, false
	}
	return g.times[len(g.times)-1], true
}
func (g *gateBackend) PushScores(f core.Frame) ([]float64, error) {
	if g.gate != nil {
		<-g.gate
	}
	g.mu.Lock()
	g.times = append(g.times, f.Time)
	g.frames++
	g.mu.Unlock()
	return nil, nil
}
func (g *gateBackend) Push(f core.Frame) ([]core.Alarm, error) {
	_, err := g.PushScores(f)
	return nil, err
}
func (g *gateBackend) SwapArtifact([]byte) error      { return nil }
func (g *gateBackend) SnapshotState() ([]byte, error) { return []byte{1}, nil }
func (g *gateBackend) RestoreState([]byte) error      { return nil }

// TestBackpressureCreditExhaustion pins the flow-control contract: a
// stalled shard exhausts the connection's credits, the client's Send
// observably parks (BlockedWaits), the server's memory stays bounded
// (pending ≤ client window, shard queue at its configured depth), and
// once the stall clears every frame is scored exactly once, in order.
func TestBackpressureCreditExhaustion(t *testing.T) {
	const nFrames = 60
	gate := make(chan struct{})
	gb := &gateBackend{n: 2, gate: gate}
	e := engine.New(engine.Config{Shards: 1, Workers: 1, QueueDepth: 2, BatchSize: 1})
	sub, err := e.SubscribeBackend("gate", gb)
	if err != nil {
		t.Fatal(err)
	}
	_, wg := collectAlarms(e)
	subs := map[string]*engine.Subscription{"gate": sub}
	srv := newTestServer(t, e, subs, ingest.ServerConfig{CreditWindow: 4, AckEvery: 2})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	c, err := ingest.Dial(ingest.ClientConfig{
		Addr: l.Addr().String(), Tenant: "gate", Variates: 2, Window: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	feedDone := make(chan error, 1)
	go func() {
		frame := core.Frame{Magnitudes: make([]float64, 2)}
		for i := 0; i < nFrames; i++ {
			frame.Time = float64(i)
			if serr := c.Send(frame); serr != nil {
				feedDone <- serr
				return
			}
		}
		feedDone <- nil
	}()

	// With the gate shut the pipeline wedges: worker parked in Push,
	// shard queue full, the conn goroutine parked in Ingest, credits
	// exhausted, and finally the client parked in Send. Wait for that
	// fixed point to be observable end to end.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := c.Stats()
		qd := e.Totals().QueueDepth
		if st.BlockedWaits >= 1 && qd >= 2 && st.Sent < nFrames {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stall never propagated to the client: stats %+v, queue depth %d", st, qd)
		}
		time.Sleep(time.Millisecond)
	}
	// Bounded memory: the client holds at most its window of frames and
	// everything else is still application-side, not buffered in the
	// server.
	if p := c.Pending(); p > 6 {
		t.Fatalf("client pending %d frames, want ≤ window 6", p)
	}

	// Open the gate: the stall clears and every frame must land, in
	// order, exactly once.
	close(gate)
	if ferr := <-feedDone; ferr != nil {
		t.Fatalf("send: %v", ferr)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	e.Flush()
	gb.mu.Lock()
	frames, times := gb.frames, append([]float64(nil), gb.times...)
	gb.mu.Unlock()
	if frames != nFrames {
		t.Fatalf("backend scored %d frames, want %d (lossless backpressure)", frames, nFrames)
	}
	for i := range times {
		if times[i] != float64(i) {
			t.Fatalf("frame %d scored at time %v: reordered", i, times[i])
		}
	}
	if st := c.Stats(); st.BlockedWaits == 0 {
		t.Fatalf("client never blocked: %+v", st)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	e.Close()
	wg.Wait()
	l.Close()
	<-serveDone
}

// TestServerRefusesUnknownTenantAndBadSeq covers the protocol error
// paths end to end: an unknown tenant is refused at handshake, and the
// server's stats count the violation.
func TestServerRefusesUnknownTenant(t *testing.T) {
	d, _ := fixture(t)
	e, subs := newTestEngine(t, "field-000")
	_, wg := collectAlarms(e)
	srv := newTestServer(t, e, subs, ingest.ServerConfig{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	if _, derr := ingest.Dial(ingest.ClientConfig{
		Addr: l.Addr().String(), Tenant: "nobody", Variates: d.Test.N(),
	}); derr == nil {
		t.Fatal("handshake for unknown tenant succeeded")
	}
	if st := srv.Stats(); st.ProtoErrors == 0 {
		t.Fatalf("protocol violation not counted: %+v", st)
	}
	srv.Close()
	e.Close()
	wg.Wait()
	l.Close()
	<-serveDone
}
