package ingest

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"aero/internal/core"
	"aero/internal/engine"
	"aero/internal/metrics"
)

// Protocol error codes carried by MsgError.
const (
	CodeUnknownTenant  uint16 = 1
	CodeBadHandshake   uint16 = 2
	CodeWidthMismatch  uint16 = 3
	CodeOutOfOrder     uint16 = 4
	CodeCreditExceeded uint16 = 5
	CodeDraining       uint16 = 6
	CodeIngest         uint16 = 7
)

// ErrDraining is returned to work arriving while the server drains.
var ErrDraining = errors.New("ingest: server draining")

// ServerConfig wires a Server to its engine and drain hooks.
type ServerConfig struct {
	// Engine scores every accepted frame; its Flush is the drain barrier.
	Engine *engine.Engine
	// Lookup resolves a handshake tenant id to its subscription. Required.
	Lookup func(tenant string) (*engine.Subscription, error)
	// Subscriptions enumerates the served tenants for the /stats
	// endpoint; optional.
	Subscriptions func() []*engine.Subscription
	// CreditWindow caps one connection's outstanding (granted but
	// unacknowledged) frames; it also bounds the client's resend buffer.
	// Defaults to 64.
	CreditWindow int
	// AckEvery batches cumulative acks: one is sent at the latest every
	// AckEvery accepted frames (credit top-ups can send them sooner).
	// Defaults to CreditWindow/4.
	AckEvery int
	// Checkpoint runs during Drain after every in-flight frame has been
	// scored and before clients are told which prefix is safe to drop —
	// the hook that persists warm detector + triage state. Optional.
	Checkpoint func() error
	// ExtraStats contributes additional sections (e.g. triage counters)
	// to the /stats payload. Optional.
	ExtraStats func() map[string]any
	// Metrics, when non-nil, registers the front end's counters and
	// conn-loop stage histograms (read wait, engine wait, frame
	// round-trip) and enables GET /metrics (Prometheus text) and
	// GET /trace/{tenant} (flight-recorder JSON) on Handler(). Optional;
	// nil disables all of it at the cost of one nil-check per frame.
	Metrics *metrics.Registry
	// EnablePprof mounts net/http/pprof's profiling endpoints under
	// /debug/pprof/ on the HTTP mux, so a serving process can be profiled
	// in place (CPU, heap, goroutines) without a restart. Off by default:
	// the endpoints expose internals and belong behind the operator's
	// network boundary, not on a public ingest port.
	EnablePprof bool
	// Logf receives serve-loop diagnostics. Optional.
	Logf func(format string, args ...any)
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.CreditWindow <= 0 {
		c.CreditWindow = 64
	}
	if c.AckEvery <= 0 {
		c.AckEvery = c.CreditWindow / 4
	}
	if c.AckEvery < 1 {
		c.AckEvery = 1
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// ServerStats is a point-in-time snapshot of the ingest front end.
type ServerStats struct {
	// Conns is the number of live protocol connections.
	Conns int `json:"conns"`
	// Accepted counts connections accepted over the server's lifetime.
	Accepted uint64 `json:"accepted"`
	// Frames counts data frames ingested into the engine.
	Frames uint64 `json:"frames"`
	// HTTPFrames counts frames accepted through the JSON-lines endpoint.
	HTTPFrames uint64 `json:"http_frames"`
	// Acks counts cumulative-ack messages sent.
	Acks uint64 `json:"acks"`
	// Discarded counts in-flight frames set aside during a drain; the
	// drain notice makes their clients resend them after reconnecting.
	Discarded uint64 `json:"discarded"`
	// ProtoErrors counts connections terminated for protocol violations.
	ProtoErrors uint64 `json:"proto_errors"`
	// Draining reports whether a drain is in progress or complete.
	Draining bool `json:"draining"`
}

// Server terminates the binary frame protocol in front of an engine.
// Run it with Serve, stop it losslessly with Drain (checkpoint + client
// handoff) or abruptly with Close.
type Server struct {
	cfg ServerConfig

	mu       sync.Mutex
	conns    map[*serverConn]struct{}
	listener net.Listener
	serving  bool

	draining atomic.Bool
	closed   atomic.Bool
	connWG   sync.WaitGroup

	accepted    atomic.Uint64
	frames      atomic.Uint64
	httpFrames  atomic.Uint64
	acks        atomic.Uint64
	discarded   atomic.Uint64
	protoErrors atomic.Uint64

	obs *serverObs
}

// serverObs holds the ingest hot-path instruments. A nil *serverObs is
// inert; when non-nil, every field is non-nil too, so the conn loop pays
// one nil-check per frame when metrics are off.
type serverObs struct {
	// readWait: time parked in ReadMsg between data frames — how starved
	// the server is for input (large = client or network is the bottleneck).
	readWait *metrics.Histogram
	// engineWait: time parked in the blocking Engine.Ingest — protocol
	// backpressure (large = a shard queue is full and credits are choked).
	engineWait *metrics.Histogram
	// frame: decode-complete → ingested + ack decided, the server-side
	// round-trip for one data frame.
	frame *metrics.Histogram
}

// newServerObs registers the ingest series. Scrape-time counters read the
// atomics the hot path already maintains, so exposition adds no per-frame
// cost.
func (s *Server) newServerObs(reg *metrics.Registry) *serverObs {
	uf := func(c *atomic.Uint64) func() float64 {
		return func() float64 { return float64(c.Load()) }
	}
	reg.CounterFunc("aero_ingest_accepted_total", "Protocol connections accepted.", uf(&s.accepted))
	reg.CounterFunc("aero_ingest_frames_total", "Data frames ingested over the binary protocol.", uf(&s.frames))
	reg.CounterFunc("aero_ingest_http_frames_total", "Frames accepted through the JSON-lines endpoint.", uf(&s.httpFrames))
	reg.CounterFunc("aero_ingest_acks_total", "Cumulative-ack messages sent.", uf(&s.acks))
	reg.CounterFunc("aero_ingest_discarded_total", "In-flight frames set aside during a drain.", uf(&s.discarded))
	reg.CounterFunc("aero_ingest_proto_errors_total", "Connections terminated for protocol violations.", uf(&s.protoErrors))
	reg.GaugeFunc("aero_ingest_conns", "Live protocol connections.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.conns))
	})
	return &serverObs{
		readWait:   reg.Histogram("aero_ingest_read_wait_seconds", "Time parked waiting for the next frame on a connection."),
		engineWait: reg.Histogram("aero_ingest_engine_wait_seconds", "Time parked in the blocking engine ingest (backpressure)."),
		frame:      reg.Histogram("aero_ingest_frame_seconds", "Server-side round-trip for one data frame: decode to ack."),
	}
}

// NewServer validates cfg and returns an idle server; call Serve with a
// listener to start accepting.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("ingest: ServerConfig.Engine is required")
	}
	if cfg.Lookup == nil {
		return nil, errors.New("ingest: ServerConfig.Lookup is required")
	}
	s := &Server{cfg: cfg.withDefaults(), conns: make(map[*serverConn]struct{})}
	if cfg.Metrics != nil {
		s.obs = s.newServerObs(cfg.Metrics)
	}
	return s, nil
}

// Serve accepts protocol connections on l until Drain or Close. It
// returns nil after a drain stops the accept loop; the listener itself
// is left open so it can be handed to a successor process (close it —
// or pass it to Relaunch — when no successor will take over).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.serving = true
	s.mu.Unlock()
	// A predecessor's Drain wakes its accept loop by moving the listener
	// deadline into the past; clear it so a successor adopting the same
	// listener doesn't spin on instant timeouts.
	if dl, ok := l.(interface{ SetDeadline(time.Time) error }); ok {
		dl.SetDeadline(time.Time{})
	}
	defer func() {
		s.mu.Lock()
		s.serving = false
		s.mu.Unlock()
	}()
	for {
		c, err := l.Accept()
		if err != nil {
			if s.draining.Load() || s.closed.Load() {
				return nil
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		// Registration re-checks the drain flag under s.mu — the same lock
		// Drain holds while collecting the connection set — so a conn
		// either lands in the set (and is cut and drained) or is refused;
		// none can slip past the drain barrier.
		sc := &serverConn{s: s, c: c, br: bufio.NewReaderSize(c, 64<<10), bw: bufio.NewWriterSize(c, 32<<10)}
		s.mu.Lock()
		if s.draining.Load() || s.closed.Load() {
			s.mu.Unlock()
			// Late arrival during shutdown: refuse politely so the peer
			// redials the successor instead of waiting on a dead server.
			go refuse(c, CodeDraining, "server draining")
			continue
		}
		s.conns[sc] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		s.accepted.Add(1)
		go sc.run()
	}
}

// refuse greets a connection arriving mid-drain with a terminal error.
func refuse(c net.Conn, code uint16, text string) {
	defer c.Close()
	buf, err := AppendMsg(nil, &Msg{Type: MsgError, Code: code, Text: text})
	if err == nil {
		c.SetWriteDeadline(time.Now().Add(time.Second))
		c.Write(buf)
	}
}

// Stats snapshots the server's counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	conns := len(s.conns)
	s.mu.Unlock()
	return ServerStats{
		Conns:       conns,
		Accepted:    s.accepted.Load(),
		Frames:      s.frames.Load(),
		HTTPFrames:  s.httpFrames.Load(),
		Acks:        s.acks.Load(),
		Discarded:   s.discarded.Load(),
		ProtoErrors: s.protoErrors.Load(),
		Draining:    s.draining.Load(),
	}
}

// Draining reports whether the server has begun (or finished) a drain.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain stops the server losslessly: stop accepting, quiesce every
// connection (frames already read keep flowing into the engine; frames
// read after the cut are set aside for the client to resend), flush the
// engine so every accepted frame is scored, run the Checkpoint hook, and
// only then tell each client the exact sequence number up to which state
// is durable — everything later is the client's to resend after it
// reconnects to the successor. Drain is idempotent; concurrent calls
// wait for the first to finish.
func (s *Server) Drain() error {
	if !s.draining.CompareAndSwap(false, true) {
		s.connWG.Wait()
		return nil
	}
	// Wake the accept loop without closing the listening socket: the
	// descriptor must survive to be inherited by the successor process.
	s.mu.Lock()
	l := s.listener
	s.mu.Unlock()
	if dl, ok := l.(interface{ SetDeadline(time.Time) error }); ok && l != nil {
		dl.SetDeadline(time.Now())
	}

	// Cut every connection over to discard mode and collect the cutoffs.
	// The set is collected under s.mu after the drain flag is up, so a
	// racing accept either registered before this (and is cut below) or
	// observes the flag and refuses the connection.
	s.mu.Lock()
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	for _, sc := range conns {
		sc.cut()
	}

	// Barrier: every frame accepted before the cut is scored...
	s.cfg.Engine.Flush()
	// ...and checkpointed, before any client is told to release it.
	if s.cfg.Checkpoint != nil {
		if err := s.cfg.Checkpoint(); err != nil {
			s.cfg.Logf("ingest: drain checkpoint: %v", err)
			// The cut connections still need their drain notice; a failed
			// checkpoint must not strand them. Acks already sent remain
			// valid (those frames were scored), so the safe cutoff to
			// advertise is the acked watermark, not the ingest watermark.
			for _, sc := range conns {
				sc.finishDrain(sc.ackedCut())
			}
			s.connWG.Wait()
			return fmt.Errorf("ingest: drain checkpoint: %w", err)
		}
	}
	for _, sc := range conns {
		sc.finishDrain(sc.cutoff)
	}
	s.connWG.Wait()
	return nil
}

// Close shuts the server down abruptly: the listener wakes, every
// connection is closed, nothing is drained or checkpointed. Prefer
// Drain for lossless shutdown.
func (s *Server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.mu.Lock()
	l := s.listener
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	if dl, ok := l.(interface{ SetDeadline(time.Time) error }); ok && l != nil {
		dl.SetDeadline(time.Now())
	}
	for _, sc := range conns {
		sc.c.Close()
	}
	s.connWG.Wait()
}

// serverConn is one protocol connection's state machine. The reader
// goroutine (run) owns all fields except where noted; Drain coordinates
// with it through pmu, which the reader holds while processing one
// message — locking pmu therefore means "the reader is between
// messages".
type serverConn struct {
	s  *Server
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer

	wmu sync.Mutex // serializes writes (reader acks vs drain notice)

	sub   *engine.Subscription
	subID string
	width int

	pmu      sync.Mutex
	expected uint64 // next in-order sequence number (0 until the first frame)
	ingested uint64 // highest sequence number accepted into the engine
	acked    uint64 // highest sequence number acknowledged to the client
	granted  int    // credits outstanding (granted − consumed)

	discard atomic.Bool // drain cut: stop ingesting, set frames aside
	cutoff  uint64      // ingest watermark at the cut (stable once discard is set)
}

func (sc *serverConn) run() {
	defer sc.s.connWG.Done()
	defer func() {
		sc.s.mu.Lock()
		delete(sc.s.conns, sc)
		sc.s.mu.Unlock()
		sc.c.Close()
	}()

	var m Msg
	var scratch []byte

	// Handshake first: exactly one Hello opens a connection.
	if err := ReadMsg(sc.br, &m, &scratch); err != nil {
		sc.s.protoErrors.Add(1)
		return
	}
	if m.Type != MsgHello {
		sc.fail(CodeBadHandshake, "expected Hello")
		return
	}
	sub, err := sc.s.cfg.Lookup(m.Tenant)
	if err != nil || sub == nil {
		sc.fail(CodeUnknownTenant, fmt.Sprintf("unknown tenant %q", m.Tenant))
		return
	}
	sc.sub, sc.subID = sub, m.Tenant
	sc.width = m.Variates
	grant := sc.grantSize(0)
	sc.granted = grant
	if err := sc.send(&Msg{Type: MsgHelloAck, Credits: uint32(grant)}); err != nil {
		return
	}

	obs := sc.s.obs
	for {
		var tRead int64
		if obs != nil {
			tRead = metrics.Now()
		}
		if err := ReadMsg(sc.br, &m, &scratch); err != nil {
			if !sc.discard.Load() && !sc.s.closed.Load() {
				sc.s.protoErrors.Add(1)
			}
			return
		}
		switch m.Type {
		case MsgData:
			var tFrame int64
			if obs != nil {
				tFrame = metrics.Now()
				obs.readWait.Record(tFrame - tRead)
			}
			// A frame with nothing buffered behind it is the end of a
			// burst: ack promptly so a quiescing client's Flush always
			// terminates. Mid-burst, acks batch on AckEvery.
			if !sc.handleData(&m, sc.br.Buffered() == 0) {
				return
			}
			if obs != nil {
				obs.frame.Record(metrics.Now() - tFrame)
			}
		case MsgBye:
			// Every frame ≤ lastSeq has been read in order (or the stream
			// would have failed); confirm the accepted watermark and part.
			sc.pmu.Lock()
			upTo := sc.ingested
			sc.pmu.Unlock()
			sc.send(&Msg{Type: MsgByeAck, UpTo: upTo})
			return
		default:
			sc.fail(CodeBadHandshake, fmt.Sprintf("unexpected message 0x%02x", m.Type))
			return
		}
	}
}

// handleData ingests one frame (or sets it aside during a drain) and
// keeps the ack/credit flow moving. Returns false when the connection
// must close.
//
// pmu is held for the entire frame — including the blocking Ingest — so
// a drain cut can never land between a frame entering the engine and its
// sequence number being recorded: cut() waits for the in-flight frame,
// and the cutoff it records is exactly the engine's high-water mark.
func (sc *serverConn) handleData(m *Msg, idle bool) bool {
	sc.pmu.Lock()
	if sc.discard.Load() {
		// Drained mid-flight: the frame is NOT ingested; the drain notice
		// (sent once the checkpoint is durable) tells the client to
		// resend everything past the cutoff, preserving order.
		sc.s.discarded.Add(1)
		sc.pmu.Unlock()
		return true
	}
	if sc.expected != 0 && m.Seq != sc.expected {
		sc.pmu.Unlock()
		sc.fail(CodeOutOfOrder, fmt.Sprintf("seq %d, expected %d", m.Seq, sc.expected))
		return false
	}
	if sc.granted <= 0 {
		sc.pmu.Unlock()
		sc.fail(CodeCreditExceeded, "data frame beyond granted credits")
		return false
	}
	if len(m.Mags) != sc.width {
		sc.pmu.Unlock()
		sc.fail(CodeWidthMismatch, fmt.Sprintf("frame has %d variates, handshake declared %d", len(m.Mags), sc.width))
		return false
	}
	sc.granted--

	// The blocking Ingest IS the flow control: while the tenant's shard
	// queue is full this parks, no ack or credit flows, and the client
	// throttles to the engine's pace. Memory stays bounded at one frame
	// per connection beyond the shard queue. Ingest copies the
	// magnitudes, so the decoder's reusable slice is handed over as-is.
	obs := sc.s.obs
	var tIn int64
	if obs != nil {
		tIn = metrics.Now()
	}
	if err := sc.s.cfg.Engine.Ingest(sc.subID, core.Frame{Time: m.Time, Magnitudes: m.Mags}); err != nil {
		sc.pmu.Unlock()
		sc.fail(CodeIngest, err.Error())
		return false
	}
	if obs != nil {
		obs.engineWait.Record(metrics.Now() - tIn)
	}
	sc.s.frames.Add(1)

	sc.expected = m.Seq + 1
	sc.ingested = m.Seq
	pending := sc.ingested - sc.acked
	target := sc.grantSize(sc.granted)
	topUp := target - sc.granted
	needAck := int(pending) >= sc.s.cfg.AckEvery || sc.granted == 0 || topUp >= sc.s.cfg.AckEvery ||
		(idle && pending > 0)
	var ack Msg
	if needAck {
		if topUp < 0 {
			topUp = 0
		}
		sc.acked = sc.ingested
		sc.granted += topUp
		ack = Msg{Type: MsgAck, UpTo: sc.acked, Credits: uint32(topUp)}
	}
	sc.pmu.Unlock()
	if needAck {
		sc.s.acks.Add(1)
		if err := sc.send(&ack); err != nil {
			return false
		}
	}
	return true
}

// grantSize sizes the connection's outstanding-credit target from the
// tenant shard's queue headroom, clamped to [1, CreditWindow]: a stalled
// shard degrades the flow to one blocking frame at a time (protocol-level
// backpressure), never to a deadlock and never to unbounded buffering.
func (sc *serverConn) grantSize(granted int) int {
	window := sc.s.cfg.CreditWindow
	head := sc.sub.QueueHeadroom()
	target := head
	if target > window {
		target = window
	}
	if target < 1 {
		target = 1
	}
	if target < granted {
		target = granted
	}
	return target
}

// cut flips the connection into discard mode and records the ingest
// watermark. Locking pmu serializes with the reader: on return the
// reader is either between messages or parked in a read, so cutoff is
// the exact high-water mark of frames inside the engine.
func (sc *serverConn) cut() {
	sc.pmu.Lock()
	sc.discard.Store(true)
	sc.cutoff = sc.ingested
	sc.pmu.Unlock()
}

// ackedCut returns the acknowledged watermark — the safe cutoff to
// advertise when the drain checkpoint failed.
func (sc *serverConn) ackedCut() uint64 {
	sc.pmu.Lock()
	defer sc.pmu.Unlock()
	return sc.acked
}

// finishDrain sends the final cumulative ack and the drain notice, then
// closes the connection. The client releases ≤ upTo and resends the rest
// to the successor.
func (sc *serverConn) finishDrain(upTo uint64) {
	sc.send(&Msg{Type: MsgAck, UpTo: upTo, Credits: 0})
	sc.send(&Msg{Type: MsgDrain, UpTo: upTo})
	// Closing unblocks the reader goroutine; discard mode keeps the
	// close from being counted as a protocol error.
	sc.c.Close()
}

// send writes one message under the write lock and flushes it.
func (sc *serverConn) send(m *Msg) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	buf, err := AppendMsg(nil, m)
	if err != nil {
		return err
	}
	sc.c.SetWriteDeadline(time.Now().Add(10 * time.Second))
	if _, err := sc.bw.Write(buf); err != nil {
		return err
	}
	return sc.bw.Flush()
}

// fail reports a protocol violation to the peer and counts it.
func (sc *serverConn) fail(code uint16, text string) {
	sc.s.protoErrors.Add(1)
	sc.send(&Msg{Type: MsgError, Code: code, Text: text})
}
