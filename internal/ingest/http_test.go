package ingest_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"aero/internal/ingest"
)

// TestHTTPEndpoints covers the interop surface: JSON-lines ingest with
// per-line validation, the /stats document, and /healthz flipping to 503
// once a drain begins.
func TestHTTPEndpoints(t *testing.T) {
	d, _ := fixture(t)
	e, subs := newTestEngine(t, "field-000")
	_, wg := collectAlarms(e)
	srv := newTestServer(t, e, subs, ingest.ServerConfig{
		ExtraStats: func() map[string]any { return map[string]any{"custom": 42} },
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf [1 << 16]byte
		n, _ := resp.Body.Read(buf[:])
		return resp, buf[:n]
	}
	post := func(path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf [1 << 16]byte
		n, _ := resp.Body.Read(buf[:])
		return resp, buf[:n]
	}

	if resp, body := get("/healthz"); resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	// Three valid JSON lines for the registered tenant.
	lines := `{"sub":"field-000","time":1,"mags":[1,2,3,4,5]}
{"sub":"field-000","time":2,"mags":[1,2,3,4,5]}
{"sub":"field-000","time":3,"mags":[1,2,3,4,5]}
`
	resp, body := post("/ingest", lines)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d %q", resp.StatusCode, body)
	}
	var ack struct {
		Accepted int `json:"accepted"`
	}
	if err := json.Unmarshal(body, &ack); err != nil || ack.Accepted != 3 {
		t.Fatalf("ingest reply %q (err %v), want accepted=3", body, err)
	}
	e.Flush()
	if got := subs["field-000"].Stats().Frames; got != 3 {
		t.Fatalf("engine scored %d frames, want 3", got)
	}

	// Unknown tenant and malformed JSON are rejected with the line number.
	if resp, body := post("/ingest", `{"sub":"nobody","time":4,"mags":[1,2,3,4,5]}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant: %d %q", resp.StatusCode, body)
	}
	if resp, body := post("/ingest", "{not json}\n"); resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "line 1") {
		t.Fatalf("malformed line: %d %q", resp.StatusCode, body)
	}
	if resp, _ := get("/ingest"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest: %d", resp.StatusCode)
	}

	// /stats exposes server, engine, per-tenant and extra sections.
	resp, body = get("/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var stats struct {
		Server struct {
			HTTPFrames uint64 `json:"http_frames"`
		} `json:"server"`
		Totals struct {
			Frames uint64
		} `json:"totals"`
		Subscriptions map[string]struct {
			Kind   string `json:"kind"`
			Health string `json:"health"`
			Stats  struct {
				Frames uint64
			} `json:"stats"`
		} `json:"subscriptions"`
		Extra map[string]any `json:"extra"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("stats JSON: %v in %q", err, body)
	}
	if stats.Server.HTTPFrames != 3 || stats.Totals.Frames != 3 {
		t.Fatalf("stats counters %+v, want 3 http frames and 3 scored", stats)
	}
	sub, ok := stats.Subscriptions["field-000"]
	if !ok || sub.Kind == "" || sub.Health == "" || sub.Stats.Frames != 3 {
		t.Fatalf("subscription section %+v, want kind/health and 3 frames", stats.Subscriptions)
	}
	if v, ok := stats.Extra["custom"]; !ok || v != float64(42) {
		t.Fatalf("extra section %+v, want custom=42", stats.Extra)
	}

	// Draining: health flips to 503 and new ingest is refused, in both
	// cases without dropping anything already accepted.
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	if resp, _ := get("/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d", resp.StatusCode)
	}
	if resp, _ := post("/ingest", lines); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest during drain: %d", resp.StatusCode)
	}

	e.Close()
	wg.Wait()
	_ = d
}
