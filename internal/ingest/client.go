package ingest

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"aero/internal/core"
	"aero/internal/metrics"
)

// ClientConfig parameterizes Dial.
type ClientConfig struct {
	// Addr is the server's TCP address.
	Addr string
	// Tenant is the subscription id declared in the handshake.
	Tenant string
	// Variates is the frame width declared in the handshake; every Send
	// must match it.
	Variates int
	// Window caps the client-side resend buffer (frames sent but not yet
	// acknowledged). Send blocks at the cap even when the server has
	// granted more credit. Defaults to 256.
	Window int
	// RedialAttempts bounds reconnection tries after a drain notice or a
	// connection failure; 0 disables reconnection (the next Send fails).
	// Defaults to 30.
	RedialAttempts int
	// RedialDelay is the initial backoff between redials (doubled up to
	// 32×). Defaults to 50 ms.
	RedialDelay time.Duration
	// Logf receives reconnect diagnostics. Optional.
	Logf func(format string, args ...any)
	// Latency, when non-nil, records each frame's send→ack round trip —
	// the client-visible latency including queueing, scoring, ack batching,
	// and any drain/redial the frame rode out. Shareable across clients
	// (Record is atomic).
	Latency *metrics.Histogram
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.RedialAttempts == 0 {
		c.RedialAttempts = 30
	}
	if c.RedialDelay <= 0 {
		c.RedialDelay = 50 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// ClientStats snapshots a client's delivery counters.
type ClientStats struct {
	// Sent counts distinct frames handed to Send.
	Sent uint64
	// Acked counts frames the server has acknowledged (scored or
	// checkpointed — safe to forget).
	Acked uint64
	// Resent counts frame retransmissions after drains or reconnects.
	Resent uint64
	// Reconnects counts successful re-handshakes.
	Reconnects uint64
	// BlockedWaits counts Send calls that had to park on credit or
	// window exhaustion — the client-visible face of engine backpressure.
	BlockedWaits uint64
	// Drains counts drain notices received.
	Drains uint64
}

// ErrClientClosed is returned by Send after Close.
var ErrClientClosed = errors.New("ingest: client closed")

// pendFrame is one sent-but-unacknowledged frame, owned by the client
// for retransmission.
type pendFrame struct {
	seq    uint64
	time   float64
	mags   []float64
	sentNs int64 // Send timestamp for ack-latency measurement; 0 when untimed
}

// Client is one tenant's connection to the ingest server: an ordered,
// credit-controlled, exactly-once frame stream. Send blocks while the
// server is out of credit (protocol-level backpressure) and transparently
// rides out drains and restarts by reconnecting and resending the
// unacknowledged suffix. Clients are safe for use by one sender
// goroutine; the reader goroutine is internal.
type Client struct {
	cfg ClientConfig

	mu        sync.Mutex
	cond      *sync.Cond
	conn      net.Conn
	bw        *bufio.Writer
	credits   int
	nextSeq   uint64
	pending   []pendFrame // in seq order; released by cumulative acks
	free      [][]float64 // recycled magnitude buffers
	ackedUp   uint64
	byeUp     uint64 // ByeAck watermark (0 until received)
	closed    bool
	dead      bool  // no live conn; a redial loop may be running
	resending bool  // redial retransmission in flight; Send must stay parked
	err       error // terminal failure, reported by Send/Close

	stats ClientStats
}

// Dial connects, performs the tenant handshake, and starts the ack
// reader.
func Dial(cfg ClientConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	c := &Client{cfg: cfg}
	c.cond = sync.NewCond(&c.mu)
	conn, credits, err := c.handshake()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.install(conn, credits)
	c.mu.Unlock()
	return c, nil
}

// handshake dials and exchanges Hello/HelloAck, returning the connection
// and the initial credit grant.
func (c *Client) handshake() (net.Conn, int, error) {
	conn, err := net.Dial("tcp", c.cfg.Addr)
	if err != nil {
		return nil, 0, err
	}
	buf, err := AppendMsg(nil, &Msg{Type: MsgHello, Tenant: c.cfg.Tenant, Variates: c.cfg.Variates})
	if err != nil {
		conn.Close()
		return nil, 0, err
	}
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write(buf); err != nil {
		conn.Close()
		return nil, 0, err
	}
	var m Msg
	var scratch []byte
	br := bufio.NewReader(conn)
	if err := ReadMsg(br, &m, &scratch); err != nil {
		conn.Close()
		return nil, 0, err
	}
	switch m.Type {
	case MsgHelloAck:
	case MsgError:
		conn.Close()
		return nil, 0, fmt.Errorf("ingest: server rejected handshake (code %d): %s", m.Code, m.Text)
	default:
		conn.Close()
		return nil, 0, fmt.Errorf("%w: handshake reply 0x%02x", ErrBadMessage, m.Type)
	}
	conn.SetDeadline(time.Time{})
	return &readerConn{Conn: conn, br: br}, int(m.Credits), nil
}

// readerConn keeps the handshake's buffered reader attached to the
// connection so bytes the handshake read ahead are not lost.
type readerConn struct {
	net.Conn
	br *bufio.Reader
}

// install adopts a fresh connection under c.mu and starts its reader.
func (c *Client) install(conn net.Conn, credits int) {
	c.conn = conn
	c.bw = bufio.NewWriterSize(conn, 32<<10)
	c.credits = credits
	c.dead = false
	go c.readLoop(conn)
	c.cond.Broadcast()
}

// Send delivers one frame in order, blocking while the server's credit
// grant or the local window is exhausted — the protocol-level face of
// the engine's backpressure. The magnitudes are copied; the caller may
// reuse the slice. Send never drops: a frame accepted by Send is
// retransmitted across drains and reconnects until acknowledged.
func (c *Client) Send(f core.Frame) error {
	if len(f.Magnitudes) != c.cfg.Variates {
		return fmt.Errorf("ingest: frame has %d variates, client declared %d", len(f.Magnitudes), c.cfg.Variates)
	}
	c.mu.Lock()
	waited := false
	for !c.closed && c.err == nil && (c.dead || c.resending || c.credits <= 0 || len(c.pending) >= c.cfg.Window) {
		if !c.dead && !waited {
			waited = true
			c.stats.BlockedWaits++
		}
		c.cond.Wait()
	}
	if c.closed || c.err != nil {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		return err
	}
	c.nextSeq++
	seq := c.nextSeq
	mags := c.getBuf(len(f.Magnitudes))
	copy(mags, f.Magnitudes)
	var sentNs int64
	if c.cfg.Latency != nil {
		sentNs = metrics.Now()
	}
	c.pending = append(c.pending, pendFrame{seq: seq, time: f.Time, mags: mags, sentNs: sentNs})
	c.credits--
	c.stats.Sent++
	bw, conn := c.bw, c.conn
	c.mu.Unlock()

	// The write happens outside c.mu so a TCP stall cannot lock the ack
	// reader out; write failures surface through the reader's reconnect
	// path, which retransmits this frame from pending.
	if err := writeFrame(bw, conn, seq, f.Time, mags); err != nil {
		c.onConnError(conn, err)
	}
	return nil
}

// writeFrame encodes and flushes one Data message.
func writeFrame(bw *bufio.Writer, conn net.Conn, seq uint64, t float64, mags []float64) error {
	buf, err := AppendMsg(nil, &Msg{Type: MsgData, Seq: seq, Time: t, Mags: mags})
	if err != nil {
		return err
	}
	conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	return bw.Flush()
}

func (c *Client) getBuf(n int) []float64 {
	if k := len(c.free); k > 0 {
		b := c.free[k-1]
		c.free = c.free[:k-1]
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]float64, n)
}

// readLoop consumes server messages for one connection's lifetime.
func (c *Client) readLoop(conn net.Conn) {
	br := conn.(*readerConn).br
	var m Msg
	var scratch []byte
	for {
		if err := ReadMsg(br, &m, &scratch); err != nil {
			c.onConnError(conn, err)
			return
		}
		switch m.Type {
		case MsgAck:
			c.mu.Lock()
			if conn == c.conn {
				c.release(m.UpTo)
				c.credits += int(m.Credits)
				c.cond.Broadcast()
			}
			c.mu.Unlock()
		case MsgDrain:
			// Everything ≤ UpTo is checkpointed server-side; the rest of
			// pending is ours to resend after the successor comes up.
			c.mu.Lock()
			if conn == c.conn {
				c.stats.Drains++
				c.release(m.UpTo)
				c.markDead(conn)
			}
			c.mu.Unlock()
			conn.Close()
			return
		case MsgByeAck:
			c.mu.Lock()
			if conn == c.conn {
				c.release(m.UpTo)
				c.byeUp = m.UpTo
				c.cond.Broadcast()
			}
			c.mu.Unlock()
			return
		case MsgError:
			c.failTerminal(fmt.Errorf("ingest: server error (code %d): %s", m.Code, m.Text))
			conn.Close()
			return
		}
	}
}

// release drops acknowledged frames from the resend buffer. Caller holds
// c.mu.
func (c *Client) release(upTo uint64) {
	if upTo <= c.ackedUp {
		return
	}
	n := 0
	var now int64
	if c.cfg.Latency != nil {
		now = metrics.Now() // one clock read covers the whole ack batch
	}
	for n < len(c.pending) && c.pending[n].seq <= upTo {
		if p := &c.pending[n]; p.sentNs != 0 {
			c.cfg.Latency.Record(now - p.sentNs)
		}
		c.free = append(c.free, c.pending[n].mags)
		n++
	}
	if n > 0 {
		c.stats.Acked += uint64(n)
		c.pending = c.pending[:copy(c.pending, c.pending[n:])]
	}
	c.ackedUp = upTo
	c.cond.Broadcast()
}

// onConnError retires a failed connection and starts the redial loop.
func (c *Client) onConnError(conn net.Conn, err error) {
	c.mu.Lock()
	if conn != c.conn || c.closed || c.err != nil {
		c.mu.Unlock()
		return
	}
	c.cfg.Logf("ingest: connection lost: %v", err)
	c.markDead(conn)
	c.mu.Unlock()
	conn.Close()
}

// markDead flags the current connection unusable and spawns the redial
// loop (at most one). Caller holds c.mu.
func (c *Client) markDead(conn net.Conn) {
	if c.dead || c.closed {
		return
	}
	c.dead = true
	c.cond.Broadcast()
	if c.cfg.RedialAttempts > 0 {
		go c.redial()
	} else {
		c.err = errors.New("ingest: connection lost and reconnection disabled")
		c.cond.Broadcast()
	}
}

// redial reconnects with exponential backoff and retransmits the
// unacknowledged suffix in order.
func (c *Client) redial() {
	delay := c.cfg.RedialDelay
	for attempt := 1; ; attempt++ {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()

		conn, credits, err := c.handshake()
		if err == nil {
			c.mu.Lock()
			resend := make([]pendFrame, len(c.pending))
			copy(resend, c.pending)
			c.stats.Reconnects++
			c.stats.Resent += uint64(len(resend))
			// The resending flag keeps Send parked until the whole
			// unacknowledged suffix is back on the wire, so new frames can
			// never overtake a retransmission.
			c.resending = len(resend) > 0
			c.install(conn, credits)
			bw := c.bw
			c.mu.Unlock()
			for i := range resend {
				c.mu.Lock()
				for c.credits <= 0 && !c.closed && c.err == nil && conn == c.conn {
					c.cond.Wait()
				}
				stale := conn != c.conn || c.closed || c.err != nil
				if !stale {
					c.credits--
				}
				c.mu.Unlock()
				if stale {
					return
				}
				if err := writeFrame(bw, conn, resend[i].seq, resend[i].time, resend[i].mags); err != nil {
					c.onConnError(conn, err)
					return
				}
			}
			c.mu.Lock()
			if conn == c.conn {
				c.resending = false
				c.cond.Broadcast()
			}
			c.mu.Unlock()
			return
		}
		c.cfg.Logf("ingest: redial %d/%d failed: %v", attempt, c.cfg.RedialAttempts, err)
		if attempt >= c.cfg.RedialAttempts {
			c.failTerminal(fmt.Errorf("ingest: reconnect failed after %d attempts: %w", attempt, err))
			return
		}
		time.Sleep(delay)
		if delay < 32*c.cfg.RedialDelay {
			delay *= 2
		}
	}
}

// failTerminal records a fatal error and wakes every waiter.
func (c *Client) failTerminal(err error) {
	c.mu.Lock()
	if c.err == nil && !c.closed {
		c.err = err
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Flush blocks until every frame accepted by Send has been acknowledged
// (riding out reconnects), or the client fails terminally.
func (c *Client) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.pending) > 0 && c.err == nil && !c.closed {
		c.cond.Wait()
	}
	if c.err != nil {
		return c.err
	}
	if len(c.pending) > 0 {
		return ErrClientClosed
	}
	return nil
}

// Close performs a clean goodbye: waits for every sent frame to be
// acknowledged, exchanges Bye/ByeAck, and closes the connection. The
// returned error reports frames that could not be confirmed.
func (c *Client) Close() error {
	flushErr := c.Flush()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.cond.Broadcast()
	conn, bw := c.conn, c.bw
	last := c.nextSeq
	clean := flushErr == nil && !c.dead && conn != nil
	c.mu.Unlock()

	if clean {
		if buf, err := AppendMsg(nil, &Msg{Type: MsgBye, UpTo: last}); err == nil {
			conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
			if _, werr := bw.Write(buf); werr == nil {
				bw.Flush()
			}
		}
		// Give the reader a moment to surface ByeAck; delivery is already
		// guaranteed by the ack watermark, so this is only a courtesy to
		// the server's connection teardown.
		deadline := time.Now().Add(2 * time.Second)
		c.mu.Lock()
		for c.byeUp < last && time.Now().Before(deadline) {
			c.mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			c.mu.Lock()
		}
		c.mu.Unlock()
	}
	if conn != nil {
		conn.Close()
	}
	return flushErr
}

// Stats snapshots the client's counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Pending returns the number of sent-but-unacknowledged frames.
func (c *Client) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}
