package ingest_test

import (
	"net"
	"testing"

	"aero/internal/core"
	"aero/internal/engine"
	"aero/internal/ingest"
)

// BenchmarkIngestRoundTrip measures the full network path per frame:
// client encode → TCP loopback → CRC check → decode → engine ingest →
// worker push → batched ack → credit top-up back to the client. The
// backend is a no-op gate so the row isolates transport + engine cost;
// b.SetBytes reports wire throughput.
func BenchmarkIngestRoundTrip(b *testing.B) {
	const variates = 5
	gb := &gateBackend{n: variates}
	e := engine.New(engine.Config{Shards: 1, Workers: 1, QueueDepth: 64, BatchSize: 8})
	sub, err := e.SubscribeBackend("bench", gb)
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for range e.Alarms() {
		}
	}()
	subs := map[string]*engine.Subscription{"bench": sub}
	srv, err := ingest.NewServer(ingest.ServerConfig{
		Engine: e,
		Lookup: func(tenant string) (*engine.Subscription, error) { return subs[tenant], nil },
	})
	if err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	c, err := ingest.Dial(ingest.ClientConfig{
		Addr: l.Addr().String(), Tenant: "bench", Variates: variates, Window: 256,
	})
	if err != nil {
		b.Fatal(err)
	}
	frame := core.Frame{Magnitudes: make([]float64, variates)}

	b.SetBytes(int64(ingest.DataWireSize(variates)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame.Time = float64(i)
		if err := c.Send(frame); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()

	if err := c.Close(); err != nil {
		b.Fatal(err)
	}
	srv.Close()
	e.Close()
	l.Close()
	<-serveDone
}
