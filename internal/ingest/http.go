package ingest

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"

	"aero/internal/core"
	"aero/internal/engine"
)

// httpFrame is one JSON-lines ingest record.
type httpFrame struct {
	Sub  string    `json:"sub"`
	Time float64   `json:"time"`
	Mags []float64 `json:"mags"`
}

// statsPayload is the /stats response document.
type statsPayload struct {
	Server        ServerStats                 `json:"server"`
	Totals        engine.ShardStats           `json:"totals"`
	Shards        []engine.ShardStats         `json:"shards"`
	Subscriptions map[string]subscriptionInfo `json:"subscriptions,omitempty"`
	Extra         map[string]any              `json:"extra,omitempty"`
}

// subscriptionInfo augments the raw counters with the tenant's kind and
// a human-readable health state. The counters nest under "stats" so the
// readable health string does not collide with the numeric Health field
// inside SubscriptionStats.
type subscriptionInfo struct {
	Kind   string                   `json:"kind"`
	Health string                   `json:"health"`
	Stats  engine.SubscriptionStats `json:"stats"`
}

// Handler returns the server's HTTP surface:
//
//	POST /ingest   JSON lines {"sub":"field-000","time":12.5,"mags":[...]}
//	GET  /stats    engine + server + per-tenant counters as JSON
//	GET  /healthz  200 "ok" while serving, 503 "draining" during drain
//
// With ServerConfig.Metrics, two observability routes are added:
//
//	GET  /metrics        Prometheus text exposition of the registry
//	GET  /trace/{tenant} the tenant's flight-recorder ring as JSON
//
// With ServerConfig.EnablePprof, net/http/pprof's endpoints are mounted
// under /debug/pprof/ as well (the explicit routes below, not the default
// mux, which this handler never touches).
//
// The /ingest endpoint shares the engine's backpressure: each line's
// Ingest blocks while the tenant's shard is saturated, so a slow shard
// slows the HTTP client's request body read instead of buffering.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/ingest", s.handleIngest)
	if s.cfg.Metrics != nil {
		mux.HandleFunc("/metrics", s.handleMetrics)
		mux.HandleFunc("/trace/", s.handleTrace)
	}
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() || s.closed.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	p := statsPayload{
		Server: s.Stats(),
		Totals: s.cfg.Engine.Totals(),
		Shards: s.cfg.Engine.Stats(),
	}
	if s.cfg.Subscriptions != nil {
		subs := s.cfg.Subscriptions()
		p.Subscriptions = make(map[string]subscriptionInfo, len(subs))
		for _, sub := range subs {
			p.Subscriptions[sub.ID] = subscriptionInfo{
				Kind:   sub.Kind(),
				Health: sub.Health().String(),
				Stats:  sub.Stats(),
			}
		}
	}
	if s.cfg.ExtraStats != nil {
		p.Extra = s.cfg.ExtraStats()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(p)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cfg.Metrics.WritePrometheus(w)
}

// handleTrace serves GET /trace/{tenant}: the tenant's flight-recorder
// snapshot — recent frames with per-stage latencies, plus the slowest
// frame pinned since startup — as JSON.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tenant := strings.TrimPrefix(r.URL.Path, "/trace/")
	if tenant == "" || strings.ContainsRune(tenant, '/') {
		http.Error(w, "GET /trace/{tenant}", http.StatusNotFound)
		return
	}
	sub, err := s.cfg.Lookup(tenant)
	if err != nil || sub == nil {
		http.Error(w, fmt.Sprintf("unknown tenant %q", tenant), http.StatusNotFound)
		return
	}
	snap, ok := sub.Trace()
	if !ok {
		http.Error(w, "frame tracing disabled for this tenant", http.StatusNotFound)
		return
	}
	doc := snap.JSON()
	doc.Tenant = sub.ID
	doc.Kind = sub.Kind()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST JSON lines to /ingest", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() || s.closed.Load() {
		http.Error(w, ErrDraining.Error(), http.StatusServiceUnavailable)
		return
	}
	accepted := 0
	respond := func(status int, errText string) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		out := map[string]any{"accepted": accepted}
		if errText != "" {
			out["error"] = errText
		}
		json.NewEncoder(w).Encode(out)
	}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64<<10), MaxPayload)
	var f httpFrame
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		f = httpFrame{Mags: f.Mags[:0]}
		if err := json.Unmarshal(raw, &f); err != nil {
			respond(http.StatusBadRequest, fmt.Sprintf("line %d: %v", line, err))
			return
		}
		sub, err := s.cfg.Lookup(f.Sub)
		if err != nil || sub == nil {
			respond(http.StatusNotFound, fmt.Sprintf("line %d: unknown tenant %q", line, f.Sub))
			return
		}
		if err := s.cfg.Engine.Ingest(f.Sub, core.Frame{Time: f.Time, Magnitudes: f.Mags}); err != nil {
			respond(http.StatusBadRequest, fmt.Sprintf("line %d: %v", line, err))
			return
		}
		accepted++
		s.httpFrames.Add(1)
	}
	if err := sc.Err(); err != nil {
		respond(http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
		return
	}
	respond(http.StatusOK, "")
}
