package ingest_test

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"testing"

	"aero/internal/ingest"
)

// randMsg generates one random message of a random type, including
// awkward payloads: empty tenant ids, zero-variate frames, NaN/Inf
// magnitudes, maximal counters.
func randMsg(rng *rand.Rand) ingest.Msg {
	types := []byte{
		ingest.MsgHello, ingest.MsgHelloAck, ingest.MsgData, ingest.MsgAck,
		ingest.MsgDrain, ingest.MsgBye, ingest.MsgByeAck, ingest.MsgError,
	}
	m := ingest.Msg{Type: types[rng.Intn(len(types))]}
	switch m.Type {
	case ingest.MsgHello:
		tenant := make([]byte, rng.Intn(ingest.MaxTenantLen+1))
		rng.Read(tenant)
		m.Tenant = string(tenant)
		m.Variates = rng.Intn(ingest.MaxVariates + 1)
	case ingest.MsgHelloAck:
		m.Credits = rng.Uint32()
	case ingest.MsgData:
		m.Seq = rng.Uint64()
		m.Time = rng.NormFloat64() * 1e6
		m.Mags = make([]float64, rng.Intn(40))
		for i := range m.Mags {
			switch rng.Intn(10) {
			case 0:
				m.Mags[i] = math.NaN()
			case 1:
				m.Mags[i] = math.Inf(1 - 2*rng.Intn(2))
			default:
				m.Mags[i] = rng.NormFloat64()
			}
		}
	case ingest.MsgAck:
		m.UpTo = rng.Uint64()
		m.Credits = rng.Uint32()
	case ingest.MsgDrain, ingest.MsgBye, ingest.MsgByeAck:
		m.UpTo = rng.Uint64()
	case ingest.MsgError:
		m.Code = uint16(rng.Uint32())
		text := make([]byte, rng.Intn(300))
		rng.Read(text)
		m.Text = string(text)
	}
	return m
}

// msgEqual compares the fields meaningful for the message's type, with
// bit-level float comparison so NaN payloads round-trip.
func msgEqual(a, b *ingest.Msg) bool {
	if a.Type != b.Type {
		return false
	}
	switch a.Type {
	case ingest.MsgHello:
		return a.Tenant == b.Tenant && a.Variates == b.Variates
	case ingest.MsgHelloAck:
		return a.Credits == b.Credits
	case ingest.MsgData:
		if a.Seq != b.Seq || math.Float64bits(a.Time) != math.Float64bits(b.Time) || len(a.Mags) != len(b.Mags) {
			return false
		}
		for i := range a.Mags {
			if math.Float64bits(a.Mags[i]) != math.Float64bits(b.Mags[i]) {
				return false
			}
		}
		return true
	case ingest.MsgAck:
		return a.UpTo == b.UpTo && a.Credits == b.Credits
	case ingest.MsgDrain, ingest.MsgBye, ingest.MsgByeAck:
		return a.UpTo == b.UpTo
	case ingest.MsgError:
		return a.Code == b.Code && a.Text == b.Text
	}
	return false
}

// TestMsgRoundTripProperty is the encode/decode property test: random
// messages of every type, batched into one buffer, must round-trip
// bit-identically through both the slice decoder (DecodeMsg) and the
// stream decoder (ReadMsg), with each decode consuming exactly its
// message's bytes.
func TestMsgRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 400; iter++ {
		batch := make([]ingest.Msg, 1+rng.Intn(5))
		var buf []byte
		var err error
		for i := range batch {
			batch[i] = randMsg(rng)
			if buf, err = ingest.AppendMsg(buf, &batch[i]); err != nil {
				t.Fatalf("iter %d: encode %+v: %v", iter, batch[i], err)
			}
		}

		// Slice path: decode the batch message by message.
		rest := buf
		var dec ingest.Msg
		for i := range batch {
			n, derr := ingest.DecodeMsg(rest, &dec)
			if derr != nil {
				t.Fatalf("iter %d msg %d: decode: %v", iter, i, derr)
			}
			if !msgEqual(&batch[i], &dec) {
				t.Fatalf("iter %d msg %d: round trip %+v -> %+v", iter, i, batch[i], dec)
			}
			rest = rest[n:]
		}
		if len(rest) != 0 {
			t.Fatalf("iter %d: %d undecoded bytes", iter, len(rest))
		}

		// Stream path: same batch through a bufio.Reader.
		br := bufio.NewReader(bytes.NewReader(buf))
		var scratch []byte
		for i := range batch {
			if err := ingest.ReadMsg(br, &dec, &scratch); err != nil {
				t.Fatalf("iter %d msg %d: read: %v", iter, i, err)
			}
			if !msgEqual(&batch[i], &dec) {
				t.Fatalf("iter %d msg %d: stream round trip %+v -> %+v", iter, i, batch[i], dec)
			}
		}
	}
}

// encodeOne is a test helper building a single valid wire message.
func encodeOne(t *testing.T, m *ingest.Msg) []byte {
	t.Helper()
	buf, err := ingest.AppendMsg(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// rawFrame assembles a wire frame around an arbitrary payload with a
// correct CRC — for malformations AppendMsg refuses to produce.
func rawFrame(payload []byte) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
}

// TestDecodeMalformed pins the protocol's failure contract: truncated
// prefixes, corrupted bytes, oversized lengths, bad magic/version and
// unknown types must all return typed errors — never panic, never
// succeed.
func TestDecodeMalformed(t *testing.T) {
	valid := encodeOne(t, &ingest.Msg{Type: ingest.MsgData, Seq: 7, Time: 12.5, Mags: []float64{1, 2, 3}})
	var m ingest.Msg

	// Every strict prefix is truncated.
	for n := 0; n < len(valid); n++ {
		if _, err := ingest.DecodeMsg(valid[:n], &m); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded", n, len(valid))
		} else if n < 4 && !errors.Is(err, ingest.ErrTruncated) {
			t.Fatalf("prefix %d: got %v, want ErrTruncated", n, err)
		}
	}

	// Every single corrupted byte must fail (the CRC guards the payload;
	// a corrupted length prefix shifts the CRC window).
	for i := range valid {
		bad := append([]byte(nil), valid...)
		bad[i] ^= 0x40
		if _, err := ingest.DecodeMsg(bad, &m); err == nil {
			t.Fatalf("corruption at byte %d decoded", i)
		}
	}

	// Oversized length prefix is rejected before allocation.
	huge := binary.LittleEndian.AppendUint32(nil, ingest.MaxPayload+1)
	huge = append(huge, make([]byte, 64)...)
	if _, err := ingest.DecodeMsg(huge, &m); !errors.Is(err, ingest.ErrTooLarge) {
		t.Fatalf("oversized length: got %v, want ErrTooLarge", err)
	}

	// Unknown message type (valid CRC).
	if _, err := ingest.DecodeMsg(rawFrame([]byte{0x7f, 1, 2}), &m); !errors.Is(err, ingest.ErrBadMessage) {
		t.Fatalf("unknown type: got %v, want ErrBadMessage", err)
	}

	// Hello with bad magic / bad version (valid CRC).
	hello := encodeOne(t, &ingest.Msg{Type: ingest.MsgHello, Tenant: "x", Variates: 2})
	payload := append([]byte(nil), hello[4:len(hello)-4]...)
	binary.LittleEndian.PutUint32(payload[1:], 0xdeadbeef)
	if _, err := ingest.DecodeMsg(rawFrame(payload), &m); !errors.Is(err, ingest.ErrBadMagic) {
		t.Fatalf("bad magic: got %v, want ErrBadMagic", err)
	}
	payload = append(payload[:0], hello[4:len(hello)-4]...)
	binary.LittleEndian.PutUint16(payload[5:], ingest.WireVersion+9)
	if _, err := ingest.DecodeMsg(rawFrame(payload), &m); !errors.Is(err, ingest.ErrBadVersion) {
		t.Fatalf("bad version: got %v, want ErrBadVersion", err)
	}

	// Data frame whose declared variate count disagrees with its body.
	data := encodeOne(t, &ingest.Msg{Type: ingest.MsgData, Seq: 1, Time: 0, Mags: []float64{1, 2}})
	payload = append([]byte(nil), data[4:len(data)-4]...)
	binary.LittleEndian.PutUint32(payload[17:], 60000)
	if _, err := ingest.DecodeMsg(rawFrame(payload), &m); !errors.Is(err, ingest.ErrBadMessage) {
		t.Fatalf("variate mismatch: got %v, want ErrBadMessage", err)
	}

	// The stream reader fails cleanly on a mid-message EOF.
	var scratch []byte
	if err := ingest.ReadMsg(bufio.NewReader(bytes.NewReader(valid[:len(valid)-2])), &m, &scratch); err == nil {
		t.Fatal("stream decode of truncated message succeeded")
	}
}

// FuzzDecodeFrame holds the decoder to the PR 7 guard story: arbitrary
// bytes must either decode into a message that re-encodes and re-decodes
// consistently, or return an error — never panic, never over-consume.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	seedMsgs := []ingest.Msg{
		{Type: ingest.MsgHello, Tenant: "field-001", Variates: 5},
		{Type: ingest.MsgHelloAck, Credits: 64},
		{Type: ingest.MsgData, Seq: 42, Time: 1234.5, Mags: []float64{1, math.NaN(), -3}},
		{Type: ingest.MsgAck, UpTo: 42, Credits: 8},
		{Type: ingest.MsgDrain, UpTo: 41},
		{Type: ingest.MsgBye, UpTo: 40},
		{Type: ingest.MsgError, Code: 3, Text: "width mismatch"},
	}
	for i := range seedMsgs {
		buf, err := ingest.AppendMsg(nil, &seedMsgs[i])
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		f.Add(buf[:len(buf)-1])
		corrupted := append([]byte(nil), buf...)
		corrupted[len(corrupted)/2] ^= 0x10
		f.Add(corrupted)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var m ingest.Msg
		n, err := ingest.DecodeMsg(data, &m)
		if err == nil {
			if n <= 0 || n > len(data) {
				t.Fatalf("decode consumed %d of %d bytes", n, len(data))
			}
			// A successfully decoded message must survive a re-encode:
			// the wire format has one canonical encoding per message.
			re, rerr := ingest.AppendMsg(nil, &m)
			if rerr != nil {
				t.Fatalf("re-encode of decoded message failed: %v", rerr)
			}
			var m2 ingest.Msg
			if _, rerr := ingest.DecodeMsg(re, &m2); rerr != nil {
				t.Fatalf("re-decode failed: %v", rerr)
			}
			if !msgEqual(&m, &m2) {
				t.Fatalf("re-encode changed message: %+v -> %+v", m, m2)
			}
		}
		// The stream reader must agree with the slice decoder on whether
		// the prefix is a well-formed message (modulo needing more bytes).
		var scratch []byte
		serr := ingest.ReadMsg(bufio.NewReader(bytes.NewReader(data)), &m, &scratch)
		if err == nil && serr != nil {
			t.Fatalf("slice decode succeeded but stream decode failed: %v", serr)
		}
	})
}
