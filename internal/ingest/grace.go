package ingest

import (
	"fmt"
	"net"
	"os"
	"os/exec"
)

// ListenFDEnv marks a child process that inherits its listening socket:
// when set to "1", fd 3 (the first ExtraFile) is the listener.
const ListenFDEnv = "AERO_LISTEN_FD"

// inheritedFD is where Relaunch places the duplicated listener in the
// child: fds 0-2 are stdio, ExtraFiles start at 3.
const inheritedFD = 3

// Listen returns a TCP listener for addr, preferring one inherited from
// a parent process mid zero-downtime restart (Relaunch). The second
// return reports whether the listener was inherited — an inherited
// socket kept its accept backlog through the handoff, so connections
// that arrived during the restart window are waiting on it.
func Listen(addr string) (net.Listener, bool, error) {
	if os.Getenv(ListenFDEnv) == "1" {
		f := os.NewFile(uintptr(inheritedFD), "aero-listener")
		if f == nil {
			return nil, false, fmt.Errorf("ingest: %s set but fd %d is not open", ListenFDEnv, inheritedFD)
		}
		l, err := net.FileListener(f)
		// FileListener dups the descriptor; the original is no longer needed.
		f.Close()
		if err != nil {
			return nil, false, fmt.Errorf("ingest: inherit listener: %w", err)
		}
		return l, true, nil
	}
	l, err := net.Listen("tcp", addr)
	return l, false, err
}

// ListenerFile duplicates the listener's descriptor so it can outlive
// the accept loop and be passed to a successor process. Only TCP
// listeners support the handoff.
func ListenerFile(l net.Listener) (*os.File, error) {
	tl, ok := l.(*net.TCPListener)
	if !ok {
		return nil, fmt.Errorf("ingest: cannot hand off %T (need *net.TCPListener)", l)
	}
	return tl.File()
}

// Relaunch re-execs the current binary with the same arguments, handing
// it the duplicated listener descriptor. The child finds the socket via
// Listen and resumes accepting on it; the kernel's accept backlog
// bridges the gap, so no connection attempt during the handoff is
// refused. Returns the child's pid.
//
// Call order for a zero-downtime restart: Drain (stops accepting,
// checkpoints, notifies clients) → ListenerFile → Relaunch → exit.
func Relaunch(f *os.File) (int, error) {
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	cmd := exec.Command(exe, os.Args[1:]...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.ExtraFiles = []*os.File{f}
	cmd.Env = append(os.Environ(), ListenFDEnv+"=1")
	if err := cmd.Start(); err != nil {
		return 0, fmt.Errorf("ingest: relaunch: %w", err)
	}
	// The parent's duplicate is no longer needed once the child holds its
	// own; the listening socket stays open because the child's copy does.
	f.Close()
	return cmd.Process.Pid, nil
}
