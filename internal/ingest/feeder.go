package ingest

import (
	"errors"
	"time"

	"aero/internal/core"
)

// FrameSource replays a variate-major series as a paced stream of
// frames. It is the one feeder shared by file replay (aeroserve's
// per-tenant goroutines emitting into Engine.Ingest) and the network
// load generator (aeroload emitting into Client.Send) — both sinks
// block when saturated, which is exactly the lossless backpressure the
// feeder is meant to transmit.
type FrameSource struct {
	// Time holds the sample timestamps; Data[v][t] the magnitudes.
	Time []float64
	Data [][]float64
	// Offset shifts every emitted timestamp, letting a restored tenant
	// continue strictly after its checkpointed cursor (see ResumeOffset).
	Offset float64
	// Rate paces the feed in frames per second; 0 replays as fast as the
	// sink accepts.
	Rate float64
	// Stop, when non-nil, ends the feed early once closed: the frame in
	// flight completes, no further frames are emitted.
	Stop <-chan struct{}
}

// ErrStopped is returned by Feed when its Stop channel closes before
// the series is exhausted.
var ErrStopped = errors.New("ingest: frame source stopped")

// Feed emits every frame in order and returns how many were emitted.
// It stops early on the first emit error (returned as-is) or when Stop
// closes (returning ErrStopped). The frame's magnitude slice is reused
// across calls; sinks must copy what they retain — Engine.Ingest and
// Client.Send both do.
func (fs *FrameSource) Feed(emit func(core.Frame) error) (int, error) {
	frame := core.Frame{Magnitudes: make([]float64, len(fs.Data))}
	var tick *time.Ticker
	if fs.Rate > 0 {
		tick = time.NewTicker(time.Duration(float64(time.Second) / fs.Rate))
		defer tick.Stop()
	}
	for t := range fs.Time {
		if tick != nil {
			select {
			case <-tick.C:
			case <-fs.Stop:
				return t, ErrStopped
			}
		} else if fs.Stop != nil {
			select {
			case <-fs.Stop:
				return t, ErrStopped
			default:
			}
		}
		frame.Time = fs.Time[t] + fs.Offset
		for v := range fs.Data {
			frame.Magnitudes[v] = fs.Data[v][t]
		}
		if err := emit(frame); err != nil {
			return t, err
		}
	}
	return len(fs.Time), nil
}

// ResumeOffset computes the timestamp shift for a tenant restored from
// a checkpoint: when the tenant's last scored time is at or past the
// series start, the replay is shifted to continue one step after it, so
// the feed never rewinds across a restart. haveLast=false (a cold
// tenant) yields no shift.
func ResumeOffset(last float64, haveLast bool, seriesStart, step float64) float64 {
	if !haveLast || last < seriesStart {
		return 0
	}
	return last - seriesStart + step
}
