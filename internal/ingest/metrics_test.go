package ingest_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"aero/internal/core"
	"aero/internal/engine"
	"aero/internal/faultinject"
	"aero/internal/ingest"
	"aero/internal/metrics"
)

// TestMetricsScrapeConcurrent hammers GET /stats, /healthz and /metrics
// from parallel scrapers while a live protocol client streams frames
// over a real TCP socket — the race detector's view of the whole
// observability read path (scrape-time CounterFuncs walking engine and
// server atomics, histogram snapshots, trace rings) against the hot
// write path.
func TestMetricsScrapeConcurrent(t *testing.T) {
	d, _ := fixture(t)
	reg := metrics.NewRegistry()
	e := engine.New(engine.Config{
		Shards: 2, Workers: 2, QueueDepth: 16, BatchSize: 4,
		Metrics: reg, Trace: engine.TraceConfig{Depth: 32},
	})
	sub, err := e.SubscribeBackend("field-000", openFixtureBackend(t))
	if err != nil {
		t.Fatal(err)
	}
	_, wg := collectAlarms(e)
	srv := newTestServer(t, e, map[string]*engine.Subscription{"field-000": sub},
		ingest.ServerConfig{Metrics: reg})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Live socket feed with the client-side ack-latency histogram on.
	latency := metrics.NewHistogram()
	c, err := ingest.Dial(ingest.ClientConfig{
		Addr: l.Addr().String(), Tenant: "field-000",
		Variates: d.Test.N(), Latency: latency,
	})
	if err != nil {
		t.Fatal(err)
	}

	const nFrames = 120
	var feeders sync.WaitGroup
	feeders.Add(1)
	go func() {
		defer feeders.Done()
		frame := core.Frame{Magnitudes: make([]float64, d.Test.N())}
		for i := 0; i < nFrames; i++ {
			ti := i % d.Test.Len()
			frame.Time = float64(i)
			for v := 0; v < d.Test.N(); v++ {
				frame.Magnitudes[v] = d.Test.Data[v][ti]
			}
			if err := c.Send(frame); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
	}()

	// Scrapers race the feed: every response must be well-formed whatever
	// instant it lands at.
	stopScrape := make(chan struct{})
	var scrapers sync.WaitGroup
	for _, path := range []string{"/stats", "/healthz", "/metrics", "/trace/field-000"} {
		scrapers.Add(1)
		go func(path string) {
			defer scrapers.Done()
			for {
				select {
				case <-stopScrape:
					return
				default:
				}
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s: %d %q", path, resp.StatusCode, body)
					return
				}
				if path == "/stats" || strings.HasPrefix(path, "/trace/") {
					var doc map[string]any
					if err := json.Unmarshal(body, &doc); err != nil {
						t.Errorf("GET %s: bad JSON %v in %q", path, err, body)
						return
					}
				}
			}
		}(path)
	}

	feeders.Wait()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	close(stopScrape)
	scrapers.Wait()

	// The final scrape carries every layer's series with the frames
	// accounted for.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	for _, want := range []string{
		fmt.Sprintf("aero_ingest_frames_total %d", nFrames),
		fmt.Sprintf("aero_engine_frames_total %d", nFrames),
		"aero_ingest_read_wait_seconds_count",
		"aero_ingest_engine_wait_seconds_count",
		"aero_ingest_frame_seconds_count",
		`aero_engine_score_seconds_count{kind="fluxev"}`,
		`aero_engine_queue_depth{shard="0"}`,
		"aero_ingest_acks_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("final /metrics scrape missing %q in:\n%s", want, out)
		}
	}
	if latency.Count() == 0 {
		t.Fatal("client ack-latency histogram recorded nothing")
	}

	srv.Close()
	<-serveDone
	l.Close()
	e.Close()
	wg.Wait()
}

// TestTraceEndpointCapturesSlowFrame drives the chaos harness's latency
// injector through an instrumented engine and asserts the flight
// recorder pins the stalled frame and serves it at GET /trace/{tenant}
// with per-stage timings.
func TestTraceEndpointCapturesSlowFrame(t *testing.T) {
	d, _ := fixture(t)
	reg := metrics.NewRegistry()
	e := engine.New(engine.Config{
		Shards: 1, Workers: 1, Metrics: reg,
		Trace: engine.TraceConfig{Depth: 16, SlowThreshold: 2 * time.Millisecond},
	})
	defer e.Close()
	// Deterministic latency spikes: ~every 10th frame stalls 5ms, well
	// past the 2ms pin threshold; everything else is orders faster.
	chaos := faultinject.New(openFixtureBackend(t), faultinject.Plan{
		Seed: 7, DelayEvery: 10, Delay: 5 * time.Millisecond,
	})
	sub, err := e.SubscribeBackend("field-000", chaos)
	if err != nil {
		t.Fatal(err)
	}
	_, wg := collectAlarms(e)
	srv := newTestServer(t, e, map[string]*engine.Subscription{"field-000": sub},
		ingest.ServerConfig{Metrics: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	frame := core.Frame{Magnitudes: make([]float64, d.Test.N())}
	for i := 0; i < 60; i++ {
		ti := i % d.Test.Len()
		frame.Time = float64(i)
		for v := 0; v < d.Test.N(); v++ {
			frame.Magnitudes[v] = d.Test.Data[v][ti]
		}
		if err := e.Ingest("field-000", frame); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()

	resp, err := http.Get(ts.URL + "/trace/field-000")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/trace: %d %q", resp.StatusCode, body)
	}
	var doc metrics.TraceJSON
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace JSON: %v in %q", err, body)
	}
	if doc.Tenant != "field-000" || doc.Total != 60 || len(doc.Frames) == 0 {
		t.Fatalf("trace doc tenant=%q total=%d frames=%d, want field-000/60/>0",
			doc.Tenant, doc.Total, len(doc.Frames))
	}
	if doc.SlowCount == 0 || doc.Slow == nil {
		t.Fatalf("no slow frame pinned (slow_count=%d); chaos delays should exceed the 2ms threshold", doc.SlowCount)
	}
	if doc.Slow.TotalNs < int64(2*time.Millisecond) {
		t.Fatalf("pinned slow frame total %dns below the threshold", doc.Slow.TotalNs)
	}
	// Per-stage timings are present and account for the total.
	var sum int64
	for _, fr := range doc.Frames {
		sum = fr.WaitNs + fr.HygieneNs + fr.ScoreNs + fr.TailNs + fr.FanInNs
		if sum != fr.TotalNs {
			t.Fatalf("frame %d stages sum %d != total %d", fr.Seq, sum, fr.TotalNs)
		}
	}

	// Unknown tenants and untraced engines 404.
	if resp, err := http.Get(ts.URL + "/trace/nobody"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant trace: %v %v", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	e.Close()
	wg.Wait()
}
