// Package faultinject is the deterministic chaos harness: a wrapper
// StreamBackend that injects panics, errors, NaN-scored alarms, and
// latency spikes into an otherwise healthy backend on a seeded,
// frame-indexed schedule. It exists to *prove* the engine's
// fault-containment claims rather than assert them: golden tests drive a
// chaotic tenant next to clean ones and check the clean tenants' alarm
// sequences are bit-identical to a fault-free replay, and aeroserve's
// -chaos flag runs the same schedule against a live soak.
//
// Determinism is the load-bearing property. Every injection decision is a
// pure function of (Plan.Seed, frame index) — a splitmix64-style hash,
// no time, no math/rand global state — so a chaos run can be replayed
// bit-for-bit: same seed, same frames, same faults, same recovery
// timeline. That is what lets a golden test pin "the faulty tenant
// transitions healthy → quarantined → probation → healthy at exactly
// these frames" instead of "eventually".
package faultinject

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"aero/internal/core"
)

// ErrInjected is the error the harness returns on an error-injection
// frame; errors.Is distinguishes injected failures from real ones in
// assertions on the engine's error stream.
var ErrInjected = errors.New("faultinject: injected error")

// PanicValue is what injected panics carry, so a recover site (or a test
// asserting on engine.PanicError.Value) can tell harness panics from
// genuine backend bugs.
type PanicValue struct {
	// Frame is the 0-based frame index the panic was injected at.
	Frame uint64
}

func (p PanicValue) String() string {
	return fmt.Sprintf("faultinject: injected panic at frame %d", p.Frame)
}

// Plan is a deterministic fault schedule over a tenant's frame stream.
// Frames are indexed from 0 in arrival order at the wrapper; a fault
// fires at frame i when i is inside [From, Until) and the seeded hash of
// (Seed, i) selects that fault class at its configured rate. Rates are
// "one in N on average" — 0 disables the class. When several classes
// select the same frame, exactly one fires: panic > error > NaN > delay.
type Plan struct {
	// Seed keys the per-frame hash; two plans with equal rates but
	// different seeds fault different frames.
	Seed uint64
	// From and Until bound the chaotic window in frame indices
	// ([From, Until); Until 0 means "no upper bound").
	From, Until uint64
	// PanicEvery injects a panic roughly every N frames. The inner
	// backend never sees the frame — the panic fires at the call
	// boundary, as a corrupting backend's would.
	PanicEvery uint64
	// ErrEvery injects ErrInjected roughly every N frames (inner backend
	// skipped).
	ErrEvery uint64
	// NaNEvery corrupts the output roughly every N frames: the frame is
	// scored normally, then a NaN-scored alarm is appended to the result
	// (PushScores poisons score 0 instead) — corruption leaking out of a
	// backend, the signal the engine's score scrubber must catch.
	NaNEvery uint64
	// DelayEvery stalls the push for Delay roughly every N frames — the
	// latency-spike signal for supervisors with a latency threshold. The
	// frame is scored normally after the stall.
	DelayEvery uint64
	// Delay is the injected stall length.
	Delay time.Duration
}

// fault classes, in priority order.
const (
	faultNone = iota
	faultPanic
	faultErr
	faultNaN
	faultDelay
)

// splitmix64 is the 64-bit finalizer from Vigna's splitmix64 generator —
// a full-avalanche hash, so consecutive frame indices map to effectively
// independent decisions.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// decide returns the fault class for frame i under the plan.
func (p Plan) decide(i uint64) int {
	if i < p.From || (p.Until > 0 && i >= p.Until) {
		return faultNone
	}
	// One hash per class, each keyed by the class index, so the classes
	// fault on independent frame sets; priority resolves collisions.
	if p.PanicEvery > 0 && splitmix64(p.Seed^i^0xa1)%p.PanicEvery == 0 {
		return faultPanic
	}
	if p.ErrEvery > 0 && splitmix64(p.Seed^i^0xb2)%p.ErrEvery == 0 {
		return faultErr
	}
	if p.NaNEvery > 0 && splitmix64(p.Seed^i^0xc3)%p.NaNEvery == 0 {
		return faultNaN
	}
	if p.DelayEvery > 0 && splitmix64(p.Seed^i^0xd4)%p.DelayEvery == 0 {
		return faultDelay
	}
	return faultNone
}

// Stats are the harness's cumulative injection counters, safe to read
// concurrently with pushes.
type Stats struct {
	Frames uint64 // frames seen (injected-fault frames included)
	Panics uint64
	Errors uint64
	NaNs   uint64
	Delays uint64
}

// Backend wraps any StreamBackend with the plan's fault schedule. Like
// every StreamBackend it is not concurrency-safe; the engine serializes
// pushes per subscription.
type Backend struct {
	inner core.StreamBackend
	plan  Plan

	frame  uint64 // next frame index (atomic: stats may read concurrently)
	panics uint64 // atomic
	errs   uint64 // atomic
	nans   uint64 // atomic
	delays uint64 // atomic
}

// New wraps inner under the plan.
func New(inner core.StreamBackend, plan Plan) *Backend {
	return &Backend{inner: inner, plan: plan}
}

// Kind tags the composition, e.g. "fluxev+chaos".
func (b *Backend) Kind() string { return b.inner.Kind() + "+chaos" }

// Inner returns the wrapped backend.
func (b *Backend) Inner() core.StreamBackend { return b.inner }

// Stats returns the cumulative injection counters.
func (b *Backend) Stats() Stats {
	return Stats{
		Frames: atomic.LoadUint64(&b.frame),
		Panics: atomic.LoadUint64(&b.panics),
		Errors: atomic.LoadUint64(&b.errs),
		NaNs:   atomic.LoadUint64(&b.nans),
		Delays: atomic.LoadUint64(&b.delays),
	}
}

// begin claims the next frame index and resolves its fault class,
// handling the classes that preempt the inner push (panic, error, delay
// runs before it). It reports the class and the frame index.
func (b *Backend) begin() (int, uint64) {
	i := atomic.AddUint64(&b.frame, 1) - 1
	class := b.plan.decide(i)
	switch class {
	case faultPanic:
		atomic.AddUint64(&b.panics, 1)
		panic(PanicValue{Frame: i})
	case faultErr:
		atomic.AddUint64(&b.errs, 1)
	case faultDelay:
		atomic.AddUint64(&b.delays, 1)
		time.Sleep(b.plan.Delay)
	}
	return class, i
}

// Push implements core.StreamBackend under the fault schedule. On panic
// and error frames the inner backend never sees the frame — its time
// cursor simply does not advance, exactly as if the push had died
// mid-flight — so a later clean frame still scores.
func (b *Backend) Push(f core.Frame) ([]core.Alarm, error) {
	class, _ := b.begin()
	if class == faultErr {
		return nil, ErrInjected
	}
	alarms, err := b.inner.Push(f)
	if err != nil {
		return alarms, err
	}
	if class == faultNaN {
		atomic.AddUint64(&b.nans, 1)
		alarms = append(alarms, core.Alarm{Variate: 0, Time: f.Time, Score: math.NaN()})
	}
	return alarms, nil
}

// PushScores implements core.StreamBackend under the fault schedule; NaN
// frames poison score 0 instead of appending an alarm.
func (b *Backend) PushScores(f core.Frame) ([]float64, error) {
	class, _ := b.begin()
	if class == faultErr {
		return nil, ErrInjected
	}
	scores, err := b.inner.PushScores(f)
	if err != nil || scores == nil {
		return scores, err
	}
	if class == faultNaN {
		atomic.AddUint64(&b.nans, 1)
		scores[0] = math.NaN()
	}
	return scores, nil
}

// Variates implements core.StreamBackend.
func (b *Backend) Variates() int { return b.inner.Variates() }

// Ready implements core.StreamBackend.
func (b *Backend) Ready() bool { return b.inner.Ready() }

// LastTime implements core.StreamBackend.
func (b *Backend) LastTime() (float64, bool) { return b.inner.LastTime() }

// Threshold implements core.StreamBackend.
func (b *Backend) Threshold() float64 { return b.inner.Threshold() }

// SwapArtifact implements core.StreamBackend.
func (b *Backend) SwapArtifact(artifact []byte) error { return b.inner.SwapArtifact(artifact) }

// SnapshotState delegates to the inner backend. The frame counter is
// deliberately not persisted: a restored chaos tenant replays its plan
// from frame 0, which keeps snapshot blobs interchangeable with the
// unwrapped backend's and the schedule a pure function of the run.
func (b *Backend) SnapshotState() ([]byte, error) { return b.inner.SnapshotState() }

// RestoreState delegates to the inner backend (see SnapshotState).
func (b *Backend) RestoreState(blob []byte) error { return b.inner.RestoreState(blob) }

var _ core.StreamBackend = (*Backend)(nil)
