package faultinject

import (
	"errors"
	"math"
	"testing"

	"aero/internal/core"
)

// stub is a minimal inner backend: scores every frame 0, never alarms,
// counts pushes.
type stub struct {
	pushes int
	last   float64
	seen   bool
}

func (s *stub) Kind() string              { return "stub" }
func (s *stub) Variates() int             { return 2 }
func (s *stub) Ready() bool               { return true }
func (s *stub) Threshold() float64        { return 1 }
func (s *stub) LastTime() (float64, bool) { return s.last, s.seen }
func (s *stub) SwapArtifact([]byte) error { return nil }
func (s *stub) SnapshotState() ([]byte, error) {
	return []byte{byte(s.pushes)}, nil
}
func (s *stub) RestoreState(b []byte) error {
	s.pushes = int(b[0])
	return nil
}
func (s *stub) PushScores(f core.Frame) ([]float64, error) {
	s.pushes++
	s.last, s.seen = f.Time, true
	return []float64{0, 0}, nil
}
func (s *stub) Push(f core.Frame) ([]core.Alarm, error) {
	if _, err := s.PushScores(f); err != nil {
		return nil, err
	}
	return nil, nil
}

// TestPlanDeterministic pins the harness's core property: the fault
// schedule is a pure function of (seed, frame index).
func TestPlanDeterministic(t *testing.T) {
	p := Plan{Seed: 42, From: 10, Until: 200, PanicEvery: 5, ErrEvery: 7, NaNEvery: 6, DelayEvery: 9}
	var first []int
	for i := uint64(0); i < 300; i++ {
		first = append(first, p.decide(i))
	}
	for i := uint64(0); i < 300; i++ {
		if got := p.decide(i); got != first[i] {
			t.Fatalf("frame %d: decide not deterministic (%d then %d)", i, first[i], got)
		}
	}
	counts := map[int]int{}
	for i := uint64(0); i < 300; i++ {
		counts[first[i]]++
		if first[i] != faultNone && (i < 10 || i >= 200) {
			t.Fatalf("fault %d injected at frame %d, outside [10,200)", first[i], i)
		}
	}
	for _, class := range []int{faultPanic, faultErr, faultNaN, faultDelay} {
		if counts[class] == 0 {
			t.Fatalf("class %d never selected in 300 frames; plan too sparse for its rates", class)
		}
	}
	// A different seed must produce a different schedule.
	q := p
	q.Seed = 43
	same := true
	for i := uint64(0); i < 300; i++ {
		if q.decide(i) != first[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

// TestBackendInjections drives every fault class through Push and checks
// the contract: panics fire at the call boundary (inner never sees the
// frame), errors are ErrInjected, NaN frames append a poisoned alarm,
// and the counters account for every injection.
func TestBackendInjections(t *testing.T) {
	inner := &stub{}
	// One class at a time, on known frames: every frame in [0,N) faults.
	b := New(inner, Plan{Seed: 1, PanicEvery: 1, Until: 2})
	for i := 0; i < 2; i++ {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("frame %d: expected injected panic", i)
				}
				pv, ok := r.(PanicValue)
				if !ok || pv.Frame != uint64(i) {
					t.Fatalf("frame %d: panic value %v", i, r)
				}
			}()
			b.Push(core.Frame{Time: float64(i), Magnitudes: []float64{0, 0}})
		}()
	}
	if inner.pushes != 0 {
		t.Fatalf("inner saw %d pushes through injected panics", inner.pushes)
	}
	// After the chaotic window the frame flows through untouched.
	if _, err := b.Push(core.Frame{Time: 99, Magnitudes: []float64{0, 0}}); err != nil {
		t.Fatal(err)
	}
	if inner.pushes != 1 || inner.last != 99 {
		t.Fatalf("clean frame did not reach inner (pushes %d, last %v)", inner.pushes, inner.last)
	}
	st := b.Stats()
	if st.Frames != 3 || st.Panics != 2 {
		t.Fatalf("stats %+v, want 3 frames / 2 panics", st)
	}

	inner = &stub{}
	b = New(inner, Plan{Seed: 1, ErrEvery: 1, Until: 1})
	if _, err := b.Push(core.Frame{Time: 0, Magnitudes: []float64{0, 0}}); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if inner.pushes != 0 {
		t.Fatal("inner saw an error-injected frame")
	}
	if st := b.Stats(); st.Errors != 1 {
		t.Fatalf("stats %+v, want 1 error", st)
	}

	inner = &stub{}
	b = New(inner, Plan{Seed: 1, NaNEvery: 1, Until: 1})
	alarms, err := b.Push(core.Frame{Time: 0, Magnitudes: []float64{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(alarms) != 1 || !math.IsNaN(alarms[0].Score) {
		t.Fatalf("NaN injection produced alarms %+v, want one NaN-scored alarm", alarms)
	}
	if inner.pushes != 1 {
		t.Fatal("NaN frame must still reach the inner backend")
	}
	scores, err := b.PushScores(core.Frame{Time: 1, Magnitudes: []float64{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(scores[0]) {
		t.Fatal("frame 1 is outside the window; score must be clean")
	}
	if st := b.Stats(); st.NaNs != 1 {
		t.Fatalf("stats %+v, want 1 NaN", st)
	}

	if b.Kind() != "stub+chaos" {
		t.Fatalf("kind %q", b.Kind())
	}
}

// TestBackendSnapshotDelegates pins that chaos wrappers stay transparent
// to the snapshot convention: blobs are the inner backend's own.
func TestBackendSnapshotDelegates(t *testing.T) {
	inner := &stub{pushes: 7}
	b := New(inner, Plan{Seed: 1})
	blob, err := b.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	inner2 := &stub{}
	b2 := New(inner2, Plan{Seed: 1})
	if err := b2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if inner2.pushes != 7 {
		t.Fatalf("restore did not delegate (pushes %d)", inner2.pushes)
	}
}
