// Package alerts is the streaming alert-triage subsystem: it consumes
// the engine's raw fan-in alarm stream across all tenants and reduces it
// to a short, ranked incident feed. At survey scale one atmospheric
// event or instrument artifact fires hundreds of near-duplicate
// threshold alarms; the scientific unit of interest is the *grouped*
// event — which fields brightened, when each onset was, how wide the
// event reached. The pipeline runs four stages in order:
//
//  1. Dedup: a stable Bloom filter over (tenant, variate, time-bucket)
//     keys drops repeat alarms for the same source in the same bucket.
//     Aging keeps the filter stable on unbounded streams (old keys are
//     probabilistically evicted, so it never saturates).
//  2. Episodes: surviving alarms for one (tenant, variate) coalesce into
//     an episode — onset, end, peak score, frame count — which closes
//     when the stream goes quiet for EpisodeGap or the episode exceeds
//     its duration cap.
//  3. Correlation: closed episodes whose onsets fall within Window of
//     each other form one candidate incident — the astronomical
//     cross-match: a real transient hits many fields at once, an
//     artifact hits one. Every finalized incident also feeds per
//     tenant-pair lead-lag histograms ("A leads B by ~N frames").
//  4. Ranking: incident severity is peak score boosted by cluster
//     breadth, with single-tenant incidents demoted as probable
//     artifacts; each Push returns its finalized incidents most-severe
//     first.
//
// The pipeline honors the codebase's streaming contracts: output is a
// pure function of the pushed alarm sequence (no wall clock, no map
// iteration order, no randomness — the golden tests replay a recorded
// sequence and compare incidents exactly), the benign path (duplicate
// drop or episode extension) is allocation-free in steady state, and
// the whole warm state snapshots/restores through the versioned binary
// format so a -checkpoint restart resumes episodes mid-flight.
//
// A Pipeline is safe for concurrent use; every method takes an internal
// lock. Feed it from the engine with Attach, or push alarms directly.
package alerts

import (
	"math"
	"sort"
	"sync"

	"aero/internal/engine"
)

// Config parameterizes the triage pipeline. The zero value is usable:
// every field defaults to a sensible production setting. Time-valued
// fields are in the feed's time units (for GWAC, seconds; one frame
// every ~15 s).
type Config struct {
	// BucketWidth is the dedup time-bucket: repeat alarms for one
	// (tenant, variate) inside one bucket collapse to the first.
	// Defaults to 5.
	BucketWidth float64
	// BloomCells sizes the stable Bloom filter (rounded up to a power of
	// two; one byte per cell). Defaults to 65536.
	BloomCells int
	// BloomHashes is the filter's probes per key. Defaults to 4.
	BloomHashes int
	// BloomAging is the number of cells aged toward zero per insert —
	// the eviction rate that keeps the filter stable. Defaults to 32.
	BloomAging int
	// BloomMax is the cell ceiling; together with BloomAging it sets how
	// long a key stays remembered (≈ cells·max/aging unique inserts).
	// Defaults to 2.
	BloomMax uint8
	// EpisodeGap closes an episode after this much silence. It must
	// exceed BucketWidth (dedup thins an ongoing episode to one
	// surviving alarm per bucket, so a smaller gap would fragment every
	// episode); values not exceeding BucketWidth fall back to the
	// default. Defaults to 3×BucketWidth.
	EpisodeGap float64
	// MaxEpisodeLen caps episode duration; a longer event continues as a
	// fresh episode. The cap bounds how long a candidate incident must
	// stay open, so it is what makes incident emission prompt.
	// Defaults to 40×BucketWidth.
	MaxEpisodeLen float64
	// Window is the cross-tenant correlation span: episodes whose onsets
	// fall within Window of a candidate's first onset join that
	// candidate. Defaults to 2×BucketWidth.
	Window float64
	// MinTenants is the breadth below which an incident is demoted as a
	// probable single-field artifact. Defaults to 2.
	MinTenants int
	// Demotion scales the severity of sub-MinTenants incidents.
	// Defaults to 0.25.
	Demotion float64
}

// DefaultConfig returns the production defaults described on Config.
func DefaultConfig() Config { return Config{}.withDefaults() }

func (c Config) withDefaults() Config {
	if c.BucketWidth <= 0 {
		c.BucketWidth = 5
	}
	if c.BloomCells <= 0 {
		c.BloomCells = 1 << 16
	}
	if c.BloomHashes <= 0 {
		c.BloomHashes = 4
	}
	if c.BloomAging <= 0 {
		c.BloomAging = 32
	}
	if c.BloomMax == 0 {
		c.BloomMax = 2
	}
	if c.EpisodeGap <= c.BucketWidth {
		c.EpisodeGap = 3 * c.BucketWidth
	}
	if c.MaxEpisodeLen <= 0 {
		c.MaxEpisodeLen = 40 * c.BucketWidth
	}
	if c.Window <= 0 {
		c.Window = 2 * c.BucketWidth
	}
	if c.MinTenants <= 0 {
		c.MinTenants = 2
	}
	if c.Demotion <= 0 {
		c.Demotion = 0.25
	}
	return c
}

// Episode is one coalesced run of alarms from a single (tenant, variate)
// source: the paper's per-star threshold crossings reduced to onset,
// extent and peak.
type Episode struct {
	Tenant   string
	Variate  int
	Onset    float64 // time of the first alarm
	End      float64 // time of the last alarm
	Peak     float64 // highest surviving alarm score
	PeakTime float64 // when the peak fired
	Frames   int     // surviving (post-dedup) alarms coalesced
}

// Incident is one ranked triage output: a cluster of episodes whose
// onsets coincide across tenants, with severity derived from cluster
// breadth × peak score. Incidents returned by one Push are ordered
// most-severe first; IDs increase in emission order.
type Incident struct {
	ID      uint64
	Onset   float64 // earliest member onset
	End     float64 // latest member end
	Peak    float64 // highest member peak score
	Tenants int     // distinct tenants reached
	Frames  int     // surviving alarms across all members
	// Severity is Peak × (1 + log2(Tenants)), scaled down by
	// Config.Demotion when breadth is below MinTenants.
	Severity float64
	// Demoted marks a probable artifact: breadth below MinTenants.
	Demoted bool
	// Episodes are the members, sorted by (Onset, Tenant, Variate).
	Episodes []Episode
}

// Stats is a point-in-time snapshot of the pipeline's counters.
type Stats struct {
	// Alarms counts raw alarms pushed in.
	Alarms uint64
	// Deduped counts alarms dropped as same-bucket duplicates.
	Deduped uint64
	// Episodes counts closed episodes.
	Episodes uint64
	// Incidents counts emitted incidents.
	Incidents uint64
	// OpenEpisodes is the number of episodes currently mid-flight.
	OpenEpisodes int
	// PendingIncidents is the number of candidate incidents not yet
	// finalized.
	PendingIncidents int
	// Reduction is the alarm→incident reduction ratio, 1 −
	// Incidents/Alarms (0 until any alarm has arrived).
	Reduction float64
}

// LeadLagStat summarizes one ordered tenant pair's onset-offset
// histogram: across incidents containing both tenants, Lead's onset
// preceded Lag's by ~Offset time units in Share of observations.
type LeadLagStat struct {
	Lead, Lag string
	Offset    float64 // mode histogram bin center, in time units
	Share     float64 // fraction of observations in the mode bin
	Count     uint64  // total observations for the pair
}

// epKey addresses one alarm source.
type epKey struct {
	tenant  string
	variate int
}

// candidate is one incident being assembled: episodes joined by onset
// proximity to the anchor (the first member's onset). It finalizes when
// the watermark passes deadline — the latest time any episode eligible
// to join could still close.
type candidate struct {
	anchor   float64
	deadline float64
	eps      []Episode
}

// pairKey orders one lead-lag tenant pair.
type pairKey struct {
	lead, lag string
}

// lagHist is one pair's onset-offset histogram over [0, 2·Window] —
// two members of one candidate can onset up to Window on either side of
// the anchor, so pair offsets reach twice the window.
type lagHist struct {
	bins  []uint64
	total uint64
}

// leadLagBins is the histogram resolution over [0, 2·Window].
const leadLagBins = 16

// Pipeline is the four-stage triage state machine. Create one with
// NewPipeline, feed it alarms in stream order with Push, and read the
// returned incidents; Finalize flushes everything still in flight.
type Pipeline struct {
	mu  sync.Mutex
	cfg Config

	bloom *stableBloom

	open     map[epKey]*Episode
	openList []*Episode // insertion-ordered view of open; scan order is part of determinism
	epFree   []*Episode

	closed []*Episode // episodes closed by the current Push, pre-correlation

	cands    []*candidate // creation-ordered
	candFree []*candidate

	lags map[pairKey]*lagHist

	watermark    float64 // max alarm time seen
	nextExpiry   float64 // earliest possible episode close; +Inf when none
	nextDeadline float64 // earliest candidate finalize deadline; +Inf when none
	seq          uint64  // next incident ID

	nAlarms    uint64
	nDeduped   uint64
	nEpisodes  uint64
	nIncidents uint64

	out    []Incident    // Push/Finalize result buffer, reused
	tlist  []tenantOnset // emit scratch: per-tenant earliest onset
	seenWM bool          // whether any alarm has arrived (watermark valid)
}

// tenantOnset is emit's scratch entry: one member tenant's first onset.
type tenantOnset struct {
	tenant string
	onset  float64
}

// NewPipeline returns an empty triage pipeline.
func NewPipeline(cfg Config) *Pipeline {
	cfg = cfg.withDefaults()
	return &Pipeline{
		cfg:          cfg,
		bloom:        newStableBloom(cfg.BloomCells, cfg.BloomHashes, cfg.BloomAging, cfg.BloomMax),
		open:         make(map[epKey]*Episode),
		lags:         make(map[pairKey]*lagHist),
		nextExpiry:   math.Inf(1),
		nextDeadline: math.Inf(1),
	}
}

// Config returns the pipeline's resolved configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Push feeds one alarm through dedup → episodes → correlation → ranking
// and returns the incidents finalized by it, most-severe first (usually
// none). The returned slice is reused by the next Push/Finalize; copy
// the incidents to retain them. The benign path — a duplicate drop or an
// in-flight episode extension — allocates nothing in steady state.
//
// Alarms must arrive in per-tenant time order (the engine guarantees
// this); tenants may interleave freely. The pipeline's clock is the
// watermark — the newest alarm time seen across all tenants — so a
// tenant lagging far behind the rest may have a quiet episode closed by
// the others' progress.
func (p *Pipeline) Push(a engine.Alarm) []Incident {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.out = p.out[:0]
	p.nAlarms++
	if !p.seenWM || a.Time > p.watermark {
		p.watermark = a.Time
		p.seenWM = true
	}

	// Stage 1: dedup.
	h := dedupHash(a.Sub, a.Variate, int64(math.Floor(a.Time/p.cfg.BucketWidth)))
	if p.bloom.seen(h) {
		p.nDeduped++
	} else {
		p.bloom.insert(h)
		p.expire() // close overdue episodes before admitting, so a gap-stale episode for this key is gone
		p.admit(a)
	}
	// Benign fast path: closing and finalizing both require the
	// watermark strictly past the deadline, so equality stays here.
	if p.watermark <= p.nextExpiry && p.watermark <= p.nextDeadline && len(p.closed) == 0 {
		return p.out
	}

	// Stages 2–4 on whatever the watermark advanced past.
	p.expire()
	p.correlate()
	p.finalizeDue(false)
	p.rank()
	return p.out
}

// admit opens or extends the episode for the alarm's (tenant, variate).
func (p *Pipeline) admit(a engine.Alarm) {
	k := epKey{a.Sub, a.Variate}
	ep := p.open[k]
	if ep != nil && (a.Time-ep.End > p.cfg.EpisodeGap || a.Time-ep.Onset >= p.cfg.MaxEpisodeLen) {
		// Gap-stale (possible when this tenant itself drives the
		// watermark) or over the duration cap: close and start fresh.
		p.closeEpisode(ep)
		ep = nil
	}
	if ep == nil {
		ep = p.getEpisode()
		*ep = Episode{Tenant: a.Sub, Variate: a.Variate, Onset: a.Time, End: a.Time, Peak: a.Score, PeakTime: a.Time, Frames: 1}
		p.open[k] = ep
		p.openList = append(p.openList, ep)
	} else {
		if a.Time > ep.End {
			ep.End = a.Time
		}
		ep.Frames++
		if a.Score > ep.Peak {
			ep.Peak = a.Score
			ep.PeakTime = a.Time
		}
	}
	if d := ep.End + p.cfg.EpisodeGap; d < p.nextExpiry {
		p.nextExpiry = d
	}
}

// expire closes every open episode the watermark has left behind by more
// than EpisodeGap, preserving openList order (part of the determinism
// contract).
func (p *Pipeline) expire() {
	if p.watermark <= p.nextExpiry { // closing needs watermark strictly past End+Gap
		return
	}
	keep := p.openList[:0]
	next := math.Inf(1)
	for _, ep := range p.openList {
		if p.watermark-ep.End > p.cfg.EpisodeGap {
			delete(p.open, epKey{ep.Tenant, ep.Variate})
			p.closed = append(p.closed, ep)
			continue
		}
		keep = append(keep, ep)
		if d := ep.End + p.cfg.EpisodeGap; d < next {
			next = d
		}
	}
	p.openList = keep
	p.nextExpiry = next
}

// closeEpisode retires one open episode immediately (cap or gap closure
// discovered by admit), keeping openList compact.
func (p *Pipeline) closeEpisode(ep *Episode) {
	delete(p.open, epKey{ep.Tenant, ep.Variate})
	for i, e := range p.openList {
		if e == ep {
			p.openList = append(p.openList[:i], p.openList[i+1:]...)
			break
		}
	}
	p.closed = append(p.closed, ep)
}

// correlate assigns the Push's closed episodes — in canonical (onset,
// tenant, variate) order — to candidate incidents by onset proximity.
func (p *Pipeline) correlate() {
	if len(p.closed) == 0 {
		return
	}
	sortEpisodes(p.closed)
	for _, ep := range p.closed {
		p.nEpisodes++
		var c *candidate
		for _, cand := range p.cands {
			if math.Abs(ep.Onset-cand.anchor) <= p.cfg.Window {
				c = cand
				break
			}
		}
		if c == nil {
			c = p.getCandidate()
			c.anchor = ep.Onset
			// No episode with a joinable onset can still be open once the
			// watermark passes this: a joiner starts by anchor+Window, runs
			// at most MaxEpisodeLen, then needs EpisodeGap of silence to
			// close (plus one gap of slack for the closing scan itself).
			c.deadline = ep.Onset + p.cfg.Window + p.cfg.MaxEpisodeLen + 2*p.cfg.EpisodeGap
			if c.deadline < p.nextDeadline {
				p.nextDeadline = c.deadline
			}
			p.cands = append(p.cands, c)
		}
		c.eps = append(c.eps, *ep)
		p.putEpisode(ep)
	}
	p.closed = p.closed[:0]
}

// finalizeDue emits every candidate whose deadline the watermark has
// passed (or all of them, when flush is set), in creation order.
func (p *Pipeline) finalizeDue(flush bool) {
	keep := p.cands[:0]
	next := math.Inf(1)
	for _, c := range p.cands {
		if flush || p.watermark > c.deadline {
			p.emit(c)
			continue
		}
		keep = append(keep, c)
		if c.deadline < next {
			next = c.deadline
		}
	}
	p.cands = keep
	p.nextDeadline = next
}

// emit turns one candidate into an Incident, updates the lead-lag
// histograms, and recycles the candidate.
func (p *Pipeline) emit(c *candidate) {
	sortEpisodes2(c.eps)
	inc := Incident{
		Onset:    math.Inf(1),
		Episodes: append([]Episode(nil), c.eps...),
	}
	p.tlist = p.tlist[:0]
	for i := range c.eps {
		ep := &c.eps[i]
		if ep.Onset < inc.Onset {
			inc.Onset = ep.Onset
		}
		if ep.End > inc.End {
			inc.End = ep.End
		}
		if ep.Peak > inc.Peak {
			inc.Peak = ep.Peak
		}
		inc.Frames += ep.Frames
		known := false
		for _, t := range p.tlist {
			if t.tenant == ep.Tenant {
				known = true
				break
			}
		}
		if !known {
			p.tlist = append(p.tlist, tenantOnset{ep.Tenant, ep.Onset})
		}
	}
	inc.Tenants = len(p.tlist)
	inc.Severity = inc.Peak * (1 + math.Log2(float64(inc.Tenants)))
	if inc.Tenants < p.cfg.MinTenants {
		inc.Severity *= p.cfg.Demotion
		inc.Demoted = true
	}
	p.recordLeadLag()
	p.out = append(p.out, inc)
	c.eps = c.eps[:0]
	p.candFree = append(p.candFree, c)
}

// recordLeadLag feeds every ordered pair of member tenants' first onsets
// into the pair's offset histogram. tlist is in episode order, i.e.
// sorted by onset (ties broken by tenant name), so the earlier-onset
// tenant of each pair leads.
func (p *Pipeline) recordLeadLag() {
	for i := 0; i < len(p.tlist); i++ {
		for j := i + 1; j < len(p.tlist); j++ {
			lead, lag := p.tlist[i], p.tlist[j]
			d := lag.onset - lead.onset
			if d < 0 { // equal-onset ties keep list order; negatives cannot happen
				lead, lag = lag, lead
				d = -d
			}
			k := pairKey{lead.tenant, lag.tenant}
			h := p.lags[k]
			if h == nil {
				h = &lagHist{bins: make([]uint64, leadLagBins)}
				p.lags[k] = h
			}
			bin := int(d / (2 * p.cfg.Window) * leadLagBins)
			if bin >= leadLagBins {
				bin = leadLagBins - 1
			}
			h.bins[bin]++
			h.total++
		}
	}
}

// rank orders the Push's emitted incidents most-severe first (severity
// desc, then onset asc, then lead episode) and assigns their IDs in that
// order.
func (p *Pipeline) rank() {
	out := p.out
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && incidentLess(&out[j], &out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	for i := range out {
		out[i].ID = p.seq
		p.seq++
	}
	p.nIncidents += uint64(len(out))
}

// incidentLess ranks a before b: higher severity first, then earlier
// onset, then the lexicographically first lead episode.
func incidentLess(a, b *Incident) bool {
	if a.Severity != b.Severity {
		return a.Severity > b.Severity
	}
	if a.Onset != b.Onset {
		return a.Onset < b.Onset
	}
	if len(a.Episodes) > 0 && len(b.Episodes) > 0 {
		return a.Episodes[0].Tenant < b.Episodes[0].Tenant
	}
	return false
}

// Finalize closes every in-flight episode and candidate and returns the
// resulting incidents, most-severe first — the end-of-feed flush. The
// dedup filter, watermark, counters and lead-lag histograms survive, so
// the pipeline remains usable. The returned slice is reused by the next
// Push/Finalize.
//
// Checkpointing deployments snapshot instead of finalizing: a snapshot
// keeps episodes mid-flight so a restart resumes them.
func (p *Pipeline) Finalize() []Incident {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.out = p.out[:0]
	for _, ep := range p.openList {
		delete(p.open, epKey{ep.Tenant, ep.Variate})
		p.closed = append(p.closed, ep)
	}
	p.openList = p.openList[:0]
	p.nextExpiry = math.Inf(1)
	p.correlate()
	p.finalizeDue(true)
	p.rank()
	return p.out
}

// Stats snapshots the pipeline's counters.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Stats{
		Alarms:           p.nAlarms,
		Deduped:          p.nDeduped,
		Episodes:         p.nEpisodes,
		Incidents:        p.nIncidents,
		OpenEpisodes:     len(p.openList),
		PendingIncidents: len(p.cands),
	}
	if s.Alarms > 0 {
		s.Reduction = 1 - float64(s.Incidents)/float64(s.Alarms)
	}
	return s
}

// LeadLag reports every ordered tenant pair observed at least minCount
// times, most-observed first (ties by pair name): Lead's episodes start
// ~Offset time units before Lag's in Share of their co-occurrences.
func (p *Pipeline) LeadLag(minCount uint64) []LeadLagStat {
	p.mu.Lock()
	defer p.mu.Unlock()
	binWidth := 2 * p.cfg.Window / leadLagBins
	var out []LeadLagStat
	for k, h := range p.lags {
		if h.total < minCount || h.total == 0 {
			continue
		}
		mode, best := 0, uint64(0)
		for i, c := range h.bins {
			if c > best {
				mode, best = i, c
			}
		}
		out = append(out, LeadLagStat{
			Lead:   k.lead,
			Lag:    k.lag,
			Offset: (float64(mode) + 0.5) * binWidth,
			Share:  float64(best) / float64(h.total),
			Count:  h.total,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Lead != out[j].Lead {
			return out[i].Lead < out[j].Lead
		}
		return out[i].Lag < out[j].Lag
	})
	return out
}

func (p *Pipeline) getEpisode() *Episode {
	if n := len(p.epFree); n > 0 {
		ep := p.epFree[n-1]
		p.epFree = p.epFree[:n-1]
		return ep
	}
	return new(Episode)
}

func (p *Pipeline) putEpisode(ep *Episode) { p.epFree = append(p.epFree, ep) }

func (p *Pipeline) getCandidate() *candidate {
	if n := len(p.candFree); n > 0 {
		c := p.candFree[n-1]
		p.candFree = p.candFree[:n-1]
		return c
	}
	return new(candidate)
}

// sortEpisodes insertion-sorts a batch of closed episodes into canonical
// (Onset, Tenant, Variate) order. Batches are small; an explicit sort
// keeps the hot path free of sort.Slice's interface allocation.
func sortEpisodes(eps []*Episode) {
	for i := 1; i < len(eps); i++ {
		for j := i; j > 0 && episodeLess(eps[j], eps[j-1]); j-- {
			eps[j], eps[j-1] = eps[j-1], eps[j]
		}
	}
}

// sortEpisodes2 is sortEpisodes over values (candidate members).
func sortEpisodes2(eps []Episode) {
	for i := 1; i < len(eps); i++ {
		for j := i; j > 0 && episodeLess(&eps[j], &eps[j-1]); j-- {
			eps[j], eps[j-1] = eps[j-1], eps[j]
		}
	}
}

func episodeLess(a, b *Episode) bool {
	if a.Onset != b.Onset {
		return a.Onset < b.Onset
	}
	if a.Tenant != b.Tenant {
		return a.Tenant < b.Tenant
	}
	return a.Variate < b.Variate
}
