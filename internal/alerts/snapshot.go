package alerts

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
)

// Triage state snapshots follow the codebase's versioned little-endian
// binary convention (core's "AEROSNAP" detector states): everything the
// pipeline accumulates at runtime, fully validated before any mutation,
// CRC-32 trailer. A -checkpoint restart restores the snapshot and
// resumes episodes mid-flight with bit-identical downstream incidents.
//
//	magic    [8]byte  "AEROTRIA"
//	version  uint32   currently 1
//	cells    uint32   Bloom cell count        ┐
//	hashes   uint32   Bloom probes per key    │ config echo; restore
//	aging    uint32   cells aged per insert   │ rejects a snapshot from
//	max      uint8    cell ceiling            │ a differently-configured
//	bucket   float64  dedup bucket width      │ pipeline (episode and
//	gap      float64  episode gap             │ candidate state is only
//	maxlen   float64  episode duration cap    │ meaningful under the
//	window   float64  correlation window      │ parameters that built it)
//	mintens  uint32   demotion breadth bound  │
//	demotion float64  demotion factor         ┘
//	cursor   uint32   Bloom aging cursor
//	cellbody [cells]uint8
//	seen     uint8    1 iff any alarm has arrived (watermark valid)
//	wm       float64  watermark
//	expiry   float64  next episode-expiry deadline (+Inf when none)
//	seq      uint64   next incident ID
//	counters 4×uint64 alarms, deduped, episodes, incidents
//	open     uint32 + episodes      (openList order — scan order matters)
//	cands    uint32 + candidates    (creation order)
//	lags     uint32 + pair histograms (sorted by pair)
//	crc      uint32   IEEE CRC-32 of every preceding byte
//
// where an episode is tenant(uint16+bytes), variate uint32, onset, end,
// peak, peakTime float64, frames uint32; a candidate is anchor, deadline
// float64 plus its member episodes; a pair histogram is two tenant
// strings, a uint64 total and leadLagBins uint64 bins.
const (
	triageMagic   = "AEROTRIA"
	triageVersion = 1
)

// SnapshotState serializes the pipeline's entire warm state — dedup
// filter, open episodes, pending candidates, lead-lag histograms,
// watermark and counters — into a self-validating binary blob.
func (p *Pipeline) SnapshotState() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	buf := make([]byte, 0, 64+len(p.bloom.cells)+64*(len(p.openList)+len(p.cands))+64*len(p.lags))
	buf = append(buf, triageMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, triageVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.bloom.cells)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.bloom.k))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.bloom.age))
	buf = append(buf, p.bloom.max)
	buf = appendF64(buf, p.cfg.BucketWidth)
	buf = appendF64(buf, p.cfg.EpisodeGap)
	buf = appendF64(buf, p.cfg.MaxEpisodeLen)
	buf = appendF64(buf, p.cfg.Window)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.cfg.MinTenants))
	buf = appendF64(buf, p.cfg.Demotion)
	buf = binary.LittleEndian.AppendUint32(buf, p.bloom.cur)
	buf = append(buf, p.bloom.cells...)
	if p.seenWM {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = appendF64(buf, p.watermark)
	buf = appendF64(buf, p.nextExpiry)
	buf = binary.LittleEndian.AppendUint64(buf, p.seq)
	buf = binary.LittleEndian.AppendUint64(buf, p.nAlarms)
	buf = binary.LittleEndian.AppendUint64(buf, p.nDeduped)
	buf = binary.LittleEndian.AppendUint64(buf, p.nEpisodes)
	buf = binary.LittleEndian.AppendUint64(buf, p.nIncidents)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.openList)))
	for _, ep := range p.openList {
		buf = appendEpisode(buf, ep)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.cands)))
	for _, c := range p.cands {
		buf = appendF64(buf, c.anchor)
		buf = appendF64(buf, c.deadline)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.eps)))
		for i := range c.eps {
			buf = appendEpisode(buf, &c.eps[i])
		}
	}
	pairs := make([]pairKey, 0, len(p.lags))
	for k := range p.lags {
		pairs = append(pairs, k)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].lead != pairs[j].lead {
			return pairs[i].lead < pairs[j].lead
		}
		return pairs[i].lag < pairs[j].lag
	})
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pairs)))
	for _, k := range pairs {
		h := p.lags[k]
		buf = appendString(buf, k.lead)
		buf = appendString(buf, k.lag)
		buf = binary.LittleEndian.AppendUint64(buf, h.total)
		for _, b := range h.bins {
			buf = binary.LittleEndian.AppendUint64(buf, b)
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// RestoreState replaces the pipeline's runtime state with a snapshot
// taken by SnapshotState on an identically-configured pipeline. The blob
// is fully validated (magic, version, dedup-filter geometry, length,
// CRC) before any state is touched: a corrupt or mismatched snapshot
// returns an error and leaves the pipeline exactly as it was.
func (p *Pipeline) RestoreState(blob []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(blob) < len(triageMagic)+8 {
		return fmt.Errorf("alerts: triage state truncated (%d bytes)", len(blob))
	}
	if string(blob[:len(triageMagic)]) != triageMagic {
		return fmt.Errorf("alerts: not a triage state snapshot (bad magic)")
	}
	body, tail := blob[:len(blob)-4], blob[len(blob)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return fmt.Errorf("alerts: triage state checksum mismatch (%08x != %08x)", got, want)
	}
	r := &triageReader{buf: body, off: len(triageMagic)}
	if ver := r.u32(); r.err == nil && ver != triageVersion {
		return fmt.Errorf("alerts: unsupported triage state version %d", ver)
	}
	cells, hashes, aging := int(r.u32()), int(r.u32()), int(r.u32())
	max := r.u8()
	if r.err != nil {
		return r.err
	}
	if cells != len(p.bloom.cells) || hashes != p.bloom.k || aging != p.bloom.age || max != p.bloom.max {
		return fmt.Errorf("alerts: snapshot dedup filter is %d cells/k=%d/age=%d/max=%d, pipeline is %d/%d/%d/%d",
			cells, hashes, aging, max, len(p.bloom.cells), p.bloom.k, p.bloom.age, p.bloom.max)
	}
	// The time-domain parameters must match too: open episodes and
	// candidate deadlines are only meaningful under the bucket/gap/cap/
	// window that built them, and severity under the ranking knobs.
	bucket, gap, maxLen, window := r.f64(), r.f64(), r.f64(), r.f64()
	minTenants := int(r.u32())
	demotion := r.f64()
	if r.err != nil {
		return r.err
	}
	if bucket != p.cfg.BucketWidth || gap != p.cfg.EpisodeGap || maxLen != p.cfg.MaxEpisodeLen ||
		window != p.cfg.Window || minTenants != p.cfg.MinTenants || demotion != p.cfg.Demotion {
		return fmt.Errorf("alerts: snapshot triage config (bucket=%g gap=%g cap=%g window=%g min=%d demote=%g) does not match pipeline (bucket=%g gap=%g cap=%g window=%g min=%d demote=%g)",
			bucket, gap, maxLen, window, minTenants, demotion,
			p.cfg.BucketWidth, p.cfg.EpisodeGap, p.cfg.MaxEpisodeLen, p.cfg.Window, p.cfg.MinTenants, p.cfg.Demotion)
	}
	cursor := r.u32()
	cellBody := r.take(cells)
	seen := r.u8()
	wm := r.f64()
	expiry := r.f64()
	seq := r.u64()
	nAlarms, nDeduped, nEpisodes, nIncidents := r.u64(), r.u64(), r.u64(), r.u64()

	nOpen := int(r.u32())
	if r.err == nil && nOpen > r.remaining() {
		return fmt.Errorf("alerts: triage state claims %d open episodes in %d bytes", nOpen, r.remaining())
	}
	openList := make([]*Episode, 0, nOpen)
	openMap := make(map[epKey]*Episode, nOpen)
	for i := 0; i < nOpen && r.err == nil; i++ {
		ep := new(Episode)
		r.episode(ep)
		k := epKey{ep.Tenant, ep.Variate}
		if _, dup := openMap[k]; dup && r.err == nil {
			return fmt.Errorf("alerts: triage state repeats open episode %s/%d", ep.Tenant, ep.Variate)
		}
		openList = append(openList, ep)
		openMap[k] = ep
	}

	nCands := int(r.u32())
	if r.err == nil && nCands > r.remaining() {
		return fmt.Errorf("alerts: triage state claims %d candidates in %d bytes", nCands, r.remaining())
	}
	cands := make([]*candidate, 0, nCands)
	for i := 0; i < nCands && r.err == nil; i++ {
		c := &candidate{anchor: r.f64(), deadline: r.f64()}
		nEps := int(r.u32())
		if r.err == nil && nEps > r.remaining() {
			return fmt.Errorf("alerts: triage state claims %d member episodes in %d bytes", nEps, r.remaining())
		}
		for j := 0; j < nEps && r.err == nil; j++ {
			var ep Episode
			r.episode(&ep)
			c.eps = append(c.eps, ep)
		}
		cands = append(cands, c)
	}

	nPairs := int(r.u32())
	if r.err == nil && nPairs > r.remaining() {
		return fmt.Errorf("alerts: triage state claims %d lead-lag pairs in %d bytes", nPairs, r.remaining())
	}
	lags := make(map[pairKey]*lagHist, nPairs)
	for i := 0; i < nPairs && r.err == nil; i++ {
		k := pairKey{lead: r.str(), lag: r.str()}
		h := &lagHist{total: r.u64(), bins: make([]uint64, leadLagBins)}
		for b := range h.bins {
			h.bins[b] = r.u64()
		}
		lags[k] = h
	}
	if r.err != nil {
		return r.err
	}
	if r.off != len(body) {
		return fmt.Errorf("alerts: triage state has %d trailing bytes", len(body)-r.off)
	}

	// Everything validated; commit.
	p.bloom.cur = cursor
	copy(p.bloom.cells, cellBody)
	p.seenWM = seen == 1
	p.watermark = wm
	p.nextExpiry = expiry
	p.seq = seq
	p.nAlarms, p.nDeduped, p.nEpisodes, p.nIncidents = nAlarms, nDeduped, nEpisodes, nIncidents
	p.openList = openList
	p.open = openMap
	p.cands = cands
	p.nextDeadline = math.Inf(1)
	for _, c := range cands {
		if c.deadline < p.nextDeadline {
			p.nextDeadline = c.deadline
		}
	}
	p.lags = lags
	p.closed = p.closed[:0]
	p.out = p.out[:0]
	return nil
}

func appendF64(buf []byte, x float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func appendEpisode(buf []byte, ep *Episode) []byte {
	buf = appendString(buf, ep.Tenant)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ep.Variate))
	buf = appendF64(buf, ep.Onset)
	buf = appendF64(buf, ep.End)
	buf = appendF64(buf, ep.Peak)
	buf = appendF64(buf, ep.PeakTime)
	return binary.LittleEndian.AppendUint32(buf, uint32(ep.Frames))
}

// triageReader is a bounds-checked cursor over a snapshot body: the
// first out-of-range read latches err and every later read returns zero
// values.
type triageReader struct {
	buf []byte
	off int
	err error
}

func (r *triageReader) remaining() int { return len(r.buf) - r.off }

func (r *triageReader) take(k int) []byte {
	if r.err != nil {
		return nil
	}
	if k < 0 || r.off+k > len(r.buf) {
		r.err = fmt.Errorf("alerts: triage state truncated at byte %d", len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+k]
	r.off += k
	return b
}

func (r *triageReader) u8() uint8 {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (r *triageReader) u16() uint16 {
	if b := r.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (r *triageReader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *triageReader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (r *triageReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *triageReader) str() string {
	n := int(r.u16())
	if b := r.take(n); b != nil {
		return string(b)
	}
	return ""
}

func (r *triageReader) episode(ep *Episode) {
	ep.Tenant = r.str()
	ep.Variate = int(r.u32())
	ep.Onset = r.f64()
	ep.End = r.f64()
	ep.Peak = r.f64()
	ep.PeakTime = r.f64()
	ep.Frames = int(r.u32())
}
