package alerts

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"aero/internal/core"
	"aero/internal/engine"
)

// testConfig is the shared test profile: 5-unit dedup buckets, 15-unit
// episode gap, 10-unit correlation window, 200-unit episode cap.
func testConfig() Config {
	return Config{
		BucketWidth:   5,
		EpisodeGap:    15,
		MaxEpisodeLen: 200,
		Window:        10,
	}
}

func alarm(sub string, variate int, t, score float64) engine.Alarm {
	return engine.Alarm{Sub: sub, Alarm: core.Alarm{Variate: variate, Time: t, Score: score}}
}

// recordedSequence builds the deterministic multi-tenant alarm flood the
// golden and reduction tests replay: per-frame alarms over 1000 frames
// across 8 tenants, with
//
//   - bursty single-tenant background: every 50 frames one tenant's one
//     variate fires for 12 consecutive frames at score ≈1.5 (instrument
//     noise — each burst should triage to one demoted incident);
//   - one injected cross-tenant event: frames 500–559, variate 2 of
//     tenants 0–5, ramping to a peak of ≈9.5 near frame 530, with
//     tenant i's onset lagging 2i frames (the transient sweeping across
//     fields — should triage to the single top-ranked incident and feed
//     the lead-lag histograms);
//   - a single-tenant artifact: frames 300–329, tenant 6 variate 5 at
//     score 4 (should rank below the event via breadth demotion).
func recordedSequence() []engine.Alarm {
	var seq []engine.Alarm
	tenant := func(i int) string { return fmt.Sprintf("field-%d", i) }
	for t := 0; t < 1000; t++ {
		ft := float64(t)
		// Background bursts.
		burst := t / 50
		if t%50 < 12 {
			seq = append(seq, alarm(tenant(burst%8), (burst*3)%6, ft, 1.5+0.01*float64(t%12)))
		}
		// Injected cross-tenant event.
		if t >= 500 && t < 560 {
			for i := 0; i < 6; i++ {
				onset := 500 + 2*i
				if t >= onset {
					score := 9.5 - 0.1*math.Abs(float64(t)-530)
					seq = append(seq, alarm(tenant(i), 2, ft, score))
				}
			}
		}
		// Single-tenant artifact.
		if t >= 300 && t < 330 {
			seq = append(seq, alarm(tenant(6), 5, ft, 4.0))
		}
	}
	return seq
}

// feed replays a slice of the sequence, collecting copies of every
// emitted incident.
func feed(p *Pipeline, seq []engine.Alarm) []Incident {
	var out []Incident
	for _, a := range seq {
		for _, inc := range p.Push(a) {
			inc.Episodes = append([]Episode(nil), inc.Episodes...)
			out = append(out, inc)
		}
	}
	return out
}

// renderIncidents formats an incident list for exact comparison.
func renderIncidents(incs []Incident) string {
	var b strings.Builder
	for _, inc := range incs {
		fmt.Fprintf(&b, "#%d onset=%.3f end=%.3f peak=%.6f tenants=%d frames=%d sev=%.6f demoted=%v\n",
			inc.ID, inc.Onset, inc.End, inc.Peak, inc.Tenants, inc.Frames, inc.Severity, inc.Demoted)
		for _, ep := range inc.Episodes {
			fmt.Fprintf(&b, "  %s/%d [%.3f,%.3f] peak=%.6f@%.3f frames=%d\n",
				ep.Tenant, ep.Variate, ep.Onset, ep.End, ep.Peak, ep.PeakTime, ep.Frames)
		}
	}
	return b.String()
}

// runRecorded replays the full recorded sequence plus the end-of-feed
// flush through a fresh pipeline and returns the rendered incident list.
func runRecorded(p *Pipeline) string {
	incs := feed(p, recordedSequence())
	for _, inc := range p.Finalize() {
		inc.Episodes = append([]Episode(nil), inc.Episodes...)
		incs = append(incs, inc)
	}
	return renderIncidents(incs)
}

// TestTriageGoldenDeterminism is the pipeline's determinism contract:
// replaying the recorded multi-tenant alarm sequence through two fresh
// pipelines yields byte-identical incident lists.
func TestTriageGoldenDeterminism(t *testing.T) {
	a := runRecorded(NewPipeline(testConfig()))
	b := runRecorded(NewPipeline(testConfig()))
	if a != b {
		t.Fatalf("two replays of the same alarm sequence diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	if a == "" {
		t.Fatal("recorded sequence produced no incidents; determinism test is vacuous")
	}
}

// TestTriageSnapshotBoundaryDeterminism replays the recorded sequence
// with a snapshot/restore boundary in the middle — while episodes and
// candidates are mid-flight — and requires the concatenated incident
// list to be byte-identical to the uninterrupted run.
func TestTriageSnapshotBoundaryDeterminism(t *testing.T) {
	want := runRecorded(NewPipeline(testConfig()))

	seq := recordedSequence()
	cut := 0
	for i, a := range seq {
		if a.Time >= 520 { // mid-event: the cross-tenant episodes are open
			cut = i
			break
		}
	}
	p1 := NewPipeline(testConfig())
	incs := feed(p1, seq[:cut])
	if st := p1.Stats(); st.OpenEpisodes == 0 {
		t.Fatal("cut point left no episodes mid-flight; boundary test is vacuous")
	}
	blob, err := p1.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	p2 := NewPipeline(testConfig())
	if err := p2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	incs = append(incs, feed(p2, seq[cut:])...)
	for _, inc := range p2.Finalize() {
		inc.Episodes = append([]Episode(nil), inc.Episodes...)
		incs = append(incs, inc)
	}
	if got := renderIncidents(incs); got != want {
		t.Fatalf("snapshot/restore boundary changed the incident list:\n--- uninterrupted ---\n%s\n--- with boundary ---\n%s", want, got)
	}
}

// TestTriageFloodReductionAndRanking is the triage payoff contract on
// the recorded flood: ≥90%% alarm→incident reduction, the injected
// cross-tenant event recovered as the top-ranked incident, and breadth
// demotion applied to the single-tenant artifact.
func TestTriageFloodReductionAndRanking(t *testing.T) {
	p := NewPipeline(testConfig())
	incs := feed(p, recordedSequence())
	incs = append(incs, p.Finalize()...)
	st := p.Stats()
	if st.Alarms == 0 || st.Incidents == 0 {
		t.Fatalf("vacuous flood: %+v", st)
	}
	if st.Reduction < 0.9 {
		t.Fatalf("alarm→incident reduction %.3f (%d alarms → %d incidents), want ≥ 0.90",
			st.Reduction, st.Alarms, st.Incidents)
	}
	if st.Deduped == 0 {
		t.Fatal("dedup stage dropped nothing on a per-frame flood")
	}

	top := incs[0]
	for _, inc := range incs[1:] {
		if inc.Severity > top.Severity {
			top = inc
		}
	}
	if top.Tenants != 6 || top.Onset != 500 {
		t.Fatalf("top incident is %+v, want the injected event (6 tenants, onset 500)", top)
	}
	if math.Abs(top.Peak-9.5) > 0.11 {
		t.Fatalf("top incident peak %.3f, want ≈9.5", top.Peak)
	}
	if top.Demoted {
		t.Fatal("cross-tenant event demoted")
	}

	// The artifact burst must exist and rank strictly below the event.
	foundArtifact := false
	for _, inc := range incs {
		if inc.Tenants == 1 && inc.Onset == 300 {
			foundArtifact = true
			if !inc.Demoted {
				t.Fatalf("single-tenant artifact not demoted: %+v", inc)
			}
			if inc.Severity >= top.Severity {
				t.Fatalf("artifact severity %.3f outranks event %.3f", inc.Severity, top.Severity)
			}
		}
	}
	if !foundArtifact {
		t.Fatal("artifact burst produced no incident")
	}
}

// TestTriageLeadLag checks the lead-lag histograms recover the injected
// event's onset ordering: field-0's episodes start before field-5's by
// ~10 time units (tenant i lags 2i frames).
func TestTriageLeadLag(t *testing.T) {
	p := NewPipeline(testConfig())
	feed(p, recordedSequence())
	p.Finalize()
	stats := p.LeadLag(1)
	if len(stats) == 0 {
		t.Fatal("no lead-lag pairs recorded")
	}
	found := false
	for _, s := range stats {
		if s.Lead == "field-0" && s.Lag == "field-5" {
			found = true
			if s.Offset < 7.5 || s.Offset > 12.5 {
				t.Fatalf("field-0→field-5 offset %.2f, want ≈10", s.Offset)
			}
			if s.Share <= 0 || s.Count == 0 {
				t.Fatalf("degenerate lead-lag stat %+v", s)
			}
		}
		if s.Lead == "field-5" && s.Lag == "field-0" {
			t.Fatalf("lead-lag direction inverted: %+v", s)
		}
	}
	if !found {
		t.Fatalf("no field-0 leads field-5 entry in %+v", stats)
	}
}

// TestTriageEpisodeCoalescing pins the episode stage's bookkeeping on a
// hand-built run: consecutive buckets coalesce, a gap splits, peak and
// extent are tracked, and the duration cap forces a split.
func TestTriageEpisodeCoalescing(t *testing.T) {
	p := NewPipeline(testConfig())
	// One run: alarms at t=0,5,10 (new bucket each), peak in the middle.
	p.Push(alarm("a", 0, 0, 2))
	p.Push(alarm("a", 0, 5, 7))
	p.Push(alarm("a", 0, 10, 3))
	// Silence until t=100 (> gap) closes it; the next alarm opens run 2.
	p.Push(alarm("a", 0, 100, 1))
	incs := append([]Incident(nil), p.Finalize()...)
	if len(incs) != 2 {
		t.Fatalf("got %d incidents, want 2 (gap split): %s", len(incs), renderIncidents(incs))
	}
	first := incs[0]
	if len(first.Episodes) != 1 {
		t.Fatalf("first incident has %d episodes, want 1", len(first.Episodes))
	}
	ep := first.Episodes[0]
	if ep.Onset != 0 || ep.End != 10 || ep.Peak != 7 || ep.PeakTime != 5 || ep.Frames != 3 {
		t.Fatalf("episode bookkeeping wrong: %+v", ep)
	}

	// Duration cap: alarms every 5 units for 300 units must split at the
	// 200-unit cap.
	p2 := NewPipeline(testConfig())
	var got []Incident
	for ti := 0.0; ti <= 300; ti += 5 {
		got = append(got, p2.Push(alarm("b", 1, ti, 1))...)
	}
	got = append(got, p2.Finalize()...)
	total := 0
	for _, inc := range got {
		total += len(inc.Episodes)
	}
	if total != 2 {
		t.Fatalf("capped run produced %d episodes, want 2 (split at MaxEpisodeLen)", total)
	}
}

// TestTriageDedup pins the dedup stage: same-bucket repeats drop, and
// the stable filter's aging eventually readmits an old key.
func TestTriageDedup(t *testing.T) {
	cfg := testConfig()
	cfg.BloomCells = 256 // tiny filter so aging is observable
	cfg.BloomAging = 8
	p := NewPipeline(cfg)
	p.Push(alarm("a", 0, 0, 1))
	p.Push(alarm("a", 0, 1, 1)) // same bucket → duplicate
	p.Push(alarm("a", 0, 2, 1)) // same bucket → duplicate
	if st := p.Stats(); st.Deduped != 2 || st.Alarms != 3 {
		t.Fatalf("dedup stats %+v, want 2 deduped of 3", st)
	}
	// Flood the tiny filter with unique keys; the original key must age
	// out (its cells decay) so a later repeat is readmitted.
	for i := 0; i < 500; i++ {
		p.Push(alarm("flood", i, 3, 1))
	}
	before := p.Stats().Deduped
	p.Push(alarm("a", 0, 4, 1)) // same bucket as t=0..4 alarms
	if st := p.Stats(); st.Deduped != before {
		t.Fatal("aged-out key still treated as duplicate; filter is not stable")
	}
}

// TestTriagePushAllocs pins the benign path's allocation budget at zero:
// a warm pipeline absorbing duplicate drops and episode extensions — the
// overwhelmingly common cases during an alarm burst — must not allocate.
func TestTriagePushAllocs(t *testing.T) {
	cfg := testConfig()
	cfg.MaxEpisodeLen = math.MaxFloat64 / 4 // keep extensions benign for the whole run
	p := NewPipeline(cfg)
	const tenants = 8
	ids := [tenants]string{}
	for i := range ids {
		ids[i] = fmt.Sprintf("field-%d", i)
	}
	ti := 0
	extend := func() {
		ft := float64(ti * 5) // one bucket per round: every push survives dedup
		for i := 0; i < tenants; i++ {
			if got := p.Push(alarm(ids[i], 0, ft, 1)); len(got) != 0 {
				t.Fatalf("benign extension emitted %d incidents", len(got))
			}
		}
		ti++
	}
	for i := 0; i < 64; i++ {
		extend() // warm: episodes open, pools primed
	}
	if allocs := testing.AllocsPerRun(64, extend); allocs != 0 {
		t.Fatalf("episode-extension push allocated %.1f times, want 0", allocs)
	}
	dup := func() {
		ft := float64((ti - 1) * 5) // same bucket as the last extension round
		for i := 0; i < tenants; i++ {
			if got := p.Push(alarm(ids[i], 0, ft, 1)); len(got) != 0 {
				t.Fatalf("duplicate push emitted %d incidents", len(got))
			}
		}
	}
	if allocs := testing.AllocsPerRun(64, dup); allocs != 0 {
		t.Fatalf("duplicate-drop push allocated %.1f times, want 0", allocs)
	}
}

// TestTriageStatsAndReuse covers the remaining surface: stats coherence
// and that a pipeline stays usable after Finalize.
func TestTriageStatsAndReuse(t *testing.T) {
	p := NewPipeline(testConfig())
	feed(p, recordedSequence())
	p.Finalize()
	st := p.Stats()
	if st.OpenEpisodes != 0 || st.PendingIncidents != 0 {
		t.Fatalf("finalized pipeline still has in-flight state: %+v", st)
	}
	if st.Reduction <= 0 || st.Reduction >= 1 {
		t.Fatalf("implausible reduction %.3f", st.Reduction)
	}
	// Reuse after Finalize: a fresh burst still triages.
	p.Push(alarm("x", 0, 5000, 2))
	p.Push(alarm("y", 0, 5001, 3))
	incs := p.Finalize()
	if len(incs) != 1 || incs[0].Tenants != 2 {
		t.Fatalf("post-Finalize reuse broken: %s", renderIncidents(incs))
	}
	if incs[0].ID == 0 {
		t.Fatal("incident IDs restarted after Finalize")
	}
}
