package alerts

// stableBloom is a stable Bloom filter (Deng & Rafiei, SIGMOD 2006) over
// dedup keys: a fixed array of small counters ("cells") in which every
// insert first *ages* a constant number of cells back toward zero and
// then sets the key's k cells to the ceiling. Aging is what makes the
// filter stable: on an unbounded stream the fraction of nonzero cells
// converges to a constant below one, so the filter never saturates and
// old keys are probabilistically evicted — exactly the semantics alarm
// dedup wants, where "have I seen this (tenant, variate, bucket)?" only
// needs to be remembered for the recent past.
//
// The textbook filter ages cells chosen at random. This one ages cells
// selected by a rolling cursor advanced with an odd stride modulo the
// power-of-two cell count, which visits every cell with the same
// long-run frequency as uniform sampling but keeps the pipeline's
// determinism contract: a fixed alarm sequence always produces the same
// dedup decisions, and the cursor is part of the triage snapshot so a
// restored pipeline resumes bit-identically.
//
// At the defaults (64 Ki cells, k=4, 32 aged per insert, ceiling 2) the
// stationary wrongly-deduped (false-positive) probability is ≈0.2%, and
// a key stays remembered for ≈ cells·max/aging = 4096 subsequent unique
// inserts; see DESIGN.md for the bound.
type stableBloom struct {
	cells []uint8
	mask  uint32
	k     int   // hash probes per key
	age   int   // cells decremented per insert
	max   uint8 // cell ceiling
	cur   uint32
}

// bloomStride is the cursor advance per aged cell. Any odd constant
// cycles a power-of-two cell array uniformly; this one (the golden-ratio
// multiplier) also decorrelates the visit order from the probe order.
const bloomStride = 0x9e3779b1

func newStableBloom(cells, k, age int, max uint8) *stableBloom {
	n := 1
	for n < cells {
		n <<= 1
	}
	return &stableBloom{cells: make([]uint8, n), mask: uint32(n - 1), k: k, age: age, max: max}
}

// seen reports whether all of the key's cells are nonzero — the key was
// inserted recently enough that aging has not evicted it.
func (b *stableBloom) seen(h uint64) bool {
	h1, h2 := uint32(h), uint32(h>>32)|1
	for i := 0; i < b.k; i++ {
		if b.cells[(h1+uint32(i)*h2)&b.mask] == 0 {
			return false
		}
	}
	return true
}

// insert ages `age` cursor-selected cells, then sets the key's cells to
// the ceiling.
func (b *stableBloom) insert(h uint64) {
	for i := 0; i < b.age; i++ {
		b.cur = (b.cur + bloomStride) & b.mask
		if c := b.cells[b.cur]; c > 0 {
			b.cells[b.cur] = c - 1
		}
	}
	h1, h2 := uint32(h), uint32(h>>32)|1
	for i := 0; i < b.k; i++ {
		b.cells[(h1+uint32(i)*h2)&b.mask] = b.max
	}
}

// dedupHash hashes one dedup key (tenant, variate, time bucket) to the
// 64 bits the filter's double hashing splits into its probe sequence:
// FNV-1a over the tenant id mixed with the integers, then a final
// avalanche so bucket increments flip high bits too.
func dedupHash(tenant string, variate int, bucket int64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(tenant); i++ {
		h = (h ^ uint64(tenant[i])) * prime
	}
	h = (h ^ uint64(uint32(variate))) * prime
	h = (h ^ uint64(bucket)) * prime
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
