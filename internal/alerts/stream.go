package alerts

import (
	"aero/internal/engine"
	"aero/internal/metrics"
)

// Stream is a triage pipeline attached to a live engine: the engine's
// alarm tap pushes every alarm through the pipeline, and finalized
// incidents flow out on the Incidents channel. Create one with Attach.
type Stream struct {
	p         *Pipeline
	incidents chan Incident
}

// Attach installs a triage pipeline as the engine's alarm consumer (via
// Engine.Tap — the stream owns the Alarms channel from here on) and
// returns its incident feed. buffer sizes the Incidents channel
// (defaulting to 256); a slow incident consumer backpressures the alarm
// tap and, transitively, the engine, so nothing is dropped.
//
// The Incidents channel closes once Engine.Close has drained every
// alarm. Episodes still in flight at that point are deliberately NOT
// auto-finalized: a checkpointing deployment snapshots them
// (SnapshotState) so a restart resumes mid-episode, and an end-of-feed
// report calls Finalize explicitly.
func Attach(e *engine.Engine, cfg Config, buffer int) (*Stream, error) {
	return AttachObserved(e, cfg, buffer, nil)
}

// AttachObserved is Attach with an optional metrics registry: when reg is
// non-nil, each alarm's triage push (dedup, episode assembly, ranking) is
// timed into aero_triage_push_seconds and finalized incidents are counted.
// The stamp pair lives in the tap callback, outside the pipeline's own
// locks, so an unobserved stream pays nothing.
func AttachObserved(e *engine.Engine, cfg Config, buffer int, reg *metrics.Registry) (*Stream, error) {
	if buffer <= 0 {
		buffer = 256
	}
	s := &Stream{p: NewPipeline(cfg), incidents: make(chan Incident, buffer)}
	push := reg.Histogram("aero_triage_push_seconds", "Triage pipeline push: dedup, episode assembly, ranking for one alarm.")
	incidents := reg.Counter("aero_triage_incidents_total", "Incidents finalized by the triage pipeline.")
	err := e.Tap(func(a engine.Alarm) {
		var t0 int64
		if push != nil {
			t0 = metrics.Now()
		}
		incs := s.p.Push(a)
		if push != nil {
			push.Record(metrics.Now() - t0)
			incidents.Add(uint64(len(incs)))
		}
		for _, inc := range incs {
			s.incidents <- inc
		}
	}, func() { close(s.incidents) })
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Incidents returns the ranked incident feed. Consume it continuously;
// it closes after Engine.Close drains the alarm stream.
func (s *Stream) Incidents() <-chan Incident { return s.incidents }

// Pipeline returns the underlying pipeline for stats, lead-lag reports,
// snapshot/restore and the end-of-feed Finalize. All pipeline methods
// are safe to call while alarms flow.
func (s *Stream) Pipeline() *Pipeline { return s.p }
