package alerts

import (
	"strings"
	"testing"
)

// warmPipeline feeds enough of the recorded sequence to leave episodes,
// candidates and lead-lag history in flight.
func warmPipeline(t *testing.T) *Pipeline {
	t.Helper()
	p := NewPipeline(testConfig())
	seq := recordedSequence()
	for _, a := range seq {
		if a.Time >= 540 {
			break
		}
		p.Push(a)
	}
	st := p.Stats()
	if st.OpenEpisodes == 0 || st.Incidents == 0 {
		t.Fatalf("warm pipeline not representative: %+v", st)
	}
	return p
}

// TestTriageSnapshotRoundTrip checks a restored pipeline reports the
// same counters and produces an identical second snapshot.
func TestTriageSnapshotRoundTrip(t *testing.T) {
	p := warmPipeline(t)
	blob, err := p.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	q := NewPipeline(testConfig())
	if err := q.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if got, want := q.Stats(), p.Stats(); got != want {
		t.Fatalf("restored stats %+v != %+v", got, want)
	}
	blob2, err := q.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatal("snapshot → restore → snapshot is not idempotent")
	}
}

// TestTriageSnapshotValidation proves a corrupt, truncated or mismatched
// snapshot is rejected before any pipeline state is touched.
func TestTriageSnapshotValidation(t *testing.T) {
	p := warmPipeline(t)
	blob, err := p.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}

	fresh := func() *Pipeline { return NewPipeline(testConfig()) }
	intact := func(t *testing.T, q *Pipeline) {
		t.Helper()
		if st := q.Stats(); st.Alarms != 0 || st.OpenEpisodes != 0 {
			t.Fatalf("failed restore mutated the pipeline: %+v", st)
		}
	}

	t.Run("bit flip", func(t *testing.T) {
		for _, off := range []int{4, len(blob) / 2, len(blob) - 8} {
			bad := append([]byte(nil), blob...)
			bad[off] ^= 0x40
			q := fresh()
			if err := q.RestoreState(bad); err == nil {
				t.Fatalf("accepted snapshot with bit flip at %d", off)
			}
			intact(t, q)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 7, len(blob) / 3, len(blob) - 1} {
			q := fresh()
			if err := q.RestoreState(blob[:n]); err == nil {
				t.Fatalf("accepted snapshot truncated to %d bytes", n)
			}
			intact(t, q)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		copy(bad, "NOTTRIAG")
		q := fresh()
		if err := q.RestoreState(bad); err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("bad magic: %v", err)
		}
		intact(t, q)
	})
	t.Run("geometry mismatch", func(t *testing.T) {
		cfg := testConfig()
		cfg.BloomCells = 1 << 10
		q := NewPipeline(cfg)
		if err := q.RestoreState(blob); err == nil || !strings.Contains(err.Error(), "filter") {
			t.Fatalf("geometry mismatch: %v", err)
		}
	})
	t.Run("config mismatch", func(t *testing.T) {
		// Episode and candidate state is only meaningful under the
		// time-domain parameters that built it.
		cfg := testConfig()
		cfg.Window = 25
		q := NewPipeline(cfg)
		if err := q.RestoreState(blob); err == nil || !strings.Contains(err.Error(), "config") {
			t.Fatalf("config mismatch: %v", err)
		}
		intact(t, q)
	})
	t.Run("good restore still works after rejects", func(t *testing.T) {
		q := fresh()
		for _, n := range []int{9, 40} {
			_ = q.RestoreState(blob[:n])
		}
		if err := q.RestoreState(blob); err != nil {
			t.Fatal(err)
		}
	})
}
