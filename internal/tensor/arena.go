package tensor

// Arena is a positional scratch allocator for Dense buffers. It serves
// repeated executions of the *same* computation: the first pass allocates,
// every later pass (after Reset) re-hands out the identical buffers in call
// order, so a fixed-shape forward pass becomes allocation-free in steady
// state. Shapes may differ between passes; a buffer is regrown only when
// the requested element count exceeds its capacity.
//
// An Arena is not safe for concurrent use; give each goroutine its own.
type Arena struct {
	bufs []*Dense
	pos  int
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Get returns a zeroed r×c buffer, reusing the allocation handed out at the
// same position of the previous pass when it is large enough. The buffer is
// valid until the next Reset.
func (a *Arena) Get(r, c int) *Dense {
	need := r * c
	if a.pos < len(a.bufs) {
		d := a.bufs[a.pos]
		a.pos++
		if cap(d.Data) >= need {
			d.Rows, d.Cols, d.Data = r, c, d.Data[:need]
			clear(d.Data)
			return d
		}
		nd := New(r, c)
		a.bufs[a.pos-1] = nd
		return nd
	}
	d := New(r, c)
	a.bufs = append(a.bufs, d)
	a.pos++
	return d
}

// Reset rewinds the arena so the next pass reuses all buffers. Every Dense
// previously returned by Get is invalidated.
func (a *Arena) Reset() { a.pos = 0 }

// Len reports how many buffers the arena currently owns (useful in tests).
func (a *Arena) Len() int { return len(a.bufs) }
