package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewShapeAndZero(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape %dx%d len=%d", m.Rows, m.Cols, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New must zero-initialize")
		}
	}
}

func TestFromSliceAndAt(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.At(0, 2) != 3 || m.At(1, 0) != 4 {
		t.Fatalf("At wrong: %v %v", m.At(0, 2), m.At(1, 0))
	}
	m.Set(1, 1, 9)
	if m.At(1, 1) != 9 {
		t.Fatal("Set failed")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatal("FromRows layout wrong")
	}
}

func TestEyeAndMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(4, 4, 1, rng)
	i4 := Eye(4)
	if !Equal(a.MatMul(i4), a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if !Equal(i4.MatMul(a), a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := a.MatMul(b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !Equal(c, want, 1e-12) {
		t.Fatalf("matmul got %v want %v", c.Data, want.Data)
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	New(2, 3).MatMul(New(2, 2))
}

func TestMatMulTransposedVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Randn(5, 7, 1, rng)
	b := Randn(4, 7, 1, rng)
	// a·bᵀ via dedicated kernel vs explicit transpose
	if !Equal(a.MatMulT(b), a.MatMul(b.T()), 1e-10) {
		t.Fatal("MatMulT mismatch")
	}
	c := Randn(5, 3, 1, rng)
	if !Equal(a.TMatMul(c), a.T().MatMul(c), 1e-10) {
		t.Fatal("TMatMul mismatch")
	}
}

func TestParallelMatMulMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Big enough to cross parallelThreshold.
	a := Randn(128, 96, 1, rng)
	b := Randn(96, 80, 1, rng)
	got := a.MatMul(b)
	want := New(128, 80)
	matMulRange(a, b, want, 0, a.Rows)
	if !Equal(got, want, 1e-10) {
		t.Fatal("parallel matmul differs from serial")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		a := Randn(r, c, 1, rng)
		return Equal(a.T().T(), a, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulTransposeIdentityProperty(t *testing.T) {
	// (A·B)ᵀ == Bᵀ·Aᵀ
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := Randn(m, k, 1, rng)
		b := Randn(k, n, 1, rng)
		return Equal(a.MatMul(b).T(), b.T().MatMul(a.T()), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubScaleAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(5), 1+rng.Intn(5)
		a := Randn(r, c, 1, rng)
		b := Randn(r, c, 1, rng)
		// (a+b)-b == a ; 2a == a+a
		if !Equal(a.Add(b).Sub(b), a, 1e-12) {
			return false
		}
		return Equal(a.Scale(2), a.Add(a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDotMatchesMulElemSum(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := Randn(3, 4, 1, rng)
	b := Randn(3, 4, 1, rng)
	if !almostEq(a.Dot(b), a.MulElem(b).Sum(), 1e-12) {
		t.Fatal("dot != sum(mulelem)")
	}
}

func TestSliceAndConcatRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := Randn(4, 6, 1, rng)
	left := a.SliceCols(0, 2)
	right := a.SliceCols(2, 6)
	if !Equal(ConcatCols(left, right), a, 0) {
		t.Fatal("col slice+concat roundtrip failed")
	}
	top := a.SliceRows(0, 1)
	bottom := a.SliceRows(1, 4)
	if !Equal(ConcatRows(top, bottom), a, 0) {
		t.Fatal("row slice+concat roundtrip failed")
	}
}

func TestSetSubmatrix(t *testing.T) {
	m := New(3, 3)
	m.SetSubmatrix(1, 1, FromSlice(2, 2, []float64{1, 2, 3, 4}))
	if m.At(1, 1) != 1 || m.At(2, 2) != 4 || m.At(0, 0) != 0 {
		t.Fatal("SetSubmatrix wrong placement")
	}
}

func TestReductions(t *testing.T) {
	m := FromSlice(2, 2, []float64{-1, 2, -3, 4})
	if m.Sum() != 2 || m.Mean() != 0.5 {
		t.Fatalf("sum/mean wrong: %v %v", m.Sum(), m.Mean())
	}
	if m.Max() != 4 || m.Min() != -3 {
		t.Fatal("max/min wrong")
	}
	if !almostEq(m.Norm(), math.Sqrt(1+4+9+16), 1e-12) {
		t.Fatal("norm wrong")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestApply(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 4, 9})
	got := a.Apply(math.Sqrt)
	if !Equal(got, FromSlice(1, 3, []float64{1, 2, 3}), 1e-12) {
		t.Fatal("apply wrong")
	}
}

func TestUniformBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := Uniform(10, 10, -2, 3, rng)
	for _, v := range m.Data {
		if v < -2 || v >= 3 {
			t.Fatalf("uniform out of bounds: %v", v)
		}
	}
}

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(64, 64, 1, rng)
	y := Randn(64, 64, 1, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.MatMul(y)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(256, 256, 1, rng)
	y := Randn(256, 256, 1, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.MatMul(y)
	}
}
