// Package tensor provides dense row-major float64 matrices and the small
// set of BLAS-like kernels the rest of the library is built on.
//
// The package is deliberately minimal: a Dense value is a shape plus a flat
// backing slice, every operation is explicit about allocation, and the only
// concurrency is an optional goroutine fan-out inside MatMul for large
// products. All higher-level semantics (autodiff, layers) live above it.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Dense is a dense row-major matrix. A Dense with Rows == 1 doubles as a
// vector. The zero value is an empty matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed r×c matrix.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromSlice wraps data (not copied) as an r×c matrix.
func FromSlice(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: data}
}

// FromRows builds a matrix by copying the given equal-length rows.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic("tensor: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Randn returns an r×c matrix of N(0, std²) samples drawn from rng.
func Randn(r, c int, std float64, rng *rand.Rand) *Dense {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// Uniform returns an r×c matrix of U(lo, hi) samples drawn from rng.
func Uniform(r, c int, lo, hi float64, rng *rand.Rand) *Dense {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = lo + rng.Float64()*(hi-lo)
	}
	return m
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies src into m; shapes must match.
func (m *Dense) CopyFrom(src *Dense) {
	m.assertSameShape(src)
	copy(m.Data, src.Data)
}

// Zero resets all elements to 0.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (m *Dense) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// SameShape reports whether m and o have identical dimensions.
func (m *Dense) SameShape(o *Dense) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

func (m *Dense) assertSameShape(o *Dense) {
	if !m.SameShape(o) {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// String implements fmt.Stringer with a compact preview.
func (m *Dense) String() string {
	return fmt.Sprintf("Dense(%dx%d)", m.Rows, m.Cols)
}

// Add returns m + o.
func (m *Dense) Add(o *Dense) *Dense {
	m.assertSameShape(o)
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + o.Data[i]
	}
	return out
}

// AddInPlace sets m = m + o and returns m.
func (m *Dense) AddInPlace(o *Dense) *Dense {
	m.assertSameShape(o)
	for i := range m.Data {
		m.Data[i] += o.Data[i]
	}
	return m
}

// AddScaled sets m = m + s*o and returns m.
func (m *Dense) AddScaled(s float64, o *Dense) *Dense {
	m.assertSameShape(o)
	for i := range m.Data {
		m.Data[i] += s * o.Data[i]
	}
	return m
}

// Sub returns m - o.
func (m *Dense) Sub(o *Dense) *Dense {
	m.assertSameShape(o)
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] - o.Data[i]
	}
	return out
}

// MulElem returns the Hadamard product m ⊙ o.
func (m *Dense) MulElem(o *Dense) *Dense {
	m.assertSameShape(o)
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] * o.Data[i]
	}
	return out
}

// Scale returns s * m.
func (m *Dense) Scale(s float64) *Dense {
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = s * m.Data[i]
	}
	return out
}

// ScaleInPlace sets m = s*m and returns m.
func (m *Dense) ScaleInPlace(s float64) *Dense {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// Apply returns f applied elementwise.
func (m *Dense) Apply(f func(float64) float64) *Dense {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = f(v)
	}
	return out
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// parallelThreshold is the flop count above which MatMul fans out across
// goroutines. Chosen empirically; small products are faster single-threaded.
const parallelThreshold = 1 << 19

// MatMul returns m · o.
func (m *Dense) MatMul(o *Dense) *Dense {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d · %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := New(m.Rows, o.Cols)
	m.matMulInto(o, out)
	return out
}

// MatMulInto computes out = m · o into the caller-supplied buffer, which
// must be zeroed (as Arena.Get and New guarantee) and shaped Rows×o.Cols.
// It allows hot paths to reuse output buffers instead of allocating.
func (m *Dense) MatMulInto(o, out *Dense) {
	if m.Cols != o.Rows || out.Rows != m.Rows || out.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: matmul-into shape mismatch %dx%d · %dx%d -> %dx%d",
			m.Rows, m.Cols, o.Rows, o.Cols, out.Rows, out.Cols))
	}
	m.matMulInto(o, out)
}

// MatMulTInto computes out = m · oᵀ into the caller-supplied buffer
// (shape m.Rows×o.Rows) without materialising the transpose. Unlike
// MatMulInto, out need not be zeroed: every cell is overwritten.
func (m *Dense) MatMulTInto(o, out *Dense) {
	if m.Cols != o.Cols || out.Rows != m.Rows || out.Cols != o.Rows {
		panic(fmt.Sprintf("tensor: matmulT-into shape mismatch %dx%d · (%dx%d)ᵀ -> %dx%d",
			m.Rows, m.Cols, o.Rows, o.Cols, out.Rows, out.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := 0; j < o.Rows; j++ {
			orow := o.Data[j*o.Cols : (j+1)*o.Cols]
			var s float64
			for k, mv := range mrow {
				s += mv * orow[k]
			}
			out.Data[i*out.Cols+j] = s
		}
	}
}

// matMulInto computes out = m · o, assuming out is zeroed and correctly sized.
func (m *Dense) matMulInto(o, out *Dense) {
	work := m.Rows * m.Cols * o.Cols
	if work >= parallelThreshold && m.Rows > 1 {
		nw := runtime.GOMAXPROCS(0)
		if nw > m.Rows {
			nw = m.Rows
		}
		var wg sync.WaitGroup
		chunk := (m.Rows + nw - 1) / nw
		for w := 0; w < nw; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > m.Rows {
				hi = m.Rows
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				matMulRange(m, o, out, lo, hi)
			}(lo, hi)
		}
		wg.Wait()
		return
	}
	matMulRange(m, o, out, 0, m.Rows)
}

// matMulRange computes rows [lo, hi) of out = m·o with an ikj loop order
// that keeps the inner loop streaming over contiguous memory.
func matMulRange(m, o, out *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := o.Data[k*o.Cols : (k+1)*o.Cols]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
}

// MatMulT returns m · oᵀ without materialising the transpose.
func (m *Dense) MatMulT(o *Dense) *Dense {
	out := New(m.Rows, o.Rows)
	m.MatMulTInto(o, out)
	return out
}

// MatMulAddInto computes out += m · o into the caller-supplied buffer.
// It is the accumulating kernel the gradient replay path is built on:
// backward steps add into existing gradient buffers instead of
// materialising a product and then summing it. Each cell's dot product is
// accumulated in k order before the single add, so the result is
// bit-identical to MatMul followed by AddInPlace.
func (m *Dense) MatMulAddInto(o, out *Dense) {
	if m.Cols != o.Rows || out.Rows != m.Rows || out.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: matmul-add-into shape mismatch %dx%d · %dx%d -> %dx%d",
			m.Rows, m.Cols, o.Rows, o.Cols, out.Rows, out.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for j := 0; j < out.Cols; j++ {
			var s float64
			for k, mv := range mrow {
				if mv == 0 {
					continue
				}
				s += mv * o.Data[k*o.Cols+j]
			}
			orow[j] += s
		}
	}
}

// MatMulTAddInto computes out += m · oᵀ without materialising the
// transpose or a temporary product.
func (m *Dense) MatMulTAddInto(o, out *Dense) {
	if m.Cols != o.Cols || out.Rows != m.Rows || out.Cols != o.Rows {
		panic(fmt.Sprintf("tensor: matmulT-add-into shape mismatch %dx%d · (%dx%d)ᵀ -> %dx%d",
			m.Rows, m.Cols, o.Rows, o.Cols, out.Rows, out.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := 0; j < o.Rows; j++ {
			orow := o.Data[j*o.Cols : (j+1)*o.Cols]
			var s float64
			for k, mv := range mrow {
				s += mv * orow[k]
			}
			out.Data[i*out.Cols+j] += s
		}
	}
}

// TMatMulAddInto computes out += mᵀ · o without materialising the
// transpose or a temporary product. Like MatMulAddInto, per-cell dot
// products are accumulated in k order before the single add, so the result
// is bit-identical to TMatMul followed by AddInPlace.
func (m *Dense) TMatMulAddInto(o, out *Dense) {
	if m.Rows != o.Rows || out.Rows != m.Cols || out.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: tmatmul-add-into shape mismatch (%dx%d)ᵀ · %dx%d -> %dx%d",
			m.Rows, m.Cols, o.Rows, o.Cols, out.Rows, out.Cols))
	}
	for i := 0; i < m.Cols; i++ {
		dst := out.Data[i*out.Cols : (i+1)*out.Cols]
		for j := 0; j < o.Cols; j++ {
			var s float64
			for k := 0; k < m.Rows; k++ {
				mv := m.Data[k*m.Cols+i]
				if mv == 0 {
					continue
				}
				s += mv * o.Data[k*o.Cols+j]
			}
			dst[j] += s
		}
	}
}

// AddTransposed sets m += oᵀ without materialising the transpose.
func (m *Dense) AddTransposed(o *Dense) *Dense {
	if m.Rows != o.Cols || m.Cols != o.Rows {
		panic(fmt.Sprintf("tensor: add-transposed shape mismatch %dx%d += (%dx%d)ᵀ", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		dst := m.Row(i)
		for j := range dst {
			dst[j] += o.Data[j*o.Cols+i]
		}
	}
	return m
}

// TMatMul returns mᵀ · o without materialising the transpose.
func (m *Dense) TMatMul(o *Dense) *Dense {
	if m.Rows != o.Rows {
		panic(fmt.Sprintf("tensor: tmatmul shape mismatch (%dx%d)ᵀ · %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := New(m.Cols, o.Cols)
	for k := 0; k < m.Rows; k++ {
		mrow := m.Data[k*m.Cols : (k+1)*m.Cols]
		orow := o.Data[k*o.Cols : (k+1)*o.Cols]
		for i, mv := range mrow {
			if mv == 0 {
				continue
			}
			dst := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, ov := range orow {
				dst[j] += mv * ov
			}
		}
	}
	return out
}

// Dot returns the Frobenius inner product ⟨m, o⟩.
func (m *Dense) Dot(o *Dense) float64 {
	m.assertSameShape(o)
	var s float64
	for i, v := range m.Data {
		s += v * o.Data[i]
	}
	return s
}

// Sum returns the sum of all elements.
func (m *Dense) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty matrices).
func (m *Dense) Mean() float64 {
	if len(m.Data) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.Data))
}

// Norm returns the Frobenius norm.
func (m *Dense) Norm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Max returns the maximum element (-Inf for empty matrices).
func (m *Dense) Max() float64 {
	mx := math.Inf(-1)
	for _, v := range m.Data {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// Min returns the minimum element (+Inf for empty matrices).
func (m *Dense) Min() float64 {
	mn := math.Inf(1)
	for _, v := range m.Data {
		if v < mn {
			mn = v
		}
	}
	return mn
}

// SliceRows returns a copy of rows [lo, hi).
func (m *Dense) SliceRows(lo, hi int) *Dense {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: row slice [%d,%d) out of range for %d rows", lo, hi, m.Rows))
	}
	out := New(hi-lo, m.Cols)
	copy(out.Data, m.Data[lo*m.Cols:hi*m.Cols])
	return out
}

// SliceCols returns a copy of columns [lo, hi).
func (m *Dense) SliceCols(lo, hi int) *Dense {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("tensor: col slice [%d,%d) out of range for %d cols", lo, hi, m.Cols))
	}
	out := New(m.Rows, hi-lo)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[lo:hi])
	}
	return out
}

// SetSubmatrix copies src into m starting at (r0, c0).
func (m *Dense) SetSubmatrix(r0, c0 int, src *Dense) {
	if r0+src.Rows > m.Rows || c0+src.Cols > m.Cols {
		panic("tensor: submatrix out of range")
	}
	for i := 0; i < src.Rows; i++ {
		copy(m.Row(r0 + i)[c0:c0+src.Cols], src.Row(i))
	}
}

// ConcatRows stacks matrices vertically.
func ConcatRows(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		return New(0, 0)
	}
	cols := ms[0].Cols
	rows := 0
	for _, m := range ms {
		if m.Cols != cols {
			panic("tensor: concat rows column mismatch")
		}
		rows += m.Rows
	}
	out := New(rows, cols)
	at := 0
	for _, m := range ms {
		copy(out.Data[at:], m.Data)
		at += len(m.Data)
	}
	return out
}

// ConcatCols stacks matrices horizontally.
func ConcatCols(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		return New(0, 0)
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic("tensor: concat cols row mismatch")
		}
		cols += m.Cols
	}
	out := New(rows, cols)
	for i := 0; i < rows; i++ {
		dst := out.Row(i)
		at := 0
		for _, m := range ms {
			copy(dst[at:], m.Row(i))
			at += m.Cols
		}
	}
	return out
}

// Equal reports elementwise equality within tol.
func Equal(a, b *Dense, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}
