package core

import (
	"math"

	"aero/internal/ag"
	"aero/internal/tensor"
)

// TimeEmbedding is the interval-aware positional encoding of paper Eq. (1):
//
//	TE_t^j = sin(f_j·pos_t + α_j·Δt) + cos(f_j·pos_t + α_j·Δt)
//
// where f_j = (1/10000)^{j/d_m} are fixed angular frequencies, pos_t is the
// absolute position, Δt the (normalized) interval to the previous
// observation, and α_j are learnable phase shifts. Summing the sin and cos
// terms follows the TranAD practice the paper adopts; the learnable α makes
// the embedding sensitive to the irregular cadences of astronomical
// observations.
type TimeEmbedding struct {
	// Alpha holds the learnable per-dimension phase shifts (1×d_m).
	Alpha *ag.Param
	freq  []float64
	dm    int
}

// NewTimeEmbedding returns a time embedding of width dm with α initialised
// to small values.
func NewTimeEmbedding(dm int) *TimeEmbedding {
	a := tensor.New(1, dm)
	for j := range a.Data {
		a.Data[j] = 0.1
	}
	freq := make([]float64, dm)
	for j := 0; j < dm; j++ {
		freq[j] = math.Pow(1.0/10000, float64(j)/float64(dm))
	}
	return &TimeEmbedding{Alpha: ag.NewParam("te.alpha", a), freq: freq, dm: dm}
}

// Forward produces the L×d_m embedding for absolute positions pos and
// intervals dt (both length L). The staging buffers come from the tape so
// inference tapes reuse them across passes.
func (te *TimeEmbedding) Forward(t *ag.Tape, pos, dt []float64) *ag.Node {
	L := len(pos)
	// Fixed part: phase[l][j] = f_j · pos_l (constant).
	phase := t.Buffer(L, te.dm)
	for l := 0; l < L; l++ {
		row := phase.Row(l)
		for j := 0; j < te.dm; j++ {
			row[j] = te.freq[j] * pos[l]
		}
	}
	// Learnable part: dtCol (L×1) · α (1×d_m).
	dtCol := t.Buffer(L, 1)
	copy(dtCol.Data, dt)
	theta := t.Add(t.Const(phase), t.MatMul(t.Const(dtCol), t.Param(te.Alpha)))
	return t.Add(t.Sin(theta), t.Cos(theta))
}

// Params implements nn.Module.
func (te *TimeEmbedding) Params() []*ag.Param { return []*ag.Param{te.Alpha} }
