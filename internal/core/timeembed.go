package core

import (
	"math"
	"sync"

	"aero/internal/ag"
	"aero/internal/tensor"
)

// TimeEmbedding is the interval-aware positional encoding of paper Eq. (1):
//
//	TE_t^j = sin(f_j·pos_t + α_j·Δt) + cos(f_j·pos_t + α_j·Δt)
//
// where f_j = (1/10000)^{j/d_m} are fixed angular frequencies, pos_t is the
// absolute position, Δt the (normalized) interval to the previous
// observation, and α_j are learnable phase shifts. Summing the sin and cos
// terms follows the TranAD practice the paper adopts; the learnable α makes
// the embedding sensitive to the irregular cadences of astronomical
// observations.
type TimeEmbedding struct {
	// Alpha holds the learnable per-dimension phase shifts (1×d_m).
	Alpha *ag.Param
	freq  []float64
	dm    int

	// phases caches the constant matrices phase[l][j] = f_j·pos_l per
	// (length, first position). Positions in this codebase are always
	// window-local and contiguous (model.times emits 0..W−1 for the long
	// window and w−ω..w−1 for its suffix), so the matrix is a pure
	// function of the window shape and can be computed once and shared by
	// every forward pass — training, batch scoring and streaming alike.
	// Lock-free reads, like nn's band-mask cache.
	phases sync.Map // phaseKey -> *tensor.Dense
}

// phaseKey identifies one cached constant phase matrix.
type phaseKey struct {
	l  int
	p0 float64
}

// NewTimeEmbedding returns a time embedding of width dm with α initialised
// to small values.
func NewTimeEmbedding(dm int) *TimeEmbedding {
	a := tensor.New(1, dm)
	for j := range a.Data {
		a.Data[j] = 0.1
	}
	freq := make([]float64, dm)
	for j := 0; j < dm; j++ {
		freq[j] = math.Pow(1.0/10000, float64(j)/float64(dm))
	}
	return &TimeEmbedding{Alpha: ag.NewParam("te.alpha", a), freq: freq, dm: dm}
}

// Forward produces the L×d_m embedding for absolute positions pos and
// intervals dt (both length L).
func (te *TimeEmbedding) Forward(t *ag.Tape, pos, dt []float64) *ag.Node {
	emb, _, _ := te.ForwardParts(t, pos, dt)
	return emb
}

// ForwardParts is Forward additionally returning the sin(θ) and cos(θ)
// nodes. The incremental streaming path caches their values and advances
// them across pushes: a window-local position shift of −1 rotates every
// retained θ by exactly −f_j per dimension, so (sinθ, cosθ) update by the
// angle-difference identities without re-evaluating any trigonometry.
func (te *TimeEmbedding) ForwardParts(t *ag.Tape, pos, dt []float64) (emb, sin, cos *ag.Node) {
	L := len(pos)
	phase := te.phase(t, pos)
	// Learnable part: dtCol (L×1) · α (1×d_m).
	dtCol := t.Buffer(L, 1)
	copy(dtCol.Data, dt)
	theta := t.Add(phase, t.MatMul(t.Const(dtCol), t.Param(te.Alpha)))
	sin = t.Sin(theta)
	cos = t.Cos(theta)
	return t.Add(sin, cos), sin, cos
}

// phase returns the constant matrix phase[l][j] = f_j·pos_l as a tape node,
// served from the per-shape cache when the positions are contiguous (the
// only pattern the model emits) and rebuilt per pass otherwise. The cached
// values are the same products the per-pass fill computed, so hoisting the
// matrix is bit-identical.
func (te *TimeEmbedding) phase(t *ag.Tape, pos []float64) *ag.Node {
	if cached := te.cachedPhase(pos); cached != nil {
		return t.Const(cached)
	}
	phase := t.Buffer(len(pos), te.dm)
	te.fillPhase(phase, pos)
	return t.Const(phase)
}

// cachedPhase returns the shared constant phase matrix for a contiguous
// position vector, or nil when the positions are non-contiguous (no model
// path emits that shape). The matrix is shared across passes — callers
// must treat it as read-only.
func (te *TimeEmbedding) cachedPhase(pos []float64) *tensor.Dense {
	L := len(pos)
	p0 := pos[0]
	for l := 1; l < L; l++ {
		if pos[l] != p0+float64(l) {
			return nil
		}
	}
	key := phaseKey{l: L, p0: p0}
	if cached, ok := te.phases.Load(key); ok {
		return cached.(*tensor.Dense)
	}
	phase := tensor.New(L, te.dm)
	te.fillPhase(phase, pos)
	cached, _ := te.phases.LoadOrStore(key, phase)
	return cached.(*tensor.Dense)
}

func (te *TimeEmbedding) fillPhase(phase *tensor.Dense, pos []float64) {
	for l := range pos {
		row := phase.Row(l)
		for j := 0; j < te.dm; j++ {
			row[j] = te.freq[j] * pos[l]
		}
	}
}

// Params implements nn.Module.
func (te *TimeEmbedding) Params() []*ag.Param { return []*ag.Param{te.Alpha} }
