package core

import (
	"math"

	"aero/internal/tensor"
)

// IncrementalPolicy controls the incremental streaming forward pass: the
// sliding-window activation reuse that makes StreamDetector.Push sub-linear
// in the window length on benign frames. It is the stage-1 analogue of
// evt.RefitPolicy, and the exactness contract is the same shape:
//
//   - Benign frames take the incremental path: cached per-layer activations
//     are shifted one row, only the entering edge of the window (the
//     trailing Cone rows per encoder layer) is recomputed, and the decoder
//     reconstructs the newest timestep only.
//   - A full exact recompute runs every Every frames, whenever the input
//     jumps by more than DriftTolerance between consecutive frames, after
//     any cache invalidation (Swap, RestoreState, hygiene-repaired frames),
//     and — the alarm-boundary guard — whenever an incremental score lands
//     within Boundary of the calibrated threshold, before the verdict.
//
// The guard is what keeps golden-replay alarm sequences identical to the
// always-exact path: any frame whose incremental score reaches
// (1−Boundary)·Z is re-scored exactly, so alarm decisions are always made
// on exact scores as long as the incremental error stays below the margin
// (pinned empirically by TestIncrementalErrorBound).
//
// The zero value disables the incremental path entirely (every frame runs
// the full forward).
type IncrementalPolicy struct {
	// Every forces a full exact recompute (which also rebuilds every
	// cache) once per Every frames. 1 recomputes every frame — scores are
	// then bit-identical to the non-incremental detector. <= 0 disables
	// the incremental path.
	Every int

	// Cone is the number of trailing window rows recomputed per encoder
	// layer on the incremental path (clamped to [1, W]). Rows outside the
	// cone keep their cached key/value projections from the pass that
	// computed them; banded attention makes the newest row's view of those
	// stale rows decay with distance.
	Cone int

	// ShortCone is Cone for the decoder's short window (clamped to
	// [1, ω]).
	ShortCone int

	// Boundary is the guard margin as a fraction of the calibrated
	// threshold Z: an incremental score ≥ (1−Boundary)·Z triggers a full
	// exact recompute before the verdict. 1 re-scores every frame whose
	// score is non-negative, i.e. always.
	Boundary float64

	// DriftTolerance forces a refresh when any variate's normalized
	// magnitude jumps by more than this between consecutive frames —
	// large level shifts are where stale caches decay slowest. <= 0
	// disables the trigger.
	DriftTolerance float64
}

// enabled reports whether the policy turns the incremental path on.
func (p IncrementalPolicy) enabled() bool { return p.Every > 0 }

// DefaultIncrementalPolicy is the production default: refresh every 128
// frames, a single-row update cone, an exact recompute within 10% of the
// threshold, and a drift trigger at a full normalized-range jump (the
// guard owns near-alarm frames; the drift trigger is insurance against
// pathological level shifts far outside the trained magnitude range).
// The schedule matches evt.RefitPolicy's default period: at W≤128 every
// cached row is re-derived exactly at least once per two window lengths,
// and the amortized full-forward cost stays under 1% of the frame rate.
func DefaultIncrementalPolicy() IncrementalPolicy {
	return IncrementalPolicy{Every: 128, Cone: 1, ShortCone: 1, Boundary: 0.1, DriftTolerance: 1}
}

// ExactIncrementalPolicy recomputes the full window every frame: scores are
// bit-identical to the non-incremental detector, with the caches still
// maintained (useful for differential testing).
func ExactIncrementalPolicy() IncrementalPolicy {
	return IncrementalPolicy{Every: 1, Cone: 1, ShortCone: 1, Boundary: 1}
}

// IncrementalStats counts how the streaming forward passes were served.
// Frames = Incremental + the four refresh counters.
type IncrementalStats struct {
	Frames                uint64 // scored frames
	Incremental           uint64 // served by the incremental path alone
	ScheduledRefreshes    uint64 // full recomputes from the Every schedule
	DriftRefreshes        uint64 // full recomputes from the drift trigger
	BoundaryRefreshes     uint64 // full recomputes from the alarm-boundary guard
	InvalidationRefreshes uint64 // full recomputes after cache invalidation
}

// incrementalState is the per-detector cache behind the incremental path:
// one temporalCapture per stage-1 forward (per variate in univariate mode),
// a rolling stage-1 error matrix, precomputed trigonometry for the exact
// window-local position rotation, and allocation-free row scratch.
type incrementalState struct {
	pol IncrementalPolicy

	caps []*temporalCapture
	e    *tensor.Dense // N×ω rolling stage-1 errors (separate from the
	// scratch's e so GraphSnapshot's exact recompute cannot clobber it)

	// Trig constants: a window-local position shift of −1 rotates every
	// cached θ by exactly −f_j, so (sinθ, cosθ) advance by the angle
	// difference identities. sinA/cosA are sin/cos(α_j·1), the row-0 phase
	// where times() pins the interval to 1; phaseLast is f_j·(W−1), the
	// position part of the entering row.
	sinF, cosF []float64
	sinA, cosA []float64
	phaseLast  []float64

	// Row scratch for the benign path (all preallocated).
	xRow             []float64 // entering frame, model input width
	qRow, ctxRow     []float64
	attnScores       []float64
	rowA, rowB, rowC []float64
	hidden           []float64
	yRow             []float64     // decoder output row (sigmoid applied)
	coneIn, coneOut  *tensor.Dense // cone×d_m ping-pong buffers
	fullA, fullB     *tensor.Dense // W×d_m ping-pong buffers (row refresh)
	dynBackup        *tensor.Dense // dyn.a snapshot for guard rollback

	sinceRefresh int
	valid        bool
	stats        IncrementalStats
}

// newIncrementalState sizes the caches for the model's geometry. The state
// starts invalid: the first scored frame runs a full exact pass that also
// populates every cache.
func newIncrementalState(m *Model, pol IncrementalPolicy) *incrementalState {
	w, omega := m.cfg.LongWindow, m.cfg.ShortWindow
	if pol.Cone < 1 {
		pol.Cone = 1
	}
	if pol.Cone > w {
		pol.Cone = w
	}
	if pol.ShortCone < 1 {
		pol.ShortCone = 1
	}
	if pol.ShortCone > omega {
		pol.ShortCone = omega
	}
	inc := &incrementalState{pol: pol, e: tensor.New(m.n, omega)}
	if m.cfg.usesTemporal() {
		tm := m.temporal
		dm := tm.te.dm
		nCaps := m.n
		inDim := 1
		if m.cfg.multivariateInput() {
			nCaps, inDim = 1, m.n
		}
		for i := 0; i < nCaps; i++ {
			inc.caps = append(inc.caps, tm.newTemporalCapture(w, omega))
		}
		inc.sinF = make([]float64, dm)
		inc.cosF = make([]float64, dm)
		inc.sinA = make([]float64, dm)
		inc.cosA = make([]float64, dm)
		inc.phaseLast = make([]float64, dm)
		alpha := tm.te.Alpha.Value.Data
		for j, f := range tm.te.freq {
			inc.sinF[j] = math.Sin(f)
			inc.cosF[j] = math.Cos(f)
			inc.sinA[j] = math.Sin(alpha[j])
			inc.cosA[j] = math.Cos(alpha[j])
			inc.phaseLast[j] = f * float64(w-1)
		}
		inc.xRow = make([]float64, inDim)
		inc.qRow = make([]float64, dm)
		inc.ctxRow = make([]float64, dm)
		inc.attnScores = make([]float64, w)
		inc.rowA = make([]float64, dm)
		inc.rowB = make([]float64, dm)
		inc.rowC = make([]float64, dm)
		inc.hidden = make([]float64, m.cfg.FFNHidden)
		inc.yRow = make([]float64, inDim)
		inc.coneIn = tensor.New(inc.pol.Cone, dm)
		inc.coneOut = tensor.New(inc.pol.Cone, dm)
		inc.fullA = tensor.New(w, dm)
		inc.fullB = tensor.New(w, dm)
	}
	if m.cfg.Variant == VariantDynamicGraph {
		inc.dynBackup = tensor.New(m.n, m.n)
	}
	return inc
}

// score serves one warm frame: the incremental path when the caches are
// fresh and the frame is benign, a full exact recompute (which rebuilds
// every cache) otherwise. Fills and returns s.scores.
func (inc *incrementalState) score(s *StreamDetector) []float64 {
	inc.stats.Frames++
	switch {
	case !inc.valid:
		inc.stats.InvalidationRefreshes++
	case inc.sinceRefresh+1 >= inc.pol.Every:
		inc.stats.ScheduledRefreshes++
	case inc.drifted(s):
		inc.stats.DriftRefreshes++
	default:
		inc.push(s)
		if !inc.nearBoundary(s) {
			inc.stats.Incremental++
			inc.sinceRefresh++
			return s.scores
		}
		// Within the guard margin of the threshold: undo the one piece of
		// scoring state the benign path mutated outside the caches (the
		// evolving-graph EWMA) and re-score exactly. The refresh below
		// overwrites every cache, so nothing else needs rolling back.
		inc.stats.BoundaryRefreshes++
		if s.dyn != nil {
			s.dyn.a.CopyFrom(inc.dynBackup)
		}
	}
	return inc.refresh(s)
}

// refresh runs the full exact two-stage forward, rebuilding every cache as
// a side effect of scoring. Temporal variants take the row-kernel rebuild
// (refreshRows); the tape path remains as the reference and serves the
// shapes the row path cannot (no temporal module, non-contiguous positions).
func (inc *incrementalState) refresh(s *StreamDetector) []float64 {
	if s.m.cfg.usesTemporal() && inc.refreshRows(s) {
		return s.scores
	}
	return inc.refreshTape(s)
}

// refreshTape is the tape-backed exact refresh: the full two-stage forward
// with activation capture enabled.
func (inc *incrementalState) refreshTape(s *StreamDetector) []float64 {
	w, omega := s.m.cfg.LongWindow, s.m.cfg.ShortWindow
	s.sc.caps = inc.caps
	p := s.window()
	final, _ := s.m.windowScores(p, w-1, s.dyn, s.sc)
	s.sc.caps = nil
	inc.e.CopyFrom(s.sc.e)
	for v := 0; v < s.m.n; v++ {
		s.scores[v] = final.At(v, omega-1)
	}
	inc.sinceRefresh = 0
	inc.valid = true
	return s.scores
}

// refreshRows is the tape-free exact refresh: the same full-window two-stage
// forward as refreshTape, rebuilt row by row with the ApplyRow/AttendRow
// kernels straight into the caches. It reads only the raw window rings and
// the weights, so it serves every refresh cause (schedule, drift, guard,
// invalidation). Bit-identity with the tape path holds because the row
// kernels are pinned rowwise-identical to the tape ops, the time embedding
// reuses the same hoisted phase matrices, residual adds commute, and stage 2
// is literally noiseScores — the same code windowScores runs. Reports false
// (leaving all state untouched) when the hoisted phase matrices are
// unavailable, i.e. non-contiguous positions that no model path emits.
func (inc *incrementalState) refreshRows(s *StreamDetector) bool {
	m := s.m
	tm := m.temporal
	sc := s.sc
	w, omega := m.cfg.LongWindow, m.cfg.ShortWindow
	p := s.window()
	wt := m.times(p, w-1, &sc.wt)
	phL := tm.te.cachedPhase(wt.posL)
	phS := tm.te.cachedPhase(wt.posS)
	if phL == nil || phS == nil {
		return false
	}
	// Time embedding, evaluated directly: θ[l][j] = phase[l][j] + dt[l]·α[j]
	// elementwise, exactly the tape's Add(phase, MatMul(dt, α)).
	te := inc.caps[0]
	alpha := tm.te.Alpha.Value.Data
	fillTE(te.sinL, te.cosL, phL, wt.dtL, alpha)
	fillTE(te.sinS, te.cosS, phS, wt.dtS, alpha)

	slot := sc.slots[0]
	if m.cfg.multivariateInput() {
		long, short := m.longShort(p, 0, w-1, slot)
		inc.refreshStage1(m, te, te, long, short, sc.e, -1)
	} else {
		for v := 0; v < m.n; v++ {
			long, short := m.longShort(p, v, w-1, slot)
			inc.refreshStage1(m, inc.caps[v], te, long, short, sc.e, v)
		}
	}
	final := m.noiseScores(sc.e, s.dyn, sc)
	inc.e.CopyFrom(sc.e)
	for v := 0; v < m.n; v++ {
		s.scores[v] = final.At(v, omega-1)
	}
	inc.sinceRefresh = 0
	inc.valid = true
	return true
}

// refreshStage1 rebuilds one stage-1 forward over the whole window with the
// row kernels, writing every activation ring of capture c and the stage-1
// errors e = y − ŷ1 into the rows of e. v is the variate owning the rows
// (−1 in multivariate mode, where one pass reconstructs every variate and
// the error write transposes like reconstruct does).
func (inc *incrementalState) refreshStage1(m *Model, c, te *temporalCapture, long, short, e *tensor.Dense, v int) {
	tm := m.temporal
	dm := tm.te.dm
	w, omega := c.encP.Rows, c.decP.Rows

	// Encoder: input projection ring, then IE = encProj(x) + TE.
	for r := 0; r < w; r++ {
		tm.encProj.ApplyRow(c.encP.Row(r), long.Row(r))
	}
	in, out := inc.fullA, inc.fullB
	for r := 0; r < w; r++ {
		dst := in.Row(r)
		ep, sr, cr := c.encP.Row(r), te.sinL.Row(r), te.cosL.Row(r)
		for j := 0; j < dm; j++ {
			dst[j] = ep[j] + (sr[j] + cr[j])
		}
	}
	for li, layer := range tm.enc {
		kc, vc := c.enc[li].k, c.enc[li].v
		for r := 0; r < w; r++ {
			layer.attn.Wk.ApplyRow(kc.Row(r), in.Row(r))
			layer.attn.Wv.ApplyRow(vc.Row(r), in.Row(r))
		}
		for r := 0; r < w; r++ {
			inc.encodeRow(layer, in.Row(r), kc, vc, r, out.Row(r))
		}
		in, out = out, in
	}
	// in now holds the encoder output; cross-attention K/V ring.
	for r := 0; r < w; r++ {
		tm.decCross.Wk.ApplyRow(c.oeK.Row(r), in.Row(r))
		tm.decCross.Wv.ApplyRow(c.oeV.Row(r), in.Row(r))
	}

	// Decoder rings: input projection, then self-attention K/V from
	// ID = decProj(x) + TE.
	for r := 0; r < omega; r++ {
		tm.decProj.ApplyRow(c.decP.Row(r), short.Row(r))
	}
	for r := 0; r < omega; r++ {
		id := inc.rowA
		dp, sr, cr := c.decP.Row(r), te.sinS.Row(r), te.cosS.Row(r)
		for j := 0; j < dm; j++ {
			id[j] = dp[j] + (sr[j] + cr[j])
		}
		tm.decSelf.Wk.ApplyRow(c.selfK.Row(r), id)
		tm.decSelf.Wv.ApplyRow(c.selfV.Row(r), id)
	}

	// Decoder forward, every short-window row, straight into the stage-1
	// errors. The targets y are the short-window inputs themselves, so
	// e = short − ŷ1 cell for cell (transposed in multivariate mode, like
	// reconstruct's output write).
	for r := 0; r < omega; r++ {
		id := inc.rowA
		dp, sr, cr := c.decP.Row(r), te.sinS.Row(r), te.cosS.Row(r)
		for j := 0; j < dm; j++ {
			id[j] = dp[j] + (sr[j] + cr[j])
		}
		inc.decodeRow(tm, c, id, r, omega == w)
		if v >= 0 {
			e.Row(v)[r] = short.Row(r)[0] - inc.yRow[0]
		} else {
			srow := short.Row(r)
			for vv, yv := range inc.yRow {
				e.Row(vv)[r] = srow[vv] - yv
			}
		}
	}
}

// encodeRow pushes input row x (window position r) through one encoder
// layer: banded self-attention over the layer's K/V rings, residual, layer
// norm, FFN, residual, layer norm — the kernel chain shared by the benign
// cone and the row refresh.
func (inc *incrementalState) encodeRow(layer *encoderLayer, x []float64, kc, vc *tensor.Dense, r int, out []float64) {
	layer.attn.Wq.ApplyRow(inc.qRow, x)
	layer.attn.AttendRow(inc.ctxRow, inc.attnScores, inc.qRow, kc, vc, r, true)
	layer.attn.Wo.ApplyRow(inc.rowA, inc.ctxRow)
	for j := range inc.rowA {
		inc.rowA[j] += x[j]
	}
	layer.ln1.ApplyRow(inc.rowA, inc.rowA)
	layer.ffn.ApplyRow(inc.rowB, inc.hidden, inc.rowA)
	for j := range inc.rowB {
		inc.rowB[j] += inc.rowA[j]
	}
	layer.ln2.ApplyRow(out, inc.rowB)
}

// decodeRow runs the decoder for short-window row r from its input
// embedding id: masked self-attention over the selfK/selfV rings,
// cross-attention over the encoder-output rings, output FFN and sigmoid
// into inc.yRow. square is whether the cross-attention is square (ω == W),
// mirroring the tape's band-mask rule.
func (inc *incrementalState) decodeRow(tm *temporalModule, c *temporalCapture, id []float64, r int, square bool) {
	tm.decSelf.Wq.ApplyRow(inc.qRow, id)
	tm.decSelf.AttendRow(inc.ctxRow, inc.attnScores, inc.qRow, c.selfK, c.selfV, r, true)
	tm.decSelf.Wo.ApplyRow(inc.rowB, inc.ctxRow)
	for j := range inc.rowB {
		inc.rowB[j] += id[j]
	}
	tm.decLN1.ApplyRow(inc.rowB, inc.rowB)
	tm.decCross.Wq.ApplyRow(inc.qRow, inc.rowB)
	tm.decCross.AttendRow(inc.ctxRow, inc.attnScores, inc.qRow, c.oeK, c.oeV, r, square)
	tm.decCross.Wo.ApplyRow(inc.rowC, inc.ctxRow)
	for j := range inc.rowC {
		inc.rowC[j] += inc.rowB[j]
	}
	tm.decLN2.ApplyRow(inc.rowC, inc.rowC)
	tm.outFFN.ApplyRow(inc.yRow, inc.hidden, inc.rowC)
	for j, yv := range inc.yRow {
		inc.yRow[j] = 1 / (1 + math.Exp(-yv))
	}
}

// fillTE evaluates the time embedding trigonometry directly:
// θ[l][j] = phase[l][j] + dt[l]·α[j], then sinθ and cosθ elementwise —
// the same per-cell arithmetic as the tape's Add/MatMul/Sin/Cos chain.
func fillTE(sin, cos, phase *tensor.Dense, dt, alpha []float64) {
	for l := 0; l < sin.Rows; l++ {
		sr, cr, ph := sin.Row(l), cos.Row(l), phase.Row(l)
		d := dt[l]
		for j := range sr {
			th := ph[j] + d*alpha[j]
			sr[j] = math.Sin(th)
			cr[j] = math.Cos(th)
		}
	}
}

// drifted reports whether any variate jumped by more than the drift
// tolerance between the two newest frames.
func (inc *incrementalState) drifted(s *StreamDetector) bool {
	if inc.pol.DriftTolerance <= 0 {
		return false
	}
	w := s.m.cfg.LongWindow
	cur := (s.count - 1) % w
	prev := (s.count - 2 + w) % w
	for v := 0; v < s.m.n; v++ {
		if math.Abs(s.data[v][cur]-s.data[v][prev]) > inc.pol.DriftTolerance {
			return true
		}
	}
	return false
}

// nearBoundary reports whether any incremental score landed within the
// guard margin of the calibrated threshold.
func (inc *incrementalState) nearBoundary(s *StreamDetector) bool {
	margin := (1 - inc.pol.Boundary) * s.m.thr.Z
	for _, sc := range s.scores {
		if sc >= margin {
			return true
		}
	}
	return false
}

// push advances every cache by one frame and scores the newest timestep
// incrementally into s.scores. Allocation-free.
func (inc *incrementalState) push(s *StreamDetector) {
	m := s.m
	w, omega := m.cfg.LongWindow, m.cfg.ShortWindow
	n := m.n
	slot := (s.count - 1) % w

	if m.cfg.usesTemporal() {
		prev := (s.count - 2 + w) % w
		dtNew := (s.times[slot] - s.times[prev]) / m.dtScale
		// θ is data-independent, so the rotated time-embedding rings of
		// cap 0 serve every variate's pass this frame.
		te := inc.caps[0]
		inc.rotateTE(m, te, dtNew)
		if m.cfg.multivariateInput() {
			for v := 0; v < n; v++ {
				inc.xRow[v] = s.data[v][slot]
			}
			inc.pushTemporal(m, te, te)
			for v := 0; v < n; v++ {
				erow := inc.e.Row(v)
				copy(erow, erow[1:])
				erow[omega-1] = s.data[v][slot] - inc.yRow[v]
			}
		} else {
			for v := 0; v < n; v++ {
				inc.xRow[0] = s.data[v][slot]
				inc.pushTemporal(m, inc.caps[v], te)
				erow := inc.e.Row(v)
				copy(erow, erow[1:])
				erow[omega-1] = s.data[v][slot] - inc.yRow[0]
			}
		}
	} else {
		// VariantNoTemporal: Ŷ1 ≡ 0, so the error column is the target
		// itself and the shifted history is exact.
		for v := 0; v < n; v++ {
			erow := inc.e.Row(v)
			copy(erow, erow[1:])
			erow[omega-1] = s.data[v][slot]
		}
	}

	inc.scoreStage2(s)
}

// rotateTE advances the cached time-embedding (sinθ, cosθ) rings by one
// position: retained rows rotate by exactly −f_j per dimension, the row-0
// interval pin and the entering row are recomputed directly.
func (inc *incrementalState) rotateTE(m *Model, c *temporalCapture, dtNew float64) {
	dm := m.temporal.te.dm
	w, omega := c.sinL.Rows, c.sinS.Rows
	rotateRows(c.sinL, c.cosL, inc.sinF, inc.cosF)
	// times() pins dtL[0] to 1 regardless of the sample's real interval.
	copy(c.sinL.Row(0), inc.sinA)
	copy(c.cosL.Row(0), inc.cosA)
	alpha := m.temporal.te.Alpha.Value.Data
	sl, cl := c.sinL.Row(w-1), c.cosL.Row(w-1)
	for j := 0; j < dm; j++ {
		th := inc.phaseLast[j] + dtNew*alpha[j]
		sl[j] = math.Sin(th)
		cl[j] = math.Cos(th)
	}
	rotateRows(c.sinS, c.cosS, inc.sinF, inc.cosF)
	if omega == w {
		// Only when the short window spans the long one does its row 0
		// inherit the interval pin; otherwise row 0 sits mid-window and
		// the rotation above already placed it exactly.
		copy(c.sinS.Row(0), inc.sinA)
		copy(c.cosS.Row(0), inc.cosA)
	}
	// The short window is the long window's suffix: its last row shares
	// the long last row's position and interval.
	copy(c.sinS.Row(omega-1), sl)
	copy(c.cosS.Row(omega-1), cl)
}

// rotateRows shifts a (sin, cos) ring up one row while rotating each
// retained element by −f_j: sin(θ−f) = sinθ·cosF − cosθ·sinF and
// cos(θ−f) = cosθ·cosF + sinθ·sinF.
func rotateRows(sin, cos *tensor.Dense, sinF, cosF []float64) {
	for r := 0; r+1 < sin.Rows; r++ {
		sr, cr := sin.Row(r), cos.Row(r)
		sn, cn := sin.Row(r+1), cos.Row(r+1)
		for j := range sr {
			s1, c1 := sn[j], cn[j]
			sr[j] = s1*cosF[j] - c1*sinF[j]
			cr[j] = c1*cosF[j] + s1*sinF[j]
		}
	}
}

// pushTemporal advances one stage-1 forward by a frame: ring-shift every
// cache, re-project the entering row, recompute the trailing cone through
// the encoder stack, and run the decoder for the newest timestep only.
// c carries the variate's caches; te carries the (shared) rotated
// time-embedding rings. The entering input row is in inc.xRow and the
// reconstructed newest row lands in inc.yRow.
func (inc *incrementalState) pushTemporal(m *Model, c, te *temporalCapture) {
	tm := m.temporal
	dm := tm.te.dm
	w, omega := c.encP.Rows, c.decP.Rows
	cone, shortCone := inc.pol.Cone, inc.pol.ShortCone

	// Encoder input projection ring: shift, re-project the entering row.
	shiftRowsUp(c.encP)
	tm.encProj.ApplyRow(c.encP.Row(w-1), inc.xRow)

	// Rebuild the trailing cone's input rows IE = encProj(x) + TE from the
	// caches, then push them through every encoder layer, refreshing each
	// layer's K/V ring along the way.
	coneStart := w - cone
	in, out := inc.coneIn, inc.coneOut
	for i := 0; i < cone; i++ {
		r := coneStart + i
		dst := in.Row(i)
		ep, sr, cr := c.encP.Row(r), te.sinL.Row(r), te.cosL.Row(r)
		for j := 0; j < dm; j++ {
			dst[j] = ep[j] + (sr[j] + cr[j])
		}
	}
	for li, layer := range tm.enc {
		kc, vc := c.enc[li].k, c.enc[li].v
		shiftRowsUp(kc)
		shiftRowsUp(vc)
		for i := 0; i < cone; i++ {
			r := coneStart + i
			layer.attn.Wk.ApplyRow(kc.Row(r), in.Row(i))
			layer.attn.Wv.ApplyRow(vc.Row(r), in.Row(i))
		}
		for i := 0; i < cone; i++ {
			inc.encodeRow(layer, in.Row(i), kc, vc, coneStart+i, out.Row(i))
		}
		in, out = out, in
	}
	// in now holds the encoder output's cone rows; refresh the decoder
	// cross-attention K/V ring from them.
	shiftRowsUp(c.oeK)
	shiftRowsUp(c.oeV)
	for i := 0; i < cone; i++ {
		r := coneStart + i
		tm.decCross.Wk.ApplyRow(c.oeK.Row(r), in.Row(i))
		tm.decCross.Wv.ApplyRow(c.oeV.Row(r), in.Row(i))
	}

	// Decoder rings: input projection and self-attention K/V.
	shiftRowsUp(c.decP)
	tm.decProj.ApplyRow(c.decP.Row(omega-1), inc.xRow)
	shiftRowsUp(c.selfK)
	shiftRowsUp(c.selfV)
	for i := 0; i < shortCone; i++ {
		r := omega - shortCone + i
		dst := inc.rowA
		dp, sr, cr := c.decP.Row(r), te.sinS.Row(r), te.cosS.Row(r)
		for j := 0; j < dm; j++ {
			dst[j] = dp[j] + (sr[j] + cr[j])
		}
		tm.decSelf.Wk.ApplyRow(c.selfK.Row(r), dst)
		tm.decSelf.Wv.ApplyRow(c.selfV.Row(r), dst)
	}

	// Decoder forward, newest row only (older short-window timesteps keep
	// the error columns scored when they were newest).
	idLast := inc.rowA
	dp, sr, cr := c.decP.Row(omega-1), te.sinS.Row(omega-1), te.cosS.Row(omega-1)
	for j := 0; j < dm; j++ {
		idLast[j] = dp[j] + (sr[j] + cr[j])
	}
	inc.decodeRow(tm, c, idLast, omega-1, omega == w)
}

// scoreStage2 turns the rolling error matrix into the newest timestep's
// final scores, mirroring windowScores column ω−1: the graph and the
// propagated features are recomputed in full (they are O(N²·ω), cheap),
// the noise reconstruction only for the newest column.
func (inc *incrementalState) scoreStage2(s *StreamDetector) {
	m := s.m
	omega := m.cfg.ShortWindow
	n := m.n
	if !m.cfg.usesNoise() {
		for v := 0; v < n; v++ {
			s.scores[v] = math.Abs(inc.e.At(v, omega-1))
		}
		return
	}
	sc := s.sc
	var a *tensor.Dense
	switch m.cfg.Variant {
	case VariantStaticGraph:
		sc.adj.Fill(1)
		a = sc.adj
	case VariantDynamicGraph:
		inc.dynBackup.CopyFrom(s.dyn.a)
		a = s.dyn.nextInto(windowGraphInto(inc.e, sc.adj), sc.adj)
	default:
		a = windowGraphInto(inc.e, sc.adj)
	}
	h := propagateInto(a, inc.e, sc.h)
	col := omega - 1
	wTheta := m.noise.W.Value
	bias := m.noise.B.Value.Data[col]
	for v := 0; v < n; v++ {
		hrow := h.Row(v)
		var acc float64
		for k, hv := range hrow {
			if hv == 0 {
				continue
			}
			acc += hv * wTheta.At(k, col)
		}
		yhat2 := math.Tanh(acc + bias)
		s.scores[v] = math.Abs(inc.e.At(v, col) - yhat2)
	}
}

// shiftRowsUp drops row 0 and moves every other row up one slot; the freed
// last row is left to be overwritten by the caller.
func shiftRowsUp(t *tensor.Dense) {
	copy(t.Data, t.Data[t.Cols:])
}
