package core

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"aero/internal/ag"
	"aero/internal/dataset"
	"aero/internal/evt"
	"aero/internal/stats"
	"aero/internal/tensor"
	"aero/internal/window"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Model is a trained (or trainable) AERO detector over a fixed number of
// variates. Create one with New, train with Fit, then call Scores or
// Detect on test series.
type Model struct {
	cfg Config
	n   int

	temporal *temporalModule
	noise    *noiseModule

	norm    *window.Normalizer
	dtScale float64
	thr     evt.Threshold
	trained bool

	// Epochs1 and Epochs2 record how many epochs each stage actually ran
	// (after early stopping); useful for efficiency reporting.
	Epochs1, Epochs2 int
}

// New constructs an untrained AERO model for n variates.
func New(cfg Config, n int) (*Model, error) {
	cfg = cfg.normalized()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("core: need at least one variate, got %d", n)
	}
	rng := newRand(cfg.Seed)
	inDim := 1
	if cfg.multivariateInput() {
		inDim = n
	}
	m := &Model{cfg: cfg, n: n, dtScale: 1}
	if cfg.usesTemporal() {
		m.temporal = newTemporalModule(cfg, inDim, rng)
	}
	if cfg.usesNoise() {
		m.noise = newNoiseModule(cfg.ShortWindow, cfg.Seed+1)
	}
	return m, nil
}

// Config returns the model's (normalized) configuration.
func (m *Model) Config() Config { return m.cfg }

// Variates returns the number of variates (stars) the model was built for.
func (m *Model) Variates() int { return m.n }

// prepared holds a series after normalization, ready for windowing.
type prepared struct {
	data [][]float64 // normalized to [0, 1]
	time []float64
}

func (m *Model) prepare(s *dataset.Series) *prepared {
	return &prepared{data: m.norm.Transform(s.Data), time: s.Time}
}

// times assembles the window-local positions and normalized intervals for
// the window ending at index end. A non-nil buf supplies the slices so
// repeated calls do not allocate; both the scoring scratch and the training
// scratch thread their own buffer through here.
func (m *Model) times(p *prepared, end int, buf *windowTimes) windowTimes {
	w, omega := m.cfg.LongWindow, m.cfg.ShortWindow
	var wt windowTimes
	if buf != nil {
		wt = *buf
	} else {
		wt = windowTimes{
			posL: make([]float64, w), dtL: make([]float64, w),
			posS: make([]float64, omega), dtS: make([]float64, omega),
		}
	}
	start := end - w + 1
	for i := 0; i < w; i++ {
		idx := start + i
		wt.posL[i] = float64(i)
		if idx > 0 {
			wt.dtL[i] = (p.time[idx] - p.time[idx-1]) / m.dtScale
		} else {
			wt.dtL[i] = 1
		}
	}
	copy(wt.posS, wt.posL[w-omega:])
	copy(wt.dtS, wt.dtL[w-omega:])
	return wt
}

// longShort extracts the long (W×inDim) and short (ω×inDim) input matrices
// for the window ending at end. In univariate mode inDim is 1 and v selects
// the variate; in multivariate mode v is ignored and columns are variates.
// A non-nil slot supplies reusable input buffers.
func (m *Model) longShort(p *prepared, v, end int, slot *varSlot) (long, short *tensor.Dense) {
	w, omega := m.cfg.LongWindow, m.cfg.ShortWindow
	if m.cfg.multivariateInput() {
		if slot != nil {
			long, short = slot.long, slot.short
		} else {
			long, short = tensor.New(w, m.n), tensor.New(omega, m.n)
		}
		for i := 0; i < w; i++ {
			for vv := 0; vv < m.n; vv++ {
				long.Set(i, vv, p.data[vv][end-w+1+i])
			}
		}
		copy(short.Data, long.Data[(w-omega)*m.n:])
		return long, short
	}
	if slot != nil {
		long, short = slot.long, slot.short
	} else {
		long, short = tensor.New(w, 1), tensor.New(omega, 1)
	}
	src := window.Slice(p.data[v], end, w)
	copy(long.Data, src)
	copy(short.Data, src[w-omega:])
	return long, short
}

// yShort returns the normalized short-window targets as an N×ω matrix
// (rows are variates), the layout stage 2 works in.
func (m *Model) yShort(p *prepared, end int, sc *scratch) *tensor.Dense {
	omega := m.cfg.ShortWindow
	var y *tensor.Dense
	if sc != nil {
		y = sc.y
	} else {
		y = tensor.New(m.n, omega)
	}
	for v := 0; v < m.n; v++ {
		copy(y.Row(v), window.Slice(p.data[v], end, omega))
	}
	return y
}

// reconstruct runs the stage-1 forward for every variate and returns
// Ŷ1 as an N×ω matrix. The result carries no gradients; training uses
// stage1Step instead. Returns the all-zero matrix for VariantNoTemporal.
// With a scratch, all buffers and tapes are reused and the fan-out follows
// the scratch's slots instead of spawning ad-hoc workers.
func (m *Model) reconstruct(p *prepared, end int, sc *scratch) *tensor.Dense {
	omega := m.cfg.ShortWindow
	var out *tensor.Dense
	if sc != nil {
		out = sc.yhat1
		out.Zero()
	} else {
		out = tensor.New(m.n, omega)
	}
	if !m.cfg.usesTemporal() {
		return out
	}
	var wtBuf *windowTimes
	if sc != nil {
		wtBuf = &sc.wt
	}
	wt := m.times(p, end, wtBuf)
	if m.cfg.multivariateInput() {
		t, slot := m.inferenceTape(sc, 0)
		long, short := m.longShort(p, 0, end, slot)
		pred := m.temporal.forwardCap(t, long, short, wt, sc.capFor(0)) // ω×N
		for v := 0; v < m.n; v++ {
			for i := 0; i < omega; i++ {
				out.Set(v, i, pred.Value.At(i, v))
			}
		}
		return out
	}
	if sc != nil {
		if len(sc.slots) == 1 {
			// Closure-free sequential path: keeps the single-slot case
			// (training, streaming) allocation-free — a closure here would
			// heap-box its captures on every window.
			slot := sc.slots[0]
			for v := 0; v < m.n; v++ {
				slot.tape.Reset()
				long, short := m.longShort(p, v, end, slot)
				pred := m.temporal.forwardCap(slot.tape, long, short, wt, sc.capFor(v)) // ω×1
				copy(out.Row(v), pred.Value.Data)
			}
			return out
		}
		m.reconstructFan(p, end, wt, sc, out)
		return out
	}
	m.parallelVariates(func(v int) {
		t := ag.NewInferenceTape()
		long, short := m.longShort(p, v, end, nil)
		pred := m.temporal.forward(t, long, short, wt) // ω×1
		copy(out.Row(v), pred.Value.Data)
	})
	return out
}

// reconstructFan is the multi-slot stage-1 fan-out of reconstruct, split
// out so the sequential path above stays free of closure captures.
func (m *Model) reconstructFan(p *prepared, end int, wt windowTimes, sc *scratch, out *tensor.Dense) {
	sc.runSlots(m.n, func(v int, slot *varSlot) {
		slot.tape.Reset()
		long, short := m.longShort(p, v, end, slot)
		pred := m.temporal.forwardCap(slot.tape, long, short, wt, sc.capFor(v)) // ω×1
		copy(out.Row(v), pred.Value.Data)
	})
}

// inferenceTape returns a reset forward-only tape, drawn from the scratch
// slot i when available.
func (m *Model) inferenceTape(sc *scratch, i int) (*ag.Tape, *varSlot) {
	if sc != nil {
		slot := sc.slots[i]
		slot.tape.Reset()
		return slot.tape, slot
	}
	return ag.NewInferenceTape(), nil
}

// stage1Errors computes E = Y − Ŷ1 for the window ending at end — the
// quantity both the scoring path and the graph-snapshot path are built on.
func (m *Model) stage1Errors(p *prepared, end int, sc *scratch) *tensor.Dense {
	y := m.yShort(p, end, sc)
	yhat1 := m.reconstruct(p, end, sc)
	if sc != nil {
		e := sc.e
		for i := range e.Data {
			e.Data[i] = y.Data[i] - yhat1.Data[i]
		}
		return e
	}
	return y.Sub(yhat1)
}

// adjacency returns the graph for the window given its stage-1 errors,
// respecting the graph ablation variants. dyn is non-nil only for
// VariantDynamicGraph.
func (m *Model) adjacency(e *tensor.Dense, dyn *dynamicGraphState, sc *scratch) *tensor.Dense {
	switch m.cfg.Variant {
	case VariantStaticGraph:
		if sc != nil {
			sc.adj.Fill(1)
			return sc.adj
		}
		return completeGraph(m.n)
	case VariantDynamicGraph:
		if sc != nil {
			return dyn.nextInto(windowGraphInto(e, sc.adj), sc.adj)
		}
		return dyn.next(windowGraph(e))
	default:
		if sc != nil {
			return windowGraphInto(e, sc.adj)
		}
		return windowGraph(e)
	}
}

// windowScores computes the final per-point anomaly scores
// |Y − Ŷ1 − Ŷ2| for one window (N×ω), plus the intermediate stage-1
// errors. dyn is the evolving-graph state for the dynamic ablation. With a
// non-nil scratch the returned tensors are owned by the scratch and remain
// valid only until its next use. The nil-scratch path is the allocating
// reference implementation: every production caller passes a scratch, and
// TestScratchScoringMatchesAllocatingPath pins the two paths bit-identical
// so they cannot silently diverge.
func (m *Model) windowScores(p *prepared, end int, dyn *dynamicGraphState, sc *scratch) (final, e1 *tensor.Dense) {
	e := m.stage1Errors(p, end, sc)
	return m.noiseScores(e, dyn, sc), e
}

// noiseScores is windowScores' second stage — graph propagation and noise
// reconstruction over already-computed stage-1 errors. It is split out so
// the incremental refresh path can feed it row-kernel-derived errors and
// stay bit-identical to the tape path: both run literally this code.
func (m *Model) noiseScores(e *tensor.Dense, dyn *dynamicGraphState, sc *scratch) (final *tensor.Dense) {
	if !m.cfg.usesNoise() {
		if sc != nil {
			final = sc.final
			for i := range final.Data {
				final.Data[i] = math.Abs(e.Data[i])
			}
			return final
		}
		return e.Apply(math.Abs)
	}
	a := m.adjacency(e, dyn, sc)
	// Propagate the stage-1 *error patterns* (Algorithm 1: M2(Y−Ŷ1, Y);
	// §III-D: a noise-affected variate "can be effectively reconstructed
	// using the error patterns of other similarly affected variates").
	var h *tensor.Dense
	if sc != nil {
		h = propagateInto(a, e, sc.h)
	} else {
		h = propagate(a, e)
	}
	var t *ag.Tape
	if sc != nil {
		t = sc.noiseTape
		t.Reset()
	} else {
		t = ag.NewInferenceTape()
	}
	yhat2 := m.noise.forward(t, h)
	if sc != nil {
		final = sc.final
	} else {
		final = tensor.New(e.Rows, e.Cols)
	}
	for i := range final.Data {
		final.Data[i] = math.Abs(e.Data[i] - yhat2.Value.Data[i])
	}
	return final
}

// parallelVariates runs f(v) for every variate using the configured worker
// count.
func (m *Model) parallelVariates(f func(v int)) {
	workers := m.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m.n {
		workers = m.n
	}
	if workers <= 1 {
		for v := 0; v < m.n; v++ {
			f(v)
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := range ch {
				f(v)
			}
		}()
	}
	for v := 0; v < m.n; v++ {
		ch <- v
	}
	close(ch)
	wg.Wait()
}

// Fit trains the model on the (unsupervised) training series following
// Algorithm 1, then calibrates the POT threshold on the training scores
// (Eq. 18).
func (m *Model) Fit(train *dataset.Series) error {
	if train.N() != m.n {
		return fmt.Errorf("core: model built for %d variates, series has %d", m.n, train.N())
	}
	if train.Len() < m.cfg.LongWindow {
		return fmt.Errorf("core: series length %d shorter than window %d", train.Len(), m.cfg.LongWindow)
	}
	m.norm = window.FitNormalizer(train.Data)
	if d := stats.Median(stats.Diff(train.Time)); d > 0 {
		m.dtScale = d
	}
	p := m.prepare(train)

	if m.cfg.usesTemporal() {
		m.Epochs1 = m.trainStage1(p)
	}
	if m.cfg.usesNoise() {
		m.Epochs2 = m.trainStage2(p)
	}

	// Threshold calibration on training scores (paper Eq. 18: s is the
	// collection of anomaly scores over training instances, pooled across
	// variates into one global POT threshold).
	scores := m.scoreSeries(p)
	pool := make([]float64, 0, len(scores)*len(scores[0]))
	for _, row := range scores {
		pool = append(pool, row...)
	}
	th, err := evt.POT(pool, m.cfg.POTLevel, m.cfg.POTQ)
	if err != nil && th.Z == 0 {
		return fmt.Errorf("core: threshold calibration: %w", err)
	}
	m.thr = th
	m.trained = true
	return nil
}

// scoreSeries produces per-variate, per-timestamp anomaly scores for a
// prepared series, following Algorithm 2 with the configured EvalStride.
// Timestamps before the first full window score zero.
//
// Every worker owns one scratch, so window scoring reuses its buffers and
// tapes instead of re-allocating per window; each window writes a disjoint
// score range ((prevEnd, end], clipped to the short window), which makes
// the copy-out safe to run inside the workers.
func (m *Model) scoreSeries(p *prepared) [][]float64 {
	T := len(p.time)
	scores := make([][]float64, m.n)
	for v := range scores {
		scores[v] = make([]float64, T)
	}
	insts := window.Indices(T, m.cfg.LongWindow, m.cfg.EvalStride)
	omega := m.cfg.ShortWindow

	writeWindow := func(i int, final *tensor.Dense) {
		inst := insts[i]
		prevEnd := insts[0].End - omega // first window covers its whole suffix
		if i > 0 {
			prevEnd = insts[i-1].End
		}
		lo := prevEnd + 1
		if lo < inst.End-omega+1 {
			lo = inst.End - omega + 1
		}
		for t := lo; t <= inst.End; t++ {
			col := omega - 1 - (inst.End - t)
			for v := 0; v < m.n; v++ {
				scores[v][t] = final.At(v, col)
			}
		}
	}

	if m.cfg.Variant == VariantDynamicGraph {
		// The evolving graph is sequential by construction.
		dyn := newDynamicGraphState(m.n)
		sc := m.newScratch(1)
		for i, inst := range insts {
			final, _ := m.windowScores(p, inst.End, dyn, sc)
			writeWindow(i, final)
		}
		return scores
	}
	m.parallelWindows(len(insts), func(i int, sc *scratch) {
		final, _ := m.windowScores(p, insts[i].End, nil, sc)
		writeWindow(i, final)
	})
	return scores
}

// parallelWindows runs f(i, sc) for i in [0, n) on the configured worker
// pool; each worker owns a single-slot scratch so stage-1 forwards run
// sequentially within a window while windows proceed in parallel.
func (m *Model) parallelWindows(n int, f func(i int, sc *scratch)) {
	workers := m.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		sc := m.newScratch(1)
		for i := 0; i < n; i++ {
			f(i, sc)
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := m.newScratch(1)
			for i := range ch {
				f(i, sc)
			}
		}()
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
}

// Scores returns anomaly scores (N×T) for a series. The model must have
// been fitted.
func (m *Model) Scores(s *dataset.Series) ([][]float64, error) {
	if !m.trained {
		return nil, fmt.Errorf("core: model not fitted")
	}
	if s.N() != m.n {
		return nil, fmt.Errorf("core: model built for %d variates, series has %d", m.n, s.N())
	}
	if s.Len() < m.cfg.LongWindow {
		return nil, fmt.Errorf("core: series length %d shorter than window %d", s.Len(), m.cfg.LongWindow)
	}
	return m.scoreSeries(m.prepare(s)), nil
}

// Threshold returns the calibrated POT threshold.
func (m *Model) Threshold() float64 { return m.thr.Z }

// ThresholdInfo returns the full POT calibration result.
func (m *Model) ThresholdInfo() evt.Threshold { return m.thr }

// Detect scores the series and applies the calibrated threshold, returning
// binary labels (N×T).
func (m *Model) Detect(s *dataset.Series) ([][]bool, error) {
	scores, err := m.Scores(s)
	if err != nil {
		return nil, err
	}
	out := make([][]bool, m.n)
	for v := range scores {
		out[v] = make([]bool, len(scores[v]))
		for t, sc := range scores[v] {
			out[v][t] = sc >= m.thr.Z
		}
	}
	return out, nil
}

// StageErrors returns the stage-1 reconstruction error |Y − Ŷ1| and the
// final error |Y − Ŷ1 − Ŷ2| per variate and timestamp — the series
// visualized in the paper's Fig. 9.
func (m *Model) StageErrors(s *dataset.Series) (stage1, final [][]float64, err error) {
	if !m.trained {
		return nil, nil, fmt.Errorf("core: model not fitted")
	}
	p := m.prepare(s)
	T := len(p.time)
	stage1 = make([][]float64, m.n)
	final = make([][]float64, m.n)
	for v := 0; v < m.n; v++ {
		stage1[v] = make([]float64, T)
		final[v] = make([]float64, T)
	}
	insts := window.Indices(T, m.cfg.LongWindow, m.cfg.EvalStride)
	var dyn *dynamicGraphState
	if m.cfg.Variant == VariantDynamicGraph {
		dyn = newDynamicGraphState(m.n)
	}
	sc := m.newScratch(1)
	omega := m.cfg.ShortWindow
	prevEnd := insts[0].End - omega
	for _, inst := range insts {
		fin, e1 := m.windowScores(p, inst.End, dyn, sc)
		lo := prevEnd + 1
		if lo < inst.End-omega+1 {
			lo = inst.End - omega + 1
		}
		for t := lo; t <= inst.End; t++ {
			col := omega - 1 - (inst.End - t)
			for v := 0; v < m.n; v++ {
				stage1[v][t] = math.Abs(e1.At(v, col))
				final[v][t] = fin.At(v, col)
			}
		}
		prevEnd = inst.End
	}
	return stage1, final, nil
}

// GraphAt returns the window-wise learned adjacency matrix (before
// self-loop removal) for the window ending at index end — the structure
// visualized in the paper's Fig. 8.
func (m *Model) GraphAt(s *dataset.Series, end int) (*tensor.Dense, error) {
	if !m.trained {
		return nil, fmt.Errorf("core: model not fitted")
	}
	if end < m.cfg.LongWindow-1 || end >= s.Len() {
		return nil, fmt.Errorf("core: window end %d out of range [%d, %d)", end, m.cfg.LongWindow-1, s.Len())
	}
	p := m.prepare(s)
	return windowGraph(m.stage1Errors(p, end, nil)), nil
}
