package core

import (
	"math"
	"sync"
	"testing"

	"aero/internal/ag"
	"aero/internal/anomaly"
	"aero/internal/dataset"
	"aero/internal/stats"
	"aero/internal/tensor"
)

// tinyDataset builds a small, fast synthetic dataset: concurrent noise on
// most variates plus one injected anomaly in the test split.
func tinyDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	cfg := dataset.SyntheticConfig{
		Name: "tiny", N: 6, TrainLen: 400, TestLen: 400,
		NoiseVariates: 4, AnomalySegments: 1, NoisePct: 3,
		VariableFrac: 0.5, Seed: 77,
	}
	return cfg.Generate()
}

func testConfig() Config {
	c := SmallConfig()
	c.Seed = 5
	return c
}

func fitTiny(t *testing.T, cfg Config) (*Model, *dataset.Dataset) {
	t.Helper()
	d := tinyDataset(t)
	m, err := New(cfg, d.Train.N())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := m.Fit(d.Train); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	return m, d
}

// sharedModel fits the standard test configuration once and reuses it for
// all read-only assertions, keeping the package test time manageable.
var sharedOnce sync.Once
var sharedM *Model
var sharedD *dataset.Dataset
var sharedErr error

func shared(t *testing.T) (*Model, *dataset.Dataset) {
	t.Helper()
	sharedOnce.Do(func() {
		cfg := dataset.SyntheticConfig{
			Name: "tiny", N: 6, TrainLen: 400, TestLen: 400,
			NoiseVariates: 4, AnomalySegments: 1, NoisePct: 3,
			VariableFrac: 0.5, Seed: 77,
		}
		sharedD = cfg.Generate()
		sharedM, sharedErr = New(testConfig(), sharedD.Train.N())
		if sharedErr == nil {
			sharedErr = sharedM.Fit(sharedD.Train)
		}
	})
	if sharedErr != nil {
		t.Fatalf("shared fit: %v", sharedErr)
	}
	return sharedM, sharedD
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.LongWindow = 1 },
		func(c *Config) { c.ShortWindow = 0 },
		func(c *Config) { c.ShortWindow = c.LongWindow + 1 },
		func(c *Config) { c.Heads = 3 }, // does not divide ModelDim=16
		func(c *Config) { c.LR = 0 },
		func(c *Config) { c.POTLevel = 1.5 },
		func(c *Config) { c.MaxEpochs = 0 },
		func(c *Config) { c.EncoderLayers = 0 },
	}
	for i, mut := range bad {
		c := SmallConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
	if err := SmallConfig().Validate(); err != nil {
		t.Fatalf("small config should be valid: %v", err)
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config should be valid: %v", err)
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	if _, err := New(SmallConfig(), 0); err == nil {
		t.Fatal("expected error for zero variates")
	}
	c := SmallConfig()
	c.LongWindow = 0
	if _, err := New(c, 4); err == nil {
		t.Fatal("expected config error")
	}
}

func TestVariantStrings(t *testing.T) {
	seen := map[string]bool{}
	for v := VariantFull; v <= VariantDynamicGraph; v++ {
		s := v.String()
		if s == "" || seen[s] {
			t.Fatalf("variant %d has bad/duplicate name %q", v, s)
		}
		seen[s] = true
	}
}

func TestFitRejectsMismatchedSeries(t *testing.T) {
	d := tinyDataset(t)
	m, err := New(testConfig(), 3) // wrong variate count
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(d.Train); err == nil {
		t.Fatal("expected variate mismatch error")
	}
}

func TestScoresBeforeFitErrors(t *testing.T) {
	d := tinyDataset(t)
	m, _ := New(testConfig(), d.Train.N())
	if _, err := m.Scores(d.Test); err == nil {
		t.Fatal("expected not-fitted error")
	}
}

func TestFitAndDetectEndToEnd(t *testing.T) {
	m, d := shared(t)
	if m.Threshold() <= 0 {
		t.Fatalf("threshold %v", m.Threshold())
	}
	if m.Epochs1 < 1 {
		t.Fatal("stage 1 did not run")
	}
	if m.Epochs2 < 1 {
		t.Fatal("stage 2 did not run")
	}
	scores, err := m.Scores(d.Test)
	if err != nil {
		t.Fatalf("Scores: %v", err)
	}
	if len(scores) != d.Test.N() || len(scores[0]) != d.Test.Len() {
		t.Fatal("score shape mismatch")
	}
	for v := range scores {
		for _, s := range scores[v] {
			if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
				t.Fatalf("invalid score %v", s)
			}
		}
	}
	// Anomalous points must on average score higher than normal points.
	var anom, norm []float64
	for v := range scores {
		for i, s := range scores[v] {
			if i < m.Config().LongWindow {
				continue
			}
			if d.Test.Labels[v][i] {
				anom = append(anom, s)
			} else if !d.Test.NoiseMask[v][i] {
				norm = append(norm, s)
			}
		}
	}
	if len(anom) == 0 {
		t.Skip("anomaly fell before the first full window")
	}
	if stats.Mean(anom) <= stats.Mean(norm) {
		t.Fatalf("anomaly scores (%.4f) not above normal scores (%.4f)",
			stats.Mean(anom), stats.Mean(norm))
	}

	pred, err := m.Detect(d.Test)
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}
	var c anomaly.Confusion
	for v := range pred {
		c.Add(anomaly.EvaluateAdjusted(pred[v], d.Test.Labels[v]))
	}
	if c.Recall() == 0 {
		t.Fatal("detector missed every anomaly segment")
	}
}

func TestNoiseModuleSuppressesConcurrentNoise(t *testing.T) {
	m, d := shared(t)
	stage1, final, err := m.StageErrors(d.Test)
	if err != nil {
		t.Fatalf("StageErrors: %v", err)
	}
	// Over noise-affected points, the final error should not exceed the
	// stage-1 error on average: stage 2 exists to reconstruct exactly
	// those deviations.
	var e1, ef []float64
	for v := range stage1 {
		for i := m.Config().LongWindow; i < len(stage1[v]); i++ {
			if d.Test.NoiseMask[v][i] && !d.Test.Labels[v][i] {
				e1 = append(e1, stage1[v][i])
				ef = append(ef, final[v][i])
			}
		}
	}
	if len(e1) == 0 {
		t.Skip("no scored noise points")
	}
	if stats.Mean(ef) > stats.Mean(e1)*1.05 {
		t.Fatalf("stage 2 amplified noise errors: stage1 %.4f final %.4f",
			stats.Mean(e1), stats.Mean(ef))
	}
}

func TestGraphAtCapturesConcurrency(t *testing.T) {
	m, d := shared(t)
	// Find a timestamp with concurrent noise and a full window behind it.
	end := -1
	for i := m.Config().LongWindow; i < d.Test.Len(); i++ {
		count := 0
		for v := 0; v < d.Test.N(); v++ {
			if d.Test.NoiseMask[v][i] {
				count++
			}
		}
		if count >= 3 {
			end = i
			break
		}
	}
	if end < 0 {
		t.Skip("no concurrent noise window in test split")
	}
	g, err := m.GraphAt(d.Test, end)
	if err != nil {
		t.Fatalf("GraphAt: %v", err)
	}
	if g.Rows != d.Test.N() || g.Cols != d.Test.N() {
		t.Fatal("graph shape")
	}
	// Symmetric with unit diagonal, entries in [0, 1].
	for i := 0; i < g.Rows; i++ {
		if math.Abs(g.At(i, i)-1) > 1e-9 {
			t.Fatal("diagonal must be 1")
		}
		for j := 0; j < g.Cols; j++ {
			if g.At(i, j) < 0 || g.At(i, j) > 1+1e-9 {
				t.Fatalf("edge weight %v outside [0,1]", g.At(i, j))
			}
			if math.Abs(g.At(i, j)-g.At(j, i)) > 1e-9 {
				t.Fatal("graph must be symmetric")
			}
		}
	}
	// Noisy pair should be more similar than a noisy/quiet pair on average.
	noisy := []int{}
	quiet := []int{}
	for v := 0; v < d.Test.N(); v++ {
		if d.Test.NoiseMask[v][end] {
			noisy = append(noisy, v)
		} else {
			quiet = append(quiet, v)
		}
	}
	if len(noisy) >= 2 && len(quiet) >= 1 {
		var within, across []float64
		for _, a := range noisy {
			for _, b := range noisy {
				if a < b {
					within = append(within, g.At(a, b))
				}
			}
			for _, q := range quiet {
				across = append(across, g.At(a, q))
			}
		}
		if stats.Mean(within) <= stats.Mean(across) {
			t.Logf("warning: within-noise similarity %.3f not above cross similarity %.3f",
				stats.Mean(within), stats.Mean(across))
		}
	}
}

func TestGraphAtRangeChecks(t *testing.T) {
	m, d := shared(t)
	if _, err := m.GraphAt(d.Test, 0); err == nil {
		t.Fatal("expected range error for end before first window")
	}
	if _, err := m.GraphAt(d.Test, d.Test.Len()); err == nil {
		t.Fatal("expected range error past series end")
	}
}

func TestAllVariantsTrainAndScore(t *testing.T) {
	d := tinyDataset(t)
	for v := VariantFull; v <= VariantDynamicGraph; v++ {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			cfg := testConfig()
			cfg.Variant = v
			cfg.MaxEpochs = 2
			m, err := New(cfg, d.Train.N())
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			if err := m.Fit(d.Train); err != nil {
				t.Fatalf("Fit: %v", err)
			}
			scores, err := m.Scores(d.Test)
			if err != nil {
				t.Fatalf("Scores: %v", err)
			}
			for _, row := range scores {
				for _, s := range row {
					if math.IsNaN(s) || math.IsInf(s, 0) {
						t.Fatal("invalid score")
					}
				}
			}
		})
	}
}

func TestNoShortWindowVariantUsesFullWindow(t *testing.T) {
	cfg := testConfig()
	cfg.Variant = VariantNoShortWindow
	m, err := New(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Config().ShortWindow; got != m.Config().LongWindow {
		t.Fatalf("short window %d, want %d", got, m.Config().LongWindow)
	}
}

func TestEvalStrideOneMatchesDenser(t *testing.T) {
	// Stride-1 scoring must produce scores for every timestamp after the
	// first window and agree with coarser strides at the window ends.
	cfg := testConfig()
	cfg.MaxEpochs = 1
	m, d := fitTiny(t, cfg)
	s1, err := m.Scores(d.Test)
	if err != nil {
		t.Fatal(err)
	}
	W := m.Config().LongWindow
	for v := range s1 {
		for i := W; i < len(s1[v]); i++ {
			if s1[v][i] == 0 {
				// A zero score is possible but all-zero would be a bug.
				continue
			}
			break
		}
	}
	var nonzero int
	for v := range s1 {
		for i := W; i < len(s1[v]); i++ {
			if s1[v][i] != 0 {
				nonzero++
			}
		}
	}
	if nonzero == 0 {
		t.Fatal("no timestamps after first window were scored")
	}
}

func TestTimeEmbeddingShapeAndRange(t *testing.T) {
	te := NewTimeEmbedding(8)
	tp := ag.NewTape()
	pos := []float64{0, 1, 2, 3}
	dt := []float64{1, 1, 2, 0.5}
	out := te.Forward(tp, pos, dt)
	if out.Rows() != 4 || out.Cols() != 8 {
		t.Fatalf("shape %dx%d", out.Rows(), out.Cols())
	}
	// sin+cos is bounded by sqrt(2).
	for _, v := range out.Value.Data {
		if math.Abs(v) > math.Sqrt2+1e-9 {
			t.Fatalf("embedding value %v out of range", v)
		}
	}
}

func TestTimeEmbeddingSensitiveToIntervals(t *testing.T) {
	te := NewTimeEmbedding(8)
	tp := ag.NewTape()
	pos := []float64{0, 1, 2, 3}
	a := te.Forward(tp, pos, []float64{1, 1, 1, 1})
	b := te.Forward(tp, pos, []float64{1, 1, 5, 1})
	diff := a.Value.Sub(b.Value)
	if diff.Norm() == 0 {
		t.Fatal("time embedding ignores intervals")
	}
}

func TestWindowGraphSelfSimilarityAndClamp(t *testing.T) {
	e := tensorFromRows([][]float64{
		{1, 2, 3},
		{2, 4, 6},    // parallel to row 0 → sim 1
		{-1, -2, -3}, // anti-parallel → clamped to 0
	})
	g := windowGraph(e)
	if math.Abs(g.At(0, 1)-1) > 1e-9 {
		t.Fatalf("parallel similarity %v", g.At(0, 1))
	}
	if g.At(0, 2) != 0 {
		t.Fatalf("anti-parallel similarity should clamp to 0, got %v", g.At(0, 2))
	}
}

func TestPropagateRemovesSelfLoops(t *testing.T) {
	// Node 2 is isolated: propagation must leave its row zero.
	a := tensorFromRows([][]float64{
		{1, 1, 0},
		{1, 1, 0},
		{0, 0, 1},
	})
	y := tensorFromRows([][]float64{
		{1, 1},
		{3, 3},
		{9, 9},
	})
	h := propagate(a, y)
	// Row 0 borrows only from node 1 (self excluded): expect 3.
	if math.Abs(h.At(0, 0)-3) > 1e-9 {
		t.Fatalf("row 0 = %v, want 3 (neighbour value)", h.At(0, 0))
	}
	if h.At(2, 0) != 0 || h.At(2, 1) != 0 {
		t.Fatal("isolated node must receive nothing")
	}
}

func TestDynamicGraphStateSmooths(t *testing.T) {
	d := newDynamicGraphState(2)
	sparse := tensorFromRows([][]float64{{1, 0}, {0, 1}})
	first := d.next(sparse)
	// After one step, off-diagonal should still be near the initial 1.
	if first.At(0, 1) < 0.8 {
		t.Fatalf("dynamic graph forgot history too fast: %v", first.At(0, 1))
	}
	for i := 0; i < 100; i++ {
		d.next(sparse)
	}
	if d.a.At(0, 1) > 0.01 {
		t.Fatalf("dynamic graph should converge to observations: %v", d.a.At(0, 1))
	}
}

// tensorFromRows is a tiny test helper building a dense matrix from rows.
func tensorFromRows(rows [][]float64) *tensor.Dense { return tensor.FromRows(rows) }
