package core

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundtrip(t *testing.T) {
	m, d := shared(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loaded.Threshold() != m.Threshold() {
		t.Fatalf("threshold drifted: %v vs %v", loaded.Threshold(), m.Threshold())
	}
	if loaded.Epochs1 != m.Epochs1 || loaded.Epochs2 != m.Epochs2 {
		t.Fatal("epoch bookkeeping lost")
	}
	// The loaded model must score identically.
	want, err := m.Scores(d.Test)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Scores(d.Test)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		for i := range want[v] {
			if math.Abs(want[v][i]-got[v][i]) > 1e-12 {
				t.Fatalf("score mismatch at v=%d t=%d: %v vs %v", v, i, want[v][i], got[v][i])
			}
		}
	}
}

func TestSaveUnfittedFails(t *testing.T) {
	m, err := New(testConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Fatal("expected error saving unfitted model")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected error")
	}
}

func TestLoadCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestLoadRejectsShapeMismatch(t *testing.T) {
	m, _ := shared(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var st modelState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	st.Shapes[0][0]++ // corrupt the first parameter's shape
	bad, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	badPath := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(badPath); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestLoadRejectsUnknownVersion(t *testing.T) {
	m, _ := shared(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var st modelState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	st.Version = 99
	bad, _ := json.Marshal(st)
	badPath := filepath.Join(t.TempDir(), "v99.json")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(badPath); err == nil {
		t.Fatal("expected version error")
	}
}

func TestBandedAttentionTrainsAndScores(t *testing.T) {
	cfg := testConfig()
	cfg.AttentionBand = 8
	cfg.MaxEpochs = 2
	m, d := fitTiny(t, cfg)
	scores, err := m.Scores(d.Test)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range scores {
		for _, s := range row {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				t.Fatal("invalid score with banded attention")
			}
		}
	}
}

func TestBandedAttentionSurvivesSaveLoad(t *testing.T) {
	cfg := testConfig()
	cfg.AttentionBand = 8
	cfg.MaxEpochs = 1
	m, _ := fitTiny(t, cfg)
	path := filepath.Join(t.TempDir(), "banded.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Config().AttentionBand != 8 {
		t.Fatal("attention band not persisted")
	}
}
