package core

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundtrip(t *testing.T) {
	m, d := shared(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loaded.Threshold() != m.Threshold() {
		t.Fatalf("threshold drifted: %v vs %v", loaded.Threshold(), m.Threshold())
	}
	if loaded.Epochs1 != m.Epochs1 || loaded.Epochs2 != m.Epochs2 {
		t.Fatal("epoch bookkeeping lost")
	}
	// The loaded model must score identically.
	want, err := m.Scores(d.Test)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Scores(d.Test)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		for i := range want[v] {
			if math.Abs(want[v][i]-got[v][i]) > 1e-12 {
				t.Fatalf("score mismatch at v=%d t=%d: %v vs %v", v, i, want[v][i], got[v][i])
			}
		}
	}
}

func TestSaveUnfittedFails(t *testing.T) {
	m, err := New(testConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Fatal("expected error saving unfitted model")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected error")
	}
}

func TestLoadCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestLoadRejectsShapeMismatch(t *testing.T) {
	m, _ := shared(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var st modelState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	st.Shapes[0][0]++ // corrupt the first parameter's shape
	bad, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	badPath := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(badPath); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestLoadRejectsUnknownVersion(t *testing.T) {
	m, _ := shared(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var st modelState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	st.Version = 99
	bad, _ := json.Marshal(st)
	badPath := filepath.Join(t.TempDir(), "v99.json")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(badPath); err == nil {
		t.Fatal("expected version error")
	}
}

// mutateSavedModel saves the shared model, applies f to the decoded state,
// and writes the re-marshalled result to a fresh path.
func mutateSavedModel(t *testing.T, f func(st *modelState)) string {
	t.Helper()
	m, _ := shared(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var st modelState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	f(&st)
	bad, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	badPath := filepath.Join(t.TempDir(), "mutated.json")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	return badPath
}

// TestLoadRejectsShapesCountMismatch pins the fix for the malformed-file
// panic: a file with fewer shapes than parameter blobs indexed past the
// Shapes slice instead of erroring.
func TestLoadRejectsShapesCountMismatch(t *testing.T) {
	path := mutateSavedModel(t, func(st *modelState) {
		st.Shapes = st.Shapes[:len(st.Shapes)-1]
	})
	if _, err := Load(path); err == nil {
		t.Fatal("expected shapes/params count mismatch error")
	}
}

func TestLoadRejectsParamsCountMismatch(t *testing.T) {
	path := mutateSavedModel(t, func(st *modelState) {
		st.Params = st.Params[:len(st.Params)-1]
		st.Shapes = st.Shapes[:len(st.Shapes)-1]
	})
	if _, err := Load(path); err == nil {
		t.Fatal("expected parameter count mismatch error")
	}
}

func TestLoadRejectsParamSizeMismatch(t *testing.T) {
	path := mutateSavedModel(t, func(st *modelState) {
		st.Params[0] = st.Params[0][:len(st.Params[0])-1]
	})
	if _, err := Load(path); err == nil {
		t.Fatal("expected parameter size mismatch error")
	}
}

func TestLoadRejectsNormalizerMismatch(t *testing.T) {
	path := mutateSavedModel(t, func(st *modelState) {
		st.NormLo = st.NormLo[:1]
	})
	if _, err := Load(path); err == nil {
		t.Fatal("expected normalizer bounds mismatch error")
	}
}

// TestLoadTruncatedFile simulates the crash-mid-write Save used to allow:
// a prefix of a valid model file must be a parse error, not a panic.
func TestLoadTruncatedFile(t *testing.T) {
	m, _ := shared(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, len(blob) / 2, len(blob) - 1} {
		truncPath := filepath.Join(t.TempDir(), "trunc.json")
		if err := os.WriteFile(truncPath, blob[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(truncPath); err == nil {
			t.Fatalf("expected error loading %d-byte prefix", cut)
		}
	}
}

// TestSaveAtomicLeavesNoResidue checks the temp-file+rename discipline:
// after a Save (including an overwrite of an existing checkpoint) the
// directory holds exactly the final file, and it loads.
func TestSaveAtomicLeavesNoResidue(t *testing.T) {
	m, _ := shared(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	for i := 0; i < 2; i++ { // second pass renames over the existing file
		if err := m.Save(path); err != nil {
			t.Fatal(err)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 || entries[0].Name() != "model.json" {
			names := make([]string, len(entries))
			for j, e := range entries {
				names[j] = e.Name()
			}
			t.Fatalf("save pass %d left %v, want exactly [model.json]", i, names)
		}
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
}

func TestBandedAttentionTrainsAndScores(t *testing.T) {
	cfg := testConfig()
	cfg.AttentionBand = 8
	cfg.MaxEpochs = 2
	m, d := fitTiny(t, cfg)
	scores, err := m.Scores(d.Test)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range scores {
		for _, s := range row {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				t.Fatal("invalid score with banded attention")
			}
		}
	}
}

func TestBandedAttentionSurvivesSaveLoad(t *testing.T) {
	cfg := testConfig()
	cfg.AttentionBand = 8
	cfg.MaxEpochs = 1
	m, _ := fitTiny(t, cfg)
	path := filepath.Join(t.TempDir(), "banded.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Config().AttentionBand != 8 {
		t.Fatal("attention band not persisted")
	}
}
