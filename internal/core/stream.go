package core

import (
	"fmt"

	"aero/internal/dataset"
	"aero/internal/tensor"
)

// StreamDetector wraps a trained Model for frame-at-a-time online
// detection (§III-F): each arriving frame (one magnitude per star plus a
// timestamp) lands in a fixed circular buffer of the long-window length,
// and once the window is full every frame is scored against the calibrated
// POT threshold — the paper's Algorithm 2 with stride 1, incrementally.
//
// The hot path is allocation-free in steady state: frames are normalized
// on insertion, the ring never grows, and all scoring buffers (window
// views, time metadata, tensors, autodiff tapes) live in a per-detector
// scratch that is reused on every Push.
//
// A StreamDetector is not safe for concurrent use; the engine package
// provides a sharded multi-tenant front end that serializes access.
type StreamDetector struct {
	m *Model

	// Fixed-size rings over the last LongWindow frames. data holds
	// normalized magnitudes; raw holds the magnitudes as pushed, so Swap
	// and RestoreState can re-normalize the warm window under a different
	// model's bounds. Slot i of each ring is frame (count-1) when
	// (count-1) % w == i.
	times []float64
	data  [][]float64 // [variate][ring slot], normalized
	raw   [][]float64 // [variate][ring slot], as pushed
	count int
	last  float64 // timestamp of the newest frame

	dyn *dynamicGraphState // only for VariantDynamicGraph models

	workers  int // scoring fan-out bound, kept so Swap can rebuild the scratch
	sc       *scratch
	prep     prepared    // chronological window view, rebuilt per score
	prepData [][]float64 // backing storage for prep.data
	scores   []float64   // per-variate score of the newest frame
	alarms   []Alarm     // Push's reusable alarm buffer

	inc *incrementalState // nil when the incremental path is disabled
}

// Frame is one observation instant: the magnitudes of all stars at Time.
type Frame struct {
	Time       float64
	Magnitudes []float64
}

// Alarm reports one star crossing the anomaly threshold at a frame.
type Alarm struct {
	Variate int
	Time    float64
	Score   float64
}

// NewStreamDetector returns an online detector backed by the fitted model,
// scoring with the model's configured worker fan-out.
func NewStreamDetector(m *Model) (*StreamDetector, error) {
	return NewStreamDetectorWorkers(m, 0)
}

// NewStreamDetectorWorkers is NewStreamDetector with an explicit bound on
// the per-frame scoring fan-out (<= 0 uses the model's configuration).
// Multi-detector hosts like the engine pass 1: cross-tenant parallelism
// already saturates the cores, and a single-slot detector keeps the push
// path strictly allocation-free (no per-frame goroutines).
func NewStreamDetectorWorkers(m *Model, workers int) (*StreamDetector, error) {
	if !m.trained {
		return nil, fmt.Errorf("core: streaming requires a fitted model")
	}
	w := m.cfg.LongWindow
	s := &StreamDetector{
		m:        m,
		times:    make([]float64, w),
		data:     make([][]float64, m.n),
		raw:      make([][]float64, m.n),
		workers:  workers,
		sc:       m.newScratch(workers),
		prepData: make([][]float64, m.n),
		scores:   make([]float64, m.n),
		alarms:   make([]Alarm, 0, m.n),
	}
	for v := 0; v < m.n; v++ {
		s.data[v] = make([]float64, w)
		s.raw[v] = make([]float64, w)
		s.prepData[v] = make([]float64, w)
	}
	s.prep.time = make([]float64, w)
	if m.cfg.Variant == VariantDynamicGraph {
		s.dyn = newDynamicGraphState(m.n)
	}
	s.SetIncrementalPolicy(DefaultIncrementalPolicy())
	return s, nil
}

// SetIncrementalPolicy installs an incremental streaming policy (see
// IncrementalPolicy), rebuilding the activation caches from scratch; the
// next scored frame runs a full exact pass that repopulates them. The zero
// policy disables the incremental path. Accumulated stats are preserved.
func (s *StreamDetector) SetIncrementalPolicy(pol IncrementalPolicy) {
	var st IncrementalStats
	if s.inc != nil {
		st = s.inc.stats
	}
	if !pol.enabled() {
		s.inc = nil
		return
	}
	s.inc = newIncrementalState(s.m, pol)
	s.inc.stats = st
}

// IncrementalPolicy returns the active incremental policy (the zero value
// when disabled).
func (s *StreamDetector) IncrementalPolicy() IncrementalPolicy {
	if s.inc == nil {
		return IncrementalPolicy{}
	}
	return s.inc.pol
}

// IncrementalStats reports how scored frames were served so far.
func (s *StreamDetector) IncrementalStats() IncrementalStats {
	if s.inc == nil {
		return IncrementalStats{}
	}
	return s.inc.stats
}

// InvalidateIncremental drops every cached activation; the next scored
// frame runs a full exact pass. Hosts call it whenever the window contents
// changed behind the detector's back (e.g. the engine's frame hygiene
// repaired a frame in place).
func (s *StreamDetector) InvalidateIncremental() {
	if s.inc != nil {
		s.inc.valid = false
	}
}

// rebuildIncremental re-sizes the caches for the current model (geometry
// may change across Swap) while preserving the policy and stats.
func (s *StreamDetector) rebuildIncremental() {
	if s.inc != nil {
		pol := s.inc.pol
		st := s.inc.stats
		s.inc = newIncrementalState(s.m, pol)
		s.inc.stats = st
	}
}

// Kind implements StreamBackend: the AERO backend kind tag.
func (s *StreamDetector) Kind() string { return KindAERO }

// Model returns the fitted model currently serving the detector (the
// latest swapped-in one). Hosts use it to share one set of weights
// across many detectors.
func (s *StreamDetector) Model() *Model { return s.m }

// Variates returns the number of stars each frame must carry.
func (s *StreamDetector) Variates() int { return s.m.n }

// Ready reports whether enough frames have arrived to fill one window.
func (s *StreamDetector) Ready() bool { return s.count >= s.m.cfg.LongWindow }

// LastTime returns the timestamp of the newest frame and whether any frame
// has arrived. After RestoreState, it is the restored cursor — feeds that
// resume a checkpointed detector must continue strictly after it.
func (s *StreamDetector) LastTime() (float64, bool) { return s.last, s.count > 0 }

// Push appends one frame and, once the window is warm, scores it,
// returning the alarms raised at this instant (nil when none). The
// returned slice is owned by the detector and reused by the next Push;
// callers that retain alarms across pushes must copy them out.
func (s *StreamDetector) Push(f Frame) ([]Alarm, error) {
	scores, err := s.PushScores(f)
	if err != nil || scores == nil {
		return nil, err
	}
	s.alarms = s.alarms[:0]
	for v, sc := range scores {
		if sc >= s.m.thr.Z {
			s.alarms = append(s.alarms, Alarm{Variate: v, Time: f.Time, Score: sc})
		}
	}
	if len(s.alarms) == 0 {
		return nil, nil
	}
	return s.alarms, nil
}

// PushScores appends one frame and, once the window is warm, returns the
// raw per-variate scores of this instant (nil during warm-up). The slice
// is reused by the next push. Push derives alarms from these scores; a
// composable alarming stage (see internal/backend's DSPOT wrapper)
// consumes them directly instead.
func (s *StreamDetector) PushScores(f Frame) ([]float64, error) {
	if len(f.Magnitudes) != s.m.n {
		return nil, fmt.Errorf("core: frame has %d stars, model expects %d", len(f.Magnitudes), s.m.n)
	}
	if s.count > 0 && f.Time <= s.last {
		return nil, fmt.Errorf("core: frame time %v not after previous %v", f.Time, s.last)
	}
	w := s.m.cfg.LongWindow
	slot := s.count % w
	s.times[slot] = f.Time
	for v := 0; v < s.m.n; v++ {
		// Normalizing on insertion keeps re-scoring the window from
		// re-transforming all W×N values on every frame; the raw value is
		// retained so Swap/RestoreState can re-normalize later.
		s.raw[v][slot] = f.Magnitudes[v]
		s.data[v][slot] = s.m.norm.TransformValue(v, f.Magnitudes[v])
	}
	s.count++
	s.last = f.Time
	if !s.Ready() {
		return nil, nil
	}
	return s.scoreLast(), nil
}

// window linearizes the rings into the reusable chronological prepared
// view. Callers must consume the view before the next Push.
func (s *StreamDetector) window() *prepared {
	w := s.m.cfg.LongWindow
	head := s.count % w // ring slot of the oldest retained frame
	copy(s.prep.time, s.times[head:])
	copy(s.prep.time[w-head:], s.times[:head])
	for v := 0; v < s.m.n; v++ {
		copy(s.prepData[v], s.data[v][head:])
		copy(s.prepData[v][w-head:], s.data[v][:head])
	}
	s.prep.data = s.prepData
	return &s.prep
}

// scoreLast returns the final anomaly score of the last timestamp per
// variate: the incremental path (with its exact alarm-boundary guard) when
// enabled, the full two-stage forward otherwise. The returned slice is
// reused by the next call.
func (s *StreamDetector) scoreLast() []float64 {
	if s.inc != nil {
		return s.inc.score(s)
	}
	w := s.m.cfg.LongWindow
	p := s.window()
	final, _ := s.m.windowScores(p, w-1, s.dyn, s.sc)
	omega := s.m.cfg.ShortWindow
	for v := 0; v < s.m.n; v++ {
		s.scores[v] = final.At(v, omega-1)
	}
	return s.scores
}

// Swap installs a different fitted model into the warm detector without
// losing the window: the retained raw magnitudes are re-normalized under
// the new model's bounds, so the next Push scores a full window with the
// new weights instead of restarting a cold ring. The new model must have
// the same variate count and long-window length (the ring geometry);
// everything else — weights, normalizer, threshold, short window, even
// the graph variant — may differ.
//
// Swapping in a model with bit-identical weights and calibration (e.g. a
// Save/Load round-trip of the current model) leaves the score stream
// bit-identical: re-normalization applies the same pure function to the
// same raw values.
//
// Like every StreamDetector method, Swap must not race Push; the engine
// serializes the two on the subscription lock so a swap always lands at a
// frame boundary.
func (s *StreamDetector) Swap(m *Model) error {
	if !m.trained {
		return fmt.Errorf("core: cannot swap in an unfitted model")
	}
	if m.n != s.m.n {
		return fmt.Errorf("core: swap model has %d variates, detector has %d", m.n, s.m.n)
	}
	if m.cfg.LongWindow != s.m.cfg.LongWindow {
		return fmt.Errorf("core: swap model window %d, detector window %d", m.cfg.LongWindow, s.m.cfg.LongWindow)
	}
	w := m.cfg.LongWindow
	s.m = m
	s.sc = m.newScratch(s.workers)
	switch {
	case m.cfg.Variant != VariantDynamicGraph:
		s.dyn = nil
	case s.dyn == nil:
		s.dyn = newDynamicGraphState(m.n)
	}
	// Re-normalize the retained window. Ring slots fill in order 0..w-1
	// before wrapping, so exactly min(count, w) leading slots hold frames.
	filled := s.count
	if filled > w {
		filled = w
	}
	for v := 0; v < m.n; v++ {
		for i := 0; i < filled; i++ {
			s.data[v][i] = m.norm.TransformValue(v, s.raw[v][i])
		}
	}
	// Cached activations belong to the old weights (and possibly the old
	// geometry): rebuild, so the next frame scores with a full exact pass.
	s.rebuildIncremental()
	return nil
}

// SwapArtifact implements StreamBackend: the AERO artifact is the model
// JSON written by Model.Save, decoded and installed via Swap (the warm
// window is kept and re-normalized under the new model's bounds).
func (s *StreamDetector) SwapArtifact(artifact []byte) error {
	m, err := LoadBytes(artifact)
	if err != nil {
		return err
	}
	return s.Swap(m)
}

// Threshold returns the alarm threshold in use.
func (s *StreamDetector) Threshold() float64 { return s.m.thr.Z }

// Replay pushes every frame of a series through the detector and returns
// all alarms, a convenience for backtesting archived nights.
func (s *StreamDetector) Replay(series *dataset.Series) ([]Alarm, error) {
	var all []Alarm
	frame := Frame{Magnitudes: make([]float64, series.N())}
	for t := 0; t < series.Len(); t++ {
		frame.Time = series.Time[t]
		for v := 0; v < series.N(); v++ {
			frame.Magnitudes[v] = series.Data[v][t]
		}
		alarms, err := s.Push(frame)
		if err != nil {
			return all, err
		}
		all = append(all, alarms...)
	}
	return all, nil
}

// GraphSnapshot returns the current window-wise learned adjacency, for
// live monitoring dashboards (Fig. 8 in real time). The matrix is a fresh
// copy owned by the caller. Returns an error before the window is warm.
func (s *StreamDetector) GraphSnapshot() (*tensor.Dense, error) {
	if !s.Ready() {
		return nil, fmt.Errorf("core: window not yet full (%d/%d frames)", s.count, s.m.cfg.LongWindow)
	}
	w := s.m.cfg.LongWindow
	p := s.window()
	return windowGraph(s.m.stage1Errors(p, w-1, s.sc)), nil
}
