package core

import (
	"fmt"

	"aero/internal/dataset"
	"aero/internal/tensor"
)

// StreamDetector wraps a trained Model for frame-at-a-time online
// detection (§III-F): each arriving frame (one magnitude per star plus a
// timestamp) is appended to an internal ring of the long-window length,
// and once the window is full every frame is scored against the calibrated
// POT threshold — the paper's Algorithm 2 with stride 1, incrementally.
type StreamDetector struct {
	m *Model

	times []float64
	data  [][]float64 // [variate][ring position], chronological
	count int
}

// Frame is one observation instant: the magnitudes of all stars at Time.
type Frame struct {
	Time       float64
	Magnitudes []float64
}

// Alarm reports one star crossing the anomaly threshold at a frame.
type Alarm struct {
	Variate int
	Time    float64
	Score   float64
}

// NewStreamDetector returns an online detector backed by the fitted model.
func NewStreamDetector(m *Model) (*StreamDetector, error) {
	if !m.trained {
		return nil, fmt.Errorf("core: streaming requires a fitted model")
	}
	return &StreamDetector{
		m:    m,
		data: make([][]float64, m.n),
	}, nil
}

// Ready reports whether enough frames have arrived to fill one window.
func (s *StreamDetector) Ready() bool { return s.count >= s.m.cfg.LongWindow }

// Push appends one frame and, once the window is warm, scores it,
// returning the alarms raised at this instant (empty when none).
func (s *StreamDetector) Push(f Frame) ([]Alarm, error) {
	if len(f.Magnitudes) != s.m.n {
		return nil, fmt.Errorf("core: frame has %d stars, model expects %d", len(f.Magnitudes), s.m.n)
	}
	if s.count > 0 && f.Time <= s.times[len(s.times)-1] {
		return nil, fmt.Errorf("core: frame time %v not after previous %v", f.Time, s.times[len(s.times)-1])
	}
	w := s.m.cfg.LongWindow
	s.times = append(s.times, f.Time)
	for v := 0; v < s.m.n; v++ {
		s.data[v] = append(s.data[v], f.Magnitudes[v])
	}
	// Keep only the trailing window to bound memory.
	if len(s.times) > w {
		s.times = s.times[len(s.times)-w:]
		for v := range s.data {
			s.data[v] = s.data[v][len(s.data[v])-w:]
		}
	}
	s.count++
	if !s.Ready() {
		return nil, nil
	}

	scores := s.scoreLast()
	var alarms []Alarm
	for v, sc := range scores {
		if sc >= s.m.thr.Z {
			alarms = append(alarms, Alarm{Variate: v, Time: f.Time, Score: sc})
		}
	}
	return alarms, nil
}

// scoreLast runs the two-stage forward pass over the current window and
// returns the final anomaly score of the last timestamp per variate.
func (s *StreamDetector) scoreLast() []float64 {
	w := s.m.cfg.LongWindow
	norm := make([][]float64, s.m.n)
	for v := 0; v < s.m.n; v++ {
		norm[v] = make([]float64, w)
		for i, x := range s.data[v] {
			norm[v][i] = s.m.norm.TransformValue(v, x)
		}
	}
	p := &prepared{data: norm, time: s.times}
	final, _ := s.m.windowScores(p, w-1, nil)
	out := make([]float64, s.m.n)
	omega := s.m.cfg.ShortWindow
	for v := 0; v < s.m.n; v++ {
		out[v] = final.At(v, omega-1)
	}
	return out
}

// Threshold returns the alarm threshold in use.
func (s *StreamDetector) Threshold() float64 { return s.m.thr.Z }

// Replay pushes every frame of a series through the detector and returns
// all alarms, a convenience for backtesting archived nights.
func (s *StreamDetector) Replay(series *dataset.Series) ([]Alarm, error) {
	var all []Alarm
	frame := Frame{Magnitudes: make([]float64, series.N())}
	for t := 0; t < series.Len(); t++ {
		frame.Time = series.Time[t]
		for v := 0; v < series.N(); v++ {
			frame.Magnitudes[v] = series.Data[v][t]
		}
		alarms, err := s.Push(frame)
		if err != nil {
			return all, err
		}
		all = append(all, alarms...)
	}
	return all, nil
}

// GraphSnapshot returns the current window-wise learned adjacency, for
// live monitoring dashboards (Fig. 8 in real time). Returns an error
// before the window is warm.
func (s *StreamDetector) GraphSnapshot() (*tensor.Dense, error) {
	if !s.Ready() {
		return nil, fmt.Errorf("core: window not yet full (%d/%d frames)", s.count, s.m.cfg.LongWindow)
	}
	w := s.m.cfg.LongWindow
	norm := make([][]float64, s.m.n)
	for v := 0; v < s.m.n; v++ {
		norm[v] = make([]float64, w)
		for i, x := range s.data[v] {
			norm[v][i] = s.m.norm.TransformValue(v, x)
		}
	}
	p := &prepared{data: norm, time: s.times}
	y := s.m.yShort(p, w-1)
	e := y.Sub(s.m.reconstruct(p, w-1))
	return windowGraph(e), nil
}
