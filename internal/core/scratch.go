package core

import (
	"runtime"
	"sync"

	"aero/internal/ag"
	"aero/internal/tensor"
)

// scratch bundles every reusable buffer needed to score one window so the
// hot path allocates nothing in steady state: the window-time slices, the
// stage-1/stage-2 tensors, and one arena-backed inference tape per scoring
// worker. A scratch belongs to a single logical stream (one StreamDetector,
// or one batch-scoring worker) and must not be shared across goroutines;
// tensors returned by scratch-threaded methods are owned by the scratch and
// remain valid only until its next use.
type scratch struct {
	wt windowTimes // posL/dtL/posS/dtS reused across windows

	y     *tensor.Dense // N×ω short-window targets
	yhat1 *tensor.Dense // N×ω stage-1 reconstruction
	e     *tensor.Dense // N×ω stage-1 errors
	final *tensor.Dense // N×ω final anomaly scores
	adj   *tensor.Dense // N×N window-wise graph
	h     *tensor.Dense // N×ω propagated error features

	noiseTape *ag.Tape

	slots []*varSlot // per-worker stage-1 forward state

	// caps, when non-nil, asks reconstruct to capture each variate's
	// stage-1 intermediate activations (multivariate input uses index 0).
	// Only the streaming incremental path attaches captures, and only for
	// the duration of a refresh pass.
	caps []*temporalCapture
}

// capFor returns the capture attached for variate v, nil-safe on every
// axis so the batch-scoring paths stay capture-free.
func (sc *scratch) capFor(v int) *temporalCapture {
	if sc == nil || v >= len(sc.caps) {
		return nil
	}
	return sc.caps[v]
}

// varSlot is the per-goroutine state of one stage-1 forward pass: an
// inference tape plus the long/short input windows.
type varSlot struct {
	tape  *ag.Tape
	long  *tensor.Dense
	short *tensor.Dense
}

// clampWorkers resolves a requested stage-1 fan-out width: <= 0 falls back
// to the configured worker count (then GOMAXPROCS), the result is clamped
// to the variate count, and multivariate input forces 1 (its single
// forward pass has nothing to fan out). Shared by the scoring and training
// scratches so their fan-out policies cannot diverge.
func (m *Model) clampWorkers(workers int) int {
	if workers <= 0 {
		workers = m.cfg.Workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m.n {
		workers = m.n
	}
	if workers < 1 || m.cfg.multivariateInput() {
		workers = 1
	}
	return workers
}

// newScratch sizes a scratch for the model's window geometry. workers
// bounds the stage-1 fan-out; <= 0 uses the model's configured workers.
func (m *Model) newScratch(workers int) *scratch {
	w, omega := m.cfg.LongWindow, m.cfg.ShortWindow
	inDim := 1
	if m.cfg.multivariateInput() {
		inDim = m.n
	}
	workers = m.clampWorkers(workers)
	sc := &scratch{
		wt: windowTimes{
			posL: make([]float64, w), dtL: make([]float64, w),
			posS: make([]float64, omega), dtS: make([]float64, omega),
		},
		y:         tensor.New(m.n, omega),
		yhat1:     tensor.New(m.n, omega),
		e:         tensor.New(m.n, omega),
		final:     tensor.New(m.n, omega),
		adj:       tensor.New(m.n, m.n),
		h:         tensor.New(m.n, omega),
		noiseTape: ag.NewInferenceTape(),
	}
	for i := 0; i < workers; i++ {
		sc.slots = append(sc.slots, &varSlot{
			tape:  ag.NewInferenceTape(),
			long:  tensor.New(w, inDim),
			short: tensor.New(omega, inDim),
		})
	}
	return sc
}

// runSlots executes f(v, slot) for every variate, fanning out across the
// scratch's slots when more than one is available. Each variate is pinned
// to slot v % len(slots), so a slot is never used by two goroutines at
// once and results are independent of scheduling order.
func (sc *scratch) runSlots(n int, f func(v int, slot *varSlot)) {
	if len(sc.slots) == 1 {
		slot := sc.slots[0]
		for v := 0; v < n; v++ {
			f(v, slot)
		}
		return
	}
	var wg sync.WaitGroup
	for si := range sc.slots {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			slot := sc.slots[si]
			for v := si; v < n; v += len(sc.slots) {
				f(v, slot)
			}
		}(si)
	}
	wg.Wait()
}
