package core

import (
	"math"
	"sync"

	"aero/internal/ag"
	"aero/internal/nn"
	"aero/internal/stats"
	"aero/internal/tensor"
	"aero/internal/window"
)

// trainScratch bundles every reusable buffer of one training run so
// steady-state steps allocate nothing: the window-time slices, one
// gradient-recording tape plus input buffers per worker, and the
// per-variate loss accumulator. Slots are pinned to variates by index
// (variate v runs on slot v mod workers), so a slot is never shared
// between goroutines within a step.
type trainScratch struct {
	wt     windowTimes
	slots  []*varSlot // grad tape + long/short input buffers, one per worker
	losses []float64
}

// newTrainScratch sizes a training scratch for the model's window geometry
// and configured worker count.
func (m *Model) newTrainScratch() *trainScratch {
	w, omega := m.cfg.LongWindow, m.cfg.ShortWindow
	inDim := 1
	if m.cfg.multivariateInput() {
		inDim = m.n
	}
	workers := m.clampWorkers(0)
	ts := &trainScratch{
		wt: windowTimes{
			posL: make([]float64, w), dtL: make([]float64, w),
			posS: make([]float64, omega), dtS: make([]float64, omega),
		},
		losses: make([]float64, m.n),
	}
	for i := 0; i < workers; i++ {
		ts.slots = append(ts.slots, &varSlot{
			tape:  ag.NewTape(),
			long:  tensor.New(w, inDim),
			short: tensor.New(omega, inDim),
		})
	}
	return ts
}

// trainStage1 trains the temporal reconstruction module and returns the
// number of epochs run.
func (m *Model) trainStage1(p *prepared) int {
	params := m.temporal.params()
	opt := nn.NewAdam(m.cfg.LR)
	opt.MaxGradNorm = 5
	insts := window.Indices(len(p.time), m.cfg.LongWindow, m.cfg.TrainStride)
	rng := newRand(m.cfg.Seed + 2)
	ts := m.newTrainScratch()

	best := math.Inf(1)
	wait := 0
	epoch := 0
	for ; epoch < m.cfg.MaxEpochs; epoch++ {
		rng.Shuffle(len(insts), func(i, j int) { insts[i], insts[j] = insts[j], insts[i] })
		var epochLoss float64
		for _, inst := range insts {
			epochLoss += m.stage1Step(p, inst.End, opt, params, ts)
		}
		epochLoss /= float64(len(insts))
		m.cfg.Logf("stage1 epoch %d loss %.6f", epoch, epochLoss)
		if epochLoss < best-1e-6 {
			best = epochLoss
			wait = 0
		} else if wait++; wait >= m.cfg.Patience {
			epoch++
			break
		}
	}
	return epoch
}

// stage1Step runs one optimizer step over all variates of one window and
// returns the mean reconstruction loss. Every buffer and tape comes from
// ts, so a steady-state step allocates nothing beyond goroutine fan-out.
//
// Univariate variates are processed in chunks of len(ts.slots): each chunk
// runs its backward passes concurrently (BackwardGrads touches only
// tape-local gradients), then parameter gradients are flushed in ascending
// variate order from this goroutine. The float accumulation sequence into
// every Param.Grad is therefore fixed — training results are bit-identical
// for a given seed regardless of worker count.
func (m *Model) stage1Step(p *prepared, end int, opt *nn.Adam, params []*ag.Param, ts *trainScratch) float64 {
	wt := m.times(p, end, &ts.wt)
	if m.cfg.multivariateInput() {
		slot := ts.slots[0]
		t := slot.tape
		t.Reset()
		long, short := m.longShort(p, 0, end, slot)
		pred := m.temporal.forward(t, long, short, wt)
		loss := t.MSE(pred, t.Const(short))
		t.Backward(loss)
		opt.Step(params)
		return loss.Value.Data[0]
	}
	workers := len(ts.slots)
	for base := 0; base < m.n; base += workers {
		hi := base + workers
		if hi > m.n {
			hi = m.n
		}
		if hi-base == 1 {
			// The goroutine fan-out lives in stage1Chunk so this sequential
			// path carries no closure: captured variables would otherwise be
			// heap-boxed on every step even when the fan-out never runs.
			m.stage1Variate(p, base, end, wt, ts.slots[0], ts.losses)
			ts.slots[0].tape.FlushParamGrads()
			continue
		}
		m.stage1Chunk(p, base, hi, end, wt, ts)
	}
	opt.Step(params)
	return stats.Mean(ts.losses)
}

// stage1Chunk runs variates [base, hi) concurrently, one per worker slot,
// then flushes their parameter gradients in ascending variate order.
func (m *Model) stage1Chunk(p *prepared, base, hi, end int, wt windowTimes, ts *trainScratch) {
	var wg sync.WaitGroup
	for v := base; v < hi; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			m.stage1Variate(p, v, end, wt, ts.slots[v-base], ts.losses)
		}(v)
	}
	wg.Wait()
	for v := base; v < hi; v++ {
		ts.slots[v-base].tape.FlushParamGrads()
	}
}

// stage1Variate runs forward + backward for one variate on one worker
// slot, leaving the parameter-gradient contributions on the slot's tape
// for an ordered flush.
func (m *Model) stage1Variate(p *prepared, v, end int, wt windowTimes, slot *varSlot, losses []float64) {
	t := slot.tape
	t.Reset()
	long, short := m.longShort(p, v, end, slot)
	pred := m.temporal.forward(t, long, short, wt)
	loss := t.MSE(pred, t.Const(short))
	t.BackwardGrads(loss)
	losses[v] = loss.Value.Data[0]
}

// trainStage2 trains the concurrent-noise module with stage 1 frozen and
// returns the number of epochs run.
func (m *Model) trainStage2(p *prepared) int {
	params := m.noise.params()
	opt := nn.NewAdam(m.cfg.LR)
	opt.MaxGradNorm = 5
	insts := window.Indices(len(p.time), m.cfg.LongWindow, m.cfg.TrainStride)
	// The frozen stage-1 forwards and graph building reuse one scratch
	// across all windows, and the stage-2 backward reuses one grad tape;
	// each window's tensors are consumed (forward + backward) before the
	// next window overwrites them.
	sc := m.newScratch(0)
	tape := ag.NewTape()

	best := math.Inf(1)
	wait := 0
	epoch := 0
	for ; epoch < m.cfg.MaxEpochs; epoch++ {
		var dyn *dynamicGraphState
		if m.cfg.Variant == VariantDynamicGraph {
			dyn = newDynamicGraphState(m.n)
		}
		var epochLoss float64
		for _, inst := range insts {
			// Stage-1 outputs are treated as constants: the temporal
			// module is frozen during stage 2 (Algorithm 1, line 7).
			e := m.stage1Errors(p, inst.End, sc)
			a := m.adjacency(e, dyn, sc)
			h := propagateInto(a, e, sc.h)
			tape.Reset()
			pred := m.noise.forward(tape, h)
			loss := tape.MSE(pred, tape.Const(e)) // loss2 = Y − Ŷ1 − Ŷ2 (Eq. 16)
			tape.Backward(loss)
			opt.Step(params)
			epochLoss += loss.Value.Data[0]
		}
		epochLoss /= float64(len(insts))
		m.cfg.Logf("stage2 epoch %d loss %.6f", epoch, epochLoss)
		if epochLoss < best-1e-6 {
			best = epochLoss
			wait = 0
		} else if wait++; wait >= m.cfg.Patience {
			epoch++
			break
		}
	}
	return epoch
}
