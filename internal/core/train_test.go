package core

import (
	"math"
	"testing"

	"aero/internal/ag"
	"aero/internal/dataset"
	"aero/internal/nn"
	"aero/internal/window"
)

// trainTestConfig is a fast profile for training-path tests: big enough to
// exercise multiple windows and chunked variate fan-out, small enough to
// train in well under a second.
func trainTestConfig() Config {
	c := SmallConfig()
	c.LongWindow = 32
	c.ShortWindow = 12
	c.ModelDim = 8
	c.FFNHidden = 16
	c.MaxEpochs = 2
	c.TrainStride = 16
	c.EvalStride = 12
	c.Seed = 9
	return c
}

func trainTestDataset() *dataset.Dataset {
	return dataset.SyntheticConfig{
		Name: "train", N: 5, TrainLen: 160, TestLen: 120,
		NoiseVariates: 3, AnomalySegments: 1, NoisePct: 3,
		VariableFrac: 0.5, Seed: 31,
	}.Generate()
}

func fitWithWorkers(t *testing.T, workers int) (*Model, [][]float64) {
	t.Helper()
	d := trainTestDataset()
	cfg := trainTestConfig()
	cfg.Workers = workers
	m, err := New(cfg, d.Train.N())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(d.Train); err != nil {
		t.Fatal(err)
	}
	scores, err := m.Scores(d.Test)
	if err != nil {
		t.Fatal(err)
	}
	return m, scores
}

// TestTrainingDeterministicAcrossWorkers pins the fixed gradient-reduction
// order: for a given seed, training must produce bit-identical epochs,
// thresholds and scores regardless of the worker count, because parameter
// gradients are always flushed in ascending variate order no matter which
// goroutine computed them.
func TestTrainingDeterministicAcrossWorkers(t *testing.T) {
	ref, refScores := fitWithWorkers(t, 1)
	for _, workers := range []int{2, 3, 5} {
		m, scores := fitWithWorkers(t, workers)
		if m.Epochs1 != ref.Epochs1 || m.Epochs2 != ref.Epochs2 {
			t.Fatalf("workers=%d: epochs (%d, %d) != sequential (%d, %d)",
				workers, m.Epochs1, m.Epochs2, ref.Epochs1, ref.Epochs2)
		}
		if math.Float64bits(m.Threshold()) != math.Float64bits(ref.Threshold()) {
			t.Fatalf("workers=%d: threshold %v != sequential %v", workers, m.Threshold(), ref.Threshold())
		}
		for v := range scores {
			for i := range scores[v] {
				if math.Float64bits(scores[v][i]) != math.Float64bits(refScores[v][i]) {
					t.Fatalf("workers=%d: score[%d][%d] = %v differs from sequential %v",
						workers, v, i, scores[v][i], refScores[v][i])
				}
			}
		}
	}
}

// TestStage1StepSteadyStateAllocs pins the allocation budget of one
// steady-state stage-1 training step, mirroring the streaming-push pinning:
// with the training scratch warm, a sequential step must allocate nothing
// (tapes, gradients, moments and input buffers are all reused).
func TestStage1StepSteadyStateAllocs(t *testing.T) {
	d := trainTestDataset()
	cfg := trainTestConfig()
	cfg.Workers = 1
	m, err := New(cfg, d.Train.N())
	if err != nil {
		t.Fatal(err)
	}
	m.norm = window.FitNormalizer(d.Train.Data)
	p := m.prepare(d.Train)
	params := m.temporal.params()
	opt := nn.NewAdam(m.cfg.LR)
	opt.MaxGradNorm = 5
	ts := m.newTrainScratch()
	end := m.cfg.LongWindow - 1
	m.stage1Step(p, end, opt, params, ts) // warm arenas, moments, buffers
	allocs := testing.AllocsPerRun(16, func() {
		m.stage1Step(p, end, opt, params, ts)
	})
	if allocs > 0 {
		t.Fatalf("steady-state stage-1 step allocates %.1f objects, want 0", allocs)
	}
}

// TestStage2StepSteadyStateAllocs pins the stage-2 equivalent: the frozen
// stage-1 forwards, graph build, grad tape and optimizer step must all run
// out of reused buffers.
func TestStage2StepSteadyStateAllocs(t *testing.T) {
	d := trainTestDataset()
	cfg := trainTestConfig()
	cfg.Workers = 1
	m, err := New(cfg, d.Train.N())
	if err != nil {
		t.Fatal(err)
	}
	m.norm = window.FitNormalizer(d.Train.Data)
	p := m.prepare(d.Train)
	params := m.noise.params()
	opt := nn.NewAdam(m.cfg.LR)
	opt.MaxGradNorm = 5
	sc := m.newScratch(0)
	tape := ag.NewTape()
	end := m.cfg.LongWindow - 1
	step := func() {
		e := m.stage1Errors(p, end, sc)
		a := m.adjacency(e, nil, sc)
		h := propagateInto(a, e, sc.h)
		tape.Reset()
		pred := m.noise.forward(tape, h)
		loss := tape.MSE(pred, tape.Const(e))
		tape.Backward(loss)
		opt.Step(params)
	}
	step() // warm
	allocs := testing.AllocsPerRun(16, step)
	if allocs > 0 {
		t.Fatalf("steady-state stage-2 step allocates %.1f objects, want 0", allocs)
	}
}
