package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"aero/internal/evt"
	"aero/internal/window"
)

// configJSON mirrors Config without the non-serializable Logf callback.
type configJSON struct {
	LongWindow, ShortWindow, ModelDim, Heads, EncoderLayers, FFNHidden int
	LR                                                                 float64
	MaxEpochs, Patience, TrainStride, EvalStride                       int
	POTLevel, POTQ                                                     float64
	Variant                                                            Variant
	AttentionBand                                                      int
	Workers                                                            int
	Seed                                                               int64
}

func toConfigJSON(c Config) configJSON {
	return configJSON{
		LongWindow: c.LongWindow, ShortWindow: c.ShortWindow, ModelDim: c.ModelDim,
		Heads: c.Heads, EncoderLayers: c.EncoderLayers, FFNHidden: c.FFNHidden,
		LR: c.LR, MaxEpochs: c.MaxEpochs, Patience: c.Patience,
		TrainStride: c.TrainStride, EvalStride: c.EvalStride,
		POTLevel: c.POTLevel, POTQ: c.POTQ, Variant: c.Variant,
		AttentionBand: c.AttentionBand, Workers: c.Workers, Seed: c.Seed,
	}
}

func fromConfigJSON(j configJSON) Config {
	return Config{
		LongWindow: j.LongWindow, ShortWindow: j.ShortWindow, ModelDim: j.ModelDim,
		Heads: j.Heads, EncoderLayers: j.EncoderLayers, FFNHidden: j.FFNHidden,
		LR: j.LR, MaxEpochs: j.MaxEpochs, Patience: j.Patience,
		TrainStride: j.TrainStride, EvalStride: j.EvalStride,
		POTLevel: j.POTLevel, POTQ: j.POTQ, Variant: j.Variant,
		AttentionBand: j.AttentionBand, Workers: j.Workers, Seed: j.Seed,
	}
}

// modelState is the on-disk representation of a trained model. Parameters
// are stored positionally in the deterministic order returned by params().
type modelState struct {
	Version   int
	Config    configJSON
	N         int
	DTScale   float64
	NormLo    []float64
	NormHi    []float64
	Threshold evt.Threshold
	Epochs1   int
	Epochs2   int
	Params    [][]float64
	Shapes    [][2]int
}

// params returns every trainable parameter in a deterministic order.
func (m *Model) params() []*paramRef {
	var out []*paramRef
	if m.temporal != nil {
		for _, p := range m.temporal.params() {
			out = append(out, &paramRef{p.Name, p.Value.Rows, p.Value.Cols, p.Value.Data})
		}
	}
	if m.noise != nil {
		for _, p := range m.noise.params() {
			out = append(out, &paramRef{p.Name, p.Value.Rows, p.Value.Cols, p.Value.Data})
		}
	}
	return out
}

type paramRef struct {
	name       string
	rows, cols int
	data       []float64
}

// Save writes the trained model to path as JSON. The model must be fitted.
//
// The write is atomic: the JSON lands in a temp file in path's directory,
// is synced, then renamed over path — a crash mid-write can never leave a
// truncated or half-written checkpoint where a reader expects a model.
func (m *Model) Save(path string) error {
	blob, err := m.MarshalBytes()
	if err != nil {
		return err
	}
	if err := WriteFileAtomic(path, blob, 0o644); err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	return nil
}

// MarshalBytes serializes the fitted model to the bytes Save writes —
// the AERO backend artifact. LoadBytes is the inverse.
func (m *Model) MarshalBytes() ([]byte, error) {
	if !m.trained {
		return nil, fmt.Errorf("core: cannot save an unfitted model")
	}
	st := modelState{
		Version: 1,
		Config:  toConfigJSON(m.cfg),
		N:       m.n,
		DTScale: m.dtScale,
		NormLo:  m.norm.Lo, NormHi: m.norm.Hi,
		Threshold: m.thr,
		Epochs1:   m.Epochs1, Epochs2: m.Epochs2,
	}
	for _, p := range m.params() {
		st.Params = append(st.Params, p.data)
		st.Shapes = append(st.Shapes, [2]int{p.rows, p.cols})
	}
	blob, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("core: marshal model: %w", err)
	}
	return blob, nil
}

// WriteFileAtomic writes blob to a temp file in path's directory, syncs it
// to stable storage, renames it over path, then syncs the directory so the
// new entry itself survives a crash (without the directory fsync, a rename
// can vanish on power loss — which would let the registry reuse a version
// id it promised never to reissue). The temp file lives in the same
// directory so the rename cannot cross filesystems. Shared by model saves
// and the lifecycle registry's state checkpoints so the atomicity
// discipline has one implementation.
func WriteFileAtomic(path string, blob []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".aero-save-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(blob)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Chmod(tmp, perm)
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if d, derr := os.Open(dir); derr == nil {
		err = d.Sync()
		if cerr := d.Close(); err == nil {
			err = cerr
		}
	} else {
		err = derr
	}
	return err
}

// Load reads a model previously written by Save and returns it ready for
// Scores/Detect (no retraining needed).
func Load(path string) (*Model, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}
	return LoadBytes(blob)
}

// LoadBytes decodes a model from the bytes of a Save file. Callers that
// need to distinguish I/O failures from corrupt content (e.g. the
// lifecycle registry, which quarantines only the latter) read the file
// themselves and hand the bytes here.
func LoadBytes(blob []byte) (*Model, error) {
	var st modelState
	if err := json.Unmarshal(blob, &st); err != nil {
		return nil, fmt.Errorf("core: parse model: %w", err)
	}
	if st.Version != 1 {
		return nil, fmt.Errorf("core: unsupported model version %d", st.Version)
	}
	if len(st.Shapes) != len(st.Params) {
		return nil, fmt.Errorf("core: corrupt model file: %d parameter blobs but %d shapes", len(st.Params), len(st.Shapes))
	}
	m, err := New(fromConfigJSON(st.Config), st.N)
	if err != nil {
		return nil, err
	}
	refs := m.params()
	if len(refs) != len(st.Params) {
		return nil, fmt.Errorf("core: model has %d parameters, file has %d", len(refs), len(st.Params))
	}
	for i, p := range refs {
		if st.Shapes[i] != [2]int{p.rows, p.cols} {
			return nil, fmt.Errorf("core: parameter %d (%s) shape mismatch: file %v, model %dx%d",
				i, p.name, st.Shapes[i], p.rows, p.cols)
		}
		if len(st.Params[i]) != len(p.data) {
			return nil, fmt.Errorf("core: parameter %d (%s) size mismatch", i, p.name)
		}
		copy(p.data, st.Params[i])
	}
	if len(st.NormLo) != st.N || len(st.NormHi) != st.N {
		return nil, fmt.Errorf("core: corrupt model file: %d/%d normalizer bounds for %d variates",
			len(st.NormLo), len(st.NormHi), st.N)
	}
	m.norm = &window.Normalizer{Lo: st.NormLo, Hi: st.NormHi}
	m.dtScale = st.DTScale
	m.thr = st.Threshold
	m.Epochs1, m.Epochs2 = st.Epochs1, st.Epochs2
	m.trained = true
	return m, nil
}
