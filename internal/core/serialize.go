package core

import (
	"encoding/json"
	"fmt"
	"os"

	"aero/internal/evt"
	"aero/internal/window"
)

// configJSON mirrors Config without the non-serializable Logf callback.
type configJSON struct {
	LongWindow, ShortWindow, ModelDim, Heads, EncoderLayers, FFNHidden int
	LR                                                                 float64
	MaxEpochs, Patience, TrainStride, EvalStride                       int
	POTLevel, POTQ                                                     float64
	Variant                                                            Variant
	AttentionBand                                                      int
	Workers                                                            int
	Seed                                                               int64
}

func toConfigJSON(c Config) configJSON {
	return configJSON{
		LongWindow: c.LongWindow, ShortWindow: c.ShortWindow, ModelDim: c.ModelDim,
		Heads: c.Heads, EncoderLayers: c.EncoderLayers, FFNHidden: c.FFNHidden,
		LR: c.LR, MaxEpochs: c.MaxEpochs, Patience: c.Patience,
		TrainStride: c.TrainStride, EvalStride: c.EvalStride,
		POTLevel: c.POTLevel, POTQ: c.POTQ, Variant: c.Variant,
		AttentionBand: c.AttentionBand, Workers: c.Workers, Seed: c.Seed,
	}
}

func fromConfigJSON(j configJSON) Config {
	return Config{
		LongWindow: j.LongWindow, ShortWindow: j.ShortWindow, ModelDim: j.ModelDim,
		Heads: j.Heads, EncoderLayers: j.EncoderLayers, FFNHidden: j.FFNHidden,
		LR: j.LR, MaxEpochs: j.MaxEpochs, Patience: j.Patience,
		TrainStride: j.TrainStride, EvalStride: j.EvalStride,
		POTLevel: j.POTLevel, POTQ: j.POTQ, Variant: j.Variant,
		AttentionBand: j.AttentionBand, Workers: j.Workers, Seed: j.Seed,
	}
}

// modelState is the on-disk representation of a trained model. Parameters
// are stored positionally in the deterministic order returned by params().
type modelState struct {
	Version   int
	Config    configJSON
	N         int
	DTScale   float64
	NormLo    []float64
	NormHi    []float64
	Threshold evt.Threshold
	Epochs1   int
	Epochs2   int
	Params    [][]float64
	Shapes    [][2]int
}

// params returns every trainable parameter in a deterministic order.
func (m *Model) params() []*paramRef {
	var out []*paramRef
	if m.temporal != nil {
		for _, p := range m.temporal.params() {
			out = append(out, &paramRef{p.Name, p.Value.Rows, p.Value.Cols, p.Value.Data})
		}
	}
	if m.noise != nil {
		for _, p := range m.noise.params() {
			out = append(out, &paramRef{p.Name, p.Value.Rows, p.Value.Cols, p.Value.Data})
		}
	}
	return out
}

type paramRef struct {
	name       string
	rows, cols int
	data       []float64
}

// Save writes the trained model to path as JSON. The model must be fitted.
func (m *Model) Save(path string) error {
	if !m.trained {
		return fmt.Errorf("core: cannot save an unfitted model")
	}
	st := modelState{
		Version: 1,
		Config:  toConfigJSON(m.cfg),
		N:       m.n,
		DTScale: m.dtScale,
		NormLo:  m.norm.Lo, NormHi: m.norm.Hi,
		Threshold: m.thr,
		Epochs1:   m.Epochs1, Epochs2: m.Epochs2,
	}
	for _, p := range m.params() {
		st.Params = append(st.Params, p.data)
		st.Shapes = append(st.Shapes, [2]int{p.rows, p.cols})
	}
	blob, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("core: marshal model: %w", err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	return nil
}

// Load reads a model previously written by Save and returns it ready for
// Scores/Detect (no retraining needed).
func Load(path string) (*Model, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}
	var st modelState
	if err := json.Unmarshal(blob, &st); err != nil {
		return nil, fmt.Errorf("core: parse model: %w", err)
	}
	if st.Version != 1 {
		return nil, fmt.Errorf("core: unsupported model version %d", st.Version)
	}
	m, err := New(fromConfigJSON(st.Config), st.N)
	if err != nil {
		return nil, err
	}
	refs := m.params()
	if len(refs) != len(st.Params) {
		return nil, fmt.Errorf("core: model has %d parameters, file has %d", len(refs), len(st.Params))
	}
	for i, p := range refs {
		if st.Shapes[i] != [2]int{p.rows, p.cols} {
			return nil, fmt.Errorf("core: parameter %d (%s) shape mismatch: file %v, model %dx%d",
				i, p.name, st.Shapes[i], p.rows, p.cols)
		}
		if len(st.Params[i]) != len(p.data) {
			return nil, fmt.Errorf("core: parameter %d (%s) size mismatch", i, p.name)
		}
		copy(p.data, st.Params[i])
	}
	m.norm = &window.Normalizer{Lo: st.NormLo, Hi: st.NormHi}
	m.dtScale = st.DTScale
	m.thr = st.Threshold
	m.Epochs1, m.Epochs2 = st.Epochs1, st.Epochs2
	m.trained = true
	return m, nil
}
