package core

import (
	"fmt"
	"math/rand"

	"aero/internal/ag"
	"aero/internal/nn"
	"aero/internal/tensor"
)

// encoderLayer is one post-norm Transformer encoder block (paper Eq. 7):
// M = LN(x + MHA(x,x,x)); out = LN(M + FFN(M)).
type encoderLayer struct {
	attn *nn.MultiHeadAttention
	ln1  *nn.LayerNorm
	ffn  *nn.FFN
	ln2  *nn.LayerNorm
}

func newEncoderLayer(name string, dm, heads, hidden, band int, rng *rand.Rand) *encoderLayer {
	attn := nn.NewMultiHeadAttention(name+".attn", dm, heads, rng)
	attn.Band = band
	return &encoderLayer{
		attn: attn,
		ln1:  nn.NewLayerNorm(name+".ln1", dm),
		ffn:  nn.NewFFN(name+".ffn", dm, hidden, dm, rng),
		ln2:  nn.NewLayerNorm(name+".ln2", dm),
	}
}

func (e *encoderLayer) forward(t *ag.Tape, x *ag.Node) *ag.Node {
	out, _, _ := e.forwardKV(t, x)
	return out
}

// forwardKV is forward additionally returning the layer's key/value
// projection nodes, so the streaming capture path can cache them across
// pushes. forward delegates here; the two cannot diverge.
func (e *encoderLayer) forwardKV(t *ag.Tape, x *ag.Node) (out, k, v *ag.Node) {
	attnOut, k, v := e.attn.ForwardKV(t, x, x, x)
	m := e.ln1.Forward(t, t.Add(x, attnOut))
	return e.ln2.Forward(t, t.Add(m, e.ffn.Forward(t, m))), k, v
}

func (e *encoderLayer) params() []*ag.Param {
	return nn.CollectParams(e.attn, e.ln1, e.ffn, e.ln2)
}

// temporalModule is the stage-1 Transformer encoder–decoder (paper §III-C).
// It embeds the long window (length W) through the encoder and reconstructs
// the short window (length ω) through a decoder with self- and
// cross-attention, finishing with a sigmoid so outputs live in the
// normalized [0, 1] magnitude space. The same weights are shared across all
// variates (variate independence is expressed by feeding variates
// separately, not by separate models).
type temporalModule struct {
	inDim, outDim int

	te      *TimeEmbedding
	encProj *nn.Linear // input embedding W_E (Eq. 4)
	decProj *nn.Linear // input embedding W_D (Eq. 4)
	enc     []*encoderLayer

	decSelf  *nn.MultiHeadAttention
	decLN1   *nn.LayerNorm
	decCross *nn.MultiHeadAttention
	decLN2   *nn.LayerNorm
	outFFN   *nn.FFN // FFN + sigmoid output head (Eq. 9)
}

// newTemporalModule builds the module. inDim is 1 for the paper's
// univariate-per-variate mode, or N for the multivariate-input ablation.
func newTemporalModule(cfg Config, inDim int, rng *rand.Rand) *temporalModule {
	dm := cfg.ModelDim
	m := &temporalModule{
		inDim:    inDim,
		outDim:   inDim,
		te:       NewTimeEmbedding(dm),
		encProj:  nn.NewLinear("enc.proj", inDim, dm, rng),
		decProj:  nn.NewLinear("dec.proj", inDim, dm, rng),
		decSelf:  nn.NewMultiHeadAttention("dec.self", dm, cfg.Heads, rng),
		decLN1:   nn.NewLayerNorm("dec.ln1", dm),
		decCross: nn.NewMultiHeadAttention("dec.cross", dm, cfg.Heads, rng),
		decLN2:   nn.NewLayerNorm("dec.ln2", dm),
		outFFN:   nn.NewFFN("dec.out", dm, cfg.FFNHidden, inDim, rng),
	}
	m.decSelf.Band = cfg.AttentionBand
	for i := 0; i < cfg.EncoderLayers; i++ {
		m.enc = append(m.enc, newEncoderLayer(fmt.Sprintf("enc%d", i), dm, cfg.Heads, cfg.FFNHidden, cfg.AttentionBand, rng))
	}
	return m
}

// windowTimes carries the temporal metadata of one window: absolute
// positions and normalized inter-observation intervals for the long window
// and its short suffix.
type windowTimes struct {
	posL, dtL []float64
	posS, dtS []float64
}

// capLayer holds one encoder layer's cached key/value projection rings
// (W×d_m each): the K = x·W_K and V = x·W_V matrices of the layer's most
// recent captured forward, shifted row-wise as the window slides.
type capLayer struct {
	k, v *tensor.Dense
}

// temporalCapture snapshots the intermediate activations of one stage-1
// forward pass that the incremental streaming path reuses across pushes.
// Every tensor is overwritten in full by the next captured (exact) forward
// and mutated row-wise by the benign incremental path in between; the two
// uses share storage by design, so a refresh is also a cache rebuild.
type temporalCapture struct {
	encP         *tensor.Dense // W×d_m encoder input projection encProj(x)
	sinL, cosL   *tensor.Dense // W×d_m time-embedding sin(θ)/cos(θ), long window
	enc          []capLayer    // per encoder layer K/V rings
	oeK, oeV     *tensor.Dense // W×d_m decoder cross-attention K/V of the encoder output
	decP         *tensor.Dense // ω×d_m decoder input projection decProj(x)
	sinS, cosS   *tensor.Dense // ω×d_m time-embedding parts, short window
	selfK, selfV *tensor.Dense // ω×d_m decoder self-attention K/V
}

// newTemporalCapture allocates a capture for the module's geometry. w and
// omega are the long/short window lengths.
func (m *temporalModule) newTemporalCapture(w, omega int) *temporalCapture {
	dm := m.te.dm
	c := &temporalCapture{
		encP: tensor.New(w, dm),
		sinL: tensor.New(w, dm), cosL: tensor.New(w, dm),
		oeK: tensor.New(w, dm), oeV: tensor.New(w, dm),
		decP: tensor.New(omega, dm),
		sinS: tensor.New(omega, dm), cosS: tensor.New(omega, dm),
		selfK: tensor.New(omega, dm), selfV: tensor.New(omega, dm),
	}
	for range m.enc {
		c.enc = append(c.enc, capLayer{k: tensor.New(w, dm), v: tensor.New(w, dm)})
	}
	return c
}

// forward reconstructs the short window. long is W×inDim, short is ω×inDim
// (rows are timesteps); the result is ω×inDim in [0, 1].
func (m *temporalModule) forward(t *ag.Tape, long, short *tensor.Dense, wt windowTimes) *ag.Node {
	return m.forwardCap(t, long, short, wt, nil)
}

// forwardCap is forward optionally copying the intermediate activations the
// incremental streaming path reuses into cache (no capture when nil). The
// op sequence is identical to the historical forward — the capture copies
// read already-computed node values — so captured and plain passes produce
// bit-identical outputs.
func (m *temporalModule) forwardCap(t *ag.Tape, long, short *tensor.Dense, wt windowTimes, cache *temporalCapture) *ag.Node {
	// Input embeddings IE/ID = proj(x) + TE (Eq. 4).
	encP := m.encProj.Forward(t, t.Const(long))
	teL, sinL, cosL := m.te.ForwardParts(t, wt.posL, wt.dtL)
	ie := t.Add(encP, teL)
	decP := m.decProj.Forward(t, t.Const(short))
	teS, sinS, cosS := m.te.ForwardParts(t, wt.posS, wt.dtS)
	id := t.Add(decP, teS)
	if cache != nil {
		cache.encP.CopyFrom(encP.Value)
		cache.sinL.CopyFrom(sinL.Value)
		cache.cosL.CopyFrom(cosL.Value)
		cache.decP.CopyFrom(decP.Value)
		cache.sinS.CopyFrom(sinS.Value)
		cache.cosS.CopyFrom(cosS.Value)
	}

	// Encoder over the long context (Eq. 5–7).
	oe := ie
	for i, layer := range m.enc {
		var k, v *ag.Node
		oe, k, v = layer.forwardKV(t, oe)
		if cache != nil {
			cache.enc[i].k.CopyFrom(k.Value)
			cache.enc[i].v.CopyFrom(v.Value)
		}
	}

	// Decoder: masked-free self-attention on the short window, then
	// cross-attention using the encoder output as keys/values (Eq. 8).
	selfOut, selfK, selfV := m.decSelf.ForwardKV(t, id, id, id)
	md := m.decLN1.Forward(t, t.Add(id, selfOut))
	crossOut, oeK, oeV := m.decCross.ForwardKV(t, md, oe, oe)
	od := m.decLN2.Forward(t, t.Add(md, crossOut))
	if cache != nil {
		cache.selfK.CopyFrom(selfK.Value)
		cache.selfV.CopyFrom(selfV.Value)
		cache.oeK.CopyFrom(oeK.Value)
		cache.oeV.CopyFrom(oeV.Value)
	}

	// Output head with sigmoid normalization (Eq. 9).
	return t.Sigmoid(m.outFFN.Forward(t, od))
}

// params returns all trainable parameters of the module.
func (m *temporalModule) params() []*ag.Param {
	ps := nn.CollectParams(m.te, m.encProj, m.decProj, m.decSelf, m.decLN1, m.decCross, m.decLN2, m.outFFN)
	for _, layer := range m.enc {
		ps = append(ps, layer.params()...)
	}
	return ps
}
