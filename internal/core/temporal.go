package core

import (
	"fmt"
	"math/rand"

	"aero/internal/ag"
	"aero/internal/nn"
	"aero/internal/tensor"
)

// encoderLayer is one post-norm Transformer encoder block (paper Eq. 7):
// M = LN(x + MHA(x,x,x)); out = LN(M + FFN(M)).
type encoderLayer struct {
	attn *nn.MultiHeadAttention
	ln1  *nn.LayerNorm
	ffn  *nn.FFN
	ln2  *nn.LayerNorm
}

func newEncoderLayer(name string, dm, heads, hidden, band int, rng *rand.Rand) *encoderLayer {
	attn := nn.NewMultiHeadAttention(name+".attn", dm, heads, rng)
	attn.Band = band
	return &encoderLayer{
		attn: attn,
		ln1:  nn.NewLayerNorm(name+".ln1", dm),
		ffn:  nn.NewFFN(name+".ffn", dm, hidden, dm, rng),
		ln2:  nn.NewLayerNorm(name+".ln2", dm),
	}
}

func (e *encoderLayer) forward(t *ag.Tape, x *ag.Node) *ag.Node {
	m := e.ln1.Forward(t, t.Add(x, e.attn.Forward(t, x, x, x)))
	return e.ln2.Forward(t, t.Add(m, e.ffn.Forward(t, m)))
}

func (e *encoderLayer) params() []*ag.Param {
	return nn.CollectParams(e.attn, e.ln1, e.ffn, e.ln2)
}

// temporalModule is the stage-1 Transformer encoder–decoder (paper §III-C).
// It embeds the long window (length W) through the encoder and reconstructs
// the short window (length ω) through a decoder with self- and
// cross-attention, finishing with a sigmoid so outputs live in the
// normalized [0, 1] magnitude space. The same weights are shared across all
// variates (variate independence is expressed by feeding variates
// separately, not by separate models).
type temporalModule struct {
	inDim, outDim int

	te      *TimeEmbedding
	encProj *nn.Linear // input embedding W_E (Eq. 4)
	decProj *nn.Linear // input embedding W_D (Eq. 4)
	enc     []*encoderLayer

	decSelf  *nn.MultiHeadAttention
	decLN1   *nn.LayerNorm
	decCross *nn.MultiHeadAttention
	decLN2   *nn.LayerNorm
	outFFN   *nn.FFN // FFN + sigmoid output head (Eq. 9)
}

// newTemporalModule builds the module. inDim is 1 for the paper's
// univariate-per-variate mode, or N for the multivariate-input ablation.
func newTemporalModule(cfg Config, inDim int, rng *rand.Rand) *temporalModule {
	dm := cfg.ModelDim
	m := &temporalModule{
		inDim:    inDim,
		outDim:   inDim,
		te:       NewTimeEmbedding(dm),
		encProj:  nn.NewLinear("enc.proj", inDim, dm, rng),
		decProj:  nn.NewLinear("dec.proj", inDim, dm, rng),
		decSelf:  nn.NewMultiHeadAttention("dec.self", dm, cfg.Heads, rng),
		decLN1:   nn.NewLayerNorm("dec.ln1", dm),
		decCross: nn.NewMultiHeadAttention("dec.cross", dm, cfg.Heads, rng),
		decLN2:   nn.NewLayerNorm("dec.ln2", dm),
		outFFN:   nn.NewFFN("dec.out", dm, cfg.FFNHidden, inDim, rng),
	}
	m.decSelf.Band = cfg.AttentionBand
	for i := 0; i < cfg.EncoderLayers; i++ {
		m.enc = append(m.enc, newEncoderLayer(fmt.Sprintf("enc%d", i), dm, cfg.Heads, cfg.FFNHidden, cfg.AttentionBand, rng))
	}
	return m
}

// windowTimes carries the temporal metadata of one window: absolute
// positions and normalized inter-observation intervals for the long window
// and its short suffix.
type windowTimes struct {
	posL, dtL []float64
	posS, dtS []float64
}

// forward reconstructs the short window. long is W×inDim, short is ω×inDim
// (rows are timesteps); the result is ω×inDim in [0, 1].
func (m *temporalModule) forward(t *ag.Tape, long, short *tensor.Dense, wt windowTimes) *ag.Node {
	// Input embeddings IE/ID = proj(x) + TE (Eq. 4).
	ie := t.Add(m.encProj.Forward(t, t.Const(long)), m.te.Forward(t, wt.posL, wt.dtL))
	id := t.Add(m.decProj.Forward(t, t.Const(short)), m.te.Forward(t, wt.posS, wt.dtS))

	// Encoder over the long context (Eq. 5–7).
	oe := ie
	for _, layer := range m.enc {
		oe = layer.forward(t, oe)
	}

	// Decoder: masked-free self-attention on the short window, then
	// cross-attention using the encoder output as keys/values (Eq. 8).
	md := m.decLN1.Forward(t, t.Add(id, m.decSelf.Forward(t, id, id, id)))
	od := m.decLN2.Forward(t, t.Add(md, m.decCross.Forward(t, md, oe, oe)))

	// Output head with sigmoid normalization (Eq. 9).
	return t.Sigmoid(m.outFFN.Forward(t, od))
}

// params returns all trainable parameters of the module.
func (m *temporalModule) params() []*ag.Param {
	ps := nn.CollectParams(m.te, m.encProj, m.decProj, m.decSelf, m.decLN1, m.decCross, m.decLN2, m.outFFN)
	for _, layer := range m.enc {
		ps = append(ps, layer.params()...)
	}
	return ps
}
