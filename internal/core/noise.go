package core

import (
	"math"

	"aero/internal/ag"
	"aero/internal/stats"
	"aero/internal/tensor"
)

// noiseModule is the stage-2 concurrent-noise reconstruction module
// (paper §III-D): a single graph convolution over the window-wise learned
// graph,
//
//	Ŷ2 = σ((D̃⁻¹ Ã Y_t) W_θ + b_θ)                    (Eq. 14)
//
// where Ã removes self-loops so a variate can only be reconstructed from
// *other* variates' behaviour — concurrent noise (shared across stars) is
// reconstructable, a genuine single-star event is not.
//
// The activation is tanh rather than an unspecified σ: the module's target
// is the signed stage-1 residual Y − Ŷ1 ∈ (−1, 1), which a sigmoid could
// not reach.
type noiseModule struct {
	W *ag.Param // ω×ω
	B *ag.Param // 1×ω
}

func newNoiseModule(omega int, seed int64) *noiseModule {
	// Small symmetric init keeps early Ŷ2 near zero so stage 2 starts from
	// "no correction".
	rngW := tensor.New(omega, omega)
	s := 1 / math.Sqrt(float64(omega))
	r := newRand(seed)
	for i := range rngW.Data {
		rngW.Data[i] = (r.Float64()*2 - 1) * s * 0.1
	}
	return &noiseModule{
		W: ag.NewParam("gcn.W", rngW),
		B: ag.NewParam("gcn.b", tensor.New(1, omega)),
	}
}

// forward applies the graph convolution to the pre-propagated features
// H = D̃⁻¹ÃY (N×ω), returning Ŷ2 (N×ω).
func (nm *noiseModule) forward(t *ag.Tape, h *tensor.Dense) *ag.Node {
	return t.Tanh(t.AddRow(t.MatMul(t.Const(h), t.Param(nm.W)), t.Param(nm.B)))
}

func (nm *noiseModule) params() []*ag.Param { return []*ag.Param{nm.W, nm.B} }

// windowGraph computes the window-wise learned graph structure (Eq. 12–13):
// the adjacency A_t whose entries are the pairwise cosine similarities of
// the stage-1 error windows E_t ∈ R^{N×ω}. Similarities are clamped to
// [0, 1]: anti-correlated errors carry no evidence of *concurrent* noise.
func windowGraph(e *tensor.Dense) *tensor.Dense {
	return windowGraphInto(e, tensor.New(e.Rows, e.Rows))
}

// windowGraphInto computes the window-wise graph into the caller-supplied
// N×N buffer (every cell is overwritten) and returns it.
func windowGraphInto(e, a *tensor.Dense) *tensor.Dense {
	n := e.Rows
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
		for j := i + 1; j < n; j++ {
			sim := stats.CosineSimilarity(e.Row(i), e.Row(j))
			if sim < 0 {
				sim = 0
			}
			a.Set(i, j, sim)
			a.Set(j, i, sim)
		}
	}
	return a
}

// completeGraph returns the all-ones adjacency used by the static-graph
// ablation (Table IV 2.iii).
func completeGraph(n int) *tensor.Dense {
	a := tensor.New(n, n)
	a.Fill(1)
	return a
}

// dynamicGraphState carries the EWMA-evolved adjacency used by the
// dynamic-graph ablation (Table IV 2.iv). It stands in for ESG's evolving
// graph layer: the graph at window t is a temporally smoothed version of
// the similarity graphs, encoding the "predictable evolution" assumption
// that the paper argues is wrong for concurrent noise.
type dynamicGraphState struct {
	a     *tensor.Dense
	decay float64
}

func newDynamicGraphState(n int) *dynamicGraphState {
	return &dynamicGraphState{a: completeGraph(n), decay: 0.9}
}

// next evolves the state with the current window similarities and returns
// the smoothed adjacency.
func (d *dynamicGraphState) next(sim *tensor.Dense) *tensor.Dense {
	return d.nextInto(sim, tensor.New(d.a.Rows, d.a.Cols))
}

// nextInto is next writing the smoothed adjacency into dst, which may
// alias sim (sim is fully consumed before dst is written).
func (d *dynamicGraphState) nextInto(sim, dst *tensor.Dense) *tensor.Dense {
	for i := range d.a.Data {
		d.a.Data[i] = d.decay*d.a.Data[i] + (1-d.decay)*sim.Data[i]
	}
	dst.CopyFrom(d.a)
	return dst
}

// propagate computes H = D̃⁻¹ Ã Y with self-loops removed (Ã = A − I) and
// degrees clamped away from zero. Rows whose total similarity to other
// variates is ~0 (isolated variates, e.g. a lone true anomaly) produce a
// zero feature row: nothing can be borrowed from neighbours, which is
// exactly the mechanism that keeps true anomalies badly reconstructed.
func propagate(a, y *tensor.Dense) *tensor.Dense {
	return propagateInto(a, y, tensor.New(a.Rows, y.Cols))
}

// propagateInto is propagate writing into a caller-supplied N×ω buffer.
func propagateInto(a, y, h *tensor.Dense) *tensor.Dense {
	n := a.Rows
	h.Zero()
	for i := 0; i < n; i++ {
		var deg float64
		for j := 0; j < n; j++ {
			if j != i {
				deg += a.At(i, j)
			}
		}
		if deg < 1e-8 {
			continue // isolated: leave zero row
		}
		dst := h.Row(i)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			w := a.At(i, j) / deg
			if w == 0 {
				continue
			}
			src := y.Row(j)
			for k, v := range src {
				dst[k] += w * v
			}
		}
	}
	return h
}
