package core

import "aero/internal/tensor"

// StreamBackend is the pluggable contract of the streaming pipeline: any
// detector that can ingest one frame at a time, score it, and survive the
// lifecycle operations a long-lived serving tenant needs (hot-swap of a
// retrained artifact, warm-state checkpoint/restore). The engine,
// lifecycle and CLIs are generic over this interface; *StreamDetector is
// the AERO implementation, and internal/baselines ships streaming
// adapters for the cheap univariate baselines (SR, Template Matching,
// FluxEV) that can keep up at survey rates.
//
// Implementations are not safe for concurrent use; the engine serializes
// access per subscription.
type StreamBackend interface {
	// Kind returns the backend's registered kind tag (e.g. "aero", "sr").
	Kind() string
	// Variates returns the frame width the backend expects.
	Variates() int
	// Ready reports whether enough frames have arrived for scoring (the
	// backend's window is warm).
	Ready() bool
	// LastTime returns the newest ingested timestamp and whether any frame
	// has arrived; feeds resuming a restored backend must continue
	// strictly after it.
	LastTime() (float64, bool)
	// Threshold returns the current alarm threshold in score space.
	Threshold() float64
	// PushScores ingests one frame and returns the newest frame's raw
	// per-variate anomaly scores, or nil before the backend is warm. The
	// returned slice is owned by the backend and reused by the next push;
	// composable stages (e.g. the DSPOT adaptive alarmer) consume it
	// without forcing an alarm allocation.
	PushScores(f Frame) ([]float64, error)
	// Push is PushScores plus alarming: scores at or above the backend's
	// threshold are returned as alarms (empty when none fire).
	Push(f Frame) ([]Alarm, error)
	// SwapArtifact installs a freshly trained artifact of the same kind
	// (as produced by the backend's Trainer) into the warm backend
	// without losing the window.
	SwapArtifact(artifact []byte) error
	// SnapshotState serializes the backend's runtime state (rings,
	// cursors, adaptive-threshold state) for warm restarts.
	SnapshotState() ([]byte, error)
	// RestoreState installs a snapshot taken by SnapshotState, validating
	// it fully before mutating anything.
	RestoreState(blob []byte) error
}

// GraphSnapshotter is the optional monitoring capability of backends that
// learn an inter-variate graph (AERO): a live window-wise adjacency.
type GraphSnapshotter interface {
	GraphSnapshot() (*tensor.Dense, error)
}

// IncrementalInvalidator is the optional capability of backends whose
// streaming path reuses cached activations across frames (AERO's
// incremental forward). Hosts that mutate window contents behind the
// backend's ingest path — e.g. the engine's frame hygiene repairing a
// frame in place — call InvalidateIncremental so the next scored frame
// runs a full exact pass instead of trusting stale caches. Wrapping stages
// (DSPOT) delegate to their inner backend.
type IncrementalInvalidator interface {
	InvalidateIncremental()
}

// KindAERO is the backend kind tag of the paper's two-stage AERO model.
const KindAERO = "aero"

var _ StreamBackend = (*StreamDetector)(nil)
var _ GraphSnapshotter = (*StreamDetector)(nil)
var _ IncrementalInvalidator = (*StreamDetector)(nil)
