// Package core implements AERO, the two-stage anomaly detection framework
// of "From Chaos to Clarity: Time Series Anomaly Detection in Astronomical
// Observations" (Hao et al., ICDE 2024):
//
//   - a temporal reconstruction module — a Transformer encoder–decoder
//     applied independently to each variate with an interval-aware time
//     embedding (paper Eq. 1–11), which learns normal per-star behaviour and
//     surfaces anomaly candidates as reconstruction errors; and
//   - a concurrent-noise reconstruction module — a graph convolution whose
//     adjacency matrix is re-derived for every sliding window from the
//     stage-1 errors (window-wise graph structure learning, Eq. 12–14),
//     which reconstructs errors shared across stars (clouds, dawn, drift)
//     so that only genuinely single-star events keep high anomaly scores.
//
// Training follows the paper's Algorithm 1 (two sequential stages with
// early stopping); online detection follows Algorithm 2 with POT
// thresholding (Eq. 17–18).
package core

import "fmt"

// Variant selects the model ablation used by Table IV. VariantFull is the
// complete AERO model.
type Variant int

const (
	// VariantFull is the complete two-stage AERO model.
	VariantFull Variant = iota
	// VariantNoTemporal removes the temporal reconstruction module
	// (ablation 1.i): the noise module reconstructs the raw windows.
	VariantNoTemporal
	// VariantMultivariateInput feeds the temporal module the full
	// multivariate window instead of per-variate series (ablation 1.ii).
	VariantMultivariateInput
	// VariantNoShortWindow makes the decoder reconstruct the entire long
	// window (ω = W, ablation 1.iii).
	VariantNoShortWindow
	// VariantNoNoise removes the concurrent-noise module (ablation 2.i).
	VariantNoNoise
	// VariantNoNoiseMultivariate removes the noise module and uses
	// multivariate input (ablation 2.ii).
	VariantNoNoiseMultivariate
	// VariantStaticGraph replaces window-wise graph learning with a static
	// complete graph (ablation 2.iii).
	VariantStaticGraph
	// VariantDynamicGraph replaces window-wise graph learning with a
	// temporally-evolved (EWMA-smoothed, ESG-style) dynamic graph
	// (ablation 2.iv).
	VariantDynamicGraph
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case VariantFull:
		return "AERO"
	case VariantNoTemporal:
		return "w/o temporal"
	case VariantMultivariateInput:
		return "w/o univariate input"
	case VariantNoShortWindow:
		return "w/o short window"
	case VariantNoNoise:
		return "w/o concurrent noise"
	case VariantNoNoiseMultivariate:
		return "w/o concurrent noise & univariate input"
	case VariantStaticGraph:
		return "w/o window-wise graph (static)"
	case VariantDynamicGraph:
		return "w/o window-wise graph (dynamic)"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Config holds AERO hyperparameters. The zero value is not usable; start
// from DefaultConfig (paper-faithful dimensions) or SmallConfig (scaled for
// CPU tests/benches) and override as needed.
type Config struct {
	// LongWindow is W, the context window length (paper default 200).
	LongWindow int
	// ShortWindow is ω, the reconstructed suffix length (paper default 60).
	ShortWindow int
	// ModelDim is the Transformer hidden width d_m.
	ModelDim int
	// Heads is the number of attention heads (paper default 4).
	Heads int
	// EncoderLayers is the number of encoder layers (paper default 1).
	EncoderLayers int
	// FFNHidden is the width of position-wise feed-forward blocks.
	FFNHidden int

	// LR is the Adam learning rate (paper default 0.001).
	LR float64
	// MaxEpochs bounds each training stage (paper default 100).
	MaxEpochs int
	// Patience is the early-stopping patience in epochs (paper default 5).
	Patience int
	// TrainStride subsamples training windows; 1 uses every window as in
	// the paper, larger values trade fidelity for CPU time.
	TrainStride int
	// EvalStride controls online scoring: every EvalStride-th window is
	// evaluated and its trailing EvalStride short-window errors become the
	// per-timestamp scores. 1 reproduces Algorithm 2 exactly.
	EvalStride int

	// POTLevel and POTQ parameterize the threshold selector
	// (paper: 0.99 and 1e-3).
	POTLevel float64
	POTQ     float64

	// Variant selects a Table IV ablation; VariantFull is standard AERO.
	Variant Variant

	// AttentionBand, when > 0, restricts encoder/decoder self-attention to
	// a local band of this half-width — the O(W·band) "more scalable
	// Transformer variant" the paper's conclusion proposes as future work.
	// 0 keeps the paper's full O(W²) attention.
	AttentionBand int

	// Workers bounds the data-parallel goroutines used during training and
	// scoring; 0 means GOMAXPROCS.
	Workers int
	// Seed makes weight initialization and data order deterministic.
	Seed int64
	// Logf, when non-nil, receives training progress lines.
	Logf func(format string, args ...any)
}

// DefaultConfig returns the paper's hyperparameters (§IV-B). Training at
// these sizes on pure Go is slow; see SmallConfig for tests.
func DefaultConfig() Config {
	return Config{
		LongWindow:    200,
		ShortWindow:   60,
		ModelDim:      64,
		Heads:         4,
		EncoderLayers: 1,
		FFNHidden:     128,
		LR:            0.001,
		MaxEpochs:     100,
		Patience:      5,
		TrainStride:   10,
		EvalStride:    10,
		POTLevel:      0.99,
		POTQ:          0.001,
		Seed:          1,
	}
}

// SmallConfig returns a CPU-friendly configuration used by tests and
// benchmark harness smoke runs. The architecture is identical; only sizes
// and epochs shrink.
func SmallConfig() Config {
	c := DefaultConfig()
	c.LongWindow = 64
	c.ShortWindow = 24
	c.ModelDim = 16
	c.Heads = 2
	c.FFNHidden = 32
	c.MaxEpochs = 20
	c.Patience = 4
	c.TrainStride = 12
	c.EvalStride = 12
	return c
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.LongWindow < 2:
		return fmt.Errorf("core: LongWindow %d < 2", c.LongWindow)
	case c.ShortWindow < 1 || c.ShortWindow > c.LongWindow:
		return fmt.Errorf("core: ShortWindow %d outside [1, %d]", c.ShortWindow, c.LongWindow)
	case c.ModelDim < 1:
		return fmt.Errorf("core: ModelDim %d < 1", c.ModelDim)
	case c.Heads < 1 || c.ModelDim%c.Heads != 0:
		return fmt.Errorf("core: Heads %d must divide ModelDim %d", c.Heads, c.ModelDim)
	case c.EncoderLayers < 1:
		return fmt.Errorf("core: EncoderLayers %d < 1", c.EncoderLayers)
	case c.LR <= 0:
		return fmt.Errorf("core: LR %v <= 0", c.LR)
	case c.MaxEpochs < 1:
		return fmt.Errorf("core: MaxEpochs %d < 1", c.MaxEpochs)
	case c.POTLevel <= 0 || c.POTLevel >= 1:
		return fmt.Errorf("core: POTLevel %v outside (0,1)", c.POTLevel)
	case c.POTQ <= 0 || c.POTQ >= 1:
		return fmt.Errorf("core: POTQ %v outside (0,1)", c.POTQ)
	}
	return nil
}

// normalized fills in derived/defaulted fields.
func (c Config) normalized() Config {
	if c.FFNHidden == 0 {
		c.FFNHidden = 2 * c.ModelDim
	}
	if c.TrainStride < 1 {
		c.TrainStride = 1
	}
	if c.EvalStride < 1 {
		c.EvalStride = 1
	}
	if c.Patience < 1 {
		c.Patience = 1
	}
	if c.Variant == VariantNoShortWindow {
		c.ShortWindow = c.LongWindow
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// usesTemporal reports whether the variant trains stage 1.
func (c Config) usesTemporal() bool { return c.Variant != VariantNoTemporal }

// usesNoise reports whether the variant trains stage 2.
func (c Config) usesNoise() bool {
	return c.Variant != VariantNoNoise && c.Variant != VariantNoNoiseMultivariate
}

// multivariateInput reports whether the temporal module sees all variates
// jointly.
func (c Config) multivariateInput() bool {
	return c.Variant == VariantMultivariateInput || c.Variant == VariantNoNoiseMultivariate
}
