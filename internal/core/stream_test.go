package core

import (
	"testing"

	"aero/internal/dataset"
	"aero/internal/tensor"
)

func TestStreamDetectorRequiresFittedModel(t *testing.T) {
	m, err := New(testConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStreamDetector(m); err == nil {
		t.Fatal("expected error for unfitted model")
	}
}

func TestStreamDetectorWarmup(t *testing.T) {
	m, d := shared(t)
	s, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	if s.Ready() {
		t.Fatal("fresh detector must not be ready")
	}
	frame := Frame{Magnitudes: make([]float64, d.Test.N())}
	for t2 := 0; t2 < m.Config().LongWindow-1; t2++ {
		frame.Time = d.Test.Time[t2]
		for v := range frame.Magnitudes {
			frame.Magnitudes[v] = d.Test.Data[v][t2]
		}
		alarms, err := s.Push(frame)
		if err != nil {
			t.Fatal(err)
		}
		if alarms != nil {
			t.Fatal("no alarms before warmup")
		}
	}
	if s.Ready() {
		t.Fatal("one frame early")
	}
	if _, err := s.GraphSnapshot(); err == nil {
		t.Fatal("graph snapshot must fail before warmup")
	}
}

func TestStreamDetectorRejectsBadFrames(t *testing.T) {
	m, d := shared(t)
	s, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(Frame{Time: 1, Magnitudes: make([]float64, d.Test.N()+1)}); err == nil {
		t.Fatal("expected dimension error")
	}
	good := Frame{Time: 5, Magnitudes: make([]float64, d.Test.N())}
	if _, err := s.Push(good); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(good); err == nil {
		t.Fatal("expected non-increasing time error")
	}
}

func TestStreamReplayMatchesBatchAtWindowEnds(t *testing.T) {
	// Replay alarms must agree with batch stride-1 detection at the same
	// threshold: every replay alarm corresponds to a batch score >= thr.
	m, d := shared(t)
	s, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	alarms, err := s.Replay(d.Test)
	if err != nil {
		t.Fatal(err)
	}
	if s.Threshold() != m.Threshold() {
		t.Fatal("threshold mismatch")
	}
	// Index alarms by (variate, time).
	type key struct {
		v int
		t float64
	}
	seen := map[key]float64{}
	for _, a := range alarms {
		seen[key{a.Variate, a.Time}] = a.Score
		if a.Score < m.Threshold() {
			t.Fatalf("alarm below threshold: %+v", a)
		}
	}
	// The detector's alarm scores are stride-1 window scores; spot-check
	// that an alarm exists where the labelled anomaly lives, if the model
	// detected it in batch mode too.
	batch, err := m.Detect(d.Test)
	if err != nil {
		t.Fatal(err)
	}
	batchHits := 0
	for v := range batch {
		for i := m.Config().LongWindow; i < len(batch[v]); i++ {
			if batch[v][i] && d.Test.Labels[v][i] {
				batchHits++
			}
		}
	}
	if batchHits > 0 && len(alarms) == 0 {
		t.Fatal("batch detector fires but stream replay produced no alarms")
	}
}

func TestStreamGraphSnapshot(t *testing.T) {
	m, d := shared(t)
	s, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	frame := Frame{Magnitudes: make([]float64, d.Test.N())}
	for t2 := 0; t2 < m.Config().LongWindow; t2++ {
		frame.Time = d.Test.Time[t2]
		for v := range frame.Magnitudes {
			frame.Magnitudes[v] = d.Test.Data[v][t2]
		}
		if _, err := s.Push(frame); err != nil {
			t.Fatal(err)
		}
	}
	g, err := s.GraphSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows != d.Test.N() || g.Cols != d.Test.N() {
		t.Fatal("graph shape wrong")
	}
}

// TestStreamPushSteadyStateAllocs pins the allocation budget of the online
// hot path: once the window is warm, Push must reuse the detector's ring
// and scratch buffers instead of re-allocating the scoring pipeline. The
// seed path allocated ~3000 objects per frame; the path now measures 0 in
// steady state, and the bound leaves headroom only for the alarm slice a
// firing frame returns.
func TestStreamPushSteadyStateAllocs(t *testing.T) {
	m, d := shared(t)
	s, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	frame := Frame{Magnitudes: make([]float64, d.Test.N())}
	next := 0
	push := func() {
		idx := next % d.Test.Len()
		frame.Time = float64(next)
		for v := range frame.Magnitudes {
			frame.Magnitudes[v] = d.Test.Data[v][idx]
		}
		if _, err := s.Push(frame); err != nil {
			t.Fatal(err)
		}
		next++
	}
	for i := 0; i < 2*m.Config().LongWindow; i++ {
		push()
	}
	allocs := testing.AllocsPerRun(64, push)
	if allocs > 2 {
		t.Fatalf("steady-state Push allocates %.1f objects/frame, want <= 2", allocs)
	}
}

// TestScratchScoringMatchesAllocatingPath asserts the scratch-backed
// scoring pipeline is bit-identical to the allocating one: same windows,
// same floats, no tolerance.
func TestScratchScoringMatchesAllocatingPath(t *testing.T) {
	m, d := shared(t)
	p := m.prepare(d.Test)
	sc := m.newScratch(0)
	w := m.Config().LongWindow
	for _, end := range []int{w - 1, w + 7, w + 8, d.Test.Len() - 1} {
		fresh, e1Fresh := m.windowScores(p, end, nil, nil)
		reused, e1Reused := m.windowScores(p, end, nil, sc)
		if !tensor.Equal(fresh, reused, 0) {
			t.Fatalf("end %d: scratch final scores differ from allocating path", end)
		}
		if !tensor.Equal(e1Fresh, e1Reused, 0) {
			t.Fatalf("end %d: scratch stage-1 errors differ from allocating path", end)
		}
	}
}

// TestStreamDynamicGraphVariant exercises streaming with the
// dynamic-graph ablation: the detector must own an evolving-graph state
// (the seed implementation passed nil and crashed once the window warmed).
func TestStreamDynamicGraphVariant(t *testing.T) {
	cfg := testConfig()
	cfg.Variant = VariantDynamicGraph
	cfg.LongWindow = 24
	cfg.ShortWindow = 8
	cfg.ModelDim = 8
	cfg.FFNHidden = 16
	cfg.MaxEpochs = 1
	cfg.TrainStride = 24
	d := dataset.SyntheticConfig{
		Name: "dyn", N: 4, TrainLen: 120, TestLen: 80,
		NoiseVariates: 2, AnomalySegments: 1, NoisePct: 3,
		VariableFrac: 0.5, Seed: 21,
	}.Generate()
	m, err := New(cfg, d.Train.N())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(d.Train); err != nil {
		t.Fatal(err)
	}
	s, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Replay(d.Test); err != nil {
		t.Fatal(err)
	}
	if !s.Ready() {
		t.Fatal("detector should be warm after replay")
	}
	// The evolving graph must not reintroduce per-frame allocations.
	next := d.Test.Time[d.Test.Len()-1] + 1
	frame := Frame{Magnitudes: make([]float64, d.Test.N())}
	allocs := testing.AllocsPerRun(32, func() {
		frame.Time = next
		next++
		if _, err := s.Push(frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("dynamic-graph steady-state Push allocates %.1f objects/frame, want <= 2", allocs)
	}
}

// TestStreamDetectorBackendContract pins the StreamBackend conformance
// of the AERO detector: the kind tag, Push deriving its alarms exactly
// from PushScores against the threshold, and SwapArtifact accepting the
// model's own marshaled bytes (and nothing else).
func TestStreamDetectorBackendContract(t *testing.T) {
	m, d := shared(t)
	s, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	twin, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind() != KindAERO || s.Variates() != d.Test.N() {
		t.Fatalf("identity %s/%d", s.Kind(), s.Variates())
	}
	frame := Frame{Magnitudes: make([]float64, d.Test.N())}
	for ti := 0; ti < d.Test.Len(); ti++ {
		frame.Time = d.Test.Time[ti]
		for v := range frame.Magnitudes {
			frame.Magnitudes[v] = d.Test.Data[v][ti]
		}
		alarms, err := s.Push(frame)
		if err != nil {
			t.Fatal(err)
		}
		scores, err := twin.PushScores(frame)
		if err != nil {
			t.Fatal(err)
		}
		var derived []Alarm
		for v, sc := range scores {
			if sc >= twin.Threshold() {
				derived = append(derived, Alarm{Variate: v, Time: frame.Time, Score: sc})
			}
		}
		if len(alarms) != len(derived) {
			t.Fatalf("t=%d: Push %d alarms, PushScores-derived %d", ti, len(alarms), len(derived))
		}
		for k := range alarms {
			if alarms[k] != derived[k] {
				t.Fatalf("t=%d alarm %d: %+v != %+v", ti, k, alarms[k], derived[k])
			}
		}
	}
	blob, err := m.MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SwapArtifact(blob); err != nil {
		t.Fatal(err)
	}
	if err := s.SwapArtifact([]byte("not a model")); err == nil {
		t.Fatal("garbage artifact accepted")
	}
}

func TestStreamMemoryBounded(t *testing.T) {
	m, d := shared(t)
	s, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	frame := Frame{Magnitudes: make([]float64, d.Test.N())}
	for t2 := 0; t2 < 3*m.Config().LongWindow; t2++ {
		frame.Time = float64(t2)
		if _, err := s.Push(frame); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.times) > m.Config().LongWindow {
		t.Fatalf("ring grew to %d, want <= %d", len(s.times), m.Config().LongWindow)
	}
}
