package core

import (
	"testing"
)

func TestStreamDetectorRequiresFittedModel(t *testing.T) {
	m, err := New(testConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStreamDetector(m); err == nil {
		t.Fatal("expected error for unfitted model")
	}
}

func TestStreamDetectorWarmup(t *testing.T) {
	m, d := shared(t)
	s, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	if s.Ready() {
		t.Fatal("fresh detector must not be ready")
	}
	frame := Frame{Magnitudes: make([]float64, d.Test.N())}
	for t2 := 0; t2 < m.Config().LongWindow-1; t2++ {
		frame.Time = d.Test.Time[t2]
		for v := range frame.Magnitudes {
			frame.Magnitudes[v] = d.Test.Data[v][t2]
		}
		alarms, err := s.Push(frame)
		if err != nil {
			t.Fatal(err)
		}
		if alarms != nil {
			t.Fatal("no alarms before warmup")
		}
	}
	if s.Ready() {
		t.Fatal("one frame early")
	}
	if _, err := s.GraphSnapshot(); err == nil {
		t.Fatal("graph snapshot must fail before warmup")
	}
}

func TestStreamDetectorRejectsBadFrames(t *testing.T) {
	m, d := shared(t)
	s, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(Frame{Time: 1, Magnitudes: make([]float64, d.Test.N()+1)}); err == nil {
		t.Fatal("expected dimension error")
	}
	good := Frame{Time: 5, Magnitudes: make([]float64, d.Test.N())}
	if _, err := s.Push(good); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(good); err == nil {
		t.Fatal("expected non-increasing time error")
	}
}

func TestStreamReplayMatchesBatchAtWindowEnds(t *testing.T) {
	// Replay alarms must agree with batch stride-1 detection at the same
	// threshold: every replay alarm corresponds to a batch score >= thr.
	m, d := shared(t)
	s, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	alarms, err := s.Replay(d.Test)
	if err != nil {
		t.Fatal(err)
	}
	if s.Threshold() != m.Threshold() {
		t.Fatal("threshold mismatch")
	}
	// Index alarms by (variate, time).
	type key struct {
		v int
		t float64
	}
	seen := map[key]float64{}
	for _, a := range alarms {
		seen[key{a.Variate, a.Time}] = a.Score
		if a.Score < m.Threshold() {
			t.Fatalf("alarm below threshold: %+v", a)
		}
	}
	// The detector's alarm scores are stride-1 window scores; spot-check
	// that an alarm exists where the labelled anomaly lives, if the model
	// detected it in batch mode too.
	batch, err := m.Detect(d.Test)
	if err != nil {
		t.Fatal(err)
	}
	batchHits := 0
	for v := range batch {
		for i := m.Config().LongWindow; i < len(batch[v]); i++ {
			if batch[v][i] && d.Test.Labels[v][i] {
				batchHits++
			}
		}
	}
	if batchHits > 0 && len(alarms) == 0 {
		t.Fatal("batch detector fires but stream replay produced no alarms")
	}
}

func TestStreamGraphSnapshot(t *testing.T) {
	m, d := shared(t)
	s, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	frame := Frame{Magnitudes: make([]float64, d.Test.N())}
	for t2 := 0; t2 < m.Config().LongWindow; t2++ {
		frame.Time = d.Test.Time[t2]
		for v := range frame.Magnitudes {
			frame.Magnitudes[v] = d.Test.Data[v][t2]
		}
		if _, err := s.Push(frame); err != nil {
			t.Fatal(err)
		}
	}
	g, err := s.GraphSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows != d.Test.N() || g.Cols != d.Test.N() {
		t.Fatal("graph shape wrong")
	}
}

func TestStreamMemoryBounded(t *testing.T) {
	m, d := shared(t)
	s, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	frame := Frame{Magnitudes: make([]float64, d.Test.N())}
	for t2 := 0; t2 < 3*m.Config().LongWindow; t2++ {
		frame.Time = float64(t2)
		if _, err := s.Push(frame); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.times) > m.Config().LongWindow {
		t.Fatalf("ring grew to %d, want <= %d", len(s.times), m.Config().LongWindow)
	}
}
