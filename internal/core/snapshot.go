package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Detector state snapshots are a versioned little-endian binary encoding
// of everything a StreamDetector accumulates at runtime — a format
// deliberately separate from model files (which stay at JSON v1): weights
// are published through the registry, warm state is checkpointed here.
//
//	magic   [8]byte  "AEROSNAP"
//	version uint32   currently 1
//	n       uint32   variate count
//	w       uint32   long-window length (ring capacity)
//	count   uint64   frames pushed so far (the warm-up counter)
//	last    float64  newest timestamp (the monotonicity cursor)
//	times   [w]float64    timestamp ring
//	raw     [n][w]float64 raw magnitude rings
//	dyn     uint8         1 iff an evolving-graph state follows
//	  decay float64       │ only when dyn == 1
//	  adj   [n·n]float64  ┘
//	crc     uint32   IEEE CRC-32 of every preceding byte
//
// The rings store *raw* magnitudes, not normalized values, so a snapshot
// can be restored into a retrained model: RestoreState re-normalizes the
// window under the restoring model's bounds. Restored into the same model,
// the ring is bit-identical to the one the snapshot captured, because
// normalize-on-insert applied the same pure function to the same inputs.
const (
	stateMagic   = "AEROSNAP"
	stateVersion = 1
)

// SnapshotState serializes the detector's runtime state — rings, cursors,
// warm-up counters and (for the dynamic-graph variant) the evolving
// adjacency — into a self-validating binary blob. Model weights are not
// included; persist those with Model.Save. Snapshots may be taken at any
// point, including before the window is warm.
func (s *StreamDetector) SnapshotState() ([]byte, error) {
	n, w := s.m.n, s.m.cfg.LongWindow
	size := len(stateMagic) + 3*4 + 8 + 8 + 8*w + 8*n*w + 1 + 4
	if s.dyn != nil {
		size += 8 + 8*n*n
	}
	buf := make([]byte, 0, size)
	buf = append(buf, stateMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, stateVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(w))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.count))
	buf = appendFloat64(buf, s.last)
	for _, t := range s.times {
		buf = appendFloat64(buf, t)
	}
	for v := 0; v < n; v++ {
		for _, x := range s.raw[v] {
			buf = appendFloat64(buf, x)
		}
	}
	if s.dyn != nil {
		buf = append(buf, 1)
		buf = appendFloat64(buf, s.dyn.decay)
		for _, x := range s.dyn.a.Data {
			buf = appendFloat64(buf, x)
		}
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// RestoreState replaces the detector's runtime state with a snapshot taken
// by SnapshotState, so a swapped or freshly restarted detector resumes
// with a full warm window instead of a cold ring. The snapshot must match
// the detector's ring geometry (variate count and long-window length); the
// backing model may be a different — e.g. freshly retrained — one, in
// which case the window is re-normalized under its bounds.
//
// The blob is fully validated (magic, version, geometry, length, CRC)
// before any detector state is touched: a corrupt or truncated snapshot
// returns an error and leaves the detector exactly as it was.
func (s *StreamDetector) RestoreState(blob []byte) error {
	if len(blob) < len(stateMagic)+8 {
		return fmt.Errorf("core: detector state truncated (%d bytes)", len(blob))
	}
	if string(blob[:len(stateMagic)]) != stateMagic {
		return fmt.Errorf("core: not a detector state snapshot (bad magic)")
	}
	// Checksum first: a flipped bit anywhere — including the header fields
	// about to be trusted — must be caught before they are interpreted.
	body, tail := blob[:len(blob)-4], blob[len(blob)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return fmt.Errorf("core: detector state checksum mismatch (%08x != %08x)", got, want)
	}
	r := stateReader{buf: body, off: len(stateMagic)}
	if ver := r.u32(); r.err == nil && ver != stateVersion {
		return fmt.Errorf("core: unsupported detector state version %d", ver)
	}
	n, w := int(r.u32()), int(r.u32())
	if r.err != nil {
		return r.err
	}
	if n != s.m.n || w != s.m.cfg.LongWindow {
		return fmt.Errorf("core: snapshot is %d variates × window %d, detector is %d × %d",
			n, w, s.m.n, s.m.cfg.LongWindow)
	}
	count := r.u64()
	last := r.f64()
	times := r.f64s(w)
	raw := make([][]float64, n)
	for v := range raw {
		raw[v] = r.f64s(w)
	}
	var decay float64
	var adj []float64
	hasDyn := r.u8() == 1
	if hasDyn {
		decay = r.f64()
		adj = r.f64s(n * n)
	}
	if r.err != nil {
		return r.err
	}
	if r.off != len(body) {
		return fmt.Errorf("core: detector state has %d trailing bytes", len(body)-r.off)
	}
	if count > math.MaxInt64 {
		return fmt.Errorf("core: detector state frame count %d overflows", count)
	}

	// Everything validated; commit.
	s.count = int(count)
	s.last = last
	copy(s.times, times)
	filled := s.count
	if filled > w {
		filled = w
	}
	for v := 0; v < n; v++ {
		copy(s.raw[v], raw[v])
		for i := 0; i < w; i++ {
			if i < filled {
				s.data[v][i] = s.m.norm.TransformValue(v, s.raw[v][i])
			} else {
				s.data[v][i] = 0
			}
		}
	}
	if s.m.cfg.Variant == VariantDynamicGraph {
		if s.dyn == nil {
			s.dyn = newDynamicGraphState(n)
		}
		if hasDyn {
			s.dyn.decay = decay
			copy(s.dyn.a.Data, adj)
		} else {
			// Snapshot predates any evolving state (or came from another
			// variant); restart the EWMA from its initial complete graph.
			fresh := newDynamicGraphState(n)
			s.dyn.decay = fresh.decay
			s.dyn.a.CopyFrom(fresh.a)
		}
	}
	// The restored window has nothing in common with the cached
	// activations; the next scored frame must run a full exact pass.
	s.InvalidateIncremental()
	return nil
}

func appendFloat64(buf []byte, x float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
}

// stateReader is a bounds-checked cursor over a snapshot body: the first
// out-of-range read latches err and every later read returns zero values.
type stateReader struct {
	buf []byte
	off int
	err error
}

func (r *stateReader) take(k int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+k > len(r.buf) {
		r.err = fmt.Errorf("core: detector state truncated at byte %d", len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+k]
	r.off += k
	return b
}

func (r *stateReader) u8() uint8 {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (r *stateReader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *stateReader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (r *stateReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *stateReader) f64s(k int) []float64 {
	out := make([]float64, k)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}
