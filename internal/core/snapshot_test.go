package core

import (
	"encoding/binary"
	"hash/crc32"
	"path/filepath"
	"testing"

	"aero/internal/dataset"
)

// pushAt builds the t-th test frame and pushes it into det, failing the
// test on error.
func pushAt(t *testing.T, det *StreamDetector, d *dataset.Dataset, idx int) []Alarm {
	t.Helper()
	frame := Frame{Time: d.Test.Time[idx], Magnitudes: make([]float64, d.Test.N())}
	for v := 0; v < d.Test.N(); v++ {
		frame.Magnitudes[v] = d.Test.Data[v][idx]
	}
	alarms, err := det.Push(frame)
	if err != nil {
		t.Fatalf("push %d: %v", idx, err)
	}
	return alarms
}

func sameAlarms(a, b []Alarm) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] { // exact float equality on Score included
			return false
		}
	}
	return true
}

// TestSnapshotRestoreBitIdentical pins the warm-restore contract:
// Snapshot→Restore→Push must be bit-identical to uninterrupted Push — the
// restored detector resumes with the full window, the same time cursor and
// the same warm-up counter, and every subsequent score matches to the bit.
// The restored hot path must also stay within the steady-state allocation
// budget.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	m, d := shared(t)
	w := m.Config().LongWindow
	for _, cut := range []int{w / 2, w + 13} { // cold ring and warm ring snapshots
		uninterrupted, err := NewStreamDetector(m)
		if err != nil {
			t.Fatal(err)
		}
		donor, err := NewStreamDetector(m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cut; i++ {
			pushAt(t, uninterrupted, d, i)
			pushAt(t, donor, d, i)
		}
		blob, err := donor.SnapshotState()
		if err != nil {
			t.Fatal(err)
		}
		restored, err := NewStreamDetector(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := restored.RestoreState(blob); err != nil {
			t.Fatalf("restore at cut %d: %v", cut, err)
		}
		if restored.Ready() != uninterrupted.Ready() {
			t.Fatalf("cut %d: restored readiness %v, want %v", cut, restored.Ready(), uninterrupted.Ready())
		}
		fired := 0
		for i := cut; i < d.Test.Len(); i++ {
			want := pushAt(t, uninterrupted, d, i)
			got := pushAt(t, restored, d, i)
			if !sameAlarms(want, got) {
				t.Fatalf("cut %d frame %d: restored alarms %+v != uninterrupted %+v", cut, i, got, want)
			}
			fired += len(want)
		}
		if fired == 0 {
			t.Fatalf("cut %d: no alarms fired; bit-identity check is vacuous", cut)
		}
	}

	// Steady-state allocation budget survives a restore.
	donor, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < w+5; i++ {
		pushAt(t, donor, d, i)
	}
	blob, err := donor.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	next := d.Test.Time[w+4] + 1
	frame := Frame{Magnitudes: make([]float64, d.Test.N())}
	allocs := testing.AllocsPerRun(64, func() {
		frame.Time = next
		next++
		if _, err := restored.Push(frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("restored detector Push allocates %.1f objects/frame, want <= 2", allocs)
	}
}

// TestSnapshotRestoreDynamicGraph covers the evolving-graph arm of the
// state format: the EWMA adjacency must survive the round-trip so restored
// scores stay bit-identical for the dynamic ablation too.
func TestSnapshotRestoreDynamicGraph(t *testing.T) {
	cfg := testConfig()
	cfg.Variant = VariantDynamicGraph
	cfg.LongWindow = 24
	cfg.ShortWindow = 8
	cfg.ModelDim = 8
	cfg.FFNHidden = 16
	cfg.MaxEpochs = 1
	cfg.TrainStride = 24
	d := dataset.SyntheticConfig{
		Name: "dynsnap", N: 4, TrainLen: 120, TestLen: 90,
		NoiseVariates: 2, AnomalySegments: 1, NoisePct: 3,
		VariableFrac: 0.5, Seed: 23,
	}.Generate()
	m, err := New(cfg, d.Train.N())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(d.Train); err != nil {
		t.Fatal(err)
	}
	uninterrupted, _ := NewStreamDetector(m)
	donor, _ := NewStreamDetector(m)
	// Exact incremental mode: this test pins *raw scores* frame for frame,
	// and under an approximate policy the restored detector's freshly
	// rebuilt caches would legitimately diverge from the donor's warm ones
	// on benign frames. Every=1 recomputes every window, so any mismatch
	// here is a genuine EWMA round-trip bug. Alarm identity under the
	// default policy is pinned by the incremental golden-replay tests.
	uninterrupted.SetIncrementalPolicy(ExactIncrementalPolicy())
	donor.SetIncrementalPolicy(ExactIncrementalPolicy())
	cut := cfg.LongWindow + 9 // past warm-up so the EWMA state has evolved
	for i := 0; i < cut; i++ {
		pushAt(t, uninterrupted, d, i)
		pushAt(t, donor, d, i)
	}
	blob, err := donor.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	restored, _ := NewStreamDetector(m)
	restored.SetIncrementalPolicy(ExactIncrementalPolicy())
	if err := restored.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	for i := cut; i < d.Test.Len(); i++ {
		want := pushAt(t, uninterrupted, d, i)
		got := pushAt(t, restored, d, i)
		if !sameAlarms(want, got) {
			t.Fatalf("frame %d: restored alarms %+v != uninterrupted %+v", i, got, want)
		}
		ws := append([]float64(nil), uninterrupted.scores...)
		gs := append([]float64(nil), restored.scores...)
		for v := range ws {
			if ws[v] != gs[v] {
				t.Fatalf("frame %d variate %d: restored score %v != %v", i, v, gs[v], ws[v])
			}
		}
	}
}

// reseal recomputes the trailing CRC after test surgery on a snapshot.
func reseal(blob []byte) []byte {
	body := blob[:len(blob)-4]
	return binary.LittleEndian.AppendUint32(append([]byte(nil), body...), crc32.ChecksumIEEE(body))
}

// TestRestoreStateRejectsCorrupt walks every validation branch of
// RestoreState: truncation, bad magic, bit flips, unknown versions,
// geometry mismatches and trailing garbage must all fail cleanly — and a
// failed restore must leave the detector untouched.
func TestRestoreStateRejectsCorrupt(t *testing.T) {
	m, d := shared(t)
	w := m.Config().LongWindow
	donor, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < w+3; i++ {
		pushAt(t, donor, d, i)
	}
	blob, err := donor.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}

	corrupt := map[string][]byte{}
	corrupt["empty"] = nil
	corrupt["truncated-header"] = append([]byte(nil), blob[:10]...)
	corrupt["truncated-body"] = append([]byte(nil), blob[:len(blob)-20]...)
	badMagic := append([]byte(nil), blob...)
	badMagic[0] ^= 0xff
	corrupt["bad-magic"] = badMagic
	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)/2] ^= 0x01
	corrupt["bit-flip"] = flipped
	badVersion := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint32(badVersion[8:], 99)
	corrupt["bad-version"] = reseal(badVersion)
	badN := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint32(badN[12:], uint32(d.Test.N()+1))
	corrupt["variate-mismatch"] = reseal(badN)
	badW := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint32(badW[16:], uint32(w+1))
	corrupt["window-mismatch"] = reseal(badW)
	trailing := append([]byte(nil), blob[:len(blob)-4]...)
	trailing = append(trailing, 0, 0, 0, 0, 0, 0, 0, 0)
	corrupt["trailing-bytes"] = reseal(append(trailing, 0, 0, 0, 0))

	for name, bad := range corrupt {
		victim, err := NewStreamDetector(m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < w+3; i++ {
			pushAt(t, victim, d, i)
		}
		if err := victim.RestoreState(bad); err == nil {
			t.Fatalf("%s: RestoreState accepted a corrupt snapshot", name)
		}
		// The failed restore must not have touched the victim: its next
		// frames must match an untouched twin exactly.
		twin, err := NewStreamDetector(m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < w+3; i++ {
			pushAt(t, twin, d, i)
		}
		for i := w + 3; i < w+6; i++ {
			if !sameAlarms(pushAt(t, twin, d, i), pushAt(t, victim, d, i)) {
				t.Fatalf("%s: failed restore mutated detector state", name)
			}
		}
	}
}

// TestSwapSameWeightsBitIdentical pins the hot-swap invariant at the
// detector level: replaying a feed with a mid-stream Swap to the *same*
// weights (a Save/Load round-trip of the serving model) must be
// bit-identical to never swapping at all — the warm window survives the
// swap re-normalized to the same bits.
func TestSwapSameWeightsBitIdentical(t *testing.T) {
	m, d := shared(t)
	path := filepath.Join(t.TempDir(), "twin.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	twin, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}

	plain, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	swapped, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	cut := d.Test.Len() / 2
	fired := 0
	for i := 0; i < d.Test.Len(); i++ {
		if i == cut {
			if err := swapped.Swap(twin); err != nil {
				t.Fatalf("swap: %v", err)
			}
		}
		want := pushAt(t, plain, d, i)
		got := pushAt(t, swapped, d, i)
		if !sameAlarms(want, got) {
			t.Fatalf("frame %d: swapped alarms %+v != plain %+v", i, got, want)
		}
		fired += len(want)
	}
	if fired == 0 {
		t.Fatal("no alarms fired; swap bit-identity check is vacuous")
	}
}

// TestSwapValidation covers Swap's rejection branches. The mismatched
// models are hand-built (trained flag forced) — only the geometry checks
// are under test, not training.
func TestSwapValidation(t *testing.T) {
	m, d := shared(t)
	det, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	unfitted, err := New(testConfig(), d.Test.N())
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Swap(unfitted); err == nil {
		t.Fatal("swap accepted an unfitted model")
	}
	wrongN, err := New(testConfig(), d.Test.N()+1)
	if err != nil {
		t.Fatal(err)
	}
	wrongN.trained = true
	if err := det.Swap(wrongN); err == nil {
		t.Fatal("swap accepted a model with the wrong variate count")
	}
	cfg := testConfig()
	cfg.LongWindow++
	wrongW, err := New(cfg, d.Test.N())
	if err != nil {
		t.Fatal(err)
	}
	wrongW.trained = true
	if err := det.Swap(wrongW); err == nil {
		t.Fatal("swap accepted a model with the wrong window length")
	}
}
