package core

import (
	"math"
	"testing"

	"aero/internal/ag"
	"aero/internal/dataset"
)

// fitIncVariant trains a small model of the given variant on a fresh
// synthetic dataset, sized like the dynamic-graph snapshot test so the
// whole variant sweep stays cheap.
func fitIncVariant(t *testing.T, variant Variant) (*Model, *dataset.Dataset) {
	t.Helper()
	cfg := testConfig()
	cfg.Variant = variant
	cfg.LongWindow = 24
	cfg.ShortWindow = 8
	cfg.ModelDim = 8
	cfg.FFNHidden = 16
	cfg.MaxEpochs = 1
	cfg.TrainStride = 24
	d := dataset.SyntheticConfig{
		Name: "incgold", N: 4, TrainLen: 120, TestLen: 240,
		NoiseVariates: 2, AnomalySegments: 4, NoisePct: 8,
		VariableFrac: 0.5, Seed: 31,
	}.Generate()
	m, err := New(cfg, d.Train.N())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(d.Train); err != nil {
		t.Fatal(err)
	}
	return m, d
}

// TestIncrementalGoldenAlarmIdentity is the golden replay of the
// alarm-boundary guard contract: under the default incremental policy the
// alarm stream — frames, variates, and exact scores — must be identical to
// the always-exact detector's, for every graph variant the streaming path
// specializes on. The replay is rejected as vacuous unless alarms fired
// and most frames were actually served incrementally.
func TestIncrementalGoldenAlarmIdentity(t *testing.T) {
	variants := []struct {
		name string
		v    Variant
		// The evolving-graph EWMA is path-dependent: between refreshes it
		// ingests the incremental error matrix, so its trajectory drifts a
		// few ulps from the always-exact twin's and guard-refreshed scores
		// inherit that drift. Verdicts must still match exactly; scores get
		// a tight tolerance instead of bit-equality for that variant only.
		scoreTol float64
	}{
		{"default", VariantFull, 0},
		{"static-graph", VariantStaticGraph, 0},
		{"dynamic-graph", VariantDynamicGraph, 1e-4},
		{"multivariate-input", VariantMultivariateInput, 0},
	}
	for _, tc := range variants {
		t.Run(tc.name, func(t *testing.T) {
			m, d := fitIncVariant(t, tc.v)
			// The 1-epoch variant models calibrate a POT threshold above any
			// score the test feed can reach; re-pin Z below the feed's score
			// ceiling so the replay actually alarms (both detectors see the
			// same recalibrated threshold).
			calib, err := NewStreamDetector(m)
			if err != nil {
				t.Fatal(err)
			}
			calib.SetIncrementalPolicy(IncrementalPolicy{})
			var ceiling float64
			for i := 0; i < d.Test.Len(); i++ {
				pushAt(t, calib, d, i)
				for _, s := range calib.scores {
					if s > ceiling {
						ceiling = s
					}
				}
			}
			m.thr.Z = 0.8 * ceiling
			inc, err := NewStreamDetector(m)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := NewStreamDetector(m)
			if err != nil {
				t.Fatal(err)
			}
			exact.SetIncrementalPolicy(IncrementalPolicy{}) // full forward every frame
			if inc.IncrementalPolicy() != DefaultIncrementalPolicy() {
				t.Fatalf("detector policy %+v, want the default", inc.IncrementalPolicy())
			}
			fired := 0
			for i := 0; i < d.Test.Len(); i++ {
				want := pushAt(t, exact, d, i)
				got := pushAt(t, inc, d, i)
				if !sameAlarmsTol(want, got, tc.scoreTol) {
					t.Fatalf("frame %d: incremental alarms %+v != exact %+v", i, got, want)
				}
				fired += len(want)
			}
			// The 1-epoch variant models calibrate a threshold the synthetic
			// anomalies may not clear, so drive both detectors through a
			// deterministic out-of-range excursion: alarms must fire and must
			// still match frame for frame.
			next := d.Test.Time[d.Test.Len()-1] + 1
			frame := Frame{Magnitudes: make([]float64, d.Test.N())}
			for k := 0; k < 2*m.Config().LongWindow; k++ {
				for v := range frame.Magnitudes {
					frame.Magnitudes[v] = 20 + float64(k%5)
				}
				frame.Time = next
				next++
				want, err := exact.Push(frame)
				if err != nil {
					t.Fatal(err)
				}
				got, err := inc.Push(frame)
				if err != nil {
					t.Fatal(err)
				}
				if !sameAlarmsTol(want, got, tc.scoreTol) {
					t.Fatalf("excursion frame %d: incremental alarms %+v != exact %+v", k, got, want)
				}
				fired += len(want)
			}
			if fired == 0 {
				t.Fatal("no alarms fired; golden replay is vacuous")
			}
			st := inc.IncrementalStats()
			if st.Incremental == 0 || st.Incremental <= st.Frames/3 {
				t.Fatalf("incremental path served %d of %d frames; replay is vacuous", st.Incremental, st.Frames)
			}
			if st.Frames != st.Incremental+st.ScheduledRefreshes+st.DriftRefreshes+st.BoundaryRefreshes+st.InvalidationRefreshes {
				t.Fatalf("stats do not add up: %+v", st)
			}
		})
	}
}

// sameAlarmsTol is sameAlarms with an optional score tolerance (0 keeps
// exact float equality); verdicts — count, variates, times — always
// compare exactly.
func sameAlarmsTol(a, b []Alarm, tol float64) bool {
	if tol == 0 {
		return sameAlarms(a, b)
	}
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Variate != b[i].Variate || a[i].Time != b[i].Time {
			return false
		}
		if math.Abs(a[i].Score-b[i].Score) > tol {
			return false
		}
	}
	return true
}

// TestIncrementalSwapRestoreInvalidation replays across a mid-stream Swap
// (same weights, Save/Load round-trip) and a SnapshotState/RestoreState
// hand-off, under the default incremental policy on both sides. Alarms
// must stay identical to an uninterrupted always-exact twin, and each
// boundary must show up in the stats as a cache invalidation.
func TestIncrementalSwapRestoreInvalidation(t *testing.T) {
	m, d := shared(t)
	twin := saveLoadTwin(t, m)

	exact, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	exact.SetIncrementalPolicy(IncrementalPolicy{})
	det, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}

	w := m.Config().LongWindow
	swapCut := w + 17
	restoreCut := d.Test.Len() * 2 / 3
	fired := 0
	for i := 0; i < d.Test.Len(); i++ {
		if i == swapCut {
			before := det.IncrementalStats().InvalidationRefreshes
			if err := det.Swap(twin); err != nil {
				t.Fatalf("swap: %v", err)
			}
			pushBoth(t, exact, det, d, i, &fired)
			if got := det.IncrementalStats().InvalidationRefreshes; got != before+1 {
				t.Fatalf("swap did not invalidate caches: invalidation refreshes %d, want %d", got, before+1)
			}
			continue
		}
		if i == restoreCut {
			blob, err := det.SnapshotState()
			if err != nil {
				t.Fatal(err)
			}
			restored, err := NewStreamDetector(twin)
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.RestoreState(blob); err != nil {
				t.Fatal(err)
			}
			det = restored
			before := det.IncrementalStats().InvalidationRefreshes
			pushBoth(t, exact, det, d, i, &fired)
			if got := det.IncrementalStats().InvalidationRefreshes; got != before+1 {
				t.Fatalf("restore did not invalidate caches: invalidation refreshes %d, want %d", got, before+1)
			}
			continue
		}
		pushBoth(t, exact, det, d, i, &fired)
	}
	if fired == 0 {
		t.Fatal("no alarms fired; swap/restore replay is vacuous")
	}
	if st := det.IncrementalStats(); st.Incremental == 0 {
		t.Fatalf("restored detector never took the incremental path: %+v", st)
	}
}

// saveLoadTwin round-trips m through Save/Load, producing a distinct model
// with bit-identical weights and calibration.
func saveLoadTwin(t *testing.T, m *Model) *Model {
	t.Helper()
	blob, err := m.MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	twin, err := LoadBytes(blob)
	if err != nil {
		t.Fatal(err)
	}
	return twin
}

// pushBoth pushes frame i into both detectors and requires identical
// alarms, accumulating the fired count.
func pushBoth(t *testing.T, exact, det *StreamDetector, d *dataset.Dataset, i int, fired *int) {
	t.Helper()
	want := pushAt(t, exact, d, i)
	got := pushAt(t, det, d, i)
	if !sameAlarms(want, got) {
		t.Fatalf("frame %d: alarms %+v != exact %+v", i, got, want)
	}
	*fired += len(want)
}

// TestIncrementalErrorBound pins the contract the alarm-boundary guard
// enforces, score by score, the way the DSPOT amortization test pins the
// amortized threshold: frames served incrementally may drift from the
// exact score, but (a) never on a frame whose exact score reaches the
// threshold — those must have hit the guard and been re-scored exactly —
// and (b) never by more than the threshold itself (overestimates at the
// guard margin are refreshed away; underestimates beyond Z would be a
// missed alarm, caught by (a)). Refresh frames must be bit-identical.
// Vacuous runs are rejected: the replay must alarm, must serve most
// frames incrementally, must trip the guard at least once, and the
// incremental path must actually deviate.
func TestIncrementalErrorBound(t *testing.T) {
	m, d := shared(t)
	inc, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	exact.SetIncrementalPolicy(IncrementalPolicy{})

	frame := Frame{Magnitudes: make([]float64, d.Test.N())}
	var maxErr float64
	incFrames, fired := 0, 0
	for i := 0; i < d.Test.Len(); i++ {
		frame.Time = d.Test.Time[i]
		for v := 0; v < d.Test.N(); v++ {
			frame.Magnitudes[v] = d.Test.Data[v][i]
		}
		prevInc := inc.IncrementalStats().Incremental
		got, err := inc.PushScores(frame)
		if err != nil {
			t.Fatal(err)
		}
		want, err := exact.PushScores(frame)
		if err != nil {
			t.Fatal(err)
		}
		if got == nil {
			continue
		}
		servedIncrementally := inc.IncrementalStats().Incremental > prevInc
		for v := range got {
			if want[v] >= m.thr.Z {
				fired++
			}
			diff := math.Abs(got[v] - want[v])
			switch {
			case !servedIncrementally:
				// Refresh frames are full exact recomputes of the same
				// window: bit-identical, no tolerance.
				if diff != 0 {
					t.Fatalf("frame %d variate %d: refresh score %v != exact %v", i, v, got[v], want[v])
				}
			case want[v] >= m.thr.Z:
				t.Fatalf("frame %d variate %d: alarming frame (exact %v >= Z %v) served incrementally as %v — missed alarm",
					i, v, want[v], m.thr.Z, got[v])
			case got[v] >= m.thr.Z:
				t.Fatalf("frame %d variate %d: incremental score %v alarms but exact %v does not — guard bypassed",
					i, v, got[v], want[v])
			case diff >= m.thr.Z:
				t.Fatalf("frame %d variate %d: incremental error %v exceeds the threshold %v", i, v, diff, m.thr.Z)
			case diff > maxErr:
				maxErr = diff
			}
		}
		if servedIncrementally {
			incFrames++
		}
	}
	st := inc.IncrementalStats()
	switch {
	case fired == 0:
		t.Fatal("no exact score crossed the threshold; error bound is vacuous")
	case incFrames == 0 || uint64(incFrames) <= st.Frames/3:
		t.Fatalf("incremental path served %d of %d frames; error bound is vacuous", incFrames, st.Frames)
	case st.BoundaryRefreshes == 0:
		t.Fatal("the alarm-boundary guard never fired; error bound is vacuous")
	case maxErr == 0:
		t.Fatal("incremental path never deviated from exact; error bound is vacuous")
	}
	t.Logf("max incremental error %.3g over %d incremental frames (Z %.3g, guard refreshes %d)",
		maxErr, incFrames, m.thr.Z, st.BoundaryRefreshes)
}

// TestIncrementalExactModeBitIdentical pins Every=1: with a refresh every
// frame the incremental machinery must be invisible — raw scores and alarms
// bit-identical to the detector with the path disabled.
func TestIncrementalExactModeBitIdentical(t *testing.T) {
	m, d := shared(t)
	ex, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	ex.SetIncrementalPolicy(ExactIncrementalPolicy())
	off, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	off.SetIncrementalPolicy(IncrementalPolicy{})
	fired := 0
	for i := 0; i < d.Test.Len(); i++ {
		want := pushAt(t, off, d, i)
		got := pushAt(t, ex, d, i)
		if !sameAlarms(want, got) {
			t.Fatalf("frame %d: exact-mode alarms %+v != disabled %+v", i, got, want)
		}
		for v := range off.scores {
			if off.scores[v] != ex.scores[v] {
				t.Fatalf("frame %d variate %d: exact-mode score %v != disabled %v", i, v, ex.scores[v], off.scores[v])
			}
		}
		fired += len(want)
	}
	if fired == 0 {
		t.Fatal("no alarms fired; exact-mode identity is vacuous")
	}
	if st := ex.IncrementalStats(); st.Incremental != 0 {
		t.Fatalf("Every=1 took the incremental path %d times", st.Incremental)
	}
}

// TestPushAlarmSliceReuse pins the Push alarm buffer: alarming frames must
// not allocate (the detector reuses one slice), and consecutive pushes hand
// back the same backing array.
func TestPushAlarmSliceReuse(t *testing.T) {
	m, d := shared(t)
	det, err := NewStreamDetector(m)
	if err != nil {
		t.Fatal(err)
	}
	w := m.Config().LongWindow
	for i := 0; i < w; i++ {
		pushAt(t, det, d, i)
	}
	// An impossible magnitude excursion forces alarms on every subsequent
	// frame once it dominates the window.
	next := d.Test.Time[w-1] + 1
	frame := Frame{Magnitudes: make([]float64, d.Test.N())}
	for v := range frame.Magnitudes {
		frame.Magnitudes[v] = 25 // far outside the trained magnitude range
	}
	alarming := func() []Alarm {
		frame.Time = next
		next++
		alarms, err := det.Push(frame)
		if err != nil {
			t.Fatal(err)
		}
		return alarms
	}
	var warm []Alarm
	for i := 0; i < w; i++ {
		warm = alarming()
	}
	if len(warm) == 0 {
		t.Fatal("excursion frames do not alarm; slice-reuse check is vacuous")
	}
	a1 := alarming()
	a2 := alarming()
	if len(a1) == 0 || len(a2) == 0 {
		t.Fatal("alarms stopped firing mid-check")
	}
	if &a1[0] != &a2[0] {
		t.Fatal("consecutive alarming pushes returned distinct backing arrays")
	}
	allocs := testing.AllocsPerRun(64, func() {
		if len(alarming()) == 0 {
			t.Fatal("alarms stopped firing during the allocation run")
		}
	})
	if allocs != 0 {
		t.Fatalf("alarming Push allocates %.1f objects/frame, want 0", allocs)
	}
}

// TestTimeEmbeddingPhaseCache pins the hoisted constant phase matrix:
// contiguous window-local positions are served from a per-shape cache
// (same tensor pointer across passes) whose entries are exactly the
// products the per-pass fill computes, while non-contiguous positions fall
// back to a per-pass buffer with identical values.
func TestTimeEmbeddingPhaseCache(t *testing.T) {
	te := NewTimeEmbedding(8)
	pos := []float64{3, 4, 5, 6, 7}

	first := te.phase(ag.NewTape(), pos)
	again := te.phase(ag.NewTape(), pos)
	if first.Value != again.Value {
		t.Fatal("contiguous positions were not served from the phase cache")
	}
	for l, p := range pos {
		for j := 0; j < te.dm; j++ {
			if want := te.freq[j] * p; first.Value.At(l, j) != want {
				t.Fatalf("phase[%d][%d] = %v, want %v", l, j, first.Value.At(l, j), want)
			}
		}
	}

	other := te.phase(ag.NewTape(), []float64{10, 11, 12, 13, 14})
	if other.Value == first.Value {
		t.Fatal("distinct first positions share one cache entry")
	}

	scattered := []float64{3, 5, 6, 7, 9}
	fb := te.phase(ag.NewTape(), scattered)
	if fb.Value == first.Value {
		t.Fatal("non-contiguous positions must not reuse the cache")
	}
	for l, p := range scattered {
		for j := 0; j < te.dm; j++ {
			if want := te.freq[j] * p; fb.Value.At(l, j) != want {
				t.Fatalf("fallback phase[%d][%d] = %v, want %v", l, j, fb.Value.At(l, j), want)
			}
		}
	}
}
