package baselines

import (
	"math"
	"math/rand"

	"aero/internal/ag"
	"aero/internal/dataset"
	"aero/internal/nn"
	"aero/internal/tensor"
	"aero/internal/window"
)

// TranAD (Tuli et al., VLDB 2022) is a Transformer encoder–decoder with
// *self-conditioning*: a first pass reconstructs the window, the squared
// first-pass error becomes a focus score concatenated to the input, and a
// second decoder refines the reconstruction conditioned on where the model
// already failed. The anomaly score averages both passes' errors.
//
// Simplifications: the GAN-style adversarial weighting between the two
// decoders is replaced by a fixed equal-weight sum of both reconstruction
// losses (the self-conditioning two-pass structure — TranAD's core idea —
// is kept).
type TranAD struct {
	cfg Config

	embed *nn.Linear // (2N → hidden): input ⊕ focus score
	attn  *nn.MultiHeadAttention
	ln    *nn.LayerNorm
	dec1  *nn.FFN
	dec2  *nn.FFN
	pars  []*ag.Param

	norm   *window.Normalizer
	n      int
	fitted bool
}

// NewTranAD returns an untrained TranAD.
func NewTranAD(cfg Config) *TranAD { return &TranAD{cfg: cfg.normalized()} }

// Name implements Detector.
func (d *TranAD) Name() string { return "TranAD" }

func (d *TranAD) build(rng *rand.Rand) {
	h := d.cfg.Hidden
	heads := 2
	if h%heads != 0 {
		heads = 1
	}
	d.embed = nn.NewLinear("tranad.embed", 2*d.n, h, rng)
	d.attn = nn.NewMultiHeadAttention("tranad.attn", h, heads, rng)
	d.ln = nn.NewLayerNorm("tranad.ln", h)
	d.dec1 = nn.NewFFN("tranad.dec1", h, 2*h, d.n, rng)
	d.dec2 = nn.NewFFN("tranad.dec2", h, 2*h, d.n, rng)
	d.pars = nn.CollectParams(d.embed, d.attn, d.ln, d.dec1, d.dec2)
}

// encode embeds the window concatenated with the focus score and runs one
// self-attention block.
func (d *TranAD) encode(t *ag.Tape, win, focus *tensor.Dense) *ag.Node {
	joint := tensor.ConcatCols(win, focus)
	x := d.embed.Forward(t, t.Const(joint))
	return d.ln.Forward(t, t.Add(x, d.attn.Forward(t, x, x, x)))
}

// twoPass runs both reconstruction phases, returning O1 and O2 (W×N each).
func (d *TranAD) twoPass(t *ag.Tape, win *tensor.Dense) (*ag.Node, *ag.Node) {
	w := win.Rows
	zeros := tensor.New(w, d.n)
	o1 := t.Sigmoid(d.dec1.Forward(t, d.encode(t, win, zeros)))
	// Focus score: squared phase-1 error, detached (self-conditioning uses
	// the error as an input signal, not a gradient path).
	focus := tensor.New(w, d.n)
	for i := range focus.Data {
		diff := win.Data[i] - o1.Value.Data[i]
		focus.Data[i] = diff * diff
	}
	o2 := t.Sigmoid(d.dec2.Forward(t, d.encode(t, win, focus)))
	return o1, o2
}

// Fit trains both decoders jointly.
func (d *TranAD) Fit(train *dataset.Series) error {
	if err := d.cfg.validate(); err != nil {
		return err
	}
	d.n = train.N()
	if train.Len() < d.cfg.Window {
		return checkSeries(train, d.n, d.cfg.Window, true)
	}
	rng := newRand(d.cfg.Seed)
	d.norm = window.FitNormalizer(train.Data)
	d.build(rng)
	data := d.norm.Transform(train.Data)
	insts := window.Indices(train.Len(), d.cfg.Window, d.cfg.TrainStride)
	opt := nn.NewAdam(d.cfg.LR)
	opt.MaxGradNorm = 5

	for epoch := 0; epoch < d.cfg.Epochs; epoch++ {
		rng.Shuffle(len(insts), func(i, j int) { insts[i], insts[j] = insts[j], insts[i] })
		for _, inst := range insts {
			t := ag.NewTape()
			win := tensor.FromRows(windowMatrix(data, inst.End, d.cfg.Window))
			o1, o2 := d.twoPass(t, win)
			target := t.Const(win)
			loss := t.Add(t.MSE(o1, target), t.MSE(o2, target))
			t.Backward(loss)
			opt.Step(d.pars)
		}
	}
	d.fitted = true
	return nil
}

// Scores implements Detector: ½‖x−Ô1‖ + ½‖x−Ô2‖ at each window's last
// position, per variate.
func (d *TranAD) Scores(s *dataset.Series) ([][]float64, error) {
	if err := checkSeries(s, d.n, d.cfg.Window, d.fitted); err != nil {
		return nil, err
	}
	data := d.norm.Transform(s.Data)
	w := d.cfg.Window
	return assembleWindowScores(s.Len(), w, d.cfg.EvalStride, d.n, d.cfg.Workers, func(end int) []float64 {
		t := ag.NewTape()
		win := tensor.FromRows(windowMatrix(data, end, w))
		o1, o2 := d.twoPass(t, win)
		scores := make([]float64, d.n)
		for v := 0; v < d.n; v++ {
			e1 := math.Abs(win.At(w-1, v) - o1.Value.At(w-1, v))
			e2 := math.Abs(win.At(w-1, v) - o2.Value.At(w-1, v))
			scores[v] = 0.5*e1 + 0.5*e2
		}
		return scores
	}), nil
}
