package baselines

import (
	"math"
	"math/rand"

	"aero/internal/ag"
	"aero/internal/dataset"
	"aero/internal/nn"
	"aero/internal/tensor"
	"aero/internal/window"
)

// ESG (Ye et al., KDD 2022) learns an *evolving* graph: per-node hidden
// states are advanced by a recurrent cell as new observations arrive, the
// graph at each step is derived from the current states, and a one-step
// forecast propagates information over that graph. Adapted for anomaly
// detection (as in the paper's §IV-B) by using single-step prediction
// errors as anomaly scores.
//
// Simplifications: the multi-scale pyramid of the original is reduced to a
// single scale, and training uses truncated backpropagation (states are
// detached between steps).
type ESG struct {
	cfg Config
	// ChunkLen is the number of trailing values fed to the state GRU at
	// each evolution step.
	ChunkLen int

	gru  *nn.GRUCell
	out  *nn.FFN
	pars []*ag.Param

	norm   *window.Normalizer
	n      int
	fitted bool
}

// NewESG returns an untrained ESG.
func NewESG(cfg Config) *ESG { return &ESG{cfg: cfg.normalized(), ChunkLen: 8} }

// Name implements Detector.
func (d *ESG) Name() string { return "ESG" }

func (d *ESG) build(rng *rand.Rand) {
	h := d.cfg.Hidden
	d.gru = nn.NewGRUCell("esg.gru", d.ChunkLen, h, rng)
	d.out = nn.NewFFN("esg.out", 2*h, 2*h, 1, rng)
	d.pars = append(d.gru.Params(), d.out.Params()...)
}

// chunk extracts the N×ChunkLen block ending at end.
func (d *ESG) chunk(data [][]float64, end int) *tensor.Dense {
	c := tensor.New(d.n, d.ChunkLen)
	for v := 0; v < d.n; v++ {
		copy(c.Row(v), window.Slice(data[v], end, d.ChunkLen))
	}
	return c
}

// step advances the node states with the chunk ending at end and returns
// the new states plus the one-step forecast node (N×1). prev is treated as
// a constant (truncated BPTT).
func (d *ESG) step(t *ag.Tape, data [][]float64, end int, prev *tensor.Dense) (*ag.Node, *ag.Node) {
	state := d.gru.Step(t, t.Const(d.chunk(data, end)), t.Const(prev)) // N×h
	// Evolving graph: row-softmax of state affinities.
	adj := t.SoftmaxRows(t.MatMulT(state, state))
	agg := t.MatMul(adj, state)
	joint := t.ConcatCols(state, agg)
	pred := t.Sigmoid(d.out.Forward(t, joint)) // N×1
	return state, pred
}

// Fit trains the evolving forecaster over the training stream.
func (d *ESG) Fit(train *dataset.Series) error {
	if err := d.cfg.validate(); err != nil {
		return err
	}
	d.n = train.N()
	if train.Len() < d.cfg.Window {
		return checkSeries(train, d.n, d.cfg.Window, true)
	}
	rng := newRand(d.cfg.Seed)
	d.norm = window.FitNormalizer(train.Data)
	d.build(rng)
	data := d.norm.Transform(train.Data)
	ends := window.Indices(train.Len()-1, d.ChunkLen, d.cfg.TrainStride)
	opt := nn.NewAdam(d.cfg.LR)
	opt.MaxGradNorm = 5

	for epoch := 0; epoch < d.cfg.Epochs; epoch++ {
		state := tensor.New(d.n, d.cfg.Hidden)
		for _, inst := range ends { // sequential: the graph evolves in time
			t := ag.NewTape()
			next, pred := d.step(t, data, inst.End, state)
			target := tensor.New(d.n, 1)
			for v := 0; v < d.n; v++ {
				target.Data[v] = data[v][inst.End+1]
			}
			loss := t.MSE(pred, t.Const(target))
			t.Backward(loss)
			opt.Step(d.pars)
			state = next.Value.Clone()
		}
		_ = rng
	}
	d.fitted = true
	return nil
}

// Scores implements Detector: one-step forecast errors along the evolving
// state trajectory.
func (d *ESG) Scores(s *dataset.Series) ([][]float64, error) {
	if err := checkSeries(s, d.n, d.cfg.Window, d.fitted); err != nil {
		return nil, err
	}
	data := d.norm.Transform(s.Data)
	T := s.Len()
	out := make([][]float64, d.n)
	for v := range out {
		out[v] = make([]float64, T)
	}
	ends := window.Indices(T-1, d.ChunkLen, d.cfg.EvalStride)
	state := tensor.New(d.n, d.cfg.Hidden)
	prevStamp := ends[0].End
	for _, inst := range ends {
		t := ag.NewTape()
		next, pred := d.step(t, data, inst.End, state)
		state = next.Value.Clone()
		for tt := prevStamp + 1; tt <= inst.End+1 && tt < T; tt++ {
			for v := 0; v < d.n; v++ {
				out[v][tt] = math.Abs(data[v][tt] - pred.Value.Data[v])
			}
		}
		prevStamp = inst.End + 1
	}
	return out, nil
}
