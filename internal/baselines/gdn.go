package baselines

import (
	"math"
	"math/rand"

	"aero/internal/ag"
	"aero/internal/dataset"
	"aero/internal/nn"
	"aero/internal/stats"
	"aero/internal/tensor"
	"aero/internal/window"
)

// GDN (Deng & Hooi, AAAI 2021) learns a *static* sensor graph through node
// embeddings: each variate gets an embedding vector, the graph keeps each
// node's top-k most similar embedding neighbours, and a graph attention
// layer forecasts the next value from neighbours' recent windows. Anomaly
// scores are robustly normalized forecast errors. The static-graph
// assumption is exactly what the paper contrasts with AERO's window-wise
// graphs.
//
// Simplification: attention coefficients come from embedding dot products
// treated as constants within a step (gradients reach the embeddings via
// the output gating e_v ⊙ h_v, as in the original's final layer).
type GDN struct {
	cfg Config
	// TopK is the number of neighbours kept per node.
	TopK int
	// InWindow is the forecast input length (GDN uses short windows).
	InWindow int

	embedding *ag.Param // N×Hidden node embeddings
	featProj  *nn.Linear
	out       *nn.FFN
	pars      []*ag.Param

	norm   *window.Normalizer
	errMed []float64 // per-variate robust normalizers from train
	errIQR []float64
	n      int
	fitted bool
}

// NewGDN returns an untrained GDN.
func NewGDN(cfg Config) *GDN {
	return &GDN{cfg: cfg.normalized(), TopK: 8, InWindow: 16}
}

// Name implements Detector.
func (d *GDN) Name() string { return "GDN" }

func (d *GDN) build(rng *rand.Rand) {
	h := d.cfg.Hidden
	if d.InWindow > d.cfg.Window-1 {
		d.InWindow = d.cfg.Window - 1
	}
	if d.TopK >= d.n {
		d.TopK = d.n - 1
	}
	if d.TopK < 1 {
		d.TopK = 1
	}
	d.embedding = ag.NewParam("gdn.embed", tensor.Randn(d.n, h, 0.5, rng))
	d.featProj = nn.NewLinear("gdn.feat", d.InWindow, h, rng)
	d.out = nn.NewFFN("gdn.out", h, 2*h, 1, rng)
	d.pars = append([]*ag.Param{d.embedding}, nn.CollectParams(d.featProj, d.out)...)
}

// attention builds the row-stochastic top-k attention matrix from the
// current embeddings (as constants).
func (d *GDN) attention() *tensor.Dense {
	e := d.embedding.Value
	a := tensor.New(d.n, d.n)
	for i := 0; i < d.n; i++ {
		sims := make([]float64, d.n)
		for j := 0; j < d.n; j++ {
			if i == j {
				sims[j] = math.Inf(-1)
				continue
			}
			sims[j] = stats.CosineSimilarity(e.Row(i), e.Row(j))
		}
		top := stats.TopKIndices(sims, d.TopK)
		// softmax over the kept neighbours plus self.
		var sum float64
		keep := map[int]float64{i: 1} // self weight exp(0)=1
		sum += 1
		for _, j := range top {
			w := math.Exp(sims[j])
			keep[j] = w
			sum += w
		}
		for j, w := range keep {
			a.Set(i, j, w/sum)
		}
	}
	return a
}

// forecast predicts the next value for every variate from the window
// ending at end (exclusive of the target at end+1... the caller aligns).
func (d *GDN) forecast(t *ag.Tape, data [][]float64, end int) *ag.Node {
	// X: N×InWindow node features.
	x := tensor.New(d.n, d.InWindow)
	for v := 0; v < d.n; v++ {
		copy(x.Row(v), window.Slice(data[v], end, d.InWindow))
	}
	z := t.ReLU(d.featProj.Forward(t, t.Const(x))) // N×h
	h := t.MatMul(t.Const(d.attention()), z)       // neighbour aggregation
	g := t.Mul(t.Param(d.embedding), h)            // embedding-gated output
	return t.Sigmoid(d.out.Forward(t, g))          // N×1 forecasts
}

// Fit trains the forecaster and calibrates robust error normalizers.
func (d *GDN) Fit(train *dataset.Series) error {
	if err := d.cfg.validate(); err != nil {
		return err
	}
	d.n = train.N()
	if train.Len() < d.cfg.Window {
		return checkSeries(train, d.n, d.cfg.Window, true)
	}
	rng := newRand(d.cfg.Seed)
	d.norm = window.FitNormalizer(train.Data)
	d.build(rng)
	data := d.norm.Transform(train.Data)
	insts := window.Indices(train.Len()-1, d.InWindow, d.cfg.TrainStride)
	opt := nn.NewAdam(d.cfg.LR)
	opt.MaxGradNorm = 5

	for epoch := 0; epoch < d.cfg.Epochs; epoch++ {
		rng.Shuffle(len(insts), func(i, j int) { insts[i], insts[j] = insts[j], insts[i] })
		for _, inst := range insts {
			t := ag.NewTape()
			pred := d.forecast(t, data, inst.End)
			target := tensor.New(d.n, 1)
			for v := 0; v < d.n; v++ {
				target.Data[v] = data[v][inst.End+1]
			}
			loss := t.MSE(pred, t.Const(target))
			t.Backward(loss)
			opt.Step(d.pars)
		}
	}

	// Robust normalizers: median and IQR of train forecast errors.
	errs := d.rawErrors(data)
	d.errMed = make([]float64, d.n)
	d.errIQR = make([]float64, d.n)
	for v := 0; v < d.n; v++ {
		nonzero := errs[v][d.InWindow+1:]
		d.errMed[v] = stats.Median(nonzero)
		iqr := stats.Quantile(nonzero, 0.75) - stats.Quantile(nonzero, 0.25)
		if iqr < 1e-9 {
			iqr = 1e-9
		}
		d.errIQR[v] = iqr
	}
	d.fitted = true
	return nil
}

// rawErrors computes |x_t − x̂_t| for every t with enough history.
func (d *GDN) rawErrors(data [][]float64) [][]float64 {
	T := len(data[0])
	out := make([][]float64, d.n)
	for v := range out {
		out[v] = make([]float64, T)
	}
	ends := window.Indices(T-1, d.InWindow, d.cfg.EvalStride)
	preds := make([]*tensor.Dense, len(ends))
	parallelFor(len(ends), d.cfg.Workers, func(i int) {
		t := ag.NewTape()
		preds[i] = d.forecast(t, data, ends[i].End).Value
	})
	prev := ends[0].End
	for i, inst := range ends {
		// Stamp the forecast error at target position end+1 and hold for
		// skipped positions.
		for tt := prev + 1; tt <= inst.End+1 && tt < T; tt++ {
			for v := 0; v < d.n; v++ {
				out[v][tt] = math.Abs(data[v][tt] - preds[i].Data[v])
			}
		}
		prev = inst.End + 1
	}
	return out
}

// Scores implements Detector: robustly normalized forecast errors.
func (d *GDN) Scores(s *dataset.Series) ([][]float64, error) {
	if err := checkSeries(s, d.n, d.cfg.Window, d.fitted); err != nil {
		return nil, err
	}
	data := d.norm.Transform(s.Data)
	errs := d.rawErrors(data)
	for v := 0; v < d.n; v++ {
		for t := range errs[v] {
			errs[v][t] = (errs[v][t] - d.errMed[v]) / d.errIQR[v]
			if errs[v][t] < 0 {
				errs[v][t] = 0
			}
		}
	}
	return errs, nil
}
