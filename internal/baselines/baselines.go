// Package baselines implements the eleven comparison methods of the
// paper's evaluation (§IV-B): five univariate detectors (Template
// Matching, SR, SPOT, FluxEV, Donut) and six multivariate detectors
// (OmniAnomaly, AnomalyTransformer, TranAD, GDN, ESG, TimesNet).
//
// Every detector implements the same two-phase Detector contract: Fit on
// an unlabelled training series, then Scores on any series of the same
// dimensionality. Thresholding is deliberately left to the caller so that
// the experiment harness can apply the identical POT protocol to every
// method, as the paper does.
//
// The deep baselines are faithful-in-structure, scaled-in-size ports of
// the cited architectures onto this repository's autodiff substrate; each
// file documents its simplifications.
package baselines

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"aero/internal/dataset"
	"aero/internal/window"
)

// Detector is the common contract shared by all baseline methods and used
// by the experiment harness.
type Detector interface {
	// Name returns the method's display name as used in the paper's tables.
	Name() string
	// Fit trains (or calibrates) the detector on an unlabelled series.
	Fit(train *dataset.Series) error
	// Scores returns per-variate, per-timestamp anomaly scores (N×T);
	// higher means more anomalous.
	Scores(s *dataset.Series) ([][]float64, error)
}

// Config carries the hyperparameters shared by the learned baselines. Zero
// value is unusable; start from DefaultConfig or SmallConfig.
type Config struct {
	// Window is the sliding-window length fed to windowed models.
	Window int
	// Hidden is the width of hidden layers / model dims.
	Hidden int
	// Latent is the VAE latent dimensionality (Donut, OmniAnomaly).
	Latent int
	// Epochs bounds training passes.
	Epochs int
	// LR is the Adam learning rate.
	LR float64
	// TrainStride subsamples training windows.
	TrainStride int
	// EvalStride controls scoring granularity: each scored window stamps
	// the timestamps since the previous scored window.
	EvalStride int
	// Workers bounds data-parallel goroutines (0 = GOMAXPROCS).
	Workers int
	// Seed fixes initialization and shuffling.
	Seed int64
}

// DefaultConfig mirrors the paper's setup (input length 200, as for AERO).
func DefaultConfig() Config {
	return Config{
		Window: 200, Hidden: 64, Latent: 8, Epochs: 30, LR: 0.001,
		TrainStride: 10, EvalStride: 10, Seed: 1,
	}
}

// SmallConfig is the CPU-friendly profile used in tests and smoke runs.
func SmallConfig() Config {
	return Config{
		Window: 64, Hidden: 16, Latent: 4, Epochs: 14, LR: 0.002,
		TrainStride: 16, EvalStride: 12, Seed: 1,
	}
}

func (c Config) normalized() Config {
	if c.TrainStride < 1 {
		c.TrainStride = 1
	}
	if c.EvalStride < 1 {
		c.EvalStride = 1
	}
	if c.Epochs < 1 {
		c.Epochs = 1
	}
	return c
}

func (c Config) validate() error {
	if c.Window < 2 {
		return fmt.Errorf("baselines: window %d < 2", c.Window)
	}
	if c.LR <= 0 {
		return fmt.Errorf("baselines: LR %v <= 0", c.LR)
	}
	return nil
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// checkSeries validates a series against the fitted dimensionality.
func checkSeries(s *dataset.Series, n int, w int, fitted bool) error {
	if !fitted {
		return fmt.Errorf("baselines: detector not fitted")
	}
	if s.N() != n {
		return fmt.Errorf("baselines: fitted for %d variates, series has %d", n, s.N())
	}
	if s.Len() < w {
		return fmt.Errorf("baselines: series length %d shorter than window %d", s.Len(), w)
	}
	return nil
}

// assembleWindowScores evaluates score(end) (returning one score per
// variate for the window's final timestamp) at EvalStride spacing and
// stamps each evaluated window's scores onto the timestamps since the
// previous evaluated window. Timestamps before the first full window get
// zero scores. Evaluation runs on a worker pool.
func assembleWindowScores(T, w, stride, n, workers int, score func(end int) []float64) [][]float64 {
	out := make([][]float64, n)
	for v := range out {
		out[v] = make([]float64, T)
	}
	insts := window.Indices(T, w, stride)
	results := make([][]float64, len(insts))
	parallelFor(len(insts), workers, func(i int) {
		results[i] = score(insts[i].End)
	})
	prev := insts[0].End - 1
	for i, inst := range insts {
		for t := prev + 1; t <= inst.End; t++ {
			for v := 0; v < n; v++ {
				out[v][t] = results[i][v]
			}
		}
		prev = inst.End
	}
	return out
}

// parallelFor runs f(i) for i in [0, n) across a bounded worker pool.
func parallelFor(n, workers int, f func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
}

// windowMatrix extracts the W×N window ending at end from normalized data
// (rows are timesteps, columns variates).
func windowMatrix(data [][]float64, end, w int) [][]float64 {
	n := len(data)
	out := make([][]float64, w)
	for i := 0; i < w; i++ {
		row := make([]float64, n)
		for v := 0; v < n; v++ {
			row[v] = data[v][end-w+1+i]
		}
		out[i] = row
	}
	return out
}
