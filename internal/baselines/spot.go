package baselines

import (
	"aero/internal/dataset"
	"aero/internal/stats"
)

// SPOT wraps streaming extreme value theory (Siffer et al., KDD 2017) as a
// baseline detector: the anomaly score of a point is the magnitude of its
// deviation from the variate's training distribution (a two-sided
// z-score), which the harness then thresholds with POT — exactly the
// SPOT pipeline. As in the paper, it yields near-perfect recall (every
// extreme fires) at low precision (concurrent noise is also extreme).
type SPOT struct {
	mean, std []float64
	n         int
	fitted    bool
}

// NewSPOT returns an EVT baseline.
func NewSPOT() *SPOT { return &SPOT{} }

// Name implements Detector.
func (d *SPOT) Name() string { return "SPOT" }

// Fit records per-variate location and scale from the training series.
func (d *SPOT) Fit(train *dataset.Series) error {
	d.n = train.N()
	d.mean = make([]float64, d.n)
	d.std = make([]float64, d.n)
	for v := 0; v < d.n; v++ {
		m, s := stats.MeanStd(train.Data[v])
		if s == 0 {
			s = 1e-9
		}
		d.mean[v], d.std[v] = m, s
	}
	d.fitted = true
	return nil
}

// Scores implements Detector.
func (d *SPOT) Scores(s *dataset.Series) ([][]float64, error) {
	if err := checkSeries(s, d.n, 1, d.fitted); err != nil {
		return nil, err
	}
	out := make([][]float64, d.n)
	for v := 0; v < d.n; v++ {
		scores := make([]float64, s.Len())
		for t, x := range s.Data[v] {
			z := (x - d.mean[v]) / d.std[v]
			if z < 0 {
				z = -z
			}
			scores[t] = z
		}
		out[v] = scores
	}
	return out, nil
}
