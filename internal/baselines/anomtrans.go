package baselines

import (
	"math"
	"math/rand"

	"aero/internal/ag"
	"aero/internal/dataset"
	"aero/internal/nn"
	"aero/internal/tensor"
	"aero/internal/window"
)

// AnomalyTransformer (Xu et al., ICLR 2022) scores anomalies by
// *association discrepancy*: normal points attend broadly across the
// window (series association ≈ a wide distribution) while anomalies attend
// only to their immediate neighbourhood, so the KL divergence between the
// learned series attention and a local Gaussian prior is small exactly at
// anomalies. The final score multiplies reconstruction error by
// softmax(−discrepancy).
//
// Simplifications: a single encoder layer, a fixed (not learned) prior
// width, and the minimax training schedule collapsed to one phase with a
// discrepancy regularizer.
type AnomalyTransformer struct {
	cfg Config
	// PriorSigma is the width (in timesteps) of the Gaussian prior
	// association. Fixed rather than learned per position.
	PriorSigma float64
	// Lambda weights the association-discrepancy term in the loss.
	Lambda float64

	embed *nn.Linear
	attn  *nn.MultiHeadAttention
	ln1   *nn.LayerNorm
	ffn   *nn.FFN
	ln2   *nn.LayerNorm
	head  *nn.Linear
	prior *tensor.Dense // W×W row-stochastic Gaussian prior
	pars  []*ag.Param

	norm   *window.Normalizer
	n      int
	fitted bool
}

// NewAnomalyTransformer returns an untrained detector.
func NewAnomalyTransformer(cfg Config) *AnomalyTransformer {
	return &AnomalyTransformer{cfg: cfg.normalized(), PriorSigma: 5, Lambda: 0.1}
}

// Name implements Detector.
func (d *AnomalyTransformer) Name() string { return "AT" }

func (d *AnomalyTransformer) build(rng *rand.Rand) {
	h := d.cfg.Hidden
	heads := 2
	if h%heads != 0 {
		heads = 1
	}
	d.embed = nn.NewLinear("at.embed", d.n, h, rng)
	d.attn = nn.NewMultiHeadAttention("at.attn", h, heads, rng)
	d.ln1 = nn.NewLayerNorm("at.ln1", h)
	d.ffn = nn.NewFFN("at.ffn", h, 2*h, h, rng)
	d.ln2 = nn.NewLayerNorm("at.ln2", h)
	d.head = nn.NewLinear("at.head", h, d.n, rng)
	d.pars = nn.CollectParams(d.embed, d.attn, d.ln1, d.ffn, d.ln2, d.head)
	d.prior = gaussianPrior(d.cfg.Window, d.PriorSigma)
}

// gaussianPrior builds the row-normalized |i−j| Gaussian association.
func gaussianPrior(w int, sigma float64) *tensor.Dense {
	p := tensor.New(w, w)
	for i := 0; i < w; i++ {
		row := p.Row(i)
		var sum float64
		for j := 0; j < w; j++ {
			v := math.Exp(-0.5 * float64((i-j)*(i-j)) / (sigma * sigma))
			row[j] = v
			sum += v
		}
		for j := range row {
			row[j] /= sum
		}
	}
	return p
}

// forward runs the encoder, returning the reconstruction (W×N) and the
// per-head series attention maps.
func (d *AnomalyTransformer) forward(t *ag.Tape, win *tensor.Dense) (*ag.Node, []*ag.Node) {
	x := d.embed.Forward(t, t.Const(win))
	att, maps := d.attn.AttentionWeights(t, x, x, x)
	m := d.ln1.Forward(t, t.Add(x, att))
	out := d.ln2.Forward(t, t.Add(m, d.ffn.Forward(t, m)))
	return t.Sigmoid(d.head.Forward(t, out)), maps
}

// discrepancy computes the per-position association discrepancy: the
// symmetric KL between the Gaussian prior rows and the series attention
// rows, averaged over heads. Returned as a W-length vector node.
func (d *AnomalyTransformer) discrepancy(t *ag.Tape, maps []*ag.Node) *ag.Node {
	w := d.cfg.Window
	priorN := t.Const(d.prior)
	var acc *ag.Node
	for _, s := range maps {
		sSafe := t.AddConst(s, 1e-9)
		pSafe := t.AddConst(priorN, 1e-9)
		// KL(P‖S) + KL(S‖P) rows.
		klPS := t.RowSums(t.Mul(priorN, t.Sub(t.Log(pSafe), t.Log(sSafe))))
		klSP := t.RowSums(t.Mul(s, t.Sub(t.Log(sSafe), t.Log(pSafe))))
		sum := t.Add(klPS, klSP)
		if acc == nil {
			acc = sum
		} else {
			acc = t.Add(acc, sum)
		}
	}
	return t.Scale(acc, 1/float64(len(maps)*w))
}

// Fit trains the encoder with the discrepancy-regularized objective.
func (d *AnomalyTransformer) Fit(train *dataset.Series) error {
	if err := d.cfg.validate(); err != nil {
		return err
	}
	d.n = train.N()
	if train.Len() < d.cfg.Window {
		return checkSeries(train, d.n, d.cfg.Window, true)
	}
	rng := newRand(d.cfg.Seed)
	d.norm = window.FitNormalizer(train.Data)
	d.build(rng)
	data := d.norm.Transform(train.Data)
	insts := window.Indices(train.Len(), d.cfg.Window, d.cfg.TrainStride)
	opt := nn.NewAdam(d.cfg.LR)
	opt.MaxGradNorm = 5

	for epoch := 0; epoch < d.cfg.Epochs; epoch++ {
		rng.Shuffle(len(insts), func(i, j int) { insts[i], insts[j] = insts[j], insts[i] })
		for _, inst := range insts {
			t := ag.NewTape()
			win := tensor.FromRows(windowMatrix(data, inst.End, d.cfg.Window))
			recon, maps := d.forward(t, win)
			// Maximize discrepancy on normal data (anomalies will then
			// stand out by failing to reach it).
			loss := t.Sub(t.MSE(recon, t.Const(win)), t.Scale(t.MeanAll(d.discrepancy(t, maps)), d.Lambda))
			t.Backward(loss)
			opt.Step(d.pars)
		}
	}
	d.fitted = true
	return nil
}

// Scores implements Detector: reconstruction error reweighted by
// softmax(−discrepancy), evaluated at each window's final position.
func (d *AnomalyTransformer) Scores(s *dataset.Series) ([][]float64, error) {
	if err := checkSeries(s, d.n, d.cfg.Window, d.fitted); err != nil {
		return nil, err
	}
	data := d.norm.Transform(s.Data)
	w := d.cfg.Window
	return assembleWindowScores(s.Len(), w, d.cfg.EvalStride, d.n, d.cfg.Workers, func(end int) []float64 {
		t := ag.NewTape()
		win := tensor.FromRows(windowMatrix(data, end, w))
		recon, maps := d.forward(t, win)
		disc := d.discrepancy(t, maps)
		// softmax(−disc) over window positions.
		weights := make([]float64, w)
		var sum float64
		for i := 0; i < w; i++ {
			weights[i] = math.Exp(-disc.Value.Data[i])
			sum += weights[i]
		}
		factor := weights[w-1] / sum * float64(w) // ≈1 when uniform
		scores := make([]float64, d.n)
		for v := 0; v < d.n; v++ {
			diff := math.Abs(win.At(w-1, v) - recon.Value.At(w-1, v))
			scores[v] = diff * factor
		}
		return scores
	}), nil
}
