package baselines

import (
	"math"
	"testing"

	"aero/internal/core"
	"aero/internal/dataset"
)

func streamTestData() *dataset.Dataset {
	return dataset.SyntheticConfig{
		Name: "stream", N: 3, TrainLen: 400, TestLen: 300,
		NoiseVariates: 2, AnomalySegments: 1, NoisePct: 3,
		VariableFrac: 0.5, Seed: 11,
	}.Generate()
}

// replayStream pushes a series through a backend and returns the score
// matrix aligned to the series (NaN before warm-up).
func replayStream(t *testing.T, b core.StreamBackend, s *dataset.Series) [][]float64 {
	t.Helper()
	out := make([][]float64, s.N())
	for v := range out {
		out[v] = make([]float64, s.Len())
		for i := range out[v] {
			out[v][i] = math.NaN()
		}
	}
	frame := core.Frame{Magnitudes: make([]float64, s.N())}
	for ti := 0; ti < s.Len(); ti++ {
		frame.Time = s.Time[ti]
		for v := 0; v < s.N(); v++ {
			frame.Magnitudes[v] = s.Data[v][ti]
		}
		scores, err := b.PushScores(frame)
		if err != nil {
			t.Fatal(err)
		}
		for v, sc := range scores {
			out[v][ti] = sc
		}
	}
	return out
}

// TestStreamTMMatchesBatch pins the adapter's contract: at every full
// window the streaming score is bit-identical to the batch detector's —
// same window, same z-score, same correlations.
func TestStreamTMMatchesBatch(t *testing.T) {
	d := streamTestData()
	batch := NewTemplateMatching()
	if err := batch.Fit(d.Train); err != nil {
		t.Fatal(err)
	}
	want, err := batch.Scores(d.Test)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultStreamConfig()
	sm, err := NewStreamTM(d.Test.N(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := replayStream(t, sm, d.Test)
	L := cfg.TMTemplateLen
	for v := range got {
		for ti := L - 1; ti < d.Test.Len(); ti++ {
			if got[v][ti] != want[v][ti] {
				t.Fatalf("variate %d t=%d: stream %v != batch %v", v, ti, got[v][ti], want[v][ti])
			}
		}
		for ti := 0; ti < L-1; ti++ {
			if !math.IsNaN(got[v][ti]) {
				t.Fatalf("variate %d t=%d: score before warm-up", v, ti)
			}
		}
	}
}

// TestStreamFluxEVMatchesBatch pins bit-identity of the streaming
// fluctuation extraction against the batch path from the second frame on
// (the first frame has no forecast to deviate from).
func TestStreamFluxEVMatchesBatch(t *testing.T) {
	d := streamTestData()
	batch := NewFluxEV()
	if err := batch.Fit(d.Train); err != nil {
		t.Fatal(err)
	}
	want, err := batch.Scores(d.Test)
	if err != nil {
		t.Fatal(err)
	}

	sm, err := NewStreamFluxEV(d.Test.N(), DefaultStreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := replayStream(t, sm, d.Test)
	for v := range got {
		if !math.IsNaN(got[v][0]) {
			t.Fatal("score at t=0")
		}
		for ti := 1; ti < d.Test.Len(); ti++ {
			if got[v][ti] != want[v][ti] {
				t.Fatalf("variate %d t=%d: stream %v != batch %v", v, ti, got[v][ti], want[v][ti])
			}
		}
	}
}

// TestStreamSRScoresSpike sanity-checks the windowed spectral residual:
// warm-up yields no scores, and an injected single-point spike scores
// far above the quiet-stream level.
func TestStreamSRScoresSpike(t *testing.T) {
	cfg := DefaultStreamConfig()
	sr, err := NewStreamSR(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	frame := core.Frame{Magnitudes: make([]float64, 1)}
	quiet := 0.0
	var spike float64
	warmed := false
	const T = 400
	spikeAt := 300
	for ti := 0; ti < T; ti++ {
		frame.Time = float64(ti)
		frame.Magnitudes[0] = math.Sin(float64(ti) / 9)
		if ti == spikeAt {
			frame.Magnitudes[0] += 4
		}
		scores, err := sr.PushScores(frame)
		if err != nil {
			t.Fatal(err)
		}
		if scores == nil {
			if warmed {
				t.Fatalf("scores stopped flowing at t=%d", ti)
			}
			if ti >= cfg.SRWindow {
				t.Fatalf("still warming at t=%d, window %d", ti, cfg.SRWindow)
			}
			continue
		}
		warmed = true
		switch {
		case ti == spikeAt:
			spike = scores[0]
		case ti >= spikeAt-150 && ti < spikeAt:
			// Quiet level once the stream has settled (the first windows
			// after warm-up still carry edge effects).
			if scores[0] > quiet {
				quiet = scores[0]
			}
		}
	}
	if !warmed {
		t.Fatal("adapter never warmed")
	}
	if spike < 2*quiet || spike <= 0 {
		t.Fatalf("spike score %v not prominent over quiet max %v", spike, quiet)
	}
}

// TestCalibrateStream checks the POT calibration flow: the fitted
// threshold is finite and the training feed itself stays mostly below it.
func TestCalibrateStream(t *testing.T) {
	d := streamTestData()
	for _, mk := range []func() (CalibratableStream, error){
		func() (CalibratableStream, error) { return NewStreamSR(d.Train.N(), DefaultStreamConfig()) },
		func() (CalibratableStream, error) { return NewStreamTM(d.Train.N(), DefaultStreamConfig()) },
		func() (CalibratableStream, error) { return NewStreamFluxEV(d.Train.N(), DefaultStreamConfig()) },
	} {
		b, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if err := CalibrateStream(b, d.Train, 0.99, 1e-3); err != nil {
			t.Fatalf("%s: %v", b.Kind(), err)
		}
		thr := b.Threshold()
		if math.IsNaN(thr) || math.IsInf(thr, 0) || thr <= 0 {
			t.Fatalf("%s: unusable threshold %v", b.Kind(), thr)
		}
		// Round-trip through the artifact: same geometry, same threshold.
		art, err := b.MarshalArtifact()
		if err != nil {
			t.Fatal(err)
		}
		var reopened core.StreamBackend
		switch b.Kind() {
		case KindSR:
			reopened, err = OpenStreamSR(art)
		case KindTM:
			reopened, err = OpenStreamTM(art)
		case KindFluxEV:
			reopened, err = OpenStreamFluxEV(art)
		}
		if err != nil {
			t.Fatalf("%s: reopen: %v", b.Kind(), err)
		}
		if reopened.Threshold() != thr || reopened.Variates() != b.Variates() {
			t.Fatalf("%s: artifact round-trip changed calibration", b.Kind())
		}
	}
}

// streamAdapters builds one warm instance of each adapter for the shared
// contract tests.
func streamAdapters(t *testing.T, n int) []core.StreamBackend {
	t.Helper()
	cfg := DefaultStreamConfig()
	sr, err := NewStreamSR(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := NewStreamTM(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := NewStreamFluxEV(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return []core.StreamBackend{sr, tm, fx}
}

// TestStreamAdapterPushAllocs pins the engine's steady-state budget on
// every adapter: a warm Push of a benign frame performs zero allocations
// — the exact budget BenchmarkStreamPush holds for the AERO path.
func TestStreamAdapterPushAllocs(t *testing.T) {
	d := streamTestData()
	for _, b := range streamAdapters(t, d.Test.N()) {
		b := b
		t.Run(b.Kind(), func(t *testing.T) {
			if cs, ok := b.(CalibratableStream); ok {
				cs.SetThreshold(math.Inf(1)) // alarms never fire: pure scoring path
			}
			frame := core.Frame{Magnitudes: make([]float64, d.Test.N())}
			next := 0
			push := func() {
				idx := next % d.Test.Len()
				frame.Time = float64(next)
				for v := range frame.Magnitudes {
					frame.Magnitudes[v] = d.Test.Data[v][idx]
				}
				if _, err := b.Push(frame); err != nil {
					t.Fatal(err)
				}
				next++
			}
			for i := 0; i < 2*128; i++ { // warm past every adapter window
				push()
			}
			if allocs := testing.AllocsPerRun(64, push); allocs != 0 {
				t.Fatalf("steady-state %s Push allocates %.1f objects/frame, want 0", b.Kind(), allocs)
			}
		})
	}
}

// TestStreamAdapterSnapshotRestore pins warm-restart bit-identity for
// every adapter: feed half the series, snapshot, restore into a fresh
// instance, and the continued score stream must equal the uninterrupted
// one exactly.
func TestStreamAdapterSnapshotRestore(t *testing.T) {
	d := streamTestData()
	cut := d.Test.Len() / 2
	for i, uninterrupted := range streamAdapters(t, d.Test.N()) {
		b := streamAdapters(t, d.Test.N())[i]
		fresh := streamAdapters(t, d.Test.N())[i]
		t.Run(b.Kind(), func(t *testing.T) {
			want := replayStream(t, uninterrupted, d.Test)

			frame := core.Frame{Magnitudes: make([]float64, d.Test.N())}
			for ti := 0; ti < cut; ti++ {
				frame.Time = d.Test.Time[ti]
				for v := 0; v < d.Test.N(); v++ {
					frame.Magnitudes[v] = d.Test.Data[v][ti]
				}
				if _, err := b.PushScores(frame); err != nil {
					t.Fatal(err)
				}
			}
			blob, err := b.SnapshotState()
			if err != nil {
				t.Fatal(err)
			}
			// A corrupt blob must not touch the detector.
			if err := fresh.RestoreState(blob[:len(blob)/2]); err == nil {
				t.Fatal("truncated state accepted")
			}
			if err := fresh.RestoreState(blob); err != nil {
				t.Fatal(err)
			}
			if lt, ok := fresh.LastTime(); !ok || lt != d.Test.Time[cut-1] {
				t.Fatalf("restored cursor %v, want %v", lt, d.Test.Time[cut-1])
			}
			for ti := cut; ti < d.Test.Len(); ti++ {
				frame.Time = d.Test.Time[ti]
				for v := 0; v < d.Test.N(); v++ {
					frame.Magnitudes[v] = d.Test.Data[v][ti]
				}
				scores, err := fresh.PushScores(frame)
				if err != nil {
					t.Fatal(err)
				}
				for v, sc := range scores {
					if sc != want[v][ti] {
						t.Fatalf("variate %d t=%d: restored %v != uninterrupted %v", v, ti, sc, want[v][ti])
					}
				}
			}
		})
	}
}

// TestStreamAdapterSwapArtifact checks the hot-swap contract: a
// same-geometry artifact lands (new threshold visible), a mismatched one
// is rejected without touching the adapter.
func TestStreamAdapterSwapArtifact(t *testing.T) {
	d := streamTestData()
	for i, b := range streamAdapters(t, d.Test.N()) {
		t.Run(b.Kind(), func(t *testing.T) {
			cs := b.(CalibratableStream)
			cs.SetThreshold(1.25)
			art, err := cs.MarshalArtifact()
			if err != nil {
				t.Fatal(err)
			}
			cs.SetThreshold(99)
			if err := b.SwapArtifact(art); err != nil {
				t.Fatal(err)
			}
			if b.Threshold() != 1.25 {
				t.Fatalf("swap did not install threshold: %v", b.Threshold())
			}
			// Wrong-kind artifact: rejected.
			other := streamAdapters(t, d.Test.N())[(i+1)%3]
			wrongKind, err := other.(CalibratableStream).MarshalArtifact()
			if err != nil {
				t.Fatal(err)
			}
			if err := b.SwapArtifact(wrongKind); err == nil {
				t.Fatal("wrong-kind artifact accepted")
			}
			// Wrong-geometry artifact: rejected.
			narrow := streamAdapters(t, d.Test.N()+1)[i]
			wrongGeom, err := narrow.(CalibratableStream).MarshalArtifact()
			if err != nil {
				t.Fatal(err)
			}
			if err := b.SwapArtifact(wrongGeom); err == nil {
				t.Fatal("wrong-geometry artifact accepted")
			}
			if b.Threshold() != 1.25 {
				t.Fatal("failed swap mutated the adapter")
			}
		})
	}
}

// TestStreamAdapterRejectsBadFrames covers the shared ingest validation.
func TestStreamAdapterRejectsBadFrames(t *testing.T) {
	for _, b := range streamAdapters(t, 2) {
		if _, err := b.PushScores(core.Frame{Time: 1, Magnitudes: make([]float64, 3)}); err == nil {
			t.Fatalf("%s accepted a wrong-width frame", b.Kind())
		}
		if _, err := b.PushScores(core.Frame{Time: 1, Magnitudes: make([]float64, 2)}); err != nil {
			t.Fatal(err)
		}
		if _, err := b.PushScores(core.Frame{Time: 1, Magnitudes: make([]float64, 2)}); err == nil {
			t.Fatalf("%s accepted a non-increasing time", b.Kind())
		}
	}
}
