package baselines

import (
	"math/rand"

	"aero/internal/ag"
	"aero/internal/dataset"
	"aero/internal/nn"
	"aero/internal/tensor"
	"aero/internal/window"
)

// OmniAnomaly (Su et al., KDD 2019) models multivariate windows with a
// stochastic recurrent network: a GRU consumes the window, its final state
// parameterizes a Gaussian latent, and a decoder reconstructs the current
// observation. Points with low reconstruction likelihood are anomalous.
//
// Simplifications: the planar normalizing flow and linear-Gaussian state
// space smoothing of the original are omitted (plain GRU-VAE, the
// architecture's core), and the likelihood is replaced by per-variate
// reconstruction error.
type OmniAnomaly struct {
	cfg Config

	gru          *nn.GRUCell
	encMu, encLV *nn.Linear
	decH, decOut *nn.Linear
	params       []*ag.Param

	norm   *window.Normalizer
	n      int
	fitted bool
}

// NewOmniAnomaly returns an untrained OmniAnomaly with the configuration.
func NewOmniAnomaly(cfg Config) *OmniAnomaly { return &OmniAnomaly{cfg: cfg.normalized()} }

// Name implements Detector.
func (d *OmniAnomaly) Name() string { return "OA" }

func (d *OmniAnomaly) build(rng *rand.Rand) {
	h, k := d.cfg.Hidden, d.cfg.Latent
	d.gru = nn.NewGRUCell("oa.gru", d.n, h, rng)
	d.encMu = nn.NewLinear("oa.mu", h, k, rng)
	d.encLV = nn.NewLinear("oa.lv", h, k, rng)
	d.decH = nn.NewLinear("oa.decH", k+h, h, rng)
	d.decOut = nn.NewLinear("oa.out", h, d.n, rng)
	d.params = nn.CollectParams(d.gru, d.encMu, d.encLV, d.decH, d.decOut)
}

// run consumes the window rows through the GRU and returns the final state.
func (d *OmniAnomaly) run(t *ag.Tape, win [][]float64) *ag.Node {
	h := d.gru.InitState(t, 1)
	for _, row := range win {
		x := t.Const(tensor.FromSlice(1, d.n, append([]float64(nil), row...)))
		h = d.gru.Step(t, x, h)
	}
	return h
}

// reconstruct decodes the final observation from the latent and the GRU
// state (the recurrent skip connection of the original).
func (d *OmniAnomaly) reconstruct(t *ag.Tape, h, z *ag.Node) *ag.Node {
	joint := t.ConcatCols(z, h)
	return t.Sigmoid(d.decOut.Forward(t, t.ReLU(d.decH.Forward(t, joint))))
}

// Fit trains on multivariate windows.
func (d *OmniAnomaly) Fit(train *dataset.Series) error {
	if err := d.cfg.validate(); err != nil {
		return err
	}
	d.n = train.N()
	if train.Len() < d.cfg.Window {
		return checkSeries(train, d.n, d.cfg.Window, true)
	}
	rng := newRand(d.cfg.Seed)
	d.norm = window.FitNormalizer(train.Data)
	d.build(rng)
	data := d.norm.Transform(train.Data)
	insts := window.Indices(train.Len(), d.cfg.Window, d.cfg.TrainStride)
	opt := nn.NewAdam(d.cfg.LR)
	opt.MaxGradNorm = 5

	for epoch := 0; epoch < d.cfg.Epochs; epoch++ {
		rng.Shuffle(len(insts), func(i, j int) { insts[i], insts[j] = insts[j], insts[i] })
		for _, inst := range insts {
			t := ag.NewTape()
			win := windowMatrix(data, inst.End, d.cfg.Window)
			h := d.run(t, win)
			mu := d.encMu.Forward(t, h)
			logvar := d.encLV.Forward(t, h)
			eps := tensor.Randn(1, d.cfg.Latent, 1, rng)
			z := t.Add(mu, t.Mul(t.Const(eps), t.Exp(t.Scale(logvar, 0.5))))
			recon := d.reconstruct(t, h, z)
			target := t.Const(tensor.FromSlice(1, d.n, append([]float64(nil), win[len(win)-1]...)))
			kl := t.Scale(t.MeanAll(t.Sub(t.Sub(t.Exp(logvar), t.AddConst(logvar, 1)), t.Neg(t.Square(mu)))), 0.5)
			loss := t.Add(t.MSE(recon, target), t.Scale(kl, 0.01))
			t.Backward(loss)
			opt.Step(d.params)
		}
	}
	d.fitted = true
	return nil
}

// Scores implements Detector: per-variate absolute reconstruction error of
// the window's final observation (deterministic z = μ).
func (d *OmniAnomaly) Scores(s *dataset.Series) ([][]float64, error) {
	if err := checkSeries(s, d.n, d.cfg.Window, d.fitted); err != nil {
		return nil, err
	}
	data := d.norm.Transform(s.Data)
	return assembleWindowScores(s.Len(), d.cfg.Window, d.cfg.EvalStride, d.n, d.cfg.Workers, func(end int) []float64 {
		t := ag.NewTape()
		win := windowMatrix(data, end, d.cfg.Window)
		h := d.run(t, win)
		mu := d.encMu.Forward(t, h)
		recon := d.reconstruct(t, h, mu)
		scores := make([]float64, d.n)
		last := win[len(win)-1]
		for v := 0; v < d.n; v++ {
			diff := last[v] - recon.Value.Data[v]
			if diff < 0 {
				diff = -diff
			}
			scores[v] = diff
		}
		return scores
	}), nil
}
