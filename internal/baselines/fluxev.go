package baselines

import (
	"math"

	"aero/internal/dataset"
	"aero/internal/stats"
)

// FluxEV (Li et al., WSDM 2021) extends SPOT from extreme *values* to
// abnormal *patterns* with a two-step fluctuation extraction:
//
//  1. the prediction residual against an EWMA forecast isolates local
//     fluctuations from the trend; and
//  2. subtracting the recent maximum fluctuation suppresses recurring
//     (e.g. periodic) variation so only novel fluctuations remain.
//
// The remaining positive fluctuations are the anomaly scores the harness
// thresholds with the method-of-moments POT that FluxEV introduced.
type FluxEV struct {
	// Alpha is the EWMA smoothing factor of the step-1 forecast.
	Alpha float64
	// SuppressWindow is the trailing window of step 2 (s in the paper).
	SuppressWindow int

	n      int
	fitted bool
}

// NewFluxEV returns a FluxEV detector with reference settings.
func NewFluxEV() *FluxEV { return &FluxEV{Alpha: 0.25, SuppressWindow: 20} }

// Name implements Detector.
func (d *FluxEV) Name() string { return "FluxEV" }

// Fit records dimensionality; the extraction is parameter-free beyond its
// two hyperparameters.
func (d *FluxEV) Fit(train *dataset.Series) error {
	d.n = train.N()
	d.fitted = true
	return nil
}

// extract runs the two-step fluctuation extraction on one series.
func (d *FluxEV) extract(x []float64) []float64 {
	T := len(x)
	out := make([]float64, T)
	if T < 2 {
		return out
	}
	// Step 1: residual against the EWMA of *previous* points.
	ew := stats.EWMA(x, d.Alpha)
	res := make([]float64, T)
	for t := 1; t < T; t++ {
		res[t] = math.Abs(x[t] - ew[t-1])
	}
	// Step 2: subtract the recent maximum residual; only excess beyond
	// recently-seen fluctuation survives.
	w := d.SuppressWindow
	if w < 1 {
		w = 1
	}
	for t := 1; t < T; t++ {
		lo := t - w
		if lo < 0 {
			lo = 0
		}
		recent := 0.0
		for j := lo; j < t; j++ {
			if res[j] > recent {
				recent = res[j]
			}
		}
		if excess := res[t] - recent; excess > 0 {
			out[t] = excess
		}
	}
	return out
}

// Scores implements Detector.
func (d *FluxEV) Scores(s *dataset.Series) ([][]float64, error) {
	if err := checkSeries(s, d.n, 2, d.fitted); err != nil {
		return nil, err
	}
	out := make([][]float64, d.n)
	parallelFor(d.n, 0, func(v int) {
		out[v] = d.extract(s.Data[v])
	})
	return out, nil
}
