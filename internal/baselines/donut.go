package baselines

import (
	"math/rand"

	"aero/internal/ag"
	"aero/internal/dataset"
	"aero/internal/nn"
	"aero/internal/tensor"
	"aero/internal/window"
)

// Donut (Xu et al., WWW 2018) is a variational auto-encoder over sliding
// windows of a univariate series; anomalies are points the decoder cannot
// reconstruct from the learned latent manifold of normal windows.
//
// Faithful structure, two scale concessions: one VAE is shared across all
// variates (Donut trains one per KPI; sharing is the standard adaptation
// when hundreds of stars share morphology), and the Monte-Carlo
// reconstruction probability is replaced by the deterministic (z = μ)
// reconstruction error, its standard surrogate.
type Donut struct {
	cfg Config

	encH, encMu, encLV *nn.Linear
	decH, decOut       *nn.Linear
	params             []*ag.Param

	norm   *window.Normalizer
	n      int
	fitted bool
}

// NewDonut returns an untrained Donut with the given configuration.
func NewDonut(cfg Config) *Donut { return &Donut{cfg: cfg.normalized()} }

// Name implements Detector.
func (d *Donut) Name() string { return "Donut" }

func (d *Donut) build(rng *rand.Rand) {
	w, h, k := d.cfg.Window, d.cfg.Hidden, d.cfg.Latent
	d.encH = nn.NewLinear("donut.encH", w, h, rng)
	d.encMu = nn.NewLinear("donut.mu", h, k, rng)
	d.encLV = nn.NewLinear("donut.lv", h, k, rng)
	d.decH = nn.NewLinear("donut.decH", k, h, rng)
	d.decOut = nn.NewLinear("donut.out", h, w, rng)
	d.params = nn.CollectParams(d.encH, d.encMu, d.encLV, d.decH, d.decOut)
}

// encode returns μ and logσ² for a 1×W window node.
func (d *Donut) encode(t *ag.Tape, x *ag.Node) (mu, logvar *ag.Node) {
	h := t.ReLU(d.encH.Forward(t, x))
	return d.encMu.Forward(t, h), d.encLV.Forward(t, h)
}

// decode reconstructs a 1×W window from a latent code.
func (d *Donut) decode(t *ag.Tape, z *ag.Node) *ag.Node {
	return t.Sigmoid(d.decOut.Forward(t, t.ReLU(d.decH.Forward(t, z))))
}

// elbo builds the negative ELBO (reconstruction MSE + KL) for one window.
func (d *Donut) elbo(t *ag.Tape, win *tensor.Dense, rng *rand.Rand) *ag.Node {
	x := t.Const(win)
	mu, logvar := d.encode(t, x)
	// Reparameterization: z = μ + ε·exp(logσ²/2).
	eps := tensor.Randn(1, d.cfg.Latent, 1, rng)
	z := t.Add(mu, t.Mul(t.Const(eps), t.Exp(t.Scale(logvar, 0.5))))
	recon := t.MSE(d.decode(t, z), x)
	// KL(q‖N(0,I)) = −½ Σ (1 + logσ² − μ² − σ²).
	kl := t.Scale(t.MeanAll(t.Sub(t.Sub(t.Exp(logvar), t.AddConst(logvar, 1)), t.Neg(t.Square(mu)))), 0.5)
	return t.Add(recon, t.Scale(kl, 0.01))
}

// Fit trains the shared VAE on all variates' windows.
func (d *Donut) Fit(train *dataset.Series) error {
	if err := d.cfg.validate(); err != nil {
		return err
	}
	if train.Len() < d.cfg.Window {
		return checkSeries(train, train.N(), d.cfg.Window, true)
	}
	rng := newRand(d.cfg.Seed)
	d.n = train.N()
	d.norm = window.FitNormalizer(train.Data)
	d.build(rng)
	data := d.norm.Transform(train.Data)
	insts := window.Indices(train.Len(), d.cfg.Window, d.cfg.TrainStride)
	opt := nn.NewAdam(d.cfg.LR)
	opt.MaxGradNorm = 5

	for epoch := 0; epoch < d.cfg.Epochs; epoch++ {
		rng.Shuffle(len(insts), func(i, j int) { insts[i], insts[j] = insts[j], insts[i] })
		for _, inst := range insts {
			losses := make([]float64, d.n)
			parallelFor(d.n, d.cfg.Workers, func(v int) {
				seedRng := rand.New(rand.NewSource(d.cfg.Seed ^ int64(epoch*1000+inst.End*10+v)))
				t := ag.NewTape()
				win := tensor.FromSlice(1, d.cfg.Window, window.Slice(data[v], inst.End, d.cfg.Window))
				loss := d.elbo(t, win, seedRng)
				t.Backward(loss)
				losses[v] = loss.Value.Data[0]
			})
			opt.Step(d.params)
		}
	}
	d.fitted = true
	return nil
}

// Scores implements Detector: the deterministic reconstruction error at the
// window's last point.
func (d *Donut) Scores(s *dataset.Series) ([][]float64, error) {
	if err := checkSeries(s, d.n, d.cfg.Window, d.fitted); err != nil {
		return nil, err
	}
	data := d.norm.Transform(s.Data)
	w := d.cfg.Window
	return assembleWindowScores(s.Len(), w, d.cfg.EvalStride, d.n, d.cfg.Workers, func(end int) []float64 {
		scores := make([]float64, d.n)
		for v := 0; v < d.n; v++ {
			t := ag.NewTape()
			win := tensor.FromSlice(1, w, window.Slice(data[v], end, w))
			mu, _ := d.encode(t, t.Const(win))
			recon := d.decode(t, mu)
			diff := win.Data[w-1] - recon.Value.Data[w-1]
			if diff < 0 {
				diff = -diff
			}
			scores[v] = diff
		}
		return scores
	}), nil
}
