package baselines

import (
	"math"
	"sync"
	"testing"

	"aero/internal/dataset"
	"aero/internal/stats"
	"aero/internal/tensor"
)

// tensorFromRows builds a dense matrix from rows (test helper).
func tensorFromRows(rows [][]float64) *tensor.Dense { return tensor.FromRows(rows) }

var tinyOnce sync.Once
var tinyD *dataset.Dataset

func tiny() *dataset.Dataset {
	tinyOnce.Do(func() {
		cfg := dataset.SyntheticConfig{
			Name: "tiny", N: 5, TrainLen: 360, TestLen: 360,
			NoiseVariates: 3, AnomalySegments: 2, NoisePct: 2.5,
			VariableFrac: 0.4, Seed: 9,
		}
		tinyD = cfg.Generate()
	})
	return tinyD
}

func tinyConfig() Config {
	c := SmallConfig()
	c.Window = 48
	c.Epochs = 4
	c.TrainStride = 20
	c.EvalStride = 8
	return c
}

// allDetectors instantiates every baseline with the tiny config.
func allDetectors() []Detector {
	cfg := tinyConfig()
	return []Detector{
		NewTemplateMatching(),
		NewSR(),
		NewSPOT(),
		NewFluxEV(),
		NewDonut(cfg),
		NewOmniAnomaly(cfg),
		NewAnomalyTransformer(cfg),
		NewTranAD(cfg),
		NewGDN(cfg),
		NewESG(cfg),
		NewTimesNet(cfg),
	}
}

func TestDetectorNamesMatchPaper(t *testing.T) {
	want := map[string]bool{
		"TM": true, "SR": true, "SPOT": true, "FluxEV": true, "Donut": true,
		"OA": true, "AT": true, "TranAD": true, "GDN": true, "ESG": true,
		"TimesNet": true,
	}
	for _, d := range allDetectors() {
		if !want[d.Name()] {
			t.Fatalf("unexpected detector name %q", d.Name())
		}
		delete(want, d.Name())
	}
	if len(want) != 0 {
		t.Fatalf("missing detectors: %v", want)
	}
}

func TestAllDetectorsFitAndScore(t *testing.T) {
	d := tiny()
	for _, det := range allDetectors() {
		det := det
		t.Run(det.Name(), func(t *testing.T) {
			t.Parallel()
			if err := det.Fit(d.Train); err != nil {
				t.Fatalf("Fit: %v", err)
			}
			scores, err := det.Scores(d.Test)
			if err != nil {
				t.Fatalf("Scores: %v", err)
			}
			if len(scores) != d.Test.N() {
				t.Fatalf("got %d variate scores, want %d", len(scores), d.Test.N())
			}
			for v := range scores {
				if len(scores[v]) != d.Test.Len() {
					t.Fatalf("variate %d: got %d scores, want %d", v, len(scores[v]), d.Test.Len())
				}
				for i, s := range scores[v] {
					if math.IsNaN(s) || math.IsInf(s, 0) {
						t.Fatalf("variate %d t=%d: invalid score %v", v, i, s)
					}
				}
			}
			// Scores must not be all identical (degenerate detector).
			flat := scores[0]
			_, std := stats.MeanStd(flat[len(flat)/2:])
			if std == 0 {
				t.Fatal("scores are constant")
			}
		})
	}
}

func TestScoresBeforeFit(t *testing.T) {
	d := tiny()
	for _, det := range allDetectors() {
		if _, err := det.Scores(d.Test); err == nil {
			t.Fatalf("%s: expected not-fitted error", det.Name())
		}
	}
}

func TestSPOTSeparatesExtremes(t *testing.T) {
	d := tiny()
	det := NewSPOT()
	if err := det.Fit(d.Train); err != nil {
		t.Fatal(err)
	}
	scores, err := det.Scores(d.Test)
	if err != nil {
		t.Fatal(err)
	}
	var anom, norm []float64
	for v := range scores {
		for i, s := range scores[v] {
			if d.Test.Labels[v][i] {
				anom = append(anom, s)
			} else if !d.Test.NoiseMask[v][i] {
				norm = append(norm, s)
			}
		}
	}
	if stats.Mean(anom) <= stats.Mean(norm) {
		t.Fatalf("SPOT should elevate extreme anomalies: anom %.3f norm %.3f",
			stats.Mean(anom), stats.Mean(norm))
	}
}

func TestSPOTFlagsConcurrentNoiseToo(t *testing.T) {
	// The paper's key claim: univariate extreme-value methods cannot tell
	// concurrent noise from true anomalies — noise points score high too.
	d := tiny()
	det := NewSPOT()
	if err := det.Fit(d.Train); err != nil {
		t.Fatal(err)
	}
	scores, err := det.Scores(d.Test)
	if err != nil {
		t.Fatal(err)
	}
	var noise, norm []float64
	for v := range scores {
		for i, s := range scores[v] {
			if d.Test.Labels[v][i] {
				continue
			}
			if d.Test.NoiseMask[v][i] {
				noise = append(noise, s)
			} else {
				norm = append(norm, s)
			}
		}
	}
	if stats.Mean(noise) <= stats.Mean(norm) {
		t.Fatalf("concurrent noise should look extreme to SPOT: noise %.3f norm %.3f",
			stats.Mean(noise), stats.Mean(norm))
	}
}

func TestSRSaliencyPeaksAtSpike(t *testing.T) {
	det := NewSR()
	x := make([]float64, 256)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 32)
	}
	x[180] += 4 // spike
	sal := det.Saliency(x)
	if stats.Argmax(sal) != 180 {
		t.Fatalf("saliency peak at %d, want 180", stats.Argmax(sal))
	}
}

func TestFluxEVSuppressesPeriodicFluctuation(t *testing.T) {
	det := NewFluxEV()
	// Periodic series: recurring fluctuations should be suppressed after
	// the first cycle; a novel spike should stand out.
	x := make([]float64, 300)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 25)
	}
	x[250] += 3
	f := det.extract(x)
	spikeScore := f[250]
	periodMax := stats.Max(f[100:240])
	if spikeScore <= periodMax {
		t.Fatalf("novel spike (%.3f) should exceed periodic residue (%.3f)", spikeScore, periodMax)
	}
}

func TestTemplateMatchingFiresOnFlare(t *testing.T) {
	d := tiny()
	det := NewTemplateMatching()
	if err := det.Fit(d.Train); err != nil {
		t.Fatal(err)
	}
	// Build a clean series with one flare and check TM peaks near it.
	s := dataset.NewSeries(1, 300)
	dataset.InjectAnomaly(s, dataset.AnomalyEvent{
		Kind: dataset.AnomalyFlare, Variate: 0, Start: 150, Length: 40, Amp: 3, HalfLife: 5,
	})
	one := &dataset.Series{Data: s.Data[:1], Time: s.Time, Labels: s.Labels[:1], NoiseMask: s.NoiseMask[:1]}
	det2 := NewTemplateMatching()
	if err := det2.Fit(one); err != nil {
		t.Fatal(err)
	}
	scores, err := det2.Scores(one)
	if err != nil {
		t.Fatal(err)
	}
	peak := stats.Argmax(scores[0])
	if peak < 150 || peak > 200 {
		t.Fatalf("TM peak at %d, want within the flare [150, 190]", peak)
	}
}

func TestGDNAttentionRowStochastic(t *testing.T) {
	d := tiny()
	det := NewGDN(tinyConfig())
	if err := det.Fit(d.Train); err != nil {
		t.Fatal(err)
	}
	a := det.attention()
	for i := 0; i < a.Rows; i++ {
		var sum float64
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) < 0 {
				t.Fatal("negative attention")
			}
			sum += a.At(i, j)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestTimesNetPeriodDetection(t *testing.T) {
	det := NewTimesNet(tinyConfig())
	det.n = 1
	w := 64
	win := make([][]float64, w)
	for i := range win {
		win[i] = []float64{math.Sin(2 * math.Pi * float64(i) / 16)}
	}
	periods, weights := det.dominantPeriods(tensorFromRows(win))
	if len(periods) == 0 {
		t.Fatal("no periods found")
	}
	if periods[0] != 16 {
		t.Fatalf("dominant period %d, want 16", periods[0])
	}
	var sum float64
	for _, x := range weights {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestPhaseAveragerRowStochastic(t *testing.T) {
	m := phaseAverager(10, 3)
	for i := 0; i < m.Rows; i++ {
		var sum float64
		for j := 0; j < m.Cols; j++ {
			sum += m.At(i, j)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
		// Only same-phase positions contribute.
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) > 0 && j%3 != i%3 {
				t.Fatal("cross-phase averaging")
			}
		}
	}
}

func TestGaussianPriorRowStochastic(t *testing.T) {
	p := gaussianPrior(20, 4)
	for i := 0; i < p.Rows; i++ {
		var sum float64
		best := 0
		for j := 0; j < p.Cols; j++ {
			sum += p.At(i, j)
			if p.At(i, j) > p.At(i, best) {
				best = j
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
		if best != i {
			t.Fatalf("prior row %d peaks at %d", i, best)
		}
	}
}

func TestAssembleWindowScoresCoversTail(t *testing.T) {
	out := assembleWindowScores(50, 10, 7, 2, 1, func(end int) []float64 {
		return []float64{float64(end), float64(end)}
	})
	if out[0][49] == 0 {
		t.Fatal("final timestamp unscored")
	}
	for _, s := range out[0][:9] {
		if s != 0 {
			t.Fatal("pre-window timestamps should stay zero")
		}
	}
	// Monotone stamps: each timestamp carries the nearest later window end.
	if out[0][10] < 10 {
		t.Fatalf("stamp %v", out[0][10])
	}
}

func TestConfigValidation(t *testing.T) {
	c := SmallConfig()
	c.Window = 1
	if c.validate() == nil {
		t.Fatal("window 1 should fail")
	}
	c = SmallConfig()
	c.LR = 0
	if c.validate() == nil {
		t.Fatal("lr 0 should fail")
	}
}
