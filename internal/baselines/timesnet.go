package baselines

import (
	"math"
	"math/rand"

	"aero/internal/ag"
	"aero/internal/dataset"
	"aero/internal/fourier"
	"aero/internal/nn"
	"aero/internal/stats"
	"aero/internal/tensor"
	"aero/internal/window"
)

// TimesNet (Wu et al., ICLR 2023) models time series by discovering the
// dominant periods with an FFT, folding the 1D series into a 2D
// (period × cycle) tensor per period, capturing intra-period and
// inter-period variation with 2D convolutions, and aggregating the period
// branches weighted by their spectral amplitudes.
//
// Simplification: the inception-style 2D convolution stack is replaced by
// a "same-phase mixing" layer — for each period p, every position is mixed
// with the mean of all positions sharing its phase (t mod p), which is the
// column-wise (inter-period) information flow the 2D convolution provides,
// followed by a position-wise MLP for intra-period structure. The
// FFT-based period selection and amplitude-weighted aggregation follow the
// original.
type TimesNet struct {
	cfg Config
	// TopK is the number of dominant periods aggregated per window.
	TopK int

	embed *nn.Linear
	mix   *nn.Linear // (2h → h) same-phase mixing
	head  *nn.Linear
	pars  []*ag.Param

	norm   *window.Normalizer
	n      int
	fitted bool
}

// NewTimesNet returns an untrained TimesNet.
func NewTimesNet(cfg Config) *TimesNet { return &TimesNet{cfg: cfg.normalized(), TopK: 2} }

// Name implements Detector.
func (d *TimesNet) Name() string { return "TimesNet" }

func (d *TimesNet) build(rng *rand.Rand) {
	h := d.cfg.Hidden
	d.embed = nn.NewLinear("tn.embed", d.n, h, rng)
	d.mix = nn.NewLinear("tn.mix", 2*h, h, rng)
	d.head = nn.NewLinear("tn.head", h, d.n, rng)
	d.pars = nn.CollectParams(d.embed, d.mix, d.head)
}

// dominantPeriods returns up to TopK periods (≥2 samples) of the window's
// cross-variate mean signal, with their normalized spectral powers.
func (d *TimesNet) dominantPeriods(win *tensor.Dense) (periods []int, weights []float64) {
	w := win.Rows
	mean := make([]float64, w)
	for i := 0; i < w; i++ {
		mean[i] = stats.Mean(win.Row(i))
	}
	power, period := fourier.Periodogram(mean)
	if len(power) == 0 {
		return []int{2}, []float64{1}
	}
	order := stats.TopKIndices(power, len(power))
	var total float64
	for _, idx := range order {
		p := int(math.Round(period[idx]))
		if p < 2 || p > w/2 {
			continue
		}
		periods = append(periods, p)
		weights = append(weights, power[idx])
		total += power[idx]
		if len(periods) == d.TopK {
			break
		}
	}
	if len(periods) == 0 {
		return []int{2}, []float64{1}
	}
	for i := range weights {
		weights[i] /= total
	}
	return periods, weights
}

// phaseAverager builds the W×W constant matrix averaging positions that
// share a phase modulo p (the inter-period "column" of the 2D fold).
func phaseAverager(w, p int) *tensor.Dense {
	m := tensor.New(w, w)
	counts := make([]int, p)
	for i := 0; i < w; i++ {
		counts[i%p]++
	}
	for i := 0; i < w; i++ {
		ph := i % p
		inv := 1 / float64(counts[ph])
		for j := ph; j < w; j += p {
			m.Set(i, j, inv)
		}
	}
	return m
}

// forward reconstructs the window (W×N).
func (d *TimesNet) forward(t *ag.Tape, win *tensor.Dense) *ag.Node {
	h := t.ReLU(d.embed.Forward(t, t.Const(win)))
	periods, weights := d.dominantPeriods(win)
	var agg *ag.Node
	for i, p := range periods {
		phase := t.MatMul(t.Const(phaseAverager(win.Rows, p)), h)
		mixed := t.ReLU(d.mix.Forward(t, t.ConcatCols(h, phase)))
		branch := t.Scale(mixed, weights[i])
		if agg == nil {
			agg = branch
		} else {
			agg = t.Add(agg, branch)
		}
	}
	return t.Sigmoid(d.head.Forward(t, agg))
}

// Fit trains the reconstruction model.
func (d *TimesNet) Fit(train *dataset.Series) error {
	if err := d.cfg.validate(); err != nil {
		return err
	}
	d.n = train.N()
	if train.Len() < d.cfg.Window {
		return checkSeries(train, d.n, d.cfg.Window, true)
	}
	rng := newRand(d.cfg.Seed)
	d.norm = window.FitNormalizer(train.Data)
	d.build(rng)
	data := d.norm.Transform(train.Data)
	insts := window.Indices(train.Len(), d.cfg.Window, d.cfg.TrainStride)
	opt := nn.NewAdam(d.cfg.LR)
	opt.MaxGradNorm = 5

	for epoch := 0; epoch < d.cfg.Epochs; epoch++ {
		rng.Shuffle(len(insts), func(i, j int) { insts[i], insts[j] = insts[j], insts[i] })
		for _, inst := range insts {
			t := ag.NewTape()
			win := tensor.FromRows(windowMatrix(data, inst.End, d.cfg.Window))
			recon := d.forward(t, win)
			loss := t.MSE(recon, t.Const(win))
			t.Backward(loss)
			opt.Step(d.pars)
		}
	}
	d.fitted = true
	return nil
}

// Scores implements Detector: per-variate reconstruction error at each
// window's final position.
func (d *TimesNet) Scores(s *dataset.Series) ([][]float64, error) {
	if err := checkSeries(s, d.n, d.cfg.Window, d.fitted); err != nil {
		return nil, err
	}
	data := d.norm.Transform(s.Data)
	w := d.cfg.Window
	return assembleWindowScores(s.Len(), w, d.cfg.EvalStride, d.n, d.cfg.Workers, func(end int) []float64 {
		t := ag.NewTape()
		win := tensor.FromRows(windowMatrix(data, end, w))
		recon := d.forward(t, win)
		scores := make([]float64, d.n)
		for v := 0; v < d.n; v++ {
			scores[v] = math.Abs(win.At(w-1, v) - recon.Value.At(w-1, v))
		}
		return scores
	}), nil
}
