package baselines

import (
	"math"

	"aero/internal/dataset"
	"aero/internal/fourier"
	"aero/internal/stats"
)

// SR is the Spectral Residual detector (Ren et al., KDD 2019), which
// transplants the visual saliency model of Hou & Zhang into time series:
// the log-amplitude spectrum minus its local average is the "spectral
// residual"; transforming back with the original phase yields a saliency
// map whose peaks are anomalies. SR needs no training.
type SR struct {
	// AvgFilter is the width of the moving-average filter applied to the
	// log-amplitude spectrum (q in the paper).
	AvgFilter int
	// SaliencyWindow is the trailing window used to normalize the saliency
	// map into a score.
	SaliencyWindow int

	n      int
	fitted bool
}

// NewSR returns a Spectral Residual detector with the reference settings.
func NewSR() *SR { return &SR{AvgFilter: 3, SaliencyWindow: 21} }

// Name implements Detector.
func (d *SR) Name() string { return "SR" }

// Fit only records the dimensionality; SR has no trainable state.
func (d *SR) Fit(train *dataset.Series) error {
	d.n = train.N()
	d.fitted = true
	return nil
}

// Saliency computes the spectral-residual saliency map of one series.
func (d *SR) Saliency(x []float64) []float64 {
	n := len(x)
	if n < 2 {
		return make([]float64, n)
	}
	spec := fourier.FFTReal(x)
	logAmp := make([]float64, n)
	phase := make([]float64, n)
	for i, c := range spec {
		amp := math.Hypot(real(c), imag(c))
		if amp < 1e-12 {
			amp = 1e-12
		}
		logAmp[i] = math.Log(amp)
		phase[i] = math.Atan2(imag(c), real(c))
	}
	avg := movingAverageCentered(logAmp, d.AvgFilter)
	recon := make([]complex128, n)
	for i := range recon {
		r := math.Exp(logAmp[i] - avg[i]) // residual amplitude
		recon[i] = complex(r*math.Cos(phase[i]), r*math.Sin(phase[i]))
	}
	sal := fourier.IFFT(recon)
	out := make([]float64, n)
	for i, c := range sal {
		out[i] = math.Hypot(real(c), imag(c))
	}
	return out
}

// movingAverageCentered is a centered moving average with clamped edges.
func movingAverageCentered(x []float64, w int) []float64 {
	if w < 1 {
		w = 1
	}
	half := w / 2
	out := make([]float64, len(x))
	for i := range x {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(x) {
			hi = len(x) - 1
		}
		var s float64
		for j := lo; j <= hi; j++ {
			s += x[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out
}

// Scores implements Detector: per variate, the score is the relative
// elevation of the saliency map above its trailing mean.
func (d *SR) Scores(s *dataset.Series) ([][]float64, error) {
	if err := checkSeries(s, d.n, 2, d.fitted); err != nil {
		return nil, err
	}
	out := make([][]float64, d.n)
	parallelFor(d.n, 0, func(v int) {
		sal := d.Saliency(s.Data[v])
		base := stats.MovingMean(sal, d.SaliencyWindow)
		scores := make([]float64, len(sal))
		for i := range sal {
			den := base[i]
			if den < 1e-9 {
				den = 1e-9
			}
			sc := (sal[i] - den) / den
			if sc < 0 {
				sc = 0
			}
			scores[i] = sc
		}
		out[v] = scores
	})
	return out, nil
}
