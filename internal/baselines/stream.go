package baselines

import (
	"encoding/json"
	"fmt"
	"math"

	"aero/internal/core"
	"aero/internal/dataset"
	"aero/internal/evt"
	"aero/internal/fourier"
	"aero/internal/stats"
)

// This file adapts the cheap univariate baselines — Spectral Residual,
// Template Matching and FluxEV — to the core.StreamBackend contract, so
// the engine can serve them frame-at-a-time alongside AERO. Only the
// methods whose per-point cost is O(window) stream here; the deep
// baselines (Donut, OmniAnomaly, TranAD, ...) re-run a full network
// forward per window and stay batch-only in the experiment harness.
//
// Every adapter keeps its window in fixed rings and scores into reused
// scratch buffers, so a warm Push performs zero allocations (pinned by
// TestStreamAdapterPushAllocs) — the same steady-state budget as the
// AERO scoring path the engine was built around.

// Stream adapter kind tags, as registered with internal/backend.
const (
	KindSR     = "sr"
	KindTM     = "tm"
	KindFluxEV = "fluxev"
)

// StreamConfig carries the hyperparameters of the streaming baseline
// adapters plus the POT calibration of their static thresholds. Zero
// value is unusable; start from DefaultStreamConfig.
type StreamConfig struct {
	// Level and Q parameterize the POT fit of the static threshold over
	// the pooled training scores (paper §IV-B applies the same protocol
	// to every method).
	Level, Q float64
	// SRWindow is the spectral-residual scoring window; it must be a
	// power of two (the hot path uses the in-place radix-2 FFT).
	SRWindow int
	// SRAvgFilter is the log-amplitude moving-average width (q in Ren et
	// al.); SRSaliencyWindow the trailing saliency-normalization window.
	SRAvgFilter, SRSaliencyWindow int
	// TMTemplateLen is the template sampling length.
	TMTemplateLen int
	// FluxEVAlpha is the EWMA forecast smoothing factor; FluxEVSuppress
	// the recurring-fluctuation suppression window.
	FluxEVAlpha    float64
	FluxEVSuppress int
}

// DefaultStreamConfig mirrors the batch baselines' reference settings,
// with a 64-frame SR window (the batch method transforms the whole
// series at once, which a stream cannot).
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{
		Level: 0.99, Q: 1e-3,
		SRWindow: 64, SRAvgFilter: 3, SRSaliencyWindow: 21,
		TMTemplateLen: 32,
		FluxEVAlpha:   0.25, FluxEVSuppress: 20,
	}
}

const streamArtifactVersion = 1

// streamArtifact is the published form of a calibrated streaming
// adapter: hyperparameters plus the fitted threshold (and, for TM, the
// template library). One struct covers all three kinds; irrelevant
// fields are omitted per kind.
type streamArtifact struct {
	Kind      string  `json:"kind"`
	Version   int     `json:"version"`
	N         int     `json:"n"`
	Threshold float64 `json:"threshold"`
	Level     float64 `json:"level"`
	Q         float64 `json:"q"`

	Window         int         `json:"window,omitempty"`          // sr
	AvgFilter      int         `json:"avg_filter,omitempty"`      // sr
	SaliencyWindow int         `json:"saliency_window,omitempty"` // sr
	TemplateLen    int         `json:"template_len,omitempty"`    // tm
	Templates      [][]float64 `json:"templates,omitempty"`       // tm
	Alpha          float64     `json:"alpha,omitempty"`           // fluxev
	Suppress       int         `json:"suppress,omitempty"`        // fluxev
}

func decodeStreamArtifact(kind string, artifact []byte) (*streamArtifact, error) {
	var a streamArtifact
	if err := json.Unmarshal(artifact, &a); err != nil {
		return nil, fmt.Errorf("baselines: parse %s artifact: %w", kind, err)
	}
	if a.Kind != kind {
		return nil, fmt.Errorf("baselines: artifact kind %q, want %q", a.Kind, kind)
	}
	if a.Version != streamArtifactVersion {
		return nil, fmt.Errorf("baselines: unsupported %s artifact version %d", kind, a.Version)
	}
	if a.N < 1 {
		return nil, fmt.Errorf("baselines: %s artifact has %d variates", kind, a.N)
	}
	return &a, nil
}

// streamSnapshot is the warm-state checkpoint of a streaming adapter:
// everything accumulated at runtime (rings, cursors), and nothing from
// the artifact (thresholds live in the registry entry, exactly like AERO
// weights live in the model file).
type streamSnapshot struct {
	Kind    string      `json:"kind"`
	Version int         `json:"version"`
	N       int         `json:"n"`
	Window  int         `json:"window"`
	Count   int         `json:"count"`
	Last    float64     `json:"last"`
	Rings   [][]float64 `json:"rings"`
	EW      []float64   `json:"ew,omitempty"` // fluxev forecast state
}

// streamBase carries the state and contract plumbing shared by the three
// adapters: dimensionality, warm-up accounting, the calibrated threshold
// and the reused per-variate score slice.
type streamBase struct {
	kind   string
	n      int
	warm   int // frames needed before scores flow
	thr    float64
	count  int
	last   float64
	scores []float64
}

func newStreamBase(kind string, n, warm int) streamBase {
	return streamBase{kind: kind, n: n, warm: warm, scores: make([]float64, n)}
}

// Kind implements core.StreamBackend.
func (b *streamBase) Kind() string { return b.kind }

// Variates implements core.StreamBackend.
func (b *streamBase) Variates() int { return b.n }

// Ready implements core.StreamBackend.
func (b *streamBase) Ready() bool { return b.count >= b.warm }

// LastTime implements core.StreamBackend.
func (b *streamBase) LastTime() (float64, bool) { return b.last, b.count > 0 }

// Threshold implements core.StreamBackend.
func (b *streamBase) Threshold() float64 { return b.thr }

// SetThreshold installs a calibrated alarm threshold (see
// CalibrateStream).
func (b *streamBase) SetThreshold(thr float64) { b.thr = thr }

// ingest validates one frame against the adapter's geometry and time
// cursor; the caller inserts into its rings and then calls advance.
func (b *streamBase) ingest(f core.Frame) error {
	if len(f.Magnitudes) != b.n {
		return fmt.Errorf("baselines: frame has %d stars, %s adapter expects %d", len(f.Magnitudes), b.kind, b.n)
	}
	if b.count > 0 && f.Time <= b.last {
		return fmt.Errorf("baselines: frame time %v not after previous %v", f.Time, b.last)
	}
	return nil
}

func (b *streamBase) advance(t float64) {
	b.count++
	b.last = t
}

// alarmsAt converts raw scores into threshold crossings.
func alarmsAt(t float64, scores []float64, thr float64) []core.Alarm {
	var out []core.Alarm
	for v, sc := range scores {
		if sc >= thr {
			out = append(out, core.Alarm{Variate: v, Time: t, Score: sc})
		}
	}
	return out
}

// zscoreInto writes the z-scored src into dst with the exact float
// operations of stats.ZScore (bit-identical to the batch path).
func zscoreInto(dst, src []float64) {
	m, s := stats.MeanStd(src)
	if s == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	for i, v := range src {
		dst[i] = (v - m) / s
	}
}

// ---------------------------------------------------------------------------
// Spectral Residual

// srExtend is the number of extrapolated points appended after the
// newest value before the transform. A point at the FFT boundary reads
// as a discontinuity (the transform is periodic) and scores high no
// matter what, so — as in Ren et al.'s reference implementation — the
// window is extended with an average-slope forecast and the newest
// *real* point, now srExtend samples away from the boundary, is the one
// scored.
const srExtend = 5

// StreamSR is the streaming adapter of the Spectral Residual detector:
// per variate, the last SRWindow−srExtend values plus srExtend
// extrapolated points are transformed in place, the saliency map of the
// window is computed, and the newest real point is scored by its
// relative elevation over the trailing saliency mean — the batch formula
// applied to a sliding window.
type StreamSR struct {
	streamBase
	w, avgFilter, salWin int
	ringLen              int // w − srExtend real points retained

	rings [][]float64 // [variate][slot]

	// scratch, reused per push
	cx                      []complex128
	logAmp, phase, avg, sal []float64
}

// NewStreamSR returns an uncalibrated streaming SR adapter for n
// variates; calibrate with CalibrateStream before serving.
func NewStreamSR(n int, cfg StreamConfig) (*StreamSR, error) {
	w := cfg.SRWindow
	if n < 1 {
		return nil, fmt.Errorf("baselines: SR adapter needs >= 1 variate, got %d", n)
	}
	if w < 16 || w&(w-1) != 0 {
		return nil, fmt.Errorf("baselines: SR window %d must be a power of two >= 16", w)
	}
	s := &StreamSR{
		streamBase: newStreamBase(KindSR, n, w-srExtend),
		w:          w,
		ringLen:    w - srExtend,
		avgFilter:  max(cfg.SRAvgFilter, 1),
		salWin:     max(cfg.SRSaliencyWindow, 1),
		rings:      make([][]float64, n),
		cx:         make([]complex128, w),
		logAmp:     make([]float64, w),
		phase:      make([]float64, w),
		avg:        make([]float64, w),
		sal:        make([]float64, w),
	}
	for v := range s.rings {
		s.rings[v] = make([]float64, s.ringLen)
	}
	return s, nil
}

// PushScores implements core.StreamBackend.
func (s *StreamSR) PushScores(f core.Frame) ([]float64, error) {
	if err := s.ingest(f); err != nil {
		return nil, err
	}
	slot := s.count % s.ringLen
	for v := 0; v < s.n; v++ {
		s.rings[v][slot] = f.Magnitudes[v]
	}
	s.advance(f.Time)
	if !s.Ready() {
		return nil, nil
	}
	head := s.count % s.ringLen // oldest retained slot
	for v := 0; v < s.n; v++ {
		ring := s.rings[v]
		for i := 0; i < s.ringLen; i++ {
			s.cx[i] = complex(ring[(head+i)%s.ringLen], 0)
		}
		s.scores[v] = s.scoreWindow()
	}
	return s.scores, nil
}

// scoreWindow computes the saliency map of the chronological window
// staged in s.cx[:ringLen], extends it with the average-slope forecast,
// and scores the newest real point. All buffers are scratch.
func (s *StreamSR) scoreWindow() float64 {
	last := s.ringLen - 1
	// Average-slope extrapolation repeated srExtend times, so the scored
	// point is not the transform boundary. As in the reference
	// implementation, the forecast is built from the points *before* the
	// newest one — an anomalous newest point must not predict its own
	// continuation, or it would read as trend and vanish from the
	// residual spectrum.
	const m = srExtend + 1 // forecast basis: cx[last-m .. last-1]
	vLast := real(s.cx[last-1])
	var sum float64
	for i := 0; i < m-1; i++ {
		sum += (vLast - real(s.cx[last-m+i])) / float64(m-1-i)
	}
	est := complex(real(s.cx[last-m+1])+sum, 0)
	for i := s.ringLen; i < s.w; i++ {
		s.cx[i] = est
	}
	fourier.FFTInPlace(s.cx)
	for i, c := range s.cx {
		amp := math.Hypot(real(c), imag(c))
		if amp < 1e-12 {
			amp = 1e-12
		}
		s.logAmp[i] = math.Log(amp)
		s.phase[i] = math.Atan2(imag(c), real(c))
	}
	movingAverageCenteredInto(s.avg, s.logAmp, s.avgFilter)
	for i := range s.cx {
		r := math.Exp(s.logAmp[i] - s.avg[i]) // residual amplitude
		s.cx[i] = complex(r*math.Cos(s.phase[i]), r*math.Sin(s.phase[i]))
	}
	fourier.IFFTInPlace(s.cx)
	for i, c := range s.cx {
		s.sal[i] = math.Hypot(real(c), imag(c))
	}
	// Trailing saliency mean ending at the newest real point (the batch
	// score's MovingMean at that index).
	lo := last + 1 - s.salWin
	if lo < 0 {
		lo = 0
	}
	var base float64
	for i := lo; i <= last; i++ {
		base += s.sal[i]
	}
	base /= float64(last + 1 - lo)
	if base < 1e-9 {
		base = 1e-9
	}
	sc := (s.sal[last] - base) / base
	if sc < 0 {
		sc = 0
	}
	return sc
}

// movingAverageCenteredInto is movingAverageCentered writing into dst.
func movingAverageCenteredInto(dst, x []float64, w int) {
	half := w / 2
	for i := range x {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(x) {
			hi = len(x) - 1
		}
		var sum float64
		for j := lo; j <= hi; j++ {
			sum += x[j]
		}
		dst[i] = sum / float64(hi-lo+1)
	}
}

// Push implements core.StreamBackend.
func (s *StreamSR) Push(f core.Frame) ([]core.Alarm, error) {
	scores, err := s.PushScores(f)
	if err != nil || scores == nil {
		return nil, err
	}
	return alarmsAt(f.Time, scores, s.thr), nil
}

// MarshalArtifact serializes the calibrated adapter's hyperparameters
// and threshold — the registry-published form.
func (s *StreamSR) MarshalArtifact() ([]byte, error) {
	return json.Marshal(streamArtifact{
		Kind: KindSR, Version: streamArtifactVersion, N: s.n,
		Threshold: s.thr, Window: s.w, AvgFilter: s.avgFilter, SaliencyWindow: s.salWin,
	})
}

// OpenStreamSR reconstructs a serving adapter from a published artifact.
func OpenStreamSR(artifact []byte) (*StreamSR, error) {
	a, err := decodeStreamArtifact(KindSR, artifact)
	if err != nil {
		return nil, err
	}
	s, err := NewStreamSR(a.N, StreamConfig{
		SRWindow: a.Window, SRAvgFilter: a.AvgFilter, SRSaliencyWindow: a.SaliencyWindow,
	})
	if err != nil {
		return nil, err
	}
	s.thr = a.Threshold
	return s, nil
}

// SwapArtifact implements core.StreamBackend: a freshly calibrated
// artifact of matching geometry replaces the threshold and filter
// settings while the warm window is kept.
func (s *StreamSR) SwapArtifact(artifact []byte) error {
	a, err := decodeStreamArtifact(KindSR, artifact)
	if err != nil {
		return err
	}
	if a.N != s.n || a.Window != s.w {
		return fmt.Errorf("baselines: sr artifact is %d variates × window %d, adapter is %d × %d", a.N, a.Window, s.n, s.w)
	}
	s.avgFilter = max(a.AvgFilter, 1)
	s.salWin = max(a.SaliencyWindow, 1)
	s.thr = a.Threshold
	return nil
}

// SnapshotState implements core.StreamBackend. The geometry recorded is
// the ring of retained real points (the FFT window is ring + extension).
func (s *StreamSR) SnapshotState() ([]byte, error) {
	return marshalRingSnapshot(KindSR, s.n, s.ringLen, s.count, s.last, s.rings, nil)
}

// RestoreState implements core.StreamBackend.
func (s *StreamSR) RestoreState(blob []byte) error {
	st, err := decodeRingSnapshot(KindSR, blob, s.n, s.ringLen, false)
	if err != nil {
		return err
	}
	s.count, s.last = st.Count, st.Last
	for v := range s.rings {
		copy(s.rings[v], st.Rings[v])
	}
	return nil
}

// ---------------------------------------------------------------------------
// Template Matching

// StreamTM is the streaming adapter of the SciDetector-style template
// matcher: the score of the newest point is the best normalized
// cross-correlation of the trailing TemplateLen window against the fixed
// event-template library — bit-identical to the batch scores at every
// full window.
type StreamTM struct {
	streamBase
	tplLen    int
	templates [][]float64
	rings     [][]float64
	buf, zbuf []float64
}

// NewStreamTM returns an uncalibrated streaming template matcher.
func NewStreamTM(n int, cfg StreamConfig) (*StreamTM, error) {
	if n < 1 {
		return nil, fmt.Errorf("baselines: TM adapter needs >= 1 variate, got %d", n)
	}
	L := cfg.TMTemplateLen
	if L < 4 {
		return nil, fmt.Errorf("baselines: TM template length %d must be >= 4", L)
	}
	t := &StreamTM{
		streamBase: newStreamBase(KindTM, n, L),
		tplLen:     L,
		templates:  eventTemplates(L),
		rings:      make([][]float64, n),
		buf:        make([]float64, L),
		zbuf:       make([]float64, L),
	}
	for v := range t.rings {
		t.rings[v] = make([]float64, L)
	}
	return t, nil
}

// eventTemplates samples the catalogued event shapes at length L,
// z-scored — the same library TemplateMatching.Fit builds.
func eventTemplates(L int) [][]float64 {
	mk := func(f func(u float64) float64) []float64 {
		t := make([]float64, L)
		for i := range t {
			t[i] = f(float64(i) / float64(L-1))
		}
		return stats.ZScore(t)
	}
	return [][]float64{
		mk(func(u float64) float64 { return dataset.FlareShape(u*7 - 1) }),
		mk(func(u float64) float64 { return dataset.EclipseShape(u) }),
	}
}

// PushScores implements core.StreamBackend.
func (t *StreamTM) PushScores(f core.Frame) ([]float64, error) {
	if err := t.ingest(f); err != nil {
		return nil, err
	}
	slot := t.count % t.tplLen
	for v := 0; v < t.n; v++ {
		t.rings[v][slot] = f.Magnitudes[v]
	}
	t.advance(f.Time)
	if !t.Ready() {
		return nil, nil
	}
	head := t.count % t.tplLen
	for v := 0; v < t.n; v++ {
		ring := t.rings[v]
		for i := 0; i < t.tplLen; i++ {
			t.buf[i] = ring[(head+i)%t.tplLen]
		}
		zscoreInto(t.zbuf, t.buf)
		best := 0.0
		for _, tpl := range t.templates {
			if c := stats.Correlation(t.zbuf, tpl); c > best {
				best = c
			}
		}
		t.scores[v] = best
	}
	return t.scores, nil
}

// Push implements core.StreamBackend.
func (t *StreamTM) Push(f core.Frame) ([]core.Alarm, error) {
	scores, err := t.PushScores(f)
	if err != nil || scores == nil {
		return nil, err
	}
	return alarmsAt(f.Time, scores, t.thr), nil
}

// MarshalArtifact serializes the calibrated adapter, template library
// included (the artifact must be self-contained).
func (t *StreamTM) MarshalArtifact() ([]byte, error) {
	return json.Marshal(streamArtifact{
		Kind: KindTM, Version: streamArtifactVersion, N: t.n,
		Threshold: t.thr, TemplateLen: t.tplLen, Templates: t.templates,
	})
}

// OpenStreamTM reconstructs a serving adapter from a published artifact.
func OpenStreamTM(artifact []byte) (*StreamTM, error) {
	a, err := decodeStreamArtifact(KindTM, artifact)
	if err != nil {
		return nil, err
	}
	t, err := NewStreamTM(a.N, StreamConfig{TMTemplateLen: a.TemplateLen})
	if err != nil {
		return nil, err
	}
	if len(a.Templates) > 0 {
		for i, tpl := range a.Templates {
			if len(tpl) != a.TemplateLen {
				return nil, fmt.Errorf("baselines: tm artifact template %d has length %d, want %d", i, len(tpl), a.TemplateLen)
			}
		}
		t.templates = a.Templates
	}
	t.thr = a.Threshold
	return t, nil
}

// SwapArtifact implements core.StreamBackend.
func (t *StreamTM) SwapArtifact(artifact []byte) error {
	fresh, err := OpenStreamTM(artifact)
	if err != nil {
		return err
	}
	if fresh.n != t.n || fresh.tplLen != t.tplLen {
		return fmt.Errorf("baselines: tm artifact is %d variates × window %d, adapter is %d × %d", fresh.n, fresh.tplLen, t.n, t.tplLen)
	}
	t.templates = fresh.templates
	t.thr = fresh.thr
	return nil
}

// SnapshotState implements core.StreamBackend.
func (t *StreamTM) SnapshotState() ([]byte, error) {
	return marshalRingSnapshot(KindTM, t.n, t.tplLen, t.count, t.last, t.rings, nil)
}

// RestoreState implements core.StreamBackend.
func (t *StreamTM) RestoreState(blob []byte) error {
	st, err := decodeRingSnapshot(KindTM, blob, t.n, t.tplLen, false)
	if err != nil {
		return err
	}
	t.count, t.last = st.Count, st.Last
	for v := range t.rings {
		copy(t.rings[v], st.Rings[v])
	}
	return nil
}

// ---------------------------------------------------------------------------
// FluxEV

// StreamFluxEV is the streaming adapter of FluxEV's two-step fluctuation
// extraction: the EWMA forecast and the residual ring are carried as
// running state, so each push costs O(SuppressWindow) and reproduces the
// batch extraction bit-for-bit from the second frame on.
type StreamFluxEV struct {
	streamBase
	alpha    float64
	suppress int
	ew       []float64   // per-variate EWMA of all points so far
	res      [][]float64 // per-variate ring of the last `suppress` residuals
}

// NewStreamFluxEV returns an uncalibrated streaming FluxEV adapter.
func NewStreamFluxEV(n int, cfg StreamConfig) (*StreamFluxEV, error) {
	if n < 1 {
		return nil, fmt.Errorf("baselines: FluxEV adapter needs >= 1 variate, got %d", n)
	}
	if cfg.FluxEVAlpha <= 0 || cfg.FluxEVAlpha > 1 {
		return nil, fmt.Errorf("baselines: FluxEV alpha %v outside (0, 1]", cfg.FluxEVAlpha)
	}
	w := max(cfg.FluxEVSuppress, 1)
	d := &StreamFluxEV{
		streamBase: newStreamBase(KindFluxEV, n, 2),
		alpha:      cfg.FluxEVAlpha,
		suppress:   w,
		ew:         make([]float64, n),
		res:        make([][]float64, n),
	}
	for v := range d.res {
		d.res[v] = make([]float64, w)
	}
	return d, nil
}

// PushScores implements core.StreamBackend.
func (d *StreamFluxEV) PushScores(f core.Frame) ([]float64, error) {
	if err := d.ingest(f); err != nil {
		return nil, err
	}
	t := d.count // 0-based index of this frame
	if t == 0 {
		for v := 0; v < d.n; v++ {
			d.ew[v] = f.Magnitudes[v]
			d.res[v][0] = 0 // the batch path's implicit res[0]
		}
		d.advance(f.Time)
		return nil, nil
	}
	for v := 0; v < d.n; v++ {
		x := f.Magnitudes[v]
		r := math.Abs(x - d.ew[v]) // residual vs the EWMA of *previous* points
		// Recent maximum over res[t-suppress .. t-1]; while t <= suppress
		// only the first t slots are populated.
		limit := d.suppress
		if t < limit {
			limit = t
		}
		recent := 0.0
		for j := 0; j < limit; j++ {
			if d.res[v][j] > recent {
				recent = d.res[v][j]
			}
		}
		sc := r - recent
		if sc < 0 {
			sc = 0
		}
		d.scores[v] = sc
		d.res[v][t%d.suppress] = r
		d.ew[v] = d.alpha*x + (1-d.alpha)*d.ew[v]
	}
	d.advance(f.Time)
	return d.scores, nil
}

// Push implements core.StreamBackend.
func (d *StreamFluxEV) Push(f core.Frame) ([]core.Alarm, error) {
	scores, err := d.PushScores(f)
	if err != nil || scores == nil {
		return nil, err
	}
	return alarmsAt(f.Time, scores, d.thr), nil
}

// MarshalArtifact serializes the calibrated adapter.
func (d *StreamFluxEV) MarshalArtifact() ([]byte, error) {
	return json.Marshal(streamArtifact{
		Kind: KindFluxEV, Version: streamArtifactVersion, N: d.n,
		Threshold: d.thr, Alpha: d.alpha, Suppress: d.suppress,
	})
}

// OpenStreamFluxEV reconstructs a serving adapter from a published
// artifact.
func OpenStreamFluxEV(artifact []byte) (*StreamFluxEV, error) {
	a, err := decodeStreamArtifact(KindFluxEV, artifact)
	if err != nil {
		return nil, err
	}
	d, err := NewStreamFluxEV(a.N, StreamConfig{FluxEVAlpha: a.Alpha, FluxEVSuppress: a.Suppress})
	if err != nil {
		return nil, err
	}
	d.thr = a.Threshold
	return d, nil
}

// SwapArtifact implements core.StreamBackend.
func (d *StreamFluxEV) SwapArtifact(artifact []byte) error {
	a, err := decodeStreamArtifact(KindFluxEV, artifact)
	if err != nil {
		return err
	}
	if a.N != d.n || a.Suppress != d.suppress {
		return fmt.Errorf("baselines: fluxev artifact is %d variates × window %d, adapter is %d × %d", a.N, a.Suppress, d.n, d.suppress)
	}
	if a.Alpha <= 0 || a.Alpha > 1 {
		return fmt.Errorf("baselines: fluxev artifact alpha %v outside (0, 1]", a.Alpha)
	}
	d.alpha = a.Alpha
	d.thr = a.Threshold
	return nil
}

// SnapshotState implements core.StreamBackend.
func (d *StreamFluxEV) SnapshotState() ([]byte, error) {
	return marshalRingSnapshot(KindFluxEV, d.n, d.suppress, d.count, d.last, d.res, d.ew)
}

// RestoreState implements core.StreamBackend.
func (d *StreamFluxEV) RestoreState(blob []byte) error {
	st, err := decodeRingSnapshot(KindFluxEV, blob, d.n, d.suppress, true)
	if err != nil {
		return err
	}
	d.count, d.last = st.Count, st.Last
	for v := range d.res {
		copy(d.res[v], st.Rings[v])
	}
	copy(d.ew, st.EW)
	return nil
}

// ---------------------------------------------------------------------------
// shared snapshot plumbing + calibration

const streamSnapshotVersion = 1

func marshalRingSnapshot(kind string, n, w, count int, last float64, rings [][]float64, ew []float64) ([]byte, error) {
	st := streamSnapshot{
		Kind: kind, Version: streamSnapshotVersion, N: n, Window: w,
		Count: count, Last: last,
		Rings: make([][]float64, len(rings)),
	}
	for v := range rings {
		st.Rings[v] = append([]float64(nil), rings[v]...)
	}
	if ew != nil {
		st.EW = append([]float64(nil), ew...)
	}
	return json.Marshal(st)
}

// decodeRingSnapshot parses and fully validates a snapshot against the
// adapter's geometry before the caller commits any of it.
func decodeRingSnapshot(kind string, blob []byte, n, w int, wantEW bool) (*streamSnapshot, error) {
	var st streamSnapshot
	if err := json.Unmarshal(blob, &st); err != nil {
		return nil, fmt.Errorf("baselines: parse %s state: %w", kind, err)
	}
	if st.Kind != kind {
		return nil, fmt.Errorf("baselines: state kind %q, want %q", st.Kind, kind)
	}
	if st.Version != streamSnapshotVersion {
		return nil, fmt.Errorf("baselines: unsupported %s state version %d", kind, st.Version)
	}
	if st.N != n || st.Window != w {
		return nil, fmt.Errorf("baselines: state is %d variates × window %d, adapter is %d × %d", st.N, st.Window, n, w)
	}
	if st.Count < 0 {
		return nil, fmt.Errorf("baselines: state frame count %d negative", st.Count)
	}
	if len(st.Rings) != n {
		return nil, fmt.Errorf("baselines: state has %d rings, want %d", len(st.Rings), n)
	}
	for v := range st.Rings {
		if len(st.Rings[v]) != w {
			return nil, fmt.Errorf("baselines: state ring %d has %d slots, want %d", v, len(st.Rings[v]), w)
		}
	}
	if wantEW && len(st.EW) != n {
		return nil, fmt.Errorf("baselines: state has %d forecast values, want %d", len(st.EW), n)
	}
	return &st, nil
}

// CalibratableStream is a streaming adapter whose static threshold can be
// fitted after construction and which can publish itself as an artifact.
type CalibratableStream interface {
	core.StreamBackend
	SetThreshold(thr float64)
	MarshalArtifact() ([]byte, error)
}

// CalibrateStream replays the training series through the adapter and
// fits its static alarm threshold with POT over the pooled post-warm
// scores — the identical protocol the batch harness applies (§IV-B).
// The adapter is left warm on the training feed; serve with a fresh
// instance opened from the calibrated artifact.
func CalibrateStream(b CalibratableStream, train *dataset.Series, level, q float64) error {
	if train.N() != b.Variates() {
		return fmt.Errorf("baselines: calibration series has %d variates, adapter %d", train.N(), b.Variates())
	}
	scores, err := StreamScores(b, train)
	if err != nil {
		return err
	}
	total := 0
	for _, vs := range scores {
		total += len(vs)
	}
	pool := make([]float64, 0, total)
	for _, vs := range scores {
		pool = append(pool, vs...)
	}
	if len(pool) == 0 {
		return fmt.Errorf("baselines: series too short to calibrate %s (no post-warm scores)", b.Kind())
	}
	th, err := evt.POT(pool, level, q)
	if err != nil && th.N == 0 {
		return fmt.Errorf("baselines: calibrate %s: %w", b.Kind(), err)
	}
	b.SetThreshold(th.Z) // the empirical-quantile fallback is still usable
	return nil
}

// StreamScores replays a series through any stream backend and returns
// the per-variate score sequences of the post-warm frames — the raw
// material for POT/DSPOT calibration.
func StreamScores(b core.StreamBackend, s *dataset.Series) ([][]float64, error) {
	out := make([][]float64, b.Variates())
	for v := range out {
		out[v] = make([]float64, 0, s.Len())
	}
	frame := core.Frame{Magnitudes: make([]float64, s.N())}
	for t := 0; t < s.Len(); t++ {
		frame.Time = s.Time[t]
		for v := 0; v < s.N(); v++ {
			frame.Magnitudes[v] = s.Data[v][t]
		}
		scores, err := b.PushScores(frame)
		if err != nil {
			return nil, err
		}
		for v, sc := range scores {
			out[v] = append(out[v], sc)
		}
	}
	return out, nil
}
