package baselines

import (
	"aero/internal/dataset"
	"aero/internal/stats"
)

// TemplateMatching is the SciDetector-style supervised baseline (Duan et
// al., ICDE 2019): pre-defined celestial-event templates are slid over each
// variate and the anomaly score is the best normalized cross-correlation
// against any template. Its weakness — fixed templates cannot cover unseen
// event morphologies and fire on template-shaped noise — is what the
// paper's Table II/III rows demonstrate.
type TemplateMatching struct {
	// TemplateLen is the length the event templates are sampled at.
	TemplateLen int

	templates [][]float64
	n         int
	fitted    bool
}

// NewTemplateMatching returns a detector with the four event templates
// sampled at length 32.
func NewTemplateMatching() *TemplateMatching {
	return &TemplateMatching{TemplateLen: 32}
}

// Name implements Detector.
func (d *TemplateMatching) Name() string { return "TM" }

// Fit samples the event templates; no learning from data is involved
// (the method is supervised by its template library).
func (d *TemplateMatching) Fit(train *dataset.Series) error {
	L := d.TemplateLen
	if L < 4 {
		L = 32
	}
	mk := func(f func(u float64) float64) []float64 {
		t := make([]float64, L)
		for i := range t {
			t[i] = f(float64(i) / float64(L-1))
		}
		return stats.ZScore(t)
	}
	// The template library covers only the historically catalogued event
	// classes (flares and occultation dips, the SciDetector deployment at
	// GWAC); novel morphologies — novae, symmetric bursts — are exactly
	// the "unseen events" fixed templates cannot match, which is the
	// method's documented weakness (paper §IV-D).
	d.templates = [][]float64{
		mk(func(u float64) float64 { return dataset.FlareShape(u*7 - 1) }),
		mk(func(u float64) float64 { return dataset.EclipseShape(u) }),
	}
	d.n = train.N()
	d.fitted = true
	return nil
}

// Scores implements Detector: the score at t is the best template
// correlation of the window ending at t, clamped to [0, 1].
func (d *TemplateMatching) Scores(s *dataset.Series) ([][]float64, error) {
	if err := checkSeries(s, d.n, d.TemplateLen, d.fitted); err != nil {
		return nil, err
	}
	T := s.Len()
	out := make([][]float64, d.n)
	parallelFor(d.n, 0, func(v int) {
		scores := make([]float64, T)
		buf := make([]float64, d.TemplateLen)
		for end := d.TemplateLen - 1; end < T; end++ {
			copy(buf, s.Data[v][end-d.TemplateLen+1:end+1])
			zw := stats.ZScore(buf)
			best := 0.0
			for _, tpl := range d.templates {
				if c := stats.Correlation(zw, tpl); c > best {
					best = c
				}
			}
			scores[end] = best
		}
		out[v] = scores
	})
	return out, nil
}
