package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarStd(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Fatalf("mean %v", Mean(xs))
	}
	if math.Abs(Var(xs)-1.25) > 1e-12 {
		t.Fatalf("var %v", Var(xs))
	}
	if math.Abs(Std(xs)-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("std %v", Std(xs))
	}
	if Mean(nil) != 0 || Var(nil) != 0 {
		t.Fatal("empty input must give 0")
	}
}

func TestMeanStdMatchesTwoPass(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(50))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		m, s := MeanStd(xs)
		return math.Abs(m-Mean(xs)) < 1e-9 && math.Abs(s-Std(xs)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("extremes wrong")
	}
	if Median(xs) != 3 {
		t.Fatalf("median %v", Median(xs))
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q25 = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 2+rng.Intn(40))
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		q1 := 0.3 + 0.2*rng.Float64()
		q2 := q1 + 0.3*rng.Float64()
		return Quantile(xs, q1) <= Quantile(xs, q2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiff(t *testing.T) {
	got := Diff([]float64{1, 4, 9})
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("diff %v", got)
	}
	if Diff([]float64{1}) != nil {
		t.Fatal("short diff should be nil")
	}
}

func TestEWMAConstantIsFixedPoint(t *testing.T) {
	xs := []float64{5, 5, 5, 5}
	for _, v := range EWMA(xs, 0.3) {
		if v != 5 {
			t.Fatal("EWMA of constant must be constant")
		}
	}
}

func TestMovingMeanWindow(t *testing.T) {
	got := MovingMean([]float64{1, 2, 3, 4, 5}, 2)
	want := []float64{1, 1.5, 2.5, 3.5, 4.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("moving mean %v want %v", got, want)
		}
	}
}

func TestMovingStdOfConstantIsZero(t *testing.T) {
	for _, v := range MovingStd([]float64{2, 2, 2, 2}, 3) {
		if v != 0 {
			t.Fatal("moving std of constant must be 0")
		}
	}
}

func TestZScoreProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = 3 + 2*rng.NormFloat64()
	}
	z := ZScore(xs)
	m, s := MeanStd(z)
	if math.Abs(m) > 1e-9 || math.Abs(s-1) > 1e-9 {
		t.Fatalf("zscore mean=%v std=%v", m, s)
	}
	if got := ZScore([]float64{7, 7}); got[0] != 0 || got[1] != 0 {
		t.Fatal("constant input should map to zeros")
	}
}

func TestMinMaxScale(t *testing.T) {
	got := MinMaxScale([]float64{-1, 0, 1, 2, 3}, 0, 2)
	want := []float64{0, 0, 0.5, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("minmax %v want %v", got, want)
		}
	}
	for _, v := range MinMaxScale([]float64{1, 2}, 5, 5) {
		if v != 0.5 {
			t.Fatal("degenerate range must map to 0.5")
		}
	}
}

func TestCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	if math.Abs(Correlation(a, b)-1) > 1e-12 {
		t.Fatal("perfect correlation expected")
	}
	c := []float64{8, 6, 4, 2}
	if math.Abs(Correlation(a, c)+1) > 1e-12 {
		t.Fatal("perfect anticorrelation expected")
	}
	if Correlation(a, []float64{5, 5, 5, 5}) != 0 {
		t.Fatal("constant series should give 0")
	}
}

func TestCosineSimilarity(t *testing.T) {
	if CosineSimilarity([]float64{1, 0}, []float64{2, 0}) != 1 {
		t.Fatal("parallel vectors")
	}
	if CosineSimilarity([]float64{1, 0}, []float64{0, 3}) != 0 {
		t.Fatal("orthogonal vectors")
	}
	if CosineSimilarity([]float64{0, 0}, []float64{1, 1}) != 0 {
		t.Fatal("zero vector must give 0")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		s := CosineSimilarity(a, b)
		return s >= -1-1e-12 && s <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArgmaxTopK(t *testing.T) {
	xs := []float64{3, 9, 1, 7}
	if Argmax(xs) != 1 {
		t.Fatal("argmax")
	}
	if Argmax(nil) != -1 {
		t.Fatal("argmax of empty should be -1")
	}
	top := TopKIndices(xs, 2)
	if top[0] != 1 || top[1] != 3 {
		t.Fatalf("topk %v", top)
	}
	if len(TopKIndices(xs, 10)) != 4 {
		t.Fatal("topk should clip k")
	}
}

func TestClip(t *testing.T) {
	got := Clip([]float64{-5, 0, 5}, -1, 1)
	if got[0] != -1 || got[1] != 0 || got[2] != 1 {
		t.Fatalf("clip %v", got)
	}
}
