// Package stats provides the scalar and vector statistics used throughout
// the library: moments, quantiles, moving windows, smoothing, and
// normalization. All functions are pure and operate on []float64.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Var returns the population variance of xs.
func Var(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Var(xs)) }

// MeanStd returns both the mean and population standard deviation in one pass.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var s, sq float64
	for _, v := range xs {
		s += v
		sq += v * v
	}
	n := float64(len(xs))
	mean = s / n
	v := sq/n - mean*mean
	if v < 0 {
		v = 0
	}
	return mean, math.Sqrt(v)
}

// Min returns the minimum of xs (+Inf for empty input).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, v := range xs {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum of xs (-Inf for empty input).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile for already-sorted input, avoiding the copy.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Diff returns the first-order difference xs[i+1]-xs[i]; the result has
// length len(xs)-1 (empty for inputs shorter than 2).
func Diff(xs []float64) []float64 {
	if len(xs) < 2 {
		return nil
	}
	out := make([]float64, len(xs)-1)
	for i := 0; i < len(out); i++ {
		out[i] = xs[i+1] - xs[i]
	}
	return out
}

// EWMA returns the exponentially weighted moving average of xs with
// smoothing factor alpha in (0, 1]; larger alpha weights recent points more.
func EWMA(xs []float64, alpha float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	out[0] = xs[0]
	for i := 1; i < len(xs); i++ {
		out[i] = alpha*xs[i] + (1-alpha)*out[i-1]
	}
	return out
}

// MovingMean returns the trailing moving average with window w; positions
// before a full window average the available prefix.
func MovingMean(xs []float64, w int) []float64 {
	if w < 1 {
		w = 1
	}
	out := make([]float64, len(xs))
	var sum float64
	for i, v := range xs {
		sum += v
		if i >= w {
			sum -= xs[i-w]
			out[i] = sum / float64(w)
		} else {
			out[i] = sum / float64(i+1)
		}
	}
	return out
}

// MovingStd returns the trailing moving standard deviation with window w.
func MovingStd(xs []float64, w int) []float64 {
	if w < 1 {
		w = 1
	}
	out := make([]float64, len(xs))
	var sum, sq float64
	for i, v := range xs {
		sum += v
		sq += v * v
		n := float64(i + 1)
		if i >= w {
			sum -= xs[i-w]
			sq -= xs[i-w] * xs[i-w]
			n = float64(w)
		}
		m := sum / n
		va := sq/n - m*m
		if va < 0 {
			va = 0
		}
		out[i] = math.Sqrt(va)
	}
	return out
}

// ZScore returns (xs - mean) / std elementwise; std 0 maps to zeros.
func ZScore(xs []float64) []float64 {
	m, s := MeanStd(xs)
	out := make([]float64, len(xs))
	if s == 0 {
		return out
	}
	for i, v := range xs {
		out[i] = (v - m) / s
	}
	return out
}

// MinMaxScale maps xs linearly onto [0, 1] using the provided lo/hi bounds.
// A degenerate range (hi <= lo) maps everything to 0.5. Values outside
// [lo, hi] are clipped.
func MinMaxScale(xs []float64, lo, hi float64) []float64 {
	out := make([]float64, len(xs))
	if hi <= lo {
		for i := range out {
			out[i] = 0.5
		}
		return out
	}
	r := hi - lo
	for i, v := range xs {
		u := (v - lo) / r
		if u < 0 {
			u = 0
		} else if u > 1 {
			u = 1
		}
		out[i] = u
	}
	return out
}

// Correlation returns the Pearson correlation of a and b (0 when either
// side is constant). Panics if lengths differ.
func Correlation(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: correlation length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	ma, sa := MeanStd(a)
	mb, sb := MeanStd(b)
	if sa == 0 || sb == 0 {
		return 0
	}
	var s float64
	for i := range a {
		s += (a[i] - ma) * (b[i] - mb)
	}
	return s / (float64(len(a)) * sa * sb)
}

// CosineSimilarity returns ⟨a,b⟩ / (‖a‖‖b‖), or 0 when either norm is 0.
func CosineSimilarity(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: cosine length mismatch")
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Argmax returns the index of the maximum element (-1 for empty input).
func Argmax(xs []float64) int {
	idx := -1
	best := math.Inf(-1)
	for i, v := range xs {
		if v > best {
			best, idx = v, i
		}
	}
	return idx
}

// TopKIndices returns the indices of the k largest elements in descending
// order of value. k is clipped to len(xs).
func TopKIndices(xs []float64, k int) []int {
	if k > len(xs) {
		k = len(xs)
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	return idx[:k]
}

// Clip returns xs with every element clamped to [lo, hi].
func Clip(xs []float64, lo, hi float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		if v < lo {
			v = lo
		} else if v > hi {
			v = hi
		}
		out[i] = v
	}
	return out
}
