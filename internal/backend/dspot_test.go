package backend_test

import (
	"math"
	"testing"

	"aero/internal/backend"
	"aero/internal/baselines"
	"aero/internal/core"
	"aero/internal/dataset"
	"aero/internal/engine"
	"aero/internal/evt"
)

func dspotTestData() *dataset.Dataset {
	return dataset.SyntheticConfig{
		Name: "dspot", N: 3, TrainLen: 400, TestLen: 300,
		NoiseVariates: 2, AnomalySegments: 1, NoisePct: 3,
		VariableFrac: 0.5, Seed: 17,
	}.Generate()
}

type alarmKey struct {
	v  int
	t  float64
	sc float64
}

// TestDSPOTStageMatchesDirectStep is the satellite identity contract:
// the engine-served DSPOT stage must alarm exactly where feeding the
// same per-variate score sequence through evt.DSPOT.Step directly does —
// same frames, same variates, bit-identical scores. The stage is
// plumbing, not math.
func TestDSPOTStageMatchesDirectStep(t *testing.T) {
	d := dspotTestData()
	spec, ok := backend.Get(baselines.KindFluxEV)
	if !ok {
		t.Fatal("fluxev not registered")
	}
	opts := backend.SmallOptions()
	artifact, err := spec.Train(d.Train, opts)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := backend.DefaultDSPOTConfig()

	// Reference: raw score sequence of the test split through a twin
	// backend, thresholded by evt.DSPOT directly.
	calibTwin, err := spec.Open(artifact)
	if err != nil {
		t.Fatal(err)
	}
	calib, err := baselines.StreamScores(calibTwin, d.Train)
	if err != nil {
		t.Fatal(err)
	}
	scoreTwin, err := spec.Open(artifact)
	if err != nil {
		t.Fatal(err)
	}
	var want []alarmKey
	{
		spots := make([]*evt.DSPOT, d.Test.N())
		for v := range spots {
			spots[v] = evt.NewDSPOT(dcfg.Level, dcfg.Q, dcfg.Depth)
			spots[v].SetPolicy(dcfg.Refit)
			if err := spots[v].Fit(calib[v]); err != nil {
				t.Fatal(err)
			}
		}
		frame := core.Frame{Magnitudes: make([]float64, d.Test.N())}
		for ti := 0; ti < d.Test.Len(); ti++ {
			frame.Time = d.Test.Time[ti]
			for v := 0; v < d.Test.N(); v++ {
				frame.Magnitudes[v] = d.Test.Data[v][ti]
			}
			scores, err := scoreTwin.PushScores(frame)
			if err != nil {
				t.Fatal(err)
			}
			for v, sc := range scores {
				if fired, serr := spots[v].Step(sc); serr != nil {
					t.Fatal(serr)
				} else if fired {
					want = append(want, alarmKey{v: v, t: frame.Time, sc: sc})
				}
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("direct DSPOT produced no alarms; identity test is vacuous")
	}

	// Engine path: the same artifact + calibration split, served through
	// the stage behind the sharded engine.
	stage, err := backend.OpenAdaptive(spec, artifact, dcfg, d.Train)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(engine.Config{Shards: 2, Workers: 2, QueueDepth: 8, BatchSize: 4})
	if _, err := e.SubscribeBackend("dspot", stage); err != nil {
		t.Fatal(err)
	}
	var got []alarmKey
	done := make(chan struct{})
	go func() {
		defer close(done)
		for a := range e.Alarms() {
			got = append(got, alarmKey{v: a.Variate, t: a.Time, sc: a.Score})
		}
	}()
	frame := core.Frame{Magnitudes: make([]float64, d.Test.N())}
	for ti := 0; ti < d.Test.Len(); ti++ {
		frame.Time = d.Test.Time[ti]
		for v := 0; v < d.Test.N(); v++ {
			frame.Magnitudes[v] = d.Test.Data[v][ti]
		}
		if err := e.Ingest("dspot", frame); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	e.Close()
	<-done

	if len(got) != len(want) {
		t.Fatalf("engine stage raised %d alarms, direct DSPOT %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("alarm %d: engine %+v != direct %+v", i, got[i], want[i])
		}
	}
}

// TestDSPOTStageAmortizedAlarmsGolden is the golden alarm-sequence check
// for the amortized refit policy: on the standard replay fixture, serving
// under the default (amortized) schedule must raise exactly the alarms the
// exact per-exceedance schedule raises — the approximation may lag the
// tail parameters by up to Refit.Every exceedances, but not enough to move
// any alarm on real replay traffic.
func TestDSPOTStageAmortizedAlarmsGolden(t *testing.T) {
	d := dspotTestData()
	replay := func(kind string, refit evt.RefitPolicy) []alarmKey {
		spec, ok := backend.Get(kind)
		if !ok {
			t.Fatalf("%s not registered", kind)
		}
		artifact, err := spec.Train(d.Train, backend.SmallOptions())
		if err != nil {
			t.Fatal(err)
		}
		dcfg := backend.DefaultDSPOTConfig()
		dcfg.Refit = refit
		stage, err := backend.OpenAdaptive(spec, artifact, dcfg, d.Train)
		if err != nil {
			t.Fatal(err)
		}
		var out []alarmKey
		frame := core.Frame{Magnitudes: make([]float64, d.Test.N())}
		for ti := 0; ti < d.Test.Len(); ti++ {
			frame.Time = d.Test.Time[ti]
			for v := 0; v < d.Test.N(); v++ {
				frame.Magnitudes[v] = d.Test.Data[v][ti]
			}
			alarms, err := stage.Push(frame)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range alarms {
				out = append(out, alarmKey{v: a.Variate, t: a.Time, sc: a.Score})
			}
		}
		return out
	}
	for _, kind := range []string{baselines.KindSR, baselines.KindTM, baselines.KindFluxEV} {
		t.Run(kind, func(t *testing.T) {
			exact := replay(kind, evt.ExactRefitPolicy())
			if len(exact) == 0 {
				t.Fatal("exact policy produced no alarms; golden test is vacuous")
			}
			amortized := replay(kind, evt.DefaultRefitPolicy())
			if len(amortized) != len(exact) {
				t.Fatalf("amortized policy raised %d alarms, exact %d", len(amortized), len(exact))
			}
			for i := range amortized {
				if amortized[i] != exact[i] {
					t.Fatalf("alarm %d: amortized %+v != exact %+v", i, amortized[i], exact[i])
				}
			}
		})
	}
}

// TestDSPOTStagePushAllocs pins the adaptive stage at the same
// steady-state budget as the raw adapters: a warm benign push (score in
// the below-tail common case) performs zero allocations.
func TestDSPOTStagePushAllocs(t *testing.T) {
	d := dspotTestData()
	for _, kind := range []string{baselines.KindSR, baselines.KindTM, baselines.KindFluxEV} {
		t.Run(kind, func(t *testing.T) {
			spec, _ := backend.Get(kind)
			artifact, err := spec.Train(d.Train, backend.SmallOptions())
			if err != nil {
				t.Fatal(err)
			}
			stage, err := backend.OpenAdaptive(spec, artifact, backend.DefaultDSPOTConfig(), d.Train)
			if err != nil {
				t.Fatal(err)
			}
			// Warm on real data, then hold the last frame's values: a flat
			// continuation scores ~0 on every adapter, the common
			// below-tail DSPOT step.
			frame := core.Frame{Magnitudes: make([]float64, d.Test.N())}
			next := 0
			for ; next < 2*128; next++ {
				frame.Time = float64(next)
				for v := range frame.Magnitudes {
					frame.Magnitudes[v] = d.Test.Data[v][next%d.Test.Len()]
				}
				if _, err := stage.Push(frame); err != nil {
					t.Fatal(err)
				}
			}
			push := func() {
				frame.Time = float64(next)
				next++
				if _, err := stage.Push(frame); err != nil {
					t.Fatal(err)
				}
			}
			// Settle until every adapter's window is past the transition
			// onto the flat continuation (scores may cross the DSPOT tail
			// while real data drains out of the window).
			for i := 0; i < 150; i++ {
				push()
			}
			if allocs := testing.AllocsPerRun(64, push); allocs != 0 {
				t.Fatalf("steady-state %s+dspot Push allocates %.1f objects/frame, want 0", kind, allocs)
			}
		})
	}
}

// TestDSPOTStageSnapshotRestore pins warm-restart bit-identity of the
// composition: inner window AND adaptive tail state round-trip, so the
// resumed alarm stream equals the uninterrupted one exactly.
func TestDSPOTStageSnapshotRestore(t *testing.T) {
	d := dspotTestData()
	spec, _ := backend.Get(baselines.KindFluxEV)
	artifact, err := spec.Train(d.Train, backend.SmallOptions())
	if err != nil {
		t.Fatal(err)
	}
	dcfg := backend.DefaultDSPOTConfig()
	mk := func() *backend.DSPOTStage {
		s, err := backend.OpenAdaptive(spec, artifact, dcfg, d.Train)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	replay := func(s *backend.DSPOTStage, lo, hi int) []alarmKey {
		var out []alarmKey
		frame := core.Frame{Magnitudes: make([]float64, d.Test.N())}
		for ti := lo; ti < hi; ti++ {
			frame.Time = d.Test.Time[ti]
			for v := 0; v < d.Test.N(); v++ {
				frame.Magnitudes[v] = d.Test.Data[v][ti]
			}
			alarms, err := s.Push(frame)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range alarms {
				out = append(out, alarmKey{v: a.Variate, t: a.Time, sc: a.Score})
			}
		}
		return out
	}

	want := replay(mk(), 0, d.Test.Len())
	if len(want) == 0 {
		t.Fatal("no alarms; restore identity is vacuous")
	}

	cut := d.Test.Len() / 2
	first := mk()
	got := replay(first, 0, cut)
	blob, err := first.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	second := mk()
	if err := second.RestoreState(blob[:len(blob)-3]); err == nil {
		t.Fatal("truncated state accepted")
	}
	if err := second.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	got = append(got, replay(second, cut, d.Test.Len())...)

	if len(got) != len(want) {
		t.Fatalf("restart produced %d alarms, uninterrupted run %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("alarm %d: restart %+v != uninterrupted %+v", i, got[i], want[i])
		}
	}
}

// TestDSPOTStageThresholdAdapts checks the stage's reason to exist: its
// effective threshold moves with the stream (drift correction), unlike
// the frozen static calibration underneath.
func TestDSPOTStageThresholdAdapts(t *testing.T) {
	d := dspotTestData()
	spec, _ := backend.Get(baselines.KindFluxEV)
	artifact, err := spec.Train(d.Train, backend.SmallOptions())
	if err != nil {
		t.Fatal(err)
	}
	stage, err := backend.OpenAdaptive(spec, artifact, backend.DefaultDSPOTConfig(), d.Train)
	if err != nil {
		t.Fatal(err)
	}
	before := stage.Threshold()
	if math.IsNaN(before) || math.IsInf(before, 0) {
		t.Fatalf("unusable initial threshold %v", before)
	}
	static := stage.Inner().Threshold()
	frame := core.Frame{Magnitudes: make([]float64, d.Test.N())}
	moved := false
	for ti := 0; ti < d.Test.Len(); ti++ {
		frame.Time = d.Test.Time[ti]
		for v := 0; v < d.Test.N(); v++ {
			frame.Magnitudes[v] = d.Test.Data[v][ti]
		}
		if _, err := stage.Push(frame); err != nil {
			t.Fatal(err)
		}
		if stage.Threshold() != before {
			moved = true
		}
		if stage.Inner().Threshold() != static {
			t.Fatal("static threshold moved")
		}
	}
	if !moved {
		t.Fatal("adaptive threshold never moved over the whole feed")
	}
}

// TestTrainOpenRoundTrip covers the spec registry surface for every
// kind: train → open → serve a few frames.
func TestTrainOpenRoundTrip(t *testing.T) {
	d := dspotTestData()
	kinds := backend.Kinds()
	if len(kinds) < 4 {
		t.Fatalf("expected >= 4 registered kinds, have %v", kinds)
	}
	for _, kind := range kinds {
		if kind == core.KindAERO {
			continue // covered by the engine identity tests (training is slow)
		}
		artifact, err := backend.Train(kind, d.Train, backend.SmallOptions())
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		b, err := backend.Open(kind, artifact)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if b.Kind() != kind || b.Variates() != d.Train.N() {
			t.Fatalf("%s: wrong identity %s/%d", kind, b.Kind(), b.Variates())
		}
	}
	if _, err := backend.Train("nope", d.Train, backend.SmallOptions()); err == nil {
		t.Fatal("unknown kind trained")
	}
	if _, err := backend.Open("nope", nil); err == nil {
		t.Fatal("unknown kind opened")
	}
}
