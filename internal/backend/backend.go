// Package backend is the kind registry of the streaming pipeline: it
// names every detector that can serve behind the engine (the AERO model
// plus the streaming baseline adapters), and pairs each kind with the
// two operations the lifecycle needs — training an artifact from a
// series and opening a serving core.StreamBackend from an artifact.
//
// The registry is what makes the pipeline pluggable end-to-end: the
// lifecycle registry tags every published entry with its backend kind,
// the retrainer refits through the kind's Trainer, and cmd/aeroserve's
// -backend flag selects the serving detector by name. The DSPOT stage
// (dspot.go) composes over any registered kind.
package backend

import (
	"fmt"
	"sort"
	"sync"

	"aero/internal/baselines"
	"aero/internal/core"
	"aero/internal/dataset"
)

// Options carries the per-kind training/calibration knobs. Each kind
// reads only its own section.
type Options struct {
	// AERO is the model configuration used by the "aero" kind.
	AERO core.Config
	// Stream parameterizes the streaming baseline adapters (sr, tm,
	// fluxev), including the POT calibration of their static thresholds.
	Stream baselines.StreamConfig
}

// DefaultOptions pairs the paper's AERO hyperparameters with the
// reference streaming-adapter settings.
func DefaultOptions() Options {
	return Options{AERO: core.DefaultConfig(), Stream: baselines.DefaultStreamConfig()}
}

// SmallOptions is the CPU-friendly profile (tests, laptops, CI).
func SmallOptions() Options {
	return Options{AERO: core.SmallConfig(), Stream: baselines.DefaultStreamConfig()}
}

// Spec describes one registered backend kind.
type Spec struct {
	// Kind is the registry key and the tag stored in lifecycle manifests.
	Kind string
	// Streams documents why the kind can (or cannot) keep up at survey
	// rates; shown by CLI listings.
	Describe string
	// Train fits the backend on an unlabelled training series and
	// returns its published artifact (weights + calibration for AERO,
	// hyperparameters + POT threshold for the adapters).
	Train func(train *dataset.Series, opts Options) ([]byte, error)
	// Open constructs a cold serving backend from a published artifact.
	Open func(artifact []byte) (core.StreamBackend, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Spec{}
)

// Register adds a backend kind; duplicate or incomplete specs panic
// (registration is an init-time programming contract).
func Register(s Spec) {
	if s.Kind == "" || s.Train == nil || s.Open == nil {
		panic("backend: incomplete spec")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Kind]; dup {
		panic(fmt.Sprintf("backend: duplicate kind %q", s.Kind))
	}
	registry[s.Kind] = s
}

// Get returns the spec registered for kind.
func Get(kind string) (Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[kind]
	return s, ok
}

// Kinds lists every registered backend kind, sorted.
func Kinds() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Train fits the named kind on the training series and returns its
// artifact.
func Train(kind string, train *dataset.Series, opts Options) ([]byte, error) {
	s, ok := Get(kind)
	if !ok {
		return nil, fmt.Errorf("backend: unknown kind %q (have %v)", kind, Kinds())
	}
	return s.Train(train, opts)
}

// Open constructs a cold serving backend of the named kind from its
// artifact.
func Open(kind string, artifact []byte) (core.StreamBackend, error) {
	s, ok := Get(kind)
	if !ok {
		return nil, fmt.Errorf("backend: unknown kind %q (have %v)", kind, Kinds())
	}
	return s.Open(artifact)
}
