package backend

import (
	"encoding/json"
	"fmt"

	"aero/internal/baselines"
	"aero/internal/core"
	"aero/internal/dataset"
	"aero/internal/evt"
	"aero/internal/tensor"
)

// DSPOTConfig parameterizes the adaptive-alarming stage: the POT level/q
// of the streaming tail fit (paper §IV-B protocol), the trailing
// drift-window depth of Siffer et al.'s DSPOT (§4.4), and the tail-model
// refit schedule. A zero-value Refit is the exact policy (a full Grimshaw
// fit per exceedance, bit-identical to the stage before amortized refits).
type DSPOTConfig struct {
	Level, Q float64
	Depth    int
	Refit    evt.RefitPolicy
}

// DefaultDSPOTConfig mirrors the paper's POT protocol with a 20-frame
// drift window and the amortized refit schedule (warm refits every 128
// exceedances or on a 20% tail-mean drift, bounded excess ring) — the
// serving default that keeps adaptive alarming within a small factor of
// the bare backend's push.
func DefaultDSPOTConfig() DSPOTConfig {
	return DSPOTConfig{Level: 0.99, Q: 1e-3, Depth: 20, Refit: evt.DefaultRefitPolicy()}
}

// DSPOTStage wraps ANY StreamBackend and replaces its static fitted
// threshold with per-variate streaming DSPOT: each push scores through
// the inner backend, then every raw score is re-thresholded by a
// drift-corrected EVT tail model that keeps adapting online. This is how
// the paper's thresholding protocol behaves in the streaming pipeline —
// the engine alarms on drift-corrected extreme-value tails instead of a
// quantile frozen at train time.
//
// The stage must come *after* scoring and before alarming, which is why
// it wraps the backend rather than filtering the engine's alarm channel:
// alarms derived from the inner backend's static threshold would already
// have discarded the sub-threshold scores DSPOT needs to maintain its
// tail model.
type DSPOTStage struct {
	inner core.StreamBackend
	cfg   DSPOTConfig
	spots []*evt.DSPOT
	fired []bool // per-variate verdicts of the newest push, reused

	// clock, when set via SetStageClock, stamps the boundary between the
	// inner score and the DSPOT steps of each push so the engine's
	// metrics layer can split "score" from "tail" latency. splitNs is
	// read by the same goroutine that pushed (behind the subscription
	// lock), so no atomics are needed.
	clock   func() int64
	splitNs int64
}

// NewDSPOTStage wraps inner with per-variate DSPOT alarmers calibrated
// on the given score sequences (one per variate, as produced by
// baselines.StreamScores over a calibration split). Every sequence must
// exceed Depth+8 points, the DSPOT calibration minimum.
func NewDSPOTStage(inner core.StreamBackend, cfg DSPOTConfig, calib [][]float64) (*DSPOTStage, error) {
	n := inner.Variates()
	if len(calib) != n {
		return nil, fmt.Errorf("backend: dspot calibration has %d variates, backend %d", len(calib), n)
	}
	if cfg.Depth < 1 {
		cfg.Depth = 1
	}
	d := &DSPOTStage{
		inner: inner,
		cfg:   cfg,
		spots: make([]*evt.DSPOT, n),
		fired: make([]bool, n),
	}
	for v := 0; v < n; v++ {
		d.spots[v] = evt.NewDSPOT(cfg.Level, cfg.Q, cfg.Depth)
		d.spots[v].SetPolicy(cfg.Refit)
		if err := d.spots[v].Fit(calib[v]); err != nil {
			return nil, fmt.Errorf("backend: dspot variate %d: %w", v, err)
		}
	}
	return d, nil
}

// OpenAdaptive opens a serving backend of the given kind wrapped in a
// freshly calibrated DSPOT stage: a scratch instance replays the
// calibration series to produce the per-variate score sequences, then
// the serving instance starts cold (its window warms on the live feed,
// while the tail models start calibrated).
func OpenAdaptive(spec Spec, artifact []byte, cfg DSPOTConfig, calib *dataset.Series) (*DSPOTStage, error) {
	scratch, err := spec.Open(artifact)
	if err != nil {
		return nil, err
	}
	scores, err := baselines.StreamScores(scratch, calib)
	if err != nil {
		return nil, fmt.Errorf("backend: dspot calibration replay: %w", err)
	}
	inner, err := spec.Open(artifact)
	if err != nil {
		return nil, err
	}
	return NewDSPOTStage(inner, cfg, scores)
}

// Kind implements core.StreamBackend; the tag marks the composition.
func (d *DSPOTStage) Kind() string { return d.inner.Kind() + "+dspot" }

// Inner returns the wrapped backend.
func (d *DSPOTStage) Inner() core.StreamBackend { return d.inner }

// Variates implements core.StreamBackend.
func (d *DSPOTStage) Variates() int { return d.inner.Variates() }

// Ready implements core.StreamBackend.
func (d *DSPOTStage) Ready() bool { return d.inner.Ready() }

// LastTime implements core.StreamBackend.
func (d *DSPOTStage) LastTime() (float64, bool) { return d.inner.LastTime() }

// Threshold reports the mean effective alarm level across variates
// (drift baseline + residual-space tail threshold); unlike a static
// backend's, it moves as the stage adapts.
func (d *DSPOTStage) Threshold() float64 {
	var sum float64
	for _, sp := range d.spots {
		sum += sp.Baseline() + sp.Threshold()
	}
	return sum / float64(len(d.spots))
}

// RefitStats sums the per-variate tail models' maintenance counters —
// how many exceedances fed the rings and how many paid for a Grimshaw
// fit (warm vs full grid scan). Call it from the same goroutine that
// pushes, or behind the engine's subscription lock
// (engine.Subscription.RefitStats does the latter).
func (d *DSPOTStage) RefitStats() evt.RefitStats {
	var total evt.RefitStats
	for _, sp := range d.spots {
		total = total.Add(sp.RefitStats())
	}
	return total
}

// PushScores implements core.StreamBackend: the inner backend's raw
// scores pass through unchanged, while each one steps its variate's
// DSPOT (the verdicts back the next Push's alarms).
func (d *DSPOTStage) PushScores(f core.Frame) ([]float64, error) {
	scores, err := d.inner.PushScores(f)
	if d.clock != nil {
		d.splitNs = d.clock()
	}
	if err != nil || scores == nil {
		return nil, err
	}
	for v, sc := range scores {
		fired, serr := d.spots[v].Step(sc)
		if serr != nil {
			return nil, fmt.Errorf("backend: dspot variate %d: %w", v, serr)
		}
		d.fired[v] = fired
	}
	return scores, nil
}

// Push implements core.StreamBackend, alarming on the DSPOT verdicts
// instead of the inner backend's static threshold.
func (d *DSPOTStage) Push(f core.Frame) ([]core.Alarm, error) {
	scores, err := d.PushScores(f)
	if err != nil || scores == nil {
		return nil, err
	}
	var alarms []core.Alarm
	for v, sc := range scores {
		if d.fired[v] {
			alarms = append(alarms, core.Alarm{Variate: v, Time: f.Time, Score: sc})
		}
	}
	return alarms, nil
}

// SwapArtifact delegates to the inner backend; the adaptive tail state
// is deliberately kept across swaps — it tracks the *score stream*, which
// a same-kind retrain perturbs far less than a cold refit would, and it
// keeps adapting online either way.
func (d *DSPOTStage) SwapArtifact(artifact []byte) error { return d.inner.SwapArtifact(artifact) }

// Swap passes an in-memory model swap through to the inner backend when
// it accepts one (AERO), so wrapped tenants keep the shared-weights fast
// path — no per-tenant artifact re-parse under the subscription lock.
// The adaptive tail state is kept, as with SwapArtifact.
func (d *DSPOTStage) Swap(m *core.Model) error {
	sw, ok := d.inner.(interface{ Swap(m *core.Model) error })
	if !ok {
		return fmt.Errorf("backend: %s does not accept a model swap", d.inner.Kind())
	}
	return sw.Swap(m)
}

// InvalidateIncremental passes a host-side cache invalidation through to
// the inner backend when it reuses activations across frames (AERO's
// incremental streaming forward); a no-op for backends without caches.
func (d *DSPOTStage) InvalidateIncremental() {
	if inv, ok := d.inner.(core.IncrementalInvalidator); ok {
		inv.InvalidateIncremental()
	}
}

// SetStageClock installs (or, with nil, removes) the monotonic clock the
// stage uses to stamp the inner-score → tail-step boundary of each push.
// The engine sets it at subscribe time only when metrics are enabled, so
// an uninstrumented stage pays a single nil-check per push.
func (d *DSPOTStage) SetStageClock(now func() int64) { d.clock = now }

// LastSplitNanos returns the stamp taken between the newest push's inner
// score and its DSPOT steps, or 0 when no clock is installed. Valid only
// behind the same lock that serialized the push.
func (d *DSPOTStage) LastSplitNanos() int64 { return d.splitNs }

// IncrementalStats passes through the inner backend's incremental-path
// counters when it maintains them (AERO's streaming forward), so the
// engine's frame tracer can classify benign vs refresh pushes for
// wrapped tenants too. Backends without the capability report zeros.
func (d *DSPOTStage) IncrementalStats() core.IncrementalStats {
	if st, ok := d.inner.(interface{ IncrementalStats() core.IncrementalStats }); ok {
		return st.IncrementalStats()
	}
	return core.IncrementalStats{}
}

// GraphSnapshot passes through the inner backend's monitoring
// capability, when present.
func (d *DSPOTStage) GraphSnapshot() (*tensor.Dense, error) {
	if g, ok := d.inner.(core.GraphSnapshotter); ok {
		return g.GraphSnapshot()
	}
	return nil, fmt.Errorf("backend: %s does not expose a graph snapshot", d.inner.Kind())
}

const dspotSnapshotVersion = 1

// dspotSnapshot checkpoints the composition: the inner backend's own
// snapshot plus every variate's adaptive tail state.
type dspotSnapshot struct {
	Kind    string           `json:"kind"`
	Version int              `json:"version"`
	Inner   []byte           `json:"inner"`
	Spots   []evt.DSPOTState `json:"spots"`
}

// SnapshotState implements core.StreamBackend.
func (d *DSPOTStage) SnapshotState() ([]byte, error) {
	inner, err := d.inner.SnapshotState()
	if err != nil {
		return nil, err
	}
	st := dspotSnapshot{Kind: d.Kind(), Version: dspotSnapshotVersion, Inner: inner,
		Spots: make([]evt.DSPOTState, len(d.spots))}
	for v, sp := range d.spots {
		st.Spots[v] = sp.State()
	}
	return json.Marshal(st)
}

// RestoreState implements core.StreamBackend. The blob is validated —
// including against the inner backend, which itself validates before
// mutating — and the tail states are committed only after the inner
// restore succeeds.
func (d *DSPOTStage) RestoreState(blob []byte) error {
	var st dspotSnapshot
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("backend: parse dspot state: %w", err)
	}
	if st.Kind != d.Kind() {
		return fmt.Errorf("backend: state kind %q, want %q", st.Kind, d.Kind())
	}
	if st.Version != dspotSnapshotVersion {
		return fmt.Errorf("backend: unsupported dspot state version %d", st.Version)
	}
	if len(st.Spots) != len(d.spots) {
		return fmt.Errorf("backend: state has %d tail models, want %d", len(st.Spots), len(d.spots))
	}
	fresh := make([]*evt.DSPOT, len(d.spots))
	for v := range fresh {
		fresh[v] = evt.NewDSPOT(d.cfg.Level, d.cfg.Q, d.cfg.Depth)
		fresh[v].SetPolicy(d.cfg.Refit)
		if err := fresh[v].SetState(st.Spots[v]); err != nil {
			return fmt.Errorf("backend: dspot state variate %d: %w", v, err)
		}
	}
	if err := d.inner.RestoreState(st.Inner); err != nil {
		return err
	}
	copy(d.spots, fresh)
	return nil
}

var _ core.StreamBackend = (*DSPOTStage)(nil)
var _ core.IncrementalInvalidator = (*DSPOTStage)(nil)
