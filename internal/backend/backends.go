package backend

import (
	"aero/internal/baselines"
	"aero/internal/core"
	"aero/internal/dataset"
)

// The built-in kinds. AERO is the paper's two-stage model; sr/tm/fluxev
// are the cheap univariate baselines whose per-point cost is O(window),
// the only ones that can keep up at survey rates — the deep baselines
// (Donut, OmniAnomaly, TranAD, ...) re-run a full network forward per
// window and remain batch-only in the experiment harness.
func init() {
	Register(Spec{
		Kind:     core.KindAERO,
		Describe: "two-stage AERO model (temporal Transformer + window-wise graph)",
		Train: func(train *dataset.Series, opts Options) ([]byte, error) {
			m, err := core.New(opts.AERO, train.N())
			if err != nil {
				return nil, err
			}
			if err := m.Fit(train); err != nil {
				return nil, err
			}
			return m.MarshalBytes()
		},
		Open: func(artifact []byte) (core.StreamBackend, error) {
			m, err := core.LoadBytes(artifact)
			if err != nil {
				return nil, err
			}
			// Single-slot: engine hosts supply cross-tenant parallelism.
			return core.NewStreamDetectorWorkers(m, 1)
		},
	})
	Register(Spec{
		Kind:     baselines.KindSR,
		Describe: "spectral residual saliency over a sliding power-of-two window",
		Train: trainStream(func(n int, cfg baselines.StreamConfig) (baselines.CalibratableStream, error) {
			return baselines.NewStreamSR(n, cfg)
		}),
		Open: func(a []byte) (core.StreamBackend, error) { return baselines.OpenStreamSR(a) },
	})
	Register(Spec{
		Kind:     baselines.KindTM,
		Describe: "template matching against the catalogued event library",
		Train: trainStream(func(n int, cfg baselines.StreamConfig) (baselines.CalibratableStream, error) {
			return baselines.NewStreamTM(n, cfg)
		}),
		Open: func(a []byte) (core.StreamBackend, error) { return baselines.OpenStreamTM(a) },
	})
	Register(Spec{
		Kind:     baselines.KindFluxEV,
		Describe: "FluxEV two-step fluctuation extraction over an EWMA forecast",
		Train: trainStream(func(n int, cfg baselines.StreamConfig) (baselines.CalibratableStream, error) {
			return baselines.NewStreamFluxEV(n, cfg)
		}),
		Open: func(a []byte) (core.StreamBackend, error) { return baselines.OpenStreamFluxEV(a) },
	})
}

// trainStream builds the shared adapter training flow: construct, replay
// the training series to calibrate the POT threshold, serialize.
func trainStream(mk func(n int, cfg baselines.StreamConfig) (baselines.CalibratableStream, error)) func(*dataset.Series, Options) ([]byte, error) {
	return func(train *dataset.Series, opts Options) ([]byte, error) {
		b, err := mk(train.N(), opts.Stream)
		if err != nil {
			return nil, err
		}
		if err := baselines.CalibrateStream(b, train, opts.Stream.Level, opts.Stream.Q); err != nil {
			return nil, err
		}
		return b.MarshalArtifact()
	}
}
