package backend_test

import (
	"testing"

	"aero/internal/backend"
	"aero/internal/core"
)

// plainInner is a minimal StreamBackend without an incremental path.
type plainInner struct {
	n    int
	last float64
	seen bool
}

func (b *plainInner) Kind() string                          { return "plain" }
func (b *plainInner) Variates() int                         { return b.n }
func (b *plainInner) Ready() bool                           { return true }
func (b *plainInner) Threshold() float64                    { return 1 }
func (b *plainInner) LastTime() (float64, bool)             { return b.last, b.seen }
func (b *plainInner) SwapArtifact([]byte) error             { return nil }
func (b *plainInner) SnapshotState() ([]byte, error)        { return nil, nil }
func (b *plainInner) RestoreState([]byte) error             { return nil }
func (b *plainInner) Push(core.Frame) ([]core.Alarm, error) { return nil, nil }
func (b *plainInner) PushScores(f core.Frame) ([]float64, error) {
	b.last, b.seen = f.Time, true
	return []float64{0.1}, nil
}

// cachingInner additionally records incremental-cache invalidations.
type cachingInner struct {
	plainInner
	invalidations int
}

func (b *cachingInner) InvalidateIncremental() { b.invalidations++ }

func calibScores(n, frames int) [][]float64 {
	calib := make([][]float64, n)
	for v := range calib {
		calib[v] = make([]float64, frames)
		for i := range calib[v] {
			calib[v][i] = 0.01 * float64(i%97)
		}
	}
	return calib
}

// TestDSPOTStageDelegatesInvalidation pins the wrapping-stage contract of
// core.IncrementalInvalidator: a host invalidating through the DSPOT stage
// must reach the inner backend's caches, and wrapping a backend without an
// incremental path must be a safe no-op.
func TestDSPOTStageDelegatesInvalidation(t *testing.T) {
	inner := &cachingInner{plainInner: plainInner{n: 1}}
	stage, err := backend.NewDSPOTStage(inner, backend.DefaultDSPOTConfig(), calibScores(1, 200))
	if err != nil {
		t.Fatal(err)
	}
	var inv core.IncrementalInvalidator = stage
	inv.InvalidateIncremental()
	inv.InvalidateIncremental()
	if inner.invalidations != 2 {
		t.Fatalf("inner backend saw %d invalidations, want 2", inner.invalidations)
	}

	plain := &plainInner{n: 1}
	noCache, err := backend.NewDSPOTStage(plain, backend.DefaultDSPOTConfig(), calibScores(1, 200))
	if err != nil {
		t.Fatal(err)
	}
	noCache.InvalidateIncremental() // must not panic
}
