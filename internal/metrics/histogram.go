package metrics

import (
	"math/bits"
	"sync/atomic"
)

// Histogram is a fixed-bucket log-linear (HDR-style) latency histogram.
// Values are nanoseconds. Each power-of-two octave is split into 16
// linear sub-buckets, so the relative error of any recorded value is at
// most 1/16 = 6.25%. The bucket array is fixed at construction: Record
// is three atomic adds and never allocates; Snapshot copies the buckets
// under no lock (counts are monotone, so a torn read only smears samples
// between adjacent snapshots, never loses them).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

const (
	// histSubBits fixes 2^histSubBits linear sub-buckets per octave.
	histSubBits  = 4
	histSubCount = 1 << histSubBits // 16

	// histMaxExp is the top octave: values at or above 2^(histMaxExp+1)
	// nanoseconds (~9.8 weeks) clamp into the last bucket.
	histMaxExp = 47

	// histBuckets = 16 exact buckets for v < 16, plus 16 sub-buckets for
	// each octave exp = 4..47: 16 + 44*16 = 720 uint64s ≈ 5.8 KiB.
	histBuckets = histSubCount + (histMaxExp-histSubBits+1)*histSubCount
)

// NewHistogram returns a standalone histogram not attached to any
// registry (e.g. the aeroload client-side send→ack latency recorder).
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSubCount {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	if exp > histMaxExp {
		return histBuckets - 1
	}
	sub := int(v>>uint(exp-histSubBits)) - histSubCount
	return histSubCount + (exp-histSubBits)*histSubCount + sub
}

// bucketLower returns the smallest value mapping to bucket i.
func bucketLower(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	g := (i - histSubCount) / histSubCount
	sub := (i - histSubCount) % histSubCount
	exp := uint(g + histSubBits)
	return int64(1)<<exp + int64(sub)<<(exp-histSubBits)
}

// bucketWidth returns the width of bucket i.
func bucketWidth(i int) int64 {
	if i < histSubCount {
		return 1
	}
	g := (i - histSubCount) / histSubCount
	return int64(1) << uint(g)
}

// Record adds one nanosecond observation. Nil-safe and allocation-free.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of recorded observations. Nil-safe.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   uint64
	Sum     int64
	buckets [histBuckets]uint64
}

// Snapshot copies the histogram for quantile queries and rendering.
// Nil-safe: a nil histogram yields an empty snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	// Load count first: any sample fully recorded before this load is in
	// its bucket already (bucket add precedes count add), so the walk in
	// Quantile never runs out of bucket mass before reaching rank Count.
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile returns the value at quantile q in [0, 1] as the midpoint of
// the containing bucket (relative error ≤ 6.25%). Zero when empty.
func (s *HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count-1))
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += s.buckets[i]
		if seen > rank {
			return bucketLower(i) + bucketWidth(i)/2
		}
	}
	return bucketLower(histBuckets-1) + bucketWidth(histBuckets-1)/2
}

// Mean returns the exact mean of recorded values (sum/count), zero when
// empty.
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
