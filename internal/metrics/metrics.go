package metrics

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotone cumulative counter. All methods are nil-safe and
// allocation-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer instantaneous value. Nil-safe, allocation-free.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// metricKind discriminates registry entries for exposition.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

// metric is one registered series: a base name, a rendered label suffix
// (`{k="v",...}` or empty) and exactly one live instrument.
type metric struct {
	name   string // base name, aero_* snake_case
	labels string // rendered label block, "" when unlabeled
	help   string
	kind   metricKind
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() float64
}

func (m *metric) key() string { return m.name + m.labels }

// Registry holds all registered series, sharded by series-key hash so
// concurrent registrations and scrapes do not serialize on one lock.
// Registration is the slow path (startup/subscribe time); the hot path
// only touches the returned instrument pointers.
type Registry struct {
	shards [registryShards]regShard
}

const registryShards = 16

type regShard struct {
	mu sync.RWMutex
	m  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		r.shards[i].m = make(map[string]*metric)
	}
	return r
}

// ValidName reports whether name is a valid metric name for this stack:
// `aero_`-prefixed snake_case — lowercase letters, digits and single
// underscores, no leading/trailing/doubled underscore after the prefix.
func ValidName(name string) bool {
	const prefix = "aero_"
	if len(name) <= len(prefix) || name[:len(prefix)] != prefix {
		return false
	}
	prev := byte('_') // prefix ends with '_': next rune must not be '_'
	for i := len(prefix); i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			prev = c
		case c == '_':
			if prev == '_' {
				return false
			}
			prev = c
		default:
			return false
		}
	}
	return prev != '_'
}

// renderLabels turns k,v pairs into a deterministic `{k="v",...}` block.
// Pairs are sorted by key so the same label set always produces the same
// series key regardless of call-site ordering.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("metrics: odd label key/value list")
	}
	type pair struct{ k, v string }
	ps := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ps = append(ps, pair{kv[i], kv[i+1]})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].k < ps[j].k })
	out := "{"
	for i, p := range ps {
		if i > 0 {
			out += ","
		}
		out += p.k + `="` + escapeLabel(p.v) + `"`
	}
	return out + "}"
}

func escapeLabel(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

func shardFor(key string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	return h.Sum32() % registryShards
}

// register installs a series or returns the existing one. It panics on
// an invalid name or when the key is already registered with a different
// kind — both are programmer errors caught at wiring time, never during
// steady-state serving.
func (r *Registry) register(name, help string, kind metricKind, labels []string) *metric {
	if !ValidName(name) {
		panic("metrics: invalid metric name " + name)
	}
	m := &metric{name: name, labels: renderLabels(labels), help: help, kind: kind}
	sh := &r.shards[shardFor(m.key())]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if prev, ok := sh.m[m.key()]; ok {
		if prev.kind != kind {
			panic(fmt.Sprintf("metrics: %s re-registered as a different kind", m.key()))
		}
		return prev
	}
	switch kind {
	case kindCounter:
		m.ctr = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	case kindHistogram:
		m.hist = &Histogram{}
	}
	sh.m[m.key()] = m
	return m
}

// Counter registers (or fetches) a counter series. labels are k,v pairs.
// Nil-safe: a nil registry returns a nil instrument, which is itself
// nil-safe, so disabled stacks wire through without branches.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindCounter, labels).ctr
}

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindGauge, labels).gauge
}

// Histogram registers (or fetches) a latency histogram series.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindHistogram, labels).hist
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — used to surface counters the hot path already maintains
// (shard stats, refit totals) without double-counting writes.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	r.register(name, help, kindCounterFunc, labels).fn = fn
}

// GaugeFunc registers a gauge series computed at scrape time (queue
// depth, headroom, tenant health states).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	r.register(name, help, kindGaugeFunc, labels).fn = fn
}

// FindHistogram returns a previously registered histogram series, or nil
// when absent. Callers like aeroserve use it to read quantiles for
// series the engine registered internally.
func (r *Registry) FindHistogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	key := name + renderLabels(labels)
	sh := &r.shards[shardFor(key)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if m, ok := sh.m[key]; ok && m.kind == kindHistogram {
		return m.hist
	}
	return nil
}

// SeriesNames returns every registered series key (name plus rendered
// labels), sorted. The metric-name lint test walks this.
func (r *Registry) SeriesNames() []string {
	if r == nil {
		return nil
	}
	var out []string
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for k := range sh.m {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// snapshotMetrics returns all series sorted by key for exposition.
func (r *Registry) snapshotMetrics() []*metric {
	var out []*metric
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for _, m := range sh.m {
			out = append(out, m)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}
