package metrics

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexRoundTrip(t *testing.T) {
	// Every bucket's lower bound must map back to that bucket, and
	// bucket boundaries must be contiguous and monotone.
	for i := 0; i < histBuckets; i++ {
		lo := bucketLower(i)
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(bucketLower(%d)=%d) = %d", i, lo, got)
		}
		hi := lo + bucketWidth(i) - 1
		if got := bucketIndex(hi); got != i {
			t.Fatalf("bucketIndex(upper of %d = %d) = %d", i, hi, got)
		}
		if i+1 < histBuckets && bucketLower(i+1) != lo+bucketWidth(i) {
			t.Fatalf("gap after bucket %d: next lower %d, want %d",
				i, bucketLower(i+1), lo+bucketWidth(i))
		}
	}
	if bucketIndex(-5) != 0 {
		t.Fatalf("negative values must clamp to bucket 0")
	}
	if bucketIndex(math.MaxInt64) != histBuckets-1 {
		t.Fatalf("huge values must clamp to the last bucket")
	}
}

func TestHistogramErrorBound(t *testing.T) {
	// Recorded values must be recoverable from their bucket midpoint
	// within the documented 6.25% relative error bound.
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	for i := 0; i < 10000; i++ {
		v := int64(rng.Intn(1 << 40))
		h.Record(v)
		idx := bucketIndex(v)
		mid := bucketLower(idx) + bucketWidth(idx)/2
		if v >= 16 {
			rel := math.Abs(float64(mid-v)) / float64(v)
			if rel > 1.0/16 {
				t.Fatalf("value %d: midpoint %d relative error %.4f > 6.25%%", v, mid, rel)
			}
		} else if mid != v {
			t.Fatalf("small value %d must be exact, got midpoint %d", v, mid)
		}
	}
	if h.Count() != 10000 {
		t.Fatalf("count = %d, want 10000", h.Count())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// Uniform 1..100000 ns: p50 ≈ 50000, p99 ≈ 99000.
	for v := int64(1); v <= 100000; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	checks := []struct {
		q    float64
		want float64
	}{{0.5, 50000}, {0.9, 90000}, {0.99, 99000}, {0.999, 99900}}
	for _, c := range checks {
		got := float64(s.Quantile(c.q))
		if math.Abs(got-c.want)/c.want > 1.0/16+0.01 {
			t.Fatalf("q%.3f = %.0f, want ≈ %.0f", c.q, got, c.want)
		}
	}
	if s.Mean() < 49000 || s.Mean() > 51000 {
		t.Fatalf("mean = %.1f, want ≈ 50000", s.Mean())
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatalf("empty snapshot must report zeros")
	}
}

func TestHistogramRecordAllocs(t *testing.T) {
	h := NewHistogram()
	v := int64(12345)
	if n := testing.AllocsPerRun(1000, func() { h.Record(v); v++ }); n != 0 {
		t.Fatalf("Record allocates %.1f/op, want 0", n)
	}
	var nilH *Histogram
	if n := testing.AllocsPerRun(100, func() { nilH.Record(5) }); n != 0 {
		t.Fatalf("nil Record allocates %.1f/op, want 0", n)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(int64(rng.Intn(1 << 30)))
			}
		}(int64(w))
	}
	done := make(chan struct{})
	go func() { // concurrent snapshots must not race or lose structure
		for {
			select {
			case <-done:
				return
			default:
				s := h.Snapshot()
				s.Quantile(0.99)
			}
		}
	}()
	wg.Wait()
	close(done)
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
}

func TestValidName(t *testing.T) {
	good := []string{"aero_engine_frames_total", "aero_x", "aero_p99_seconds"}
	bad := []string{"", "aero_", "engine_frames", "aero_Engine", "aero__x",
		"aero_x_", "aero_x-y", "aero_x.y", "Aero_x"}
	for _, n := range good {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	for _, n := range bad {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}
}

func TestRegistryRegisterAndDedupe(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("aero_test_total", "help")
	c2 := r.Counter("aero_test_total", "help")
	if c1 != c2 {
		t.Fatalf("re-registration must return the same counter")
	}
	h1 := r.Histogram("aero_test_seconds", "h", "kind", "a")
	h2 := r.Histogram("aero_test_seconds", "h", "kind", "b")
	if h1 == h2 {
		t.Fatalf("distinct label sets must be distinct series")
	}
	if got := r.FindHistogram("aero_test_seconds", "kind", "a"); got != h1 {
		t.Fatalf("FindHistogram returned wrong series")
	}
	if got := r.FindHistogram("aero_test_seconds", "kind", "c"); got != nil {
		t.Fatalf("FindHistogram must return nil for unknown series")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("kind mismatch must panic")
			}
		}()
		r.Gauge("aero_test_total", "help")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("invalid name must panic")
			}
		}()
		r.Counter("bad_name", "help")
	}()
	names := r.SeriesNames()
	want := []string{"aero_test_seconds{kind=\"a\"}", "aero_test_seconds{kind=\"b\"}", "aero_test_total"}
	if len(names) != len(want) {
		t.Fatalf("SeriesNames = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("SeriesNames[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("aero_x_total", "h")
	c.Inc()
	g := r.Gauge("aero_x", "h")
	g.Set(5)
	h := r.Histogram("aero_x_seconds", "h")
	h.Record(10)
	r.CounterFunc("aero_f_total", "h", func() float64 { return 1 })
	r.GaugeFunc("aero_f", "h", func() float64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("nil-registry instruments must be inert")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	if r.SeriesNames() != nil {
		t.Fatalf("nil SeriesNames must be nil")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("aero_frames_total", "frames ingested").Add(42)
	r.Gauge("aero_queue_depth", "queue depth", "shard", "0").Set(7)
	r.GaugeFunc("aero_headroom", "free slots", func() float64 { return 3.5 })
	h := r.Histogram("aero_score_seconds", "score latency", "kind", "aero")
	h.Record(100)       // 100 ns
	h.Record(50_000)    // 50 µs
	h.Record(2_000_000) // 2 ms
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	wants := []string{
		"# TYPE aero_frames_total counter",
		"aero_frames_total 42",
		`aero_queue_depth{shard="0"} 7`,
		"aero_headroom 3.5",
		"# TYPE aero_score_seconds histogram",
		`aero_score_seconds_bucket{kind="aero",le="+Inf"} 3`,
		`aero_score_seconds_count{kind="aero"} 3`,
	}
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Fatalf("output missing %q:\n%s", w, out)
		}
	}
	// Cumulative le buckets must be monotone and end at the count.
	if !strings.Contains(out, "aero_score_seconds_bucket") {
		t.Fatalf("histogram buckets missing")
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(4, 1*time.Millisecond)
	for i := 1; i <= 6; i++ {
		ft := FrameTrace{Seq: uint64(i), Time: float64(i)}
		ft.Stage[StageScore] = int64(i) * 1000 // 1µs..6µs, all below slow
		r.Record(&ft)
	}
	s := r.Snapshot()
	if s.Total != 6 || len(s.Frames) != 4 || s.Depth != 4 {
		t.Fatalf("snapshot total=%d len=%d depth=%d", s.Total, len(s.Frames), s.Depth)
	}
	for i, want := range []uint64{3, 4, 5, 6} {
		if s.Frames[i].Seq != want {
			t.Fatalf("frame[%d].Seq = %d, want %d (oldest→newest)", i, s.Frames[i].Seq, want)
		}
	}
	if s.Slow != nil || s.SlowCount != 0 {
		t.Fatalf("no frame crossed the slow threshold")
	}
	// A slow frame is pinned even after the ring wraps past it.
	slow := FrameTrace{Seq: 7}
	slow.Stage[StageScore] = int64(3 * time.Millisecond)
	r.Record(&slow)
	slower := FrameTrace{Seq: 8}
	slower.Stage[StageTail] = int64(5 * time.Millisecond)
	r.Record(&slower)
	for i := 9; i <= 20; i++ {
		r.Record(&FrameTrace{Seq: uint64(i)})
	}
	s = r.Snapshot()
	if s.SlowCount != 2 || s.Slow == nil || s.Slow.Seq != 8 {
		t.Fatalf("slow capture: count=%d slow=%+v, want count=2 seq=8", s.SlowCount, s.Slow)
	}
	j := s.JSON()
	if j.Slow == nil || j.Slow.TailNs != int64(5*time.Millisecond) || j.Slow.Path != "full" {
		t.Fatalf("JSON slow frame: %+v", j.Slow)
	}
	if len(j.Frames) != 4 {
		t.Fatalf("JSON frames = %d, want 4", len(j.Frames))
	}

	var nilRing *TraceRing
	nilRing.Record(&slow)
	if snap := nilRing.Snapshot(); snap.Total != 0 {
		t.Fatalf("nil ring must be inert")
	}
}

func TestTraceRingRecordAllocs(t *testing.T) {
	r := NewTraceRing(64, time.Second)
	ft := FrameTrace{Seq: 1}
	ft.Stage[StageScore] = 1000
	if n := testing.AllocsPerRun(1000, func() { ft.Seq++; r.Record(&ft) }); n != 0 {
		t.Fatalf("TraceRing.Record allocates %.1f/op, want 0", n)
	}
}

func TestNowMonotone(t *testing.T) {
	a := Now()
	b := Now()
	if b < a || a < 0 {
		t.Fatalf("Now not monotone: %d then %d", a, b)
	}
}
