package metrics

import (
	"sync"
	"time"
)

// Stage indices of a FrameTrace. Durations are nanoseconds on the shared
// monotonic clock; a stage a frame never entered reads zero.
const (
	StageWait    = iota // drain pickup → subscription lock acquired
	StageHygiene        // frame hygiene scrub
	StageScore          // primary detector push (inner backend when staged)
	StageTail           // adaptive tail step (DSPOT) after the inner score
	StageFanIn          // alarm fan-in emission after the lock is released
	NumStages
)

// StageNames maps stage indices to their JSON field spellings.
var StageNames = [NumStages]string{"wait", "hygiene", "score", "tail", "fan_in"}

// Score-path classifications recorded per frame.
const (
	PathFull     = iota // full recompute (backend without incremental stats)
	PathBenign          // incremental O(1) update
	PathRefresh         // scheduled / drift / invalidation refresh
	PathGuard           // alarm-boundary guard recompute
	PathFallback        // served by the warm fallback detector
	PathError           // push returned an error (fault, latency breach)
	numPaths
)

var pathNames = [numPaths]string{"full", "benign", "refresh", "guard", "fallback", "error"}

// PathName returns the JSON spelling of a path classification.
func PathName(p uint8) string {
	if int(p) < numPaths {
		return pathNames[p]
	}
	return "unknown"
}

// FrameTrace is one flight-recorder entry: where a single frame spent
// its time on the way through the scoring stack. It is a fixed-size
// value (no pointers) so ring writes are a plain copy.
type FrameTrace struct {
	Seq     uint64           // per-subscription frame ordinal, 1-based
	Time    float64          // feed timestamp of the frame
	StartNs int64            // monotonic stamp at drain pickup
	Stage   [NumStages]int64 // per-stage duration, ns
	Path    uint8            // PathFull..PathError
	Alarms  uint8            // alarms emitted (saturates at 255)
	Err     bool             // scoring returned an error
}

// TotalNs returns the frame's end-to-end latency (sum of stages).
func (t *FrameTrace) TotalNs() int64 {
	var sum int64
	for _, d := range t.Stage {
		sum += d
	}
	return sum
}

// TraceRing is a per-subscription flight recorder: a fixed-depth ring of
// the most recent frame traces plus a pinned capture of the slowest
// frame at or above SlowThreshold. The single writer is the shard drain
// worker (one shard owns a subscription, one worker drains a shard at a
// time), readers are scrape handlers; a small mutex arbitrates, held
// only for the struct copy — never across a clock read or a detector
// push.
type TraceRing struct {
	mu        sync.Mutex
	buf       []FrameTrace
	total     uint64 // frames recorded since creation
	slowNs    int64  // capture threshold; 0 disables
	slow      FrameTrace
	slowSet   bool
	slowCount uint64
}

// NewTraceRing returns a ring retaining depth frames, pinning the
// slowest frame whose total latency reaches slowThreshold (0 disables
// slow capture). Memory is bounded at depth × sizeof(FrameTrace) ≈
// depth × 80 bytes, allocated once up front.
func NewTraceRing(depth int, slowThreshold time.Duration) *TraceRing {
	if depth <= 0 {
		depth = 64
	}
	return &TraceRing{buf: make([]FrameTrace, depth), slowNs: int64(slowThreshold)}
}

// Record appends a frame trace, overwriting the oldest entry. Nil-safe
// and allocation-free.
func (r *TraceRing) Record(t *FrameTrace) {
	if r == nil {
		return
	}
	total := t.TotalNs()
	r.mu.Lock()
	r.buf[r.total%uint64(len(r.buf))] = *t
	r.total++
	if r.slowNs > 0 && total >= r.slowNs {
		r.slowCount++
		if !r.slowSet || total > r.slow.TotalNs() {
			r.slow = *t
			r.slowSet = true
		}
	}
	r.mu.Unlock()
}

// TraceSnapshot is a point-in-time copy of a ring for serialization.
type TraceSnapshot struct {
	Frames          []FrameTrace // oldest → newest
	Total           uint64       // frames recorded since ring creation
	Depth           int
	SlowThresholdNs int64
	SlowCount       uint64
	Slow            *FrameTrace // slowest frame ≥ threshold, nil if none
}

// Snapshot copies the ring. Nil-safe: a nil ring yields a zero snapshot.
func (r *TraceRing) Snapshot() TraceSnapshot {
	if r == nil {
		return TraceSnapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.total
	depth := uint64(len(r.buf))
	if n > depth {
		n = depth
	}
	s := TraceSnapshot{
		Frames:          make([]FrameTrace, n),
		Total:           r.total,
		Depth:           len(r.buf),
		SlowThresholdNs: r.slowNs,
		SlowCount:       r.slowCount,
	}
	for i := uint64(0); i < n; i++ {
		s.Frames[i] = r.buf[(r.total-n+i)%depth]
	}
	if r.slowSet {
		sl := r.slow
		s.Slow = &sl
	}
	return s
}
