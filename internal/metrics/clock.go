// Package metrics is a dependency-free observability layer: a sharded
// registry of counters, gauges and log-linear latency histograms with
// Prometheus text exposition, plus a per-subscription frame trace ring
// (flight recorder). Every hot-path primitive is built from atomics and
// fixed-size arrays so that recording a sample never allocates, and every
// instrument is nil-safe so a disabled stack pays only a nil-check.
package metrics

import "time"

// base anchors the process-wide monotonic clock. All stamps produced by
// Now are nanoseconds since this instant, so stamps taken in different
// packages (engine drain, DSPOT stage split, ingest conn loop) are
// directly comparable.
var base = time.Now()

// Now returns the current monotonic time in nanoseconds since process
// start. It is the single clock for stage stamps, the health latency
// watch, histograms and the trace ring: one reading feeds all consumers.
func Now() int64 { return int64(time.Since(base)) }
