package metrics

// FrameTraceJSON is the wire form of one flight-recorder entry, used by
// the /trace/{tenant} handler and aeroserve dumps.
type FrameTraceJSON struct {
	Seq       uint64  `json:"seq"`
	Time      float64 `json:"time"`
	StartNs   int64   `json:"start_ns"`
	WaitNs    int64   `json:"wait_ns"`
	HygieneNs int64   `json:"hygiene_ns"`
	ScoreNs   int64   `json:"score_ns"`
	TailNs    int64   `json:"tail_ns"`
	FanInNs   int64   `json:"fan_in_ns"`
	TotalNs   int64   `json:"total_ns"`
	Path      string  `json:"path"`
	Alarms    uint8   `json:"alarms"`
	Err       bool    `json:"err,omitempty"`
}

// TraceJSON is the wire form of a ring snapshot.
type TraceJSON struct {
	Tenant          string           `json:"tenant,omitempty"`
	Kind            string           `json:"kind,omitempty"`
	Total           uint64           `json:"total_frames"`
	Depth           int              `json:"depth"`
	SlowThresholdNs int64            `json:"slow_threshold_ns"`
	SlowCount       uint64           `json:"slow_count"`
	Slow            *FrameTraceJSON  `json:"slow,omitempty"`
	Frames          []FrameTraceJSON `json:"frames"`
}

func frameJSON(t *FrameTrace) FrameTraceJSON {
	return FrameTraceJSON{
		Seq:       t.Seq,
		Time:      t.Time,
		StartNs:   t.StartNs,
		WaitNs:    t.Stage[StageWait],
		HygieneNs: t.Stage[StageHygiene],
		ScoreNs:   t.Stage[StageScore],
		TailNs:    t.Stage[StageTail],
		FanInNs:   t.Stage[StageFanIn],
		TotalNs:   t.TotalNs(),
		Path:      PathName(t.Path),
		Alarms:    t.Alarms,
		Err:       t.Err,
	}
}

// JSON converts a snapshot to its wire form.
func (s *TraceSnapshot) JSON() TraceJSON {
	out := TraceJSON{
		Total:           s.Total,
		Depth:           s.Depth,
		SlowThresholdNs: s.SlowThresholdNs,
		SlowCount:       s.SlowCount,
		Frames:          make([]FrameTraceJSON, len(s.Frames)),
	}
	for i := range s.Frames {
		out.Frames[i] = frameJSON(&s.Frames[i])
	}
	if s.Slow != nil {
		sl := frameJSON(s.Slow)
		out.Slow = &sl
	}
	return out
}
