package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders every registered series in Prometheus text
// exposition format (version 0.0.4). Latency histograms are emitted as
// native `histogram` series with cumulative `le` bounds in seconds at
// octave boundaries — coarse enough to keep scrape size sane (45 bounds)
// while the full-resolution quantiles stay available in-process.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	ms := r.snapshotMetrics()
	lastName := ""
	for _, m := range ms {
		if m.name != lastName {
			if m.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", m.name, m.help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, promType(m.kind))
			lastName = m.name
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s%s %d\n", m.name, m.labels, m.ctr.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s%s %d\n", m.name, m.labels, m.gauge.Value())
		case kindCounterFunc, kindGaugeFunc:
			fmt.Fprintf(bw, "%s%s %s\n", m.name, m.labels,
				strconv.FormatFloat(m.fn(), 'g', -1, 64))
		case kindHistogram:
			writePromHistogram(bw, m)
		}
	}
	return bw.Flush()
}

func promType(k metricKind) string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// writePromHistogram emits cumulative buckets with one `le` bound per
// octave: 16ns, 32ns, ... up to 2^47 ns, rendered in seconds.
func writePromHistogram(w *bufio.Writer, m *metric) {
	s := m.hist.Snapshot()
	var cum uint64
	i := 0
	for exp := histSubBits; exp <= histMaxExp; exp++ {
		// Sum all fine buckets whose upper bound is ≤ 2^(exp+1); for the
		// first octave this includes the 16 exact buckets below 16ns.
		bound := int64(1) << uint(exp+1)
		for ; i < histBuckets && bucketLower(i) < bound; i++ {
			cum += s.buckets[i]
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", m.name,
			withLE(m.labels, float64(bound)/1e9), cum)
	}
	for ; i < histBuckets; i++ {
		cum += s.buckets[i]
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, withLE(m.labels, -1), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", m.name, m.labels,
		strconv.FormatFloat(float64(s.Sum)/1e9, 'g', -1, 64))
	fmt.Fprintf(w, "%s_count%s %d\n", m.name, m.labels, s.Count)
}

// withLE splices an le label into an existing rendered label block.
// le < 0 renders +Inf.
func withLE(labels string, le float64) string {
	v := "+Inf"
	if le >= 0 {
		v = strconv.FormatFloat(le, 'g', -1, 64)
	}
	if labels == "" {
		return `{le="` + v + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + v + `"}`
}
